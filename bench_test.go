// Benchmarks that regenerate every figure of the paper's evaluation
// plus the ablations called out in DESIGN.md §6. Custom metrics carry
// the figures' headline numbers (MB/s, improvement factors, critical
// points) into the benchmark output:
//
//	go test -bench=. -benchmem
package dstune_test

import (
	"context"
	"fmt"
	"testing"

	"dstune"
)

// benchRC is the paper-faithful run configuration (1800 s transfers,
// 30 s epochs).
func benchRC(seed uint64) dstune.RunConfig {
	return dstune.RunConfig{Seed: seed, Duration: 1800}
}

// BenchmarkFig1 regenerates the Figure 1 concurrency sweep (boxplots
// of throughput vs parallel streams, with and without external load)
// and reports the critical points and their median throughputs.
func BenchmarkFig1(b *testing.B) {
	var res *dstune.Fig1Result
	var err error
	for i := 0; i < b.N; i++ {
		res, err = dstune.Fig1(dstune.ANLtoUChicago(), dstune.Fig1Config{Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
	}
	noLoad, hiLoad := dstune.Load{}, dstune.Load{Tfr: 16, Cmp: 16}
	b.ReportMetric(float64(res.Critical[noLoad]), "critical-nc-free")
	b.ReportMetric(float64(res.Critical[hiLoad]), "critical-nc-loaded")
	b.ReportMetric(res.Summary[noLoad][res.Critical[noLoad]].Median/1e6, "peak-free-MB/s")
	b.ReportMetric(res.Summary[hiLoad][res.Critical[hiLoad]].Median/1e6, "peak-loaded-MB/s")
}

// sweep runs the Figures 5-7 load sweep (default, cd, cs, nm tuning
// concurrency under the five load scenarios).
func sweep(b *testing.B, seed uint64) []*dstune.TuningResult {
	b.Helper()
	var out []*dstune.TuningResult
	for _, l := range dstune.Fig5Loads() {
		res, err := dstune.TuneConcurrency(dstune.ANLtoUChicago(), l, benchRC(seed))
		if err != nil {
			b.Fatal(err)
		}
		out = append(out, res)
	}
	return out
}

// BenchmarkFig5 regenerates the observed-throughput traces of
// Figure 5 and reports the no-load and cmp=16 means for nm-tuner vs
// default.
func BenchmarkFig5(b *testing.B) {
	var results []*dstune.TuningResult
	for i := 0; i < b.N; i++ {
		results = sweep(b, 5)
	}
	b.ReportMetric(results[0].Traces["default"].MeanThroughput()/1e6, "free-default-MB/s")
	b.ReportMetric(results[0].Traces["nm-tuner"].MeanThroughput()/1e6, "free-nm-MB/s")
	b.ReportMetric(results[1].Traces["default"].MeanThroughput()/1e6, "cmp16-default-MB/s")
	b.ReportMetric(results[1].Traces["nm-tuner"].MeanThroughput()/1e6, "cmp16-nm-MB/s")
}

// BenchmarkFig6 regenerates the concurrency-trajectory view of the
// same sweep (Figure 6) and reports the final nc the tuners adopt
// with and without compute load.
func BenchmarkFig6(b *testing.B) {
	var results []*dstune.TuningResult
	for i := 0; i < b.N; i++ {
		results = sweep(b, 6)
	}
	b.ReportMetric(float64(results[0].Traces["nm-tuner"].FinalX()[0]), "free-nm-final-nc")
	b.ReportMetric(float64(results[1].Traces["nm-tuner"].FinalX()[0]), "cmp16-nm-final-nc")
	b.ReportMetric(float64(results[3].Traces["cs-tuner"].FinalX()[0]), "tfr16-cs-final-nc")
}

// BenchmarkFig7 regenerates the best-case (restart-overhead-free)
// view of the sweep (Figure 7) and reports the overhead percentages
// the paper quotes as 17%/33%/50% for no load / cmp=16 / cmp=64.
func BenchmarkFig7(b *testing.B) {
	var results []*dstune.TuningResult
	for i := 0; i < b.N; i++ {
		results = sweep(b, 7)
	}
	overhead := func(res *dstune.TuningResult, name string) float64 {
		tr := res.Traces[name]
		return 100 * (1 - tr.MeanThroughput()/tr.MeanBestCase())
	}
	b.ReportMetric(overhead(results[0], "nm-tuner"), "free-overhead-%")
	b.ReportMetric(overhead(results[1], "nm-tuner"), "cmp16-overhead-%")
	b.ReportMetric(overhead(results[2], "nm-tuner"), "cmp64-overhead-%")
}

// benchTuneBoth is the shared Figures 8/9 body.
func benchTuneBoth(b *testing.B, tb dstune.Testbed, seed uint64) {
	b.Helper()
	var res *dstune.TuningResult
	var err error
	for i := 0; i < b.N; i++ {
		res, err = dstune.TuneBoth(tb, benchRC(seed))
		if err != nil {
			b.Fatal(err)
		}
	}
	def := res.Traces["default"]
	nm := res.Traces["nm-tuner"]
	b.ReportMetric(def.SteadyThroughput(1200)/1e6, "after-default-MB/s")
	b.ReportMetric(nm.SteadyThroughput(1200)/1e6, "after-nm-MB/s")
	b.ReportMetric(nm.SteadyThroughput(1200)/def.SteadyThroughput(1200), "after-factor")
}

// BenchmarkFig8 regenerates Figure 8: two-parameter tuning on
// ANL->TACC under the varying load (step at t=1000 s).
func BenchmarkFig8(b *testing.B) { benchTuneBoth(b, dstune.ANLtoTACC(), 8) }

// BenchmarkFig9 regenerates Figure 9: the same on ANL->UChicago.
func BenchmarkFig9(b *testing.B) { benchTuneBoth(b, dstune.ANLtoUChicago(), 9) }

// BenchmarkFig10 regenerates Figure 10: nm-tuner vs the heur1/heur2
// baselines on ANL->TACC under varying load.
func BenchmarkFig10(b *testing.B) {
	var res *dstune.TuningResult
	var err error
	for i := 0; i < b.N; i++ {
		res, err = dstune.CompareHeuristics(dstune.ANLtoTACC(), benchRC(10))
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.Traces["nm-tuner"].MeanThroughput()/1e6, "nm-MB/s")
	b.ReportMetric(res.Traces["heur1"].MeanThroughput()/1e6, "heur1-MB/s")
	b.ReportMetric(res.Traces["heur2"].MeanThroughput()/1e6, "heur2-MB/s")
}

// BenchmarkFig11 regenerates Figure 11: two simultaneous nm-tuned
// transfers sharing the ANL source NIC.
func BenchmarkFig11(b *testing.B) {
	var res *dstune.SimultaneousResult
	var err error
	for i := 0; i < b.N; i++ {
		res, err = dstune.Simultaneous("nm-tuner", benchRC(11))
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.UChicago.MeanThroughput()/1e6, "uchicago-MB/s")
	b.ReportMetric(res.TACC.MeanThroughput()/1e6, "tacc-MB/s")
	b.ReportMetric((res.UChicago.MeanThroughput()+res.TACC.MeanThroughput())/1e6, "aggregate-MB/s")
}

// BenchmarkClaims derives the §IV-A claims table (improvement factors
// over default per load scenario).
func BenchmarkClaims(b *testing.B) {
	var imps []dstune.Improvement
	for i := 0; i < b.N; i++ {
		imps = dstune.Improvements(sweep(b, 12))
	}
	b.ReportMetric(imps[0].Factor, "free-factor")
	b.ReportMetric(imps[1].Factor, "cmp16-factor")
	b.ReportMetric(imps[2].Factor, "cmp64-factor")
	b.ReportMetric(imps[3].Factor, "tfr16-factor")
	b.ReportMetric(imps[4].Factor, "tfr64-factor")
}

// BenchmarkThirdParty measures robustness to bursty third-party
// network traffic — the uncontrolled condition the paper mentions —
// with 64 background streams toggling every 3 minutes.
func BenchmarkThirdParty(b *testing.B) {
	var res *dstune.TuningResult
	var err error
	for i := 0; i < b.N; i++ {
		res, err = dstune.ThirdParty(dstune.ANLtoUChicago(), 64, 180, benchRC(19))
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.Traces["default"].MeanThroughput()/1e6, "default-MB/s")
	b.ReportMetric(res.Traces["nm-tuner"].MeanThroughput()/1e6, "nm-MB/s")
	b.ReportMetric(res.Traces["cs-tuner"].MeanThroughput()/1e6, "cs-MB/s")
}

// BenchmarkConvergence derives the §IV-A convergence-time claims:
// cd-tuner reaches steady state fast when the optimum is near its
// start; cs/nm take large early steps and need more control epochs.
func BenchmarkConvergence(b *testing.B) {
	var free, loaded map[string]float64
	for i := 0; i < b.N; i++ {
		resFree, err := dstune.TuneConcurrency(dstune.ANLtoUChicago(), dstune.Load{}, benchRC(20))
		if err != nil {
			b.Fatal(err)
		}
		resLoaded, err := dstune.TuneConcurrency(dstune.ANLtoUChicago(), dstune.Load{Cmp: 16}, benchRC(20))
		if err != nil {
			b.Fatal(err)
		}
		free = dstune.ConvergenceTimes(resFree, 0.9, 3)
		loaded = dstune.ConvergenceTimes(resLoaded, 0.9, 3)
	}
	b.ReportMetric(free["cd-tuner"], "free-cd-s")
	b.ReportMetric(free["nm-tuner"], "free-nm-s")
	b.ReportMetric(loaded["cd-tuner"], "cmp16-cd-s")
	b.ReportMetric(loaded["cs-tuner"], "cmp16-cs-s")
	b.ReportMetric(loaded["nm-tuner"], "cmp16-nm-s")
}

// BenchmarkModelBaseline compares the related-work empirical model
// (Yildirim/Yin curve fitting) against direct search under the
// varying load — the paper's motivating comparison with the
// "empirical approaches" class.
func BenchmarkModelBaseline(b *testing.B) {
	var res *dstune.TuningResult
	var err error
	for i := 0; i < b.N; i++ {
		res, err = dstune.CompareModel(dstune.ANLtoTACC(), benchRC(22))
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.Traces["default"].MeanThroughput()/1e6, "default-MB/s")
	b.ReportMetric(res.Traces["model"].MeanThroughput()/1e6, "model-MB/s")
	b.ReportMetric(res.Traces["nm-tuner"].MeanThroughput()/1e6, "nm-MB/s")
}

// BenchmarkAblationCC varies the TCP congestion-control algorithm on
// the source endpoints (the paper's testbed ran H-TCP; CUBIC is the
// Linux default).
func BenchmarkAblationCC(b *testing.B) {
	for _, cc := range []string{"htcp", "cubic", "reno", "scalable"} {
		b.Run(cc, func(b *testing.B) {
			tb := dstune.ANLtoUChicago()
			tb.CC = cc
			var res *dstune.TuningResult
			var err error
			for i := 0; i < b.N; i++ {
				res, err = dstune.TuneConcurrency(tb, dstune.Load{}, dstune.RunConfig{Seed: 13, Duration: 900})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(res.Traces["nm-tuner"].MeanThroughput()/1e6, "nm-MB/s")
			b.ReportMetric(res.Traces["default"].MeanThroughput()/1e6, "default-MB/s")
		})
	}
}

// BenchmarkAblationEpoch varies the control epoch length: short
// epochs adapt faster but amplify the restart overhead.
func BenchmarkAblationEpoch(b *testing.B) {
	for _, e := range []float64{10, 30, 60} {
		b.Run(fmtSeconds(e), func(b *testing.B) {
			rc := dstune.RunConfig{Seed: 14, Duration: 1800, Epoch: e}
			var res *dstune.TuningResult
			var err error
			for i := 0; i < b.N; i++ {
				res, err = dstune.TuneConcurrency(dstune.ANLtoUChicago(), dstune.Load{Cmp: 16}, rc)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(res.Traces["nm-tuner"].MeanThroughput()/1e6, "nm-MB/s")
		})
	}
}

// BenchmarkDisk runs the disk-to-disk extension (future-work item
// (1)) across the three file-size regimes, reporting the static
// default against the best three-parameter tuner.
func BenchmarkDisk(b *testing.B) {
	for _, sc := range dstune.DiskScenarios(16) {
		sc := sc
		b.Run(sc.Name, func(b *testing.B) {
			var res *dstune.TuningResult
			var err error
			for i := 0; i < b.N; i++ {
				res, err = dstune.TuneDisk(dstune.ANLtoUChicago(), sc, benchRC(16))
				if err != nil {
					b.Fatal(err)
				}
			}
			def := res.Traces["default"]
			nm := res.Traces["nm-tuner"]
			b.ReportMetric(def.MeanThroughput()/1e6, "default-MB/s")
			b.ReportMetric(nm.MeanThroughput()/1e6, "nm-MB/s")
			b.ReportMetric(float64(dstune.FilesMoved(nm)), "nm-files")
			if x := nm.FinalX(); len(x) == 3 {
				b.ReportMetric(float64(x[2]), "nm-final-pp")
			}
		})
	}
}

// BenchmarkJointVsIndependent compares endpoint-level joint tuning
// (future-work item (4)) against Figure 11's independent tuners.
func BenchmarkJointVsIndependent(b *testing.B) {
	var jc *dstune.JointComparison
	var err error
	for i := 0; i < b.N; i++ {
		jc, err = dstune.JointVsIndependent(benchRC(17))
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(jc.IndependentAggregate()/1e6, "independent-MB/s")
	b.ReportMetric(jc.JointAggregate()/1e6, "joint-MB/s")
}

// BenchmarkAblationPipelining sweeps a static pipelining depth on the
// many-small regime, isolating the parameter the disk extension adds.
func BenchmarkAblationPipelining(b *testing.B) {
	for _, pp := range []int{1, 4, 16} {
		pp := pp
		b.Run(fmt.Sprintf("pp%d", pp), func(b *testing.B) {
			var tput float64
			for i := 0; i < b.N; i++ {
				fabric, _, err := dstune.ANLtoUChicago().NewFabric(18)
				if err != nil {
					b.Fatal(err)
				}
				tr, err := fabric.NewTransfer(dstune.TransferConfig{
					Name:         "pp",
					Files:        dstune.ManySmallFiles(20000),
					DiskRate:     2e9,
					FileOverhead: 0.5,
					Policy:       dstune.RestartOnChange,
				})
				if err != nil {
					b.Fatal(err)
				}
				trace, err := dstune.NewStatic(dstune.TunerConfig{
					Box:    dstune.MustBox([]int{1, 1, 1}, []int{64, 16, 32}),
					Start:  []int{8, 4, pp},
					Map:    dstune.MapNCNPPP(),
					Budget: 600,
				}).Tune(context.Background(), tr)
				if err != nil {
					b.Fatal(err)
				}
				tput = trace.MeanThroughput()
			}
			b.ReportMetric(tput/1e6, "MB/s")
		})
	}
}

// BenchmarkAblationObserveBestCase revisits the restart ablation with
// the restart-aware monitor: observing best-case throughput removes
// the artifact that penalized RestartOnChange in
// BenchmarkAblationRestart.
func BenchmarkAblationObserveBestCase(b *testing.B) {
	for _, mode := range []struct {
		name        string
		observeBest bool
	}{
		{"observe-throughput", false},
		{"observe-bestcase", true},
	} {
		mode := mode
		b.Run(mode.name, func(b *testing.B) {
			var tr *dstune.Trace
			for i := 0; i < b.N; i++ {
				tr = runCustomCSObserve(b, dstune.RestartOnChange, mode.observeBest)
			}
			b.ReportMetric(tr.MeanThroughput()/1e6, "cs-MB/s")
		})
	}
}

// runCustomCSObserve is runCustomCS with an observation-mode switch.
func runCustomCSObserve(b *testing.B, restart dstune.RestartPolicy, observeBest bool) *dstune.Trace {
	b.Helper()
	fabric, _, err := dstune.ANLtoUChicago().NewFabric(15)
	if err != nil {
		b.Fatal(err)
	}
	fabric.SetLoad(dstune.ConstantLoad(dstune.Load{Cmp: 16}), nil)
	tr, err := fabric.NewTransfer(dstune.TransferConfig{
		Name: "ablation", Bytes: dstune.Unbounded, Policy: restart,
	})
	if err != nil {
		b.Fatal(err)
	}
	trace, err := dstune.NewCS(dstune.TunerConfig{
		Box:             dstune.MustBox([]int{1}, []int{128}),
		Start:           []int{2},
		Map:             dstune.MapNC(8),
		Budget:          1800,
		Seed:            15,
		ObserveBestCase: observeBest,
	}).Tune(context.Background(), tr)
	if err != nil {
		b.Fatal(err)
	}
	return trace
}

// runCustomCS runs a cs-tuner with explicit tolerance/lambda on the
// cmp=16 scenario, returning the trace.
func runCustomCS(b *testing.B, tolerance, lambda float64, restart dstune.RestartPolicy) *dstune.Trace {
	b.Helper()
	fabric, _, err := dstune.ANLtoUChicago().NewFabric(15)
	if err != nil {
		b.Fatal(err)
	}
	fabric.SetLoad(dstune.ConstantLoad(dstune.Load{Cmp: 16}), nil)
	tr, err := fabric.NewTransfer(dstune.TransferConfig{
		Name: "ablation", Bytes: dstune.Unbounded, Policy: restart,
	})
	if err != nil {
		b.Fatal(err)
	}
	trace, err := dstune.NewCS(dstune.TunerConfig{
		Tolerance: tolerance,
		Lambda:    lambda,
		Box:       dstune.MustBox([]int{1}, []int{128}),
		Start:     []int{2},
		Map:       dstune.MapNC(8),
		Budget:    1800,
		Seed:      15,
	}).Tune(context.Background(), tr)
	if err != nil {
		b.Fatal(err)
	}
	return trace
}

// BenchmarkAblationTolerance varies the significance threshold ε.
func BenchmarkAblationTolerance(b *testing.B) {
	for _, eps := range []float64{1, 5, 10} {
		b.Run(fmtPercent(eps), func(b *testing.B) {
			var tr *dstune.Trace
			for i := 0; i < b.N; i++ {
				tr = runCustomCS(b, eps, 8, dstune.RestartEveryEpoch)
			}
			b.ReportMetric(tr.MeanThroughput()/1e6, "cs-MB/s")
		})
	}
}

// BenchmarkAblationLambda varies compass search's initial step size.
func BenchmarkAblationLambda(b *testing.B) {
	for _, lam := range []float64{2, 8, 32} {
		b.Run(fmtSeconds(lam), func(b *testing.B) {
			var tr *dstune.Trace
			for i := 0; i < b.N; i++ {
				tr = runCustomCS(b, 5, lam, dstune.RestartEveryEpoch)
			}
			b.ReportMetric(tr.MeanThroughput()/1e6, "cs-MB/s")
		})
	}
}

// BenchmarkAblationRestart compares the paper's restart-every-epoch
// behaviour against the "ideal scenario" of its future-work item (2):
// adapting parameters without restarting the transfer.
func BenchmarkAblationRestart(b *testing.B) {
	for _, mode := range []struct {
		name   string
		policy dstune.RestartPolicy
	}{
		{"every-epoch", dstune.RestartEveryEpoch},
		{"on-change", dstune.RestartOnChange},
	} {
		b.Run(mode.name, func(b *testing.B) {
			var tr *dstune.Trace
			for i := 0; i < b.N; i++ {
				tr = runCustomCS(b, 5, 8, mode.policy)
			}
			b.ReportMetric(tr.MeanThroughput()/1e6, "cs-MB/s")
		})
	}
}

// fmtSeconds renders a float for sub-benchmark names.
func fmtSeconds(v float64) string { return fmt.Sprintf("%gs", v) }

// fmtPercent renders a float for sub-benchmark names.
func fmtPercent(v float64) string { return fmt.Sprintf("%gpct", v) }

// BenchmarkTACCNoLoad reproduces the §IV-A "trend is similar on ANL
// to TACC" paragraph: without external load the tuners' gains are
// modest and mostly eaten by restart overhead; the best-case rate
// shows what a restart-free engine would get.
func BenchmarkTACCNoLoad(b *testing.B) {
	var res *dstune.TuningResult
	var err error
	for i := 0; i < b.N; i++ {
		res, err = dstune.TuneConcurrency(dstune.ANLtoTACC(), dstune.Load{}, benchRC(30))
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.Traces["default"].MeanThroughput()/1e6, "default-MB/s")
	b.ReportMetric(res.Traces["nm-tuner"].MeanThroughput()/1e6, "nm-MB/s")
	b.ReportMetric(res.Traces["nm-tuner"].MeanBestCase()/1e6, "nm-bestcase-MB/s")
}
