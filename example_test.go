package dstune_test

import (
	"fmt"

	"dstune"
)

// ExampleMaximizeSearch uses a standalone direct search offline, away
// from any transfer: maximize a concave function over a bounded
// integer box.
func ExampleMaximizeSearch() {
	box := dstune.MustBox([]int{1}, []int{64})
	objective := func(x []int) float64 {
		d := float64(x[0] - 40)
		return 100 - d*d
	}
	s := dstune.NewNelderMeadSearch([]int{2}, box)
	x, f := dstune.MaximizeSearch(s, objective, 0)
	fmt.Println(x, f)
	// Output: [40] 100
}

// ExampleMapNC shows how a tuned vector becomes transfer parameters.
func ExampleMapNC() {
	m := dstune.MapNC(8) // parallelism fixed at 8
	p := m([]int{5})
	fmt.Println(p, p.Streams())
	// Output: nc=5 np=8 40
}

// ExampleBox_Clamp demonstrates the paper's fBnd operation: rounding
// to integers and projecting onto the bounds.
func ExampleBox_Clamp() {
	box := dstune.MustBox([]int{1, 1}, []int{100, 100})
	fmt.Println(box.Clamp([]float64{3.8, 9.2}))
	fmt.Println(box.Clamp([]float64{12, -1}))
	// Output:
	// [4 9]
	// [12 1]
}

// ExampleShaper shows the loopback contention model: the per-connection
// rate falls with the square of the connection count, so the aggregate
// peaks at Optimum().
func ExampleShaper() {
	sh := &dstune.Shaper{Rate: 8e6, Quad: 1.0 / 36}
	fmt.Println(sh.Optimum())
	// Output: 6
}

// ExampleConstantLoad shows the paper's external-load vocabulary.
func ExampleConstantLoad() {
	sched := dstune.ConstantLoad(dstune.Load{Tfr: 16, Cmp: 64})
	fmt.Println(sched.At(900))
	// Output: ext.tfr=16 ext.cmp=64
}
