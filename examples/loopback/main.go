// Loopback: tune a real-socket striped transfer. An in-process server
// discards what the client sends over 127.0.0.1; a shaper imposes the
// contention curve of a busy endpoint (per-connection rate falls with
// the square of the connection count), so an interior optimum exists
// for the tuner to find — here at about 6 connections.
//
// Run with: go run ./examples/loopback
package main

import (
	"context"
	"fmt"
	"log"

	"dstune"
)

func main() {
	srv, err := dstune.ServeGridFTP("127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()
	fmt.Printf("server on %s\n", srv.Addr())

	shaper := &dstune.Shaper{Rate: 8e6, Quad: 1.0 / 36} // optimum ~6 conns
	client, err := dstune.NewTransferClient(dstune.TransferClientConfig{
		Addr:   srv.Addr(),
		Bytes:  dstune.Unbounded,
		Shaper: shaper,
	})
	if err != nil {
		log.Fatal(err)
	}

	trace, err := dstune.NewCS(dstune.TunerConfig{
		Epoch:     0.25, // wall-clock seconds per control epoch
		Tolerance: 30,   // loopback timing is noisy
		Restart:   dstune.FromCurrent,
		Lambda:    4,
		Box:       dstune.MustBox([]int{1}, []int{32}),
		Start:     []int{1},
		Map:       dstune.MapNC(1),
		Budget:    10, // wall-clock seconds total
		Seed:      1,
	}).Tune(context.Background(), client)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("\nepoch  conns  throughput (MB/s)")
	for _, r := range trace.Results {
		fmt.Printf("%5d  %5d  %9.2f\n", r.Epoch, r.X[0], r.Report.Throughput/1e6)
	}
	fmt.Printf("\nshaper optimum: %d connections; tuner finished at %d\n",
		shaper.Optimum(), trace.FinalX()[0])
	got, err := client.ServerReceived()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("server received %.1f MB in total\n", float64(got)/1e6)
}
