// Joint tuning: the paper's future-work item (4). Two transfers leave
// the same source; instead of two independent tuners that treat each
// other as external load (Figure 11), ONE direct search optimizes the
// concatenated vector [nc1, np1, nc2, np2] against the weighted
// aggregate throughput. Weights express transfer priority: here the
// UChicago transfer counts three times as much as the TACC one.
//
// Run with: go run ./examples/joint_tuning
package main

import (
	"context"
	"fmt"
	"log"

	"dstune"
)

func main() {
	fabric, err := dstune.NewFabric(dstune.FabricConfig{
		Seed: 5,
		Source: dstune.HostConfig{
			Name:         "anl-nehalem",
			Cores:        8,
			CorePumpRate: 1.3e9,
			NICRate:      5e9,
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	p1, err := fabric.AddPath(dstune.ANLtoUChicago().Path)
	if err != nil {
		log.Fatal(err)
	}
	p2, err := fabric.AddPath(dstune.ANLtoTACC().Path)
	if err != nil {
		log.Fatal(err)
	}
	t1, err := fabric.NewTransfer(dstune.TransferConfig{
		Name: "to-uchicago", Bytes: dstune.Unbounded, Path: p1,
	})
	if err != nil {
		log.Fatal(err)
	}
	t2, err := fabric.NewTransfer(dstune.TransferConfig{
		Name: "to-tacc", Bytes: dstune.Unbounded, Path: p2,
	})
	if err != nil {
		log.Fatal(err)
	}

	joint := dstune.NewJointNM(dstune.JointTunerConfig{
		Box: dstune.MustBox(
			[]int{1, 1, 1, 1},
			[]int{128, 16, 128, 16}),
		Start:   []int{2, 8, 2, 8},
		Dims:    []int{2, 2},
		Maps:    []dstune.ParamMap{dstune.MapNCNP(), dstune.MapNCNP()},
		Weights: []float64{3, 1}, // UChicago has priority
		Budget:  1800,
	})
	traces, err := joint.Tune(context.Background(), []dstune.Transferer{t1, t2})
	if err != nil {
		log.Fatal(err)
	}

	uc, tc := traces[0], traces[1]
	fmt.Println("joint nm search over [nc1 np1 nc2 np2], weights 3:1")
	fmt.Printf("UChicago: %7.1f MB/s  final %v\n", uc.MeanThroughput()/1e6, uc.FinalX())
	fmt.Printf("TACC:     %7.1f MB/s  final %v\n", tc.MeanThroughput()/1e6, tc.FinalX())
	fmt.Printf("aggregate %7.1f of 5000 MB/s NIC\n",
		(uc.MeanThroughput()+tc.MeanThroughput())/1e6)
	fmt.Println("\ncompare: go run ./examples/simultaneous (independent tuners)")
}
