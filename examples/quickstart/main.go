// Quickstart: tune the number of parallel streams of a simulated WAN
// transfer with Nelder–Mead and compare against the Globus default.
//
// Run with: go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"dstune"
)

func main() {
	// A transfer from ANL to UChicago while 16 dgemm jobs hammer the
	// source's cores — the scenario where the paper's default
	// setting collapses.
	run := func(mk func(dstune.TunerConfig) dstune.Tuner, policy dstune.RestartPolicy) *dstune.Trace {
		fabric, _, err := dstune.ANLtoUChicago().NewFabric(42)
		if err != nil {
			log.Fatal(err)
		}
		fabric.SetLoad(dstune.ConstantLoad(dstune.Load{Cmp: 16}), nil)
		tr, err := fabric.NewTransfer(dstune.TransferConfig{
			Name:   "quickstart",
			Bytes:  dstune.Unbounded,
			Policy: policy,
		})
		if err != nil {
			log.Fatal(err)
		}
		cfg := dstune.TunerConfig{
			Box:    dstune.MustBox([]int{1}, []int{128}),
			Start:  []int{2},
			Map:    dstune.MapNC(8), // tune concurrency, parallelism fixed at 8
			Budget: 900,             // seconds of (virtual) transfer time
		}
		trace, err := mk(cfg).Tune(context.Background(), tr)
		if err != nil {
			log.Fatal(err)
		}
		return trace
	}

	def := run(dstune.NewStatic, dstune.RestartOnChange)
	nm := run(dstune.NewNM, dstune.RestartEveryEpoch)

	fmt.Println("epoch  t(s)   nc   throughput (MB/s)")
	for _, r := range nm.Results {
		fmt.Printf("%5d  %4.0f  %3d   %8.1f\n",
			r.Epoch, r.Report.End, r.X[0], r.Report.Throughput/1e6)
	}
	fmt.Printf("\ndefault (nc=2, np=8): %7.1f MB/s\n", def.MeanThroughput()/1e6)
	fmt.Printf("nm-tuner:             %7.1f MB/s (%.1fx)\n",
		nm.MeanThroughput()/1e6, nm.MeanThroughput()/def.MeanThroughput())
}
