// Disk-to-disk: move a dataset of many small files (the paper's
// future-work item (1), following Yildirim et al.'s analysis of
// heterogeneous file sets) — over real sockets, from real files to
// real files. The dataset is materialized on disk and served through
// the file-backed source (the zero-copy sendfile pump where the
// platform has it); an in-process gridftpd persists every received
// frame under a sink directory and charges a per-file OPEN latency,
// the cost a remote endpoint pays in metadata lookups before a file's
// bytes can flow. Each file start must be acknowledged before its
// data is sent, so with pp=1 the transfer serializes on that latency;
// the pipelining parameter keeps pp file starts in flight and hides
// it. The tuner has three knobs: concurrency, parallelism, and
// pipelining.
//
// Run with: go run ./examples/disk_to_disk
package main

import (
	"context"
	"fmt"
	"io/fs"
	"log"
	"os"
	"path/filepath"
	"time"

	"dstune"
)

func main() {
	srcDir, err := os.MkdirTemp("", "disk_to_disk_src")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(srcDir)
	sinkDir, err := os.MkdirTemp("", "disk_to_disk_sink")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(sinkDir)

	srv, err := dstune.ServeGridFTP("127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()
	srv.SetFileLatency(15 * time.Millisecond)
	srv.SetSink(sinkDir)

	files := dstune.UniformDataset(20000, 64<<10)
	if err := dstune.MaterializeDataset(srcDir, files); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("server on %s, 15ms per file start, sink %s\ndataset: %s under %s\n\n",
		srv.Addr(), sinkDir, files, srcDir)

	run := func(name string, maxPP int) *dstune.Trace {
		client, err := dstune.NewTransferClient(dstune.TransferClientConfig{
			Addr:        srv.Addr(),
			Dataset:     files,
			SourceDir:   srcDir,
			RequestSink: true,
		})
		if err != nil {
			log.Fatal(err)
		}
		defer client.Stop()
		trace, err := dstune.NewCD(dstune.TunerConfig{
			Epoch:     0.25, // wall-clock seconds per control epoch
			Tolerance: 30,   // loopback timing is noisy
			Restart:   dstune.FromCurrent,
			Box:       dstune.MustBox([]int{1, 1, 1}, []int{4, 2, maxPP}),
			Start:     []int{2, 1, 1},
			Map:       dstune.MapNCNPPP(),
			Budget:    8, // wall-clock seconds per run
			Seed:      7,
		}).Tune(context.Background(), client)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s:\nepoch  (nc np pp)  MB/s    files  first-byte lag\n", name)
		for _, r := range trace.Results {
			fmt.Printf("%5d  %v  %7.2f  %5d  %11.0f ms\n",
				r.Epoch, r.X, r.Report.Throughput/1e6, r.Report.Files,
				r.Report.FirstByteLag*1e3)
		}
		fmt.Println()
		return trace
	}

	// Pinned pp=1 (the CLI's `-pp 1`, via a degenerate box here):
	// every file start pays the full 15 ms serially per stream, no
	// matter how nc and np move.
	pinned := run("pp pinned at 1", 1)
	// The third dimension unlocked: the coordinate walk raises pp
	// until the file latency is hidden behind data in flight.
	tuned := run("pp tuned (3-D)", 16)

	best := func(t *dstune.Trace) (x []int, mbs float64) {
		for _, r := range t.Results {
			if r.Report.Throughput/1e6 > mbs {
				x, mbs = r.X, r.Report.Throughput/1e6
			}
		}
		return
	}
	px, pBest := best(pinned)
	tx, tBest := best(tuned)
	fmt.Printf("best pinned epoch: %7.2f MB/s at %v\n", pBest, px)
	fmt.Printf("best tuned epoch:  %7.2f MB/s at %v — %.1fx\n", tBest, tx, tBest/pBest)
	fmt.Printf("files moved: %d pinned, %d tuned (of %d)\n",
		dstune.FilesMoved(pinned), dstune.FilesMoved(tuned), files.Count())

	// Receiver truth: the bytes are on the sink's disk, one directory
	// per transfer token.
	var sunkFiles, sunkBytes int64
	filepath.WalkDir(sinkDir, func(_ string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() {
			return err
		}
		if info, ierr := d.Info(); ierr == nil {
			sunkFiles++
			sunkBytes += info.Size()
		}
		return nil
	})
	fmt.Printf("persisted at the sink: %d files, %.1f MB\n", sunkFiles, float64(sunkBytes)/1e6)
}
