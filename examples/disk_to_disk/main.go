// Disk-to-disk: move a dataset of many small files (the paper's
// future-work item (1), following Yildirim et al.'s analysis of
// heterogeneous file sets). Each file costs a request round trip that
// the pipelining parameter amortizes, so the tuner now has three
// knobs: concurrency, parallelism, and pipelining.
//
// Run with: go run ./examples/disk_to_disk
package main

import (
	"context"
	"fmt"
	"log"

	"dstune"
)

func main() {
	// 8000 x 1 MB files from a 2 GB/s storage array, 0.5 s per file
	// request: the latency-bound regime where the static default
	// (nc=2, np=8, pp=4) crawls.
	files := dstune.ManySmallFiles(8000)
	fmt.Printf("dataset: %s\n\n", files)

	run := func(mk func(dstune.TunerConfig) dstune.Tuner, start []int, policy dstune.RestartPolicy) *dstune.Trace {
		fabric, _, err := dstune.ANLtoUChicago().NewFabric(21)
		if err != nil {
			log.Fatal(err)
		}
		tr, err := fabric.NewTransfer(dstune.TransferConfig{
			Name:         "disk",
			Files:        files,
			DiskRate:     2e9,
			FileOverhead: 0.5,
			Policy:       policy,
		})
		if err != nil {
			log.Fatal(err)
		}
		trace, err := mk(dstune.TunerConfig{
			Box:    dstune.MustBox([]int{1, 1, 1}, []int{64, 16, 32}),
			Start:  start,
			Map:    dstune.MapNCNPPP(),
			Budget: 1800,
		}).Tune(context.Background(), tr)
		if err != nil {
			log.Fatal(err)
		}
		return trace
	}

	def := run(dstune.NewStatic, []int{2, 8, 4}, dstune.RestartOnChange)
	nm := run(dstune.NewNM, []int{2, 8, 4}, dstune.RestartEveryEpoch)

	fmt.Println("tuner     MB/s    files moved   done at (s)   final (nc np pp)")
	for _, row := range []struct {
		name  string
		trace *dstune.Trace
	}{{"default", def}, {"nm-tuner", nm}} {
		last := row.trace.Results[len(row.trace.Results)-1]
		fmt.Printf("%-8s %7.1f  %11d   %11.0f   %v\n",
			row.name,
			row.trace.MeanThroughput()/1e6,
			dstune.FilesMoved(row.trace),
			last.Report.End,
			row.trace.FinalX())
	}
	defEnd := def.Results[len(def.Results)-1].Report.End
	nmEnd := nm.Results[len(nm.Results)-1].Report.End
	fmt.Printf("\nnm-tuner finished the dataset %.1fx sooner\n", defEnd/nmEnd)
}
