// Fleet: many tuned transfers in one process under one scheduler.
// Four transfers share the ANL source endpoint, each driven by its
// own tuning strategy — the step-driven Strategy interface lets a
// single Fleet loop pace all of them epoch-by-epoch, where the old
// blocking Tune API needed one goroutine per tuner.
//
// Run with: go run ./examples/fleet
package main

import (
	"context"
	"fmt"
	"log"

	"dstune"
)

func main() {
	tb := dstune.ANLtoUChicago()
	fabric, _, err := tb.NewFabric(7)
	if err != nil {
		log.Fatal(err)
	}

	// One session per tuner; all four transfers contend for the same
	// source host, so each tuner sees the others as external load.
	names := []string{"nm-tuner", "cs-tuner", "cd-tuner", "heur1"}
	cfg := dstune.TunerConfig{
		Box:   dstune.MustBox([]int{1}, []int{64}),
		Start: []int{2},
		Map:   dstune.MapNC(8),
	}
	var sessions []dstune.FleetSession
	for i, name := range names {
		scfg := cfg
		scfg.Seed = uint64(10 + i)
		strat, err := dstune.NewStrategy(name, scfg)
		if err != nil {
			log.Fatal(err)
		}
		transfer, err := fabric.NewTransfer(dstune.TransferConfig{
			Name: name, Bytes: dstune.Unbounded,
		})
		if err != nil {
			log.Fatal(err)
		}
		sessions = append(sessions, dstune.FleetSession{
			Name:      name,
			Strategy:  strat,
			Transfers: []dstune.Transferer{transfer},
			Maps:      []dstune.ParamMap{scfg.Map},
		})
	}

	fleet := dstune.NewFleet(dstune.FleetConfig{Epoch: 30, Budget: 900}, sessions...)
	results, err := fleet.Run(context.Background())
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("session     epochs   mean MB/s   final nc   bytes moved")
	for _, r := range results {
		if r.Err != nil {
			log.Fatalf("session %s failed: %v", r.Name, r.Err)
		}
		tr := r.Traces[0]
		fmt.Printf("%-10s  %6d  %10.1f  %9v  %12.0f\n",
			r.Name, len(tr.Results), tr.MeanThroughput()/1e6, tr.FinalX(), r.Bytes)
	}
	fmt.Println("\nall four tuners ran in one scheduler loop — no goroutine per tuner")
}
