// Adaptive WAN transfer: external load on the source changes
// mid-transfer (the paper's §IV-B scenario) and the tuners re-adapt
// concurrency and parallelism, while the static default is stuck.
//
// Run with: go run ./examples/adaptive_wan
package main

import (
	"context"
	"fmt"
	"log"

	"dstune"
)

func main() {
	// ANL -> TACC, 1800 s. Heavy load (ext.tfr=64, ext.cmp=16) until
	// t=1000 s, then most of the traffic goes away.
	sched := dstune.StepLoad(1000,
		dstune.Load{Tfr: 64, Cmp: 16},
		dstune.Load{Tfr: 16, Cmp: 16})

	run := func(mk func(dstune.TunerConfig) dstune.Tuner, policy dstune.RestartPolicy) *dstune.Trace {
		fabric, _, err := dstune.ANLtoTACC().NewFabric(7)
		if err != nil {
			log.Fatal(err)
		}
		fabric.SetLoad(sched, nil)
		tr, err := fabric.NewTransfer(dstune.TransferConfig{
			Name: "adaptive", Bytes: dstune.Unbounded, Policy: policy,
		})
		if err != nil {
			log.Fatal(err)
		}
		trace, err := mk(dstune.TunerConfig{
			Box:    dstune.MustBox([]int{1, 1}, []int{128, 16}),
			Start:  []int{2, 8},
			Map:    dstune.MapNCNP(), // tune both parameters
			Budget: 1800,
		}).Tune(context.Background(), tr)
		if err != nil {
			log.Fatal(err)
		}
		return trace
	}

	def := run(dstune.NewStatic, dstune.RestartOnChange)
	cs := run(dstune.NewCS, dstune.RestartEveryEpoch)

	fmt.Println("phase                default MB/s   cs-tuner MB/s   gain")
	for _, ph := range []struct {
		name   string
		t0, t1 float64
	}{
		{"heavy load (0-1000s)", 0, 1000},
		{"light load (1000-1800s)", 1000, 1800},
	} {
		d := meanBetween(def, ph.t0, ph.t1)
		c := meanBetween(cs, ph.t0, ph.t1)
		fmt.Printf("%-22s %10.1f %15.1f %6.1fx\n", ph.name, d/1e6, c/1e6, c/d)
	}
	last := cs.Results[len(cs.Results)-1]
	fmt.Printf("\ncs-tuner finished at nc=%d np=%d\n", last.X[0], last.X[1])
}

// meanBetween averages the observed throughput of epochs ending in
// [t0, t1).
func meanBetween(tr *dstune.Trace, t0, t1 float64) float64 {
	var sum float64
	var n int
	for _, r := range tr.Results {
		if r.Report.End >= t0 && r.Report.End < t1 {
			sum += r.Report.Throughput
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}
