// Simultaneous transfers: two independently tuned transfers leave the
// same source host — one to UChicago, one to TACC — sharing its
// 40 Gb/s NIC (the paper's §IV-D / Figure 11). Each tuner treats the
// other transfer as external load; the transfers run in lockstep
// virtual time on one fabric.
//
// Run with: go run ./examples/simultaneous
package main

import (
	"fmt"
	"log"

	"dstune"
)

func main() {
	res, err := dstune.Simultaneous("nm-tuner", dstune.RunConfig{
		Seed:     11,
		Duration: 1800,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("t(s)    UChicago MB/s (nc,np)    TACC MB/s (nc,np)")
	n := len(res.UChicago.Results)
	if m := len(res.TACC.Results); m < n {
		n = m
	}
	for i := 0; i < n; i += 4 { // print every 4th epoch
		u := res.UChicago.Results[i]
		c := res.TACC.Results[i]
		fmt.Printf("%5.0f  %10.1f (%3d,%2d)  %12.1f (%3d,%2d)\n",
			u.Report.End,
			u.Report.Throughput/1e6, u.X[0], u.X[1],
			c.Report.Throughput/1e6, c.X[0], c.X[1])
	}

	uc := res.UChicago.MeanThroughput() / 1e6
	tc := res.TACC.MeanThroughput() / 1e6
	fmt.Printf("\nmeans: UChicago %.1f MB/s, TACC %.1f MB/s, aggregate %.1f of 5000 MB/s NIC\n",
		uc, tc, uc+tc)
	fmt.Println("note: the tuners are unaware of each other; each sees the other as load")
}
