module dstune

go 1.22
