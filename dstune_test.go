package dstune_test

import (
	"bytes"
	"context"
	"runtime"
	"strings"
	"testing"

	"dstune"
)

func TestDefaultParams(t *testing.T) {
	p := dstune.DefaultParams()
	if p.NC != 2 || p.NP != 8 || p.Streams() != 16 {
		t.Fatalf("DefaultParams = %v", p)
	}
}

func TestParamMaps(t *testing.T) {
	if got := dstune.MapNC(8)([]int{5}); got != (dstune.Params{NC: 5, NP: 8}) {
		t.Fatalf("MapNC = %v", got)
	}
	if got := dstune.MapNCNP()([]int{3, 4}); got != (dstune.Params{NC: 3, NP: 4}) {
		t.Fatalf("MapNCNP = %v", got)
	}
}

func TestLoadScheduleHelpers(t *testing.T) {
	if dstune.NoLoad().At(5) != (dstune.Load{}) {
		t.Fatal("NoLoad not empty")
	}
	c := dstune.ConstantLoad(dstune.Load{Tfr: 3})
	if c.At(100).Tfr != 3 {
		t.Fatal("ConstantLoad")
	}
	s := dstune.StepLoad(10, dstune.Load{Cmp: 1}, dstune.Load{Cmp: 2})
	if s.At(9).Cmp != 1 || s.At(10).Cmp != 2 {
		t.Fatal("StepLoad")
	}
	p := dstune.PiecewiseLoad(
		dstune.LoadSegment{Start: 0, Load: dstune.Load{Tfr: 1}},
		dstune.LoadSegment{Start: 5, Load: dstune.Load{Tfr: 2}},
	)
	if p.At(6).Tfr != 2 {
		t.Fatal("PiecewiseLoad")
	}
}

func TestSearchers(t *testing.T) {
	box := dstune.MustBox([]int{1}, []int{100})
	obj := func(x []int) float64 {
		d := float64(x[0] - 33)
		return -d * d
	}
	for name, s := range map[string]dstune.Searcher{
		"compass": dstune.NewCompassSearch([]int{2}, box, 8, 1),
		"nm":      dstune.NewNelderMeadSearch([]int{2}, box),
		"coord":   dstune.NewCoordSearch([]int{2}, box),
	} {
		x, _ := dstune.MaximizeSearch(s, obj, 0)
		if x[0] != 33 {
			t.Errorf("%s found %v, want [33]", name, x)
		}
	}
}

func TestFacadeEndToEnd(t *testing.T) {
	fabric, _, err := dstune.ANLtoUChicago().NewFabric(1)
	if err != nil {
		t.Fatal(err)
	}
	fabric.SetLoad(dstune.ConstantLoad(dstune.Load{Cmp: 8}), nil)
	tr, err := fabric.NewTransfer(dstune.TransferConfig{Name: "t", Bytes: dstune.Unbounded})
	if err != nil {
		t.Fatal(err)
	}
	trace, err := dstune.NewCS(dstune.TunerConfig{
		Box:    dstune.MustBox([]int{1}, []int{64}),
		Start:  []int{2},
		Map:    dstune.MapNC(4),
		Budget: 300,
	}).Tune(context.Background(), tr)
	if err != nil {
		t.Fatal(err)
	}
	if trace.MeanThroughput() <= 0 {
		t.Fatal("no throughput")
	}
	var buf bytes.Buffer
	if err := dstune.WriteSeriesCSV(&buf, trace.Throughput(), trace.Param(0)); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(buf.String(), "series,t,v\n") {
		t.Fatalf("csv header: %q", buf.String()[:20])
	}
	var jbuf bytes.Buffer
	if err := dstune.WriteSeriesJSON(&jbuf, trace.BestCase()); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(jbuf.String(), "bestcase") {
		t.Fatal("json missing series name")
	}
	if dstune.Sparkline(trace.Throughput(), 10) == "" {
		t.Fatal("empty sparkline")
	}
}

func TestCustomFabricViaFacade(t *testing.T) {
	fabric, err := dstune.NewFabric(dstune.FabricConfig{
		Seed: 2,
		Source: dstune.HostConfig{
			Name:         "custom",
			Cores:        4,
			CorePumpRate: 1e9,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fabric.AddPath(dstune.PathConfig{
		Name:       "lan",
		Capacity:   1e9,
		BaseRTT:    0.005,
		RandomLoss: 1e-6,
		MaxCwnd:    4 << 20,
	}); err != nil {
		t.Fatal(err)
	}
	tr, err := fabric.NewTransfer(dstune.TransferConfig{Name: "c", Bytes: 1e9})
	if err != nil {
		t.Fatal(err)
	}
	r, err := tr.Run(context.Background(), dstune.Params{NC: 4, NP: 2}, 10)
	if err != nil {
		t.Fatal(err)
	}
	tr.Stop()
	if r.Bytes <= 0 {
		t.Fatal("no progress on custom fabric")
	}
}

func TestSocketFacade(t *testing.T) {
	srv, err := dstune.ServeGridFTP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	client, err := dstune.NewTransferClient(dstune.TransferClientConfig{
		Addr:   srv.Addr(),
		Bytes:  dstune.Unbounded,
		Shaper: &dstune.Shaper{Rate: 4e6},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Stop()
	r, err := client.Run(context.Background(), dstune.Params{NC: 2, NP: 1}, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	if r.Bytes <= 0 {
		t.Fatal("socket transfer made no progress")
	}
}

// TestKernelStatsSurfaceInReport: a TCPInfo-enabled socket run surfaces
// the kernel's per-stripe view (nonzero RTT and cwnd on Linux) in
// Report.Kernel, while simulated transfers — which have no kernel to
// ask — report Kernel == nil.
func TestKernelStatsSurfaceInReport(t *testing.T) {
	srv, err := dstune.ServeGridFTP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	client, err := dstune.NewTransferClient(dstune.TransferClientConfig{
		Addr:    srv.Addr(),
		Bytes:   dstune.Unbounded,
		TCPInfo: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Stop()
	r, err := client.Run(context.Background(), dstune.Params{NC: 2, NP: 1}, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	if runtime.GOOS == "linux" {
		if r.Kernel == nil || len(r.Kernel.Stripes) == 0 {
			t.Fatal("TCPInfo run surfaced no kernel samples")
		}
		for i, sk := range r.Kernel.Stripes {
			if sk.Cwnd == 0 || sk.RTT <= 0 {
				t.Fatalf("stripe %d: cwnd=%d rtt=%v, want nonzero", i, sk.Cwnd, sk.RTT)
			}
		}
		if r.Kernel.MeanRTT() <= 0 {
			t.Fatal("MeanRTT not positive")
		}
	}

	// The simulated fabric has no kernel: Kernel must stay nil.
	fabric, err := dstune.NewFabric(dstune.FabricConfig{
		Seed:   2,
		Source: dstune.HostConfig{Name: "sim", Cores: 4, CorePumpRate: 1e9},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fabric.AddPath(dstune.PathConfig{
		Name: "lan", Capacity: 1e9, BaseRTT: 0.005, MaxCwnd: 4 << 20,
	}); err != nil {
		t.Fatal(err)
	}
	tr, err := fabric.NewTransfer(dstune.TransferConfig{Name: "k", Bytes: 1e9})
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Stop()
	sr, err := tr.Run(context.Background(), dstune.Params{NC: 2, NP: 2}, 10)
	if err != nil {
		t.Fatal(err)
	}
	if sr.Kernel != nil {
		t.Fatal("simulated transfer surfaced kernel samples")
	}
}

func TestTunerNamesFacade(t *testing.T) {
	names := dstune.TunerNames()
	if len(names) != 7 || names[0] != "default" || names[6] != "model" {
		t.Fatalf("TunerNames = %v", names)
	}
}
