// Package dstune improves data transfer throughput with direct search
// optimization, reproducing Balaprakash et al., "Improving Data
// Transfer Throughput with Direct Search Optimization" (ICPP 2016).
//
// The library tunes the number of parallel TCP streams of a GridFTP-
// style transfer — concurrency (processes) times parallelism (streams
// per process) — online, one control epoch at a time, using three
// direct search methods: coordinate descent (cd-tuner), compass search
// (cs-tuner), and Nelder–Mead (nm-tuner), plus two baseline heuristics
// from the literature (heur1, heur2) and the static Globus default.
//
// Transfers are driven through the Transferer interface, with two
// implementations:
//
//   - a deterministic simulated testbed (NewFabric / Testbed presets)
//     reproducing the paper's WAN endpoints, including TCP congestion
//     control dynamics, endpoint CPU contention, external load, and
//     process-restart overhead; and
//   - a real-socket striped transfer client/server (ServeGridFTP /
//     NewTransferClient) for memory-to-memory runs over actual TCP.
//
// Quickstart (simulated):
//
//	tb := dstune.ANLtoUChicago()
//	fabric, _, err := tb.NewFabric(42)
//	// handle err
//	fabric.SetLoad(dstune.ConstantLoad(dstune.Load{Cmp: 16}), nil)
//	tr, err := fabric.NewTransfer(dstune.TransferConfig{
//		Name: "demo", Bytes: dstune.Unbounded,
//	})
//	// handle err
//	cfg := dstune.TunerConfig{
//		Box:    dstune.MustBox([]int{1}, []int{128}),
//		Start:  []int{2},
//		Map:    dstune.MapNC(8),
//		Budget: 1800,
//	}
//	trace, err := dstune.NewNM(cfg).Tune(context.Background(), tr)
//	// trace.MeanThroughput(), trace.Param(0), ...
//
// Tuned runs are interruptible and durable: cancelling the Tune
// context aborts the in-flight epoch promptly, TunerConfig.Drain
// stops cleanly at the next epoch boundary, TunerConfig.Checkpoint
// persists the run's state after every epoch, and TunerConfig.Resume
// continues a checkpointed run mid-search (see Checkpoint).
//
// The experiment harnesses that regenerate every figure of the paper
// live behind Fig1, TuneConcurrency, TuneBoth, CompareHeuristics, and
// Simultaneous; cmd/figures prints them and EXPERIMENTS.md records
// paper-vs-measured values.
package dstune

import (
	"io"
	"net"

	"dstune/internal/dataset"
	"dstune/internal/directsearch"
	"dstune/internal/endpoint"
	"dstune/internal/experiment"
	"dstune/internal/faultnet"
	"dstune/internal/gridftp"
	"dstune/internal/history"
	"dstune/internal/load"
	"dstune/internal/netem"
	"dstune/internal/obs"
	"dstune/internal/report"
	"dstune/internal/service"
	"dstune/internal/sim"
	"dstune/internal/trace"
	"dstune/internal/tuner"
	"dstune/internal/xfer"
)

// Time series produced by traces.
type (
	// Series is a named time series of (t, v) samples.
	Series = trace.Series
	// SeriesPoint is one sample of a Series.
	SeriesPoint = trace.Point
)

// WriteSeriesCSV writes series in long format (series,t,v).
func WriteSeriesCSV(w io.Writer, series ...*Series) error {
	return trace.WriteCSV(w, series...)
}

// WriteSeriesJSON writes series as a JSON array.
func WriteSeriesJSON(w io.Writer, series ...*Series) error {
	return trace.WriteJSON(w, series...)
}

// Sparkline renders a series as a fixed-width ASCII sparkline.
func Sparkline(s *Series, width int) string { return trace.Sparkline(s, width) }

// HTML reporting.
type (
	// HTMLReport assembles charts, tiles, and tables into one
	// self-contained HTML page with SVG charts (hover tooltips,
	// legends, table views, light/dark).
	HTMLReport = report.Report
	// ReportLineChart is a multi-series line chart section.
	ReportLineChart = report.LineChart
	// ReportLineSeries is one series of a ReportLineChart.
	ReportLineSeries = report.LineSeries
	// ReportBarChart is a grouped column chart section.
	ReportBarChart = report.BarChart
	// ReportBarGroup is one category of a ReportBarChart.
	ReportBarGroup = report.BarGroup
	// ReportTile is one stat tile of a KPI row.
	ReportTile = report.Tile
)

// NewHTMLReport returns an empty HTML report page.
func NewHTMLReport(title, subtitle string) *HTMLReport { return report.New(title, subtitle) }

// Transfer parameters and reports.
type (
	// Params are the tunable transfer parameters: concurrency (NC)
	// and parallelism (NP).
	Params = xfer.Params
	// Report describes one control epoch of a transfer.
	Report = xfer.Report
	// Transferer runs a transfer one control epoch at a time; it is
	// the black box the tuners optimize.
	Transferer = xfer.Transferer
	// RestartPolicy controls when a simulated transfer pays process
	// restart dead time.
	RestartPolicy = xfer.RestartPolicy
	// TransferState is the durable state of a transfer captured for
	// checkpointing (acked/remaining bytes, cumulative clock, token).
	TransferState = xfer.TransferState
)

// Restart policies.
const (
	// RestartEveryEpoch restarts processes on every Run, as the
	// paper's tuner wrappers do.
	RestartEveryEpoch = xfer.RestartEveryEpoch
	// RestartOnChange restarts only when parameters change — the
	// paper's "ideal scenario".
	RestartOnChange = xfer.RestartOnChange
)

// Unbounded is the transfer size for open-ended runs.
var Unbounded = xfer.Unbounded

// DefaultParams returns the Globus service default for large files:
// concurrency 2, parallelism 8.
func DefaultParams() Params { return xfer.Default() }

// Simulated fabric.
type (
	// Fabric is a simulated testbed: one source endpoint, network
	// paths, external load, and any number of lockstep transfers.
	Fabric = xfer.Fabric
	// FabricConfig configures a Fabric.
	FabricConfig = xfer.FabricConfig
	// TransferConfig describes one transfer on a Fabric.
	TransferConfig = xfer.TransferConfig
	// SimTransfer is a simulated transfer; it implements Transferer.
	SimTransfer = xfer.Sim
	// HostConfig describes a source endpoint (cores, pump rate,
	// scheduler behaviour, restart cost, NIC).
	HostConfig = endpoint.Config
	// PathConfig describes a WAN path (capacity, RTT, loss, buffer).
	PathConfig = netem.Config
	// Path is a network path attached to a Fabric.
	Path = netem.Path
)

// NewFabric builds a simulation fabric; add paths with AddPath before
// creating transfers.
func NewFabric(cfg FabricConfig) (*Fabric, error) { return xfer.NewFabric(cfg) }

// External load.
type (
	// Load is the external load at one instant: Tfr competing
	// transfer streams and Cmp compute jobs at the source.
	Load = load.Load
	// LoadSchedule yields the external load at any virtual time.
	LoadSchedule = load.Schedule
	// LoadSegment is one piece of a piecewise-constant schedule.
	LoadSegment = load.Segment
)

// ConstantLoad returns a time-invariant schedule.
func ConstantLoad(l Load) LoadSchedule { return load.Constant(l) }

// NoLoad returns the empty schedule.
func NoLoad() LoadSchedule { return load.None() }

// StepLoad switches from before to after at time at.
func StepLoad(at float64, before, after Load) LoadSchedule { return load.Step(at, before, after) }

// PiecewiseLoad builds a piecewise-constant schedule.
func PiecewiseLoad(segs ...LoadSegment) LoadSchedule { return load.Piecewise(segs...) }

// SquareLoad alternates between a and b every period seconds (a
// first) — bursty background conditions.
func SquareLoad(period float64, a, b Load) LoadSchedule { return load.Square(period, a, b) }

// Tuners.
type (
	// Tuner adapts a transfer's parameters over its lifetime.
	Tuner = tuner.Tuner
	// TunerConfig parameterizes a tuner (epoch, tolerance, bounds,
	// starting point, budget).
	TunerConfig = tuner.Config
	// ParamMap converts a tuned integer vector to transfer
	// parameters.
	ParamMap = tuner.ParamMap
	// Trace is the per-epoch record of one tuned transfer.
	Trace = tuner.Trace
	// EpochResult is one control epoch within a Trace.
	EpochResult = tuner.EpochResult
	// RestartFrom selects the inner-search restart point of cs-tuner
	// and nm-tuner.
	RestartFrom = tuner.RestartFrom
)

// Inner-search restart points.
const (
	// FromOrigin restarts from x0, as in the paper's pseudocode.
	FromOrigin = tuner.FromOrigin
	// FromCurrent restarts from the current incumbent.
	FromCurrent = tuner.FromCurrent
)

// MapNC tunes concurrency only, with parallelism fixed at np.
func MapNC(np int) ParamMap { return tuner.MapNC(np) }

// MapNCNP tunes concurrency and parallelism simultaneously.
func MapNCNP() ParamMap { return tuner.MapNCNP() }

// NewCD returns the coordinate-descent tuner (Algorithm 1).
func NewCD(cfg TunerConfig) Tuner { return tuner.NewCD(cfg) }

// NewCS returns the compass-search tuner (Algorithm 2).
func NewCS(cfg TunerConfig) Tuner { return tuner.NewCS(cfg) }

// NewNM returns the Nelder–Mead tuner (Algorithm 3).
func NewNM(cfg TunerConfig) Tuner { return tuner.NewNM(cfg) }

// NewHeur1 returns Balman's additive-increase heuristic baseline.
func NewHeur1(cfg TunerConfig) Tuner { return tuner.NewHeur1(cfg) }

// NewHeur2 returns Yildirim's exponential-increase heuristic baseline.
func NewHeur2(cfg TunerConfig) Tuner { return tuner.NewHeur2(cfg) }

// NewModel returns the empirical model-fitting baseline from the
// paper's related work (Yildirim/Yin): sample, fit the
// parallel-stream throughput curve, jump to its optimum.
func NewModel(cfg TunerConfig) Tuner { return tuner.NewModel(cfg) }

// NewStatic returns the non-adaptive baseline (the paper's `default`).
func NewStatic(cfg TunerConfig) Tuner { return tuner.NewStatic(cfg) }

// Strategy state machines and the shared epoch Driver. Every tuner
// above is a Strategy (an explicit propose/observe state machine with
// JSON-serializable state) composed with the Driver that owns the
// epoch loop, budget, transient tolerance, and checkpointing; the
// pieces are exported so custom strategies get the same machinery and
// one process can drive many strategies concurrently (see Fleet).
type (
	// Strategy is a tuner's decision kernel: Propose a vector, run an
	// epoch, Observe the report, repeat. Snapshot/Restore round-trip
	// its complete state for O(1) checkpoint resume.
	Strategy = tuner.Strategy
	// Driver paces one Strategy against one Transferer, owning the
	// epoch loop, budget, transient-failure counting, and
	// checkpointing.
	Driver = tuner.Driver
	// Fleet drives N (strategy, transfers) sessions concurrently from
	// one scheduler loop with shared accounting.
	Fleet = tuner.Fleet
	// FleetConfig parameterizes a Fleet (epoch, budget, transient
	// tolerance).
	FleetConfig = tuner.FleetConfig
	// FleetSession is one (strategy, transfers) pairing of a Fleet.
	FleetSession = tuner.FleetSession
	// FleetSessionResult is one session's outcome: per-transfer
	// traces, total bytes, terminal error.
	FleetSessionResult = tuner.SessionResult
)

// NewStrategy builds the named strategy — one of "default",
// "cd-tuner", "cs-tuner", "nm-tuner", "heur1", "heur2", "model",
// "two-phase", "rl-bandit", "rl-q", or any of them under a "warm:"
// prefix (e.g. "warm:cs-tuner") — from cfg. The warm and two-phase
// forms built here are cold (no history store); use
// NewWarmStartStrategy / NewWarm / NewTwoPhaseTuner to attach one.
func NewStrategy(name string, cfg TunerConfig) (Strategy, error) { return tuner.NewStrategy(name, cfg) }

// KnownStrategy reports whether name resolves to a strategy
// NewStrategy can build, including "warm:"-prefixed forms.
func KnownStrategy(name string) bool { return tuner.KnownStrategy(name) }

// StrategyNames lists every base (unprefixed) strategy name, in
// STRATEGIES.md documentation order.
func StrategyNames() []string { return tuner.StrategyNames() }

// The learning plane: learned strategies under the same Strategy
// contract as the direct searches, with their full policy state
// (value tables, visit counts, RNG position) in the exported JSON
// snapshot.
type (
	// RLBanditStrategy is the contextual ε-greedy bandit over a
	// geometric (nc, np[, pp]) arm grid with load-level context
	// buckets ("rl-bandit").
	RLBanditStrategy = tuner.RLBanditStrategy
	// RLBanditState is rl-bandit's complete serializable state.
	RLBanditState = tuner.RLBanditState
	// RLQStrategy is tabular Q-learning over (load bucket, vector)
	// states and compass-move-or-stay actions ("rl-q").
	RLQStrategy = tuner.RLQStrategy
	// RLQState is rl-q's complete serializable state.
	RLQState = tuner.RLQState
)

// NewRLBandit returns the rl-bandit learned strategy over cfg's box.
func NewRLBandit(cfg TunerConfig) *RLBanditStrategy { return tuner.NewRLBandit(cfg) }

// NewRLQ returns the rl-q learned strategy over cfg's box.
func NewRLQ(cfg TunerConfig) *RLQStrategy { return tuner.NewRLQ(cfg) }

// NewNamed returns the named strategy under the standard Driver — the
// by-name counterpart of the NewCD/NewCS/... constructors, covering
// every name KnownStrategy accepts.
func NewNamed(name string, cfg TunerConfig) (Tuner, error) { return tuner.NewNamed(name, cfg) }

// NewDriver returns a Driver for cfg; its Run method drives any
// Strategy against a Transferer.
func NewDriver(cfg TunerConfig) *Driver { return tuner.NewDriver(cfg) }

// NewFleet returns a Fleet over the given sessions; its Run method
// drives them all concurrently until each ends.
func NewFleet(cfg FleetConfig, sessions ...FleetSession) *Fleet {
	return tuner.NewFleet(cfg, sessions...)
}

// Direct search (usable standalone for offline optimization).
type (
	// Box is a bounded integer search domain; its Clamp method is
	// the paper's fBnd.
	Box = directsearch.Box
	// Searcher is the ask/tell optimizer interface.
	Searcher = directsearch.Searcher
)

// MustBox builds a Box from bounds, panicking on invalid input.
func MustBox(lo, hi []int) Box { return directsearch.MustBox(lo, hi) }

// NewBox builds a Box from bounds.
func NewBox(lo, hi []int) (Box, error) { return directsearch.NewBox(lo, hi) }

// MaximizeSearch drives a Searcher against an objective function.
func MaximizeSearch(s Searcher, f func([]int) float64, maxEvals int) ([]int, float64) {
	return directsearch.Maximize(s, f, maxEvals)
}

// NewCompassSearch returns a standalone compass search over box
// starting at start, with initial step lambda (0 selects 8) and a
// seeded polling order.
func NewCompassSearch(start []int, box Box, lambda float64, seed uint64) Searcher {
	return directsearch.NewCompass(start, box, directsearch.CompassConfig{Lambda: lambda}, sim.NewRNG(seed))
}

// NewNelderMeadSearch returns a standalone Nelder–Mead search over box
// starting at start, with the customary coefficients.
func NewNelderMeadSearch(start []int, box Box) Searcher {
	return directsearch.NewNelderMead(start, box, directsearch.NMConfig{})
}

// NewCoordSearch returns a standalone coordinate-descent search over
// box starting at start.
func NewCoordSearch(start []int, box Box) Searcher {
	return directsearch.NewCoord(start, box, directsearch.CoordConfig{})
}

// Real-socket transfers.
type (
	// GridFTPServer is the receiving end of the striped memory-to-
	// memory protocol.
	GridFTPServer = gridftp.Server
	// TransferClient is the striped sender; it implements
	// Transferer against wall-clock time.
	TransferClient = gridftp.Client
	// TransferClientConfig configures a TransferClient.
	TransferClientConfig = gridftp.ClientConfig
	// Shaper emulates endpoint contention on fast links so the
	// tuners have an interior optimum to find.
	Shaper = gridftp.Shaper
)

// ServeGridFTP starts a transfer server on addr (e.g. "127.0.0.1:0").
func ServeGridFTP(addr string) (*GridFTPServer, error) { return gridftp.Serve(addr) }

// ServeGridFTPListener starts a transfer server accepting on a
// caller-supplied listener — e.g. one wrapped with InjectFaults.
// Closing the server closes the listener.
func ServeGridFTPListener(ln net.Listener) *GridFTPServer { return gridftp.ServeListener(ln) }

// NewTransferClient returns a real-socket transfer client.
func NewTransferClient(cfg TransferClientConfig) (*TransferClient, error) {
	return gridftp.NewClient(cfg)
}

// Fault tolerance on the real-socket path.
type (
	// RetryConfig governs a TransferClient's per-connection dial
	// retries (attempts, exponential backoff, cap).
	RetryConfig = gridftp.RetryConfig
	// DialFunc is a pluggable dialer for a TransferClient, e.g. a
	// fault injector's Dial.
	DialFunc = gridftp.DialFunc
	// FaultConfig selects the faults a FaultInjector produces (seeded
	// dial-refusal probability, mid-stream reset, added latency).
	FaultConfig = faultnet.Config
	// FaultInjector wraps dials and listeners with deterministic,
	// seeded network faults for resilience testing.
	FaultInjector = faultnet.Injector
)

// ErrTransient marks transfer errors that may clear on their own
// (dial timeouts, resets, partial stripe failures); the tuners record
// such epochs as zero-throughput and keep tuning. Test with
// IsTransientError.
var ErrTransient = xfer.ErrTransient

// IsTransientError reports whether err is marked transient.
func IsTransientError(err error) bool { return xfer.IsTransient(err) }

// NewFaultInjector returns a deterministic network fault injector;
// use its Dial as a TransferClientConfig.Dialer or wrap a listener
// with InjectFaults.
func NewFaultInjector(cfg FaultConfig) *FaultInjector { return faultnet.New(cfg) }

// InjectFaults wraps ln so accepted connections carry in's faults.
func InjectFaults(in *FaultInjector, ln net.Listener) net.Listener { return in.Listen(ln) }

// NoTolerance and NoLambda make an explicit zero configurable in
// TunerConfig, where the zero value selects the paper's defaults.
var (
	NoTolerance = tuner.NoTolerance
	NoLambda    = tuner.NoLambda
)

// Checkpoint and resume.
type (
	// Checkpoint is the durable state of a tuned transfer, written
	// after every control epoch; assign one to TunerConfig.Resume to
	// continue the run mid-search.
	Checkpoint = tuner.Checkpoint
	// CheckpointEpoch is one recorded control epoch of a Checkpoint.
	CheckpointEpoch = tuner.EpochRecord
	// CheckpointWriter persists checkpoints; assign one to
	// TunerConfig.Checkpoint.
	CheckpointWriter = tuner.CheckpointWriter
	// CheckpointFunc adapts a function to CheckpointWriter.
	CheckpointFunc = tuner.CheckpointFunc
	// FileCheckpoint is a CheckpointWriter targeting a file, written
	// atomically (temp file + rename) on every save.
	FileCheckpoint = tuner.FileCheckpoint
)

// NewFileCheckpoint returns a checkpoint writer targeting path.
func NewFileCheckpoint(path string) *FileCheckpoint { return tuner.NewFileCheckpoint(path) }

// LoadCheckpoint reads and validates a checkpoint file written by a
// FileCheckpoint.
func LoadCheckpoint(path string) (*Checkpoint, error) { return tuner.LoadCheckpoint(path) }

// ErrInterrupted is returned by Tune when the run was stopped
// gracefully by the TunerConfig.Drain channel: the in-flight epoch
// completed, the final checkpoint was written, and the transfer was
// left running so a later session can resume it.
var ErrInterrupted = tuner.ErrInterrupted

// Historical knowledge plane: an append-only store of past transfer
// outcomes keyed by endpoint identity, dataset size class, and
// external-load fingerprint, and the strategies that warm-start from
// it (see DESIGN.md §3d).
type (
	// HistoryStore is a crash-safe JSONL store of best-known transfer
	// outcomes; query it with Lookup, extend it with Add.
	HistoryStore = history.Store
	// HistoryKey identifies one operating regime in a HistoryStore:
	// endpoint identity, dataset size class, external-load class.
	HistoryKey = history.Key
	// HistoryRecord is one recorded outcome: the key, the parameter
	// vector, its observed throughput, and run metadata.
	HistoryRecord = history.Record
	// HistoryEntry is a Lookup result: the best-known vector, its
	// throughput, and the key distance of the match (0 = exact).
	HistoryEntry = history.Entry
	// WarmStartStrategy wraps any built-in strategy so its first
	// proposal is the history store's predicted optimum.
	WarmStartStrategy = tuner.WarmStartStrategy
	// TwoPhaseStrategy samples a coarse historical candidate list,
	// then refines around the winner with a fine compass search.
	TwoPhaseStrategy = tuner.TwoPhaseStrategy
)

// ErrHistoryCorrupt wraps OpenHistory errors reporting damaged lines
// that were skipped; the returned store holds the intact records and
// remains fully usable.
var ErrHistoryCorrupt = history.ErrCorrupt

// OpenHistory opens (creating if absent) the transfer-history store at
// path. Damaged lines — a torn tail from a crash mid-append, or
// hand-edited garbage — are skipped and reported via an error wrapping
// ErrHistoryCorrupt; the store is unusable only when it is nil.
func OpenHistory(path string) (*HistoryStore, error) { return history.Open(path) }

// NewMemHistory returns an in-memory history store (tests, one-shot
// studies).
func NewMemHistory() *HistoryStore { return history.NewMemStore() }

// HistorySizeClass buckets a transfer volume in bytes into a history
// key's size class (log2 of megabytes; -1 for unbounded).
func HistorySizeClass(bytes float64) int { return history.SizeClass(bytes) }

// HistoryLoadClass buckets an external-load level (e.g. competing
// streams plus compute jobs) into a history key's load class.
func HistoryLoadClass(level int) int { return history.LoadClass(level) }

// NewWarmStartStrategy wraps the named inner strategy with a history
// warm start: a store hit under key makes the inner strategy begin at
// the predicted optimum. The store may be nil (cold).
func NewWarmStartStrategy(inner string, cfg TunerConfig, store *HistoryStore, key HistoryKey) (*WarmStartStrategy, error) {
	return tuner.NewWarmStart(inner, cfg, store, key)
}

// NewWarm returns the warm-started form of the named strategy under
// the standard Driver; its checkpoints carry the "warm:<inner>" name
// and resume like any other run.
func NewWarm(inner string, cfg TunerConfig, store *HistoryStore, key HistoryKey) (Tuner, error) {
	return tuner.NewWarm(inner, cfg, store, key)
}

// NewTwoPhaseTuner returns the two-phase tuner: a coarse pass over
// history-seeded candidates, then a fine compass search around the
// coarse winner. The store may be nil (cold candidates).
func NewTwoPhaseTuner(cfg TunerConfig, store *HistoryStore, key HistoryKey) Tuner {
	return tuner.NewTwoPhaseTuner(cfg, store, key)
}

// NewTwoPhaseStrategy returns the two-phase decision kernel itself,
// for use under a Driver or Fleet. The store may be nil (cold
// candidates).
func NewTwoPhaseStrategy(cfg TunerConfig, store *HistoryStore, key HistoryKey) *TwoPhaseStrategy {
	return tuner.NewTwoPhase(cfg, store, key)
}

// Observability: the observation plane documented in OBSERVABILITY.md.
type (
	// Observer is the top-level observation handle: a metrics
	// registry, a structured event recorder, and the per-session views
	// behind the /status endpoint. Assign Observer.Session(id) to
	// TunerConfig.Obs / TransferClientConfig.Obs, or the Observer
	// itself to FleetConfig.Obs / FaultConfig.Obs.
	Observer = obs.Observer
	// ObserverConfig configures NewObserver: the event ring capacity
	// and an optional JSONL trace sink.
	ObserverConfig = obs.ObserverConfig
	// SessionObs is one session's observation view, created by
	// Observer.Session.
	SessionObs = obs.SessionObs
	// MetricsRegistry holds metric families and renders Prometheus
	// text exposition.
	MetricsRegistry = obs.Registry
	// EventRecorder buffers structured events and mirrors them to a
	// JSONL sink.
	EventRecorder = obs.Recorder
	// Event is one structured trace record.
	Event = obs.Event
	// EventType names one kind of structured event.
	EventType = obs.EventType
	// ObsEndpoint is a live introspection server started by
	// Observer.Serve, exposing /metrics, /status, /debug/vars, and
	// /debug/pprof.
	ObsEndpoint = obs.Endpoint
	// SessionStatus is one session's live state in the /status
	// document.
	SessionStatus = obs.SessionStatus
)

// NewObserver returns an observation handle; thread it through the
// configs above and expose it with Observer.Serve.
func NewObserver(cfg ObserverConfig) *Observer { return obs.NewObserver(cfg) }

// Experiments (the paper's evaluation).
type (
	// Testbed is a named source endpoint and WAN path preset.
	Testbed = experiment.Testbed
	// RunConfig carries the knobs shared by the figure harnesses.
	RunConfig = experiment.RunConfig
	// Fig1Config parameterizes the Figure 1 sweep.
	Fig1Config = experiment.Fig1Config
	// Fig1Result holds Figure 1's boxplot statistics.
	Fig1Result = experiment.Fig1Result
	// TuningResult holds the traces of several tuners run under
	// identical conditions (Figures 5-10).
	TuningResult = experiment.TuningResult
	// SimultaneousResult holds Figure 11's two concurrently tuned
	// transfers.
	SimultaneousResult = experiment.SimultaneousResult
	// Improvement summarizes one scenario's default-vs-tuner gain.
	Improvement = experiment.Improvement
)

// ANLtoUChicago returns the paper's 40 Gb/s short-RTT testbed.
func ANLtoUChicago() Testbed { return experiment.ANLtoUChicago() }

// ANLtoTACC returns the paper's 20 Gb/s, 33 ms testbed.
func ANLtoTACC() Testbed { return experiment.ANLtoTACC() }

// Fig1 reproduces the Figure 1 concurrency sweep.
func Fig1(tb Testbed, cfg Fig1Config) (*Fig1Result, error) { return experiment.Fig1(tb, cfg) }

// Fig5Loads returns the five load scenarios of Figures 5-7.
func Fig5Loads() []Load { return experiment.Fig5Loads() }

// TuneConcurrency reproduces one subfigure of Figures 5-7.
func TuneConcurrency(tb Testbed, l Load, rc RunConfig) (*TuningResult, error) {
	return experiment.TuneConcurrency(tb, l, rc)
}

// VaryingLoad returns the §IV-B load schedule (step at t=1000 s).
func VaryingLoad() LoadSchedule { return experiment.VaryingLoad() }

// TuneBoth reproduces Figures 8/9 (two-parameter tuning, varying
// load).
func TuneBoth(tb Testbed, rc RunConfig) (*TuningResult, error) {
	return experiment.TuneBoth(tb, rc)
}

// CompareHeuristics reproduces Figure 10 (nm-tuner vs heur1/heur2).
func CompareHeuristics(tb Testbed, rc RunConfig) (*TuningResult, error) {
	return experiment.CompareHeuristics(tb, rc)
}

// Simultaneous reproduces Figure 11 (two concurrently tuned
// transfers sharing the source NIC).
func Simultaneous(tunerName string, rc RunConfig) (*SimultaneousResult, error) {
	return experiment.Simultaneous(tunerName, rc)
}

// Improvements derives the §IV-A claims (gain factors, restart
// overheads) from tuning results.
func Improvements(results []*TuningResult) []Improvement {
	return experiment.Improvements(results)
}

// RenderImprovements formats the claims table of Improvements.
func RenderImprovements(imps []Improvement) string {
	return experiment.RenderImprovements(imps)
}

// Disk-to-disk transfers (the paper's future-work item (1)).
type (
	// Dataset is an ordered set of files for a disk-to-disk
	// transfer.
	Dataset = dataset.Dataset
	// DatasetFile is one file of a Dataset.
	DatasetFile = dataset.File
	// DiskScenario is one disk workload regime (file-size mix,
	// storage bandwidth, per-file latency).
	DiskScenario = experiment.DiskScenario
)

// UniformDataset returns n files of identical size.
func UniformDataset(n int, size int64) Dataset { return dataset.Uniform(n, size) }

// LogNormalDataset returns n files with log-normally distributed
// sizes (median bytes, log-space sigma), deterministic per seed.
func LogNormalDataset(n int, median, sigma float64, seed uint64) Dataset {
	return dataset.LogNormal(n, median, sigma, seed)
}

// ParetoDataset returns n files with Pareto-distributed sizes
// (minimum xm bytes, tail index alpha), deterministic per seed.
func ParetoDataset(n int, xm, alpha float64, seed uint64) Dataset {
	return dataset.Pareto(n, xm, alpha, seed)
}

// ManySmallFiles returns the latency-bound regime: n files of 1 MB.
func ManySmallFiles(n int) Dataset { return dataset.ManySmall(n) }

// ConcatDatasets joins datasets in order.
func ConcatDatasets(sets ...Dataset) Dataset { return dataset.Concat(sets...) }

// MaterializeDataset creates the dataset's files on disk under dir
// (sparse, size-exact), ready to serve as a TransferClient SourceDir.
// Existing files of the right size are left alone, so re-running
// against a warm directory is cheap.
func MaterializeDataset(dir string, d Dataset) error { return dataset.Materialize(dir, d) }

// ParseDataset builds a dataset from a compact textual spec —
// "10000x1MiB", "manysmall:20000", "fewhuge:16", or
// "lognormal:2000:8MiB:1.5" (see dataset.ParseSpec). Deterministic
// per seed; hostile specs return an error, never a panic.
func ParseDataset(spec string, seed uint64) (Dataset, error) {
	return dataset.ParseSpec(spec, seed)
}

// Default per-file transfer constants shared by the disk simulator,
// the experiment scenarios, and the CLI flag defaults.
const (
	// DefaultDiskRate is the assumed source storage bandwidth in
	// bytes per second.
	DefaultDiskRate = dataset.DefaultDiskRate
	// DefaultFileOverhead is the assumed per-file request latency in
	// seconds.
	DefaultFileOverhead = dataset.DefaultFileOverhead
)

// DefaultDiskParams returns the static disk-to-disk setting:
// concurrency 2, parallelism 8, pipelining 4.
func DefaultDiskParams() Params { return xfer.DefaultDisk() }

// MapNCNPPP tunes concurrency, parallelism, and pipelining; x is
// [nc, np, pp].
func MapNCNPPP() ParamMap { return tuner.MapNCNPPP() }

// MapFixedPP wraps m with the pipelining depth fixed at pp — for
// dataset transfers that tune fewer than three dimensions.
func MapFixedPP(m ParamMap, pp int) ParamMap { return tuner.MapFixedPP(m, pp) }

// DiskScenarios returns the three disk workload regimes (many-small,
// lognormal-mix, few-huge), deterministic per seed.
func DiskScenarios(seed uint64) []DiskScenario { return experiment.DiskScenarios(seed) }

// TuneDisk runs the disk-to-disk comparison for one scenario: the
// static disk default against cs-tuner and nm-tuner tuning
// [nc, np, pp].
func TuneDisk(tb Testbed, sc DiskScenario, rc RunConfig) (*TuningResult, error) {
	return experiment.TuneDisk(tb, sc, rc)
}

// FilesMoved sums the files completed across a trace.
func FilesMoved(tr *Trace) int { return experiment.FilesMoved(tr) }

// Joint (endpoint-level) tuning of several transfers — the paper's
// future-work item (4).
type (
	// JointTuner optimizes several transfers as one direct search
	// over the concatenated parameter vector, maximizing the
	// weighted aggregate throughput.
	JointTuner = tuner.Joint
	// JointTunerConfig parameterizes a JointTuner.
	JointTunerConfig = tuner.JointConfig
	// JointComparison holds the joint-vs-independent study results.
	JointComparison = experiment.JointComparison
)

// NewJointCS returns a joint tuner driven by compass search.
func NewJointCS(cfg JointTunerConfig) *JointTuner { return tuner.NewJointCS(cfg) }

// NewJointNM returns a joint tuner driven by Nelder–Mead.
func NewJointNM(cfg JointTunerConfig) *JointTuner { return tuner.NewJointNM(cfg) }

// JointVsIndependent runs the Figure 11 scenario twice — independent
// nm-tuners vs one joint nm search — and returns both outcomes.
func JointVsIndependent(rc RunConfig) (*JointComparison, error) {
	return experiment.JointVsIndependent(rc)
}

// TunerNames lists the tuners in the paper's presentation order.
func TunerNames() []string { return experiment.TunerNames() }

// ThirdParty runs the tuners under bursty third-party network traffic
// (n background streams toggling every period seconds) — the traffic
// class the paper could not control on its production links.
func ThirdParty(tb Testbed, n int, period float64, rc RunConfig) (*TuningResult, error) {
	return experiment.ThirdParty(tb, n, period, rc)
}

// ConvergenceTimes returns each tuner's time to reach frac of its
// steady throughput (rolling window of `window` epochs).
func ConvergenceTimes(res *TuningResult, frac float64, window int) map[string]float64 {
	return experiment.ConvergenceTimes(res, frac, window)
}

// CompareModel pits the related-work empirical model baseline against
// nm-tuner and default under the Figure 10 varying load.
func CompareModel(tb Testbed, rc RunConfig) (*TuningResult, error) {
	return experiment.CompareModel(tb, rc)
}

type (
	// WarmStartCell is one (tuner, load) cell of a WarmStartStudy.
	WarmStartCell = experiment.WarmStartCell
	// WarmStartResult holds a warm-vs-cold study over a load sweep.
	WarmStartResult = experiment.WarmStartResult
)

// WarmStartLoads is the external-load sweep of the warm-start study:
// no load, then external traffic at 16, 32, and 64 streams.
func WarmStartLoads() []Load { return experiment.WarmStartLoads() }

// WarmStartStudy measures what the history knowledge plane buys: each
// named tuner runs cold, records its best epoch, and reruns
// warm-started on an identically seeded fabric, for every load in the
// sweep. frac and window parameterize the critical-point detector.
func WarmStartStudy(tb Testbed, names []string, loads []Load, rc RunConfig, frac float64, window int) (*WarmStartResult, error) {
	return experiment.WarmStartStudy(tb, names, loads, rc, frac, window)
}

type (
	// DynamicSchedule pairs a named load schedule with its shift
	// times for the dynamic-load study.
	DynamicSchedule = experiment.DynamicSchedule
	// DynamicLoadCell is one (tuner, schedule) run's scores: integral
	// volume, mean throughput, per-shift re-adaptation lags.
	DynamicLoadCell = experiment.DynamicLoadCell
	// DynamicLoadResult holds a dynamic-load study's cells and the
	// lag-detector settings.
	DynamicLoadResult = experiment.DynamicLoadResult
	// DynamicLoadConfig parameterizes DynamicLoadStudy.
	DynamicLoadConfig = experiment.DynamicLoadConfig
)

// DynamicSchedules returns the study's default load schedules (step,
// square, piecewise, constant control) over a run of the given
// duration (zero selects 1800 s).
func DynamicSchedules(duration float64) []DynamicSchedule {
	return experiment.DynamicSchedules(duration)
}

// DynamicLoadTuners lists the study's default contenders: the paper's
// three direct searches against both learned strategies.
func DynamicLoadTuners() []string { return experiment.DynamicLoadTuners() }

// DynamicLoadStudy judges learned strategies against direct search on
// dynamic load: every tuner crossed with every schedule on one
// simulated testbed, scoring integral throughput and the re-adaptation
// lag after each load shift (measured against the best rolling-window
// throughput any contender reached in that post-shift segment).
func DynamicLoadStudy(tb Testbed, cfg DynamicLoadConfig) (*DynamicLoadResult, error) {
	return experiment.DynamicLoadStudy(tb, cfg)
}

// The service plane: a long-running, crash-safe, multi-tenant tuning
// daemon (cmd/dstuned) supervising many concurrent sessions across
// worker shards.
type (
	// ServiceConfig configures a tuning daemon supervisor: state
	// directory, shard count, admission limits, and wiring.
	ServiceConfig = service.Config
	// ServiceLimits bounds admission: fleet-wide active/queued caps,
	// per-tenant quotas, and the tenant transient-fault budget.
	ServiceLimits = service.Limits
	// Supervisor owns the daemon's sessions: admission, sharded
	// execution, journaling, checkpointing, and crash re-adoption.
	Supervisor = service.Supervisor
	// JobSpec is one tuning job as submitted over the control API.
	JobSpec = service.JobSpec
	// JobStatus is the control API's view of one job.
	JobStatus = service.JobStatus
	// JobState labels where a job is in its lifecycle.
	JobState = service.JobState
	// RejectError reports an admission refusal with its reason and a
	// suggested retry delay.
	RejectError = service.RejectError
	// AdoptionRecord describes one in-flight session re-adopted from
	// the journal after a crash.
	AdoptionRecord = service.AdoptionRecord
	// ServiceTransferFactory overrides how the supervisor builds the
	// data plane for a job (tests inject in-memory transfers here).
	ServiceTransferFactory = service.TransferFactory
)

// Job lifecycle states reported by the control API.
const (
	// JobQueued: accepted and journaled, waiting for a shard slot.
	JobQueued = service.JobQueued
	// JobRunning: stepping under a shard's supervision loop.
	JobRunning = service.JobRunning
	// JobDone: finished cleanly; journal debt cleared.
	JobDone = service.JobDone
	// JobFailed: ended with a fatal error.
	JobFailed = service.JobFailed
	// JobCancelled: cancelled by the operator; checkpoint retained.
	JobCancelled = service.JobCancelled
	// JobEvicted: removed by the tenant fault-budget breaker.
	JobEvicted = service.JobEvicted
	// JobInterrupted: the daemon died with the job in flight; the next
	// incarnation re-adopts it.
	JobInterrupted = service.JobInterrupted
)

// ErrJobNotFound reports a control-API lookup of an unknown job ID.
var ErrJobNotFound = service.ErrNotFound

// NewSupervisor opens (or re-opens) a daemon state directory, re-adopts
// every journaled in-flight job, and returns the supervisor ready for
// Start.
func NewSupervisor(cfg ServiceConfig) (*Supervisor, error) { return service.New(cfg) }

// DecodeJobSpec parses and validates one control-API job submission.
func DecodeJobSpec(data []byte) (JobSpec, error) { return service.DecodeJobSpec(data) }
