// Command gridftpd runs the striped memory-to-memory transfer server:
// the receiving end for cmd/dstune's socket mode and for any
// dstune.TransferClient. Received data is discarded and counted per
// transfer token (the /dev/null end of the paper's setup).
//
// Usage:
//
//	gridftpd [-addr :7632] [-token-ttl 5m] [-sockbuf N] [-file-latency 0] [-sink DIR] [-obs-addr :9632] [-v]
package main

import (
	"flag"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"dstune"
)

func main() {
	log.SetFlags(log.LstdFlags)
	log.SetPrefix("gridftpd: ")
	addr := flag.String("addr", ":7632", "listen address")
	tokenTTL := flag.Duration("token-ttl", 5*time.Minute, "idle expiry for per-transfer byte counters; 0 disables")
	sockBuf := flag.Int("sockbuf", 0, "kernel socket buffer bytes for accepted connections; 0 = OS default")
	fileLatency := flag.Duration("file-latency", 0, "artificial per-file OPEN latency for dataset transfers, emulating remote metadata cost (what -pp pipelining hides)")
	sinkDir := flag.String("sink", "", "persist dataset transfers that request a sink under this directory (one subdirectory per token); empty keeps the discard-and-count behavior")
	obsAddr := flag.String("obs-addr", "", "serve /metrics, /status, /debug/vars, and /debug/pprof on this address; empty disables")
	verbose := flag.Bool("v", false, "log connection errors")
	flag.Parse()

	srv, err := dstune.ServeGridFTP(*addr)
	if err != nil {
		log.Fatal(err)
	}
	srv.SetTokenTTL(*tokenTTL)
	srv.SetSockBuf(*sockBuf)
	srv.SetFileLatency(*fileLatency)
	srv.SetSink(*sinkDir)
	if *obsAddr != "" {
		observer := dstune.NewObserver(dstune.ObserverConfig{})
		srv.SetObserver(observer)
		ep, err := observer.Serve(*obsAddr)
		if err != nil {
			log.Fatal(err)
		}
		defer ep.Close()
		log.Printf("observation plane on http://%s (/metrics /status /debug/vars /debug/pprof)", ep.Addr())
	}
	if *verbose {
		srv.SetLogger(log.Printf)
	}
	log.Printf("listening on %s", srv.Addr())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	log.Printf("shutting down")
	if err := srv.Close(); err != nil {
		log.Fatal(err)
	}
}
