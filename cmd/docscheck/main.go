// Command docscheck runs the repository's documentation lints and
// exits non-zero when any fail, for the CI docs job:
//
//	docscheck [-root DIR] [PKG_DIR ...]
//
// It checks every intra-repo markdown link under -root (default ".")
// and the godoc coverage of each listed package directory (default:
// the public surface — the dstune facade, internal/tuner,
// internal/xfer, internal/gridftp, internal/obs). Findings print one
// per line as file:line: message.
package main

import (
	"flag"
	"fmt"
	"os"

	"dstune/internal/docs"
)

// defaultPackages is the documented public surface checked when no
// package directories are given.
var defaultPackages = []string{".", "internal/tuner", "internal/xfer", "internal/gridftp", "internal/obs"}

func main() {
	root := flag.String("root", ".", "repository root to scan for markdown files")
	flag.Parse()

	pkgs := flag.Args()
	if len(pkgs) == 0 {
		pkgs = defaultPackages
	}

	failed := false
	links, err := docs.CheckLinks(*root)
	if err != nil {
		fmt.Fprintln(os.Stderr, "docscheck:", err)
		os.Exit(2)
	}
	for _, p := range links {
		fmt.Println(p)
		failed = true
	}
	exports, err := docs.CheckExports(pkgs...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "docscheck:", err)
		os.Exit(2)
	}
	for _, p := range exports {
		fmt.Println(p)
		failed = true
	}
	if failed {
		os.Exit(1)
	}
}
