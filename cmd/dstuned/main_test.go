package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"math"
	"math/rand"
	"net/http"
	"os"
	"os/exec"
	"strings"
	"syscall"
	"testing"
	"time"

	"dstune"
)

// TestMain doubles as the daemon entry point: when re-exec'd with
// DSTUNED_REEXEC=1 the test binary runs a real dstuned process, which
// lets TestDaemonSIGKILLRestart kill an actual daemon with an actual
// SIGKILL rather than simulating one in-process.
func TestMain(m *testing.M) {
	if os.Getenv("DSTUNED_REEXEC") == "1" {
		log := func(err error) {
			fmt.Fprintf(os.Stderr, "dstuned: %v\n", err)
			os.Exit(1)
		}
		if err := run(os.Args[1:]); err != nil {
			log(err)
		}
		os.Exit(0)
	}
	os.Exit(m.Run())
}

// daemon is one re-exec'd dstuned process under test.
type daemon struct {
	cmd *exec.Cmd
	url string
}

// startDaemon launches the test binary as a dstuned process on the
// given state directory and waits for its control API address.
func startDaemon(t *testing.T, state string, args ...string) *daemon {
	t.Helper()
	all := append([]string{"-addr", "127.0.0.1:0", "-state", state, "-shards", "2"}, args...)
	cmd := exec.Command(os.Args[0], all...)
	cmd.Env = append(os.Environ(), "DSTUNED_REEXEC=1")
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	addrCh := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stderr)
		for sc.Scan() {
			line := sc.Text()
			if _, after, ok := strings.Cut(line, "listening on "); ok {
				if addr, _, ok := strings.Cut(after, " "); ok {
					select {
					case addrCh <- addr:
					default:
					}
				}
			}
			t.Logf("[daemon] %s", line)
		}
	}()
	select {
	case addr := <-addrCh:
		return &daemon{cmd: cmd, url: "http://" + addr}
	case <-time.After(30 * time.Second):
		cmd.Process.Kill()
		cmd.Wait()
		t.Fatal("daemon did not report its control address")
		return nil
	}
}

// jobs lists the daemon's jobs keyed by ID.
func (d *daemon) jobs(t *testing.T) map[string]dstune.JobStatus {
	t.Helper()
	resp, err := http.Get(d.url + "/jobs")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var body struct {
		Jobs []dstune.JobStatus `json:"jobs"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	out := map[string]dstune.JobStatus{}
	for _, st := range body.Jobs {
		out[st.ID] = st
	}
	return out
}

// TestDaemonSIGKILLRestart is the daemon-level kill-and-restart soak:
// real-socket jobs run against an in-test transfer server under 20%
// injected dial failures, the daemon dies by genuine SIGKILL at a
// random moment mid-flight, and a second incarnation on the same state
// directory must finish every job with exact byte accounting.
func TestDaemonSIGKILLRestart(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns real daemon processes")
	}
	srv, err := dstune.ServeGridFTP("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	state := t.TempDir()
	const nJobs = 3
	const volume = 1.5e9
	spec := func(i int) string {
		return fmt.Sprintf(`{"id": "kill-%d", "addr": %q, "bytes": %.0f, "epoch": 0.05, "max_nc": 8, "seed": %d, "dial_fail_prob": 0.2, "max_transient": 100}`,
			i, srv.Addr(), float64(volume), i+1)
	}

	d1 := startDaemon(t, state)
	for i := 0; i < nJobs; i++ {
		resp, err := http.Post(d1.url+"/jobs", "application/json", strings.NewReader(spec(i)))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusCreated {
			t.Fatalf("submit %d: status %d", i, resp.StatusCode)
		}
	}

	// Let the fleet get genuinely mid-flight, then kill -9 at a random
	// point: no drain, no checkpoint-on-exit, no journal cleanup.
	deadline := time.Now().Add(30 * time.Second)
	for {
		if time.Now().After(deadline) {
			t.Fatal("no job settled an epoch before the kill")
		}
		settled := 0
		for _, st := range d1.jobs(t) {
			if st.Epochs > 0 {
				settled++
			}
		}
		if settled >= 1 {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	time.Sleep(time.Duration(rand.Intn(400)) * time.Millisecond)
	if err := d1.cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	d1.cmd.Wait()

	// Incarnation two on the same state directory picks up the debt.
	d2 := startDaemon(t, state)
	defer func() {
		d2.cmd.Process.Signal(syscall.SIGTERM)
		d2.cmd.Wait()
	}()
	waitUntil := time.Now().Add(120 * time.Second)
	for {
		jobs := d2.jobs(t)
		done := 0
		for _, st := range jobs {
			switch st.State {
			case dstune.JobDone:
				done++
			case dstune.JobFailed, dstune.JobEvicted, dstune.JobCancelled:
				t.Fatalf("job %s ended %s: %s", st.ID, st.State, st.Error)
			}
		}
		if len(jobs) == nJobs && done == nJobs {
			break
		}
		if time.Now().After(waitUntil) {
			t.Fatalf("jobs not done after restart: %+v", jobs)
		}
		time.Sleep(50 * time.Millisecond)
	}

	// Exact byte accounting across the kill: checkpointed epochs plus
	// the resumed run must cover the spec volume precisely.
	for id, st := range d2.jobs(t) {
		if math.Abs(st.Bytes-volume) > 1 {
			t.Errorf("job %s moved %.0f bytes across the kill, want %.0f", id, st.Bytes, float64(volume))
		}
	}
}
