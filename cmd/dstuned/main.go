// Command dstuned is the tuning service plane: a long-running,
// crash-safe, multi-tenant daemon that supervises tuner sessions
// across worker shards. Jobs arrive over an HTTP/JSON control API,
// are journaled durably before they are acknowledged, checkpoint
// after every control epoch, and are re-adopted mid-trajectory by the
// next incarnation after a crash or restart.
//
// Control API (also serving the observation plane's /metrics, /status,
// /debug/vars, and /debug/pprof):
//
//	POST   /jobs       submit a job (JSON JobSpec) — 201, or 429 with
//	                   Retry-After under backpressure
//	GET    /jobs       list all jobs
//	GET    /jobs/{id}  one job's status
//	DELETE /jobs/{id}  cancel: stop at the next epoch boundary,
//	                   keeping the checkpoint
//
// Usage:
//
//	dstuned -state DIR [-addr 127.0.0.1:9410] [-shards 4]
//	        [-max-active N] [-max-queued N] [-tenant-max-active N]
//	        [-tenant-fault-budget N] [-retry-after 1s]
//	        [-history FILE] [-obs-trace FILE]
//
// SIGINT or SIGTERM drains: every running session checkpoints at its
// next epoch boundary and its journal entry is retained, so a restart
// on the same -state directory resumes each job where it left off.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"dstune"
)

func main() {
	log.SetFlags(log.LstdFlags)
	log.SetPrefix("dstuned: ")
	if err := run(os.Args[1:]); err != nil {
		log.Fatal(err)
	}
}

// run is main minus the process scaffolding, so tests can drive a
// whole daemon in a subprocess (see TestMain).
func run(args []string) error {
	fs := flag.NewFlagSet("dstuned", flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:9410", "control API listen address")
	state := fs.String("state", "", "state directory for the job journal and checkpoints (required)")
	shards := fs.Int("shards", 4, "session-supervision worker shards")
	maxActive := fs.Int("max-active", 0, "sessions running at once across all shards; 0 = default (1024)")
	maxQueued := fs.Int("max-queued", 0, "jobs waiting for a shard slot before 429; 0 = default (4096)")
	tenantMaxActive := fs.Int("tenant-max-active", 0, "per-tenant admitted-job cap; 0 = max-active")
	tenantFaultBudget := fs.Int("tenant-fault-budget", 0, "per-tenant cumulative transient-epoch budget; 0 disables")
	retryAfter := fs.Duration("retry-after", 0, "Retry-After hint on 429 responses; 0 = default (1s)")
	historyPath := fs.String("history", "", "shared history store (JSONL) for warm starts; empty disables")
	obsTrace := fs.String("obs-trace", "", "append job and session lifecycle events to this JSONL file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *state == "" {
		return errors.New("-state is required")
	}

	// The observation plane is always on: the control listener serves
	// /metrics and friends alongside /jobs, and -obs-trace mirrors
	// every event to a durable JSONL file.
	obsCfg := dstune.ObserverConfig{}
	var sink *os.File
	if *obsTrace != "" {
		f, err := os.OpenFile(*obsTrace, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return err
		}
		sink = f
		obsCfg.EventSink = f
	}
	observer := dstune.NewObserver(obsCfg)

	// The shared knowledge plane: sessions warm-start from it and
	// record their best epochs into it. Damage degrades, it never
	// disables: intact records load and the loss is logged.
	var hist *dstune.HistoryStore
	if *historyPath != "" {
		store, herr := dstune.OpenHistory(*historyPath)
		if store == nil {
			return herr
		}
		if herr != nil {
			log.Printf("history: %v (continuing with the %d intact records)", herr, store.Len())
		}
		hist = store
	}

	sv, err := dstune.NewSupervisor(dstune.ServiceConfig{
		Dir:    *state,
		Shards: *shards,
		Limits: dstune.ServiceLimits{
			MaxActive:         *maxActive,
			MaxQueued:         *maxQueued,
			TenantMaxActive:   *tenantMaxActive,
			TenantFaultBudget: *tenantFaultBudget,
			RetryAfter:        *retryAfter,
		},
		Obs:     observer,
		History: hist,
		Logf:    log.Printf,
	})
	if err != nil {
		return err
	}
	for _, rec := range sv.Adopted() {
		log.Printf("adopted job %s (tenant %s): %d epochs, %.0f bytes, %.1fs transfer clock",
			rec.ID, rec.Tenant, rec.Epochs, rec.Bytes, rec.Clock)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	sv.Start(ctx)

	srv := &http.Server{Handler: sv.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()
	log.Printf("control API listening on %s (state %s, %d shards)", ln.Addr(), *state, *shards)

	select {
	case <-ctx.Done():
	case err := <-serveErr:
		sv.Wait()
		return err
	}

	// Drain: every running session checkpoints at its next epoch
	// boundary and keeps its journal entry; the next incarnation
	// re-adopts it.
	log.Printf("draining: sessions checkpoint at their next epoch boundary")
	sv.Wait()
	shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutCtx); err != nil {
		log.Printf("http shutdown: %v", err)
	}
	if hist != nil {
		if err := hist.Close(); err != nil {
			log.Printf("history: close: %v", err)
		}
	}
	if sink != nil {
		if err := sink.Sync(); err != nil {
			log.Printf("obs-trace: sync: %v", err)
		}
		sink.Close()
	}
	log.Printf("shutdown complete")
	return nil
}
