package main

import (
	"strings"
	"testing"

	"dstune"
)

func TestMakeTunerAllNames(t *testing.T) {
	cfg := dstune.TunerConfig{
		Box:   dstune.MustBox([]int{1}, []int{64}),
		Start: []int{2},
		Map:   dstune.MapNC(8),
	}
	names := []string{
		"default", "cd-tuner", "cs-tuner", "nm-tuner", "heur1", "heur2",
		"model", "two-phase", "warm:cs-tuner",
	}
	for _, name := range names {
		tn, err := makeTuner(name, cfg, nil, dstune.HistoryKey{})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if tn.Name() != name {
			t.Fatalf("name mismatch %q vs %q", tn.Name(), name)
		}
	}
	if _, err := makeTuner("bogus", cfg, nil, dstune.HistoryKey{}); err == nil {
		t.Fatal("unknown tuner accepted")
	}
}

// TestMakeTunerWarmWrap: an open history store wraps plain strategies
// with the warm start (so their checkpoints resume by the warm name),
// but never a resumed run — its state comes from the checkpoint.
func TestMakeTunerWarmWrap(t *testing.T) {
	cfg := dstune.TunerConfig{
		Box:   dstune.MustBox([]int{1}, []int{64}),
		Start: []int{2},
		Map:   dstune.MapNC(8),
	}
	store := dstune.NewMemHistory()
	tn, err := makeTuner("cs-tuner", cfg, store, historyKey("sim", "uchicago", "", 0, 0, 16))
	if err != nil {
		t.Fatal(err)
	}
	if tn.Name() != "warm:cs-tuner" {
		t.Fatalf("store-backed tuner named %q, want warm:cs-tuner", tn.Name())
	}

	rcfg := cfg
	rcfg.Resume = &dstune.Checkpoint{Tuner: "cs-tuner"}
	tn, err = makeTuner("cs-tuner", rcfg, store, dstune.HistoryKey{})
	if err != nil {
		t.Fatal(err)
	}
	if tn.Name() != "cs-tuner" {
		t.Fatalf("resumed tuner named %q, want the checkpoint's cs-tuner", tn.Name())
	}
}

func TestHistoryKeyDerivation(t *testing.T) {
	k := historyKey("sim", "uchicago", "ignored:1", 0, 0, 16)
	want := dstune.HistoryKey{Endpoint: "uchicago", SizeClass: -1, LoadClass: dstune.HistoryLoadClass(16)}
	if k != want {
		t.Fatalf("sim key = %+v, want %+v", k, want)
	}
	k = historyKey("socket", "uchicago", "127.0.0.1:7632", 5e9, 0, 0)
	if k.Endpoint != "127.0.0.1:7632" || k.SizeClass != dstune.HistorySizeClass(5e9) || k.LoadClass != 0 {
		t.Fatalf("socket key = %+v", k)
	}
}

func TestSimTransferUnknownTestbed(t *testing.T) {
	if _, err := simTransfer("mars", "default", 1, dstune.Load{}, 0, dstune.Load{}, nil, 0, 0); err == nil {
		t.Fatal("unknown testbed accepted")
	}
}

func TestSimTransferDiskMode(t *testing.T) {
	d := dstune.UniformDataset(4, 1<<20)
	tr, err := simTransfer("uchicago", "nm-tuner", 1, dstune.Load{}, 0, dstune.Load{}, &d, 1e9, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Stop()
	if tr.Remaining() != float64(4<<20) {
		t.Fatalf("Remaining = %v, want dataset size", tr.Remaining())
	}
}

func TestSimTransferStepSchedule(t *testing.T) {
	tr, err := simTransfer("tacc", "cs-tuner", 2, dstune.Load{Cmp: 16}, 100, dstune.Load{}, nil, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	tr.Stop()
}

func TestPrintTraceEmpty(t *testing.T) {
	// Must not panic on an empty trace.
	printTrace(&dstune.Trace{})
}

func TestWriteCSVHelper(t *testing.T) {
	dir := t.TempDir()
	tr := &dstune.Trace{Tuner: "x"}
	path := dir + "/out.csv"
	if err := writeCSV(path, tr); err != nil {
		t.Fatal(err)
	}
}

func TestUsageStringsConsistent(t *testing.T) {
	// The documented tuner list matches what makeTuner accepts.
	for _, name := range strings.Split("default,cd-tuner,cs-tuner,nm-tuner,heur1,heur2,model,two-phase,warm:cs-tuner", ",") {
		if _, err := makeTuner(name, dstune.TunerConfig{
			Box: dstune.MustBox([]int{1}, []int{8}), Start: []int{1}, Map: dstune.MapNC(1),
		}, nil, dstune.HistoryKey{}); err != nil {
			t.Fatalf("documented tuner %q rejected: %v", name, err)
		}
	}
}
