package main

import (
	"strings"
	"testing"

	"dstune"
)

func TestMakeTunerAllNames(t *testing.T) {
	cfg := dstune.TunerConfig{
		Box:   dstune.MustBox([]int{1}, []int{64}),
		Start: []int{2},
		Map:   dstune.MapNC(8),
	}
	for _, name := range []string{"default", "cd-tuner", "cs-tuner", "nm-tuner", "heur1", "heur2"} {
		tn, err := makeTuner(name, cfg)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if tn.Name() != name {
			t.Fatalf("name mismatch %q vs %q", tn.Name(), name)
		}
	}
	if _, err := makeTuner("bogus", cfg); err == nil {
		t.Fatal("unknown tuner accepted")
	}
}

func TestSimTransferUnknownTestbed(t *testing.T) {
	if _, err := simTransfer("mars", "default", 1, dstune.Load{}, 0, dstune.Load{}, nil, 0, 0); err == nil {
		t.Fatal("unknown testbed accepted")
	}
}

func TestSimTransferDiskMode(t *testing.T) {
	d := dstune.UniformDataset(4, 1<<20)
	tr, err := simTransfer("uchicago", "nm-tuner", 1, dstune.Load{}, 0, dstune.Load{}, &d, 1e9, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Stop()
	if tr.Remaining() != float64(4<<20) {
		t.Fatalf("Remaining = %v, want dataset size", tr.Remaining())
	}
}

func TestSimTransferStepSchedule(t *testing.T) {
	tr, err := simTransfer("tacc", "cs-tuner", 2, dstune.Load{Cmp: 16}, 100, dstune.Load{}, nil, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	tr.Stop()
}

func TestPrintTraceEmpty(t *testing.T) {
	// Must not panic on an empty trace.
	printTrace(&dstune.Trace{})
}

func TestWriteCSVHelper(t *testing.T) {
	dir := t.TempDir()
	tr := &dstune.Trace{Tuner: "x"}
	path := dir + "/out.csv"
	if err := writeCSV(path, tr); err != nil {
		t.Fatal(err)
	}
}

func TestUsageStringsConsistent(t *testing.T) {
	// The documented tuner list matches what makeTuner accepts.
	for _, name := range strings.Split("default,cd-tuner,cs-tuner,nm-tuner,heur1,heur2", ",") {
		if _, err := makeTuner(name, dstune.TunerConfig{
			Box: dstune.MustBox([]int{1}, []int{8}), Start: []int{1}, Map: dstune.MapNC(1),
		}); err != nil {
			t.Fatalf("documented tuner %q rejected: %v", name, err)
		}
	}
}
