// Command dstune runs one tuned data transfer and prints the
// per-epoch trace: either on the simulated WAN testbeds or against a
// real gridftpd server over TCP sockets.
//
// Simulated (virtual time, deterministic):
//
//	dstune -tuner nm-tuner -testbed uchicago -duration 1800 -cmp 16
//	dstune -tuner cs-tuner -testbed tacc -two \
//	       -tfr 64 -cmp 16 -step-at 1000 -tfr2 16 -cmp2 16
//
// Real sockets (wall-clock time; start cmd/gridftpd first):
//
//	dstune -mode socket -addr 127.0.0.1:7632 -tuner cs-tuner \
//	       -epoch 0.25 -duration 15 -shape-rate 8e6 -shape-quad 0.028
//
// The tuner is one of: default, cd-tuner, cs-tuner, nm-tuner, heur1,
// heur2, model, two-phase, rl-bandit, rl-q — or any of them under a
// "warm:" prefix to force the warm-start wrapper's name explicitly.
//
// With -history FILE the process keeps a durable knowledge base of
// past runs: the tuner warm-starts from the best-known parameters for
// the (endpoint, size, load) regime and the run's best epoch is
// recorded back on completion:
//
//	dstune -tuner cs-tuner -testbed uchicago -cmp 16 -history runs.jsonl
//	dstune -tuner cs-tuner -testbed uchicago -cmp 16 -history runs.jsonl  # warm
//
// Long socket-mode runs survive interruption: -checkpoint FILE writes
// the run's durable state after every control epoch, SIGINT/SIGTERM
// drains the in-flight epoch and exits cleanly (a second signal
// aborts hard), -deadline bounds the whole run, and -resume FILE
// continues a checkpointed run mid-search with exact byte accounting:
//
//	dstune -mode socket -addr 127.0.0.1:7632 -tuner cs-tuner \
//	       -bytes 5e9 -checkpoint run.ck
//	^C
//	dstune -mode socket -addr 127.0.0.1:7632 -resume run.ck
//
// Many tuned sessions can run in one process under one scheduler
// (-fleet FILE); the JSON spec format is documented in fleet.go:
//
//	dstune -fleet fleet.json
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strings"
	"sync"
	"syscall"

	"dstune"
)

// shutdown runs registered cleanup functions exactly once, in reverse
// registration order, whichever exit path fires first — the normal
// return, a fatal error, or the drained-interrupt path. log.Fatal
// calls os.Exit, which skips deferred calls, so every fatal exit after
// a durable sink is open must drain through this instead: otherwise
// the event-trace file and the history store lose their final,
// unsynced writes.
type shutdown struct {
	once sync.Once
	fns  []func()
}

// add registers a cleanup to run on shutdown.
func (s *shutdown) add(fn func()) { s.fns = append(s.fns, fn) }

// run executes the registered cleanups once, last-registered first.
func (s *shutdown) run() {
	s.once.Do(func() {
		for i := len(s.fns) - 1; i >= 0; i-- {
			s.fns[i]()
		}
	})
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("dstune: ")

	mode := flag.String("mode", "sim", "sim or socket")
	fleetPath := flag.String("fleet", "", "drive many tuned sessions from one scheduler: JSON spec file (see cmd/dstune/fleet.go)")
	name := flag.String("tuner", "nm-tuner", "default, cd-tuner, cs-tuner, nm-tuner, heur1, heur2, model, two-phase, rl-bandit, rl-q, warm:<tuner>")
	duration := flag.Float64("duration", 1800, "transfer budget in seconds (virtual in sim mode, wall-clock in socket mode)")
	epoch := flag.Float64("epoch", 0, "control epoch seconds (default 30 sim, 0.25 socket)")
	tolerance := flag.Float64("tolerance", 0, "significance threshold percent (default 5 sim, 30 socket)")
	two := flag.Bool("two", false, "tune parallelism as well as concurrency")
	np := flag.Int("np", 8, "fixed parallelism when not tuning it")
	maxNC := flag.Int("max-nc", 128, "concurrency upper bound")
	maxNP := flag.Int("max-np", 16, "parallelism upper bound")
	seed := flag.Uint64("seed", 1, "random seed")
	csvPath := flag.String("csv", "", "write the trace series to this CSV file")
	checkpointPath := flag.String("checkpoint", "", "write a checkpoint to this file after every epoch")
	resumePath := flag.String("resume", "", "resume a checkpointed run from this file (socket mode)")
	deadline := flag.Duration("deadline", 0, "wall-clock deadline for the whole run; 0 = none")
	obsAddr := flag.String("obs-addr", "", "serve live introspection (/metrics, /status, /debug/vars, /debug/pprof) on this address, e.g. 127.0.0.1:9310")
	obsTrace := flag.String("obs-trace", "", "append every structured event to this file as JSON lines")
	historyPath := flag.String("history", "", "transfer-history store (JSONL): warm-start the tuner from past runs and record this run's best epoch")

	// Simulation-mode flags.
	testbed := flag.String("testbed", "uchicago", "uchicago or tacc")
	tfr := flag.Int("tfr", 0, "external transfer streams at the source")
	cmp := flag.Int("cmp", 0, "external compute jobs at the source")
	stepAt := flag.Float64("step-at", 0, "if > 0, switch external load at this time")
	tfr2 := flag.Int("tfr2", 0, "external transfer streams after -step-at")
	cmp2 := flag.Int("cmp2", 0, "external compute jobs after -step-at")

	// Socket-mode flags.
	addr := flag.String("addr", "127.0.0.1:7632", "gridftpd address (socket mode)")
	bytes := flag.Float64("bytes", 0, "bytes to transfer; 0 = unbounded (socket mode)")
	shapeRate := flag.Float64("shape-rate", 0, "shaper per-connection rate in bytes/s; 0 = unshaped")
	shapeQuad := flag.Float64("shape-quad", 0, "shaper contention coefficient")
	retries := flag.Int("retries", 0, "dial attempts per connection, transient failures retried with backoff; 0 = 3 (socket mode)")
	retryBackoff := flag.Duration("retry-backoff", 0, "initial retry backoff, doubling per retry; 0 = 50ms (socket mode)")
	minStreams := flag.Int("min-streams", 0, "minimum data connections to run a degraded epoch; 0 = 1 (socket mode)")
	sockBuf := flag.Int("sockbuf", 0, "kernel socket buffer bytes per data connection; 0 = OS default (socket mode)")
	cold := flag.Bool("cold", false, "disable the warm stripe pool: re-dial every data connection each epoch (socket mode)")
	maxTransient := flag.Int("max-transient", 0, "consecutive transient epoch failures tolerated before aborting; 0 = 3")
	datasetSpec := flag.String("dataset", "", "move a multi-file dataset over the framed data plane instead of -bytes, e.g. 10000x1MiB or lognormal:2000:8MiB:1.5 (socket mode; pass again when resuming)")
	pp := flag.Int("pp", 0, "fixed pipelining depth for -dataset transfers; 0 tunes it as a third dimension with -two, or fixes 4 without (socket mode)")
	sourceDir := flag.String("source", "", "read -dataset payload from real files under this directory (materialized if absent) instead of synthetic zeros, engaging the zero-copy sendfile pump where the platform has it")
	requestSink := flag.Bool("sink", false, "ask the server to persist the -dataset files at its configured -sink directory instead of discarding them (socket mode)")
	noZeroCopy := flag.Bool("no-zerocopy", false, "force the portable userspace pump even where sendfile is available (socket mode, with -source)")
	tcpInfo := flag.Bool("tcpinfo", false, "sample kernel TCP_INFO per stripe at epoch boundaries and surface it in the trace and events (socket mode, Linux)")

	// Disk-mode flags.
	files := flag.Int("files", 8000, "file count (disk mode)")
	fileSize := flag.Float64("file-size", 1<<20, "file size in bytes, or lognormal median with -lognormal (disk mode)")
	lognormal := flag.Bool("lognormal", false, "log-normal file sizes instead of uniform (disk mode)")
	diskRate := flag.Float64("disk-rate", dstune.DefaultDiskRate, "source storage bandwidth in bytes/s (disk mode)")
	fileOverhead := flag.Float64("file-overhead", dstune.DefaultFileOverhead, "per-file request latency in seconds (disk mode)")
	flag.Parse()

	var shut shutdown
	defer shut.run()
	fatal := func(v ...any) {
		shut.run()
		log.Fatal(v...)
	}

	observer, obsClose, err := newObserver(*obsAddr, *obsTrace)
	if err != nil {
		log.Fatal(err)
	}
	shut.add(obsClose)

	// The history store is the run's knowledge plane: consulted for a
	// warm start before tuning, extended with this run's best epoch
	// after it. A damaged file degrades (intact records load, damage is
	// reported); only an unopenable one is fatal.
	var histStore *dstune.HistoryStore
	if *historyPath != "" {
		store, herr := dstune.OpenHistory(*historyPath)
		if store == nil {
			fatal(herr)
		}
		if herr != nil {
			log.Printf("history: %v (continuing with the %d intact records)", herr, store.Len())
		}
		histStore = store
		shut.add(func() {
			if cerr := store.Close(); cerr != nil {
				log.Printf("history: close: %v", cerr)
			}
		})
	}

	if *fleetPath != "" {
		if err := runFleet(*fleetPath, observer, *checkpointPath, histStore); err != nil {
			fatal(err)
		}
		return
	}

	// A resumed run adopts the checkpoint's tuner and seed and rebuilds
	// the transfer from its recorded state; only socket-mode transfers
	// outlive the process that started them.
	var resume *dstune.Checkpoint
	if *resumePath != "" {
		if *mode != "socket" {
			fatal("-resume requires -mode socket: simulated transfers live and die with the process")
		}
		var err error
		resume, err = dstune.LoadCheckpoint(*resumePath)
		if err != nil {
			fatal(err)
		}
		*name = resume.Tuner
		*seed = resume.Seed
		if *checkpointPath == "" {
			*checkpointPath = *resumePath
		}
		log.Printf("resuming %s from %s: %d epochs, %.0f bytes acked, clock %.1fs",
			resume.Tuner, *resumePath, resume.Epochs, resume.Transfer.Acked, resume.Transfer.Clock)
	}

	var transfer dstune.Transferer
	disk := false
	volume := 0.0 // history size-class input; 0 = unbounded
	switch *mode {
	case "sim":
		if *epoch == 0 {
			*epoch = 30
		}
		transfer, err = simTransfer(*testbed, *name, *seed,
			dstune.Load{Tfr: *tfr, Cmp: *cmp}, *stepAt, dstune.Load{Tfr: *tfr2, Cmp: *cmp2}, nil, 0, 0)
	case "disk":
		if *epoch == 0 {
			*epoch = 30
		}
		disk = true
		var d dstune.Dataset
		if *lognormal {
			d = dstune.LogNormalDataset(*files, *fileSize, 1.5, *seed)
		} else {
			d = dstune.UniformDataset(*files, int64(*fileSize))
		}
		volume = float64(d.TotalBytes())
		fmt.Printf("dataset: %s\n", d)
		transfer, err = simTransfer(*testbed, *name, *seed,
			dstune.Load{Tfr: *tfr, Cmp: *cmp}, *stepAt, dstune.Load{Tfr: *tfr2, Cmp: *cmp2},
			&d, *diskRate, *fileOverhead)
	case "socket":
		if *epoch == 0 {
			*epoch = 0.25
		}
		if *tolerance == 0 {
			*tolerance = 30
		}
		volume = *bytes
		size := *bytes
		if size <= 0 {
			size = dstune.Unbounded
		}
		var shaper *dstune.Shaper
		if *shapeRate > 0 {
			shaper = &dstune.Shaper{Rate: *shapeRate, Quad: *shapeQuad}
		}
		ccfg := dstune.TransferClientConfig{
			Addr: *addr, Bytes: size, Shaper: shaper,
			Retry:       dstune.RetryConfig{Attempts: *retries, Backoff: *retryBackoff},
			MinStreams:  *minStreams,
			Seed:        *seed,
			SockBuf:     *sockBuf,
			ColdStart:   *cold,
			NoZeroCopy:  *noZeroCopy,
			RequestSink: *requestSink,
			TCPInfo:     *tcpInfo,
			Obs:         observer.Session(*name),
		}
		if *datasetSpec != "" {
			if *bytes > 0 {
				fatal("-dataset derives the volume from the dataset; drop -bytes")
			}
			var ds dstune.Dataset
			ds, err = dstune.ParseDataset(*datasetSpec, *seed)
			if err != nil {
				fatal(err)
			}
			fmt.Printf("dataset: %s\n", ds)
			ccfg.Dataset = ds
			ccfg.Bytes = 0 // derived from the dataset
			volume = float64(ds.TotalBytes())
			if *sourceDir != "" {
				if err := dstune.MaterializeDataset(*sourceDir, ds); err != nil {
					fatal(err)
				}
				ccfg.SourceDir = *sourceDir
			}
		} else if *sourceDir != "" {
			fatal("-source reads the files named by a manifest; it requires -dataset")
		}
		if resume != nil {
			if resume.Transfer.Total >= 0 {
				ccfg.Bytes = resume.Transfer.Total
			} else {
				ccfg.Bytes = dstune.Unbounded
			}
			ccfg.Token = resume.Transfer.Token
			ccfg.AckedBytes = resume.Transfer.Acked
			ccfg.ClockOffset = resume.Transfer.Clock
		}
		transfer, err = dstune.NewTransferClient(ccfg)
	default:
		err = fmt.Errorf("unknown mode %q", *mode)
	}
	if err != nil {
		fatal(err)
	}

	// Interrupt handling: the first SIGINT/SIGTERM drains — the
	// in-flight epoch finishes, the checkpoint is written, and Tune
	// returns cleanly; a second signal cancels the context, aborting
	// the epoch immediately. -deadline bounds the run the hard way.
	ctx := context.Background()
	var cancel context.CancelFunc
	if *deadline > 0 {
		ctx, cancel = context.WithTimeout(ctx, *deadline)
	} else {
		ctx, cancel = context.WithCancel(ctx)
	}
	defer cancel()
	drain := make(chan struct{})
	sigCh := make(chan os.Signal, 2)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sigCh
		log.Print("interrupt: draining the in-flight epoch (interrupt again to abort)")
		close(drain)
		<-sigCh
		log.Print("second interrupt: aborting")
		cancel()
	}()

	sess := observer.Session(*name)
	cfg := dstune.TunerConfig{
		Epoch:                *epoch,
		Tolerance:            *tolerance,
		Budget:               *duration,
		Seed:                 *seed,
		MaxTransientFailures: *maxTransient,
		Resume:               resume,
		Drain:                drain,
		Obs:                  sess,
	}
	if *checkpointPath != "" {
		cfg.Checkpoint = dstune.NewFileCheckpoint(*checkpointPath)
	}
	dataset3D := *datasetSpec != "" && *two && *pp == 0
	switch {
	case disk, dataset3D:
		cfg.Box = dstune.MustBox([]int{1, 1, 1}, []int{*maxNC, *maxNP, 32})
		cfg.Start = []int{2, 8, 4}
		cfg.Map = dstune.MapNCNPPP()
	case *two:
		cfg.Box = dstune.MustBox([]int{1, 1}, []int{*maxNC, *maxNP})
		cfg.Start = []int{2, 8}
		cfg.Map = dstune.MapNCNP()
	default:
		cfg.Box = dstune.MustBox([]int{1}, []int{*maxNC})
		cfg.Start = []int{2}
		cfg.Map = dstune.MapNC(*np)
	}
	if *datasetSpec != "" && !dataset3D {
		// Fewer than three tuned dimensions: run the dataset at a static
		// pipelining depth (the -pp flag, or the disk default 4).
		depth := *pp
		if depth == 0 {
			depth = 4
		}
		cfg.Map = dstune.MapFixedPP(cfg.Map, depth)
	}
	key := historyKey(*mode, *testbed, *addr, volume, *tfr, *cmp)
	tn, err := makeTuner(*name, cfg, histStore, key)
	if err != nil {
		fatal(err)
	}

	trace, err := tn.Tune(ctx, transfer)
	clean := err == nil
	switch {
	case err == nil:
	case errors.Is(err, dstune.ErrInterrupted),
		errors.Is(err, context.Canceled),
		errors.Is(err, context.DeadlineExceeded):
		if *checkpointPath != "" {
			log.Printf("stopped (%v) after %d epochs; checkpoint in %s — resume with -resume %s",
				err, len(trace.Results), *checkpointPath, *checkpointPath)
		} else {
			log.Printf("stopped (%v) after %d epochs", err, len(trace.Results))
		}
	default:
		fatal(err)
	}
	// A completed run extends the knowledge plane with its best epoch;
	// interrupted runs don't — their truth lives in the checkpoint.
	if histStore != nil && clean {
		if x, tp, ok := trace.BestEpoch(); ok {
			rec := dstune.HistoryRecord{Key: key, X: x, Throughput: tp, Tuner: trace.Tuner, Epochs: len(trace.Results)}
			if aerr := histStore.Add(rec); aerr != nil {
				log.Printf("history: record: %v", aerr)
			} else {
				sess.HistoryRecorded()
				log.Printf("history: recorded x=%v at %.1f MB/s under %s", x, tp/1e6, key)
			}
		}
	}
	printTrace(trace)
	if *csvPath != "" {
		if err := writeCSV(*csvPath, trace); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s\n", *csvPath)
	}
}

// historyKey derives the run's identity in the history store: the
// endpoint is the testbed name (sim and disk modes) or the server
// address (socket mode); the size class buckets the requested volume
// (unbounded runs share one class); the load class fingerprints the
// configured external load.
func historyKey(mode, testbed, addr string, volume float64, tfr, cmp int) dstune.HistoryKey {
	ep := testbed
	if mode == "socket" {
		ep = addr
	}
	return dstune.HistoryKey{
		Endpoint:  ep,
		SizeClass: dstune.HistorySizeClass(volume),
		LoadClass: dstune.HistoryLoadClass(tfr + cmp),
	}
}

// newObserver builds the run's observation plane from the -obs-addr
// and -obs-trace flags: nil (zero-cost no-op) when both are empty,
// otherwise an Observer optionally serving the introspection endpoint
// and mirroring events to a JSONL trace file. The returned close
// flushes the trace and stops the endpoint.
func newObserver(addr, tracePath string) (*dstune.Observer, func(), error) {
	if addr == "" && tracePath == "" {
		return nil, func() {}, nil
	}
	var sink *os.File
	if tracePath != "" {
		f, err := os.OpenFile(tracePath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return nil, nil, err
		}
		sink = f
	}
	cfg := dstune.ObserverConfig{}
	if sink != nil {
		cfg.EventSink = sink
	}
	observer := dstune.NewObserver(cfg)
	var endpoint *dstune.ObsEndpoint
	if addr != "" {
		ep, err := observer.Serve(addr)
		if err != nil {
			if sink != nil {
				sink.Close()
			}
			return nil, nil, err
		}
		endpoint = ep
		log.Printf("observation plane on http://%s (/metrics /status /debug/vars /debug/pprof)", ep.Addr())
	}
	return observer, func() {
		if endpoint != nil {
			endpoint.Close()
		}
		if sink != nil {
			// Sync before Close: the trace must be durable, not just
			// handed to the page cache, before the process exits.
			if err := sink.Sync(); err != nil {
				log.Printf("obs-trace: sync: %v", err)
			}
			if err := sink.Close(); err != nil {
				log.Printf("obs-trace: close: %v", err)
			}
		}
	}, nil
}

// simTransfer builds a simulated transfer on the named testbed;
// files selects disk-to-disk mode.
func simTransfer(testbed, tuner string, seed uint64, l dstune.Load, stepAt float64, after dstune.Load, files *dstune.Dataset, diskRate, fileOverhead float64) (dstune.Transferer, error) {
	var tb dstune.Testbed
	switch testbed {
	case "uchicago":
		tb = dstune.ANLtoUChicago()
	case "tacc":
		tb = dstune.ANLtoTACC()
	default:
		return nil, fmt.Errorf("unknown testbed %q (want uchicago or tacc)", testbed)
	}
	fabric, _, err := tb.NewFabric(seed)
	if err != nil {
		return nil, err
	}
	sched := dstune.ConstantLoad(l)
	if stepAt > 0 {
		sched = dstune.StepLoad(stepAt, l, after)
	}
	fabric.SetLoad(sched, nil)
	policy := dstune.RestartEveryEpoch
	if tuner == "default" {
		policy = dstune.RestartOnChange
	}
	tc := dstune.TransferConfig{Name: tuner, Bytes: dstune.Unbounded, Policy: policy}
	if files != nil {
		tc.Bytes = 0
		tc.Files = *files
		tc.DiskRate = diskRate
		tc.FileOverhead = fileOverhead
	}
	return fabric.NewTransfer(tc)
}

// makeTuner builds the named tuner — any name dstune.KnownStrategy
// accepts, including checkpoint names like "warm:cs-tuner" a resumed
// run adopts. With an open history store and no pending resume, plain
// strategies are wrapped with a warm start and "two-phase" seeds its
// coarse candidates from the store; without one they run cold.
func makeTuner(name string, cfg dstune.TunerConfig, store *dstune.HistoryStore, key dstune.HistoryKey) (dstune.Tuner, error) {
	if !dstune.KnownStrategy(name) {
		return nil, fmt.Errorf("unknown tuner %q", name)
	}
	if inner, ok := strings.CutPrefix(name, "warm:"); ok {
		return dstune.NewWarm(inner, cfg, store, key)
	}
	if name == "two-phase" {
		return dstune.NewTwoPhaseTuner(cfg, store, key), nil
	}
	if store != nil && cfg.Resume == nil {
		return dstune.NewWarm(name, cfg, store, key)
	}
	return dstune.NewNamed(name, cfg)
}

// printTrace renders the per-epoch table and the summary lines.
func printTrace(tr *dstune.Trace) {
	if len(tr.Results) == 0 {
		fmt.Println("no epochs ran")
		return
	}
	dims := len(tr.Results[0].X)
	headers := []string{"nc", "nc   np", "nc   np   pp"}
	kernel := false
	for _, r := range tr.Results {
		if r.Report.Kernel != nil {
			kernel = true
			break
		}
	}
	fmt.Printf("epoch    t(s)    %s   MB/s    best-case", headers[min(dims, 3)-1])
	if kernel {
		fmt.Printf("    rtt(ms)  retx")
	}
	fmt.Println()
	for _, r := range tr.Results {
		fmt.Printf("%5d  %6.1f  ", r.Epoch, r.Report.End)
		for _, v := range r.X {
			fmt.Printf("%4d ", v)
		}
		fmt.Printf(" %8.1f  %8.1f", r.Report.Throughput/1e6, r.Report.BestCase/1e6)
		if k := r.Report.Kernel; k != nil {
			fmt.Printf("  %9.3f  %4d", k.MeanRTT()*1e3, k.RetransDelta)
		} else if kernel {
			fmt.Printf("  %9s  %4s", "-", "-")
		}
		fmt.Println()
	}
	obs, best := tr.MeanThroughput(), tr.MeanBestCase()
	fmt.Printf("\n%s: mean %.1f MB/s, best-case %.1f MB/s", tr.Tuner, obs/1e6, best/1e6)
	if best > 0 {
		fmt.Printf(", restart overhead %.1f%%", 100*(1-obs/best))
	}
	fmt.Printf(", final x=%v\n", tr.FinalX())
}

// writeCSV dumps the trace's series to path.
func writeCSV(path string, tr *dstune.Trace) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	series := []*dstune.Series{tr.Throughput(), tr.BestCase()}
	if x := tr.FinalX(); x != nil {
		for d := range x {
			series = append(series, tr.Param(d))
		}
	}
	return dstune.WriteSeriesCSV(f, series...)
}
