package main

import (
	"context"
	"encoding/json"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strings"

	"dstune"
)

// fleetSpec is the JSON layout of a -fleet file: shared scheduling
// knobs plus one entry per tuned session. All sessions run in one
// process under one Fleet scheduler; simulated sessions share one
// fabric (and so contend for the source endpoint, as in Figure 11),
// socket sessions each dial their own server.
//
// Example:
//
//	{
//	  "testbed": "uchicago",
//	  "seed": 1,
//	  "epoch": 30,
//	  "budget": 600,
//	  "sessions": [
//	    {"name": "bulk", "tuner": "nm-tuner"},
//	    {"name": "background", "tuner": "cs-tuner", "two": true}
//	  ]
//	}
type fleetSpec struct {
	// Testbed is the shared simulated testbed: uchicago or tacc
	// (ignored by socket sessions).
	Testbed string `json:"testbed"`
	// Seed drives all randomness; session i offsets it by i.
	Seed uint64 `json:"seed"`
	// Epoch is the control-epoch length in seconds (default 30).
	Epoch float64 `json:"epoch"`
	// Budget limits each session's tuning time in seconds; 0 = until
	// its transfer completes.
	Budget float64 `json:"budget"`
	// MaxTransient is the consecutive transient-failure tolerance
	// (default 3).
	MaxTransient int `json:"max_transient"`
	// Sessions are the tuned sessions.
	Sessions []fleetSessionSpec `json:"sessions"`
}

// fleetSessionSpec is one session of a fleetSpec.
type fleetSessionSpec struct {
	// Name labels the session; empty defaults to the tuner name.
	Name string `json:"name"`
	// Tuner is the strategy: default, cd-tuner, cs-tuner, nm-tuner,
	// heur1, heur2, model, two-phase, or any of them under a "warm:"
	// prefix.
	Tuner string `json:"tuner"`
	// Two tunes parallelism as well as concurrency.
	Two bool `json:"two"`
	// NP is the fixed parallelism when not tuning it (default 8).
	NP int `json:"np"`
	// MaxNC and MaxNP bound the search box (defaults 128 and 16).
	MaxNC int `json:"max_nc"`
	MaxNP int `json:"max_np"`
	// Tolerance is the significance threshold in percent (default 5).
	Tolerance float64 `json:"tolerance"`
	// Tfr and Cmp are the external load seen by this session's
	// simulated transfer source (shared fabric: the last session's
	// values win).
	Tfr int `json:"tfr"`
	Cmp int `json:"cmp"`
	// Addr, when set, makes this a real-socket session against a
	// gridftpd server; Bytes bounds it (0 = unbounded).
	Addr  string  `json:"addr"`
	Bytes float64 `json:"bytes"`
	// Weight scales the session's transfer in its aggregate objective
	// (single-transfer sessions: cosmetic).
	Weight float64 `json:"weight"`
}

// runFleet loads a fleet spec and drives all its sessions from one
// scheduler, printing each session's trace and summary. A non-nil
// observer watches every session (metrics labeled by session ID, live
// /status); a non-empty checkpointPath makes each session write its
// durable state to a per-session file derived from it (see
// sessionCheckpointPath); a non-nil history store warm-starts every
// session and records each session's best epoch under a per-session
// key on a clean end.
func runFleet(path string, observer *dstune.Observer, checkpointPath string, histStore *dstune.HistoryStore) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var spec fleetSpec
	if err := json.Unmarshal(data, &spec); err != nil {
		return fmt.Errorf("fleet spec %s: %w", path, err)
	}
	if len(spec.Sessions) == 0 {
		return fmt.Errorf("fleet spec %s has no sessions", path)
	}
	socket := 0
	for _, s := range spec.Sessions {
		if s.Addr != "" {
			socket++
		}
	}
	if socket != 0 && socket != len(spec.Sessions) {
		return fmt.Errorf("fleet spec %s mixes simulated and socket sessions: the scheduler paces all sessions on one clock", path)
	}

	// Simulated sessions share one fabric, so they contend for the
	// source endpoint like Figure 11's simultaneous transfers.
	var fabric *dstune.Fabric
	if socket == 0 {
		var tb dstune.Testbed
		switch spec.Testbed {
		case "uchicago", "":
			tb = dstune.ANLtoUChicago()
		case "tacc":
			tb = dstune.ANLtoTACC()
		default:
			return fmt.Errorf("unknown testbed %q (want uchicago or tacc)", spec.Testbed)
		}
		var err error
		fabric, _, err = tb.NewFabric(spec.Seed)
		if err != nil {
			return err
		}
	}

	sessions := make([]dstune.FleetSession, 0, len(spec.Sessions))
	usedIDs := make(map[string]bool, len(spec.Sessions))
	for i, ss := range spec.Sessions {
		if ss.Name == "" {
			ss.Name = ss.Tuner
		}
		// Resolve the stable session ID here (the same defaulting and
		// deduplication the Fleet applies) so checkpoint filenames can
		// carry it.
		id := ss.Name
		for n := 2; usedIDs[id]; n++ {
			id = fmt.Sprintf("%s-%d", ss.Name, n)
		}
		usedIDs[id] = true
		if ss.NP == 0 {
			ss.NP = 8
		}
		if ss.MaxNC == 0 {
			ss.MaxNC = 128
		}
		if ss.MaxNP == 0 {
			ss.MaxNP = 16
		}
		cfg := dstune.TunerConfig{
			Epoch:     spec.Epoch,
			Tolerance: ss.Tolerance,
			Budget:    spec.Budget,
			Seed:      spec.Seed + uint64(i),
			Obs:       observer.Session(id),
		}
		if ss.Two {
			cfg.Box = dstune.MustBox([]int{1, 1}, []int{ss.MaxNC, ss.MaxNP})
			cfg.Start = []int{2, 8}
			cfg.Map = dstune.MapNCNP()
		} else {
			cfg.Box = dstune.MustBox([]int{1}, []int{ss.MaxNC})
			cfg.Start = []int{2}
			cfg.Map = dstune.MapNC(ss.NP)
		}
		// The session's history key embeds the deduplicated session ID
		// in the endpoint identity: "bulk" and "bulk-2" record under
		// different keys, never aliasing one another's best-known
		// vector, and the key survives spec renames of other sessions.
		key := fleetHistoryKey(spec, ss, id)
		var strat dstune.Strategy
		var err error
		switch inner, warm := strings.CutPrefix(ss.Tuner, "warm:"); {
		case warm:
			strat, err = dstune.NewWarmStartStrategy(inner, cfg, histStore, key)
		case ss.Tuner == "two-phase":
			strat = dstune.NewTwoPhaseStrategy(cfg, histStore, key)
		case histStore != nil:
			strat, err = dstune.NewWarmStartStrategy(ss.Tuner, cfg, histStore, key)
		default:
			strat, err = dstune.NewStrategy(ss.Tuner, cfg)
		}
		if err != nil {
			return err
		}

		var transfer dstune.Transferer
		if ss.Addr != "" {
			size := ss.Bytes
			if size <= 0 {
				size = dstune.Unbounded
			}
			transfer, err = dstune.NewTransferClient(dstune.TransferClientConfig{
				Addr: ss.Addr, Bytes: size, Seed: spec.Seed + uint64(i),
			})
		} else {
			if ss.Tfr != 0 || ss.Cmp != 0 {
				fabric.SetLoad(dstune.ConstantLoad(dstune.Load{Tfr: ss.Tfr, Cmp: ss.Cmp}), nil)
			}
			transfer, err = fabric.NewTransfer(dstune.TransferConfig{
				Name: ss.Name, Bytes: dstune.Unbounded,
			})
		}
		if err != nil {
			return err
		}

		session := dstune.FleetSession{
			ID:        id,
			Name:      ss.Name,
			Strategy:  strat,
			Transfers: []dstune.Transferer{transfer},
			Maps:      []dstune.ParamMap{cfg.Map},
			Seed:      cfg.Seed,
		}
		if ss.Weight != 0 {
			session.Weights = []float64{ss.Weight}
		}
		if checkpointPath != "" {
			session.Checkpoint = dstune.NewFileCheckpoint(sessionCheckpointPath(checkpointPath, id))
		}
		if histStore != nil {
			session.HistoryKey = key
		}
		sessions = append(sessions, session)
	}

	fleet := dstune.NewFleet(dstune.FleetConfig{
		Epoch:                spec.Epoch,
		Budget:               spec.Budget,
		MaxTransientFailures: spec.MaxTransient,
		Obs:                  observer,
		History:              histStore,
	}, sessions...)
	results, err := fleet.Run(context.Background())
	if err != nil {
		return err
	}
	failed := false
	for _, r := range results {
		fmt.Printf("=== session %s ===\n", r.ID)
		printTrace(r.Traces[0])
		fmt.Printf("bytes moved: %.0f\n\n", r.Bytes)
		if r.Err != nil {
			failed = true
			log.Printf("session %s failed: %v", r.ID, r.Err)
		}
	}
	if failed {
		return fmt.Errorf("one or more fleet sessions failed")
	}
	return nil
}

// fleetHistoryKey derives one session's identity in the shared history
// store. The endpoint joins the transfer target — the shared testbed,
// or the session's own server address for socket sessions — with the
// deduplicated session ID, so identically-named sessions ("bulk",
// "bulk-2") keep distinct keys. Fleet sessions are unbounded unless a
// socket byte volume is set; the load class fingerprints the session's
// configured external load.
func fleetHistoryKey(spec fleetSpec, ss fleetSessionSpec, id string) dstune.HistoryKey {
	target := spec.Testbed
	if target == "" {
		target = "uchicago"
	}
	volume := 0.0
	if ss.Addr != "" {
		target = ss.Addr
		volume = ss.Bytes
	}
	return dstune.HistoryKey{
		Endpoint:  target + "/" + id,
		SizeClass: dstune.HistorySizeClass(volume),
		LoadClass: dstune.HistoryLoadClass(ss.Tfr + ss.Cmp),
	}
}

// sessionCheckpointPath derives a per-session checkpoint filename from
// the shared -checkpoint path by splicing the session ID in before the
// extension: run.ck + "bulk" -> run-bulk.ck. Extensionless paths get a
// plain suffix: run + "bulk" -> run-bulk.
func sessionCheckpointPath(path, id string) string {
	ext := filepath.Ext(path)
	return path[:len(path)-len(ext)] + "-" + id + ext
}
