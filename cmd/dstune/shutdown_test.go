package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"dstune"
)

// TestShutdownRunsOnceInReverse: the shutdown drain runs every
// registered cleanup exactly once, last-registered first, no matter
// how many exit paths call it.
func TestShutdownRunsOnceInReverse(t *testing.T) {
	var shut shutdown
	var order []int
	for i := 0; i < 3; i++ {
		shut.add(func() { order = append(order, i) })
	}
	shut.run()
	shut.run() // second drain (e.g. fatal after a deferred run) is a no-op
	if len(order) != 3 || order[0] != 2 || order[1] != 1 || order[2] != 0 {
		t.Fatalf("cleanup order = %v, want [2 1 0] exactly once", order)
	}
}

// TestObserverCloseFlushesTraceSink is the shutdown-durability
// regression: events recorded through the observer must be complete,
// parseable lines in the trace file once the close function returns —
// nothing buffered, nothing torn.
func TestObserverCloseFlushesTraceSink(t *testing.T) {
	path := filepath.Join(t.TempDir(), "events.jsonl")
	observer, obsClose, err := newObserver("", path)
	if err != nil {
		t.Fatal(err)
	}
	s := observer.Session("shutdown")
	s.SetStrategy("cs-tuner")
	s.Propose(0, []int{2}, nil)
	s.WarmStart(0, []int{14}, true)
	obsClose()

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(string(data), "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("trace holds %d lines, want the 2 recorded events:\n%s", len(lines), data)
	}
	for i, line := range lines {
		if !strings.HasPrefix(line, "{") || !strings.HasSuffix(line, "}") {
			t.Fatalf("line %d is torn: %q", i, line)
		}
	}
	if !strings.Contains(lines[1], `"WarmStart"`) {
		t.Fatalf("last event not flushed: %q", lines[1])
	}
}

// TestHistoryStoreSurvivesShutdownCycle: a record added through the
// cmd-level open/record/close cycle is durable and reloadable, and a
// damaged store still opens with its intact records (the degraded
// path main() warns on rather than dying).
func TestHistoryStoreSurvivesShutdownCycle(t *testing.T) {
	path := filepath.Join(t.TempDir(), "runs.jsonl")
	store, err := dstune.OpenHistory(path)
	if err != nil {
		t.Fatal(err)
	}
	key := historyKey("sim", "uchicago", "", 0, 0, 16)
	if err := store.Add(dstune.HistoryRecord{Key: key, X: []int{14}, Throughput: 3e8, Tuner: "cs-tuner", Epochs: 40}); err != nil {
		t.Fatal(err)
	}
	if err := store.Close(); err != nil {
		t.Fatal(err)
	}

	// Simulate a crash tearing a half-written append onto the file.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"key":{"endpoint":"uchi`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	re, err := dstune.OpenHistory(path)
	if re == nil {
		t.Fatalf("damaged store failed to open: %v", err)
	}
	defer re.Close()
	if err == nil {
		t.Fatal("damage not reported")
	}
	if e, ok := re.Lookup(key); !ok || e.X[0] != 14 {
		t.Fatalf("intact record lost after damage: %+v ok=%v", e, ok)
	}
}
