package main

import (
	"os"
	"path/filepath"
	"testing"

	"dstune"
)

// TestRunFleetDedupedDurableIdentities is the fleet dedup regression:
// two sessions with the same name must end up with distinct checkpoint
// files AND distinct history keys — the deduplicated IDs ("bulk",
// "bulk-2") are spliced into both before anything durable is written.
func TestRunFleetDedupedDurableIdentities(t *testing.T) {
	dir := t.TempDir()
	spec := `{
		"testbed": "uchicago",
		"seed": 1,
		"epoch": 30,
		"budget": 60,
		"sessions": [
			{"name": "bulk", "tuner": "cs-tuner"},
			{"name": "bulk", "tuner": "cs-tuner"}
		]
	}`
	specPath := filepath.Join(dir, "fleet.json")
	if err := os.WriteFile(specPath, []byte(spec), 0o644); err != nil {
		t.Fatal(err)
	}
	store, err := dstune.OpenHistory(filepath.Join(dir, "runs.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	ckPath := filepath.Join(dir, "run.ck")
	if err := runFleet(specPath, nil, ckPath, store); err != nil {
		t.Fatal(err)
	}

	for _, want := range []string{"run-bulk.ck", "run-bulk-2.ck"} {
		if _, err := os.Stat(filepath.Join(dir, want)); err != nil {
			t.Errorf("checkpoint %s missing: %v", want, err)
		}
	}
	for _, ep := range []string{"uchicago/bulk", "uchicago/bulk-2"} {
		if recs := store.Records(ep); len(recs) != 1 {
			t.Errorf("endpoint %s holds %d records, want 1", ep, len(recs))
		}
	}
}

// TestFleetHistoryKeySocket: socket sessions key on their own server
// address and byte volume, not the shared testbed.
func TestFleetHistoryKeySocket(t *testing.T) {
	spec := fleetSpec{Testbed: "tacc"}
	ss := fleetSessionSpec{Addr: "127.0.0.1:7632", Bytes: 5e9, Tfr: 4}
	k := fleetHistoryKey(spec, ss, "bulk-2")
	if k.Endpoint != "127.0.0.1:7632/bulk-2" {
		t.Fatalf("endpoint = %q", k.Endpoint)
	}
	if k.SizeClass != dstune.HistorySizeClass(5e9) || k.LoadClass != dstune.HistoryLoadClass(4) {
		t.Fatalf("key = %+v", k)
	}
	sim := fleetHistoryKey(spec, fleetSessionSpec{}, "bg")
	if sim.Endpoint != "tacc/bg" || sim.SizeClass != -1 {
		t.Fatalf("sim key = %+v", sim)
	}
}
