// benchjson converts `go test -bench` output on stdin into a JSON
// summary on stdout: benchmark name → ns/op and allocs/op. CI runs it
// after the bench job and uploads the result as the BENCH_ci.json
// artifact, so regressions diff as one small file instead of raw logs.
//
// Usage:
//
//	go test -run '^$' -bench . -benchtime 1x -benchmem ./... | go run ./cmd/benchjson > BENCH_ci.json
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
)

// result is one benchmark's summary row.
type result struct {
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	Iterations  int64   `json:"iterations"`
}

func main() {
	results := map[string]result{}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		name, r, ok := parseLine(sc.Text())
		if ok {
			results[name] = r
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	names := make([]string, 0, len(results))
	for n := range results {
		names = append(names, n)
	}
	sort.Strings(names)
	ordered := make(map[string]result, len(results))
	for _, n := range names {
		ordered[n] = results[n]
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(ordered); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

// parseLine reads one `go test -bench` result line, e.g.
//
//	BenchmarkSimEpoch-8  42  123456 ns/op  2048 B/op  12 allocs/op
//
// Lines that are not benchmark results report ok=false. The -N GOMAXPROCS
// suffix is kept: it is part of the benchmark's identity in CI.
func parseLine(line string) (string, result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return "", result{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return "", result{}, false
	}
	r := result{Iterations: iters}
	seen := false
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return "", result{}, false
		}
		switch fields[i+1] {
		case "ns/op":
			r.NsPerOp = v
			seen = true
		case "B/op":
			r.BytesPerOp = int64(v)
		case "allocs/op":
			r.AllocsPerOp = int64(v)
		}
	}
	if !seen {
		return "", result{}, false
	}
	return fields[0], r, true
}
