// benchjson converts `go test -bench` output on stdin into a JSON
// summary on stdout: benchmark name → ns/op, allocs/op, and any
// custom b.ReportMetric values (e.g. "dials/epoch", "MB/s"). CI runs
// it after the bench job and uploads the result as the BENCH_ci.json
// artifact, so regressions diff as one small file instead of raw logs.
//
// With -baseline FILE the current results are additionally gated
// against a committed baseline (a previous benchjson output):
// benchjson exits 1 when a tracked metric regresses by more than 20%
// over its baseline value. Only metrics where "bigger is worse" and
// the measurement is stable enough for CI are tracked — allocs/op,
// and custom metrics whose name contains "dials", "deadtime", or
// "syscalls". Each comparison also requires the absolute growth to
// clear a floor (2 allocs/op; 0.1 dials; 1 unit of deadtime or
// syscalls), so timer jitter on
// tiny values cannot flake the gate, while a warm path that starts
// dialing again is caught even from a zero baseline. Benchmarks are
// matched by name with the -N GOMAXPROCS suffix stripped, and only
// benchmarks present in both files are compared, so adding or
// removing benchmarks never trips the gate.
//
// Usage:
//
//	go test -run '^$' -bench . -benchtime 1x -benchmem ./... | go run ./cmd/benchjson > BENCH_ci.json
//	go test -run '^$' -bench . -benchtime 1x -benchmem ./... | go run ./cmd/benchjson -baseline BENCH_baseline.json > BENCH_ci.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// result is one benchmark's summary row.
type result struct {
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	Iterations  int64   `json:"iterations"`
	// Metrics holds custom b.ReportMetric values by unit name.
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

func main() {
	baselinePath := flag.String("baseline", "", "committed benchjson output to gate regressions against")
	flag.Parse()

	results := map[string]result{}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		name, r, ok := parseLine(sc.Text())
		if ok {
			results[name] = r
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	names := make([]string, 0, len(results))
	for n := range results {
		names = append(names, n)
	}
	sort.Strings(names)
	ordered := make(map[string]result, len(results))
	for _, n := range names {
		ordered[n] = results[n]
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(ordered); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}

	if *baselinePath == "" {
		return
	}
	raw, err := os.ReadFile(*baselinePath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	baseline := map[string]result{}
	if err := json.Unmarshal(raw, &baseline); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %s: %v\n", *baselinePath, err)
		os.Exit(1)
	}
	if msgs := compare(baseline, results); len(msgs) > 0 {
		for _, m := range msgs {
			fmt.Fprintln(os.Stderr, "benchjson: regression:", m)
		}
		os.Exit(1)
	}
}

// parseLine reads one `go test -bench` result line, e.g.
//
//	BenchmarkSimEpoch-8  42  123456 ns/op  2048 B/op  12 allocs/op  0.5 dials/epoch
//
// Lines that are not benchmark results report ok=false. The -N GOMAXPROCS
// suffix is kept: it is part of the benchmark's identity in CI.
func parseLine(line string) (string, result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return "", result{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return "", result{}, false
	}
	r := result{Iterations: iters}
	seen := false
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return "", result{}, false
		}
		switch fields[i+1] {
		case "ns/op":
			r.NsPerOp = v
			seen = true
		case "B/op":
			r.BytesPerOp = int64(v)
		case "allocs/op":
			r.AllocsPerOp = int64(v)
		default:
			if r.Metrics == nil {
				r.Metrics = map[string]float64{}
			}
			r.Metrics[fields[i+1]] = v
		}
	}
	if !seen {
		return "", result{}, false
	}
	return fields[0], r, true
}

// procSuffix is the -N GOMAXPROCS suffix go test appends to benchmark
// names; it is stripped when matching against the baseline so runner
// core counts don't defeat the comparison.
var procSuffix = regexp.MustCompile(`-\d+$`)

// trackedMetric reports whether a custom metric participates in the
// regression gate, and the absolute growth floor (in the metric's own
// unit) a regression must clear in addition to the relative slack.
func trackedMetric(name string) (floor float64, ok bool) {
	l := strings.ToLower(name)
	switch {
	case strings.Contains(l, "dials"):
		return 0.1, true
	case strings.Contains(l, "deadtime"):
		return 1.0, true
	case strings.Contains(l, "syscalls/gib"):
		// The zero-copy gate: a sendfile lease costs ~6 syscalls per
		// 32 MiB, so the baseline sits near 250/GiB and the userspace
		// fallback near 2200/GiB. The floor absorbs hint-level churn
		// (one extra syscall per lease is +32/GiB) while still
		// catching a pump that starts fragmenting leases — that
		// multiplies the figure, clearing any sub-100 floor.
		return 64, true
	case strings.Contains(l, "syscalls"):
		return 1.0, true
	}
	return 0, false
}

// exceeded applies the gate: a regression is a value both more than
// 20% over baseline and more than the absolute floor above it.
func exceeded(cur, base, floor float64) bool {
	return cur > base*1.20 && cur-base > floor
}

// compare gates cur against base, returning one message per tracked
// regression. Only benchmarks present in both (modulo the GOMAXPROCS
// suffix) are compared.
func compare(base, cur map[string]result) []string {
	norm := func(m map[string]result) map[string]result {
		out := make(map[string]result, len(m))
		for name, r := range m {
			out[procSuffix.ReplaceAllString(name, "")] = r
		}
		return out
	}
	b, c := norm(base), norm(cur)
	names := make([]string, 0, len(c))
	for name := range c {
		names = append(names, name)
	}
	sort.Strings(names)
	var msgs []string
	for _, name := range names {
		cr := c[name]
		br, ok := b[name]
		if !ok {
			continue
		}
		if exceeded(float64(cr.AllocsPerOp), float64(br.AllocsPerOp), 2) {
			msgs = append(msgs, fmt.Sprintf("%s: allocs/op %d, baseline %d", name, cr.AllocsPerOp, br.AllocsPerOp))
		}
		keys := make([]string, 0, len(cr.Metrics))
		for k := range cr.Metrics {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			floor, tracked := trackedMetric(k)
			if !tracked {
				continue
			}
			bv, ok := br.Metrics[k]
			if !ok {
				continue
			}
			if exceeded(cr.Metrics[k], bv, floor) {
				msgs = append(msgs, fmt.Sprintf("%s: %s %g, baseline %g", name, k, cr.Metrics[k], bv))
			}
		}
	}
	return msgs
}
