package main

import "testing"

func TestParseLine(t *testing.T) {
	name, r, ok := parseLine("BenchmarkSimEpoch-8  \t42\t123456 ns/op\t2048 B/op\t12 allocs/op")
	if !ok {
		t.Fatal("result line not parsed")
	}
	if name != "BenchmarkSimEpoch-8" {
		t.Fatalf("name = %q", name)
	}
	if r.Iterations != 42 || r.NsPerOp != 123456 || r.BytesPerOp != 2048 || r.AllocsPerOp != 12 {
		t.Fatalf("parsed %+v", r)
	}
	if r.Metrics != nil {
		t.Fatalf("standard columns leaked into Metrics: %v", r.Metrics)
	}

	// Custom b.ReportMetric columns land in Metrics by unit name.
	_, r, ok = parseLine("BenchmarkEpochSetup/warm-delta-8 100 335000 ns/op 0.5 dials/epoch 0.06 deadtime-ms/epoch")
	if !ok {
		t.Fatal("metric line not parsed")
	}
	if r.Metrics["dials/epoch"] != 0.5 || r.Metrics["deadtime-ms/epoch"] != 0.06 {
		t.Fatalf("Metrics = %v", r.Metrics)
	}

	if _, _, ok := parseLine("BenchmarkNoMem-4 10 98.5 ns/op"); !ok {
		t.Fatal("line without -benchmem columns rejected")
	}
	for _, line := range []string{
		"ok  \tdstune\t0.5s",
		"goos: linux",
		"PASS",
		"BenchmarkBroken-8 notanumber 12 ns/op",
		"BenchmarkNoUnits-8 10 12",
		"",
	} {
		if _, _, ok := parseLine(line); ok {
			t.Fatalf("non-result line parsed: %q", line)
		}
	}
}

func TestCompareGate(t *testing.T) {
	base := map[string]result{
		"BenchmarkPump-8": {AllocsPerOp: 0},
		"BenchmarkEpochSetup/warm-steady-8": {
			AllocsPerOp: 48,
			Metrics:     map[string]float64{"dials/epoch": 0, "deadtime-ms/epoch": 0.01},
		},
		"BenchmarkLoopbackThroughput-8": {Metrics: map[string]float64{"MB/s": 1000}},
	}

	// Identical results (modulo a different GOMAXPROCS suffix) pass.
	cur := map[string]result{
		"BenchmarkPump-16": {AllocsPerOp: 0},
		"BenchmarkEpochSetup/warm-steady-16": {
			AllocsPerOp: 48,
			Metrics:     map[string]float64{"dials/epoch": 0, "deadtime-ms/epoch": 0.01},
		},
	}
	if msgs := compare(base, cur); len(msgs) != 0 {
		t.Fatalf("clean run flagged: %v", msgs)
	}

	// A warm path that starts dialing again is caught even from a zero
	// baseline, and an alloc regression past both slacks is caught.
	cur = map[string]result{
		"BenchmarkPump-8": {AllocsPerOp: 5},
		"BenchmarkEpochSetup/warm-steady-8": {
			AllocsPerOp: 48,
			Metrics:     map[string]float64{"dials/epoch": 3, "deadtime-ms/epoch": 0.01},
		},
	}
	msgs := compare(base, cur)
	if len(msgs) != 2 {
		t.Fatalf("got %d regressions, want 2: %v", len(msgs), msgs)
	}

	// Small absolute growth below the floors never flakes the gate,
	// untracked metrics (MB/s) are ignored, and benchmarks missing
	// from either side are skipped.
	cur = map[string]result{
		"BenchmarkPump-8": {AllocsPerOp: 1},
		"BenchmarkEpochSetup/warm-steady-8": {
			AllocsPerOp: 49,
			Metrics:     map[string]float64{"dials/epoch": 0.05, "deadtime-ms/epoch": 0.5},
		},
		"BenchmarkLoopbackThroughput-8": {Metrics: map[string]float64{"MB/s": 10}},
		"BenchmarkBrandNew-8":           {AllocsPerOp: 9999},
	}
	if msgs := compare(base, cur); len(msgs) != 0 {
		t.Fatalf("sub-floor noise flagged: %v", msgs)
	}

	// syscalls/GiB rides its own wide floor: hint-level churn (one
	// extra syscall per 32 MiB lease is +32/GiB) stays quiet, while a
	// pump that falls off the sendfile path multiplies the figure and
	// trips the gate.
	base = map[string]result{
		"BenchmarkFileSourceEpoch/zerocopy-8": {Metrics: map[string]float64{"syscalls/GiB": 190}},
	}
	cur = map[string]result{
		"BenchmarkFileSourceEpoch/zerocopy-8": {Metrics: map[string]float64{"syscalls/GiB": 250}},
	}
	if msgs := compare(base, cur); len(msgs) != 0 {
		t.Fatalf("hint-level syscall churn flagged: %v", msgs)
	}
	cur["BenchmarkFileSourceEpoch/zerocopy-8"] = result{Metrics: map[string]float64{"syscalls/GiB": 2200}}
	if msgs := compare(base, cur); len(msgs) != 1 {
		t.Fatalf("userspace-level syscall figure not flagged: %v", msgs)
	}
}
