package main

import "testing"

func TestParseLine(t *testing.T) {
	name, r, ok := parseLine("BenchmarkSimEpoch-8  \t42\t123456 ns/op\t2048 B/op\t12 allocs/op")
	if !ok {
		t.Fatal("result line not parsed")
	}
	if name != "BenchmarkSimEpoch-8" {
		t.Fatalf("name = %q", name)
	}
	if r.Iterations != 42 || r.NsPerOp != 123456 || r.BytesPerOp != 2048 || r.AllocsPerOp != 12 {
		t.Fatalf("parsed %+v", r)
	}

	if _, _, ok := parseLine("BenchmarkNoMem-4 10 98.5 ns/op"); !ok {
		t.Fatal("line without -benchmem columns rejected")
	}
	for _, line := range []string{
		"ok  \tdstune\t0.5s",
		"goos: linux",
		"PASS",
		"BenchmarkBroken-8 notanumber 12 ns/op",
		"BenchmarkNoUnits-8 10 12",
		"",
	} {
		if _, _, ok := parseLine(line); ok {
			t.Fatalf("non-result line parsed: %q", line)
		}
	}
}
