package main

import (
	"fmt"
	"os"

	"dstune"
	"dstune/internal/report"
)

// mbSeries converts a trace series to a MB/s line series.
func mbSeries(name string, s *dstune.Series) report.LineSeries {
	out := report.LineSeries{Name: name}
	for _, p := range s.Points {
		out.X = append(out.X, p.T)
		out.Y = append(out.Y, p.V/1e6)
	}
	return out
}

// rawSeries converts a trace series without scaling (e.g. nc values).
func rawSeries(name string, s *dstune.Series) report.LineSeries {
	out := report.LineSeries{Name: name}
	for _, p := range s.Points {
		out.X = append(out.X, p.T)
		out.Y = append(out.Y, p.V)
	}
	return out
}

// tuningLines builds one line chart from a tuning result.
func tuningLines(title, subtitle string, res *dstune.TuningResult,
	sel func(*dstune.Trace) *dstune.Series, ylabel string, scaleMB bool) *report.LineChart {
	c := &report.LineChart{
		Title: title, Subtitle: subtitle,
		YLabel: ylabel, XLabel: "transfer time (s)",
	}
	for _, name := range res.Order {
		tr, ok := res.Traces[name]
		if !ok {
			continue
		}
		if scaleMB {
			c.Series = append(c.Series, mbSeries(name, sel(tr)))
		} else {
			c.Series = append(c.Series, rawSeries(name, sel(tr)))
		}
	}
	return c
}

// html regenerates everything and writes the self-contained report.
func (g *gen) html(path string) error {
	rep := report.New(
		"dstune — Improving Data Transfer Throughput with Direct Search Optimization",
		"Reproduction report: every figure of the ICPP 2016 paper regenerated on the simulated testbeds, "+
			"plus the implemented future-work extensions. Deterministic per seed; see EXPERIMENTS.md for the "+
			"paper-vs-measured record.")

	// Headline tiles from the claims sweep and Figure 8.
	if err := g.runSweep(); err != nil {
		return err
	}
	imps := dstune.Improvements(g.sweep)
	f8, err := dstune.TuneBoth(dstune.ANLtoTACC(), g.rc())
	if err != nil {
		return err
	}
	// "After the load drop" means past t=1000 s on the full schedule;
	// in quick mode (600 s budget) fall back to the final third.
	after := 1200.0
	if g.rc().Duration < 1800 {
		after = g.rc().Duration * 2 / 3
	}
	afterFactor := f8.Traces["nm-tuner"].SteadyThroughput(after) /
		f8.Traces["default"].SteadyThroughput(after)
	nm7 := g.sweep[1].Traces["nm-tuner"]
	overhead := 100 * (1 - nm7.MeanThroughput()/nm7.MeanBestCase())
	rep.AddTiles([]report.Tile{
		{Label: "Best gain after load drop (Fig 8)", Value: fmt.Sprintf("%.1fx", afterFactor), Note: "paper: up to 10x"},
		{Label: "Gain under ext.cmp=16 (Fig 5b)", Value: fmt.Sprintf("%.1fx", imps[1].Factor), Note: "paper: 7x"},
		{Label: "Restart overhead, ext.cmp=16", Value: fmt.Sprintf("%.0f%%", overhead), Note: "paper: 33%"},
	})

	// Figure 1 — throughput vs streams as grouped bars.
	fig1cfg := dstune.Fig1Config{Seed: g.seed}
	if g.quick {
		fig1cfg.Repeats = 2
		fig1cfg.Duration = 240
	}
	f1, err := dstune.Fig1(dstune.ANLtoUChicago(), fig1cfg)
	if err != nil {
		return err
	}
	rep.AddHeading("Figure 1 — parallel streams vs throughput",
		"Median observed throughput per concurrency (np=1), without load and with ext.tfr=ext.cmp=16. "+
			"The critical point moves right and the peak drops under load.")
	bc := &report.BarChart{
		Title:  "Throughput vs concurrency",
		YLabel: "MB/s",
	}
	for _, l := range f1.Loads {
		bc.SeriesNames = append(bc.SeriesNames, l.String())
	}
	for _, nc := range f1.Concurrency {
		grp := report.BarGroup{Label: fmt.Sprint(nc)}
		for _, l := range f1.Loads {
			grp.Values = append(grp.Values, f1.Summary[l][nc].Median/1e6)
		}
		bc.Groups = append(bc.Groups, grp)
	}
	rep.AddBar(bc)

	// Figures 5-7 from the shared sweep.
	labels := []string{"(a) no load", "(b) ext.cmp=16", "(c) ext.cmp=64", "(d) ext.tfr=16", "(e) ext.tfr=64"}
	rep.AddHeading("Figures 5–7 — tuning concurrency under constant load",
		"Observed throughput, adopted concurrency, and best-case (restart-free) throughput of the same runs.")
	for i, res := range g.sweep {
		rep.AddLine(tuningLines("Figure 5"+labels[i], res.Testbed+", "+res.Scenario, res,
			func(t *dstune.Trace) *dstune.Series { return t.Throughput() }, "MB/s", true))
	}
	for i, res := range g.sweep {
		rep.AddLine(tuningLines("Figure 6"+labels[i]+" — concurrency adopted", res.Testbed+", "+res.Scenario, res,
			func(t *dstune.Trace) *dstune.Series { return t.Param(0) }, "nc", false))
	}
	for i, res := range g.sweep {
		rep.AddLine(tuningLines("Figure 7"+labels[i]+" — best case", res.Testbed+", "+res.Scenario, res,
			func(t *dstune.Trace) *dstune.Series { return t.BestCase() }, "MB/s", true))
	}

	// Figures 8-10.
	rep.AddHeading("Figures 8–10 — varying load",
		"ext.tfr=64, ext.cmp=16 until t=1000 s, then ext.tfr=16: two-parameter tuning and the heuristic baselines.")
	rep.AddLine(tuningLines("Figure 8 — ANL→TACC", "tuning nc and np", f8,
		func(t *dstune.Trace) *dstune.Series { return t.Throughput() }, "MB/s", true))
	f9, err := dstune.TuneBoth(dstune.ANLtoUChicago(), g.rc())
	if err != nil {
		return err
	}
	rep.AddLine(tuningLines("Figure 9 — ANL→UChicago", "tuning nc and np", f9,
		func(t *dstune.Trace) *dstune.Series { return t.Throughput() }, "MB/s", true))
	f10, err := dstune.CompareHeuristics(dstune.ANLtoTACC(), g.rc())
	if err != nil {
		return err
	}
	rep.AddLine(tuningLines("Figure 10 — existing heuristics", "nm-tuner vs heur1 (Balman) and heur2 (Yildirim)", f10,
		func(t *dstune.Trace) *dstune.Series { return t.Throughput() }, "MB/s", true))

	// Figure 11.
	f11, err := dstune.Simultaneous("nm-tuner", g.rc())
	if err != nil {
		return err
	}
	rep.AddHeading("Figure 11 — simultaneous transfers",
		"Two independently nm-tuned transfers share the ANL source NIC; each treats the other as external load.")
	rep.AddLine(&report.LineChart{
		Title: "Simultaneous transfers", Subtitle: "shared 5 GB/s NIC",
		YLabel: "MB/s", XLabel: "transfer time (s)",
		Series: []report.LineSeries{
			mbSeries("UChicago", f11.UChicago.Throughput()),
			mbSeries("TACC", f11.TACC.Throughput()),
		},
	})

	// Claims table.
	rep.AddHeading("§IV-A claims", "Improvement over default and restart overhead per scenario.")
	head := []string{"scenario", "default MB/s", "best tuner", "tuner MB/s", "factor"}
	var rows [][]string
	for _, im := range imps {
		rows = append(rows, []string{
			im.Scenario,
			fmt.Sprintf("%.1f", im.Default/1e6),
			im.BestName,
			fmt.Sprintf("%.1f", im.Best/1e6),
			fmt.Sprintf("%.1fx", im.Factor),
		})
	}
	rep.AddTable(head, rows)

	// Extensions: disk regimes and joint tuning.
	rep.AddHeading("Extension — disk-to-disk transfers",
		"Future-work item (1): datasets of heterogeneous file sizes with a per-file request latency; "+
			"the tuners gain a third parameter, pipelining.")
	diskBar := &report.BarChart{
		Title:       "Disk regimes",
		Subtitle:    "mean throughput over the run",
		YLabel:      "MB/s",
		SeriesNames: []string{"default", "cs-tuner", "nm-tuner"},
	}
	for _, sc := range dstune.DiskScenarios(g.seed) {
		if g.quick && sc.Name != "many-small" {
			continue
		}
		res, err := dstune.TuneDisk(dstune.ANLtoUChicago(), sc, g.rc())
		if err != nil {
			return err
		}
		grp := report.BarGroup{Label: sc.Name}
		for _, n := range diskBar.SeriesNames {
			grp.Values = append(grp.Values, res.Traces[n].MeanThroughput()/1e6)
		}
		diskBar.Groups = append(diskBar.Groups, grp)
	}
	rep.AddBar(diskBar)

	jc, err := dstune.JointVsIndependent(g.rc())
	if err != nil {
		return err
	}
	rep.AddHeading("Extension — endpoint-level joint tuning",
		"Future-work item (4): one direct search over both transfers' parameters vs Figure 11's independent tuners.")
	rep.AddTable([]string{"mode", "UChicago MB/s", "TACC MB/s", "aggregate MB/s"}, [][]string{
		{"independent", fmt.Sprintf("%.1f", jc.Independent.UChicago.MeanThroughput()/1e6),
			fmt.Sprintf("%.1f", jc.Independent.TACC.MeanThroughput()/1e6),
			fmt.Sprintf("%.1f", jc.IndependentAggregate()/1e6)},
		{"joint", fmt.Sprintf("%.1f", jc.JointUChicago.MeanThroughput()/1e6),
			fmt.Sprintf("%.1f", jc.JointTACC.MeanThroughput()/1e6),
			fmt.Sprintf("%.1f", jc.JointAggregate()/1e6)},
	})

	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := rep.Render(f); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", path)
	return nil
}
