// Command figures regenerates every figure of the paper's evaluation
// on the simulated testbeds and prints the data series and summary
// rows.
//
// Usage:
//
//	figures [-fig all|1|5|6|7|8|9|10|11|claims] [-quick] [-seed N] [-csv DIR]
//
// Figures 5, 6, and 7 come from the same runs (observed throughput,
// adopted concurrency, and best-case throughput of the same tuned
// transfers), so asking for any of them runs the shared sweep once.
// -quick shortens runs for a fast smoke pass; -csv writes the
// underlying series to DIR as CSV files.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"dstune"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("figures: ")
	fig := flag.String("fig", "all", "figure to regenerate: all, 1, 5, 6, 7, 8, 9, 10, 11, claims, disk, joint, dynload")
	quick := flag.Bool("quick", false, "shorten runs (smoke mode)")
	seed := flag.Uint64("seed", 1, "random seed")
	csvDir := flag.String("csv", "", "directory to write series CSVs into")
	htmlPath := flag.String("html", "", "write a self-contained HTML report (with SVG charts) to this path")
	flag.Parse()

	g := &gen{seed: *seed, quick: *quick, csvDir: *csvDir}
	var err error
	if *htmlPath != "" {
		if err := g.html(*htmlPath); err != nil {
			log.Fatal(err)
		}
		return
	}
	switch *fig {
	case "1":
		err = g.fig1()
	case "5", "6", "7":
		err = g.fig567(map[string]bool{*fig: true})
	case "8":
		err = g.fig89(dstune.ANLtoTACC(), "Figure 8")
	case "9":
		err = g.fig89(dstune.ANLtoUChicago(), "Figure 9")
	case "10":
		err = g.fig10()
	case "11":
		err = g.fig11()
	case "claims":
		err = g.claims()
	case "disk":
		err = g.disk()
	case "joint":
		err = g.joint()
	case "dynload":
		err = g.dynload()
	case "all":
		err = g.all()
	default:
		err = fmt.Errorf("unknown figure %q", *fig)
	}
	if err != nil {
		log.Fatal(err)
	}
}

// gen carries the run options and caches the shared Fig 5-7 sweep.
type gen struct {
	seed   uint64
	quick  bool
	csvDir string

	sweep []*dstune.TuningResult // Fig 5-7 runs, one per load
}

// rc returns the run configuration, shortened in quick mode.
func (g *gen) rc() dstune.RunConfig {
	rc := dstune.RunConfig{Seed: g.seed, Duration: 1800}
	if g.quick {
		rc.Duration = 600
	}
	return rc
}

// all regenerates everything in paper order.
func (g *gen) all() error {
	if err := g.fig1(); err != nil {
		return err
	}
	if err := g.fig567(map[string]bool{"5": true, "6": true, "7": true}); err != nil {
		return err
	}
	if err := g.fig89(dstune.ANLtoTACC(), "Figure 8"); err != nil {
		return err
	}
	if err := g.fig89(dstune.ANLtoUChicago(), "Figure 9"); err != nil {
		return err
	}
	if err := g.fig10(); err != nil {
		return err
	}
	if err := g.fig11(); err != nil {
		return err
	}
	if err := g.claims(); err != nil {
		return err
	}
	if err := g.disk(); err != nil {
		return err
	}
	if err := g.joint(); err != nil {
		return err
	}
	return g.dynload()
}

// dynload prints the dynamic-load study: learned strategies
// (rl-bandit, rl-q) against the direct searches on step, square, and
// piecewise load schedules, scoring integral throughput and
// re-adaptation lag.
func (g *gen) dynload() error {
	res, err := dstune.DynamicLoadStudy(dstune.ANLtoUChicago(),
		dstune.DynamicLoadConfig{Run: g.rc()})
	if err != nil {
		return err
	}
	fmt.Println("Extension — learned tuning vs. direct search on dynamic load")
	fmt.Println(res.Report())
	return nil
}

// disk prints the disk-to-disk extension study (the paper's
// future-work item (1)).
func (g *gen) disk() error {
	fmt.Println("Extension — disk-to-disk transfers over heterogeneous file sets")
	for _, sc := range dstune.DiskScenarios(g.seed) {
		if g.quick && sc.Name != "many-small" {
			continue
		}
		res, err := dstune.TuneDisk(dstune.ANLtoUChicago(), sc, g.rc())
		if err != nil {
			return err
		}
		fmt.Printf("\n%s (%s)\n", sc.Name, sc.Files)
		for _, name := range res.Order {
			tr := res.Traces[name]
			last := tr.Results[len(tr.Results)-1]
			fmt.Printf("  %-9s %8.1f MB/s  %6d files  final x=%v done=%v\n",
				name, tr.MeanThroughput()/1e6, dstune.FilesMoved(tr), tr.FinalX(), last.Report.Done)
		}
	}
	fmt.Println()
	return nil
}

// joint prints the joint-vs-independent endpoint tuning study (the
// paper's future-work item (4)).
func (g *gen) joint() error {
	jc, err := dstune.JointVsIndependent(g.rc())
	if err != nil {
		return err
	}
	fmt.Println(jc.Render())
	return nil
}

func (g *gen) fig1() error {
	cfg := dstune.Fig1Config{Seed: g.seed}
	if g.quick {
		cfg.Repeats = 2
		cfg.Duration = 240
	}
	res, err := dstune.Fig1(dstune.ANLtoUChicago(), cfg)
	if err != nil {
		return err
	}
	fmt.Println(res.Render())
	return nil
}

// runSweep runs the shared Figures 5-7 sweep once.
func (g *gen) runSweep() error {
	if g.sweep != nil {
		return nil
	}
	for _, l := range dstune.Fig5Loads() {
		res, err := dstune.TuneConcurrency(dstune.ANLtoUChicago(), l, g.rc())
		if err != nil {
			return err
		}
		g.sweep = append(g.sweep, res)
	}
	return nil
}

func (g *gen) fig567(want map[string]bool) error {
	if err := g.runSweep(); err != nil {
		return err
	}
	labels := []string{"(a)", "(b)", "(c)", "(d)", "(e)"}
	for i, res := range g.sweep {
		if want["5"] {
			fmt.Printf("Figure 5%s — observed throughput, %s, %s\n", labels[i], res.Testbed, res.Scenario)
			g.seriesBlock(res, func(t *dstune.Trace) *dstune.Series { return t.Throughput() }, "MB/s",
				fmt.Sprintf("fig5%s", labels[i]))
		}
		if want["6"] {
			fmt.Printf("Figure 6%s — concurrency adopted, %s, %s\n", labels[i], res.Testbed, res.Scenario)
			g.seriesBlock(res, func(t *dstune.Trace) *dstune.Series { return t.Param(0) }, "nc",
				fmt.Sprintf("fig6%s", labels[i]))
		}
		if want["7"] {
			fmt.Printf("Figure 7%s — best-case throughput, %s, %s\n", labels[i], res.Testbed, res.Scenario)
			g.seriesBlock(res, func(t *dstune.Trace) *dstune.Series { return t.BestCase() }, "MB/s",
				fmt.Sprintf("fig7%s", labels[i]))
		}
	}
	return nil
}

// seriesBlock prints one line per tuner with a sparkline, final value,
// and mean; optionally writing the CSVs.
func (g *gen) seriesBlock(res *dstune.TuningResult, sel func(*dstune.Trace) *dstune.Series, unit, csvName string) {
	var all []*dstune.Series
	for _, name := range res.Order {
		tr := res.Traces[name]
		s := sel(tr)
		scale := 1.0
		if unit == "MB/s" {
			scale = 1e6
		}
		fmt.Printf("  %-9s %s  final %8.1f %s  mean %8.1f\n",
			name, dstune.Sparkline(s, 40), s.Last().V/scale, unit, s.Mean()/scale)
		all = append(all, s)
	}
	fmt.Println()
	g.writeCSV(csvName, all...)
}

func (g *gen) fig89(tb dstune.Testbed, label string) error {
	res, err := dstune.TuneBoth(tb, g.rc())
	if err != nil {
		return err
	}
	fmt.Printf("%s — tuning nc and np under varying load\n%s\n", label, res.Render())
	for _, name := range res.Order {
		tr := res.Traces[name]
		g.writeCSV(fmt.Sprintf("%s-%s", label, name), tr.Throughput(), tr.Param(0), tr.Param(1))
	}
	return nil
}

func (g *gen) fig10() error {
	res, err := dstune.CompareHeuristics(dstune.ANLtoTACC(), g.rc())
	if err != nil {
		return err
	}
	fmt.Printf("Figure 10 — nm-tuner vs existing heuristics\n%s\n", res.Render())
	for _, name := range res.Order {
		g.writeCSV("fig10-"+name, res.Traces[name].Throughput())
	}
	return nil
}

func (g *gen) fig11() error {
	for _, name := range []string{"nm-tuner", "cs-tuner"} {
		res, err := dstune.Simultaneous(name, g.rc())
		if err != nil {
			return err
		}
		fmt.Println(res.Render())
		g.writeCSV("fig11-"+name,
			res.UChicago.Throughput(), res.TACC.Throughput())
	}
	return nil
}

func (g *gen) claims() error {
	if err := g.runSweep(); err != nil {
		return err
	}
	fmt.Println("§IV-A claims — improvement over default and restart overhead")
	fmt.Println(dstune.RenderImprovements(dstune.Improvements(g.sweep)))
	fmt.Println("convergence to 90% of steady state (seconds; -1 = not reached):")
	for _, res := range g.sweep {
		times := dstune.ConvergenceTimes(res, 0.9, 3)
		fmt.Printf("  %-24s", res.Scenario)
		for _, name := range res.Order {
			fmt.Printf("  %s=%.0f", name, times[name])
		}
		fmt.Println()
	}
	fmt.Println()
	return nil
}

// writeCSV writes series to the -csv directory when set.
func (g *gen) writeCSV(name string, series ...*dstune.Series) {
	if g.csvDir == "" {
		return
	}
	if err := os.MkdirAll(g.csvDir, 0o755); err != nil {
		log.Fatal(err)
	}
	path := filepath.Join(g.csvDir, name+".csv")
	f, err := os.Create(path)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	if err := dstune.WriteSeriesCSV(f, series...); err != nil {
		log.Fatal(err)
	}
}
