package main

import (
	"os"
	"strings"
	"testing"

	"dstune"
)

func TestMBSeries(t *testing.T) {
	s := &dstune.Series{Name: "x"}
	s.Add(0, 2e9)
	s.Add(30, 3e9)
	out := mbSeries("x", s)
	if len(out.X) != 2 || out.Y[0] != 2000 || out.Y[1] != 3000 {
		t.Fatalf("mbSeries = %+v", out)
	}
}

func TestRawSeries(t *testing.T) {
	s := &dstune.Series{Name: "nc"}
	s.Add(0, 2)
	s.Add(30, 8)
	out := rawSeries("nc", s)
	if out.Y[1] != 8 {
		t.Fatalf("rawSeries = %+v", out)
	}
}

func TestQuickRCDurations(t *testing.T) {
	g := &gen{quick: true}
	if g.rc().Duration != 600 {
		t.Fatalf("quick duration = %v", g.rc().Duration)
	}
	g.quick = false
	if g.rc().Duration != 1800 {
		t.Fatalf("full duration = %v", g.rc().Duration)
	}
}

func TestHTMLReportSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the quick experiment suite")
	}
	g := &gen{seed: 1, quick: true}
	path := t.TempDir() + "/report.html"
	if err := g.html(path); err != nil {
		t.Fatal(err)
	}
	// The report must contain the paper figures and end cleanly.
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data := string(raw)
	for _, want := range []string{"Figure 1", "Figure 5", "Figure 10", "</html>"} {
		if !strings.Contains(data, want) {
			t.Fatalf("report missing %q", want)
		}
	}
}
