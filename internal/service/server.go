package service

import (
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"strconv"
	"strings"
)

// Handler returns the daemon's control-plane HTTP handler:
//
//	POST   /jobs       submit a JobSpec -> 201 + JobStatus
//	GET    /jobs       list every job   -> 200 + {"jobs": [...]}
//	GET    /jobs/{id}  one job          -> 200 + JobStatus
//	DELETE /jobs/{id}  graceful cancel  -> 200 + JobStatus
//
// plus the observation plane's endpoints (/metrics, /status,
// /debug/...) when the Supervisor has an Observer. Submissions are
// rejected with 400 for malformed or invalid specs (never journaled),
// 409 for duplicate IDs, 429 + Retry-After under backpressure or
// quota, and 503 while draining.
func (sv *Supervisor) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/jobs", sv.handleJobs)
	mux.HandleFunc("/jobs/", sv.handleJob)
	mux.Handle("/", sv.obs.Handler())
	return mux
}

// apiError is the control API's error body.
type apiError struct {
	// Error is the human-readable failure description.
	Error string `json:"error"`
}

// writeJSON writes v with the given status.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // response write failure is the client's problem
}

// writeError writes an apiError with the given status.
func writeError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, apiError{Error: msg})
}

// handleJobs serves POST /jobs (submit) and GET /jobs (list).
func (sv *Supervisor) handleJobs(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodPost:
		body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxSpecBytes))
		if err != nil {
			writeError(w, http.StatusBadRequest, "service: reading body: "+err.Error())
			return
		}
		spec, err := DecodeJobSpec(body)
		if err != nil {
			writeError(w, http.StatusBadRequest, err.Error())
			return
		}
		st, err := sv.Submit(spec)
		if err != nil {
			var rej *RejectError
			switch {
			case errors.As(err, &rej):
				status := http.StatusTooManyRequests
				switch rej.Reason {
				case "duplicate":
					status = http.StatusConflict
				case "draining":
					status = http.StatusServiceUnavailable
				}
				if rej.RetryAfter > 0 {
					secs := int(rej.RetryAfter.Seconds())
					if secs < 1 {
						secs = 1
					}
					w.Header().Set("Retry-After", strconv.Itoa(secs))
				}
				writeError(w, status, err.Error())
			default:
				writeError(w, http.StatusInternalServerError, err.Error())
			}
			return
		}
		writeJSON(w, http.StatusCreated, st)
	case http.MethodGet:
		writeJSON(w, http.StatusOK, struct {
			Jobs []JobStatus `json:"jobs"`
		}{Jobs: sv.Jobs()})
	default:
		writeError(w, http.StatusMethodNotAllowed, "service: use POST or GET")
	}
}

// handleJob serves GET and DELETE on /jobs/{id}.
func (sv *Supervisor) handleJob(w http.ResponseWriter, r *http.Request) {
	id := strings.TrimPrefix(r.URL.Path, "/jobs/")
	if id == "" || strings.Contains(id, "/") {
		writeError(w, http.StatusNotFound, "service: no such job")
		return
	}
	switch r.Method {
	case http.MethodGet:
		st, err := sv.Job(id)
		if err != nil {
			writeError(w, http.StatusNotFound, err.Error())
			return
		}
		writeJSON(w, http.StatusOK, st)
	case http.MethodDelete:
		st, err := sv.Cancel(id)
		if err != nil {
			writeError(w, http.StatusNotFound, err.Error())
			return
		}
		writeJSON(w, http.StatusOK, st)
	default:
		writeError(w, http.StatusMethodNotAllowed, "service: use GET or DELETE")
	}
}
