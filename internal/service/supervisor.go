package service

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"sync"
	"time"

	"dstune/internal/fsx"
	"dstune/internal/history"
	"dstune/internal/obs"
	"dstune/internal/tuner"
	"dstune/internal/xfer"
)

// ErrNotFound is returned by Job and Cancel for an unknown job ID.
var ErrNotFound = errors.New("service: no such job")

// errCancelled ends a session whose job was cancelled through the
// control API; errFaultBudget ends sessions of a tenant whose
// transient-fault budget ran out.
var (
	errCancelled   = errors.New("service: job cancelled")
	errFaultBudget = errors.New("service: tenant fault budget exhausted")
)

// TransferFactory builds a job's transfer. The default factory builds
// a simulation-fabric transfer or a gridftp client from the spec;
// tests substitute synthetic transfers for scale soaks. resume is the
// job's checkpoint when it is being re-adopted, nil on a cold start.
type TransferFactory func(id string, spec JobSpec, resume *tuner.Checkpoint) (xfer.Transferer, error)

// Config parameterizes a Supervisor.
type Config struct {
	// Dir is the daemon's state directory; the job journal lives in
	// Dir/journal and per-job checkpoints in Dir/checkpoints.
	// Required.
	Dir string
	// Shards is the number of session-supervision worker loops; jobs
	// are assigned by tuner.ShardIndex of their ID (default 4).
	Shards int
	// Limits is the admission-control policy.
	Limits Limits
	// Obs, when non-nil, observes the daemon (dstuned_* instruments,
	// job lifecycle events) and every session it runs.
	Obs *obs.Observer
	// History, when non-nil, is the shared cross-tenant knowledge
	// plane: sessions warm-start from it and record their best epochs
	// into it, exactly as Fleet sessions do.
	History *history.Store
	// Logf receives operational log lines (adoption counts, journal
	// damage); nil discards them.
	Logf func(format string, args ...any)
	// NewTransfer overrides transfer construction; nil selects the
	// built-in spec-driven factory.
	NewTransfer TransferFactory
}

// JobState is a job's lifecycle state as reported by the control API.
type JobState string

// The job lifecycle. Queued and Running jobs are journaled;
// Interrupted jobs (daemon shutting down) stay journaled so the next
// incarnation re-adopts them; the four terminal states are removed
// from the journal as they are entered.
const (
	// JobQueued: admitted, journaled, waiting for a shard slot.
	JobQueued JobState = "queued"
	// JobRunning: stepping on a shard loop.
	JobRunning JobState = "running"
	// JobDone: ended cleanly (transfer complete, budget spent, or
	// strategy finished).
	JobDone JobState = "done"
	// JobFailed: ended with an error.
	JobFailed JobState = "failed"
	// JobCancelled: ended by DELETE /jobs/{id}; the last checkpoint is
	// retained on disk.
	JobCancelled JobState = "cancelled"
	// JobEvicted: force-ended by the supervisor (tenant fault budget).
	JobEvicted JobState = "evicted"
	// JobInterrupted: abandoned mid-trajectory by a daemon shutdown;
	// still journaled, re-adopted on the next start.
	JobInterrupted JobState = "interrupted"
)

// JobStatus is one job's live state as served by the control API.
type JobStatus struct {
	// ID is the job's identifier.
	ID string `json:"id"`
	// Tenant is the quota-attribution tenant.
	Tenant string `json:"tenant"`
	// Tuner is the strategy name.
	Tuner string `json:"tuner"`
	// State is the lifecycle state.
	State JobState `json:"state"`
	// Shard is the worker loop the job is hashed to.
	Shard int `json:"shard"`
	// Adopted reports that this incarnation re-adopted the job from
	// the journal after a restart.
	Adopted bool `json:"adopted,omitempty"`
	// AdoptedEpochs is the number of checkpointed epochs the job
	// resumed from.
	AdoptedEpochs int `json:"adopted_epochs,omitempty"`
	// Epochs is the number of settled epochs, cumulative across
	// restarts.
	Epochs int `json:"epochs"`
	// X is the parameter vector currently in play.
	X []int `json:"x,omitempty"`
	// Throughput is the last settled epoch's aggregate throughput
	// (bytes/s).
	Throughput float64 `json:"throughput,omitempty"`
	// Bytes is the total bytes the job's epochs moved, cumulative
	// across restarts.
	Bytes float64 `json:"bytes"`
	// TargetBytes is the spec's transfer volume (0 = unbounded).
	TargetBytes float64 `json:"target_bytes,omitempty"`
	// TransientEpochs is the current consecutive transient-failure
	// count.
	TransientEpochs int `json:"transient_epochs,omitempty"`
	// Error is the terminal error, when the job failed.
	Error string `json:"error,omitempty"`
}

// AdoptionRecord is one line of the adoption report a restarted daemon
// produces: the journaled job it re-adopted and where its trajectory
// stood.
type AdoptionRecord struct {
	// ID is the job's identifier.
	ID string `json:"id"`
	// Tenant is the job's tenant.
	Tenant string `json:"tenant"`
	// Epochs is the checkpointed epoch count at adoption.
	Epochs int `json:"epochs"`
	// Bytes is the receiver-confirmed byte count at the last
	// checkpoint.
	Bytes float64 `json:"bytes"`
	// Clock is the transfer clock at the last checkpoint (seconds).
	Clock float64 `json:"clock_seconds"`
}

// job is one job's supervisor-side state. The rt field is owned by the
// job's shard goroutine; everything else is guarded by Supervisor.mu,
// with the shard loop copying runtime progress into the snapshot
// fields after each round.
type job struct {
	id     string
	tenant string
	spec   JobSpec // defaults applied
	seq    int
	shard  int

	state         JobState
	err           error
	cancel        bool
	adopted       bool
	adoptedEpochs int
	epochs        int
	bytes         float64
	x             []int
	tput          float64
	transients    int

	rt *tuner.SessionRuntime
}

// Supervisor is the dstuned service core: admission control, the
// sharded session-supervision loops, the crash-safe job journal, and
// the control-plane state behind the HTTP API. Construct with New
// (which re-adopts any journaled jobs), call Start to launch the shard
// loops, and cancel Start's context to drain: in-flight sessions are
// abandoned preserved-and-journaled, so the next incarnation resumes
// them mid-trajectory.
type Supervisor struct {
	cfg     Config
	limits  Limits
	shards  int
	obs     *obs.Observer
	dobs    *obs.DaemonObs
	hist    *history.Store
	journal *Journal
	ckDir   string

	ctx context.Context
	wg  sync.WaitGroup

	mu             sync.Mutex
	jobs           map[string]*job
	order          []*job
	queues         [][]*job
	wake           []chan struct{}
	active         int
	queued         int
	tenantAdmitted map[string]int
	tenantFaults   map[string]int
	tenantKilled   map[string]bool
	nextSeq        int
	started        bool
	adoptions      []AdoptionRecord
}

// New builds a Supervisor over cfg.Dir, creating the state layout if
// needed and re-adopting every journaled job: each becomes a queued
// job again, resuming from its checkpoint once a shard picks it up.
// Call Start to begin supervision.
func New(cfg Config) (*Supervisor, error) {
	if cfg.Dir == "" {
		return nil, errors.New("service: Config.Dir is required")
	}
	shards := cfg.Shards
	if shards < 1 {
		shards = 4
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, err
	}
	journal, err := OpenJournal(filepath.Join(cfg.Dir, "journal"))
	if err != nil {
		return nil, err
	}
	ckDir := filepath.Join(cfg.Dir, "checkpoints")
	if err := os.MkdirAll(ckDir, 0o755); err != nil {
		return nil, err
	}
	if err := fsx.SyncDir(cfg.Dir); err != nil {
		return nil, err
	}
	sv := &Supervisor{
		cfg:            cfg,
		limits:         cfg.Limits.withDefaults(),
		shards:         shards,
		obs:            cfg.Obs,
		dobs:           cfg.Obs.Daemon(),
		hist:           cfg.History,
		journal:        journal,
		ckDir:          ckDir,
		jobs:           make(map[string]*job),
		queues:         make([][]*job, shards),
		wake:           make([]chan struct{}, shards),
		tenantAdmitted: make(map[string]int),
		tenantFaults:   make(map[string]int),
		tenantKilled:   make(map[string]bool),
	}
	for k := range sv.wake {
		sv.wake[k] = make(chan struct{}, 1)
	}
	if err := sv.adopt(); err != nil {
		return nil, err
	}
	return sv, nil
}

// adopt scans the journal and re-queues every entry: the restarted
// daemon owes each of these jobs a completion. Trajectory positions
// come from the per-job checkpoints when they exist; a journaled job
// without a checkpoint simply cold-starts (it was admitted but never
// settled an epoch).
func (sv *Supervisor) adopt() error {
	entries, skipped, err := sv.journal.Entries()
	if err != nil {
		return err
	}
	if skipped > 0 {
		sv.logf("service: journal scan skipped %d unreadable entries", skipped)
	}
	for _, e := range entries {
		j := &job{
			id:      e.ID,
			tenant:  e.Tenant,
			spec:    e.Spec.withDefaults(),
			seq:     e.Seq,
			shard:   tuner.ShardIndex(e.ID, sv.shards),
			state:   JobQueued,
			adopted: true,
		}
		rec := AdoptionRecord{ID: e.ID, Tenant: e.Tenant}
		if ck, err := tuner.LoadCheckpoint(sv.checkpointPath(e.ID)); err == nil {
			j.adoptedEpochs = ck.Epochs
			j.epochs = ck.Epochs
			j.bytes = ck.Transfer.Acked
			rec.Epochs = ck.Epochs
			rec.Bytes = ck.Transfer.Acked
			rec.Clock = ck.Transfer.Clock
		}
		sv.jobs[j.id] = j
		sv.order = append(sv.order, j)
		sv.queues[j.shard] = append(sv.queues[j.shard], j)
		sv.queued++
		sv.tenantAdmitted[j.tenant]++
		if e.Seq >= sv.nextSeq {
			sv.nextSeq = e.Seq + 1
		}
		sv.adoptions = append(sv.adoptions, rec)
		sv.dobs.JobAdopted(e.ID, j.adoptedEpochs)
	}
	if len(entries) > 0 {
		sv.logf("service: re-adopted %d journaled jobs", len(entries))
	}
	sv.updateGaugesLocked()
	return nil
}

// Adopted returns the adoption report from this incarnation's journal
// scan, in admission order.
func (sv *Supervisor) Adopted() []AdoptionRecord {
	sv.mu.Lock()
	defer sv.mu.Unlock()
	return append([]AdoptionRecord(nil), sv.adoptions...)
}

// Start launches the shard loops. Cancelling ctx drains the daemon:
// shards finish their in-flight round, abandon surviving sessions
// preserved (journal entries and checkpoints intact, transfers left
// resumable), and exit; Wait blocks until they have.
func (sv *Supervisor) Start(ctx context.Context) {
	sv.mu.Lock()
	defer sv.mu.Unlock()
	if sv.started {
		return
	}
	sv.started = true
	sv.ctx = ctx
	for k := 0; k < sv.shards; k++ {
		sv.wg.Add(1)
		go sv.shardLoop(ctx, k)
	}
}

// Wait blocks until every shard loop has exited.
func (sv *Supervisor) Wait() { sv.wg.Wait() }

// logf forwards to Config.Logf when set.
func (sv *Supervisor) logf(format string, args ...any) {
	if sv.cfg.Logf != nil {
		sv.cfg.Logf(format, args...)
	}
}

// checkpointPath returns the durable checkpoint file for job id.
func (sv *Supervisor) checkpointPath(id string) string {
	return filepath.Join(sv.ckDir, id+".ck")
}

// Submit admits one job: validate, apply defaults, check quotas,
// journal durably, enqueue on its shard. The returned status reflects
// the admitted (queued) job. A *RejectError signals backpressure or a
// quota; any other error is either an invalid spec or a journal write
// failure.
func (sv *Supervisor) Submit(spec JobSpec) (JobStatus, error) {
	if err := spec.Validate(); err != nil {
		return JobStatus{}, err
	}
	sv.dobs.Submitted()
	full := spec.withDefaults()

	sv.mu.Lock()
	defer sv.mu.Unlock()
	if sv.ctx != nil && sv.ctx.Err() != nil {
		return JobStatus{}, sv.reject("draining", 0)
	}
	id := full.ID
	if id == "" {
		for {
			id = fmt.Sprintf("job-%06d", sv.nextSeq)
			if _, taken := sv.jobs[id]; !taken {
				break
			}
			sv.nextSeq++
		}
		full.ID = id
	}
	if _, dup := sv.jobs[id]; dup {
		return JobStatus{}, sv.reject("duplicate", 0)
	}
	if sv.tenantKilled[full.Tenant] {
		return JobStatus{}, sv.reject("fault-budget", 0)
	}
	if sv.queued >= sv.limits.MaxQueued {
		return JobStatus{}, sv.reject("queue-full", sv.limits.RetryAfter)
	}
	if sv.tenantAdmitted[full.Tenant] >= sv.limits.TenantMaxActive {
		return JobStatus{}, sv.reject("tenant-quota", sv.limits.RetryAfter)
	}

	seq := sv.nextSeq
	sv.nextSeq++
	j := &job{
		id:     id,
		tenant: full.Tenant,
		spec:   full,
		seq:    seq,
		shard:  tuner.ShardIndex(id, sv.shards),
		state:  JobQueued,
	}
	// The journal entry must be durable before the job becomes
	// visible anywhere: a crash between the client's 201 and the
	// first checkpoint must still re-adopt the job.
	if err := sv.journal.Append(JournalEntry{ID: id, Tenant: full.Tenant, Spec: full, Seq: seq}); err != nil {
		return JobStatus{}, err
	}
	sv.jobs[id] = j
	sv.order = append(sv.order, j)
	sv.queues[j.shard] = append(sv.queues[j.shard], j)
	sv.queued++
	sv.tenantAdmitted[j.tenant]++
	sv.dobs.JobAdmitted(id, j.tenant)
	sv.updateGaugesLocked()
	select {
	case sv.wake[j.shard] <- struct{}{}:
	default:
	}
	return j.statusLocked(), nil
}

// reject counts and returns one admission refusal.
func (sv *Supervisor) reject(reason string, retryAfter time.Duration) *RejectError {
	sv.dobs.Rejected(reason)
	return &RejectError{Reason: reason, RetryAfter: retryAfter}
}

// Cancel gracefully ends job id: a queued job is retired immediately;
// a running one finishes its in-flight epoch (checkpointing as usual)
// and is retired at the next round boundary. Either way the last
// checkpoint stays on disk and the journal entry is removed, so the
// job is not re-adopted. Cancelling a finished job returns its
// terminal status unchanged.
func (sv *Supervisor) Cancel(id string) (JobStatus, error) {
	sv.mu.Lock()
	defer sv.mu.Unlock()
	j, ok := sv.jobs[id]
	if !ok {
		return JobStatus{}, ErrNotFound
	}
	switch j.state {
	case JobQueued:
		q := sv.queues[j.shard]
		for i, qj := range q {
			if qj == j {
				sv.queues[j.shard] = append(q[:i:i], q[i+1:]...)
				break
			}
		}
		sv.queued--
		sv.finalizeLocked(j, JobCancelled, nil)
	case JobRunning:
		j.cancel = true
	}
	return j.statusLocked(), nil
}

// Job returns job id's status.
func (sv *Supervisor) Job(id string) (JobStatus, error) {
	sv.mu.Lock()
	defer sv.mu.Unlock()
	j, ok := sv.jobs[id]
	if !ok {
		return JobStatus{}, ErrNotFound
	}
	return j.statusLocked(), nil
}

// Jobs returns every known job's status in admission order.
func (sv *Supervisor) Jobs() []JobStatus {
	sv.mu.Lock()
	defer sv.mu.Unlock()
	out := make([]JobStatus, 0, len(sv.order))
	for _, j := range sv.order {
		out = append(out, j.statusLocked())
	}
	return out
}

// statusLocked snapshots the job; the caller holds Supervisor.mu.
func (j *job) statusLocked() JobStatus {
	st := JobStatus{
		ID:              j.id,
		Tenant:          j.tenant,
		Tuner:           j.spec.Tuner,
		State:           j.state,
		Shard:           j.shard,
		Adopted:         j.adopted,
		AdoptedEpochs:   j.adoptedEpochs,
		Epochs:          j.epochs,
		X:               append([]int(nil), j.x...),
		Throughput:      j.tput,
		Bytes:           j.bytes,
		TargetBytes:     j.spec.Bytes,
		TransientEpochs: j.transients,
	}
	if j.err != nil {
		st.Error = j.err.Error()
	}
	return st
}

// finalizeLocked retires a job into a terminal state: counters,
// gauges, and — critically — the journal entry, whose durable removal
// is what keeps the job from being re-adopted. The caller holds
// Supervisor.mu; for previously running jobs it has already released
// the shard slot via releaseLocked.
func (sv *Supervisor) finalizeLocked(j *job, state JobState, err error) {
	j.state = state
	j.err = err
	sv.tenantAdmitted[j.tenant]--
	if rerr := sv.journal.Remove(j.id); rerr != nil {
		sv.logf("service: job %s: journal remove: %v", j.id, rerr)
	}
	switch state {
	case JobEvicted:
		sv.dobs.JobEvicted(j.id, "fault-budget")
	case JobCancelled:
		sv.dobs.JobDone(nil, true)
	default:
		sv.dobs.JobDone(err, false)
	}
	sv.updateGaugesLocked()
}

// updateGaugesLocked refreshes the queue/active/tenant gauges; the
// caller holds Supervisor.mu.
func (sv *Supervisor) updateGaugesLocked() {
	sv.dobs.SetQueueDepth(sv.queued)
	sv.dobs.SetActive(sv.active)
	for tenant, n := range sv.tenantAdmitted {
		sv.dobs.SetTenantActive(tenant, n)
	}
}

// shardLoop is one supervision worker: admit queued jobs up to the
// global cap, step every live session concurrently (one barrier per
// round, like a Fleet round), settle the results, repeat. On ctx
// cancellation it abandons surviving sessions preserved — journal
// entries and checkpoints intact — so a restart re-adopts them.
func (sv *Supervisor) shardLoop(ctx context.Context, k int) {
	defer sv.wg.Done()
	shard := strconv.Itoa(k)
	var live []*job
	for {
		// Admit while capacity remains.
		var admits []*job
		sv.mu.Lock()
		for len(sv.queues[k]) > 0 && sv.active < sv.limits.MaxActive {
			j := sv.queues[k][0]
			sv.queues[k] = sv.queues[k][1:]
			sv.queued--
			sv.active++
			j.state = JobRunning
			admits = append(admits, j)
		}
		sv.updateGaugesLocked()
		sv.mu.Unlock()
		for _, j := range admits {
			rt, err := sv.buildRuntime(j)
			sv.mu.Lock()
			if err != nil {
				sv.releaseLocked()
				sv.finalizeLocked(j, JobFailed, err)
				sv.mu.Unlock()
				continue
			}
			j.rt = rt
			sv.mu.Unlock()
			live = append(live, j)
		}

		if len(live) == 0 {
			select {
			case <-ctx.Done():
				return
			case <-sv.wake[k]:
				continue
			}
		}
		if ctx.Err() != nil {
			sv.abandon(live)
			return
		}

		// Honor cancels and tenant evictions at the round boundary.
		sv.mu.Lock()
		stepping := live[:0]
		for _, j := range live {
			switch {
			case j.cancel:
				j.rt.Abort(errCancelled)
				sv.releaseLocked()
				sv.finalizeLocked(j, JobCancelled, nil)
			case sv.tenantKilled[j.tenant]:
				j.rt.Abort(errFaultBudget)
				sv.releaseLocked()
				sv.finalizeLocked(j, JobEvicted, errFaultBudget)
			default:
				stepping = append(stepping, j)
			}
		}
		sv.mu.Unlock()
		live = stepping
		if len(live) == 0 {
			continue
		}

		// One supervision round: all sessions step concurrently.
		sv.dobs.SetShardSessions(shard, len(live))
		t0 := time.Now()
		infos := make([]tuner.StepInfo, len(live))
		var wg sync.WaitGroup
		for i, j := range live {
			wg.Add(1)
			go func(i int, j *job) {
				defer wg.Done()
				infos[i] = j.rt.Step(ctx)
			}(i, j)
		}
		wg.Wait()
		sv.dobs.RoundObserved(shard, time.Since(t0).Seconds())

		// Settle.
		next := live[:0]
		sv.mu.Lock()
		for i, j := range live {
			j.syncFromRuntimeLocked()
			info := infos[i]
			if info.Transient {
				sv.tenantFaults[j.tenant]++
				sv.dobs.TenantFaults(j.tenant, 1)
				if sv.limits.TenantFaultBudget > 0 && sv.tenantFaults[j.tenant] >= sv.limits.TenantFaultBudget && !sv.tenantKilled[j.tenant] {
					sv.tenantKilled[j.tenant] = true
					sv.logf("service: tenant %s exhausted its fault budget (%d transient epochs); evicting its jobs", j.tenant, sv.tenantFaults[j.tenant])
				}
			}
			if !info.Done {
				next = append(next, j)
				continue
			}
			sv.releaseLocked()
			switch {
			case errors.Is(info.Err, context.Canceled) || errors.Is(info.Err, context.DeadlineExceeded):
				// Daemon shutdown mid-epoch: the session preserved its
				// transfer and the journal entry stays, so the next
				// incarnation re-adopts the job from its last
				// checkpoint.
				j.state = JobInterrupted
				j.err = nil
				sv.tenantAdmitted[j.tenant]--
			case j.cancel:
				sv.finalizeLocked(j, JobCancelled, nil)
			case info.Err != nil:
				sv.finalizeLocked(j, JobFailed, info.Err)
			default:
				sv.finalizeLocked(j, JobDone, nil)
			}
		}
		sv.updateGaugesLocked()
		sv.mu.Unlock()
		live = next
		sv.dobs.SetShardSessions(shard, len(live))
	}
}

// releaseLocked returns one shard slot and wakes every shard that
// still has queued work; the caller holds Supervisor.mu. The active
// cap is fleet-wide, so the freed slot may unblock admission on a
// *different* shard — without the wake, a shard whose queue filled
// while the fleet was at capacity would park in its idle select and
// never learn that capacity returned (its own wake token is consumed
// long before the backlog drains).
func (sv *Supervisor) releaseLocked() {
	sv.active--
	for k, q := range sv.queues {
		if len(q) > 0 {
			select {
			case sv.wake[k] <- struct{}{}:
			default:
			}
		}
	}
}

// abandon marks sessions interrupted at shutdown without
// touching their journal entries: the whole point of the journal is
// that these jobs survive to the next incarnation.
func (sv *Supervisor) abandon(live []*job) {
	sv.mu.Lock()
	defer sv.mu.Unlock()
	for _, j := range live {
		j.syncFromRuntimeLocked()
		j.state = JobInterrupted
		sv.active--
		sv.tenantAdmitted[j.tenant]--
	}
	sv.updateGaugesLocked()
}

// syncFromRuntimeLocked copies runtime progress into the job's
// snapshot fields. Called from the owning shard goroutine (runtime
// accessors are not concurrency-safe) with Supervisor.mu held (the
// snapshot fields are read by the API).
func (j *job) syncFromRuntimeLocked() {
	if j.rt == nil {
		return
	}
	j.epochs = j.rt.Epochs()
	j.bytes = j.rt.Bytes()
	j.x = append(j.x[:0], j.rt.LastX()...)
	j.tput = j.rt.LastThroughput()
	j.transients = j.rt.Transients()
}
