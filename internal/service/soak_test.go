package service

import (
	"context"
	"encoding/json"
	"fmt"
	"math"
	"os"
	"strconv"
	"testing"
	"time"
)

// soakSessions returns the soak scale: DSTUNED_SOAK_SESSIONS when set
// (CI's bounded soak runs 2000, the scale proof 10000), a fast default
// otherwise.
func soakSessions(def int) int {
	if s := os.Getenv("DSTUNED_SOAK_SESSIONS"); s != "" {
		if n, err := strconv.Atoi(s); err == nil && n > 0 {
			return n
		}
	}
	return def
}

// waitSoak is waitFor with a coarse poll: at soak scale one snapshot
// of every job is O(n) under the supervisor's mutex, and the default
// 1ms poll would spend the whole machine contending with the shard
// loops it is waiting on.
func waitSoak(t *testing.T, timeout time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(100 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// TestCrashRestartSoak is the tentpole's proof: submit a fleet of
// jobs, cut the daemon down mid-flight (context cancellation is the
// in-process stand-in for SIGKILL — cmd/dstuned's TestDaemonSIGKILL
// covers the real signal), restart on the same state directory, and
// require that every unfinished job is re-adopted and that every job
// completes with exact byte accounting. Scale with
// DSTUNED_SOAK_SESSIONS.
func TestCrashRestartSoak(t *testing.T) {
	n := soakSessions(128)
	dir := t.TempDir()
	factory := memFactory(500*time.Microsecond, nil)

	volume := func(i int) float64 { return 2e8 + float64(i%7)*5e7 }
	spec := func(i int) JobSpec {
		return JobSpec{
			ID:     fmt.Sprintf("soak-%05d", i),
			Tenant: fmt.Sprintf("tenant-%d", i%5),
			Bytes:  volume(i),
			Epoch:  1,
			MaxNC:  32,
			Seed:   uint64(i + 1),
		}
	}

	// Incarnation one: submit everything, let it run briefly, then die.
	limits := Limits{MaxQueued: n, TenantMaxActive: n}
	sv1, err := New(Config{Dir: dir, Shards: 8, Limits: limits, NewTransfer: factory})
	if err != nil {
		t.Fatal(err)
	}
	// Submit everything before starting the shards, so the kill below
	// lands genuinely mid-flight rather than racing a mostly-drained
	// queue (per-submission journal fsyncs dominate at scale).
	for i := 0; i < n; i++ {
		if _, err := sv1.Submit(spec(i)); err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
	}
	ctx1, cancel1 := context.WithCancel(context.Background())
	sv1.Start(ctx1)
	waitSoak(t, 60*time.Second, "some epochs to settle before the crash", func() bool {
		settled := 0
		for _, st := range sv1.Jobs() {
			if st.Epochs > 0 {
				settled++
			}
		}
		return settled >= n/8
	})
	cancel1()
	sv1.Wait()

	// Tally incarnation one's terminal jobs: everything else is owed.
	finished := map[string]bool{}
	for _, st := range sv1.Jobs() {
		switch st.State {
		case JobDone:
			finished[st.ID] = true
		case JobFailed, JobCancelled, JobEvicted:
			t.Fatalf("job %s ended %s before the crash: %s", st.ID, st.State, st.Error)
		}
	}

	// Incarnation two: every owed job must be re-adopted — no more, no
	// fewer — and run to completion.
	sv2, err := New(Config{Dir: dir, Shards: 8, Limits: limits, NewTransfer: factory})
	if err != nil {
		t.Fatal(err)
	}
	adopted := map[string]bool{}
	for _, rec := range sv2.Adopted() {
		adopted[rec.ID] = true
	}
	for i := 0; i < n; i++ {
		id := spec(i).ID
		if finished[id] && adopted[id] {
			t.Errorf("finished job %s was re-adopted", id)
		}
		if !finished[id] && !adopted[id] {
			t.Errorf("unfinished job %s was not re-adopted", id)
		}
	}
	if t.Failed() {
		t.FailNow()
	}
	t.Logf("crash point: %d/%d jobs finished, %d re-adopted", len(finished), n, len(adopted))

	if path := os.Getenv("DSTUNED_ADOPTION_REPORT"); path != "" {
		f, err := os.Create(path)
		if err != nil {
			t.Fatal(err)
		}
		enc := json.NewEncoder(f)
		for _, rec := range sv2.Adopted() {
			if err := enc.Encode(rec); err != nil {
				t.Fatal(err)
			}
		}
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}
	}

	ctx2, cancel2 := context.WithCancel(context.Background())
	defer cancel2()
	sv2.Start(ctx2)
	// The re-run has nearly n jobs to finish; give it wall time
	// proportional to the fleet (the default and CI scales finish far
	// inside the floor).
	deadline := 300 * time.Second
	if scaled := time.Duration(n) * 100 * time.Millisecond; scaled > deadline {
		deadline = scaled
	}
	waitSoak(t, deadline, "all jobs to finish after the restart", func() bool {
		for _, st := range sv2.Jobs() {
			if st.State != JobDone {
				return false
			}
		}
		return true
	})

	// Exact byte accounting, cumulative across the crash: checkpointed
	// epochs plus resumed epochs must equal the spec volume.
	for i := 0; i < n; i++ {
		id := spec(i).ID
		if finished[id] {
			continue
		}
		st, err := sv2.Job(id)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(st.Bytes-volume(i)) > 1 {
			t.Errorf("job %s moved %.0f bytes across restart, want %.0f", id, st.Bytes, volume(i))
		}
	}

	// All debts paid: the journal is empty again.
	entries, skipped, err := sv2.journal.Entries()
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 0 || skipped != 0 {
		t.Fatalf("journal not empty after full completion: %d entries, %d skipped", len(entries), skipped)
	}
}
