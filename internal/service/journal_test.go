package service

import (
	"os"
	"path/filepath"
	"testing"
)

// TestJournalRoundTrip pins the append/scan/remove cycle and the
// adoption ordering: entries come back sorted by admission sequence.
func TestJournalRoundTrip(t *testing.T) {
	j, err := OpenJournal(filepath.Join(t.TempDir(), "journal"))
	if err != nil {
		t.Fatal(err)
	}
	specs := []JournalEntry{
		{ID: "b", Tenant: "t", Spec: JobSpec{ID: "b", Bytes: 2}, Seq: 2},
		{ID: "a", Tenant: "t", Spec: JobSpec{ID: "a", Bytes: 1}, Seq: 1},
		{ID: "c", Tenant: "t", Spec: JobSpec{ID: "c", Bytes: 3}, Seq: 3},
	}
	for _, e := range specs {
		if err := j.Append(e); err != nil {
			t.Fatal(err)
		}
	}
	entries, skipped, err := j.Entries()
	if err != nil {
		t.Fatal(err)
	}
	if skipped != 0 || len(entries) != 3 {
		t.Fatalf("scan = %d entries, %d skipped", len(entries), skipped)
	}
	for i, want := range []string{"a", "b", "c"} {
		if entries[i].ID != want {
			t.Fatalf("entry %d = %q, want %q (seq order)", i, entries[i].ID, want)
		}
	}

	if err := j.Remove("b"); err != nil {
		t.Fatal(err)
	}
	if err := j.Remove("b"); err != nil {
		t.Fatalf("idempotent remove: %v", err)
	}
	entries, _, err = j.Entries()
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 {
		t.Fatalf("after remove: %d entries, want 2", len(entries))
	}
}

// TestJournalSkipsDamage pins the scan's robustness: corrupt files,
// mismatched IDs, invalid specs, and stray temp files never abort
// adoption — they are counted and left in place while healthy entries
// still load.
func TestJournalSkipsDamage(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "journal")
	j, err := OpenJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Append(JournalEntry{ID: "good", Spec: JobSpec{ID: "good", Bytes: 1}, Seq: 1}); err != nil {
		t.Fatal(err)
	}
	damage := map[string]string{
		"torn.json":    `{"id": "torn", "spe`,
		"renamed.json": `{"id": "other-name", "spec": {"id": "other-name", "bytes": 1}}`,
		"badspec.json": `{"id": "badspec", "spec": {"id": "badspec", "tuner": "nope", "bytes": 1}}`,
		".tmp-half":    `{"id": "half"`,
		"notes.txt":    `not a journal entry`,
	}
	for name, body := range damage {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	entries, skipped, err := j.Entries()
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].ID != "good" {
		t.Fatalf("entries = %+v, want just \"good\"", entries)
	}
	// Only the three damaged .json files count; dotfiles and foreign
	// extensions are silently out of scope.
	if skipped != 3 {
		t.Fatalf("skipped = %d, want 3", skipped)
	}
	// Damaged files stay on disk for inspection.
	if _, err := os.Stat(filepath.Join(dir, "torn.json")); err != nil {
		t.Fatalf("damaged entry was deleted: %v", err)
	}
}
