package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"dstune/internal/tuner"
	"dstune/internal/xfer"
)

// memTransfer is a synthetic in-memory transfer with a virtual clock:
// each Run moves rate(params)*epoch bytes instantly (plus an optional
// real-time delay so tests can keep jobs in flight). It implements
// Snapshotter, so the service checkpoints and resumes it like any
// production transfer: a resumed incarnation is rebuilt over the
// checkpoint's remaining bytes, exactly as the simulation fabric path
// does.
type memTransfer struct {
	mu        sync.Mutex
	total     float64 // -1 = unbounded
	acked     float64
	clock     float64
	rate      func(p xfer.Params) float64
	delay     time.Duration
	failEvery int // every Nth run fails transiently
	failAfter int // run number at which a fatal error fires
	runs      int
	stopped   bool
}

func (m *memTransfer) Run(ctx context.Context, p xfer.Params, epoch float64) (xfer.Report, error) {
	if m.delay > 0 {
		select {
		case <-ctx.Done():
		case <-time.After(m.delay):
		}
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.stopped {
		return xfer.Report{}, xfer.ErrStopped
	}
	start := m.clock
	if err := ctx.Err(); err != nil {
		return xfer.Report{Params: p, Start: start, End: start}, err
	}
	m.runs++
	if m.failAfter > 0 && m.runs >= m.failAfter {
		return xfer.Report{}, errors.New("injected fatal failure")
	}
	if m.failEvery > 0 && m.runs%m.failEvery == 0 {
		m.clock += epoch
		return xfer.Report{Params: p, Start: start, End: m.clock}, xfer.Transient(errors.New("injected transient failure"))
	}
	tput := m.rate(p)
	moved := tput * epoch
	dur := epoch
	if m.total >= 0 {
		if rem := m.total - m.acked; moved >= rem {
			moved = rem
			dur = rem / tput
			if dur <= 0 {
				dur = 1e-9
			}
		}
	}
	m.acked += moved
	m.clock += dur
	return xfer.Report{
		Params:     p,
		Start:      start,
		End:        m.clock,
		Bytes:      moved,
		Throughput: moved / dur,
		BestCase:   moved / dur,
		Done:       m.total >= 0 && m.acked >= m.total-1e-9,
	}, nil
}

func (m *memTransfer) Remaining() float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.total < 0 {
		return math.Inf(1)
	}
	return m.total - m.acked
}

func (m *memTransfer) Now() float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.clock
}

func (m *memTransfer) Stop() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.stopped = true
}

// Snapshot implements xfer.Snapshotter.
func (m *memTransfer) Snapshot() xfer.TransferState {
	m.mu.Lock()
	defer m.mu.Unlock()
	rem := -1.0
	if m.total >= 0 {
		rem = m.total - m.acked
	}
	return xfer.TransferState{Total: m.total, Acked: m.acked, Remaining: rem, Clock: m.clock}
}

// climb is the default synthetic objective: throughput grows with the
// stream count up to a knee, so the tuners have a surface to search.
func climb(p xfer.Params) float64 {
	s := p.Streams()
	if s > 64 {
		s = 64
	}
	return 1e6 * float64(s)
}

// memFactory builds a TransferFactory over memTransfer. mutate, when
// non-nil, adjusts each fresh transfer (fault injection) before use.
func memFactory(delay time.Duration, mutate func(id string, m *memTransfer)) TransferFactory {
	return func(id string, spec JobSpec, resume *tuner.Checkpoint) (xfer.Transferer, error) {
		total := -1.0
		if spec.Bytes > 0 {
			total = spec.Bytes
		}
		if resume != nil {
			// Like the simulation path: a rebuilt transfer covers
			// exactly the checkpoint's remaining volume.
			total = resume.Transfer.Remaining
		}
		m := &memTransfer{total: total, rate: climb, delay: delay}
		if mutate != nil {
			mutate(id, m)
		}
		return m, nil
	}
}

// waitFor polls cond every millisecond until it holds or the deadline
// passes.
func waitFor(t *testing.T, timeout time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// startSupervisor builds and starts a Supervisor over a temp state dir.
func startSupervisor(t *testing.T, cfg Config) (*Supervisor, context.CancelFunc) {
	t.Helper()
	if cfg.Dir == "" {
		cfg.Dir = t.TempDir()
	}
	sv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	sv.Start(ctx)
	t.Cleanup(func() {
		cancel()
		sv.Wait()
	})
	return sv, cancel
}

// postJob submits spec over the HTTP API and returns the response.
func postJob(t *testing.T, srv *httptest.Server, spec any) (*http.Response, JobStatus) {
	t.Helper()
	body, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(srv.URL+"/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st JobStatus
	if resp.StatusCode == http.StatusCreated {
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatal(err)
		}
	}
	return resp, st
}

// getJob fetches one job's status over the HTTP API.
func getJob(t *testing.T, srv *httptest.Server, id string) (int, JobStatus) {
	t.Helper()
	resp, err := http.Get(srv.URL + "/jobs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st JobStatus
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatal(err)
		}
	}
	return resp.StatusCode, st
}

// TestJobLifecycleHTTP drives one job through the full control API:
// submit, watch it run, and see it finish with exact byte accounting.
func TestJobLifecycleHTTP(t *testing.T) {
	sv, _ := startSupervisor(t, Config{Shards: 2, NewTransfer: memFactory(0, nil)})
	srv := httptest.NewServer(sv.Handler())
	defer srv.Close()

	const volume = 5e8
	resp, st := postJob(t, srv, JobSpec{ID: "alpha", Bytes: volume, Epoch: 1, MaxNC: 32})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("submit: got %d, want 201", resp.StatusCode)
	}
	if st.ID != "alpha" || st.State != JobQueued {
		t.Fatalf("submit status = %+v", st)
	}
	waitFor(t, 10*time.Second, "job alpha to finish", func() bool {
		_, st := getJob(t, srv, "alpha")
		return st.State == JobDone
	})
	_, st = getJob(t, srv, "alpha")
	if st.Epochs == 0 || math.Abs(st.Bytes-volume) > 1 {
		t.Fatalf("final status = %+v, want epochs > 0 and bytes == %g", st, volume)
	}

	// The finished job left no journal entry behind.
	entries, _, err := sv.journal.Entries()
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 0 {
		t.Fatalf("journal still holds %d entries after completion", len(entries))
	}

	// The list endpoint serves it too.
	listResp, err := http.Get(srv.URL + "/jobs")
	if err != nil {
		t.Fatal(err)
	}
	defer listResp.Body.Close()
	var list struct {
		Jobs []JobStatus `json:"jobs"`
	}
	if err := json.NewDecoder(listResp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	if len(list.Jobs) != 1 || list.Jobs[0].ID != "alpha" {
		t.Fatalf("list = %+v", list.Jobs)
	}

	// Unknown jobs are 404s.
	if code, _ := getJob(t, srv, "nope"); code != http.StatusNotFound {
		t.Fatalf("GET unknown job: got %d, want 404", code)
	}
}

// TestCancelKeepsCheckpoint cancels a running job over HTTP and checks
// the graceful contract: terminal "cancelled" state, journal entry
// removed (no re-adoption), checkpoint retained for inspection.
func TestCancelKeepsCheckpoint(t *testing.T) {
	dir := t.TempDir()
	sv, _ := startSupervisor(t, Config{Dir: dir, Shards: 2, NewTransfer: memFactory(2*time.Millisecond, nil)})
	srv := httptest.NewServer(sv.Handler())
	defer srv.Close()

	resp, _ := postJob(t, srv, JobSpec{ID: "longhaul", Budget: 1e9, Epoch: 1, MaxNC: 32})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("submit: got %d, want 201", resp.StatusCode)
	}
	waitFor(t, 10*time.Second, "job to settle an epoch", func() bool {
		_, st := getJob(t, srv, "longhaul")
		return st.Epochs >= 1
	})

	req, err := http.NewRequest(http.MethodDelete, srv.URL+"/jobs/longhaul", nil)
	if err != nil {
		t.Fatal(err)
	}
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusOK {
		t.Fatalf("cancel: got %d, want 200", dresp.StatusCode)
	}
	waitFor(t, 10*time.Second, "job to reach cancelled", func() bool {
		_, st := getJob(t, srv, "longhaul")
		return st.State == JobCancelled
	})

	entries, _, err := sv.journal.Entries()
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 0 {
		t.Fatalf("cancelled job still journaled: %d entries", len(entries))
	}
	if _, err := tuner.LoadCheckpoint(sv.checkpointPath("longhaul")); err != nil {
		t.Fatalf("cancelled job's checkpoint unreadable: %v", err)
	}
	// A restart on the same state dir must not resurrect it.
	sv2, err := New(Config{Dir: dir, NewTransfer: memFactory(0, nil)})
	if err != nil {
		t.Fatal(err)
	}
	if got := sv2.Adopted(); len(got) != 0 {
		t.Fatalf("restart re-adopted a cancelled job: %+v", got)
	}
}

// TestAdmissionBackpressure pins the 429 contract: with one active
// slot and a one-deep queue, the third concurrent job bounces with
// Retry-After, and a duplicate ID bounces with 409.
func TestAdmissionBackpressure(t *testing.T) {
	sv, _ := startSupervisor(t, Config{
		Shards:      2,
		Limits:      Limits{MaxActive: 1, MaxQueued: 1, TenantMaxActive: 16, RetryAfter: 2 * time.Second},
		NewTransfer: memFactory(2*time.Millisecond, nil),
	})
	srv := httptest.NewServer(sv.Handler())
	defer srv.Close()

	if resp, _ := postJob(t, srv, JobSpec{ID: "a", Budget: 1e9, Epoch: 1}); resp.StatusCode != http.StatusCreated {
		t.Fatalf("job a: got %d, want 201", resp.StatusCode)
	}
	// Wait until "a" occupies the single active slot, so "b" is
	// definitely queued rather than racing it.
	waitFor(t, 10*time.Second, "job a to start running", func() bool {
		_, st := getJob(t, srv, "a")
		return st.State == JobRunning
	})
	if resp, _ := postJob(t, srv, JobSpec{ID: "b", Budget: 1e9, Epoch: 1}); resp.StatusCode != http.StatusCreated {
		t.Fatalf("job b: got %d, want 201", resp.StatusCode)
	}
	resp, _ := postJob(t, srv, JobSpec{ID: "c", Budget: 1e9, Epoch: 1})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("job c: got %d, want 429", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "2" {
		t.Fatalf("Retry-After = %q, want \"2\"", ra)
	}
	if _, err := sv.Job("c"); !errors.Is(err, ErrNotFound) {
		t.Fatal("rejected job c was admitted anyway")
	}
	// Rejected submissions are never journaled.
	entries, _, err := sv.journal.Entries()
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 {
		t.Fatalf("journal holds %d entries, want 2", len(entries))
	}

	resp, _ = postJob(t, srv, JobSpec{ID: "a", Budget: 1e9, Epoch: 1})
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("duplicate id: got %d, want 409", resp.StatusCode)
	}
}

// TestTenantQuota pins per-tenant admission: a tenant at its cap is
// rejected with "tenant-quota" while other tenants still get in.
func TestTenantQuota(t *testing.T) {
	sv, _ := startSupervisor(t, Config{
		Shards:      2,
		Limits:      Limits{TenantMaxActive: 1},
		NewTransfer: memFactory(2*time.Millisecond, nil),
	})
	if _, err := sv.Submit(JobSpec{ID: "n1", Tenant: "noisy", Budget: 1e9, Epoch: 1}); err != nil {
		t.Fatal(err)
	}
	_, err := sv.Submit(JobSpec{ID: "n2", Tenant: "noisy", Budget: 1e9, Epoch: 1})
	var rej *RejectError
	if !errors.As(err, &rej) || rej.Reason != "tenant-quota" {
		t.Fatalf("second noisy job: err = %v, want tenant-quota rejection", err)
	}
	if _, err := sv.Submit(JobSpec{ID: "q1", Tenant: "quiet", Budget: 1e9, Epoch: 1}); err != nil {
		t.Fatalf("other tenant rejected: %v", err)
	}
}

// TestTenantFaultBudget pins eviction: a tenant whose jobs keep
// failing transiently exhausts its fault budget, its running jobs are
// evicted at the next round boundary, and new submissions bounce —
// while a healthy tenant's job rides along unharmed.
func TestTenantFaultBudget(t *testing.T) {
	factory := memFactory(0, func(id string, m *memTransfer) {
		if strings.HasPrefix(id, "flaky") {
			m.failEvery = 1 // every epoch fails transiently
			m.delay = time.Millisecond
		}
	})
	sv, _ := startSupervisor(t, Config{
		Shards:      2,
		Limits:      Limits{TenantFaultBudget: 3},
		NewTransfer: factory,
	})
	// MaxTransient far above the tenant budget: the per-session
	// tolerance must not end the session before the tenant budget
	// trips.
	if _, err := sv.Submit(JobSpec{ID: "flaky-1", Tenant: "noisy", Budget: 1e9, Epoch: 1, MaxTransient: 1000}); err != nil {
		t.Fatal(err)
	}
	if _, err := sv.Submit(JobSpec{ID: "steady", Tenant: "quiet", Bytes: 3e8, Epoch: 1, MaxNC: 32}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 10*time.Second, "noisy tenant eviction", func() bool {
		st, err := sv.Job("flaky-1")
		return err == nil && st.State == JobEvicted
	})
	_, err := sv.Submit(JobSpec{ID: "flaky-2", Tenant: "noisy", Budget: 1e9, Epoch: 1})
	var rej *RejectError
	if !errors.As(err, &rej) || rej.Reason != "fault-budget" {
		t.Fatalf("post-eviction submit: err = %v, want fault-budget rejection", err)
	}
	waitFor(t, 10*time.Second, "quiet tenant completion", func() bool {
		st, err := sv.Job("steady")
		return err == nil && st.State == JobDone
	})
}

// TestShardFailureIsolation pins the service-level isolation contract:
// a job that dies with a fatal error must not take down other jobs on
// the same shard.
func TestShardFailureIsolation(t *testing.T) {
	factory := memFactory(0, func(id string, m *memTransfer) {
		if id == "doomed" {
			m.failAfter = 2
		}
	})
	// One shard: everything shares a worker loop on purpose.
	sv, _ := startSupervisor(t, Config{Shards: 1, NewTransfer: factory})
	ids := []string{"doomed", "healthy-1", "healthy-2", "healthy-3"}
	for _, id := range ids {
		if _, err := sv.Submit(JobSpec{ID: id, Bytes: 4e8, Epoch: 1, MaxNC: 32}); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, 10*time.Second, "all jobs to reach a terminal state", func() bool {
		for _, id := range ids {
			st, err := sv.Job(id)
			if err != nil || (st.State != JobDone && st.State != JobFailed) {
				return false
			}
		}
		return true
	})
	st, _ := sv.Job("doomed")
	if st.State != JobFailed || st.Error == "" {
		t.Fatalf("doomed job = %+v, want failed with error", st)
	}
	for _, id := range ids[1:] {
		st, _ := sv.Job(id)
		if st.State != JobDone || math.Abs(st.Bytes-4e8) > 1 {
			t.Fatalf("sibling %s = %+v, want done with full bytes", id, st)
		}
	}
}

// TestAutoIDsSurviveRestart pins that auto-assigned job IDs never
// collide across a restart: the admission sequence is journaled and
// restored.
func TestAutoIDsSurviveRestart(t *testing.T) {
	dir := t.TempDir()
	sv, cancel := startSupervisor(t, Config{Dir: dir, Shards: 1, NewTransfer: memFactory(2*time.Millisecond, nil)})
	st1, err := sv.Submit(JobSpec{Budget: 1e9, Epoch: 1})
	if err != nil {
		t.Fatal(err)
	}
	cancel()
	sv.Wait()

	sv2, err := New(Config{Dir: dir, Shards: 1, NewTransfer: memFactory(2*time.Millisecond, nil)})
	if err != nil {
		t.Fatal(err)
	}
	st2, err := sv2.Submit(JobSpec{Budget: 1e9, Epoch: 1})
	if err != nil {
		t.Fatal(err)
	}
	if st1.ID == st2.ID {
		t.Fatalf("auto ID %q reused across restart", st1.ID)
	}
}

// TestMalformedSubmitNeverJournaled pins the hostile-input contract at
// the HTTP layer: bad bodies get 400 and leave no trace in the
// journal.
func TestMalformedSubmitNeverJournaled(t *testing.T) {
	sv, _ := startSupervisor(t, Config{Shards: 1, NewTransfer: memFactory(0, nil)})
	srv := httptest.NewServer(sv.Handler())
	defer srv.Close()

	bad := []string{
		``,
		`{`,
		`[]`,
		`{"id": "x", "bytes": 1e9} trailing`,
		`{"unknown_field": 1, "bytes": 1e9}`,
		`{"id": "../escape", "bytes": 1e9}`,
		`{"id": "x", "bytes": -5}`,
		`{"id": "x"}`, // unbounded without budget
		`{"id": "x", "tuner": "no-such-tuner", "bytes": 1e9}`,
		fmt.Sprintf(`{"id": %q, "bytes": 1e9}`, strings.Repeat("a", 65)),
	}
	for _, body := range bad {
		resp, err := http.Post(srv.URL+"/jobs", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("body %q: got %d, want 400", body, resp.StatusCode)
		}
	}
	entries, skipped, err := sv.journal.Entries()
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 0 || skipped != 0 {
		t.Fatalf("journal not empty after rejected submissions: %d entries, %d skipped", len(entries), skipped)
	}
	if jobs := sv.Jobs(); len(jobs) != 0 {
		t.Fatalf("rejected submissions registered jobs: %+v", jobs)
	}
}

// TestCrossShardSlotRelease pins the wake-on-release contract: the
// active cap is fleet-wide, so a slot freed by one shard must wake
// every other shard with queued work. With a cap of one and jobs
// queued on all shards, the other shards' own wake tokens are spent
// the moment they first park at capacity — before releaseLocked
// re-woke them, their queues stalled forever.
func TestCrossShardSlotRelease(t *testing.T) {
	const shards = 4
	ids := map[int]string{}
	for i := 0; len(ids) < shards; i++ {
		id := fmt.Sprintf("cross-%03d", i)
		if k := tuner.ShardIndex(id, shards); ids[k] == "" {
			ids[k] = id
		}
	}
	sv, _ := startSupervisor(t, Config{
		Shards:      shards,
		Limits:      Limits{MaxActive: 1, MaxQueued: 64, TenantMaxActive: 64},
		NewTransfer: memFactory(100*time.Microsecond, nil),
	})
	for _, id := range ids {
		if _, err := sv.Submit(JobSpec{ID: id, Bytes: 2e8, Epoch: 1, MaxNC: 32}); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, 30*time.Second, "jobs on every shard to finish under a one-slot cap", func() bool {
		for _, st := range sv.Jobs() {
			if st.State != JobDone {
				return false
			}
		}
		return true
	})
}

// TestSimulatedJobEndToEnd exercises the default transfer factory's
// testbed branch — a spec with no Addr builds a private simulation
// fabric — which every other test bypasses with memFactory. The epoch
// must comfortably exceed the source endpoint's 3 s restart dead time
// (the zero-value policy restarts processes every epoch): an epoch
// shorter than that moves zero bytes per epoch, faithfully, forever.
func TestSimulatedJobEndToEnd(t *testing.T) {
	sv, _ := startSupervisor(t, Config{Shards: 2})
	const volume = 3e9
	for _, spec := range []JobSpec{
		{ID: "sim-tacc", Testbed: "tacc", Bytes: volume, Epoch: 30, MaxNC: 32},
		{ID: "sim-uc", Testbed: "uchicago", Bytes: volume, Epoch: 30, MaxNC: 32, Tfr: 2, Cmp: 8},
	} {
		if _, err := sv.Submit(spec); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, 30*time.Second, "simulated jobs to finish", func() bool {
		for _, st := range sv.Jobs() {
			if st.State != JobDone {
				return false
			}
		}
		return true
	})
	for _, id := range []string{"sim-tacc", "sim-uc"} {
		st, err := sv.Job(id)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(st.Bytes-volume) > 1 {
			t.Errorf("job %s moved %.0f bytes, want %.0f", id, st.Bytes, volume)
		}
		if st.Throughput <= 0 {
			t.Errorf("job %s reports throughput %.0f, want > 0", id, st.Throughput)
		}
	}
}
