package service

import (
	"strings"
	"testing"
	"unicode/utf8"
)

// FuzzDecodeJobSpec hammers the control API's parser with hostile
// input. The contract: DecodeJobSpec never panics, and anything it
// rejects carries an error while anything it accepts is a fully
// validated, runnable spec — there is no partially-usable middle
// ground a caller could journal by mistake.
func FuzzDecodeJobSpec(f *testing.F) {
	seeds := []string{
		``,
		`{}`,
		`null`,
		`[]`,
		`"job"`,
		`{"id": "alpha", "bytes": 1e9}`,
		`{"id": "alpha", "budget": 60}`,
		`{"id": "../../etc/passwd", "bytes": 1}`,
		"{\"id\": \"a\x00b\", \"bytes\": 1}",
		`{"tuner": "warm:cs-tuner", "bytes": 1e9, "tenant": "t1"}`,
		`{"tuner": "rl-q", "bytes": 1e9, "tenant": "t1"}`,
		`{"tuner": "rl-bandit", "budget": 60, "two": true}`,
		`{"bytes": 1e308, "epoch": 1e308, "budget": 1e308}`,
		`{"bytes": "NaN"}`,
		`{"np": -1, "bytes": 1}`,
		`{"max_nc": 99999999, "bytes": 1}`,
		`{"dial_fail_prob": 0.5, "bytes": 1}`,
		`{"addr": "127.0.0.1:0", "dial_fail_prob": 0.5, "bytes": 1}`,
		`{"addr": "127.0.0.1:0", "dataset": "10000x1MiB", "two": true}`,
		`{"addr": "127.0.0.1:0", "dataset": "lognormal:2000:8MiB:1.5", "pp": 4}`,
		`{"dataset": "manysmall:20000", "budget": 60}`,
		`{"dataset": "0x1MiB", "budget": 60}`,
		`{"dataset": "99999999999x1TiB"}`,
		`{"dataset": "lognormal:10:1MiB:-3"}`,
		`{"dataset": "10x1MiB", "bytes": 1}`,
		`{"pp": 4, "bytes": 1}`,
		`{"pp": -1, "dataset": "10x1MiB"}`,
		`{"unknown": true, "bytes": 1}`,
		`{"bytes": 1}{"bytes": 2}`,
		`{"id": "` + strings.Repeat("x", 100) + `", "bytes": 1}`,
		strings.Repeat(`{"id":`, 1000),
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		spec, err := DecodeJobSpec(data)
		if err != nil {
			return
		}
		// Accepted specs must be self-consistently valid — Validate is
		// the same gate Submit applies before journaling.
		if verr := spec.Validate(); verr != nil {
			t.Fatalf("DecodeJobSpec accepted %q but Validate rejects it: %v", data, verr)
		}
		// And their names must be safe to become filenames.
		for _, name := range []string{spec.ID, spec.Tenant} {
			if strings.ContainsAny(name, "/\x00") || name == "." || name == ".." {
				t.Fatalf("accepted unsafe name %q from %q", name, data)
			}
			if !utf8.ValidString(name) {
				t.Fatalf("accepted non-UTF-8 name %q from %q", name, data)
			}
		}
		// Every accepted spec must be able to terminate: a finite byte
		// volume, a budget, or a dataset (which bounds the transfer).
		if spec.Bytes == 0 && spec.Budget == 0 && spec.Dataset == "" {
			t.Fatalf("accepted non-terminating spec from %q", data)
		}
	})
}
