// Package service is the dstuned service plane: a long-running,
// multi-tenant tuning daemon assembled from the stack's existing
// parts. It supervises tuner sessions across N worker shards
// (tuner.SessionRuntime hashed by job ID), admits work through
// bounded queues and per-tenant quotas, journals every accepted job
// durably before acknowledging it, checkpoints each session through
// tuner.Checkpoint after every epoch, and re-adopts every in-flight
// job mid-trajectory after a crash or restart. The HTTP/JSON control
// API (Supervisor.Handler) exposes POST /jobs, GET /jobs, GET
// /jobs/{id}, and DELETE /jobs/{id} alongside the observation plane's
// /metrics, /status, and /debug endpoints.
package service

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"math"

	"dstune/internal/dataset"
	"dstune/internal/tuner"
)

// JobSpec is a tuning job as submitted to POST /jobs: the transfer to
// tune (a simulated testbed or a gridftpd server address), the
// strategy, and the search-box knobs. The zero value of every optional
// field selects the same default the dstune CLI uses.
type JobSpec struct {
	// ID names the job; empty lets the daemon assign one. IDs are
	// restricted to letters, digits, '.', '_', and '-' (they become
	// journal and checkpoint filenames) and must be unique among live
	// jobs.
	ID string `json:"id,omitempty"`
	// Tenant attributes the job for quotas and fault budgets; empty
	// selects "default". Same character set as ID.
	Tenant string `json:"tenant,omitempty"`
	// Tuner is the strategy name (default "cs-tuner"); any name
	// tuner.NewStrategy accepts, including "warm:<inner>".
	Tuner string `json:"tuner,omitempty"`
	// Testbed selects the simulated testbed ("uchicago" or "tacc")
	// for simulator jobs. Ignored when Addr is set.
	Testbed string `json:"testbed,omitempty"`
	// Addr, when set, makes this a real-socket job against a gridftpd
	// server.
	Addr string `json:"addr,omitempty"`
	// Bytes is the transfer volume; 0 means unbounded, which requires
	// a Budget so the job can end.
	Bytes float64 `json:"bytes,omitempty"`
	// Seed drives the job's randomness (default 1).
	Seed uint64 `json:"seed,omitempty"`
	// Epoch is the control-epoch length in seconds (default 30 — use
	// sub-second epochs for fast socket jobs).
	Epoch float64 `json:"epoch,omitempty"`
	// Budget limits tuning to this many transfer-clock seconds,
	// cumulative across daemon restarts; 0 means until the transfer
	// completes.
	Budget float64 `json:"budget,omitempty"`
	// Two tunes parallelism as well as concurrency.
	Two bool `json:"two,omitempty"`
	// NP is the fixed parallelism when not tuning it (default 8).
	NP int `json:"np,omitempty"`
	// PP fixes the pipelining depth of a dataset job; 0 tunes it as a
	// third dimension when Two is set (otherwise depth 4). Requires
	// Dataset.
	PP int `json:"pp,omitempty"`
	// Dataset, when set, makes the job move a multi-file dataset
	// instead of an anonymous byte volume (see dataset.ParseSpec for
	// the syntax, e.g. "10000x1MiB" or "lognormal:2000:8MiB:1.5").
	// Socket jobs use the framed per-file data plane; simulated jobs
	// use the disk-to-disk model. The dataset bounds the transfer, so
	// Bytes must stay zero.
	Dataset string `json:"dataset,omitempty"`
	// MaxNC and MaxNP bound the search box (defaults 128 and 16).
	MaxNC int `json:"max_nc,omitempty"`
	MaxNP int `json:"max_np,omitempty"`
	// Tolerance is the significance threshold in percent (default 5).
	Tolerance float64 `json:"tolerance,omitempty"`
	// MaxTransient is the consecutive transient-failure tolerance
	// (default 3).
	MaxTransient int `json:"max_transient,omitempty"`
	// Tfr and Cmp are the external load on a simulated job's source.
	Tfr int `json:"tfr,omitempty"`
	Cmp int `json:"cmp,omitempty"`
	// DialFailProb injects seeded dial failures into a socket job's
	// connection setup (chaos testing; 0 disables).
	DialFailProb float64 `json:"dial_fail_prob,omitempty"`
}

// maxSpecBytes bounds one encoded JobSpec; the HTTP handler also
// enforces it on request bodies.
const maxSpecBytes = 1 << 20

// DecodeJobSpec parses one JSON-encoded JobSpec strictly: unknown
// fields, trailing data, oversized documents, and type mismatches are
// all errors, and the returned spec is validated. Hostile input yields
// an error — never a panic and never a partially usable spec.
func DecodeJobSpec(data []byte) (JobSpec, error) {
	var spec JobSpec
	if len(data) > maxSpecBytes {
		return JobSpec{}, fmt.Errorf("service: job spec exceeds %d bytes", maxSpecBytes)
	}
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		return JobSpec{}, fmt.Errorf("service: job spec: %w", err)
	}
	if dec.More() {
		return JobSpec{}, errors.New("service: job spec: trailing data after JSON document")
	}
	if err := spec.Validate(); err != nil {
		return JobSpec{}, err
	}
	return spec, nil
}

// Validate reports whether the spec is runnable: names well-formed,
// strategy and testbed known, numbers finite and in range, and the job
// guaranteed to terminate (finite bytes or a budget).
func (s JobSpec) Validate() error {
	if err := validName("id", s.ID); err != nil {
		return err
	}
	if err := validName("tenant", s.Tenant); err != nil {
		return err
	}
	if s.Tuner != "" && !tuner.KnownStrategy(s.Tuner) {
		return fmt.Errorf("service: unknown tuner %q", s.Tuner)
	}
	if s.Addr == "" {
		switch s.Testbed {
		case "", "uchicago", "tacc":
		default:
			return fmt.Errorf("service: unknown testbed %q (want uchicago or tacc)", s.Testbed)
		}
	}
	for _, f := range []struct {
		name string
		v    float64
	}{
		{"bytes", s.Bytes}, {"epoch", s.Epoch}, {"budget", s.Budget},
		{"tolerance", s.Tolerance}, {"dial_fail_prob", s.DialFailProb},
	} {
		if math.IsNaN(f.v) || math.IsInf(f.v, 0) || f.v < 0 {
			return fmt.Errorf("service: %s %v is not a finite non-negative number", f.name, f.v)
		}
	}
	if s.DialFailProb >= 1 {
		return fmt.Errorf("service: dial_fail_prob %v must be below 1", s.DialFailProb)
	}
	if s.DialFailProb > 0 && s.Addr == "" {
		return errors.New("service: dial_fail_prob applies only to socket jobs (set addr)")
	}
	for _, f := range []struct {
		name    string
		v, ceil int
	}{
		{"np", s.NP, 4096}, {"pp", s.PP, 4096}, {"max_nc", s.MaxNC, 4096}, {"max_np", s.MaxNP, 4096},
		{"max_transient", s.MaxTransient, 1 << 20}, {"tfr", s.Tfr, 1 << 20}, {"cmp", s.Cmp, 1 << 20},
	} {
		if f.v < 0 || f.v > f.ceil {
			return fmt.Errorf("service: %s %d outside [0, %d]", f.name, f.v, f.ceil)
		}
	}
	if s.Dataset != "" {
		if _, err := dataset.ParseSpec(s.Dataset, 1); err != nil {
			return fmt.Errorf("service: %w", err)
		}
		if s.Bytes != 0 {
			return errors.New("service: dataset jobs derive their volume from the dataset; leave bytes zero")
		}
	} else if s.PP != 0 {
		return errors.New("service: pp applies only to dataset jobs (set dataset)")
	}
	if s.Bytes == 0 && s.Budget == 0 && s.Dataset == "" {
		return errors.New("service: unbounded job (bytes 0) needs a budget to terminate")
	}
	return nil
}

// withDefaults returns s with zero fields replaced by the documented
// defaults.
func (s JobSpec) withDefaults() JobSpec {
	if s.Tenant == "" {
		s.Tenant = "default"
	}
	if s.Tuner == "" {
		s.Tuner = "cs-tuner"
	}
	if s.Testbed == "" {
		s.Testbed = "uchicago"
	}
	if s.Seed == 0 {
		s.Seed = 1
	}
	if s.Epoch == 0 {
		s.Epoch = 30
	}
	if s.NP == 0 {
		s.NP = 8
	}
	if s.MaxNC == 0 {
		s.MaxNC = 128
	}
	if s.MaxNP == 0 {
		s.MaxNP = 16
	}
	return s
}

// validName admits the characters that are safe in a journal or
// checkpoint filename: letters, digits, '.', '_', '-'. Empty is
// allowed (it selects a default); "." and ".." are not.
func validName(field, v string) error {
	if v == "" {
		return nil
	}
	if len(v) > 64 {
		return fmt.Errorf("service: %s %q longer than 64 characters", field, v)
	}
	if v == "." || v == ".." {
		return fmt.Errorf("service: %s %q is not a valid name", field, v)
	}
	for i := 0; i < len(v); i++ {
		c := v[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '.', c == '_', c == '-':
		default:
			return fmt.Errorf("service: %s %q contains %q; use letters, digits, '.', '_', '-'", field, v, c)
		}
	}
	return nil
}
