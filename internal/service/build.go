package service

import (
	"os"
	"strings"

	"dstune/internal/dataset"
	"dstune/internal/directsearch"
	"dstune/internal/experiment"
	"dstune/internal/faultnet"
	"dstune/internal/gridftp"
	"dstune/internal/history"
	"dstune/internal/load"
	"dstune/internal/tuner"
	"dstune/internal/xfer"
)

// maxPP bounds the pipelining-depth search box for dataset jobs,
// mirroring the CLI's disk mode.
const maxPP = 32

// buildRuntime turns one admitted job into a stepping session: resolve
// the checkpoint (re-adoption resumes mid-trajectory), build the
// strategy and transfer, and wrap them in a tuner.SessionRuntime with
// PreserveOnCancel set — a daemon shutdown must leave the session
// resumable, not stopped.
func (sv *Supervisor) buildRuntime(j *job) (*tuner.SessionRuntime, error) {
	spec := j.spec
	ckPath := sv.checkpointPath(j.id)
	var resume *tuner.Checkpoint
	if _, err := os.Stat(ckPath); err == nil {
		ck, err := tuner.LoadCheckpoint(ckPath)
		if err != nil {
			// An unreadable checkpoint loses the trajectory, not the
			// job: the journal entry still owes a completion, so cold-
			// start rather than fail.
			sv.logf("service: job %s: checkpoint unreadable, cold-starting: %v", j.id, err)
		} else {
			resume = ck
		}
	}

	cfg := tuner.Config{
		Epoch:     spec.Epoch,
		Tolerance: spec.Tolerance,
		Budget:    spec.Budget,
		Seed:      spec.Seed,
		Obs:       sv.obs.Session(j.id),
	}
	var m tuner.ParamMap
	switch {
	case spec.Dataset != "" && spec.Two && spec.PP == 0:
		// Dataset job tuning all three dimensions: [nc, np, pp].
		cfg.Box = directsearch.MustBox([]int{1, 1, 1}, []int{spec.MaxNC, spec.MaxNP, maxPP})
		cfg.Start = []int{2, 8, 4}
		m = tuner.MapNCNPPP()
	case spec.Two:
		cfg.Box = directsearch.MustBox([]int{1, 1}, []int{spec.MaxNC, spec.MaxNP})
		cfg.Start = []int{2, 8}
		m = tuner.MapNCNP()
	default:
		cfg.Box = directsearch.MustBox([]int{1}, []int{spec.MaxNC})
		cfg.Start = []int{2}
		m = tuner.MapNC(spec.NP)
	}
	if spec.Dataset != "" && (!spec.Two || spec.PP > 0) {
		// Fewer than three tuned dimensions: run the dataset at a
		// static depth (the spec's pp, or the disk default 4).
		pp := spec.PP
		if pp == 0 {
			pp = 4
		}
		m = tuner.MapFixedPP(m, pp)
	}
	cfg.Map = m

	key := historyKey(spec, j.id)
	strat, err := sv.buildStrategy(spec, cfg, key, resume)
	if err != nil {
		return nil, err
	}
	factory := sv.cfg.NewTransfer
	if factory == nil {
		factory = sv.defaultTransfer
	}
	transfer, err := factory(j.id, spec, resume)
	if err != nil {
		return nil, err
	}

	budget := spec.Budget
	if budget > 0 && resume != nil && spec.Addr == "" {
		// A rebuilt simulated transfer restarts its clock at zero, so
		// carry only the unspent budget forward. Socket clients carry
		// the cumulative clock themselves (ClockOffset), so their
		// budget stays as specified.
		budget -= resume.Transfer.Clock
		if budget <= 0 {
			budget = 1e-9 // exhausted: the next settle ends the session
		}
	}
	fcfg := tuner.FleetConfig{
		Epoch:                spec.Epoch,
		Budget:               budget,
		MaxTransientFailures: spec.MaxTransient,
		Obs:                  sv.obs,
		History:              sv.hist,
		PreserveOnCancel:     true,
	}
	sess := tuner.FleetSession{
		ID:         j.id,
		Name:       j.id,
		Strategy:   strat,
		Transfers:  []xfer.Transferer{transfer},
		Maps:       []tuner.ParamMap{m},
		Seed:       spec.Seed,
		Checkpoint: tuner.NewFileCheckpoint(ckPath),
		Resume:     resume,
	}
	if sv.hist != nil {
		sess.HistoryKey = key
	}
	return tuner.NewSessionRuntime(fcfg, sess)
}

// buildStrategy constructs the job's strategy, mirroring the dstune
// CLI's fleet wiring: explicit "warm:" prefixes and "two-phase" consult
// the history store, and any other tuner is store-wrapped when the
// daemon has one. A resumed job instead rebuilds the strategy the
// checkpoint names (a store-wrapped run checkpoints as "warm:<inner>")
// and never re-consults the store — the checkpointed state is
// authoritative.
func (sv *Supervisor) buildStrategy(spec JobSpec, cfg tuner.Config, key history.Key, resume *tuner.Checkpoint) (tuner.Strategy, error) {
	if resume != nil && len(resume.Trace) > 0 {
		return tuner.NewStrategy(resume.Tuner, cfg)
	}
	switch inner, warm := strings.CutPrefix(spec.Tuner, "warm:"); {
	case warm:
		return tuner.NewWarmStart(inner, cfg, sv.hist, key)
	case spec.Tuner == "two-phase":
		return tuner.NewTwoPhase(cfg, sv.hist, key), nil
	case sv.hist != nil:
		return tuner.NewWarmStart(spec.Tuner, cfg, sv.hist, key)
	default:
		return tuner.NewStrategy(spec.Tuner, cfg)
	}
}

// defaultTransfer is the spec-driven TransferFactory: a gridftp client
// for socket jobs (resuming token, acked bytes, and clock from the
// checkpoint), a private simulation fabric otherwise (resuming by
// transferring the checkpoint's remaining bytes). Each simulated job
// gets its own fabric so one tenant's transfer never stalls another's
// conservative-time barrier across shards.
func (sv *Supervisor) defaultTransfer(id string, spec JobSpec, resume *tuner.Checkpoint) (xfer.Transferer, error) {
	if spec.Addr != "" {
		ccfg := gridftp.ClientConfig{
			Addr: spec.Addr,
			Seed: spec.Seed,
			Obs:  sv.obs.Session(id),
		}
		ccfg.Bytes = xfer.Unbounded
		if spec.Bytes > 0 {
			ccfg.Bytes = spec.Bytes
		}
		if spec.Dataset != "" {
			ds, err := dataset.ParseSpec(spec.Dataset, spec.Seed)
			if err != nil {
				return nil, err
			}
			ccfg.Dataset = ds
			ccfg.Bytes = 0 // derived from the dataset
		}
		if resume != nil {
			ccfg.Bytes = resume.Transfer.Total
			if resume.Transfer.Total < 0 {
				ccfg.Bytes = xfer.Unbounded
			}
			ccfg.Token = resume.Transfer.Token
			ccfg.AckedBytes = resume.Transfer.Acked
			ccfg.ClockOffset = resume.Transfer.Clock
		}
		if spec.DialFailProb > 0 {
			inj := faultnet.New(faultnet.Config{
				Seed:         spec.Seed,
				DialFailProb: spec.DialFailProb,
				Obs:          sv.obs,
			})
			ccfg.Dialer = inj.Dial
		}
		return gridftp.NewClient(ccfg)
	}

	var tb experiment.Testbed
	switch spec.Testbed {
	case "tacc":
		tb = experiment.ANLtoTACC()
	default:
		tb = experiment.ANLtoUChicago()
	}
	fabric, _, err := tb.NewFabric(spec.Seed)
	if err != nil {
		return nil, err
	}
	if spec.Tfr != 0 || spec.Cmp != 0 {
		fabric.SetLoad(load.Constant(load.Load{Tfr: spec.Tfr, Cmp: spec.Cmp}), nil)
	}
	size := xfer.Unbounded
	if spec.Bytes > 0 {
		size = spec.Bytes
	}
	if resume != nil {
		// The simulated transfer died with the old process; a fresh one
		// covering exactly the checkpoint's remaining bytes keeps the
		// job's byte accounting exact: checkpointed acked + new total =
		// the spec's volume.
		size = resume.Transfer.Remaining
		if resume.Transfer.Remaining < 0 {
			size = xfer.Unbounded
		}
	}
	tcfg := xfer.TransferConfig{Name: id, Bytes: size}
	if spec.Dataset != "" {
		// Simulated dataset jobs use the disk-to-disk model under the
		// shared workload constants. A resumed simulated dataset
		// restarts the dataset (file-level progress lives only in the
		// dead process); socket jobs resume at file/offset granularity.
		ds, err := dataset.ParseSpec(spec.Dataset, spec.Seed)
		if err != nil {
			return nil, err
		}
		tcfg.Files = ds
		tcfg.DiskRate = dataset.DefaultDiskRate
		tcfg.FileOverhead = dataset.DefaultFileOverhead
	}
	return fabric.NewTransfer(tcfg)
}

// historyKey derives the job's identity in the shared knowledge plane,
// mirroring the CLI's fleet keying: the transfer target joined with the
// job ID, classed by volume and configured load.
func historyKey(spec JobSpec, id string) history.Key {
	target := spec.Testbed
	volume := 0.0
	if spec.Addr != "" {
		target = spec.Addr
		volume = spec.Bytes
	}
	return history.Key{
		Endpoint:  target + "/" + id,
		SizeClass: history.SizeClass(volume),
		LoadClass: history.LoadClass(spec.Tfr + spec.Cmp),
	}
}
