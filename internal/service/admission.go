package service

import (
	"fmt"
	"time"
)

// Limits is the daemon's admission-control policy: global and
// per-tenant caps on concurrent work plus per-tenant transient-fault
// budgets. The zero value of each field selects a permissive default.
type Limits struct {
	// MaxActive caps the sessions running across all shards at once;
	// admitted jobs beyond it wait in the queue (default 1024).
	MaxActive int
	// MaxQueued caps the jobs waiting for a shard slot; submissions
	// beyond it are rejected with 429 + Retry-After (default 4096).
	MaxQueued int
	// TenantMaxActive caps one tenant's admitted jobs — queued plus
	// running (default: MaxActive, i.e. no per-tenant cap beyond the
	// global one).
	TenantMaxActive int
	// TenantFaultBudget caps one tenant's cumulative transient-failure
	// epochs across all its jobs. When exhausted, the tenant's running
	// jobs are evicted and new submissions rejected until the daemon
	// restarts. 0 disables the budget.
	TenantFaultBudget int
	// RetryAfter is the backpressure hint returned with 429 responses
	// (default 1s).
	RetryAfter time.Duration
}

// withDefaults returns l with zero fields replaced by defaults.
func (l Limits) withDefaults() Limits {
	if l.MaxActive == 0 {
		l.MaxActive = 1024
	}
	if l.MaxQueued == 0 {
		l.MaxQueued = 4096
	}
	if l.TenantMaxActive == 0 {
		l.TenantMaxActive = l.MaxActive
	}
	if l.RetryAfter == 0 {
		l.RetryAfter = time.Second
	}
	return l
}

// RejectError is an admission refusal: the reason labels the rejection
// metric, and RetryAfter is the client backoff hint (zero when
// retrying cannot help, e.g. a duplicate ID). The HTTP layer maps it
// to 429 (or 409 for duplicates) with a Retry-After header.
type RejectError struct {
	// Reason is the stable rejection label: "queue-full",
	// "tenant-quota", "fault-budget", "duplicate", or "draining".
	Reason string
	// RetryAfter is the suggested client backoff; zero means the
	// condition will not clear by waiting.
	RetryAfter time.Duration
}

// Error implements error.
func (e *RejectError) Error() string {
	return fmt.Sprintf("service: job rejected: %s", e.Reason)
}
