package service

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"dstune/internal/fsx"
)

// JournalEntry is one accepted job's durable intent record: everything
// a restarted daemon needs to reconstruct and re-adopt the job. The
// entry is written atomically before the submission is acknowledged
// and removed (with a directory sync) only when the job reaches a
// terminal state — so the journal directory is, at every instant, the
// exact set of jobs the daemon still owes work.
type JournalEntry struct {
	// ID is the job's identifier (also the entry's filename stem).
	ID string `json:"id"`
	// Tenant attributes the job for quotas.
	Tenant string `json:"tenant"`
	// Spec is the job as submitted, with defaults applied.
	Spec JobSpec `json:"spec"`
	// Seq is the admission sequence number, restored on adoption so
	// auto-assigned IDs never collide across restarts.
	Seq int `json:"seq"`
}

// Journal is the daemon's crash-safe job intent log: one JSON file per
// accepted job in a dedicated directory, written with the stack's
// atomic write-rename-syncdir discipline (internal/fsx). Methods are
// not concurrency-safe; the Supervisor serializes access under its
// lock.
type Journal struct {
	dir string
}

// OpenJournal creates (if needed) and opens the journal directory.
func OpenJournal(dir string) (*Journal, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("service: journal: %w", err)
	}
	if err := fsx.SyncDir(filepath.Dir(dir)); err != nil {
		return nil, fmt.Errorf("service: journal: %w", err)
	}
	return &Journal{dir: dir}, nil
}

// path returns the entry file for id.
func (j *Journal) path(id string) string {
	return filepath.Join(j.dir, id+".json")
}

// Append durably records e. It must complete before the submission is
// acknowledged: a job the client believes accepted is always either
// journaled or rejected, never in between.
func (j *Journal) Append(e JournalEntry) error {
	data, err := json.MarshalIndent(e, "", "  ")
	if err != nil {
		return fmt.Errorf("service: journal %s: %w", e.ID, err)
	}
	data = append(data, '\n')
	if err := fsx.WriteAtomic(j.path(e.ID), data, 0o644); err != nil {
		return fmt.Errorf("service: journal %s: %w", e.ID, err)
	}
	return nil
}

// Remove durably forgets id: the entry file is unlinked and the
// directory synced, so a crash after Remove never resurrects the job.
// Removing an absent entry is not an error (a cancelled queued job may
// race its own completion).
func (j *Journal) Remove(id string) error {
	if err := os.Remove(j.path(id)); err != nil {
		if os.IsNotExist(err) {
			return nil
		}
		return fmt.Errorf("service: journal remove %s: %w", id, err)
	}
	return fsx.SyncDir(j.dir)
}

// Entries scans the journal and returns every parseable entry sorted
// by (Seq, ID) — the daemon's adoption set after a restart. Entries
// that fail to parse are counted in skipped and left on disk for
// inspection, not deleted: a half-written temp file (dot-prefixed)
// never matches the scan in the first place because Append is atomic.
func (j *Journal) Entries() (entries []JournalEntry, skipped int, err error) {
	names, err := os.ReadDir(j.dir)
	if err != nil {
		return nil, 0, fmt.Errorf("service: journal scan: %w", err)
	}
	for _, de := range names {
		name := de.Name()
		if de.IsDir() || strings.HasPrefix(name, ".") || !strings.HasSuffix(name, ".json") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(j.dir, name))
		if err != nil {
			skipped++
			continue
		}
		var e JournalEntry
		if json.Unmarshal(data, &e) != nil || e.ID != strings.TrimSuffix(name, ".json") || e.Spec.Validate() != nil {
			skipped++
			continue
		}
		entries = append(entries, e)
	}
	sort.Slice(entries, func(a, b int) bool {
		if entries[a].Seq != entries[b].Seq {
			return entries[a].Seq < entries[b].Seq
		}
		return entries[a].ID < entries[b].ID
	})
	return entries, skipped, nil
}
