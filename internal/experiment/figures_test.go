package experiment

import (
	"reflect"
	"strings"
	"testing"

	"dstune/internal/load"
)

// quickRC is a shortened run configuration for tests: a 900 s budget
// with the paper's 30 s epochs gives the tuners 30 control epochs.
// (Shorter epochs would inflate the restart overhead far beyond the
// paper's regime — the dead time is what it is.)
func quickRC() RunConfig {
	return RunConfig{Seed: 7, Duration: 900, Epoch: 30}
}

func TestFig1Shape(t *testing.T) {
	res, err := Fig1(ANLtoUChicago(), Fig1Config{
		Seed:        1,
		Repeats:     2,
		Duration:    240,
		Concurrency: []int{1, 4, 16, 64, 256},
	})
	if err != nil {
		t.Fatal(err)
	}
	noLoad := load.Load{}
	hiLoad := load.Load{Tfr: 16, Cmp: 16}

	// Throughput rises monotonically with streams up to the critical
	// point (paper observation 1).
	free := res.Summary[noLoad]
	if !(free[4].Median > free[1].Median && free[16].Median > free[4].Median) {
		t.Fatalf("no-load throughput not rising: %v / %v / %v",
			free[1].Median, free[4].Median, free[16].Median)
	}
	// ...and declines beyond it.
	if free[256].Median >= free[64].Median {
		t.Fatalf("no decline past critical point: nc=64 %v vs nc=256 %v",
			free[64].Median, free[256].Median)
	}
	// The critical point increases with external load (observation 2).
	if res.Critical[hiLoad] < res.Critical[noLoad] {
		t.Fatalf("critical point fell under load: %d -> %d",
			res.Critical[noLoad], res.Critical[hiLoad])
	}
	// External load decreases the peak throughput (observation 3).
	peakFree := free[res.Critical[noLoad]].Median
	peakLoaded := res.Summary[hiLoad][res.Critical[hiLoad]].Median
	if peakLoaded >= peakFree {
		t.Fatalf("peak did not drop under load: %v -> %v", peakFree, peakLoaded)
	}
	if !strings.Contains(res.Render(), "critical points") {
		t.Fatal("Render missing critical points")
	}
}

// TestSweepsDeterministic pins the worker-pool parallelization of the
// sweep loops: every cell runs on its own seeded fabric, so the
// results must be bit-identical across runs regardless of goroutine
// scheduling.
func TestSweepsDeterministic(t *testing.T) {
	fig := Fig1Config{Seed: 11, Repeats: 2, Duration: 120, Concurrency: []int{1, 8, 64}}
	a, err := Fig1(ANLtoUChicago(), fig)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Fig1(ANLtoUChicago(), fig)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("Fig1 not deterministic under parallel sweep:\n%v\nvs\n%v", a, b)
	}

	rc := RunConfig{Seed: 13, Duration: 300, Epoch: 30}
	r1, err := TuneConcurrency(ANLtoUChicago(), load.Load{}, rc)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := TuneConcurrency(ANLtoUChicago(), load.Load{}, rc)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(r1.Traces, r2.Traces) {
		t.Fatal("runSet traces not deterministic under parallel tuner runs")
	}
}

func TestTuneConcurrencyNoLoad(t *testing.T) {
	res, err := TuneConcurrency(ANLtoUChicago(), load.Load{}, quickRC())
	if err != nil {
		t.Fatal(err)
	}
	def := res.Traces["default"].SteadyThroughput(600)
	for _, name := range []string{"cd-tuner", "cs-tuner", "nm-tuner"} {
		tr := res.Traces[name]
		if tr.SteadyThroughput(600) < def {
			t.Errorf("%s steady %v below default %v", name, tr.SteadyThroughput(600), def)
		}
		if x := tr.FinalX(); x[0] <= 2 {
			t.Errorf("%s did not raise nc above the default 2 (final %v)", name, x)
		}
	}
}

func TestTuneConcurrencyComputeLoad(t *testing.T) {
	res, err := TuneConcurrency(ANLtoUChicago(), load.Load{Cmp: 16}, quickRC())
	if err != nil {
		t.Fatal(err)
	}
	def := res.Traces["default"].SteadyThroughput(600)
	bestOf := 0.0
	for _, name := range []string{"cs-tuner", "nm-tuner"} {
		if v := res.Traces[name].SteadyThroughput(600); v > bestOf {
			bestOf = v
		}
	}
	if bestOf < 3*def {
		t.Fatalf("under cmp=16 the best tuner (%v) is not >=3x default (%v)", bestOf, def)
	}
}

func TestImprovementsFromResults(t *testing.T) {
	res, err := TuneConcurrency(ANLtoUChicago(), load.Load{Cmp: 16}, quickRC())
	if err != nil {
		t.Fatal(err)
	}
	imps := Improvements([]*TuningResult{res})
	if len(imps) != 1 {
		t.Fatalf("got %d improvements", len(imps))
	}
	im := imps[0]
	if im.Factor < 2 {
		t.Fatalf("improvement factor %v under compute load, want >= 2", im.Factor)
	}
	if im.BestName == "" || im.BestName == "default" {
		t.Fatalf("best tuner %q", im.BestName)
	}
	// The adaptive tuners pay restart overhead; default pays almost
	// none.
	if ov := im.OverheadPct["default"]; ov > 5 {
		t.Errorf("default overhead %v%%, want ~0", ov)
	}
	for _, name := range []string{"cs-tuner", "nm-tuner"} {
		if ov := im.OverheadPct[name]; ov <= 1 || ov >= 80 {
			t.Errorf("%s overhead %v%%, want within the paper's 15-50%% ballpark", name, ov)
		}
	}
	if !strings.Contains(RenderImprovements(imps), "factor") {
		t.Fatal("RenderImprovements missing header")
	}
}

func TestTuneBothAdaptsToLoadDrop(t *testing.T) {
	rc := RunConfig{Seed: 3, Duration: 1800, Epoch: 30}
	res, err := TuneBoth(ANLtoTACC(), rc)
	if err != nil {
		t.Fatal(err)
	}
	def := res.Traces["default"]
	for _, name := range []string{"cs-tuner", "nm-tuner"} {
		tr := res.Traces[name]
		// After the load drops at t=1000 the tuners must beat default
		// decisively (the paper reports up to 10x here).
		dAfter := def.SteadyThroughput(1200)
		tAfter := tr.SteadyThroughput(1200)
		if tAfter < 2*dAfter {
			t.Errorf("%s after load drop: %v vs default %v, want >=2x", name, tAfter, dAfter)
		}
	}
	if !strings.Contains(res.Render(), "cs-tuner") {
		t.Fatal("Render missing tuner block")
	}
}

func TestCompareHeuristics(t *testing.T) {
	rc := RunConfig{Seed: 5, Duration: 1800, Epoch: 30}
	res, err := CompareHeuristics(ANLtoTACC(), rc)
	if err != nil {
		t.Fatal(err)
	}
	nm := res.Traces["nm-tuner"].MeanThroughput()
	h1 := res.Traces["heur1"].MeanThroughput()
	if nm < h1 {
		t.Errorf("nm-tuner (%v) below heur1 (%v); the paper finds nm and heur2 clearly ahead", nm, h1)
	}
	// heur2 terminates: its vector must be constant over the last
	// third of the run.
	h2 := res.Traces["heur2"]
	last := h2.Results[len(h2.Results)-1].X
	for _, r := range h2.Results[2*len(h2.Results)/3:] {
		if !equalIntsTest(r.X, last) {
			t.Fatalf("heur2 still moving late in the run: %v vs %v", r.X, last)
		}
	}
}

func equalIntsTest(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestSimultaneous(t *testing.T) {
	rc := RunConfig{Seed: 9, Duration: 1200, Epoch: 30}
	res, err := Simultaneous("nm-tuner", rc)
	if err != nil {
		t.Fatal(err)
	}
	uc, tc := res.UChicago.MeanThroughput(), res.TACC.MeanThroughput()
	if uc <= 0 || tc <= 0 {
		t.Fatalf("transfers made no progress: %v, %v", uc, tc)
	}
	// The shared NIC bounds the aggregate.
	if uc+tc > 5e9 {
		t.Fatalf("aggregate %v exceeds the 5 GB/s NIC", uc+tc)
	}
	// The paper observes the UChicago transfer claiming the larger
	// share of the shared NIC (its path supports 5 GB/s vs 2.5).
	if uc < tc {
		t.Logf("note: TACC (%v) out-earned UChicago (%v) this seed", tc, uc)
	}
	if !strings.Contains(res.Render(), "aggregate") {
		t.Fatal("Render missing aggregate line")
	}
}

func TestUnknownTuner(t *testing.T) {
	if _, err := newTuner("bogus", RunConfig{}.withDefaults().tunerCfg(false)); err == nil {
		t.Fatal("unknown tuner accepted")
	}
	if _, err := Simultaneous("bogus", quickRC()); err == nil {
		t.Fatal("Simultaneous with unknown tuner accepted")
	}
}

func TestTunerNamesBuildable(t *testing.T) {
	cfg := RunConfig{}.withDefaults().tunerCfg(true)
	for _, name := range TunerNames() {
		tn, err := newTuner(name, cfg)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if tn.Name() != name {
			t.Fatalf("name mismatch: %q vs %q", tn.Name(), name)
		}
	}
}

func TestThirdPartyRobustness(t *testing.T) {
	res, err := ThirdParty(ANLtoUChicago(), 64, 180, RunConfig{Seed: 21, Duration: 1440, Epoch: 30})
	if err != nil {
		t.Fatal(err)
	}
	def := res.Traces["default"].MeanThroughput()
	nm := res.Traces["nm-tuner"].MeanThroughput()
	if nm < def {
		t.Fatalf("nm-tuner (%v) below default (%v) under bursty third-party traffic", nm, def)
	}
	if !strings.Contains(res.Scenario, "third-party") {
		t.Fatalf("scenario label %q", res.Scenario)
	}
}

func TestConvergenceTimesDerived(t *testing.T) {
	res, err := TuneConcurrency(ANLtoUChicago(), load.Load{}, quickRC())
	if err != nil {
		t.Fatal(err)
	}
	times := ConvergenceTimes(res, 0.9, 3)
	if len(times) != 4 {
		t.Fatalf("got %d entries", len(times))
	}
	// The static default is at steady state from the start.
	if times["default"] > 60 {
		t.Fatalf("default convergence %v, want immediate", times["default"])
	}
	// The paper: cd-tuner reaches steady state quickly with a good
	// starting point; cs/nm take large early steps and converge later.
	if cd := times["cd-tuner"]; cd < 0 || cd > 600 {
		t.Fatalf("cd-tuner convergence %v out of range", cd)
	}
}

func TestCompareModel(t *testing.T) {
	res, err := CompareModel(ANLtoTACC(), RunConfig{Seed: 23, Duration: 1800, Epoch: 30})
	if err != nil {
		t.Fatal(err)
	}
	def := res.Traces["default"].MeanThroughput()
	mod := res.Traces["model"].MeanThroughput()
	nm := res.Traces["nm-tuner"].MeanThroughput()
	if nm <= 0 || mod <= 0 || def <= 0 {
		t.Fatal("no progress")
	}
	// The paper's core argument: under changing external conditions
	// the model-based empirical approach degrades (its probing and
	// refitting overhead eats its gains) while direct search stays
	// clearly ahead.
	if nm < 2*mod {
		t.Fatalf("nm-tuner (%v) not well above the model baseline (%v) under varying load", nm, mod)
	}
	// The model baseline must still be in default's ballpark — it is
	// not catastrophically wrong, just not adaptive enough.
	if mod < 0.5*def {
		t.Fatalf("model baseline (%v) collapsed below half of default (%v)", mod, def)
	}
	t.Logf("default %.0f, model %.0f, nm %.0f MB/s", def/1e6, mod/1e6, nm/1e6)
}

func TestTACCNoLoadTrend(t *testing.T) {
	// §IV-A final paragraph: on ANL->TACC without load, adaptive
	// gains are modest (far below the 4x+ of the compute-load
	// scenarios) and the best-case rate exceeds the observed rate by
	// the restart overhead.
	res, err := TuneConcurrency(ANLtoTACC(), load.Load{}, RunConfig{Seed: 30, Duration: 1800})
	if err != nil {
		t.Fatal(err)
	}
	def := res.Traces["default"].MeanThroughput()
	nm := res.Traces["nm-tuner"]
	if gain := nm.MeanThroughput() / def; gain < 1.0 || gain > 2.0 {
		t.Fatalf("no-load TACC gain %v, want modest (1-2x)", gain)
	}
	if nm.MeanBestCase() <= nm.MeanThroughput() {
		t.Fatal("best-case should exceed observed for a restarting tuner")
	}
}
