package experiment

import (
	"context"
	"testing"

	"dstune/internal/load"
	"dstune/internal/xfer"
)

// steady measures the steady-state observed throughput of a static
// transfer with params p on testbed tb under load l: it warms up for
// warm seconds and then averages over dur seconds.
func steady(t *testing.T, tb Testbed, l load.Load, p xfer.Params, warm, dur float64, seed uint64) float64 {
	t.Helper()
	f, _, err := tb.NewFabric(seed)
	if err != nil {
		t.Fatal(err)
	}
	f.SetLoad(load.Constant(l), nil)
	tr, err := f.NewTransfer(xfer.TransferConfig{Name: "probe", Bytes: xfer.Unbounded, Policy: xfer.RestartOnChange})
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Stop()
	if _, err := tr.Run(context.Background(), p, warm); err != nil {
		t.Fatal(err)
	}
	r, err := tr.Run(context.Background(), p, dur)
	if err != nil {
		t.Fatal(err)
	}
	return r.Throughput
}

// TestProbeSweep prints the concurrency sweep for calibration; run
// with -v. It only asserts that every run makes progress.
func TestProbeSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration probe")
	}
	tb := ANLtoUChicago()
	for _, l := range []load.Load{{}, {Tfr: 16, Cmp: 16}} {
		for _, nc := range []int{1, 2, 4, 8, 16, 32, 64, 128, 256, 512} {
			got := steady(t, tb, l, xfer.Params{NC: nc, NP: 1}, 60, 120, 42)
			t.Logf("%s %v nc=%-3d -> %7.1f MB/s", tb.Name, l, nc, got/1e6)
			if got <= 0 {
				t.Fatalf("no progress at nc=%d load=%v", nc, l)
			}
		}
	}
}
