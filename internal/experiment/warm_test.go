package experiment

import (
	"testing"

	"dstune/internal/load"
	"dstune/internal/tuner"
	"dstune/internal/xfer"
)

// TestWarmStartBeatsCold is the knowledge-plane acceptance criterion:
// across the {0, 16, 32, 64} external-load sweep, a warm-started
// cs-tuner and cd-tuner run must reach the critical point in strictly
// fewer epochs than the cold run AND move at least as many bytes over
// the same budget.
func TestWarmStartBeatsCold(t *testing.T) {
	res, err := WarmStartStudy(ANLtoUChicago(), []string{"cs-tuner", "cd-tuner"},
		WarmStartLoads(), RunConfig{Seed: 11, Duration: 900, Epoch: 30}, 0.9, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cells) != 8 {
		t.Fatalf("study holds %d cells, want 2 tuners x 4 loads", len(res.Cells))
	}
	for _, c := range res.Cells {
		if c.Target <= 0 {
			t.Errorf("%s under %s: no critical-point target", c.Tuner, c.Load)
			continue
		}
		if c.WarmEpochs >= c.ColdEpochs {
			t.Errorf("%s under %s: warm start took %d epochs to critical, cold %d — want strictly fewer",
				c.Tuner, c.Load, c.WarmEpochs, c.ColdEpochs)
		}
		if c.WarmBytes < c.ColdBytes {
			t.Errorf("%s under %s: warm integral %.3g B below cold %.3g B",
				c.Tuner, c.Load, c.WarmBytes, c.ColdBytes)
		}
	}
	if t.Failed() {
		t.Log("\n" + res.Report())
	}
}

// TestWarmStartStudyDefaults: empty tuner and load slices select the
// documented defaults, and the report renders a row per cell.
func TestWarmStartStudyDefaults(t *testing.T) {
	res, err := WarmStartStudy(ANLtoUChicago(), []string{"cs-tuner"},
		[]load.Load{{}}, RunConfig{Seed: 5, Duration: 300, Epoch: 30}, 0.9, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cells) != 1 {
		t.Fatalf("cells = %d", len(res.Cells))
	}
	c := res.Cells[0]
	if len(c.Pred) != 1 || c.Pred[0] < 1 {
		t.Fatalf("prediction %v not a concurrency vector", c.Pred)
	}
	if c.Cold == nil || c.Warm == nil {
		t.Fatal("traces not retained")
	}
	if got := res.Report(); got == "" {
		t.Fatal("empty report")
	}
}

// TestEpochsToCritical pins the detector on a hand-built trace: ramp
// epochs below the steady mean, then a plateau.
func TestEpochsToCritical(t *testing.T) {
	tr := &tuner.Trace{}
	tputs := []float64{10, 20, 100, 100, 100, 100}
	for i, tp := range tputs {
		tr.Results = append(tr.Results, tuner.EpochResult{
			Epoch:  i,
			X:      []int{1},
			Report: xfer.Report{Throughput: tp},
		})
	}
	if got := EpochsToCritical(tr, 0.9, 2); got != 2 {
		t.Fatalf("critical epoch = %d, want 2", got)
	}
	if got := EpochsToCritical(tr, 0.9, 10); got != -1 {
		t.Fatalf("short trace: got %d, want -1", got)
	}
	flat := &tuner.Trace{Results: tr.Results[2:]}
	if got := EpochsToCritical(flat, 0.9, 2); got != 0 {
		t.Fatalf("flat trace critical epoch = %d, want 0", got)
	}
}
