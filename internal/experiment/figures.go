package experiment

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"dstune/internal/directsearch"
	"dstune/internal/load"
	"dstune/internal/stats"
	"dstune/internal/tuner"
	"dstune/internal/xfer"
)

// forEachCell runs fn(i) for every i in [0, n) on a bounded worker
// pool (GOMAXPROCS workers) and returns the lowest-index error. Each
// cell must be self-contained — its own seeded fabric and RNGs — and
// must write its result into an index-addressed slot, so the output
// is deterministic and independent of completion order.
func forEachCell(n int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	errs := make([]error, n)
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				errs[i] = fn(i)
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// RunConfig carries the knobs shared by the figure harnesses. The zero
// value reproduces the paper's settings.
type RunConfig struct {
	// Seed drives all randomness; runs with equal seeds are
	// identical.
	Seed uint64
	// Duration is the transfer budget in seconds; zero selects the
	// paper's 1800 s.
	Duration float64
	// Epoch is the control epoch e; zero selects the paper's 30 s.
	Epoch float64
	// NP is the fixed parallelism for concurrency-only tuning; zero
	// selects the paper's 8.
	NP int
	// MaxNC and MaxNP bound the search box; zeros select 128 and 16.
	MaxNC, MaxNP int
	// StartNC and StartNP are the starting vector; zeros select the
	// Globus defaults 2 and 8.
	StartNC, StartNP int
}

// withDefaults returns rc with zero fields replaced by defaults.
func (rc RunConfig) withDefaults() RunConfig {
	if rc.Duration == 0 {
		rc.Duration = 1800
	}
	if rc.Epoch == 0 {
		rc.Epoch = 30
	}
	if rc.NP == 0 {
		rc.NP = 8
	}
	if rc.MaxNC == 0 {
		rc.MaxNC = 128
	}
	if rc.MaxNP == 0 {
		rc.MaxNP = 16
	}
	if rc.StartNC == 0 {
		rc.StartNC = 2
	}
	if rc.StartNP == 0 {
		rc.StartNP = 8
	}
	return rc
}

// tunerCfg builds the tuner configuration for rc. twoParam selects
// [nc, np] tuning (§IV-B) over nc-only tuning (§IV-A).
func (rc RunConfig) tunerCfg(twoParam bool) tuner.Config {
	cfg := tuner.Config{
		Epoch:  rc.Epoch,
		Budget: rc.Duration,
		Seed:   rc.Seed,
	}
	if twoParam {
		cfg.Box = directsearch.MustBox([]int{1, 1}, []int{rc.MaxNC, rc.MaxNP})
		cfg.Start = []int{rc.StartNC, rc.StartNP}
		cfg.Map = tuner.MapNCNP()
	} else {
		cfg.Box = directsearch.MustBox([]int{1}, []int{rc.MaxNC})
		cfg.Start = []int{rc.StartNC}
		cfg.Map = tuner.MapNC(rc.NP)
	}
	return cfg
}

// newTuner builds the named tuner ("default", "cd-tuner", "cs-tuner",
// "nm-tuner", "heur1", "heur2", "model", "two-phase", "rl-bandit",
// "rl-q").
func newTuner(name string, cfg tuner.Config) (tuner.Tuner, error) {
	switch name {
	case "default":
		return tuner.NewStatic(cfg), nil
	case "cd-tuner":
		return tuner.NewCD(cfg), nil
	case "cs-tuner":
		return tuner.NewCS(cfg), nil
	case "nm-tuner":
		return tuner.NewNM(cfg), nil
	case "heur1":
		return tuner.NewHeur1(cfg), nil
	case "heur2":
		return tuner.NewHeur2(cfg), nil
	case "model":
		return tuner.NewModel(cfg), nil
	case "rl-bandit", "rl-q", "two-phase":
		return tuner.NewNamed(name, cfg)
	}
	return nil, fmt.Errorf("experiment: unknown tuner %q", name)
}

// TunerNames lists the tuners in the order the paper presents them,
// plus the related-work empirical baseline "model".
func TunerNames() []string {
	return []string{"default", "cd-tuner", "cs-tuner", "nm-tuner", "heur1", "heur2", "model"}
}

// runTuned executes one tuned transfer on a fresh fabric of tb under
// schedule sched. The "default" baseline keeps its processes alive
// (RestartOnChange), as the real Globus service does; every adaptive
// tuner restarts per epoch, as the paper's wrappers do.
func runTuned(tb Testbed, name string, sched load.Schedule, rc RunConfig, twoParam bool) (*tuner.Trace, error) {
	rc = rc.withDefaults()
	f, _, err := tb.NewFabric(rc.Seed)
	if err != nil {
		return nil, err
	}
	f.SetLoad(sched, nil)
	policy := xfer.RestartEveryEpoch
	if name == "default" {
		policy = xfer.RestartOnChange
	}
	tr, err := f.NewTransfer(xfer.TransferConfig{
		Name:   name,
		Bytes:  xfer.Unbounded,
		Policy: policy,
	})
	if err != nil {
		return nil, err
	}
	tn, err := newTuner(name, rc.tunerCfg(twoParam))
	if err != nil {
		return nil, err
	}
	return tn.Tune(context.Background(), tr)
}

// Fig1Config parameterizes the Figure 1 concurrency sweep.
type Fig1Config struct {
	// Seed drives the repeats (repeat i uses Seed+i).
	Seed uint64
	// Repeats per point; zero selects the paper's 5.
	Repeats int
	// Duration per run in seconds; zero selects the paper's 600 (10
	// minutes).
	Duration float64
	// Concurrency values to sweep; nil selects powers of two from 1
	// to 512.
	Concurrency []int
	// Loads to sweep; nil selects the paper's two scenarios: no load
	// and ext.tfr=ext.cmp=16.
	Loads []load.Load
}

// withDefaults returns cfg with zero fields replaced by defaults.
func (c Fig1Config) withDefaults() Fig1Config {
	if c.Repeats == 0 {
		c.Repeats = 5
	}
	if c.Duration == 0 {
		c.Duration = 600
	}
	if c.Concurrency == nil {
		c.Concurrency = []int{1, 2, 4, 8, 16, 32, 64, 128, 256, 512}
	}
	if c.Loads == nil {
		c.Loads = []load.Load{{}, {Tfr: 16, Cmp: 16}}
	}
	return c
}

// Fig1Result holds the Figure 1 boxplot statistics: observed
// throughput per concurrency value under each load scenario
// (parallelism fixed at 1, as in §III-A).
type Fig1Result struct {
	Testbed     string
	Concurrency []int
	Loads       []load.Load
	// Summary maps load -> nc -> five-number summary of the repeats'
	// whole-run throughputs, in bytes per second.
	Summary map[load.Load]map[int]stats.Summary
	// Critical maps load -> the concurrency with the highest median
	// throughput (the paper's "critical point").
	Critical map[load.Load]int
}

// Fig1 reproduces Figure 1: a static transfer per (load, nc, repeat)
// with parallelism 1, reporting boxplot statistics of the observed
// throughput.
func Fig1(tb Testbed, cfg Fig1Config) (*Fig1Result, error) {
	cfg = cfg.withDefaults()
	res := &Fig1Result{
		Testbed:     tb.Name,
		Concurrency: cfg.Concurrency,
		Loads:       cfg.Loads,
		Summary:     make(map[load.Load]map[int]stats.Summary),
		Critical:    make(map[load.Load]int),
	}
	// Flatten the (load, nc, repeat) sweep into independent cells —
	// each runs on its own fabric seeded by its repeat index alone, so
	// the per-cell throughput is identical whether cells run
	// sequentially or on the worker pool.
	type cell struct {
		l       load.Load
		nc, rep int
	}
	cells := make([]cell, 0, len(cfg.Loads)*len(cfg.Concurrency)*cfg.Repeats)
	for _, l := range cfg.Loads {
		for _, nc := range cfg.Concurrency {
			for rep := 0; rep < cfg.Repeats; rep++ {
				cells = append(cells, cell{l: l, nc: nc, rep: rep})
			}
		}
	}
	tputs := make([]float64, len(cells))
	err := forEachCell(len(cells), func(i int) error {
		c := cells[i]
		f, _, err := tb.NewFabric(cfg.Seed + uint64(c.rep))
		if err != nil {
			return err
		}
		f.SetLoad(load.Constant(c.l), nil)
		tr, err := f.NewTransfer(xfer.TransferConfig{
			Name:   fmt.Sprintf("fig1-nc%d-r%d", c.nc, c.rep),
			Bytes:  xfer.Unbounded,
			Policy: xfer.RestartOnChange,
		})
		if err != nil {
			return err
		}
		rep, err := tr.Run(context.Background(), xfer.Params{NC: c.nc, NP: 1}, cfg.Duration)
		tr.Stop()
		if err != nil {
			return err
		}
		tputs[i] = rep.Throughput
		return nil
	})
	if err != nil {
		return nil, err
	}
	// Summarize sequentially; cells were appended repeats-innermost, so
	// each (load, nc) owns a contiguous run of cfg.Repeats slots.
	next := 0
	for _, l := range cfg.Loads {
		perNC := make(map[int]stats.Summary, len(cfg.Concurrency))
		medians := make(map[int]float64, len(cfg.Concurrency))
		for _, nc := range cfg.Concurrency {
			perNC[nc] = stats.Summarize(tputs[next : next+cfg.Repeats])
			medians[nc] = perNC[nc].Median
			next += cfg.Repeats
		}
		res.Summary[l] = perNC
		res.Critical[l], _ = stats.ArgmaxKey(medians)
	}
	return res, nil
}

// TuningResult holds the traces of several tuners run under identical
// conditions — the payload of Figures 5-10.
type TuningResult struct {
	Testbed  string
	Scenario string
	// Order lists tuner names in presentation order.
	Order []string
	// Traces maps tuner name -> its per-epoch trace.
	Traces map[string]*tuner.Trace
}

// runSet runs the named tuners under the same schedule, each on a
// fresh, identically seeded fabric (as in the paper, where each tuner
// gets its own transfer window under reproduced load).
func runSet(tb Testbed, names []string, scenario string, sched load.Schedule, rc RunConfig, twoParam bool) (*TuningResult, error) {
	res := &TuningResult{
		Testbed:  tb.Name,
		Scenario: scenario,
		Order:    names,
		Traces:   make(map[string]*tuner.Trace, len(names)),
	}
	// Each tuner runs on its own identically seeded fabric, so the
	// runs are independent and can share the worker pool; traces land
	// in index-addressed slots to keep the result order-independent.
	traces := make([]*tuner.Trace, len(names))
	err := forEachCell(len(names), func(i int) error {
		tr, err := runTuned(tb, names[i], sched, rc, twoParam)
		if err != nil {
			return fmt.Errorf("%s under %s: %w", names[i], scenario, err)
		}
		traces[i] = tr
		return nil
	})
	if err != nil {
		return nil, err
	}
	for i, name := range names {
		res.Traces[name] = traces[i]
	}
	return res, nil
}

// Fig5Loads are the five external-load scenarios of Figures 5-7, in
// subfigure order (a)-(e).
func Fig5Loads() []load.Load {
	return []load.Load{
		{},        // (a) no load
		{Cmp: 16}, // (b) external compute 16
		{Cmp: 64}, // (c) external compute 64
		{Tfr: 16}, // (d) external traffic 16
		{Tfr: 64}, // (e) external traffic 64
	}
}

// TuneConcurrency reproduces one subfigure of Figures 5-7: default,
// cd-tuner, cs-tuner, and nm-tuner tuning concurrency (np fixed)
// under constant load l. The returned traces carry the observed
// throughput (Fig 5), the adopted nc values (Fig 6), and the
// best-case throughput (Fig 7).
func TuneConcurrency(tb Testbed, l load.Load, rc RunConfig) (*TuningResult, error) {
	names := []string{"default", "cd-tuner", "cs-tuner", "nm-tuner"}
	return runSet(tb, names, l.String(), load.Constant(l), rc, false)
}

// VaryingLoad is the §IV-B / §IV-C schedule: ext.tfr=64, ext.cmp=16
// until t=1000 s, then ext.tfr=16, ext.cmp=16.
func VaryingLoad() load.Schedule {
	return load.Step(1000, load.Load{Tfr: 64, Cmp: 16}, load.Load{Tfr: 16, Cmp: 16})
}

// TuneBoth reproduces Figure 8 (ANL->TACC) and Figure 9
// (ANL->UChicago): cs-tuner and nm-tuner tuning concurrency and
// parallelism simultaneously under the varying load, against default.
// cd-tuner is omitted as in the paper (it is ineffective under
// changing load).
func TuneBoth(tb Testbed, rc RunConfig) (*TuningResult, error) {
	names := []string{"default", "cs-tuner", "nm-tuner"}
	return runSet(tb, names, "varying load", VaryingLoad(), rc, true)
}

// CompareHeuristics reproduces Figure 10: nm-tuner against heur1
// (Balman) and heur2 (Yildirim) on ANL->TACC under the varying load,
// tuning both parameters.
func CompareHeuristics(tb Testbed, rc RunConfig) (*TuningResult, error) {
	names := []string{"nm-tuner", "heur1", "heur2"}
	return runSet(tb, names, "varying load", VaryingLoad(), rc, true)
}

// SimultaneousResult holds Figure 11's outcome: two transfers from the
// same source, each independently tuned, treating each other as
// external load.
type SimultaneousResult struct {
	Tuner    string
	UChicago *tuner.Trace
	TACC     *tuner.Trace
}

// Simultaneous reproduces Figure 11: one transfer to UChicago and one
// to TACC share the ANL source NIC while the named tuner ("nm-tuner"
// or "cs-tuner") tunes nc and np for each independently. The two
// tuners run concurrently in lockstep virtual time.
func Simultaneous(name string, rc RunConfig) (*SimultaneousResult, error) {
	rc = rc.withDefaults()
	f, p1, p2, err := NewDualFabric(rc.Seed)
	if err != nil {
		return nil, err
	}
	t1, err := f.NewTransfer(xfer.TransferConfig{Name: "to-uchicago", Bytes: xfer.Unbounded, Path: p1})
	if err != nil {
		return nil, err
	}
	t2, err := f.NewTransfer(xfer.TransferConfig{Name: "to-tacc", Bytes: xfer.Unbounded, Path: p2})
	if err != nil {
		return nil, err
	}

	// One Fleet, two sessions: each transfer gets its own strategy
	// instance (offset seeds), and the scheduler runs their control
	// epochs in the same lockstep rounds the two goroutine-driven
	// tuners used to produce.
	session := func(t xfer.Transferer, seedOff uint64) (tuner.FleetSession, error) {
		cfg := rc.tunerCfg(true)
		cfg.Seed += seedOff
		s, err := tuner.NewStrategy(name, cfg)
		if err != nil {
			return tuner.FleetSession{}, err
		}
		return tuner.FleetSession{
			Name:      name,
			Strategy:  s,
			Transfers: []xfer.Transferer{t},
			Maps:      []tuner.ParamMap{cfg.Map},
		}, nil
	}
	s1, err := session(t1, 0)
	if err != nil {
		return nil, err
	}
	s2, err := session(t2, 1)
	if err != nil {
		return nil, err
	}
	cfg := rc.tunerCfg(true)
	fleet := tuner.NewFleet(tuner.FleetConfig{Epoch: cfg.Epoch, Budget: cfg.Budget}, s1, s2)
	results, err := fleet.Run(context.Background())
	if err != nil {
		return nil, err
	}
	for _, r := range results {
		if r.Err != nil {
			return nil, r.Err
		}
	}
	return &SimultaneousResult{Tuner: name, UChicago: results[0].Traces[0], TACC: results[1].Traces[0]}, nil
}

// Improvement summarizes one scenario's default-vs-tuner outcome for
// the §IV-A claims table.
type Improvement struct {
	Scenario string
	// Default is the baseline's whole-run mean throughput.
	Default float64
	// Best is the best adaptive tuner's whole-run mean throughput,
	// and BestName which tuner achieved it.
	Best     float64
	BestName string
	// Factor is Best / Default.
	Factor float64
	// OverheadPct maps tuner name -> percent of throughput lost to
	// restarts: 100 * (1 - observed/best-case).
	OverheadPct map[string]float64
}

// Improvements derives the §IV-A claims (1.4x-10x gains, 15-50%
// overhead) from a set of tuning results.
func Improvements(results []*TuningResult) []Improvement {
	out := make([]Improvement, 0, len(results))
	for _, res := range results {
		imp := Improvement{
			Scenario:    res.Scenario,
			OverheadPct: make(map[string]float64, len(res.Traces)),
		}
		if d, ok := res.Traces["default"]; ok {
			imp.Default = d.MeanThroughput()
		}
		for name, tr := range res.Traces {
			obs, best := tr.MeanThroughput(), tr.MeanBestCase()
			if best > 0 {
				imp.OverheadPct[name] = 100 * (1 - obs/best)
			}
			if name != "default" && obs > imp.Best {
				imp.Best, imp.BestName = obs, name
			}
		}
		imp.Factor = stats.Improvement(imp.Best, imp.Default)
		out = append(out, imp)
	}
	return out
}
