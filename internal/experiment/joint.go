package experiment

import (
	"context"
	"fmt"

	"dstune/internal/directsearch"
	"dstune/internal/tuner"
	"dstune/internal/xfer"
)

// JointComparison holds the endpoint-level tuning study: the same
// two-transfer scenario as Figure 11 run twice — once with independent
// per-transfer tuners (as in the paper) and once with one joint
// direct search over both transfers' parameters (the paper's
// future-work item (4)).
type JointComparison struct {
	// Independent is the Figure 11 result: two tuners, each blind to
	// the other.
	Independent *SimultaneousResult
	// JointUChicago and JointTACC are the traces of the two transfers
	// under the single joint tuner.
	JointUChicago, JointTACC *tuner.Trace
}

// IndependentAggregate returns the independent runs' combined mean
// throughput.
func (j *JointComparison) IndependentAggregate() float64 {
	return j.Independent.UChicago.MeanThroughput() + j.Independent.TACC.MeanThroughput()
}

// JointAggregate returns the joint run's combined mean throughput.
func (j *JointComparison) JointAggregate() float64 {
	return j.JointUChicago.MeanThroughput() + j.JointTACC.MeanThroughput()
}

// JointVsIndependent runs the comparison with nm-tuner as the
// independent tuner and joint-nm as the coordinated one, both tuning
// [nc, np] per transfer on the shared-NIC dual fabric.
func JointVsIndependent(rc RunConfig) (*JointComparison, error) {
	rc = rc.withDefaults()
	ind, err := Simultaneous("nm-tuner", rc)
	if err != nil {
		return nil, err
	}

	f, p1, p2, err := NewDualFabric(rc.Seed)
	if err != nil {
		return nil, err
	}
	t1, err := f.NewTransfer(xfer.TransferConfig{Name: "joint-uchicago", Bytes: xfer.Unbounded, Path: p1})
	if err != nil {
		return nil, err
	}
	t2, err := f.NewTransfer(xfer.TransferConfig{Name: "joint-tacc", Bytes: xfer.Unbounded, Path: p2})
	if err != nil {
		return nil, err
	}
	j := tuner.NewJointNM(tuner.JointConfig{
		Epoch:  rc.Epoch,
		Budget: rc.Duration,
		Seed:   rc.Seed,
		Box: directsearch.MustBox(
			[]int{1, 1, 1, 1},
			[]int{rc.MaxNC, rc.MaxNP, rc.MaxNC, rc.MaxNP}),
		Start: []int{rc.StartNC, rc.StartNP, rc.StartNC, rc.StartNP},
		Dims:  []int{2, 2},
		Maps:  []tuner.ParamMap{tuner.MapNCNP(), tuner.MapNCNP()},
	})
	traces, err := j.Tune(context.Background(), []xfer.Transferer{t1, t2})
	if err != nil {
		return nil, err
	}
	return &JointComparison{
		Independent:   ind,
		JointUChicago: traces[0],
		JointTACC:     traces[1],
	}, nil
}

// Render formats the comparison.
func (j *JointComparison) Render() string {
	out := "Endpoint-level tuning — joint direct search vs independent tuners (future work 4)\n\n"
	out += fmt.Sprintf("independent: UChicago %7.1f MB/s  TACC %7.1f MB/s  aggregate %7.1f MB/s\n",
		j.Independent.UChicago.MeanThroughput()/1e6,
		j.Independent.TACC.MeanThroughput()/1e6,
		j.IndependentAggregate()/1e6)
	out += fmt.Sprintf("joint:       UChicago %7.1f MB/s  TACC %7.1f MB/s  aggregate %7.1f MB/s\n",
		j.JointUChicago.MeanThroughput()/1e6,
		j.JointTACC.MeanThroughput()/1e6,
		j.JointAggregate()/1e6)
	out += fmt.Sprintf("joint final params: uchicago x=%v, tacc x=%v\n",
		j.JointUChicago.FinalX(), j.JointTACC.FinalX())
	return out
}
