package experiment

import (
	"fmt"
	"strings"

	"dstune/internal/load"
	"dstune/internal/tuner"
)

// DynamicLoadStudy judges the learned strategies where they should
// win: dynamic load. Direct search re-discovers the optimum from
// scratch after every ε-monitor retrigger, while a learned policy that
// has seen a load level before switches back to the winning vector on
// the next epoch. The study runs each tuner over step, square, and
// piecewise load schedules on one simulated testbed and scores two
// things per cell: integral throughput (payload actually moved over
// the whole run) and the re-adaptation lag after each load shift.
//
// Lag is measured against a shared yardstick, not against the cell's
// own recovery level — otherwise a tuner that never re-adapts would
// score a perfect lag by "reaching" its own collapsed throughput
// immediately. For each (schedule, shift) the yardstick is the best
// rolling-window throughput any tuner in the study achieved in that
// post-shift segment; a cell's lag is the index of its first epoch
// window at or above Frac of that, and a cell that never gets there is
// charged the full segment length.

// DynamicSchedule pairs a named load schedule with the times its load
// shifts, so the harness knows where re-adaptation segments begin.
type DynamicSchedule struct {
	// Name labels the schedule in reports ("step", "square", ...).
	Name string
	// Sched is the schedule driving the fabric's external load.
	Sched load.Schedule
	// Shifts are the virtual times at which the load changes. A
	// constant schedule has none.
	Shifts []float64
}

// DynamicSchedules returns the study's default schedules over a run of
// the given duration (seconds; zero selects the paper's 1800): a
// one-shot step from heavy to light external load at half-time, a
// square wave alternating the same two loads each quarter, a
// three-shift piecewise schedule mixing transfer and compute load, and
// a constant light-load control with no shifts (the tolerance band the
// acceptance test holds learned tuners to).
func DynamicSchedules(duration float64) []DynamicSchedule {
	if duration <= 0 {
		duration = 1800
	}
	q := duration / 4
	heavy := load.Load{Tfr: 64, Cmp: 16}
	light := load.Load{Tfr: 16, Cmp: 16}
	return []DynamicSchedule{
		{Name: "step", Sched: load.Step(2*q, heavy, light), Shifts: []float64{2 * q}},
		{Name: "square", Sched: load.Square(q, heavy, light), Shifts: []float64{q, 2 * q, 3 * q}},
		{Name: "piecewise", Sched: load.Piecewise(
			load.Segment{Start: 0, Load: light},
			load.Segment{Start: q, Load: heavy},
			load.Segment{Start: 2 * q, Load: load.Load{Cmp: 16}},
			load.Segment{Start: 3 * q, Load: heavy},
		), Shifts: []float64{q, 2 * q, 3 * q}},
		{Name: "constant", Sched: load.Constant(light)},
	}
}

// DynamicLoadTuners lists the tuners the study compares by default:
// the paper's three direct searches against both learned strategies.
func DynamicLoadTuners() []string {
	return []string{"cd-tuner", "cs-tuner", "nm-tuner", "rl-bandit", "rl-q"}
}

// DynamicLoadCell is one (tuner, schedule) run's scores.
type DynamicLoadCell struct {
	// Tuner and Schedule name the cell.
	Tuner, Schedule string
	// Bytes is the integral payload moved over the run.
	Bytes float64
	// Mean is the run's mean throughput in bytes/second.
	Mean float64
	// Lags holds the re-adaptation lag in epochs after each shift.
	Lags []int
	// MeanLag averages Lags (zero for shift-free schedules).
	MeanLag float64
	// Trace is the full tuning trajectory.
	Trace *tuner.Trace
}

// DynamicLoadResult is the study's outcome: one cell per (tuner,
// schedule) pair, schedule-major in the given orders.
type DynamicLoadResult struct {
	// Testbed names the simulated link.
	Testbed string
	// Window is the rolling-mean width (epochs) for lag detection.
	Window int
	// Frac is the fraction of the shared post-shift yardstick a cell
	// must reach to count as re-adapted.
	Frac float64
	// Cells holds every run's scores.
	Cells []DynamicLoadCell
}

// DynamicLoadConfig parameterizes DynamicLoadStudy beyond the shared
// RunConfig. The zero value selects the defaults.
type DynamicLoadConfig struct {
	// Run carries the shared harness knobs (seed, duration, epoch,
	// box).
	Run RunConfig
	// Tuners defaults to DynamicLoadTuners().
	Tuners []string
	// Schedules defaults to DynamicSchedules(Run.Duration).
	Schedules []DynamicSchedule
	// Window is the rolling-mean width in epochs; zero selects 3.
	Window int
	// Frac is the re-adaptation threshold; zero selects 0.8.
	Frac float64
}

// DynamicLoadStudy runs the dynamic-load comparison on tb: every tuner
// crossed with every schedule, concurrency-only tuning (the paper's
// §IV-A box), each cell on its own identically-seeded fabric.
func DynamicLoadStudy(tb Testbed, cfg DynamicLoadConfig) (*DynamicLoadResult, error) {
	rc := cfg.Run.withDefaults()
	tuners := cfg.Tuners
	if len(tuners) == 0 {
		tuners = DynamicLoadTuners()
	}
	scheds := cfg.Schedules
	if len(scheds) == 0 {
		scheds = DynamicSchedules(rc.Duration)
	}
	window := cfg.Window
	if window <= 0 {
		window = 3
	}
	frac := cfg.Frac
	if frac <= 0 {
		frac = 0.8
	}

	res := &DynamicLoadResult{Testbed: tb.Name, Window: window, Frac: frac,
		Cells: make([]DynamicLoadCell, len(scheds)*len(tuners))}
	err := forEachCell(len(res.Cells), func(i int) error {
		sc := scheds[i/len(tuners)]
		name := tuners[i%len(tuners)]
		tr, err := runTuned(tb, name, sc.Sched, rc, false)
		if err != nil {
			return fmt.Errorf("%s on %s: %w", name, sc.Name, err)
		}
		res.Cells[i] = DynamicLoadCell{
			Tuner:    name,
			Schedule: sc.Name,
			Bytes:    integralBytes(tr),
			Mean:     tr.MeanThroughput(),
			Trace:    tr,
		}
		return nil
	})
	if err != nil {
		return nil, err
	}

	// Second pass: per (schedule, shift), establish the shared
	// yardstick — the best rolling-window mean any tuner reached in
	// the post-shift segment — then charge each cell its lag against
	// it.
	for si, sc := range scheds {
		cells := res.Cells[si*len(tuners) : (si+1)*len(tuners)]
		for shift, ts := range sc.Shifts {
			end := rc.Duration
			if shift+1 < len(sc.Shifts) {
				end = sc.Shifts[shift+1]
			}
			best := 0.0
			for ci := range cells {
				if p := peakWindow(segmentOf(cells[ci].Trace, ts, end), window); p > best {
					best = p
				}
			}
			for ci := range cells {
				seg := segmentOf(cells[ci].Trace, ts, end)
				cells[ci].Lags = append(cells[ci].Lags, segmentLag(seg, frac*best, window))
			}
		}
		for ci := range cells {
			if n := len(cells[ci].Lags); n > 0 {
				sum := 0
				for _, l := range cells[ci].Lags {
					sum += l
				}
				cells[ci].MeanLag = float64(sum) / float64(n)
			}
		}
	}
	return res, nil
}

// segmentOf returns the epochs of tr that start within [from, to).
func segmentOf(tr *tuner.Trace, from, to float64) []tuner.EpochResult {
	const eps = 1e-9
	var seg []tuner.EpochResult
	for _, r := range tr.Results {
		if r.Report.Start >= from-eps && r.Report.Start < to-eps {
			seg = append(seg, r)
		}
	}
	return seg
}

// peakWindow is the best rolling-window throughput mean in seg (zero
// when seg is shorter than the window).
func peakWindow(seg []tuner.EpochResult, window int) float64 {
	best := 0.0
	for i := 0; i+window <= len(seg); i++ {
		if m := windowMean(seg[i : i+window]); m > best {
			best = m
		}
	}
	return best
}

// segmentLag is the index of the first epoch in seg opening a rolling
// window whose mean reaches target; a segment that never gets there —
// or is too short to hold one window — is charged its full length.
func segmentLag(seg []tuner.EpochResult, target float64, window int) int {
	for i := 0; i+window <= len(seg); i++ {
		if windowMean(seg[i:i+window]) >= target {
			return i
		}
	}
	return len(seg)
}

// Report renders the study as an aligned text table: one row per
// cell, with integral volume, mean throughput, and the per-shift lag
// vector.
func (r *DynamicLoadResult) Report() string {
	var b strings.Builder
	fmt.Fprintf(&b, "DynamicLoadStudy %s (window=%d epochs, frac=%.2f)\n", r.Testbed, r.Window, r.Frac)
	fmt.Fprintf(&b, "%-10s %-10s %12s %12s %8s  %s\n",
		"schedule", "tuner", "GB", "mean MB/s", "mean lag", "lags (epochs)")
	for _, c := range r.Cells {
		lags := "-"
		if len(c.Lags) > 0 {
			parts := make([]string, len(c.Lags))
			for i, l := range c.Lags {
				parts[i] = fmt.Sprintf("%d", l)
			}
			lags = strings.Join(parts, ",")
		}
		fmt.Fprintf(&b, "%-10s %-10s %12.1f %12.1f %8.1f  %s\n",
			c.Schedule, c.Tuner, c.Bytes/1e9, c.Mean/1e6, c.MeanLag, lags)
	}
	return b.String()
}
