package experiment

import (
	"fmt"
	"sort"
	"strings"

	"dstune/internal/trace"
	"dstune/internal/tuner"
)

// sparkWidth is the width of the rendered sparklines.
const sparkWidth = 40

// Render formats the Figure 1 sweep as an aligned table of boxplot
// statistics in MB/s, followed by the critical points.
func (r *Fig1Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 1 — throughput vs parallel streams, %s (np=1)\n\n", r.Testbed)
	header := []string{"load", "nc", "min", "q1", "median", "q3", "max"}
	var rows [][]string
	for _, l := range r.Loads {
		for _, nc := range r.Concurrency {
			s := r.Summary[l][nc]
			rows = append(rows, []string{
				l.String(), fmt.Sprint(nc),
				trace.MBs(s.Min), trace.MBs(s.Q1), trace.MBs(s.Median),
				trace.MBs(s.Q3), trace.MBs(s.Max),
			})
		}
	}
	b.WriteString(trace.Table(header, rows))
	b.WriteString("\ncritical points (highest median):\n")
	for _, l := range r.Loads {
		fmt.Fprintf(&b, "  %-24s nc=%d (%s MB/s)\n",
			l.String(), r.Critical[l], trace.MBs(r.Summary[l][r.Critical[l]].Median))
	}
	return b.String()
}

// renderTrace writes one tuner's summary block: means, final vector,
// and sparklines of throughput and the tuned parameters.
func renderTrace(b *strings.Builder, name string, tr *tuner.Trace) {
	obs, best := tr.MeanThroughput(), tr.MeanBestCase()
	overhead := 0.0
	if best > 0 {
		overhead = 100 * (1 - obs/best)
	}
	fmt.Fprintf(b, "%-9s mean %7s MB/s  best-case %7s MB/s  overhead %4.1f%%  final x=%v\n",
		name, trace.MBs(obs), trace.MBs(best), overhead, tr.FinalX())
	fmt.Fprintf(b, "          throughput %s\n", trace.Sparkline(tr.Throughput(), sparkWidth))
	dims := 0
	if x := tr.FinalX(); x != nil {
		dims = len(x)
	}
	labels := []string{"nc", "np"}
	for d := 0; d < dims && d < len(labels); d++ {
		fmt.Fprintf(b, "          %-10s %s\n", labels[d], trace.Sparkline(tr.Param(d), sparkWidth))
	}
}

// Render formats a tuning result: one block per tuner in presentation
// order.
func (r *TuningResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s\n\n", r.Testbed, r.Scenario)
	for _, name := range r.Order {
		if tr, ok := r.Traces[name]; ok {
			renderTrace(&b, name, tr)
		}
	}
	return b.String()
}

// Render formats the simultaneous-transfer result.
func (r *SimultaneousResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 11 — simultaneous transfers tuned by %s\n\n", r.Tuner)
	renderTrace(&b, "UChicago", r.UChicago)
	renderTrace(&b, "TACC", r.TACC)
	total := r.UChicago.MeanThroughput() + r.TACC.MeanThroughput()
	fmt.Fprintf(&b, "aggregate %s MB/s out of the shared 5000 MB/s NIC\n", trace.MBs(total))
	return b.String()
}

// RenderImprovements formats the §IV-A claims table.
func RenderImprovements(imps []Improvement) string {
	header := []string{"scenario", "default MB/s", "best tuner", "tuner MB/s", "factor", "overheads"}
	var rows [][]string
	for _, im := range imps {
		names := make([]string, 0, len(im.OverheadPct))
		for n := range im.OverheadPct {
			names = append(names, n)
		}
		sort.Strings(names)
		var ov []string
		for _, n := range names {
			ov = append(ov, fmt.Sprintf("%s %.0f%%", n, im.OverheadPct[n]))
		}
		rows = append(rows, []string{
			im.Scenario,
			trace.MBs(im.Default),
			im.BestName,
			trace.MBs(im.Best),
			fmt.Sprintf("%.1fx", im.Factor),
			strings.Join(ov, ", "),
		})
	}
	return trace.Table(header, rows)
}
