// Package experiment assembles the paper's testbeds and reproduces
// every figure of its evaluation (Figures 1 and 5–11) on the
// simulated substrate.
//
// The two WAN paths are calibrated so that the *shapes* of the paper's
// results hold — throughput rising with stream count to a critical
// point that moves right under external load, a default setting that
// collapses under source compute load, restart overhead of roughly
// 15–50% — rather than the absolute numbers of the authors' testbed.
// See DESIGN.md for the substitution rationale and EXPERIMENTS.md for
// paper-vs-measured values.
package experiment

import (
	"dstune/internal/endpoint"
	"dstune/internal/netem"
	"dstune/internal/tcpmodel"
	"dstune/internal/xfer"
)

// Testbed is a named source endpoint and WAN path.
type Testbed struct {
	// Name labels the testbed, e.g. "ANL->UChicago".
	Name string
	// Source is the transfer source host (the paper's ANL Nehalem
	// node; all controlled load is applied here).
	Source endpoint.Config
	// Path is the WAN path to the destination.
	Path netem.Config
	// DT is the fabric step; zero selects 0.1 s, which resolves 30 s
	// control epochs while keeping 1800 s experiments cheap.
	DT float64
	// CC names the TCP congestion-control algorithm ("htcp",
	// "cubic", "reno", "scalable"); empty selects H-TCP, the
	// algorithm on the paper's endpoints.
	CC string
}

// defaultDT is the fabric step used by the experiment harnesses.
const defaultDT = 0.1

// SourceANL returns the paper's source endpoint: the 8-core Nehalem
// node at Argonne's JLSE with a 40 Gb/s NIC. CorePumpRate is set so
// that the Globus default (two processes) moves ~2.5 GB/s unloaded,
// as in Figure 5a.
func SourceANL() endpoint.Config {
	return endpoint.Config{
		Name:         "anl-nehalem",
		Cores:        8,
		CorePumpRate: 1.3e9,
		NICRate:      5e9, // 40 Gb/s
	}
}

// ANLtoUChicago returns the 40 Gb/s, short-RTT path of §III-A and
// Figures 1, 5-7, 9: theoretical peak 5 GB/s, observed peak ~4 GB/s.
func ANLtoUChicago() Testbed {
	return Testbed{
		Name:   "ANL->UChicago",
		Source: SourceANL(),
		Path: netem.Config{
			Name:       "anl-uchicago",
			Capacity:   5e9,
			BaseRTT:    0.012,
			RandomLoss: 5e-6,
			MaxCwnd:    4 << 20,
		},
	}
}

// ANLtoTACC returns the 20 Gb/s, 33 ms path of §IV and Figures 8 and
// 10: link capacity 2.5 GB/s, where even unloaded transfers need tens
// of streams.
func ANLtoTACC() Testbed {
	return Testbed{
		Name:   "ANL->TACC",
		Source: SourceANL(),
		Path: netem.Config{
			Name:       "anl-tacc",
			Capacity:   2.5e9,
			BaseRTT:    0.033,
			RandomLoss: 5e-6,
			MaxCwnd:    4 << 20,
		},
	}
}

// NewFabric builds a fabric for the testbed.
func (tb Testbed) NewFabric(seed uint64) (*xfer.Fabric, *netem.Path, error) {
	dt := tb.DT
	if dt == 0 {
		dt = defaultDT
	}
	var alg tcpmodel.Algorithm
	if tb.CC != "" {
		var err error
		alg, err = tcpmodel.ByName(tb.CC)
		if err != nil {
			return nil, nil, err
		}
	}
	f, err := xfer.NewFabric(xfer.FabricConfig{DT: dt, Seed: seed, Source: tb.Source, TCP: alg})
	if err != nil {
		return nil, nil, err
	}
	p, err := f.AddPath(tb.Path)
	if err != nil {
		return nil, nil, err
	}
	return f, p, nil
}

// NewDualFabric builds the §IV-D fabric: one ANL source feeding both
// the UChicago and TACC paths through the shared 40 Gb/s NIC. The
// returned paths are in that order.
func NewDualFabric(seed uint64) (*xfer.Fabric, *netem.Path, *netem.Path, error) {
	uc := ANLtoUChicago()
	f, err := xfer.NewFabric(xfer.FabricConfig{DT: defaultDT, Seed: seed, Source: uc.Source})
	if err != nil {
		return nil, nil, nil, err
	}
	p1, err := f.AddPath(uc.Path)
	if err != nil {
		return nil, nil, nil, err
	}
	p2, err := f.AddPath(ANLtoTACC().Path)
	if err != nil {
		return nil, nil, nil, err
	}
	return f, p1, p2, nil
}
