package experiment

import (
	"fmt"

	"dstune/internal/load"
)

// ThirdParty runs default, cs-tuner, and nm-tuner under bursty
// third-party network traffic: n background streams that toggle on
// and off every period seconds without touching the source endpoint.
// The paper notes it could not control this traffic class on its
// production links; here it is a first-class, reproducible condition.
func ThirdParty(tb Testbed, n int, period float64, rc RunConfig) (*TuningResult, error) {
	sched := load.Square(period, load.Load{}, load.Load{Net: n})
	scenario := fmt.Sprintf("bursty third-party net=%d period=%gs", n, period)
	return runSet(tb, []string{"default", "cd-tuner", "cs-tuner", "nm-tuner"}, scenario, sched, rc, false)
}

// ConvergenceTimes returns each tuner's time to reach frac of its
// steady throughput (rolling window of `window` epochs), in seconds;
// -1 when never reached. This derives the §IV-A timing claims
// (cd-tuner ~100 s unloaded; cs/nm-tuner 500-600 s under load).
func ConvergenceTimes(res *TuningResult, frac float64, window int) map[string]float64 {
	out := make(map[string]float64, len(res.Traces))
	for name, tr := range res.Traces {
		out[name] = tr.ConvergenceTime(frac, window)
	}
	return out
}

// CompareModel pits the related-work empirical baseline ("model",
// Yildirim/Yin curve fitting) against nm-tuner and default, under the
// same varying load as Figure 10. The paper's core argument is that
// model-based approaches degrade when external conditions change;
// this harness measures it.
func CompareModel(tb Testbed, rc RunConfig) (*TuningResult, error) {
	return runSet(tb, []string{"default", "model", "nm-tuner"}, "varying load", VaryingLoad(), rc, false)
}
