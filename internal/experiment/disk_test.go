package experiment

import (
	"strings"
	"testing"

	"dstune/internal/dataset"
)

func TestDiskScenariosShape(t *testing.T) {
	scs := DiskScenarios(1)
	if len(scs) != 3 {
		t.Fatalf("got %d scenarios", len(scs))
	}
	names := map[string]bool{}
	for _, sc := range scs {
		names[sc.Name] = true
		if sc.Files.Count() == 0 || sc.DiskRate <= 0 || sc.FileOverhead <= 0 {
			t.Fatalf("scenario %q incomplete: %+v", sc.Name, sc)
		}
	}
	for _, want := range []string{"many-small", "lognormal-mix", "few-huge"} {
		if !names[want] {
			t.Fatalf("missing scenario %q", want)
		}
	}
	// Deterministic per seed.
	again := DiskScenarios(1)
	if again[1].Files.TotalBytes() != scs[1].Files.TotalBytes() {
		t.Fatal("lognormal scenario not deterministic")
	}
}

func TestTuneDiskManySmall(t *testing.T) {
	// A shortened many-small workload: the tuner must discover that
	// pipelining and concurrency dominate, beating the static disk
	// default clearly.
	sc := DiskScenario{
		Name:         "many-small",
		Files:        dataset.ManySmall(4000),
		DiskRate:     2e9,
		FileOverhead: 0.5,
	}
	res, err := TuneDisk(ANLtoUChicago(), sc, RunConfig{Seed: 3, Duration: 900})
	if err != nil {
		t.Fatal(err)
	}
	def := res.Traces["default"].MeanThroughput()
	best := 0.0
	bestPP := 0
	for _, name := range []string{"cs-tuner", "nm-tuner"} {
		tr := res.Traces[name]
		if v := tr.MeanThroughput(); v > best {
			best = v
			bestPP = tr.FinalX()[2]
		}
	}
	if best < 2*def {
		t.Fatalf("tuned small-file throughput %v not >= 2x default %v", best, def)
	}
	if bestPP <= 4 {
		t.Errorf("best tuner's pipelining depth %d did not rise above the default 4", bestPP)
	}
	if FilesMoved(res.Traces["default"]) <= 0 {
		t.Fatal("default moved no files")
	}
	if !strings.Contains(res.Render(), "disk: many-small") {
		t.Fatal("Render missing scenario label")
	}
}

func TestTuneDiskFewHuge(t *testing.T) {
	// Bandwidth-bound regime: 8 x 2 GB. Pipelining is irrelevant;
	// both default and tuners should move data at a healthy rate,
	// and the transfers complete before the budget.
	sc := DiskScenario{
		Name:         "few-huge",
		Files:        dataset.Uniform(8, 2<<30),
		DiskRate:     2e9,
		FileOverhead: 0.5,
	}
	res, err := TuneDisk(ANLtoUChicago(), sc, RunConfig{Seed: 4, Duration: 1800})
	if err != nil {
		t.Fatal(err)
	}
	for name, tr := range res.Traces {
		if FilesMoved(tr) != 8 {
			t.Errorf("%s moved %d files, want all 8", name, FilesMoved(tr))
		}
		last := tr.Results[len(tr.Results)-1]
		if !last.Report.Done {
			t.Errorf("%s did not finish within budget", name)
		}
	}
}

func TestJointVsIndependent(t *testing.T) {
	rc := RunConfig{Seed: 5, Duration: 1200}
	jc, err := JointVsIndependent(rc)
	if err != nil {
		t.Fatal(err)
	}
	if jc.IndependentAggregate() <= 0 || jc.JointAggregate() <= 0 {
		t.Fatal("no progress in one of the modes")
	}
	// Both bounded by the shared NIC.
	if jc.JointAggregate() > 5e9 || jc.IndependentAggregate() > 5e9 {
		t.Fatal("aggregate exceeds the NIC")
	}
	// The joint tuner must be at least competitive: not collapse
	// below two thirds of the independent aggregate.
	if jc.JointAggregate() < 0.66*jc.IndependentAggregate() {
		t.Fatalf("joint aggregate %v far below independent %v",
			jc.JointAggregate(), jc.IndependentAggregate())
	}
	out := jc.Render()
	if !strings.Contains(out, "joint:") || !strings.Contains(out, "independent:") {
		t.Fatalf("Render incomplete:\n%s", out)
	}
}
