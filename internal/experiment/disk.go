package experiment

import (
	"context"
	"fmt"

	"dstune/internal/dataset"
	"dstune/internal/directsearch"
	"dstune/internal/load"
	"dstune/internal/tuner"
	"dstune/internal/xfer"
)

// DiskScenario is one disk-to-disk workload regime, following the
// file-size analysis of Yildirim et al. [25] that the paper's
// future-work item (1) builds on.
type DiskScenario struct {
	// Name labels the regime.
	Name string
	// Files is the dataset to move.
	Files dataset.Dataset
	// DiskRate is the source storage bandwidth in bytes per second.
	DiskRate float64
	// FileOverhead is the per-file request+seek latency in seconds.
	FileOverhead float64
}

// DiskScenarios returns the three regimes: request-latency-bound many
// small files, a heavy-tailed mix, and bandwidth-bound huge files.
// The regimes are defined once in dataset.Workloads, shared with the
// real-socket path. Deterministic per seed.
func DiskScenarios(seed uint64) []DiskScenario {
	ws := dataset.Workloads(seed)
	out := make([]DiskScenario, len(ws))
	for i, w := range ws {
		out[i] = DiskScenario{
			Name:         w.Name,
			Files:        w.Files,
			DiskRate:     w.DiskRate,
			FileOverhead: w.FileOverhead,
		}
	}
	return out
}

// diskTunerCfg builds the three-parameter tuner configuration
// ([nc, np, pp]) for rc.
func (rc RunConfig) diskTunerCfg() tuner.Config {
	return tuner.Config{
		Epoch:  rc.Epoch,
		Budget: rc.Duration,
		Seed:   rc.Seed,
		Box:    mustBox3(rc.MaxNC, rc.MaxNP, 32),
		Start:  []int{rc.StartNC, rc.StartNP, 4},
		Map:    tuner.MapNCNPPP(),
	}
}

// TuneDisk runs the disk-to-disk comparison for one scenario:
// `default` holds the static disk setting (nc=2, np=8, pp=4) while
// cs-tuner and nm-tuner tune all three parameters. Transfers are
// bounded by the dataset, so a trace may end early with Done.
func TuneDisk(tb Testbed, sc DiskScenario, rc RunConfig) (*TuningResult, error) {
	rc = rc.withDefaults()
	names := []string{"default", "cs-tuner", "nm-tuner"}
	res := &TuningResult{
		Testbed:  tb.Name,
		Scenario: "disk: " + sc.Name,
		Order:    names,
		Traces:   make(map[string]*tuner.Trace, len(names)),
	}
	for _, name := range names {
		f, _, err := tb.NewFabric(rc.Seed)
		if err != nil {
			return nil, err
		}
		f.SetLoad(load.None(), nil)
		policy := xfer.RestartEveryEpoch
		if name == "default" {
			policy = xfer.RestartOnChange
		}
		tr, err := f.NewTransfer(xfer.TransferConfig{
			Name:         name,
			Files:        sc.Files,
			DiskRate:     sc.DiskRate,
			FileOverhead: sc.FileOverhead,
			Policy:       policy,
		})
		if err != nil {
			return nil, err
		}
		cfg := rc.diskTunerCfg()
		var tn tuner.Tuner
		switch name {
		case "default":
			cfg.Start = []int{2, 8, 4} // the static disk default
			tn = tuner.NewStatic(cfg)
		case "cs-tuner":
			tn = tuner.NewCS(cfg)
		case "nm-tuner":
			tn = tuner.NewNM(cfg)
		}
		trace, err := tn.Tune(context.Background(), tr)
		if err != nil {
			return nil, fmt.Errorf("%s on %s: %w", name, sc.Name, err)
		}
		res.Traces[name] = trace
	}
	return res, nil
}

// FilesMoved sums the files completed across a trace.
func FilesMoved(tr *tuner.Trace) int {
	n := 0
	for _, r := range tr.Results {
		n += r.Report.Files
	}
	return n
}

// mustBox3 builds the [nc, np, pp] box.
func mustBox3(maxNC, maxNP, maxPP int) directsearch.Box {
	return directsearch.MustBox([]int{1, 1, 1}, []int{maxNC, maxNP, maxPP})
}
