package experiment

import (
	"context"
	"fmt"
	"strings"

	"dstune/internal/history"
	"dstune/internal/load"
	"dstune/internal/tuner"
	"dstune/internal/xfer"
)

// WarmStartLoads is the external-load sweep of the warm-start study:
// no load, then external traffic at 16, 32, and 64 streams.
func WarmStartLoads() []load.Load {
	return []load.Load{{}, {Tfr: 16}, {Tfr: 32}, {Tfr: 64}}
}

// WarmStartCell is one (tuner, load) cell of a warm-start study: a
// cold run from the Globus defaults, its best epoch recorded into a
// fresh history store, then a warm run on an identically seeded fabric
// that starts from the recorded optimum.
type WarmStartCell struct {
	Tuner string
	Load  load.Load
	// Pred is the historical prediction the warm run started from (the
	// cold run's best epoch vector).
	Pred []int
	// Target is the shared critical-point throughput both runs are
	// measured against: the better of the two runs' steady values.
	// Measuring each run against its own steady value would flatter a
	// cold run stuck on a bad plateau — it "converges" instantly to a
	// throughput the warm run far exceeds.
	Target float64
	// ColdEpochs and WarmEpochs count epochs until the rolling mean
	// throughput reaches the critical fraction of Target
	// (EpochsToTarget); a run that never got there within budget
	// reports its full epoch count.
	ColdEpochs, WarmEpochs int
	// ColdBytes and WarmBytes are the integral throughput of each run:
	// total bytes moved over the shared budget.
	ColdBytes, WarmBytes float64
	// Cold and Warm are the full traces.
	Cold, Warm *tuner.Trace
}

// WarmStartResult holds a warm-vs-cold study over a load sweep.
type WarmStartResult struct {
	Testbed string
	Cells   []WarmStartCell
}

// EpochsToCritical is the epoch-index analog of
// Trace.ConvergenceTime: the index of the first epoch opening a
// rolling window of `window` epochs whose mean throughput reaches
// frac of the steady value (the mean of the last `window` epochs). It
// returns -1 when the trace is shorter than the window or the
// threshold is never reached. The paper's "time to critical point"
// divides out the epoch length; counting epochs keeps the comparison
// exact across runs that share e.
func EpochsToCritical(tr *tuner.Trace, frac float64, window int) int {
	return EpochsToTarget(tr, frac*steadyMean(tr, window), window)
}

// EpochsToTarget returns the index of the first epoch opening a
// rolling window of `window` epochs whose mean throughput reaches
// target, or -1 when the trace is shorter than the window or the
// target is never reached. Unlike EpochsToCritical the reference is
// explicit, so two runs can be measured against the same bar.
func EpochsToTarget(tr *tuner.Trace, target float64, window int) int {
	if window < 1 {
		window = 1
	}
	n := len(tr.Results)
	if n < window {
		return -1
	}
	for i := 0; i+window <= n; i++ {
		if windowMean(tr.Results[i:i+window]) >= target {
			return i
		}
	}
	return -1
}

// steadyMean is the mean throughput of the trace's last `window`
// epochs — its steady value; 0 for traces shorter than the window.
func steadyMean(tr *tuner.Trace, window int) float64 {
	if window < 1 {
		window = 1
	}
	n := len(tr.Results)
	if n < window {
		return 0
	}
	return windowMean(tr.Results[n-window:])
}

func windowMean(rs []tuner.EpochResult) float64 {
	sum := 0.0
	for _, r := range rs {
		sum += r.Report.Throughput
	}
	return sum / float64(len(rs))
}

// integralBytes is the integral of observed throughput over the run:
// total bytes moved.
func integralBytes(tr *tuner.Trace) float64 {
	var bytes float64
	for _, r := range tr.Results {
		bytes += r.Report.Bytes
	}
	return bytes
}

// warmKey is the history identity of one study cell: the testbed as
// endpoint, unbounded volume, and the external-load fingerprint.
func warmKey(tb Testbed, l load.Load) history.Key {
	return history.Key{
		Endpoint:  tb.Name,
		SizeClass: history.SizeClass(0),
		LoadClass: history.LoadClass(l.Tfr + l.Cmp),
	}
}

// runWarmTuned mirrors runTuned but wraps the named tuner in the
// warm-start strategy over store, so its first proposal is the
// store's best-known vector for key.
func runWarmTuned(tb Testbed, name string, sched load.Schedule, rc RunConfig, store *history.Store, key history.Key) (*tuner.Trace, error) {
	rc = rc.withDefaults()
	f, _, err := tb.NewFabric(rc.Seed)
	if err != nil {
		return nil, err
	}
	f.SetLoad(sched, nil)
	tr, err := f.NewTransfer(xfer.TransferConfig{
		Name:   "warm:" + name,
		Bytes:  xfer.Unbounded,
		Policy: xfer.RestartEveryEpoch,
	})
	if err != nil {
		return nil, err
	}
	tn, err := tuner.NewWarm(name, rc.tunerCfg(false), store, key)
	if err != nil {
		return nil, err
	}
	return tn.Tune(context.Background(), tr)
}

// WarmStartStudy measures what the knowledge plane buys: for every
// (tuner, load) cell it runs the named tuner cold from the Globus
// defaults, records the cold run's best epoch into a fresh in-memory
// history store, and reruns warm on an identically seeded fabric so
// the only difference is the starting vector. Cells are independent
// and run on the worker pool. frac and window parameterize the
// critical-point detector (EpochsToCritical); the paper-style choice
// is frac=0.9, window=3.
func WarmStartStudy(tb Testbed, names []string, loads []load.Load, rc RunConfig, frac float64, window int) (*WarmStartResult, error) {
	if len(names) == 0 {
		names = []string{"cs-tuner", "cd-tuner"}
	}
	if len(loads) == 0 {
		loads = WarmStartLoads()
	}
	type cell struct {
		name string
		l    load.Load
	}
	cells := make([]cell, 0, len(names)*len(loads))
	for _, name := range names {
		for _, l := range loads {
			cells = append(cells, cell{name: name, l: l})
		}
	}
	out := make([]WarmStartCell, len(cells))
	err := forEachCell(len(cells), func(i int) error {
		c := cells[i]
		sched := load.Constant(c.l)
		cold, err := runTuned(tb, c.name, sched, rc, false)
		if err != nil {
			return fmt.Errorf("cold %s under %s: %w", c.name, c.l, err)
		}
		x, tput, ok := cold.BestEpoch()
		if !ok {
			return fmt.Errorf("cold %s under %s produced no usable epoch", c.name, c.l)
		}
		store := history.NewMemStore()
		key := warmKey(tb, c.l)
		if err := store.Add(history.Record{
			Key: key, X: x, Throughput: tput,
			Tuner: c.name, Epochs: len(cold.Results),
		}); err != nil {
			return err
		}
		warm, err := runWarmTuned(tb, c.name, sched, rc, store, key)
		if err != nil {
			return fmt.Errorf("warm %s under %s: %w", c.name, c.l, err)
		}
		// Both runs are judged against the same bar — the better of
		// the two steady values — and a run that never reaches it
		// within budget counts as taking every epoch it had.
		target := max(steadyMean(cold, window), steadyMean(warm, window))
		atTarget := func(tr *tuner.Trace) int {
			if e := EpochsToTarget(tr, frac*target, window); e >= 0 {
				return e
			}
			return len(tr.Results)
		}
		out[i] = WarmStartCell{
			Tuner:      c.name,
			Load:       c.l,
			Pred:       x,
			Target:     target,
			ColdEpochs: atTarget(cold),
			WarmEpochs: atTarget(warm),
			ColdBytes:  integralBytes(cold),
			WarmBytes:  integralBytes(warm),
			Cold:       cold,
			Warm:       warm,
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return &WarmStartResult{Testbed: tb.Name, Cells: out}, nil
}

// Report renders the study as an aligned text table: one row per
// cell with epochs-to-critical and integral throughput, cold vs warm.
func (r *WarmStartResult) Report() string {
	var b strings.Builder
	fmt.Fprintf(&b, "warm-start study on %s\n", r.Testbed)
	fmt.Fprintf(&b, "%-10s %-12s %-10s %12s %12s %14s %14s\n",
		"tuner", "load", "pred", "cold epochs", "warm epochs", "cold GB", "warm GB")
	for _, c := range r.Cells {
		fmt.Fprintf(&b, "%-10s %-12s %-10s %12d %12d %14.2f %14.2f\n",
			c.Tuner, c.Load.String(), fmt.Sprint(c.Pred),
			c.ColdEpochs, c.WarmEpochs,
			c.ColdBytes/1e9, c.WarmBytes/1e9)
	}
	return b.String()
}
