package experiment

import (
	"strings"
	"testing"
)

// dynCell finds the (schedule, tuner) cell in a study result.
func dynCell(t *testing.T, res *DynamicLoadResult, sched, tun string) *DynamicLoadCell {
	t.Helper()
	for i := range res.Cells {
		if res.Cells[i].Schedule == sched && res.Cells[i].Tuner == tun {
			return &res.Cells[i]
		}
	}
	t.Fatalf("study has no cell (%s, %s)", sched, tun)
	return nil
}

// TestRLBeatsDirectSearchOnDynamicLoad is the tentpole acceptance
// criterion: on at least one step or square load schedule, the best
// learned strategy moves strictly more payload AND re-adapts strictly
// faster after every shift (lower mean lag) than cd-tuner, cs-tuner,
// and nm-tuner — because a policy that has seen a load level before
// switches vectors on the next epoch instead of re-searching — while
// on constant load that same strategy stays within 10% of the best
// direct search's integral.
func TestRLBeatsDirectSearchOnDynamicLoad(t *testing.T) {
	direct := []string{"cd-tuner", "cs-tuner", "nm-tuner"}
	learned := []string{"rl-bandit", "rl-q"}
	var scheds []DynamicSchedule
	for _, sc := range DynamicSchedules(0) {
		if sc.Name == "step" || sc.Name == "square" || sc.Name == "constant" {
			scheds = append(scheds, sc)
		}
	}
	res, err := DynamicLoadStudy(ANLtoUChicago(), DynamicLoadConfig{
		Run:       RunConfig{Seed: 7},
		Tuners:    append(append([]string{}, direct...), learned...),
		Schedules: scheds,
	})
	if err != nil {
		t.Fatal(err)
	}

	var winner, winSched string
	for _, sc := range []string{"step", "square"} {
		for _, rl := range learned {
			c := dynCell(t, res, sc, rl)
			wins := true
			for _, d := range direct {
				dc := dynCell(t, res, sc, d)
				if !(c.Bytes > dc.Bytes && c.MeanLag < dc.MeanLag) {
					wins = false
					break
				}
			}
			if wins {
				winner, winSched = rl, sc
				break
			}
		}
		if winner != "" {
			break
		}
	}
	if winner == "" {
		t.Fatalf("no learned strategy strictly beats cd/cs/nm on any dynamic schedule:\n%s", res.Report())
	}
	t.Logf("%s wins on %s\n%s", winner, winSched, res.Report())

	bestDirect := 0.0
	for _, d := range direct {
		if b := dynCell(t, res, "constant", d).Bytes; b > bestDirect {
			bestDirect = b
		}
	}
	wc := dynCell(t, res, "constant", winner)
	if wc.Bytes < 0.9*bestDirect {
		t.Fatalf("%s on constant load moved %.3g B, below 90%% of the best direct search's %.3g B:\n%s",
			winner, wc.Bytes, bestDirect, res.Report())
	}
}

// TestDynamicLoadStudyShape checks the harness plumbing on a short
// run: cell layout, per-shift lag vectors, the shift-free control, and
// the report rendering.
func TestDynamicLoadStudyShape(t *testing.T) {
	res, err := DynamicLoadStudy(ANLtoUChicago(), DynamicLoadConfig{
		Run:    RunConfig{Seed: 5, Duration: 300},
		Tuners: []string{"cs-tuner", "rl-bandit"},
	})
	if err != nil {
		t.Fatal(err)
	}
	scheds := DynamicSchedules(300)
	if len(res.Cells) != len(scheds)*2 {
		t.Fatalf("study holds %d cells, want %d", len(res.Cells), len(scheds)*2)
	}
	for _, sc := range scheds {
		for _, tun := range []string{"cs-tuner", "rl-bandit"} {
			c := dynCell(t, res, sc.Name, tun)
			if c.Trace == nil || len(c.Trace.Results) == 0 {
				t.Fatalf("(%s, %s): empty trace", sc.Name, tun)
			}
			if len(c.Lags) != len(sc.Shifts) {
				t.Fatalf("(%s, %s): %d lags for %d shifts", sc.Name, tun, len(c.Lags), len(sc.Shifts))
			}
			if c.Bytes <= 0 {
				t.Fatalf("(%s, %s): no payload moved", sc.Name, tun)
			}
		}
	}
	rep := res.Report()
	for _, want := range []string{"step", "square", "piecewise", "constant", "rl-bandit"} {
		if !strings.Contains(rep, want) {
			t.Fatalf("report lacks %q:\n%s", want, rep)
		}
	}
}

// TestDynamicLoadStudyDeterministic: equal seeds, equal studies.
func TestDynamicLoadStudyDeterministic(t *testing.T) {
	cfg := DynamicLoadConfig{
		Run:    RunConfig{Seed: 9, Duration: 300},
		Tuners: []string{"rl-q"},
	}
	a, err := DynamicLoadStudy(ANLtoUChicago(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := DynamicLoadStudy(ANLtoUChicago(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Report() != b.Report() {
		t.Fatalf("same seed, different studies:\n%s\nvs\n%s", a.Report(), b.Report())
	}
}
