// Package endpoint models the source host of a data transfer: a fixed
// number of cores shared between transfer processes and external
// compute jobs, with context-switch overhead and process-restart
// latency.
//
// The paper's §III-A attributes two of its central observations to the
// source endpoint: (1) external compute load (parallel dgemm copies)
// starves transfer processes of CPU, so the critical number of streams
// rises with load, and (2) restarting globus-url-copy at every control
// epoch costs 15–50% of throughput, growing with CPU contention. This
// package reproduces both mechanisms:
//
//   - A weighted max-min fair (water-filling) scheduler divides the
//     cores among demands. CPU-bound compute jobs carry a higher weight
//     than I/O-bound transfer processes, which models the penalty that
//     frequently-yielding transfer threads pay against spinning dgemm
//     threads under a real kernel scheduler.
//   - A context-switch efficiency factor shrinks the usable pump rate
//     as the number of runnable threads grows past the core count —
//     this is what bends the throughput curve down after the paper's
//     "critical point".
//   - RestartTime grows with the ratio of runnable processes to cores,
//     reproducing the overhead trend of Figure 7.
//
// One transfer process corresponds to one unit of GridFTP concurrency;
// its `parallelism` streams are threads inside the process and share
// the process's allocation (the paper: "concurrency exploits multiple
// CPU cores, parallelism does not").
package endpoint

import (
	"fmt"
	"sort"
)

// Config describes a host.
type Config struct {
	// Name labels the host in diagnostics (e.g. "ANL-nehalem").
	Name string
	// Cores is the number of CPU cores.
	Cores int
	// CorePumpRate is the data rate one transfer process can sustain
	// with a full core, in bytes per second.
	CorePumpRate float64
	// ComputeWeight is the scheduling weight of a CPU-bound compute
	// job relative to a transfer process (default 4): spinning jobs
	// win against I/O-bound threads that block and yield.
	ComputeWeight float64
	// CtxSwitchPenalty is the efficiency loss per excess runnable
	// thread per core (default 0.05).
	CtxSwitchPenalty float64
	// StreamOverhead is the fraction of a core consumed by the
	// bookkeeping of one stream regardless of its rate (default
	// 0.001).
	StreamOverhead float64
	// RestartBase is the process-restart dead time in seconds on an
	// idle host (default 3).
	RestartBase float64
	// RestartPerLoad scales the extra restart time per unit of
	// process oversubscription (default 0.35).
	RestartPerLoad float64
	// NICRate caps the host's aggregate outgoing rate in bytes per
	// second; zero means unlimited (the network paths then provide
	// the only capacity limits).
	NICRate float64
}

// withDefaults returns cfg with zero fields replaced by defaults.
func (c Config) withDefaults() Config {
	if c.ComputeWeight == 0 {
		c.ComputeWeight = 4
	}
	if c.CtxSwitchPenalty == 0 {
		c.CtxSwitchPenalty = 0.05
	}
	if c.StreamOverhead == 0 {
		c.StreamOverhead = 0.001
	}
	if c.RestartBase == 0 {
		c.RestartBase = 3
	}
	if c.RestartPerLoad == 0 {
		c.RestartPerLoad = 0.35
	}
	return c
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	if c.Cores <= 0 {
		return fmt.Errorf("endpoint: cores must be positive, got %d", c.Cores)
	}
	if c.CorePumpRate <= 0 {
		return fmt.Errorf("endpoint: core pump rate must be positive, got %v", c.CorePumpRate)
	}
	return nil
}

// Host is a source endpoint. It is not safe for concurrent use; the
// fabric drives it from the simulation loop.
type Host struct {
	cfg         Config
	computeJobs int
}

// New returns a host for cfg. It panics if cfg is invalid; call
// Validate first for error handling.
func New(cfg Config) *Host {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	return &Host{cfg: cfg.withDefaults()}
}

// Config returns the host's configuration (with defaults applied).
func (h *Host) Config() Config { return h.cfg }

// SetComputeJobs sets the number of external compute jobs (the paper's
// ext.cmp dgemm copies). Each job spins on all cores, so it contributes
// Cores runnable threads and demands the whole machine.
func (h *Host) SetComputeJobs(n int) {
	if n < 0 {
		n = 0
	}
	h.computeJobs = n
}

// ComputeJobs returns the current external compute job count.
func (h *Host) ComputeJobs() int { return h.computeJobs }

// Demand describes one transfer process's resource request for a
// scheduling round.
type Demand struct {
	// Threads is the number of streams (parallelism) in the process.
	Threads int
	// Rate is the process's desired pump rate in bytes per second —
	// typically the window-limited offered rate of its flow, with
	// headroom so a growing flow is not pinned by its own history.
	Rate float64
}

// Efficiency returns the context-switch efficiency factor in (0, 1]
// for the given total count of runnable threads on the host.
func (h *Host) Efficiency(totalThreads int) float64 {
	over := float64(totalThreads)/float64(h.cfg.Cores) - 1
	if over <= 0 {
		return 1
	}
	return 1 / (1 + h.cfg.CtxSwitchPenalty*over)
}

// Allocate runs one scheduling round: given the demands of all
// transfer processes currently running on the host (across all of its
// transfers and paths), it returns the pump-rate cap in bytes per
// second for each process. External compute jobs set via
// SetComputeJobs participate in the round with weight ComputeWeight
// and full-machine demands.
func (h *Host) Allocate(procs []Demand) []float64 {
	cfg := h.cfg
	n := len(procs)
	caps := make([]float64, n)
	if n == 0 {
		return caps
	}

	// Total runnable threads: each compute job spins on every core.
	totalThreads := h.computeJobs * cfg.Cores
	for _, d := range procs {
		t := d.Threads
		if t < 1 {
			t = 1
		}
		totalThreads += t
	}
	eff := h.Efficiency(totalThreads)

	// Build the demand vector in units of cores. A transfer process
	// can exploit at most one core (GridFTP parallelism threads share
	// their process's core); a compute job wants the whole machine.
	demands := make([]float64, 0, n+h.computeJobs)
	weights := make([]float64, 0, n+h.computeJobs)
	overheads := make([]float64, n)
	for i, d := range procs {
		t := d.Threads
		if t < 1 {
			t = 1
		}
		overheads[i] = cfg.StreamOverhead * float64(t)
		rate := d.Rate
		if rate < 0 {
			rate = 0
		}
		dem := rate/cfg.CorePumpRate + overheads[i]
		if dem > 1 {
			dem = 1
		}
		demands = append(demands, dem)
		weights = append(weights, 1)
	}
	for j := 0; j < h.computeJobs; j++ {
		demands = append(demands, float64(cfg.Cores))
		weights = append(weights, cfg.ComputeWeight)
	}

	alloc := waterfill(demands, weights, float64(cfg.Cores))

	total := 0.0
	for i := range procs {
		c := (alloc[i] - overheads[i]) * cfg.CorePumpRate * eff
		if c < 0 {
			c = 0
		}
		caps[i] = c
		total += c
	}

	// The NIC caps the aggregate outgoing rate across all processes
	// and paths; scale everyone down proportionally when it binds.
	if cfg.NICRate > 0 && total > cfg.NICRate {
		scale := cfg.NICRate / total
		for i := range caps {
			caps[i] *= scale
		}
	}
	return caps
}

// RestartTime returns the dead time in seconds for restarting a
// transfer's processes when the host is running the given total number
// of transfer processes (including the restarting transfer's own).
// Restart cost grows with process oversubscription: loading the
// executable, allocating buffers, and spawning threads all contend for
// the same cores.
func (h *Host) RestartTime(totalProcs int) float64 {
	if totalProcs < 1 {
		totalProcs = 1
	}
	over := float64(totalProcs+h.computeJobs)/float64(h.cfg.Cores) - 1
	if over < 0 {
		over = 0
	}
	return h.cfg.RestartBase * (1 + h.cfg.RestartPerLoad*over)
}

// waterfill computes the weighted max-min fair allocation of capacity
// c among demands d with weights w: alloc[i] = min(d[i], w[i]*level)
// with level chosen so the capacity is exhausted, or alloc = d when
// total demand fits.
func waterfill(d, w []float64, c float64) []float64 {
	n := len(d)
	alloc := make([]float64, n)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	// Ascending by the level at which each demand saturates.
	sort.Slice(idx, func(a, b int) bool { return d[idx[a]]/w[idx[a]] < d[idx[b]]/w[idx[b]] })

	remaining := c
	weightSum := 0.0
	for _, i := range idx {
		weightSum += w[i]
	}
	for _, i := range idx {
		if weightSum <= 0 || remaining <= 0 {
			break
		}
		level := remaining / weightSum
		if d[i] <= w[i]*level {
			alloc[i] = d[i]
		} else {
			alloc[i] = w[i] * level
		}
		remaining -= alloc[i]
		weightSum -= w[i]
	}
	return alloc
}
