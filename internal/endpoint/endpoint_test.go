package endpoint

import (
	"math"
	"testing"
	"testing/quick"
)

// testHost is an 8-core host pumping 1.25 GB/s per core.
func testHost() *Host {
	return New(Config{Name: "test", Cores: 8, CorePumpRate: 1.25e9})
}

func TestValidate(t *testing.T) {
	if err := (Config{Cores: 8, CorePumpRate: 1e9}).Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	if err := (Config{CorePumpRate: 1e9}).Validate(); err == nil {
		t.Fatal("zero cores accepted")
	}
	if err := (Config{Cores: 8}).Validate(); err == nil {
		t.Fatal("zero pump rate accepted")
	}
}

func TestNewPanicsOnInvalid(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New with invalid config did not panic")
		}
	}()
	New(Config{})
}

func TestDefaultsApplied(t *testing.T) {
	h := testHost()
	cfg := h.Config()
	if cfg.ComputeWeight != 4 || cfg.CtxSwitchPenalty != 0.05 ||
		cfg.StreamOverhead != 0.001 || cfg.RestartBase != 3 || cfg.RestartPerLoad != 0.35 {
		t.Fatalf("defaults not applied: %+v", cfg)
	}
}

func TestAllocateUncontendedMeetsDemand(t *testing.T) {
	h := testHost()
	// Two processes asking for half a core each on an idle host.
	caps := h.Allocate([]Demand{
		{Threads: 8, Rate: 0.5 * 1.25e9},
		{Threads: 8, Rate: 0.5 * 1.25e9},
	})
	for i, c := range caps {
		if c < 0.45*1.25e9 {
			t.Fatalf("proc %d capped at %v, demand easily fits", i, c)
		}
	}
}

func TestAllocateComputeLoadStarvesTransfers(t *testing.T) {
	h := testHost()
	demand := []Demand{{Threads: 8, Rate: 1.25e9}, {Threads: 8, Rate: 1.25e9}}
	free := h.Allocate(demand)
	h.SetComputeJobs(16)
	loaded := h.Allocate(demand)
	for i := range free {
		if loaded[i] >= free[i]/3 {
			t.Fatalf("proc %d: compute load barely reduced cap: %v -> %v", i, free[i], loaded[i])
		}
	}
}

func TestAllocateMoreProcsClaimMoreUnderLoad(t *testing.T) {
	// The paper's core observation: under external compute load,
	// aggregate transfer throughput grows with the number of
	// processes (up to a point).
	h := testHost()
	h.SetComputeJobs(16)
	sum := func(n int) float64 {
		d := make([]Demand, n)
		for i := range d {
			d[i] = Demand{Threads: 8, Rate: 1.25e9}
		}
		total := 0.0
		for _, c := range h.Allocate(d) {
			total += c
		}
		return total
	}
	s2, s16, s50 := sum(2), sum(16), sum(50)
	if !(s16 > 2*s2) {
		t.Fatalf("16 procs (%v) should far outclaim 2 procs (%v) under load", s16, s2)
	}
	if !(s50 > s16) {
		t.Fatalf("50 procs (%v) should outclaim 16 procs (%v) under load", s50, s16)
	}
}

func TestAllocateOverheadDominatesEventually(t *testing.T) {
	// With enough streams per process, context switching and
	// bookkeeping must bend aggregate capacity back down: this is
	// the decline after the critical point in Figure 1.
	h := testHost()
	sum := func(n int) float64 {
		d := make([]Demand, n)
		for i := range d {
			d[i] = Demand{Threads: 8, Rate: 1.25e9}
		}
		total := 0.0
		for _, c := range h.Allocate(d) {
			total += c
		}
		return total
	}
	peak := sum(8)
	far := sum(512)
	if far >= peak {
		t.Fatalf("512 procs (%v) should pump less than 8 procs (%v)", far, peak)
	}
}

func TestEfficiencyMonotone(t *testing.T) {
	h := testHost()
	if e := h.Efficiency(4); e != 1 {
		t.Fatalf("Efficiency(4) = %v, want 1 (under-subscribed)", e)
	}
	if e := h.Efficiency(8); e != 1 {
		t.Fatalf("Efficiency(8) = %v, want 1", e)
	}
	prev := 1.0
	for n := 8; n <= 4096; n *= 2 {
		e := h.Efficiency(n)
		if e > prev || e <= 0 || e > 1 {
			t.Fatalf("Efficiency(%d) = %v not in (0, %v]", n, e, prev)
		}
		prev = e
	}
}

func TestAllocateNICCap(t *testing.T) {
	h := New(Config{Cores: 8, CorePumpRate: 1.25e9, NICRate: 2e9})
	caps := h.Allocate([]Demand{
		{Threads: 1, Rate: 1.25e9},
		{Threads: 1, Rate: 1.25e9},
		{Threads: 1, Rate: 1.25e9},
	})
	total := 0.0
	for _, c := range caps {
		total += c
	}
	if total > 2.0001e9 {
		t.Fatalf("aggregate %v exceeds NIC rate 2e9", total)
	}
	// Proportional scaling: equal demands stay equal.
	if math.Abs(caps[0]-caps[1]) > 1 || math.Abs(caps[1]-caps[2]) > 1 {
		t.Fatalf("unequal caps for equal demands: %v", caps)
	}
}

func TestAllocateEmptyAndZeroDemands(t *testing.T) {
	h := testHost()
	if caps := h.Allocate(nil); len(caps) != 0 {
		t.Fatalf("Allocate(nil) = %v, want empty", caps)
	}
	caps := h.Allocate([]Demand{{Threads: 0, Rate: -5}})
	if len(caps) != 1 || caps[0] != 0 {
		t.Fatalf("zero demand got cap %v, want 0", caps)
	}
}

func TestAllocateNeverNegative(t *testing.T) {
	h := testHost()
	f := func(jobs uint8, nprocs uint8, threads uint8) bool {
		h.SetComputeJobs(int(jobs % 128))
		n := int(nprocs%64) + 1
		d := make([]Demand, n)
		for i := range d {
			d[i] = Demand{Threads: int(threads), Rate: 1e9}
		}
		for _, c := range h.Allocate(d) {
			if c < 0 || math.IsNaN(c) || math.IsInf(c, 0) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAllocateTotalNeverExceedsMachine(t *testing.T) {
	h := testHost()
	f := func(jobs uint8, nprocs uint8) bool {
		h.SetComputeJobs(int(jobs % 64))
		n := int(nprocs%100) + 1
		d := make([]Demand, n)
		for i := range d {
			d[i] = Demand{Threads: 4, Rate: 2e9}
		}
		total := 0.0
		for _, c := range h.Allocate(d) {
			total += c
		}
		// Total pump can never exceed cores * rate (efficiency <= 1).
		return total <= 8*1.25e9*1.0001
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSetComputeJobsNegative(t *testing.T) {
	h := testHost()
	h.SetComputeJobs(-3)
	if h.ComputeJobs() != 0 {
		t.Fatalf("ComputeJobs() = %d, want 0", h.ComputeJobs())
	}
}

func TestRestartTimeGrowsWithLoad(t *testing.T) {
	h := testHost()
	idle := h.RestartTime(2)
	if idle != 3 {
		t.Fatalf("idle restart = %v, want RestartBase 3", idle)
	}
	h.SetComputeJobs(64)
	loaded := h.RestartTime(2)
	if loaded <= idle {
		t.Fatalf("restart under load (%v) not above idle (%v)", loaded, idle)
	}
	// 64 compute jobs + 2 procs on 8 cores: over = 66/8-1 = 7.25;
	// 3*(1+0.35*7.25) = 10.6s — roughly a third of a 30s epoch,
	// matching the paper's 33%-50% overhead under heavy load.
	if loaded < 8 || loaded > 14 {
		t.Fatalf("restart under 64 jobs = %v, want ~10.6", loaded)
	}
}

func TestRestartTimeMinimumOneProc(t *testing.T) {
	h := testHost()
	if h.RestartTime(0) != h.RestartTime(1) {
		t.Fatal("RestartTime(0) should clamp to one process")
	}
}

func TestWaterfillExactDemandFit(t *testing.T) {
	d := []float64{1, 2, 3}
	w := []float64{1, 1, 1}
	a := waterfill(d, w, 10)
	for i := range d {
		if a[i] != d[i] {
			t.Fatalf("alloc %v, want demands %v met exactly", a, d)
		}
	}
}

func TestWaterfillScarcity(t *testing.T) {
	d := []float64{10, 10}
	w := []float64{1, 1}
	a := waterfill(d, w, 8)
	if math.Abs(a[0]-4) > 1e-9 || math.Abs(a[1]-4) > 1e-9 {
		t.Fatalf("alloc %v, want [4 4]", a)
	}
}

func TestWaterfillWeights(t *testing.T) {
	d := []float64{10, 10}
	w := []float64{3, 1}
	a := waterfill(d, w, 8)
	if math.Abs(a[0]-6) > 1e-9 || math.Abs(a[1]-2) > 1e-9 {
		t.Fatalf("alloc %v, want [6 2]", a)
	}
}

func TestWaterfillSmallDemandReleases(t *testing.T) {
	// A process with a small demand frees capacity for the others.
	d := []float64{0.5, 10, 10}
	w := []float64{1, 1, 1}
	a := waterfill(d, w, 8)
	if a[0] != 0.5 {
		t.Fatalf("small demand allocated %v, want 0.5", a[0])
	}
	if math.Abs(a[1]-3.75) > 1e-9 || math.Abs(a[2]-3.75) > 1e-9 {
		t.Fatalf("alloc %v, want remaining 7.5 split evenly", a)
	}
}

func TestWaterfillConservation(t *testing.T) {
	f := func(seeds []uint8) bool {
		if len(seeds) == 0 {
			return true
		}
		if len(seeds) > 32 {
			seeds = seeds[:32]
		}
		d := make([]float64, len(seeds))
		w := make([]float64, len(seeds))
		totalD := 0.0
		for i, s := range seeds {
			d[i] = float64(s%50) / 10
			w[i] = 1 + float64(s%4)
			totalD += d[i]
		}
		const c = 8.0
		a := waterfill(d, w, c)
		sum := 0.0
		for i := range a {
			if a[i] < -1e-12 || a[i] > d[i]+1e-12 {
				return false // allocation outside [0, demand]
			}
			sum += a[i]
		}
		want := math.Min(totalD, c)
		return math.Abs(sum-want) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
