package endpoint

import "testing"

// benchAllocate measures one scheduling round with n transfer
// processes against 16 compute jobs.
func benchAllocate(b *testing.B, n int) {
	b.Helper()
	h := New(Config{Cores: 8, CorePumpRate: 1.25e9, NICRate: 5e9})
	h.SetComputeJobs(16)
	d := make([]Demand, n)
	for i := range d {
		d[i] = Demand{Threads: 8, Rate: 1e9}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		caps := h.Allocate(d)
		if len(caps) != n {
			b.Fatal("wrong length")
		}
	}
}

func BenchmarkAllocate8Procs(b *testing.B)   { benchAllocate(b, 8) }
func BenchmarkAllocate64Procs(b *testing.B)  { benchAllocate(b, 64) }
func BenchmarkAllocate512Procs(b *testing.B) { benchAllocate(b, 512) }
