package stats

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func TestMean(t *testing.T) {
	if Mean(nil) != 0 {
		t.Fatal("Mean(nil) != 0")
	}
	if got := Mean([]float64{1, 2, 3, 4}); got != 2.5 {
		t.Fatalf("Mean = %v, want 2.5", got)
	}
}

func TestStd(t *testing.T) {
	if Std(nil) != 0 || Std([]float64{5}) != 0 {
		t.Fatal("Std of <2 values should be 0")
	}
	got := Std([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	want := 2.138089935299395 // sample std
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("Std = %v, want %v", got, want)
	}
}

func TestQuantileKnownValues(t *testing.T) {
	xs := []float64{3, 1, 4, 1, 5, 9, 2, 6}
	cases := []struct{ q, want float64 }{
		{0, 1},
		{1, 9},
		{0.5, 3.5},
		{0.25, 1.75},
		{0.75, 5.25},
	}
	for _, c := range cases {
		if got := Quantile(xs, c.q); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
}

func TestQuantileEdge(t *testing.T) {
	if Quantile(nil, 0.5) != 0 {
		t.Fatal("Quantile(nil) != 0")
	}
	if Quantile([]float64{7}, 0.9) != 7 {
		t.Fatal("single-element quantile should return the element")
	}
	if Quantile([]float64{1, 2}, -0.5) != 1 || Quantile([]float64{1, 2}, 1.5) != 2 {
		t.Fatal("out-of-range q should clamp")
	}
}

func TestQuantileDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	Quantile(xs, 0.5)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Fatalf("input mutated: %v", xs)
	}
}

func TestQuantileMonotoneProperty(t *testing.T) {
	f := func(raw []float64, qa, qb float64) bool {
		if len(raw) == 0 {
			return true
		}
		for _, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return true
			}
		}
		qa = math.Abs(math.Mod(qa, 1))
		qb = math.Abs(math.Mod(qb, 1))
		if qa > qb {
			qa, qb = qb, qa
		}
		return Quantile(raw, qa) <= Quantile(raw, qb)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuantileWithinRangeProperty(t *testing.T) {
	f := func(raw []float64, q float64) bool {
		if len(raw) == 0 {
			return true
		}
		for _, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return true
			}
		}
		q = math.Abs(math.Mod(q, 1))
		v := Quantile(raw, q)
		s := make([]float64, len(raw))
		copy(s, raw)
		sort.Float64s(s)
		return v >= s[0] && v <= s[len(s)-1]
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.N != 5 || s.Min != 1 || s.Median != 3 || s.Max != 5 || s.Mean != 3 {
		t.Fatalf("Summarize = %+v", s)
	}
	if s.String() == "" {
		t.Fatal("empty String()")
	}
}

func TestBin(t *testing.T) {
	ts := []float64{0, 1, 2, 10, 11, 25}
	vs := []float64{1, 2, 3, 10, 20, 99}
	bins := Bin(ts, vs, 0, 30, 10)
	if len(bins) != 3 {
		t.Fatalf("got %d bins, want 3", len(bins))
	}
	if bins[0] != 2 {
		t.Fatalf("bin 0 = %v, want 2", bins[0])
	}
	if bins[1] != 15 {
		t.Fatalf("bin 1 = %v, want 15", bins[1])
	}
	if bins[2] != 99 {
		t.Fatalf("bin 2 = %v, want 99", bins[2])
	}
}

func TestBinEmptyBinIsNaN(t *testing.T) {
	bins := Bin([]float64{0}, []float64{5}, 0, 20, 10)
	if !math.IsNaN(bins[1]) {
		t.Fatalf("empty bin = %v, want NaN", bins[1])
	}
}

func TestBinInvalid(t *testing.T) {
	if Bin(nil, nil, 0, 10, 0) != nil {
		t.Fatal("zero width should return nil")
	}
	if Bin(nil, nil, 10, 0, 1) != nil {
		t.Fatal("inverted range should return nil")
	}
}

func TestBinIgnoresOutOfRange(t *testing.T) {
	bins := Bin([]float64{-5, 100}, []float64{1, 2}, 0, 10, 10)
	if !math.IsNaN(bins[0]) {
		t.Fatalf("out-of-range samples were binned: %v", bins)
	}
}

func TestImprovement(t *testing.T) {
	if got := Improvement(10, 2); got != 5 {
		t.Fatalf("Improvement = %v, want 5", got)
	}
	if !math.IsInf(Improvement(1, 0), 1) {
		t.Fatal("Improvement(1,0) should be +Inf")
	}
	if Improvement(0, 0) != 1 {
		t.Fatal("Improvement(0,0) should be 1")
	}
}

func TestArgmaxKey(t *testing.T) {
	if _, ok := ArgmaxKey(nil); ok {
		t.Fatal("ArgmaxKey(nil) reported ok")
	}
	k, ok := ArgmaxKey(map[int]float64{4: 1, 64: 9, 256: 3})
	if !ok || k != 64 {
		t.Fatalf("ArgmaxKey = %d, %v; want 64, true", k, ok)
	}
	// Deterministic tie-break toward the smaller key.
	k, _ = ArgmaxKey(map[int]float64{8: 5, 2: 5})
	if k != 2 {
		t.Fatalf("tie-break gave %d, want 2", k)
	}
}
