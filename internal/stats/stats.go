// Package stats provides the small set of descriptive statistics used
// by the experiment harnesses: quantiles, five-number (boxplot)
// summaries, and time-series binning.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Std returns the sample standard deviation of xs (n-1 denominator),
// or 0 when fewer than two values are given.
func Std(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	sum := 0.0
	for _, x := range xs {
		d := x - m
		sum += d * d
	}
	return math.Sqrt(sum / float64(len(xs)-1))
}

// Quantile returns the q-th quantile of xs (0 <= q <= 1) using linear
// interpolation between order statistics (type 7, the R default). It
// returns 0 for an empty slice and does not modify xs.
func Quantile(xs []float64, q float64) float64 {
	n := len(xs)
	if n == 0 {
		return 0
	}
	if n == 1 {
		return xs[0]
	}
	s := make([]float64, n)
	copy(s, xs)
	sort.Float64s(s)
	if q <= 0 {
		return s[0]
	}
	if q >= 1 {
		return s[n-1]
	}
	pos := q * float64(n-1)
	lo := int(math.Floor(pos))
	frac := pos - float64(lo)
	if lo+1 >= n {
		return s[n-1]
	}
	return s[lo]*(1-frac) + s[lo+1]*frac
}

// Summary is a boxplot five-number summary plus the mean and count.
type Summary struct {
	N                        int
	Min, Q1, Median, Q3, Max float64
	Mean                     float64
}

// Summarize returns the Summary of xs.
func Summarize(xs []float64) Summary {
	return Summary{
		N:      len(xs),
		Min:    Quantile(xs, 0),
		Q1:     Quantile(xs, 0.25),
		Median: Quantile(xs, 0.5),
		Q3:     Quantile(xs, 0.75),
		Max:    Quantile(xs, 1),
		Mean:   Mean(xs),
	}
}

// String implements fmt.Stringer.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d min=%.4g q1=%.4g med=%.4g q3=%.4g max=%.4g mean=%.4g",
		s.N, s.Min, s.Q1, s.Median, s.Q3, s.Max, s.Mean)
}

// Bin divides the time span [t0, t1) into width-sized bins and returns
// the mean of the values whose times fall in each bin. Empty bins
// yield NaN so callers can distinguish "no data" from zero.
func Bin(ts, vs []float64, t0, t1, width float64) []float64 {
	if width <= 0 || t1 <= t0 {
		return nil
	}
	n := int(math.Ceil((t1 - t0) / width))
	sums := make([]float64, n)
	counts := make([]int, n)
	for i, t := range ts {
		if i >= len(vs) || t < t0 || t >= t1 {
			continue
		}
		b := int((t - t0) / width)
		if b >= n {
			b = n - 1
		}
		sums[b] += vs[i]
		counts[b]++
	}
	out := make([]float64, n)
	for i := range out {
		if counts[i] == 0 {
			out[i] = math.NaN()
		} else {
			out[i] = sums[i] / float64(counts[i])
		}
	}
	return out
}

// Improvement returns the ratio of a to b (how many times better a is
// than b), or +Inf when b is zero and a positive, or 1 when both are
// zero.
func Improvement(a, b float64) float64 {
	if b == 0 {
		if a == 0 {
			return 1
		}
		return math.Inf(1)
	}
	return a / b
}

// ArgmaxKey returns the key with the largest value in m; ties break
// toward the smaller key so the result is deterministic. It returns
// 0 and false for an empty map.
func ArgmaxKey(m map[int]float64) (int, bool) {
	if len(m) == 0 {
		return 0, false
	}
	keys := make([]int, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	best := keys[0]
	for _, k := range keys[1:] {
		if m[k] > m[best] {
			best = k
		}
	}
	return best, true
}
