package netem

import (
	"math"
	"testing"

	"dstune/internal/sim"
	"dstune/internal/tcpmodel"
)

// testConfig is a 10 Gb/s, 30 ms path with mild random loss — enough
// that one stream cannot saturate it.
func testConfig() Config {
	return Config{
		Name:       "test",
		Capacity:   1.25e9, // 10 Gb/s
		BaseRTT:    0.03,
		RandomLoss: 1e-5,
		MaxCwnd:    8 << 20,
	}
}

// run advances the path for d virtual seconds and returns the mean
// delivered rate of flow f over the last half of the run.
func run(p *Path, f *Flow, d float64) float64 {
	const dt = 0.05
	steps := int(d / dt)
	half := steps / 2
	var before float64
	for i := 0; i < steps; i++ {
		if i == half {
			before = f.Delivered()
		}
		p.Step(dt)
	}
	return (f.Delivered() - before) / (d - float64(half)*dt)
}

func TestValidate(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
		ok   bool
	}{
		{"valid", testConfig(), true},
		{"zero capacity", Config{BaseRTT: 0.01}, false},
		{"zero rtt", Config{Capacity: 1e9}, false},
		{"negative loss", Config{Capacity: 1e9, BaseRTT: 0.01, RandomLoss: -1}, false},
		{"loss one", Config{Capacity: 1e9, BaseRTT: 0.01, RandomLoss: 1}, false},
	}
	for _, tc := range cases {
		err := tc.cfg.Validate()
		if (err == nil) != tc.ok {
			t.Errorf("%s: Validate() = %v, want ok=%v", tc.name, err, tc.ok)
		}
	}
}

func TestNewPanicsOnInvalid(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New with invalid config did not panic")
		}
	}()
	New(Config{}, sim.NewRNG(1))
}

func TestSingleStreamUnderCapacity(t *testing.T) {
	p := New(testConfig(), sim.NewRNG(1))
	f := p.NewFlow(1, tcpmodel.NewHTCP())
	rate := run(p, f, 120)
	if rate <= 0 {
		t.Fatal("single stream delivered nothing")
	}
	// With random loss and a window cap, one stream must be well
	// below capacity — this is the premise of the whole paper.
	if rate > 0.6*p.Config().Capacity {
		t.Fatalf("single stream rate %v too close to capacity %v", rate, p.Config().Capacity)
	}
}

func TestMoreStreamsMoreThroughput(t *testing.T) {
	rates := map[int]float64{}
	for _, n := range []int{1, 4, 16, 64} {
		p := New(testConfig(), sim.NewRNG(7))
		f := p.NewFlow(n, tcpmodel.NewHTCP())
		rates[n] = run(p, f, 120)
	}
	if !(rates[4] > rates[1] && rates[16] > rates[4]) {
		t.Fatalf("throughput not increasing with streams: %v", rates)
	}
	// Many streams should get close to capacity.
	if rates[64] < 0.8*testConfig().Capacity {
		t.Fatalf("64 streams reached only %v of %v", rates[64], testConfig().Capacity)
	}
}

func TestProportionalSharing(t *testing.T) {
	// A 48-stream flow against a 16-stream flow should take roughly
	// 3x the bandwidth once both saturate the bottleneck.
	p := New(testConfig(), sim.NewRNG(3))
	big := p.NewFlow(48, tcpmodel.NewHTCP())
	small := p.NewFlow(16, tcpmodel.NewHTCP())
	const dt = 0.05
	for i := 0; i < int(240/dt); i++ {
		p.Step(dt)
	}
	b0, s0 := big.Delivered(), small.Delivered()
	for i := 0; i < int(120/dt); i++ {
		p.Step(dt)
	}
	bRate := big.Delivered() - b0
	sRate := small.Delivered() - s0
	ratio := bRate / sRate
	if ratio < 1.8 || ratio > 5 {
		t.Fatalf("48:16 stream share ratio = %v, want roughly 3", ratio)
	}
}

func TestFlowCapRespected(t *testing.T) {
	p := New(testConfig(), sim.NewRNG(5))
	f := p.NewFlow(32, tcpmodel.NewHTCP())
	f.SetCap(1e8)
	rate := run(p, f, 60)
	if rate > 1.02e8 {
		t.Fatalf("delivered %v exceeds cap 1e8", rate)
	}
	if rate < 0.8e8 {
		t.Fatalf("delivered %v far below a cap the flow should reach", rate)
	}
}

func TestSetCapNegativeBlocksFlow(t *testing.T) {
	p := New(testConfig(), sim.NewRNG(5))
	f := p.NewFlow(4, tcpmodel.NewHTCP())
	f.SetCap(-1)
	if !f.Blocked() {
		t.Fatal("flow not blocked")
	}
	for i := 0; i < 200; i++ {
		p.Step(0.05)
	}
	if f.Delivered() != 0 {
		t.Fatalf("blocked flow delivered %v bytes", f.Delivered())
	}
	// Unblocking resumes delivery.
	f.SetCap(0)
	for i := 0; i < 200; i++ {
		p.Step(0.05)
	}
	if f.Delivered() == 0 {
		t.Fatal("unblocked flow still not delivering")
	}
}

func TestCongestionBuildsQueueAndRTT(t *testing.T) {
	cfg := testConfig()
	cfg.RandomLoss = 0 // force congestion as the only signal
	p := New(cfg, sim.NewRNG(9))
	p.NewFlow(64, tcpmodel.NewHTCP())
	base := p.RTT()
	sawCongestion := false
	sawQueue := false
	for i := 0; i < 4000; i++ {
		p.Step(0.05)
		if p.Congested() {
			sawCongestion = true
		}
		if p.QueueBytes() > 0 {
			sawQueue = true
		}
	}
	if !sawQueue {
		t.Fatal("queue never grew under 64 streams with no random loss")
	}
	if !sawCongestion {
		t.Fatal("buffer never filled under 64 streams with no random loss")
	}
	if p.RTT() < base {
		t.Fatalf("effective RTT %v below base %v", p.RTT(), base)
	}
}

func TestAggregateNeverExceedsCapacity(t *testing.T) {
	p := New(testConfig(), sim.NewRNG(11))
	p.NewFlow(128, tcpmodel.NewScalable())
	for i := 0; i < 2000; i++ {
		p.Step(0.05)
		if u := p.Utilization(); u > 1.0001 {
			t.Fatalf("step %d: utilization %v > 1", i, u)
		}
	}
}

func TestRemoveFlow(t *testing.T) {
	p := New(testConfig(), sim.NewRNG(13))
	a := p.NewFlow(4, tcpmodel.NewHTCP())
	b := p.NewFlow(4, tcpmodel.NewHTCP())
	if p.Flows() != 2 {
		t.Fatalf("Flows() = %d, want 2", p.Flows())
	}
	a.Remove()
	a.Remove() // idempotent
	if p.Flows() != 1 {
		t.Fatalf("Flows() after remove = %d, want 1", p.Flows())
	}
	before := a.Delivered()
	for i := 0; i < 100; i++ {
		p.Step(0.05)
	}
	if a.Delivered() != before {
		t.Fatal("removed flow still accumulating bytes")
	}
	if b.Delivered() == 0 {
		t.Fatal("remaining flow made no progress")
	}
}

func TestDeterminism(t *testing.T) {
	runOnce := func() float64 {
		p := New(testConfig(), sim.NewRNG(21))
		f := p.NewFlow(8, tcpmodel.NewHTCP())
		for i := 0; i < 2000; i++ {
			p.Step(0.05)
		}
		return f.Delivered()
	}
	a, b := runOnce(), runOnce()
	if a != b {
		t.Fatalf("same seed, different results: %v vs %v", a, b)
	}
}

func TestSeedsDiffer(t *testing.T) {
	runOnce := func(seed uint64) float64 {
		p := New(testConfig(), sim.NewRNG(seed))
		f := p.NewFlow(8, tcpmodel.NewHTCP())
		for i := 0; i < 2000; i++ {
			p.Step(0.05)
		}
		return f.Delivered()
	}
	if runOnce(1) == runOnce(2) {
		t.Fatal("different seeds produced identical byte counts")
	}
}

func TestStepZeroDTNoop(t *testing.T) {
	p := New(testConfig(), sim.NewRNG(1))
	f := p.NewFlow(2, tcpmodel.NewHTCP())
	p.Step(0)
	p.Step(-1)
	if f.Delivered() != 0 {
		t.Fatal("zero/negative dt delivered bytes")
	}
}

func TestOfferedRateReported(t *testing.T) {
	p := New(testConfig(), sim.NewRNG(1))
	f := p.NewFlow(4, tcpmodel.NewHTCP())
	f.SetCap(1e6)
	for i := 0; i < 1000; i++ {
		p.Step(0.05)
	}
	if f.OfferedRate() <= f.Cap() {
		t.Fatalf("offered %v should exceed the binding cap %v", f.OfferedRate(), f.Cap())
	}
	if f.Rate() > f.Cap()*1.01 {
		t.Fatalf("delivered %v exceeds cap %v", f.Rate(), f.Cap())
	}
}

func TestLossesAccumulate(t *testing.T) {
	p := New(testConfig(), sim.NewRNG(17))
	f := p.NewFlow(16, tcpmodel.NewHTCP())
	run(p, f, 120)
	if f.Losses() == 0 {
		t.Fatal("no losses over 120s on a lossy path")
	}
}

func TestNewFlowMinimumOneStream(t *testing.T) {
	p := New(testConfig(), sim.NewRNG(1))
	f := p.NewFlow(0, tcpmodel.NewHTCP())
	if f.Streams() != 1 {
		t.Fatalf("Streams() = %d, want 1", f.Streams())
	}
}

func TestMeanCwndPositive(t *testing.T) {
	p := New(testConfig(), sim.NewRNG(1))
	f := p.NewFlow(4, tcpmodel.NewHTCP())
	run(p, f, 10)
	if f.meanCwnd() <= 0 {
		t.Fatal("meanCwnd not positive")
	}
	empty := &Flow{}
	if empty.meanCwnd() != 0 {
		t.Fatal("empty flow meanCwnd != 0")
	}
}

func TestShortRTTPathSaturatesWithFewStreams(t *testing.T) {
	// On a short, clean path a handful of streams should reach most
	// of the capacity (the paper's <20ms dedicated-link observation).
	cfg := Config{
		Name:       "lan",
		Capacity:   1.25e9,
		BaseRTT:    0.002,
		RandomLoss: 1e-7,
		MaxCwnd:    8 << 20,
	}
	p := New(cfg, sim.NewRNG(2))
	f := p.NewFlow(4, tcpmodel.NewHTCP())
	rate := run(p, f, 60)
	if rate < 0.85*cfg.Capacity {
		t.Fatalf("4 streams on a clean 2ms path reached only %v of %v", rate, cfg.Capacity)
	}
}

func TestUtilizationFinite(t *testing.T) {
	p := New(testConfig(), sim.NewRNG(1))
	p.NewFlow(8, tcpmodel.NewCUBIC())
	for i := 0; i < 1000; i++ {
		p.Step(0.05)
		if math.IsNaN(p.Utilization()) || math.IsInf(p.Utilization(), 0) {
			t.Fatalf("step %d: utilization not finite", i)
		}
	}
}
