// Package netem emulates a wide-area network path shared by parallel
// TCP streams.
//
// The model is a discrete-time fluid approximation: each stream holds a
// congestion window advanced by a tcpmodel.Algorithm; its offered rate
// is cwnd/RTT, optionally capped by an externally imposed limit (the
// endpoint CPU scheduler in internal/endpoint). All streams of all
// flows share one bottleneck of fixed capacity with a drop-tail buffer:
// when aggregate demand exceeds capacity the queue grows (inflating the
// effective RTT), and when the buffer is full streams suffer congestion
// losses with a per-RTT probability, desynchronized by the random
// source. A base random loss rate applies at all times, which is what
// keeps a single stream from saturating a long path and makes parallel
// streams pay off — the paper's Figure 1 behaviour.
//
// All rates are bytes per second and times are seconds of virtual time.
package netem

import (
	"fmt"
	"math"

	"dstune/internal/sim"
	"dstune/internal/tcpmodel"
)

// Config describes a network path.
type Config struct {
	// Name labels the path in diagnostics (e.g. "ANL->UChicago").
	Name string
	// Capacity is the bottleneck rate in bytes per second.
	Capacity float64
	// BaseRTT is the propagation round-trip time in seconds.
	BaseRTT float64
	// BufferBDP sizes the bottleneck buffer as a multiple of the
	// bandwidth-delay product. Zero selects 1.0.
	BufferBDP float64
	// RandomLoss is the per-packet probability of a non-congestion
	// loss (transmission errors, cross-traffic microbursts).
	RandomLoss float64
	// ShedTarget is the utilization the path aims for when the buffer
	// is full: congestion losses are sized so that the expected
	// window reductions bring aggregate demand down to
	// ShedTarget*Capacity, which drains the queue. Zero selects 0.95.
	// Dropping "just enough" keeps streams desynchronized, which is
	// how an ensemble of streams claims more of the capacity than a
	// single stream can.
	ShedTarget float64
	// MSS is the segment size in bytes; zero selects
	// tcpmodel.DefaultMSS.
	MSS float64
	// MaxCwnd caps each stream's window in bytes (the socket buffer
	// limit); zero means uncapped.
	MaxCwnd float64
}

// withDefaults returns cfg with zero fields replaced by defaults.
func (c Config) withDefaults() Config {
	if c.BufferBDP == 0 {
		c.BufferBDP = 1
	}
	if c.ShedTarget == 0 {
		c.ShedTarget = 0.95
	}
	if c.MSS == 0 {
		c.MSS = tcpmodel.DefaultMSS
	}
	return c
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	if c.Capacity <= 0 {
		return fmt.Errorf("netem: capacity must be positive, got %v", c.Capacity)
	}
	if c.BaseRTT <= 0 {
		return fmt.Errorf("netem: base RTT must be positive, got %v", c.BaseRTT)
	}
	if c.RandomLoss < 0 || c.RandomLoss >= 1 {
		return fmt.Errorf("netem: random loss %v outside [0,1)", c.RandomLoss)
	}
	return nil
}

// Path is one bottleneck link carrying any number of flows.
type Path struct {
	cfg    Config
	buffer float64 // bytes
	queue  float64 // bytes currently queued
	rng    *sim.RNG
	flows  []*Flow

	lastTotal     float64 // aggregate delivered rate, last step
	lastCongested bool
}

// New returns a path for cfg, drawing randomness from rng. It panics if
// cfg is invalid; call Validate first for error handling.
func New(cfg Config, rng *sim.RNG) *Path {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	cfg = cfg.withDefaults()
	return &Path{
		cfg:    cfg,
		buffer: cfg.BufferBDP * cfg.Capacity * cfg.BaseRTT,
		rng:    rng,
	}
}

// Config returns the path's configuration (with defaults applied).
func (p *Path) Config() Config { return p.cfg }

// RTT returns the current effective round-trip time: propagation plus
// queueing delay.
func (p *Path) RTT() float64 { return p.cfg.BaseRTT + p.queue/p.cfg.Capacity }

// Utilization returns the delivered fraction of capacity in the last
// step.
func (p *Path) Utilization() float64 { return p.lastTotal / p.cfg.Capacity }

// Congested reports whether the buffer was full in the last step.
func (p *Path) Congested() bool { return p.lastCongested }

// QueueBytes returns the bytes currently queued at the bottleneck.
func (p *Path) QueueBytes() float64 { return p.queue }

// Flows returns the number of flows attached to the path.
func (p *Path) Flows() int { return len(p.flows) }

// stream is one TCP connection within a flow.
type stream struct {
	tcp      tcpmodel.Stream
	rttTimer float64 // time accumulated toward the next window update
	cooldown float64 // time remaining during which further losses are ignored
	rate     float64 // delivered rate, last step
}

// Flow is a group of streams managed as one unit: one transfer process
// in the paper's terms (a concurrency unit running `parallelism`
// streams). The endpoint scheduler caps a flow's aggregate rate.
type Flow struct {
	path *Path
	alg  tcpmodel.Algorithm
	strs []stream

	cap       float64 // aggregate rate cap; 0 = unlimited
	offered   float64 // window-limited desire before the cap, last step
	rate      float64 // delivered aggregate rate, last step
	delivered float64 // cumulative bytes
	removed   bool
}

// NewFlow attaches a flow of n streams driven by alg to the path. The
// streams start in slow start with slightly jittered initial windows so
// that they do not move in lockstep.
func (p *Path) NewFlow(n int, alg tcpmodel.Algorithm) *Flow {
	if n < 1 {
		n = 1
	}
	f := &Flow{path: p, alg: alg, strs: make([]stream, n)}
	for i := range f.strs {
		st := tcpmodel.NewStream(p.cfg.MSS, p.cfg.MaxCwnd)
		st.Cwnd = p.rng.Jitter(st.Cwnd, 0.3)
		f.strs[i] = stream{tcp: st, rttTimer: p.rng.Float64() * p.cfg.BaseRTT}
	}
	p.flows = append(p.flows, f)
	return f
}

// Remove detaches the flow from its path. Removing twice is a no-op.
func (f *Flow) Remove() {
	if f.removed {
		return
	}
	f.removed = true
	flows := f.path.flows
	for i, g := range flows {
		if g == f {
			f.path.flows = append(flows[:i], flows[i+1:]...)
			return
		}
	}
}

// SetCap imposes an aggregate rate limit in bytes per second on the
// flow: zero removes the limit and a negative value blocks the flow
// entirely (an application-limited sender with nothing to send, e.g. a
// transfer process waiting on a file request).
func (f *Flow) SetCap(c float64) { f.cap = c }

// Cap returns the current aggregate rate limit (0 = unlimited,
// negative = blocked).
func (f *Flow) Cap() float64 { return f.cap }

// Blocked reports whether the flow is fully blocked.
func (f *Flow) Blocked() bool { return f.cap < 0 }

// OfferedRate returns the flow's window-limited desired rate before
// capping, from the last step. The endpoint scheduler uses this as the
// flow's CPU demand signal.
func (f *Flow) OfferedRate() float64 { return f.offered }

// Rate returns the delivered aggregate rate from the last step.
func (f *Flow) Rate() float64 { return f.rate }

// Delivered returns the cumulative bytes delivered by the flow.
func (f *Flow) Delivered() float64 { return f.delivered }

// Streams returns the number of streams in the flow.
func (f *Flow) Streams() int { return len(f.strs) }

// Losses returns the total congestion events across the flow's
// streams.
func (f *Flow) Losses() uint64 {
	var n uint64
	for i := range f.strs {
		n += f.strs[i].tcp.Losses
	}
	return n
}

// meanCwnd returns the average congestion window, for diagnostics.
func (f *Flow) meanCwnd() float64 {
	if len(f.strs) == 0 {
		return 0
	}
	var sum float64
	for i := range f.strs {
		sum += f.strs[i].tcp.Cwnd
	}
	return sum / float64(len(f.strs))
}

// minSubstep bounds how finely Step subdivides time, in seconds.
const minSubstep = 0.001

// Step advances the path by dt seconds: computes offered rates,
// resolves contention at the bottleneck, delivers bytes, applies
// losses, and grows windows. Internally the interval is subdivided to
// roughly half the current RTT so that window growth and loss feedback
// interleave at the cadence real TCP would see, even when the caller's
// step is much coarser than the RTT.
func (p *Path) Step(dt float64) {
	if dt <= 0 {
		return
	}
	sub := p.RTT() / 2
	if sub < minSubstep {
		sub = minSubstep
	}
	if sub > dt {
		sub = dt
	}
	n := int(math.Ceil(dt/sub - 1e-9))
	if n < 1 {
		n = 1
	}
	h := dt / float64(n)
	for i := 0; i < n; i++ {
		p.step(h)
	}
}

// step advances the path by one substep of h seconds.
func (p *Path) step(dt float64) {
	rtt := p.RTT()

	// Phase 1: offered rates, flow caps.
	total := 0.0
	for _, f := range p.flows {
		off := 0.0
		for i := range f.strs {
			off += f.strs[i].tcp.Rate(rtt)
		}
		f.offered = off
		capped := off
		switch {
		case f.cap < 0:
			capped = 0
		case f.cap > 0 && capped > f.cap:
			capped = f.cap
		}
		// Stash the capped aggregate in rate temporarily; phase 2
		// rescales it into the delivered rate.
		f.rate = capped
		total += capped
	}

	// Phase 2: bottleneck contention and queue dynamics.
	deliverFrac := 1.0
	if total > p.cfg.Capacity {
		deliverFrac = p.cfg.Capacity / total
	}
	p.queue += (total - p.cfg.Capacity) * dt
	congested := false
	if p.queue >= p.buffer {
		p.queue = p.buffer
		congested = true
	}
	if p.queue < 0 {
		p.queue = 0
	}
	p.lastCongested = congested

	// Per-stream congestion-loss probability for this step. When the
	// buffer is full we size the probability so that the expected
	// aggregate window reduction sheds the overload: a loss cuts a
	// stream's rate by roughly (1-beta) with beta ~ 0.7 for the
	// high-speed algorithms, so p = shed / (0.3 * total) removes
	// about `shed` bytes/s of demand in expectation while leaving
	// most streams untouched — losses stay desynchronized.
	const meanDecrease = 0.3
	pCongStep := 0.0
	if congested && total > 0 {
		shed := total - p.cfg.ShedTarget*p.cfg.Capacity
		if shed > 0 {
			pCongStep = shed / (meanDecrease * total)
			if pCongStep > 0.9 {
				pCongStep = 0.9
			}
		}
	}

	// Phase 3: delivery, losses, and window evolution.
	delivered := 0.0
	for _, f := range p.flows {
		scale := 1.0
		if f.offered > 0 {
			scale = f.rate / f.offered // cap scaling
		}
		flowRate := 0.0
		for i := range f.strs {
			s := &f.strs[i]
			rate := s.tcp.Rate(rtt) * scale * deliverFrac
			s.rate = rate
			flowRate += rate
			f.delivered += rate * dt

			s.tcp.SinceLoss += dt
			s.tcp.ObserveRTT(rtt)
			s.cooldown -= dt

			// Random loss scales with packets sent this step. The
			// per-substep expected count is small, so the linear
			// approximation to 1-(1-p)^n is accurate and avoids a
			// transcendental call in the hot loop.
			pkts := rate * dt / p.cfg.MSS
			pLoss := pCongStep
			if p.cfg.RandomLoss > 0 && pkts > 0 {
				pRand := pkts * p.cfg.RandomLoss
				if pRand > 0.5 {
					pRand = 0.5
				}
				pLoss = 1 - (1-pLoss)*(1-pRand)
			}

			if pLoss > 0 && s.cooldown <= 0 && p.rng.Bernoulli(pLoss) {
				f.alg.OnLoss(&s.tcp)
				// TCP reacts at most once per RTT; when the step is
				// coarser than the RTT, at most once per two steps so
				// short-RTT paths are not cut on every step.
				s.cooldown = math.Max(rtt, 2*dt)
				s.rttTimer = 0
				continue
			}
			s.rttTimer += dt
			for s.rttTimer >= rtt {
				f.alg.OnRTT(&s.tcp, rtt)
				s.rttTimer -= rtt
			}
		}
		f.rate = flowRate
		delivered += flowRate
	}
	p.lastTotal = delivered
}
