package netem

import (
	"testing"

	"dstune/internal/sim"
	"dstune/internal/tcpmodel"
)

// benchPath advances a path with n streams for b.N steps of 100 ms.
func benchPath(b *testing.B, n int) {
	b.Helper()
	p := New(Config{
		Capacity:   5e9,
		BaseRTT:    0.012,
		RandomLoss: 5e-6,
		MaxCwnd:    4 << 20,
	}, sim.NewRNG(1))
	f := p.NewFlow(n, tcpmodel.NewHTCP())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Step(0.1)
	}
	if f.Delivered() <= 0 {
		b.Fatal("no progress")
	}
	b.ReportMetric(float64(n)*float64(b.N), "stream-steps")
}

func BenchmarkPathStep16Streams(b *testing.B)  { benchPath(b, 16) }
func BenchmarkPathStep128Streams(b *testing.B) { benchPath(b, 128) }
func BenchmarkPathStep512Streams(b *testing.B) { benchPath(b, 512) }

// BenchmarkPathStepManyFlows exercises the multi-flow bookkeeping: 64
// single-stream flows (the ext.tfr=64 shape).
func BenchmarkPathStepManyFlows(b *testing.B) {
	p := New(Config{
		Capacity:   5e9,
		BaseRTT:    0.012,
		RandomLoss: 5e-6,
		MaxCwnd:    4 << 20,
	}, sim.NewRNG(2))
	for i := 0; i < 64; i++ {
		p.NewFlow(1, tcpmodel.NewHTCP())
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Step(0.1)
	}
}
