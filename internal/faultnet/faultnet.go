// Package faultnet injects deterministic network faults for testing
// the resilience of the real-socket transfer path without real WAN
// flakiness. It wraps dials, listeners, and connections with three
// seeded failure modes:
//
//   - dial refusal: a configurable fraction of Dial (or Accept) calls
//     fail with a syscall.ECONNREFUSED-wrapped error;
//   - mid-stream reset: a connection aborts with
//     syscall.ECONNRESET-wrapped errors after carrying a configured
//     number of bytes (reads plus writes), sending a real TCP RST to
//     the peer where the platform allows it;
//   - added latency: each successful dial or accept sleeps a fixed
//     extra setup delay.
//
// All randomness comes from one seeded PRNG per Injector, so a test
// that fixes Config.Seed sees the exact same fault schedule on every
// run.
package faultnet

import (
	"fmt"
	"math/rand"
	"net"
	"sync"
	"syscall"
	"time"

	"dstune/internal/obs"
)

// Config selects the faults an Injector produces.
type Config struct {
	// Seed drives the fault schedule; the same seed yields the same
	// schedule.
	Seed uint64
	// DialFailProb is the probability in [0, 1] that a Dial (or an
	// accepted connection, for listeners) is refused.
	DialFailProb float64
	// ResetAfterBytes, when positive, aborts every connection after it
	// has carried this many bytes (reads plus writes combined).
	ResetAfterBytes int64
	// Latency is an extra setup delay added to each successful dial or
	// accept.
	Latency time.Duration
	// OnReset, when non-nil, is invoked with the running reset count
	// each time the injector aborts a connection mid-stream — the
	// eviction hook tests use to synchronize with a transfer client
	// dropping the dead stripe from its warm pool. It is called
	// outside the injector's lock, from the goroutine whose read or
	// write tripped the reset.
	OnReset func(total int)
	// Obs, when non-nil, receives a FaultInjected event and a
	// dstune_faults_injected_total increment for every injected dial
	// refusal and reset. Nil disables observation.
	Obs *obs.Observer
}

// Injector produces faulty dials and listeners according to a Config.
// It is safe for concurrent use.
type Injector struct {
	cfg Config

	mu      sync.Mutex
	rng     *rand.Rand
	dials   int
	refused int
	resets  int
}

// New returns an Injector for cfg.
func New(cfg Config) *Injector {
	return &Injector{cfg: cfg, rng: rand.New(rand.NewSource(int64(cfg.Seed)))}
}

// refuse rolls the seeded dice for one dial or accept.
func (in *Injector) refuse() bool {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.dials++
	if in.cfg.DialFailProb > 0 && in.rng.Float64() < in.cfg.DialFailProb {
		in.refused++
		return true
	}
	return false
}

// noteReset records one injected connection reset against addr and
// fires the configured eviction hook.
func (in *Injector) noteReset(addr string) {
	in.mu.Lock()
	in.resets++
	total := in.resets
	in.mu.Unlock()
	in.cfg.Obs.FaultInjected(obs.FaultReset, addr)
	if in.cfg.OnReset != nil {
		in.cfg.OnReset(total)
	}
}

// Dials returns the number of dial/accept attempts seen so far.
func (in *Injector) Dials() int { in.mu.Lock(); defer in.mu.Unlock(); return in.dials }

// Refused returns the number of injected dial refusals so far.
func (in *Injector) Refused() int { in.mu.Lock(); defer in.mu.Unlock(); return in.refused }

// Resets returns the number of injected mid-stream resets so far.
func (in *Injector) Resets() int { in.mu.Lock(); defer in.mu.Unlock(); return in.resets }

// Dial dials addr like net.DialTimeout, subject to the injector's
// faults. Refused dials return an error wrapping
// syscall.ECONNREFUSED without touching the network.
func (in *Injector) Dial(network, addr string, timeout time.Duration) (net.Conn, error) {
	if in.refuse() {
		in.cfg.Obs.FaultInjected(obs.FaultDialRefusal, addr)
		return nil, fmt.Errorf("faultnet: injected dial refusal to %s: %w", addr, syscall.ECONNREFUSED)
	}
	if in.cfg.Latency > 0 {
		time.Sleep(in.cfg.Latency)
	}
	conn, err := net.DialTimeout(network, addr, timeout)
	if err != nil {
		return nil, err
	}
	return in.wrap(conn), nil
}

// Listen wraps ln so that accepted connections carry the injector's
// faults: refused accepts are closed immediately (the peer sees the
// connection drop), surviving ones reset mid-stream per the config.
func (in *Injector) Listen(ln net.Listener) net.Listener {
	return &listener{Listener: ln, in: in}
}

// wrap attaches mid-stream reset injection to conn when configured.
func (in *Injector) wrap(conn net.Conn) net.Conn {
	if in.cfg.ResetAfterBytes <= 0 {
		return conn
	}
	return &resetConn{Conn: conn, in: in, budget: in.cfg.ResetAfterBytes}
}

// listener is a fault-injecting net.Listener.
type listener struct {
	net.Listener
	in *Injector
}

// Accept implements net.Listener. Injected refusals close the
// accepted connection and keep accepting, so the listener's owner
// never sees a spurious accept error.
func (l *listener) Accept() (net.Conn, error) {
	for {
		conn, err := l.Listener.Accept()
		if err != nil {
			return nil, err
		}
		if l.in.refuse() {
			l.in.cfg.Obs.FaultInjected(obs.FaultDialRefusal, conn.RemoteAddr().String())
			abort(conn)
			continue
		}
		if l.in.cfg.Latency > 0 {
			time.Sleep(l.in.cfg.Latency)
		}
		return l.in.wrap(conn), nil
	}
}

// resetConn aborts after carrying budget bytes.
type resetConn struct {
	net.Conn
	in *Injector

	mu     sync.Mutex
	budget int64
	reset  bool
}

// spend consumes n bytes of the reset budget and reports whether the
// connection is still alive.
func (c *resetConn) spend(n int) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.reset {
		return false
	}
	c.budget -= int64(n)
	if c.budget <= 0 {
		c.reset = true
		c.in.noteReset(c.Conn.RemoteAddr().String())
		abort(c.Conn)
		return false
	}
	return true
}

// errReset is what both ends of an injected reset observe.
func errReset() error {
	return fmt.Errorf("faultnet: injected connection reset: %w", syscall.ECONNRESET)
}

// Read implements net.Conn.
func (c *resetConn) Read(p []byte) (int, error) {
	c.mu.Lock()
	dead := c.reset
	c.mu.Unlock()
	if dead {
		return 0, errReset()
	}
	n, err := c.Conn.Read(p)
	if !c.spend(n) {
		return n, errReset()
	}
	return n, err
}

// Write implements net.Conn.
func (c *resetConn) Write(p []byte) (int, error) {
	c.mu.Lock()
	dead := c.reset
	c.mu.Unlock()
	if dead {
		return 0, errReset()
	}
	n, err := c.Conn.Write(p)
	if !c.spend(n) {
		return n, errReset()
	}
	return n, err
}

// abort closes conn so the peer sees an RST rather than a clean FIN
// where the platform allows it (SO_LINGER 0 on TCP).
func abort(conn net.Conn) {
	if tc, ok := conn.(*net.TCPConn); ok {
		tc.SetLinger(0)
	}
	conn.Close()
}

// Interface conformance checks.
var (
	_ net.Conn     = (*resetConn)(nil)
	_ net.Listener = (*listener)(nil)
)
