package faultnet

import (
	"errors"
	"io"
	"net"
	"syscall"
	"testing"
	"time"
)

// echoServer accepts one connection at a time and discards its bytes.
func discardServer(t *testing.T) net.Listener {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func() {
				defer conn.Close()
				io.Copy(io.Discard, conn)
			}()
		}
	}()
	return ln
}

func TestDialRefusalDeterministic(t *testing.T) {
	ln := discardServer(t)
	pattern := func(seed uint64) []bool {
		in := New(Config{Seed: seed, DialFailProb: 0.5})
		var out []bool
		for i := 0; i < 32; i++ {
			conn, err := in.Dial("tcp", ln.Addr().String(), time.Second)
			if err != nil {
				if !errors.Is(err, syscall.ECONNREFUSED) {
					t.Fatalf("refusal does not wrap ECONNREFUSED: %v", err)
				}
				out = append(out, false)
				continue
			}
			conn.Close()
			out = append(out, true)
		}
		return out
	}
	a, b := pattern(7), pattern(7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at dial %d", i)
		}
	}
	c := pattern(8)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical schedules")
	}
	in := New(Config{Seed: 7, DialFailProb: 0.5})
	for i := 0; i < 32; i++ {
		if conn, err := in.Dial("tcp", ln.Addr().String(), time.Second); err == nil {
			conn.Close()
		}
	}
	if in.Dials() != 32 {
		t.Fatalf("Dials = %d, want 32", in.Dials())
	}
	if in.Refused() == 0 || in.Refused() == 32 {
		t.Fatalf("Refused = %d, want a mix at p=0.5", in.Refused())
	}
}

func TestResetAfterBytes(t *testing.T) {
	ln := discardServer(t)
	in := New(Config{ResetAfterBytes: 4096})
	conn, err := in.Dial("tcp", ln.Addr().String(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	buf := make([]byte, 1024)
	var sent int
	var werr error
	for i := 0; i < 100; i++ {
		n, err := conn.Write(buf)
		sent += n
		if err != nil {
			werr = err
			break
		}
	}
	if werr == nil {
		t.Fatalf("no reset after %d bytes", sent)
	}
	if !errors.Is(werr, syscall.ECONNRESET) {
		t.Fatalf("reset does not wrap ECONNRESET: %v", werr)
	}
	if sent < 4096 || sent > 8192 {
		t.Fatalf("reset after %d bytes, configured 4096", sent)
	}
	if in.Resets() != 1 {
		t.Fatalf("Resets = %d, want 1", in.Resets())
	}
	// The connection stays dead.
	if _, err := conn.Write(buf); !errors.Is(err, syscall.ECONNRESET) {
		t.Fatalf("post-reset write: %v", err)
	}
}

func TestOnResetHookFires(t *testing.T) {
	ln := discardServer(t)
	var totals []int
	in := New(Config{
		ResetAfterBytes: 2048,
		OnReset:         func(total int) { totals = append(totals, total) },
	})
	buf := make([]byte, 1024)
	for round := 1; round <= 3; round++ {
		conn, err := in.Dial("tcp", ln.Addr().String(), time.Second)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 100; i++ {
			if _, err := conn.Write(buf); err != nil {
				break
			}
		}
		conn.Close()
	}
	if len(totals) != 3 {
		t.Fatalf("OnReset fired %d times, want 3 (totals %v)", len(totals), totals)
	}
	for i, total := range totals {
		if total != i+1 {
			t.Fatalf("OnReset totals %v, want running count 1,2,3", totals)
		}
	}
	if in.Resets() != 3 {
		t.Fatalf("Resets = %d, want 3", in.Resets())
	}
}

func TestListenerInjectsFaults(t *testing.T) {
	inner, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	in := New(Config{Seed: 3, DialFailProb: 0.5})
	ln := in.Listen(inner)
	defer ln.Close()
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func() {
				defer conn.Close()
				io.Copy(io.Discard, conn)
			}()
		}
	}()
	// Refused accepts surface to the client as dropped connections:
	// the dial succeeds (the kernel completes the handshake) but the
	// first read fails. Count survivors via a write+read round trip.
	dropped := 0
	for i := 0; i < 16; i++ {
		conn, err := net.DialTimeout("tcp", inner.Addr().String(), time.Second)
		if err != nil {
			dropped++
			continue
		}
		conn.SetReadDeadline(time.Now().Add(200 * time.Millisecond))
		if _, err := conn.Read(make([]byte, 1)); err != io.EOF {
			// RST or timeout: treat non-EOF as the injected drop;
			// surviving conns block until deadline since the server
			// never writes.
			var ne net.Error
			if !(errors.As(err, &ne) && ne.Timeout()) {
				dropped++
			}
		}
		conn.Close()
	}
	if in.Refused() == 0 {
		t.Fatal("listener refused nothing at p=0.5")
	}
	if dropped == 0 {
		t.Fatalf("no client-visible drops (injector refused %d)", in.Refused())
	}
}

func TestLatency(t *testing.T) {
	ln := discardServer(t)
	in := New(Config{Latency: 50 * time.Millisecond})
	start := time.Now()
	conn, err := in.Dial("tcp", ln.Addr().String(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	conn.Close()
	if d := time.Since(start); d < 50*time.Millisecond {
		t.Fatalf("dial took %v, configured +50ms", d)
	}
}
