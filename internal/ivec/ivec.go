// Package ivec holds the small integer-vector helpers shared by the
// search and tuning packages: the tuned parameter vectors are plain
// []int values that get cloned, compared, and lifted to float64 in
// many places, and keeping one copy of those helpers keeps their
// semantics (fresh allocations, length-sensitive equality) uniform.
package ivec

// Clone returns a fresh copy of x. Clone(nil) returns an empty,
// non-nil slice, so callers can mutate the result unconditionally.
func Clone(x []int) []int {
	out := make([]int, len(x))
	copy(out, x)
	return out
}

// Equal reports whether a and b have the same length and elements.
func Equal(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// ToFloat converts x to float64 elementwise.
func ToFloat(x []int) []float64 {
	out := make([]float64, len(x))
	for i, v := range x {
		out[i] = float64(v)
	}
	return out
}
