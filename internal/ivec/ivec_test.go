package ivec

import "testing"

func TestClone(t *testing.T) {
	x := []int{1, 2, 3}
	c := Clone(x)
	c[0] = 9
	if x[0] != 1 {
		t.Fatal("Clone shares backing storage")
	}
	if got := Clone(nil); got == nil || len(got) != 0 {
		t.Fatalf("Clone(nil) = %#v, want empty non-nil slice", got)
	}
}

func TestEqual(t *testing.T) {
	cases := []struct {
		a, b []int
		want bool
	}{
		{nil, nil, true},
		{[]int{1}, nil, false},
		{[]int{1, 2}, []int{1, 2}, true},
		{[]int{1, 2}, []int{2, 1}, false},
		{[]int{1, 2}, []int{1, 2, 3}, false},
	}
	for _, tc := range cases {
		if got := Equal(tc.a, tc.b); got != tc.want {
			t.Errorf("Equal(%v, %v) = %v, want %v", tc.a, tc.b, got, tc.want)
		}
	}
}

func TestToFloat(t *testing.T) {
	got := ToFloat([]int{1, -2})
	if len(got) != 2 || got[0] != 1 || got[1] != -2 {
		t.Fatalf("ToFloat = %v", got)
	}
}
