package directsearch

import (
	"fmt"
	"sort"

	"dstune/internal/ivec"
)

// NMConfig parameterizes Nelder–Mead search. The paper sets the
// customary coefficients R=1, E=2, C=0.5, S=0.5.
type NMConfig struct {
	// R, E, C, S are the reflection, expansion, contraction, and
	// shrink coefficients. Zeros select 1, 2, 0.5, 0.5.
	R, E, C, S float64
	// InitStep is the offset used to build the initial simplex around
	// the starting point; zero selects 8 (comparable to the paper's
	// compass lambda, giving the "large steps in the beginning" the
	// paper observes for nm-tuner).
	InitStep float64
	// MaxEvals caps the number of objective evaluations as a safety
	// net against cycling on a noisy objective; zero selects 10000.
	MaxEvals int
}

// withDefaults returns cfg with zero fields replaced by defaults.
func (c NMConfig) withDefaults() NMConfig {
	if c.R == 0 {
		c.R = 1
	}
	if c.E == 0 {
		c.E = 2
	}
	if c.C == 0 {
		c.C = 0.5
	}
	if c.S == 0 {
		c.S = 0.5
	}
	if c.InitStep == 0 {
		c.InitStep = 8
	}
	if c.MaxEvals == 0 {
		c.MaxEvals = 10000
	}
	return c
}

// nmPhase is the state of the Nelder–Mead machine between
// evaluations.
type nmPhase int

const (
	nmInit nmPhase = iota
	nmReflect
	nmExpand
	nmContract
	nmShrink
	nmDone
)

// vertex is one simplex vertex with its observed value.
type vertex struct {
	x []int
	f float64
}

// NelderMead implements Algorithm 3's inner NELDER-MEAD procedure: a
// simplex of m+1 integer vertices navigated by rounded reflection,
// expansion, contraction, and shrink operations (fBnd applied after
// each), maximizing the objective. The search terminates when the
// simplex degenerates to a single point.
type NelderMead struct {
	box Box
	cfg NMConfig

	verts []vertex
	phase nmPhase

	initIdx   int // next vertex to evaluate during nmInit
	shrinkIdx int // next vertex to evaluate during nmShrink
	centroid  []float64
	xr        []int // reflection point
	fr        float64
	xe        []int // expansion point
	xc        []int // contraction point

	pend  pending
	best  best
	evals int
}

// NewNelderMead returns a Nelder–Mead search whose initial simplex is
// start plus one vertex offset by InitStep along each dimension, all
// clamped to box.
func NewNelderMead(start []int, box Box, cfg NMConfig) *NelderMead {
	nm := &NelderMead{box: box, cfg: cfg.withDefaults()}
	m := box.Dim()
	s := box.ClampInt(start)
	nm.verts = make([]vertex, m+1)
	nm.verts[0] = vertex{x: s}
	for j := 0; j < m; j++ {
		x := ivec.ToFloat(s)
		x[j] += nm.cfg.InitStep
		v := box.Clamp(x)
		if ivec.Equal(v, s) {
			// Offset collapsed against the upper bound; go the other
			// way so the simplex is not born degenerate.
			x[j] = float64(s[j]) - nm.cfg.InitStep
			v = box.Clamp(x)
		}
		nm.verts[j+1] = vertex{x: v}
	}
	return nm
}

// Phase returns a short name for the current phase, for diagnostics.
func (nm *NelderMead) Phase() string {
	switch nm.phase {
	case nmInit:
		return "init"
	case nmReflect:
		return "reflect"
	case nmExpand:
		return "expand"
	case nmContract:
		return "contract"
	case nmShrink:
		return "shrink"
	}
	return "done"
}

// parseNMPhase inverts Phase.
func parseNMPhase(s string) (nmPhase, error) {
	switch s {
	case "init":
		return nmInit, nil
	case "reflect":
		return nmReflect, nil
	case "expand":
		return nmExpand, nil
	case "contract":
		return nmContract, nil
	case "shrink":
		return nmShrink, nil
	case "done":
		return nmDone, nil
	}
	return 0, fmt.Errorf("directsearch: unknown Nelder-Mead phase %q", s)
}

// degenerate reports whether all vertices coincide.
func (nm *NelderMead) degenerate() bool {
	for _, v := range nm.verts[1:] {
		if !ivec.Equal(v.x, nm.verts[0].x) {
			return false
		}
	}
	return true
}

// startIteration orders the simplex and proposes the reflection point,
// or finishes when the simplex has degenerated.
func (nm *NelderMead) startIteration() {
	if nm.degenerate() {
		nm.phase = nmDone
		return
	}
	// Order best-first: f0 >= f1 >= ... >= fm (maximizing).
	sort.SliceStable(nm.verts, func(i, j int) bool { return nm.verts[i].f > nm.verts[j].f })
	m := len(nm.verts) - 1
	// Centroid of all vertices except the worst.
	nm.centroid = make([]float64, nm.box.Dim())
	for _, v := range nm.verts[:m] {
		for i, c := range v.x {
			nm.centroid[i] += float64(c)
		}
	}
	for i := range nm.centroid {
		nm.centroid[i] /= float64(m)
	}
	// Reflect: xr = centroid + R*(centroid - worst).
	worst := nm.verts[m].x
	x := make([]float64, len(nm.centroid))
	for i := range x {
		x[i] = nm.centroid[i] + nm.cfg.R*(nm.centroid[i]-float64(worst[i]))
	}
	nm.xr = nm.box.Clamp(x)
	nm.phase = nmReflect
}

// replaceWorst swaps the worst vertex for (x, f) and begins the next
// iteration.
func (nm *NelderMead) replaceWorst(x []int, f float64) {
	nm.verts[len(nm.verts)-1] = vertex{x: ivec.Clone(x), f: f}
	nm.startIteration()
}

// proposeContract computes the contraction point per the paper: toward
// the better of the worst vertex and the reflection point.
func (nm *NelderMead) proposeContract() {
	worst := nm.verts[len(nm.verts)-1]
	xt := ivec.ToFloat(worst.x)
	if nm.fr >= worst.f {
		xt = ivec.ToFloat(nm.xr)
	}
	x := make([]float64, len(nm.centroid))
	for i := range x {
		x[i] = nm.centroid[i] + nm.cfg.C*(xt[i]-nm.centroid[i])
	}
	nm.xc = nm.box.Clamp(x)
	nm.phase = nmContract
}

// beginShrink moves every vertex except the best toward the best and
// schedules their re-evaluation.
func (nm *NelderMead) beginShrink() {
	x0 := nm.verts[0].x
	for j := 1; j < len(nm.verts); j++ {
		x := make([]float64, len(x0))
		for i := range x {
			x[i] = float64(x0[i]) + nm.cfg.S*(float64(nm.verts[j].x[i])-float64(x0[i]))
		}
		nm.verts[j].x = nm.box.Clamp(x)
	}
	nm.shrinkIdx = 1
	nm.phase = nmShrink
}

// Suggest implements Searcher.
func (nm *NelderMead) Suggest() ([]int, bool) {
	if nm.phase == nmDone {
		return nil, true
	}
	if nm.pend.set {
		return ivec.Clone(nm.pend.x), false
	}
	if nm.evals >= nm.cfg.MaxEvals {
		nm.phase = nmDone
		return nil, true
	}
	switch nm.phase {
	case nmInit:
		nm.pend.propose(nm.verts[nm.initIdx].x)
	case nmReflect:
		nm.pend.propose(nm.xr)
	case nmExpand:
		nm.pend.propose(nm.xe)
	case nmContract:
		nm.pend.propose(nm.xc)
	case nmShrink:
		nm.pend.propose(nm.verts[nm.shrinkIdx].x)
	}
	return ivec.Clone(nm.pend.x), false
}

// Observe implements Searcher.
func (nm *NelderMead) Observe(f float64) {
	x := nm.pend.take()
	nm.evals++
	nm.best.update(x, f)

	switch nm.phase {
	case nmInit:
		nm.verts[nm.initIdx].f = f
		nm.initIdx++
		if nm.initIdx == len(nm.verts) {
			nm.startIteration()
		}

	case nmReflect:
		nm.fr = f
		fBest := nm.verts[0].f
		fWorst := nm.verts[len(nm.verts)-1].f
		switch {
		case fBest >= f && f > fWorst:
			// Between best and worst: accept the reflection.
			nm.replaceWorst(nm.xr, f)
		case f < fBest:
			// No better than the worst: contract.
			nm.proposeContract()
		default:
			// New best: try to expand further.
			xe := make([]float64, len(nm.centroid))
			for i := range xe {
				xe[i] = nm.centroid[i] + nm.cfg.E*(float64(nm.xr[i])-nm.centroid[i])
			}
			nm.xe = nm.box.Clamp(xe)
			nm.phase = nmExpand
		}

	case nmExpand:
		if f >= nm.fr {
			nm.replaceWorst(nm.xe, f)
		} else {
			// Expansion fell short of the reflection; contract toward
			// the reflection point (the paper's step 4 fall-through).
			nm.proposeContract()
		}

	case nmContract:
		if f >= nm.verts[len(nm.verts)-1].f {
			nm.replaceWorst(nm.xc, f)
		} else {
			nm.beginShrink()
		}

	case nmShrink:
		nm.verts[nm.shrinkIdx].f = f
		nm.shrinkIdx++
		if nm.shrinkIdx == len(nm.verts) {
			nm.startIteration()
		}
	}
}

// Best implements Searcher.
func (nm *NelderMead) Best() ([]int, float64) { return ivec.Clone(nm.best.x), nm.best.f }

// NMVertex is one simplex vertex of an NMState.
type NMVertex struct {
	X []int   `json:"x"`
	F float64 `json:"f"`
}

// NMState is the complete JSON-serializable state of a Nelder–Mead
// search: the phase, the full simplex, the in-flight iteration points
// (centroid, reflection, expansion, contraction), the ask/tell
// handshake, and the best observation. Snapshot and
// NewNelderMeadFromState round-trip it exactly, so a checkpointed
// search resumes in O(1) without replaying its evaluation history.
type NMState struct {
	Kind      string     `json:"kind"`
	Phase     string     `json:"phase"`
	Simplex   []NMVertex `json:"simplex"`
	InitIdx   int        `json:"init_idx,omitempty"`
	ShrinkIdx int        `json:"shrink_idx,omitempty"`
	Centroid  []float64  `json:"centroid,omitempty"`
	XR        []int      `json:"xr,omitempty"`
	FR        float64    `json:"fr,omitempty"`
	XE        []int      `json:"xe,omitempty"`
	XC        []int      `json:"xc,omitempty"`
	Pending   PendState  `json:"pending"`
	Best      BestState  `json:"best"`
	Evals     int        `json:"evals"`
}

// Snapshot captures the search's current state.
func (nm *NelderMead) Snapshot() NMState {
	simplex := make([]NMVertex, len(nm.verts))
	for i, v := range nm.verts {
		simplex[i] = NMVertex{X: ivec.Clone(v.x), F: v.f}
	}
	return NMState{
		Kind:      "nelder-mead",
		Phase:     nm.Phase(),
		Simplex:   simplex,
		InitIdx:   nm.initIdx,
		ShrinkIdx: nm.shrinkIdx,
		Centroid:  append([]float64(nil), nm.centroid...),
		XR:        ivec.Clone(nm.xr),
		FR:        nm.fr,
		XE:        ivec.Clone(nm.xe),
		XC:        ivec.Clone(nm.xc),
		Pending:   nm.pend.state(),
		Best:      nm.best.state(),
		Evals:     nm.evals,
	}
}

// NewNelderMeadFromState rebuilds a Nelder–Mead search from a
// Snapshot. The box and cfg are not part of the state and must match
// the original construction. The state is validated so a corrupt
// checkpoint fails here rather than panicking later.
func NewNelderMeadFromState(st NMState, box Box, cfg NMConfig) (*NelderMead, error) {
	if st.Kind != "nelder-mead" {
		return nil, fmt.Errorf("directsearch: Nelder-Mead state has kind %q", st.Kind)
	}
	phase, err := parseNMPhase(st.Phase)
	if err != nil {
		return nil, err
	}
	m := box.Dim()
	if len(st.Simplex) != m+1 {
		return nil, fmt.Errorf("directsearch: simplex has %d vertices, box dim %d needs %d", len(st.Simplex), m, m+1)
	}
	nm := &NelderMead{box: box, cfg: cfg.withDefaults(), phase: phase}
	nm.verts = make([]vertex, len(st.Simplex))
	for i, v := range st.Simplex {
		if len(v.X) != m {
			return nil, fmt.Errorf("directsearch: simplex vertex %d has %d dims, want %d", i, len(v.X), m)
		}
		nm.verts[i] = vertex{x: ivec.Clone(v.X), f: v.F}
	}
	if st.InitIdx < 0 || st.InitIdx > len(nm.verts) ||
		st.ShrinkIdx < 0 || st.ShrinkIdx > len(nm.verts) || st.Evals < 0 {
		return nil, fmt.Errorf("directsearch: Nelder-Mead state has init_idx %d, shrink_idx %d, evals %d",
			st.InitIdx, st.ShrinkIdx, st.Evals)
	}
	for _, pt := range [][]int{st.XR, st.XE, st.XC} {
		if len(pt) != 0 && len(pt) != m {
			return nil, fmt.Errorf("directsearch: Nelder-Mead working point %v has %d dims, want %d", pt, len(pt), m)
		}
	}
	if len(st.Centroid) != 0 && len(st.Centroid) != m {
		return nil, fmt.Errorf("directsearch: centroid has %d dims, want %d", len(st.Centroid), m)
	}
	nm.initIdx = st.InitIdx
	nm.shrinkIdx = st.ShrinkIdx
	nm.centroid = append([]float64(nil), st.Centroid...)
	nm.xr = ivec.Clone(st.XR)
	nm.fr = st.FR
	nm.xe = ivec.Clone(st.XE)
	nm.xc = ivec.Clone(st.XC)
	nm.evals = st.Evals
	if nm.pend, err = st.Pending.restore(box); err != nil {
		return nil, err
	}
	if nm.best, err = st.Best.restore(); err != nil {
		return nil, err
	}
	return nm, nil
}
