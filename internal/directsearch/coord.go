package directsearch

import "dstune/internal/ivec"

// CoordConfig parameterizes the offline coordinate-descent searcher.
type CoordConfig struct {
	// Step is the initial move size along a coordinate; zero selects
	// 8.
	Step float64
	// MinStep terminates the search once the step drops below it;
	// zero selects 0.5.
	MinStep float64
	// MaxEvals caps the number of objective evaluations; zero selects
	// 10000.
	MaxEvals int
}

// withDefaults returns cfg with zero fields replaced by defaults.
func (c CoordConfig) withDefaults() CoordConfig {
	if c.Step == 0 {
		c.Step = 8
	}
	if c.MinStep == 0 {
		c.MinStep = 0.5
	}
	if c.MaxEvals == 0 {
		c.MaxEvals = 10000
	}
	return c
}

// Coord is a classic coordinate-descent maximizer over a bounded
// integer box: walk one coordinate at a time in the improving
// direction, halve the step once no coordinate improves, stop below
// MinStep. It is the textbook method the paper's online cd-tuner
// (internal/tuner.CD) customizes; it is provided here so the
// direct-search family is complete for offline use.
type Coord struct {
	box Box
	cfg CoordConfig

	inc     []int
	fInc    float64
	haveInc bool

	dim   int
	sign  float64
	fails int // coordinates exhausted without improvement at this step
	step  float64

	pend  pending
	best  best
	evals int
	done  bool
}

// NewCoord returns a coordinate-descent search starting at start
// (clamped to box).
func NewCoord(start []int, box Box, cfg CoordConfig) *Coord {
	c := &Coord{box: box, cfg: cfg.withDefaults(), sign: 1}
	c.step = c.cfg.Step
	c.inc = box.ClampInt(start)
	return c
}

// Step returns the current step size, for diagnostics.
func (c *Coord) Step() float64 { return c.step }

// advance moves to the opposite sign, then to the next coordinate,
// halving the step after a full unproductive cycle. It reports false
// when the search has converged.
func (c *Coord) advance() bool {
	if c.sign > 0 {
		c.sign = -1
		return true
	}
	c.sign = 1
	c.dim = (c.dim + 1) % c.box.Dim()
	c.fails++
	if c.fails >= c.box.Dim() {
		c.fails = 0
		c.step *= 0.5
		if c.step < c.cfg.MinStep {
			return false
		}
	}
	return true
}

// candidate returns the next point to poll, skipping moves that
// collapse onto the incumbent. It reports false when converged.
func (c *Coord) candidate() ([]int, bool) {
	for {
		x := ivec.ToFloat(c.inc)
		x[c.dim] += c.sign * c.step
		cand := c.box.Clamp(x)
		if !ivec.Equal(cand, c.inc) {
			return cand, true
		}
		if !c.advance() {
			return nil, false
		}
	}
}

// Suggest implements Searcher.
func (c *Coord) Suggest() ([]int, bool) {
	if c.done {
		return nil, true
	}
	if c.pend.set {
		return ivec.Clone(c.pend.x), false
	}
	if c.evals >= c.cfg.MaxEvals {
		c.done = true
		return nil, true
	}
	if !c.haveInc {
		c.pend.propose(c.inc)
		return ivec.Clone(c.pend.x), false
	}
	cand, ok := c.candidate()
	if !ok {
		c.done = true
		return nil, true
	}
	c.pend.propose(cand)
	return ivec.Clone(c.pend.x), false
}

// Observe implements Searcher.
func (c *Coord) Observe(f float64) {
	x := c.pend.take()
	c.evals++
	c.best.update(x, f)
	if !c.haveInc {
		c.haveInc = true
		c.fInc = f
		return
	}
	if f > c.fInc {
		// Keep walking the same direction from the new incumbent.
		c.inc = x
		c.fInc = f
		c.fails = 0
		return
	}
	if !c.advance() {
		c.done = true
	}
}

// Best implements Searcher.
func (c *Coord) Best() ([]int, float64) { return ivec.Clone(c.best.x), c.best.f }
