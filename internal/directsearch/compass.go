package directsearch

import (
	"fmt"

	"dstune/internal/ivec"
	"dstune/internal/sim"
)

// CompassConfig parameterizes compass search.
type CompassConfig struct {
	// Lambda is the initial step size; the paper uses 8. Zero selects
	// 8.
	Lambda float64
	// MinLambda terminates the search once the step size drops below
	// it; the paper stops at 0.5 (where the rounded coordinate set
	// degenerates to a single point). Zero selects 0.5.
	MinLambda float64
	// MaxEvals caps the number of objective evaluations as a safety
	// net; zero selects 10000.
	MaxEvals int
}

// withDefaults returns cfg with zero fields replaced by defaults.
func (c CompassConfig) withDefaults() CompassConfig {
	if c.Lambda == 0 {
		c.Lambda = 8
	}
	if c.MinLambda == 0 {
		c.MinLambda = 0.5
	}
	if c.MaxEvals == 0 {
		c.MaxEvals = 10000
	}
	return c
}

// Compass implements compass (pattern) search, Algorithm 2's inner
// COMPASS-SEARCH procedure: poll the 2m coordinate directions around
// the incumbent at step lambda in random order; move to the first
// improving point, or halve lambda when no direction improves;
// terminate when lambda falls below MinLambda.
type Compass struct {
	box    Box
	cfg    CompassConfig
	rng    *sim.RNG
	lambda float64

	incumbent  []int
	fIncumbent float64
	haveInc    bool

	queue [][]int // candidate points remaining at this lambda
	pend  pending
	best  best
	evals int
	done  bool
}

// NewCompass returns a compass search starting at start (clamped to
// box). rng randomizes the polling order; it must not be nil.
func NewCompass(start []int, box Box, cfg CompassConfig, rng *sim.RNG) *Compass {
	c := &Compass{
		box: box,
		cfg: cfg.withDefaults(),
		rng: rng,
	}
	c.lambda = c.cfg.Lambda
	c.incumbent = box.ClampInt(start)
	return c
}

// Lambda returns the current step size, for diagnostics.
func (c *Compass) Lambda() float64 { return c.lambda }

// refill regenerates the candidate queue: the 2m coordinate moves from
// the incumbent at the current lambda, clamped, deduplicated against
// the incumbent, in random order.
func (c *Compass) refill() {
	m := c.box.Dim()
	c.queue = c.queue[:0]
	for _, j := range c.rng.Perm(2 * m) {
		dim := j / 2
		sign := 1.0
		if j%2 == 1 {
			sign = -1
		}
		x := ivec.ToFloat(c.incumbent)
		x[dim] += sign * c.lambda
		cand := c.box.Clamp(x)
		if ivec.Equal(cand, c.incumbent) {
			continue // projection or rounding collapsed the move
		}
		c.queue = append(c.queue, cand)
	}
}

// Suggest implements Searcher.
func (c *Compass) Suggest() ([]int, bool) {
	if c.done {
		return nil, true
	}
	if c.pend.set {
		return ivec.Clone(c.pend.x), false
	}
	if c.evals >= c.cfg.MaxEvals {
		c.done = true
		return nil, true
	}
	// First evaluation: the starting point itself.
	if !c.haveInc {
		c.pend.propose(c.incumbent)
		return ivec.Clone(c.pend.x), false
	}
	// Keep halving until a pollable candidate exists or we converge.
	for len(c.queue) == 0 {
		c.lambda *= 0.5
		if c.lambda < c.cfg.MinLambda {
			c.done = true
			return nil, true
		}
		c.refill()
	}
	c.pend.propose(c.queue[0])
	c.queue = c.queue[1:]
	return ivec.Clone(c.pend.x), false
}

// Observe implements Searcher.
func (c *Compass) Observe(f float64) {
	x := c.pend.take()
	c.evals++
	c.best.update(x, f)
	if !c.haveInc {
		c.haveInc = true
		c.fIncumbent = f
		c.refill()
		return
	}
	if f > c.fIncumbent {
		// Improving point becomes the incumbent; poll around it anew.
		c.incumbent = x
		c.fIncumbent = f
		c.refill()
		return
	}
	if len(c.queue) == 0 {
		// All directions at this lambda failed; halve.
		c.lambda *= 0.5
		if c.lambda < c.cfg.MinLambda {
			c.done = true
			return
		}
		c.refill()
	}
}

// Best implements Searcher.
func (c *Compass) Best() ([]int, float64) { return ivec.Clone(c.best.x), c.best.f }

// CompassState is the complete JSON-serializable state of a compass
// search: the step size, incumbent, remaining polling queue, the
// ask/tell handshake, and the best observation. Snapshot and
// NewCompassFromState round-trip it exactly, so a checkpointed search
// resumes in O(1) without replaying its evaluation history.
type CompassState struct {
	Kind          string    `json:"kind"`
	Lambda        float64   `json:"lambda"`
	Incumbent     []int     `json:"incumbent,omitempty"`
	FIncumbent    float64   `json:"f_incumbent"`
	HaveIncumbent bool      `json:"have_incumbent"`
	Queue         [][]int   `json:"queue,omitempty"`
	Pending       PendState `json:"pending"`
	Best          BestState `json:"best"`
	Evals         int       `json:"evals"`
	Done          bool      `json:"done"`
}

// Snapshot captures the search's current state.
func (c *Compass) Snapshot() CompassState {
	queue := make([][]int, len(c.queue))
	for i, q := range c.queue {
		queue[i] = ivec.Clone(q)
	}
	return CompassState{
		Kind:          "compass",
		Lambda:        c.lambda,
		Incumbent:     ivec.Clone(c.incumbent),
		FIncumbent:    c.fIncumbent,
		HaveIncumbent: c.haveInc,
		Queue:         queue,
		Pending:       c.pend.state(),
		Best:          c.best.state(),
		Evals:         c.evals,
		Done:          c.done,
	}
}

// NewCompassFromState rebuilds a compass search from a Snapshot. The
// box and cfg are not part of the state and must match the original
// construction; rng must be positioned where the original stream was
// (see sim.RNG.UnmarshalBinary). The state is validated against the
// box so a corrupt checkpoint fails here rather than panicking later.
func NewCompassFromState(st CompassState, box Box, cfg CompassConfig, rng *sim.RNG) (*Compass, error) {
	if st.Kind != "compass" {
		return nil, fmt.Errorf("directsearch: compass state has kind %q", st.Kind)
	}
	if len(st.Incumbent) != box.Dim() {
		return nil, fmt.Errorf("directsearch: compass incumbent has %d dims, box has %d", len(st.Incumbent), box.Dim())
	}
	if st.Lambda <= 0 || st.Evals < 0 {
		return nil, fmt.Errorf("directsearch: compass state has lambda %v, evals %d", st.Lambda, st.Evals)
	}
	for _, q := range st.Queue {
		if len(q) != box.Dim() || !box.Contains(q) {
			return nil, fmt.Errorf("directsearch: compass queue entry %v outside box", q)
		}
	}
	c := &Compass{
		box:        box,
		cfg:        cfg.withDefaults(),
		rng:        rng,
		lambda:     st.Lambda,
		incumbent:  ivec.Clone(st.Incumbent),
		fIncumbent: st.FIncumbent,
		haveInc:    st.HaveIncumbent,
		evals:      st.Evals,
		done:       st.Done,
	}
	c.queue = make([][]int, len(st.Queue))
	for i, q := range st.Queue {
		c.queue[i] = ivec.Clone(q)
	}
	var err error
	if c.pend, err = st.Pending.restore(box); err != nil {
		return nil, err
	}
	if c.best, err = st.Best.restore(); err != nil {
		return nil, err
	}
	return c, nil
}

// Incumbent returns the current incumbent point and value.
func (c *Compass) Incumbent() ([]int, float64) { return ivec.Clone(c.incumbent), c.fIncumbent }
