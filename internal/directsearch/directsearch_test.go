package directsearch

import (
	"testing"
	"testing/quick"

	"dstune/internal/ivec"
	"dstune/internal/sim"
)

// concave1D returns a 1-D objective peaking at c.
func concave1D(c int) func([]int) float64 {
	return func(x []int) float64 {
		d := float64(x[0] - c)
		return -d * d
	}
}

// concave2D returns a 2-D objective peaking at (a, b).
func concave2D(a, b int) func([]int) float64 {
	return func(x []int) float64 {
		dx, dy := float64(x[0]-a), float64(x[1]-b)
		return -dx*dx - 2*dy*dy
	}
}

// searchers builds one of each method for the given start and box.
func searchers(start []int, box Box, seed uint64) map[string]Searcher {
	return map[string]Searcher{
		"compass": NewCompass(start, box, CompassConfig{}, sim.NewRNG(seed)),
		"nm":      NewNelderMead(start, box, NMConfig{}),
		"coord":   NewCoord(start, box, CoordConfig{}),
	}
}

func TestBoxConstruction(t *testing.T) {
	if _, err := NewBox(nil, nil); err == nil {
		t.Fatal("empty bounds accepted")
	}
	if _, err := NewBox([]int{1, 2}, []int{3}); err == nil {
		t.Fatal("mismatched bounds accepted")
	}
	if _, err := NewBox([]int{5}, []int{1}); err == nil {
		t.Fatal("inverted bounds accepted")
	}
	b, err := NewBox([]int{1, 1}, []int{64, 32})
	if err != nil {
		t.Fatal(err)
	}
	if b.Dim() != 2 || b.Lo(0) != 1 || b.Hi(1) != 32 {
		t.Fatalf("box accessors wrong: %+v", b)
	}
}

func TestMustBoxPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustBox did not panic")
		}
	}()
	MustBox([]int{2}, []int{1})
}

func TestClampPaperExamples(t *testing.T) {
	// "(3.8, 9.2) is rounded off to (4, 9)".
	b := MustBox([]int{1, 1}, []int{100, 100})
	got := b.Clamp([]float64{3.8, 9.2})
	if got[0] != 4 || got[1] != 9 {
		t.Fatalf("Clamp(3.8, 9.2) = %v, want [4 9]", got)
	}
	// "(12, -1) is projected to (12, 1)".
	got = b.Clamp([]float64{12, -1})
	if got[0] != 12 || got[1] != 1 {
		t.Fatalf("Clamp(12, -1) = %v, want [12 1]", got)
	}
}

func TestClampHalfAwayFromZero(t *testing.T) {
	b := MustBox([]int{-100}, []int{100})
	cases := []struct {
		in   float64
		want int
	}{{0.5, 1}, {1.5, 2}, {-0.5, -1}, {-1.5, -2}, {2.4, 2}, {-2.4, -2}}
	for _, c := range cases {
		if got := b.Clamp([]float64{c.in})[0]; got != c.want {
			t.Errorf("Clamp(%v) = %d, want %d", c.in, got, c.want)
		}
	}
}

func TestClampIntAndContains(t *testing.T) {
	b := MustBox([]int{1, 1}, []int{10, 10})
	got := b.ClampInt([]int{0, 99})
	if got[0] != 1 || got[1] != 10 {
		t.Fatalf("ClampInt = %v", got)
	}
	if !b.Contains([]int{5, 5}) || b.Contains([]int{0, 5}) || b.Contains([]int{5}) {
		t.Fatal("Contains misbehaves")
	}
}

func TestAllMethodsFind1DPeak(t *testing.T) {
	box := MustBox([]int{1}, []int{128})
	for name, s := range searchers([]int{2}, box, 1) {
		x, f := Maximize(s, concave1D(40), 0)
		if x[0] != 40 {
			t.Errorf("%s: found %v (f=%v), want [40]", name, x, f)
		}
	}
}

func TestAllMethodsFind2DPeakNearby(t *testing.T) {
	box := MustBox([]int{1, 1}, []int{128, 32})
	for name, s := range searchers([]int{2, 8}, box, 2) {
		x, _ := Maximize(s, concave2D(50, 12), 0)
		// Direct search on integers converges to the peak or an
		// immediate neighbour on these smooth objectives.
		if abs(x[0]-50) > 1 || abs(x[1]-12) > 1 {
			t.Errorf("%s: found %v, want near [50 12]", name, x)
		}
	}
}

func TestPeakAtBoundary(t *testing.T) {
	// A monotone objective pushes the search to the upper bound.
	box := MustBox([]int{1}, []int{64})
	mono := func(x []int) float64 { return float64(x[0]) }
	for name, s := range searchers([]int{1}, box, 3) {
		x, _ := Maximize(s, mono, 0)
		if x[0] != 64 {
			t.Errorf("%s: found %v, want [64]", name, x)
		}
	}
}

func TestStartAtUpperCorner(t *testing.T) {
	// Starting at the top corner must not trap or loop the search.
	box := MustBox([]int{1, 1}, []int{16, 16})
	for name, s := range searchers([]int{16, 16}, box, 4) {
		x, _ := Maximize(s, concave2D(4, 4), 0)
		if abs(x[0]-4) > 1 || abs(x[1]-4) > 1 {
			t.Errorf("%s: found %v, want near [4 4]", name, x)
		}
	}
}

func TestDegenerateBoxTerminates(t *testing.T) {
	box := MustBox([]int{7}, []int{7})
	for name, s := range searchers([]int{7}, box, 5) {
		x, _ := Maximize(s, concave1D(0), 100)
		if x[0] != 7 {
			t.Errorf("%s: degenerate box gave %v", name, x)
		}
		if _, done := s.Suggest(); !done {
			t.Errorf("%s: not done after Maximize on degenerate box", name)
		}
	}
}

func TestBestAtLeastStartProperty(t *testing.T) {
	box := MustBox([]int{1, 1}, []int{64, 64})
	f := func(seed uint64, sx, sy uint8, cx, cy uint8) bool {
		start := []int{int(sx%64) + 1, int(sy%64) + 1}
		obj := concave2D(int(cx%64)+1, int(cy%64)+1)
		for _, s := range searchers(start, box, seed) {
			_, fb := Maximize(s, obj, 0)
			if fb < obj(start) {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 25}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestSuggestIdempotent(t *testing.T) {
	box := MustBox([]int{1}, []int{64})
	for name, s := range searchers([]int{2}, box, 6) {
		x1, d1 := s.Suggest()
		x2, d2 := s.Suggest()
		if d1 || d2 || !ivec.Equal(x1, x2) {
			t.Errorf("%s: Suggest not idempotent: %v/%v", name, x1, x2)
		}
	}
}

func TestObserveWithoutSuggestPanics(t *testing.T) {
	for name, s := range searchers([]int{2}, MustBox([]int{1}, []int{64}), 7) {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: Observe without Suggest did not panic", name)
				}
			}()
			s.Observe(1)
		}()
	}
}

func TestMaxEvalsCaps(t *testing.T) {
	box := MustBox([]int{1}, []int{1 << 20})
	// An objective that keeps improving forever would never converge;
	// MaxEvals must stop it.
	mono := func(x []int) float64 { return float64(x[0]) }
	ss := map[string]Searcher{
		"compass": NewCompass([]int{1}, box, CompassConfig{MaxEvals: 50}, sim.NewRNG(8)),
		"nm":      NewNelderMead([]int{1}, box, NMConfig{MaxEvals: 50}),
		"coord":   NewCoord([]int{1}, box, CoordConfig{MaxEvals: 50}),
	}
	for name, s := range ss {
		evals := 0
		for {
			_, done := s.Suggest()
			if done {
				break
			}
			evals++
			if evals > 50 {
				t.Fatalf("%s: exceeded MaxEvals", name)
			}
			s.Observe(mono(sPend(s)))
		}
		// Compass and coord climb one step per eval and must hit the
		// cap exactly; NM's exponential expansion may reach the bound
		// and converge legitimately before the cap.
		if name == "nm" {
			if evals > 50 {
				t.Errorf("nm: %d evals exceeds cap", evals)
			}
		} else if evals != 50 {
			t.Errorf("%s: stopped after %d evals, want 50", name, evals)
		}
	}
}

// sPend extracts the pending point for MaxEvals test bookkeeping.
func sPend(s Searcher) []int {
	x, _ := s.Suggest()
	return x
}

func TestCompassLambdaHalves(t *testing.T) {
	c := NewCompass([]int{32}, MustBox([]int{1}, []int{64}), CompassConfig{Lambda: 8}, sim.NewRNG(9))
	// Flat objective: nothing ever improves, so lambda halves through
	// 8, 4, 2, 1, 0.5 and the search stops below 0.5.
	Maximize(c, func([]int) float64 { return 0 }, 0)
	if c.Lambda() >= 0.5 {
		t.Fatalf("final lambda = %v, want < 0.5", c.Lambda())
	}
	if _, done := c.Suggest(); !done {
		t.Fatal("compass not done after lambda exhaustion")
	}
}

func TestCompassIncumbentTracksBest(t *testing.T) {
	c := NewCompass([]int{2}, MustBox([]int{1}, []int{64}), CompassConfig{}, sim.NewRNG(10))
	Maximize(c, concave1D(20), 0)
	x, f := c.Incumbent()
	bx, bf := c.Best()
	if !ivec.Equal(x, bx) || f != bf {
		t.Fatalf("incumbent (%v, %v) != best (%v, %v)", x, f, bx, bf)
	}
}

func TestCompassEvaluatesStartFirst(t *testing.T) {
	c := NewCompass([]int{5}, MustBox([]int{1}, []int{64}), CompassConfig{}, sim.NewRNG(11))
	x, done := c.Suggest()
	if done || x[0] != 5 {
		t.Fatalf("first suggestion = %v, want the start [5]", x)
	}
}

func TestNelderMeadPhases(t *testing.T) {
	nm := NewNelderMead([]int{2}, MustBox([]int{1}, []int{64}), NMConfig{})
	if nm.Phase() != "init" {
		t.Fatalf("initial phase = %q", nm.Phase())
	}
	Maximize(nm, concave1D(30), 0)
	if nm.Phase() != "done" {
		t.Fatalf("final phase = %q", nm.Phase())
	}
}

func TestNelderMeadInitialSimplexNotDegenerate(t *testing.T) {
	// Start at the upper bound: the offset vertex must flip downward.
	nm := NewNelderMead([]int{64}, MustBox([]int{1}, []int{64}), NMConfig{})
	if ivec.Equal(nm.verts[0].x, nm.verts[1].x) {
		t.Fatalf("degenerate initial simplex: %v, %v", nm.verts[0].x, nm.verts[1].x)
	}
}

func TestNelderMead2DSimplexSize(t *testing.T) {
	nm := NewNelderMead([]int{2, 2}, MustBox([]int{1, 1}, []int{64, 64}), NMConfig{})
	if len(nm.verts) != 3 {
		t.Fatalf("2-D simplex has %d vertices, want 3", len(nm.verts))
	}
}

func TestCoordStepHalves(t *testing.T) {
	c := NewCoord([]int{32}, MustBox([]int{1}, []int{64}), CoordConfig{Step: 8})
	Maximize(c, func([]int) float64 { return 0 }, 0)
	if c.Step() >= 0.5 {
		t.Fatalf("final step = %v, want < 0.5", c.Step())
	}
}

func TestCompassDeterministicPerSeed(t *testing.T) {
	runOnce := func(seed uint64) []int {
		c := NewCompass([]int{2, 2}, MustBox([]int{1, 1}, []int{64, 64}), CompassConfig{}, sim.NewRNG(seed))
		x, _ := Maximize(c, concave2D(40, 9), 0)
		return x
	}
	a, b := runOnce(3), runOnce(3)
	if !ivec.Equal(a, b) {
		t.Fatalf("same seed, different trajectories: %v vs %v", a, b)
	}
}

func TestMaximizeRespectsCap(t *testing.T) {
	c := NewCoord([]int{1}, MustBox([]int{1}, []int{1 << 20}), CoordConfig{})
	calls := 0
	Maximize(c, func(x []int) float64 { calls++; return float64(x[0]) }, 7)
	if calls != 7 {
		t.Fatalf("objective called %d times, want 7", calls)
	}
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
