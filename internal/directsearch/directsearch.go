// Package directsearch implements the direct search methods the paper
// applies to throughput optimization: compass (pattern) search,
// Nelder–Mead, and coordinate descent, over bounded integer domains.
//
// The optimizers are *maximizers* driven through an ask/tell
// (Suggest/Observe) interface, because the objective — the throughput
// of a live data transfer over one control epoch — is evaluated by the
// caller, not by a function the optimizer can invoke. This also makes
// the methods trivially reusable offline; Maximize adapts a Searcher
// to an ordinary objective function.
//
// The paper's fBnd operation (round to integers, project to bounds) is
// Box.Clamp. None of the methods keeps history beyond its working set,
// so regions can be revisited as the external load evolves — the
// property the paper calls out as the reason direct search suits this
// problem.
package directsearch

import (
	"fmt"

	"dstune/internal/ivec"
)

// Searcher is the ask/tell interface shared by all methods.
//
// Protocol: call Suggest; if done is false, evaluate the objective at
// x and call Observe with the value (larger is better); repeat.
// Suggest is idempotent — calling it again before Observe returns the
// same pending point. Observe without a pending point panics.
type Searcher interface {
	// Suggest returns the next point to evaluate, or done=true when
	// the search has converged (x is then nil).
	Suggest() (x []int, done bool)
	// Observe supplies the objective value for the pending point.
	Observe(f float64)
	// Best returns the best point and value observed so far.
	Best() ([]int, float64)
}

// Maximize drives s to completion against objective f and returns the
// best point and value. maxEvals <= 0 means no cap beyond the
// searcher's own termination.
func Maximize(s Searcher, f func([]int) float64, maxEvals int) ([]int, float64) {
	for evals := 0; maxEvals <= 0 || evals < maxEvals; evals++ {
		x, done := s.Suggest()
		if done {
			break
		}
		s.Observe(f(x))
	}
	return s.Best()
}

// Box is an axis-aligned bounded integer domain.
type Box struct {
	lo, hi []int
}

// NewBox returns the domain [lo[i], hi[i]] per dimension.
func NewBox(lo, hi []int) (Box, error) {
	if len(lo) == 0 || len(lo) != len(hi) {
		return Box{}, fmt.Errorf("directsearch: bounds must be non-empty and equal length, got %d/%d", len(lo), len(hi))
	}
	for i := range lo {
		if lo[i] > hi[i] {
			return Box{}, fmt.Errorf("directsearch: dimension %d has lo %d > hi %d", i, lo[i], hi[i])
		}
	}
	return Box{lo: ivec.Clone(lo), hi: ivec.Clone(hi)}, nil
}

// MustBox is NewBox that panics on error, for statically correct
// bounds.
func MustBox(lo, hi []int) Box {
	b, err := NewBox(lo, hi)
	if err != nil {
		panic(err)
	}
	return b
}

// Dim returns the number of dimensions.
func (b Box) Dim() int { return len(b.lo) }

// Lo returns the lower bound of dimension i.
func (b Box) Lo(i int) int { return b.lo[i] }

// Hi returns the upper bound of dimension i.
func (b Box) Hi(i int) int { return b.hi[i] }

// Clamp is the paper's fBnd: it rounds each coordinate to the nearest
// integer (halves away from zero) and projects it onto the bounds,
// returning a fresh slice.
func (b Box) Clamp(x []float64) []int {
	out := make([]int, len(x))
	for i, v := range x {
		r := int(roundHalfAway(v))
		if i < len(b.lo) {
			if r < b.lo[i] {
				r = b.lo[i]
			}
			if r > b.hi[i] {
				r = b.hi[i]
			}
		}
		out[i] = r
	}
	return out
}

// ClampInt projects an integer point onto the bounds, returning a
// fresh slice.
func (b Box) ClampInt(x []int) []int {
	out := make([]int, len(x))
	for i, v := range x {
		if i < len(b.lo) {
			if v < b.lo[i] {
				v = b.lo[i]
			}
			if v > b.hi[i] {
				v = b.hi[i]
			}
		}
		out[i] = v
	}
	return out
}

// Contains reports whether x lies within the bounds.
func (b Box) Contains(x []int) bool {
	if len(x) != len(b.lo) {
		return false
	}
	for i, v := range x {
		if v < b.lo[i] || v > b.hi[i] {
			return false
		}
	}
	return true
}

// roundHalfAway rounds to the nearest integer with halves away from
// zero, e.g. 3.8 -> 4, -1.5 -> -2, matching the paper's example
// "(3.8, 9.2) is rounded off to (4, 9)".
func roundHalfAway(v float64) float64 {
	if v >= 0 {
		return float64(int(v + 0.5))
	}
	return -float64(int(-v + 0.5))
}

// PendState is the serializable form of a searcher's ask/tell
// handshake: the outstanding suggestion, if any.
type PendState struct {
	X   []int `json:"x,omitempty"`
	Set bool  `json:"set"`
}

// BestState is the serializable form of a searcher's best-observation
// tracker.
type BestState struct {
	X []int   `json:"x,omitempty"`
	F float64 `json:"f"`
	N int     `json:"n"`
}

// pending tracks the ask/tell handshake shared by the searchers.
type pending struct {
	x   []int
	set bool
}

// state captures the handshake for a snapshot.
func (p *pending) state() PendState {
	return PendState{X: ivec.Clone(p.x), Set: p.set}
}

// restore rebuilds the handshake from a snapshot, validating the
// pending point against the box.
func (s PendState) restore(box Box) (pending, error) {
	if s.Set && len(s.X) != box.Dim() {
		return pending{}, fmt.Errorf("directsearch: pending point has %d dims, box has %d", len(s.X), box.Dim())
	}
	return pending{x: ivec.Clone(s.X), set: s.Set}, nil
}

// propose records x as the outstanding suggestion.
func (p *pending) propose(x []int) {
	p.x = ivec.Clone(x)
	p.set = true
}

// take clears and returns the outstanding suggestion.
func (p *pending) take() []int {
	if !p.set {
		panic("directsearch: Observe called without a pending Suggest")
	}
	p.set = false
	return p.x
}

// best tracks the best observation.
type best struct {
	x []int
	f float64
	n int
}

// update folds in one observation.
func (b *best) update(x []int, f float64) {
	b.n++
	if b.n == 1 || f > b.f {
		b.x = ivec.Clone(x)
		b.f = f
	}
}

// state captures the tracker for a snapshot.
func (b *best) state() BestState {
	return BestState{X: ivec.Clone(b.x), F: b.f, N: b.n}
}

// restore rebuilds the tracker from a snapshot.
func (s BestState) restore() (best, error) {
	if s.N < 0 {
		return best{}, fmt.Errorf("directsearch: best tracker has %d observations", s.N)
	}
	return best{x: ivec.Clone(s.X), f: s.F, n: s.N}, nil
}
