package directsearch

import (
	"testing"

	"dstune/internal/sim"
)

// quadratic2D is the benchmark objective: a smooth 2-D bowl.
func quadratic2D(x []int) float64 {
	dx, dy := float64(x[0]-40), float64(x[1]-9)
	return -dx*dx - 2*dy*dy
}

func BenchmarkCompassSearch(b *testing.B) {
	box := MustBox([]int{1, 1}, []int{128, 32})
	for i := 0; i < b.N; i++ {
		c := NewCompass([]int{2, 2}, box, CompassConfig{}, sim.NewRNG(uint64(i)))
		Maximize(c, quadratic2D, 0)
	}
}

func BenchmarkNelderMeadSearch(b *testing.B) {
	box := MustBox([]int{1, 1}, []int{128, 32})
	for i := 0; i < b.N; i++ {
		nm := NewNelderMead([]int{2, 2}, box, NMConfig{})
		Maximize(nm, quadratic2D, 0)
	}
}

func BenchmarkCoordSearch(b *testing.B) {
	box := MustBox([]int{1, 1}, []int{128, 32})
	for i := 0; i < b.N; i++ {
		c := NewCoord([]int{2, 2}, box, CoordConfig{})
		Maximize(c, quadratic2D, 0)
	}
}
