package load

import (
	"testing"
	"testing/quick"
)

func TestConstant(t *testing.T) {
	s := Constant(Load{Tfr: 16, Cmp: 64})
	for _, tt := range []float64{0, 1, 1e6} {
		if got := s.At(tt); got != (Load{Tfr: 16, Cmp: 64}) {
			t.Fatalf("At(%v) = %v", tt, got)
		}
	}
}

func TestNone(t *testing.T) {
	if got := None().At(42); got != (Load{}) {
		t.Fatalf("None().At(42) = %v, want zero", got)
	}
}

func TestStep(t *testing.T) {
	s := Step(1000, Load{Tfr: 64, Cmp: 16}, Load{Tfr: 16, Cmp: 16})
	if got := s.At(999.9); got != (Load{Tfr: 64, Cmp: 16}) {
		t.Fatalf("before step: %v", got)
	}
	if got := s.At(1000); got != (Load{Tfr: 16, Cmp: 16}) {
		t.Fatalf("at step: %v", got)
	}
	if got := s.At(5000); got != (Load{Tfr: 16, Cmp: 16}) {
		t.Fatalf("after step: %v", got)
	}
}

func TestPiecewise(t *testing.T) {
	s := Piecewise(
		Segment{Start: 100, Load: Load{Tfr: 1}},
		Segment{Start: 0, Load: Load{Cmp: 2}},
		Segment{Start: 200, Load: Load{Tfr: 3, Cmp: 3}},
	)
	cases := []struct {
		t    float64
		want Load
	}{
		{-1, Load{}},
		{0, Load{Cmp: 2}},
		{99, Load{Cmp: 2}},
		{100, Load{Tfr: 1}},
		{199.9, Load{Tfr: 1}},
		{200, Load{Tfr: 3, Cmp: 3}},
		{1e9, Load{Tfr: 3, Cmp: 3}},
	}
	for _, c := range cases {
		if got := s.At(c.t); got != c.want {
			t.Errorf("At(%v) = %v, want %v", c.t, got, c.want)
		}
	}
}

func TestPiecewiseEmpty(t *testing.T) {
	s := Piecewise()
	if got := s.At(10); got != (Load{}) {
		t.Fatalf("empty piecewise At(10) = %v", got)
	}
}

func TestPiecewiseDoesNotMutateInput(t *testing.T) {
	segs := []Segment{{Start: 5}, {Start: 1}}
	Piecewise(segs...)
	if segs[0].Start != 5 {
		t.Fatal("Piecewise sorted the caller's slice")
	}
}

func TestStepEquivalentToPiecewise(t *testing.T) {
	before, after := Load{Tfr: 64, Cmp: 16}, Load{Tfr: 16}
	st := Step(1000, before, after)
	pw := Piecewise(Segment{Start: 0, Load: before}, Segment{Start: 1000, Load: after})
	f := func(tRaw uint16) bool {
		tt := float64(tRaw) / 10
		return st.At(tt) == pw.At(tt)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLoadString(t *testing.T) {
	if s := (Load{Tfr: 16, Cmp: 64}).String(); s != "ext.tfr=16 ext.cmp=64" {
		t.Fatalf("String() = %q", s)
	}
}

func TestSquare(t *testing.T) {
	a, b := Load{Net: 0}, Load{Net: 64}
	s := Square(100, a, b)
	cases := []struct {
		t    float64
		want Load
	}{
		{-5, a}, {0, a}, {99, a}, {100, b}, {199, b}, {200, a}, {350, b},
	}
	for _, c := range cases {
		if got := s.At(c.t); got != c.want {
			t.Errorf("At(%v) = %v, want %v", c.t, got, c.want)
		}
	}
	// Non-positive period degrades to constant a.
	if got := Square(0, a, b).At(1e6); got != a {
		t.Fatalf("zero period At = %v", got)
	}
}

func TestLoadStringWithNet(t *testing.T) {
	if s := (Load{Tfr: 1, Cmp: 2, Net: 3}).String(); s != "ext.tfr=1 ext.cmp=2 net=3" {
		t.Fatalf("String = %q", s)
	}
	if s := (Load{Tfr: 1, Cmp: 2}).String(); s != "ext.tfr=1 ext.cmp=2" {
		t.Fatalf("String without net = %q", s)
	}
}
