// Package load describes external load on a transfer's source endpoint
// as a function of virtual time: the paper's ext.tfr (streams of a
// competing transfer) and ext.cmp (copies of a CPU-saturating dgemm).
//
// Schedules are pure functions of time so that experiments remain
// deterministic and the fabric can query them every step.
package load

import (
	"fmt"
	"sort"
)

// Load is the external load at one instant.
type Load struct {
	// Tfr is the number of streams of external transfer traffic
	// originating at the source (the paper's ext.tfr): it consumes
	// both network capacity and source CPU.
	Tfr int
	// Cmp is the number of external compute jobs on the source (the
	// paper's ext.cmp).
	Cmp int
	// Net is the number of third-party streams crossing the network
	// path without touching the source endpoint — the uncontrolled
	// background traffic the paper notes it could not regulate.
	Net int
}

// String implements fmt.Stringer.
func (l Load) String() string {
	s := fmt.Sprintf("ext.tfr=%d ext.cmp=%d", l.Tfr, l.Cmp)
	if l.Net > 0 {
		s += fmt.Sprintf(" net=%d", l.Net)
	}
	return s
}

// Schedule yields the external load at any virtual time.
type Schedule interface {
	// At returns the load at time t (seconds from transfer start).
	At(t float64) Load
}

// constant is a time-invariant schedule.
type constant struct{ l Load }

// Constant returns a schedule that always reports l.
func Constant(l Load) Schedule { return constant{l} }

// None returns the empty schedule (no external load).
func None() Schedule { return constant{} }

// At implements Schedule.
func (c constant) At(float64) Load { return c.l }

// step switches from one load to another at a fixed time.
type step struct {
	at            float64
	before, after Load
}

// Step returns a schedule reporting `before` until time `at` and
// `after` from then on. The paper's Figures 8–10 use ext.tfr=64,
// ext.cmp=16 before t=1000s and ext.tfr=16, ext.cmp=16 after.
func Step(at float64, before, after Load) Schedule {
	return step{at: at, before: before, after: after}
}

// At implements Schedule.
func (s step) At(t float64) Load {
	if t < s.at {
		return s.before
	}
	return s.after
}

// square alternates between two loads with a fixed period.
type square struct {
	period float64
	a, b   Load
}

// Square returns a schedule alternating between a and b every period
// seconds (a first). It models bursty background conditions such as
// the third-party traffic the paper could not control.
func Square(period float64, a, b Load) Schedule {
	if period <= 0 {
		return Constant(a)
	}
	return square{period: period, a: a, b: b}
}

// At implements Schedule.
func (s square) At(t float64) Load {
	if t < 0 {
		return s.a
	}
	if int(t/s.period)%2 == 0 {
		return s.a
	}
	return s.b
}

// Segment is one piece of a piecewise-constant schedule.
type Segment struct {
	// Start is the virtual time at which the segment begins.
	Start float64
	// Load applies from Start until the next segment's start.
	Load Load
}

// piecewise is a piecewise-constant schedule.
type piecewise struct{ segs []Segment }

// Piecewise returns a schedule built from the given segments, sorted
// by start time. Before the first segment's start the load is zero.
func Piecewise(segs ...Segment) Schedule {
	s := make([]Segment, len(segs))
	copy(s, segs)
	sort.Slice(s, func(i, j int) bool { return s[i].Start < s[j].Start })
	return piecewise{segs: s}
}

// At implements Schedule.
func (p piecewise) At(t float64) Load {
	var cur Load
	for _, s := range p.segs {
		if t < s.Start {
			break
		}
		cur = s.Load
	}
	return cur
}
