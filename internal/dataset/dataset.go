// Package dataset models the file sets moved by disk-to-disk
// transfers: deterministic generators for the size regimes that
// Yildirim et al. [25] analyze and that the paper's future-work item
// (1) targets — many small files (request-latency bound), mixes, and
// few huge files (bandwidth bound).
package dataset

import (
	"fmt"
	"math"
	"sort"

	"dstune/internal/sim"
)

// File is one file to transfer.
type File struct {
	// Name identifies the file.
	Name string
	// Size is the file's size in bytes.
	Size int64
}

// Dataset is an ordered set of files.
type Dataset struct {
	// Files lists the files in transfer order.
	Files []File
}

// Count returns the number of files.
func (d Dataset) Count() int { return len(d.Files) }

// TotalBytes returns the dataset's total size.
func (d Dataset) TotalBytes() int64 {
	var sum int64
	for _, f := range d.Files {
		sum += f.Size
	}
	return sum
}

// MeanSize returns the mean file size in bytes, or 0 when empty.
func (d Dataset) MeanSize() float64 {
	if len(d.Files) == 0 {
		return 0
	}
	return float64(d.TotalBytes()) / float64(len(d.Files))
}

// MedianSize returns the median file size in bytes, or 0 when empty.
func (d Dataset) MedianSize() float64 {
	n := len(d.Files)
	if n == 0 {
		return 0
	}
	sizes := make([]int64, n)
	for i, f := range d.Files {
		sizes[i] = f.Size
	}
	sort.Slice(sizes, func(i, j int) bool { return sizes[i] < sizes[j] })
	if n%2 == 1 {
		return float64(sizes[n/2])
	}
	return float64(sizes[n/2-1]+sizes[n/2]) / 2
}

// String implements fmt.Stringer.
func (d Dataset) String() string {
	return fmt.Sprintf("%d files, %.1f MB total, median %.2f MB",
		d.Count(), float64(d.TotalBytes())/1e6, d.MedianSize()/1e6)
}

// Concat joins datasets in order, renumbering nothing.
func Concat(sets ...Dataset) Dataset {
	var out Dataset
	for _, s := range sets {
		out.Files = append(out.Files, s.Files...)
	}
	return out
}

// Uniform returns n files of identical size.
func Uniform(n int, size int64) Dataset {
	if n < 0 {
		n = 0
	}
	d := Dataset{Files: make([]File, n)}
	for i := range d.Files {
		d.Files[i] = File{Name: fmt.Sprintf("file-%06d", i), Size: size}
	}
	return d
}

// LogNormal returns n files with log-normally distributed sizes: the
// heavy-tailed shape of real scientific datasets. median is the
// distribution's median size in bytes and sigma the log-space standard
// deviation (1.0 is a typical spread; larger is heavier-tailed).
// Sizes are clamped to at least 1 byte. Deterministic per seed.
func LogNormal(n int, median float64, sigma float64, seed uint64) Dataset {
	if n < 0 {
		n = 0
	}
	rng := sim.NewRNG(seed)
	mu := math.Log(median)
	d := Dataset{Files: make([]File, n)}
	for i := range d.Files {
		size := int64(math.Exp(mu + sigma*rng.NormFloat64()))
		if size < 1 {
			size = 1
		}
		d.Files[i] = File{Name: fmt.Sprintf("file-%06d", i), Size: size}
	}
	return d
}

// Pareto returns n files with Pareto-distributed sizes: minimum size
// xm bytes and tail index alpha (smaller alpha = heavier tail; alpha
// must exceed 0). Deterministic per seed.
func Pareto(n int, xm float64, alpha float64, seed uint64) Dataset {
	if n < 0 {
		n = 0
	}
	if alpha <= 0 {
		alpha = 1
	}
	rng := sim.NewRNG(seed)
	d := Dataset{Files: make([]File, n)}
	for i := range d.Files {
		u := rng.Float64()
		if u == 0 {
			u = 0.5
		}
		size := int64(xm / math.Pow(u, 1/alpha))
		if size < 1 {
			size = 1
		}
		d.Files[i] = File{Name: fmt.Sprintf("file-%06d", i), Size: size}
	}
	return d
}

// ManySmall returns the latency-bound regime of [25]: n files of
// 1 MB.
func ManySmall(n int) Dataset { return Uniform(n, 1<<20) }

// FewHuge returns the bandwidth-bound regime of [25]: n files of
// 10 GB.
func FewHuge(n int) Dataset { return Uniform(n, 10<<30) }
