package dataset

import (
	"fmt"
	"os"
	"path/filepath"
)

// Materialize creates d's files under dir as real, sparsely allocated
// files of the manifest sizes, so a file-backed transfer source
// (gridftp.ClientConfig.SourceDir) has actual disk objects to
// sendfile from. Existing files of the right size are left untouched;
// wrong-sized ones are truncated to the manifest size. Sparse
// allocation (create + truncate, no payload writes) keeps even
// multi-GiB benchmark datasets instant and storage-free — reads
// return zeros, which is exactly the paper's /dev/zero payload.
//
// File names must be local paths (no absolute paths, no ".." escapes)
// and must not collide at differing sizes; either is an error.
func Materialize(dir string, d Dataset) error {
	sizes := make(map[string]int64, len(d.Files))
	for _, f := range d.Files {
		if f.Name == "" || !filepath.IsLocal(f.Name) {
			return fmt.Errorf("dataset: file name %q escapes the source directory", f.Name)
		}
		if prev, ok := sizes[f.Name]; ok && prev != f.Size {
			return fmt.Errorf("dataset: file name %q appears at both %d and %d bytes", f.Name, prev, f.Size)
		}
		sizes[f.Name] = f.Size
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for _, f := range d.Files {
		path := filepath.Join(dir, f.Name)
		if sub := filepath.Dir(path); sub != dir {
			if err := os.MkdirAll(sub, 0o755); err != nil {
				return err
			}
		}
		if st, err := os.Stat(path); err == nil && st.Size() == f.Size && st.Mode().IsRegular() {
			continue
		}
		fh, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY, 0o644)
		if err != nil {
			return err
		}
		err = fh.Truncate(f.Size)
		if cerr := fh.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return fmt.Errorf("dataset: materialize %s: %w", path, err)
		}
	}
	return nil
}
