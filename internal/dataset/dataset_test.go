package dataset

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestUniform(t *testing.T) {
	d := Uniform(10, 1000)
	if d.Count() != 10 || d.TotalBytes() != 10000 {
		t.Fatalf("Uniform: %v", d)
	}
	if d.MeanSize() != 1000 || d.MedianSize() != 1000 {
		t.Fatalf("mean/median: %v/%v", d.MeanSize(), d.MedianSize())
	}
	if d.Files[3].Name != "file-000003" {
		t.Fatalf("name %q", d.Files[3].Name)
	}
	if Uniform(-5, 1).Count() != 0 {
		t.Fatal("negative count not clamped")
	}
}

func TestEmptyDataset(t *testing.T) {
	var d Dataset
	if d.MeanSize() != 0 || d.MedianSize() != 0 || d.TotalBytes() != 0 {
		t.Fatal("empty dataset stats not zero")
	}
}

func TestMedianEvenCount(t *testing.T) {
	d := Dataset{Files: []File{{Size: 1}, {Size: 3}, {Size: 100}, {Size: 2}}}
	if got := d.MedianSize(); got != 2.5 {
		t.Fatalf("median = %v, want 2.5", got)
	}
}

func TestLogNormalProperties(t *testing.T) {
	d := LogNormal(5000, 1e6, 1.0, 7)
	if d.Count() != 5000 {
		t.Fatalf("count %d", d.Count())
	}
	med := d.MedianSize()
	if med < 0.8e6 || med > 1.25e6 {
		t.Fatalf("median %v, want near 1e6", med)
	}
	// Heavy tail: mean well above median.
	if d.MeanSize() <= med {
		t.Fatalf("mean %v not above median %v", d.MeanSize(), med)
	}
	for _, f := range d.Files {
		if f.Size < 1 {
			t.Fatal("size below 1 byte")
		}
	}
}

func TestLogNormalDeterministic(t *testing.T) {
	a := LogNormal(100, 1e6, 1, 3)
	b := LogNormal(100, 1e6, 1, 3)
	for i := range a.Files {
		if a.Files[i] != b.Files[i] {
			t.Fatal("same seed differs")
		}
	}
	c := LogNormal(100, 1e6, 1, 4)
	same := true
	for i := range a.Files {
		if a.Files[i].Size != c.Files[i].Size {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds identical")
	}
}

func TestParetoProperties(t *testing.T) {
	d := Pareto(5000, 1e5, 1.5, 9)
	min := int64(math.MaxInt64)
	for _, f := range d.Files {
		if f.Size < min {
			min = f.Size
		}
	}
	if min < 1e5*0.99 {
		t.Fatalf("minimum %v below xm", min)
	}
	// Tail: max far above the minimum.
	var max int64
	for _, f := range d.Files {
		if f.Size > max {
			max = f.Size
		}
	}
	if float64(max) < 10*1e5 {
		t.Fatalf("max %v suspiciously small for a Pareto tail", max)
	}
	if Pareto(10, 100, -1, 1).Count() != 10 {
		t.Fatal("alpha fallback broken")
	}
}

func TestConcat(t *testing.T) {
	d := Concat(Uniform(2, 10), Uniform(3, 20))
	if d.Count() != 5 || d.TotalBytes() != 80 {
		t.Fatalf("Concat: %v", d)
	}
}

func TestRegimes(t *testing.T) {
	small := ManySmall(100)
	if small.TotalBytes() != 100<<20 {
		t.Fatalf("ManySmall total %d", small.TotalBytes())
	}
	huge := FewHuge(2)
	if huge.TotalBytes() != 20<<30 {
		t.Fatalf("FewHuge total %d", huge.TotalBytes())
	}
}

func TestString(t *testing.T) {
	if s := Uniform(3, 1<<20).String(); !strings.Contains(s, "3 files") {
		t.Fatalf("String: %q", s)
	}
}

func TestTotalBytesMatchesSumProperty(t *testing.T) {
	f := func(sizes []uint32) bool {
		d := Dataset{}
		var want int64
		for _, s := range sizes {
			d.Files = append(d.Files, File{Size: int64(s)})
			want += int64(s)
		}
		return d.TotalBytes() == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
