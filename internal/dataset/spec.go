package dataset

import (
	"fmt"
	"strconv"
	"strings"
)

// Default per-file transfer constants shared by the disk-to-disk
// simulator, the experiment scenarios, and the CLI flag defaults, so
// the simulated and real paths agree on one workload definition.
const (
	// DefaultDiskRate is the assumed source storage bandwidth in
	// bytes per second (a modern storage array).
	DefaultDiskRate = 2e9
	// DefaultFileOverhead is the assumed per-file request+seek
	// latency in seconds — the cost the pipelining depth amortizes.
	DefaultFileOverhead = 0.5
)

// Workload is one disk-to-disk regime: a dataset plus the per-file
// transfer constants it is moved under. It is the single definition
// shared by the simulator scenarios (internal/experiment) and the
// real-socket path.
type Workload struct {
	// Name labels the regime.
	Name string
	// Files is the dataset to move.
	Files Dataset
	// DiskRate is the source storage bandwidth in bytes per second.
	DiskRate float64
	// FileOverhead is the per-file request+seek latency in seconds.
	FileOverhead float64
}

// Workloads returns the three canonical regimes of Yildirim et
// al. [25]: request-latency-bound many small files, a heavy-tailed
// log-normal mix, and bandwidth-bound huge files. Deterministic per
// seed.
func Workloads(seed uint64) []Workload {
	return []Workload{
		{
			Name:         "many-small",
			Files:        ManySmall(20000), // 20k x 1 MB
			DiskRate:     DefaultDiskRate,
			FileOverhead: DefaultFileOverhead,
		},
		{
			Name:         "lognormal-mix",
			Files:        LogNormal(2000, 8<<20, 1.5, seed), // median 8 MB, heavy tail
			DiskRate:     DefaultDiskRate,
			FileOverhead: DefaultFileOverhead,
		},
		{
			Name:         "few-huge",
			Files:        Uniform(16, 4<<30), // 16 x 4 GB
			DiskRate:     DefaultDiskRate,
			FileOverhead: DefaultFileOverhead,
		},
	}
}

// maxSpecFiles bounds the file count a spec may request, so a hostile
// spec cannot allocate an unbounded manifest.
const maxSpecFiles = 1 << 20

// ParseSpec builds a dataset from a compact textual spec:
//
//	COUNTxSIZE          uniform files, e.g. "10000x1MiB", "16x4GiB"
//	manysmall:COUNT     COUNT x 1 MB (the latency-bound regime)
//	fewhuge:COUNT       COUNT x 10 GB (the bandwidth-bound regime)
//	lognormal:COUNT:MEDIAN:SIGMA
//	                    heavy-tailed sizes, e.g. "lognormal:2000:8MiB:1.5"
//
// SIZE accepts a decimal number with an optional B, KB, MB, GB, TB
// (decimal) or KiB, MiB, GiB, TiB (binary) suffix. Log-normal specs
// are deterministic per seed. Hostile specs return an error, never a
// panic.
func ParseSpec(spec string, seed uint64) (Dataset, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return Dataset{}, fmt.Errorf("dataset: empty spec")
	}
	if rest, ok := strings.CutPrefix(spec, "manysmall:"); ok {
		n, err := parseCount(rest)
		if err != nil {
			return Dataset{}, err
		}
		return ManySmall(n), nil
	}
	if rest, ok := strings.CutPrefix(spec, "fewhuge:"); ok {
		n, err := parseCount(rest)
		if err != nil {
			return Dataset{}, err
		}
		return FewHuge(n), nil
	}
	if rest, ok := strings.CutPrefix(spec, "lognormal:"); ok {
		parts := strings.Split(rest, ":")
		if len(parts) != 3 {
			return Dataset{}, fmt.Errorf("dataset: lognormal spec %q: want lognormal:COUNT:MEDIAN:SIGMA", spec)
		}
		n, err := parseCount(parts[0])
		if err != nil {
			return Dataset{}, err
		}
		median, err := ParseSize(parts[1])
		if err != nil {
			return Dataset{}, err
		}
		sigma, err := strconv.ParseFloat(parts[2], 64)
		if err != nil || sigma <= 0 || sigma > 16 {
			return Dataset{}, fmt.Errorf("dataset: lognormal sigma %q outside (0, 16]", parts[2])
		}
		return LogNormal(n, float64(median), sigma, seed), nil
	}
	count, sizeStr, ok := strings.Cut(spec, "x")
	if !ok {
		return Dataset{}, fmt.Errorf("dataset: bad spec %q: want COUNTxSIZE, manysmall:N, fewhuge:N, or lognormal:N:MEDIAN:SIGMA", spec)
	}
	n, err := parseCount(count)
	if err != nil {
		return Dataset{}, err
	}
	size, err := ParseSize(sizeStr)
	if err != nil {
		return Dataset{}, err
	}
	return Uniform(n, size), nil
}

// parseCount parses a file count, bounded to [1, maxSpecFiles].
func parseCount(s string) (int, error) {
	n, err := strconv.Atoi(strings.TrimSpace(s))
	if err != nil || n < 1 || n > maxSpecFiles {
		return 0, fmt.Errorf("dataset: file count %q outside [1, %d]", s, maxSpecFiles)
	}
	return n, nil
}

// sizeSuffixes maps size suffixes to their byte multipliers; longer
// suffixes are matched first.
var sizeSuffixes = []struct {
	suffix string
	mult   float64
}{
	{"KiB", 1 << 10}, {"MiB", 1 << 20}, {"GiB", 1 << 30}, {"TiB", 1 << 40},
	{"KB", 1e3}, {"MB", 1e6}, {"GB", 1e9}, {"TB", 1e12},
	{"B", 1},
}

// ParseSize parses a byte size with an optional decimal (KB, MB, GB,
// TB) or binary (KiB, MiB, GiB, TiB) suffix; a bare number is bytes.
func ParseSize(s string) (int64, error) {
	s = strings.TrimSpace(s)
	mult := 1.0
	for _, sf := range sizeSuffixes {
		if strings.HasSuffix(s, sf.suffix) {
			mult = sf.mult
			s = strings.TrimSuffix(s, sf.suffix)
			break
		}
	}
	v, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
	if err != nil || v < 0 || v*mult > float64(int64(1)<<62) {
		return 0, fmt.Errorf("dataset: bad size %q", s)
	}
	return int64(v * mult), nil
}
