package tuner

import (
	"context"
	"encoding/json"
	"fmt"

	"dstune/internal/directsearch"
	"dstune/internal/ivec"
	"dstune/internal/sim"
	"dstune/internal/xfer"
)

// Phases of the search strategies (cs-tuner, nm-tuner, model).
const (
	searchPhaseSearch  = "search"  // the inner direct search is running
	searchPhaseMonitor = "monitor" // holding the incumbent under the ε-monitor
)

// Inner-search kinds of SearchStrategy.
const (
	searchKindCompass = "compass"
	searchKindNM      = "nm"
)

// SearchState is the serializable state of cs-tuner and nm-tuner: the
// tuner phase, the monitor incumbent, the ε-monitor, the RNG stream
// position, and — while a search is in flight — the inner search's
// complete position (the compass step size, polling queue, and
// pending candidate, or the Nelder–Mead simplex and working points).
type SearchState struct {
	// Phase is the tuner phase: search or monitor.
	Phase string `json:"phase"`
	// X is the incumbent held during the monitor phase.
	X []int `json:"x,omitempty"`
	// Monitor is the ε-monitor state (armed flag and baseline).
	Monitor Monitor `json:"monitor"`
	// RNG is the random stream position (binary, JSON-encoded as
	// base64).
	RNG []byte `json:"rng,omitempty"`
	// Compass is the inner compass search state (cs-tuner, search
	// phase only).
	Compass *directsearch.CompassState `json:"compass,omitempty"`
	// NM is the inner Nelder–Mead state (nm-tuner, search phase only).
	NM *directsearch.NMState `json:"nm,omitempty"`
}

// SearchStrategy is the common frame of cs-tuner and nm-tuner
// (Algorithms 2 and 3) as a propose/observe state machine: run the
// inner direct search to convergence, one control epoch per
// evaluation, then hold the incumbent and monitor consecutive epoch
// throughputs; when they differ by more than the tolerance, start the
// search again.
type SearchStrategy struct {
	cfg  Config
	name string
	kind string
	x0   []int
	rng  *sim.RNG
	srch directsearch.Searcher

	phase   string
	x       []int
	monitor Monitor
}

// newSearchStrategy builds the shared cs/nm frame under the given
// name (the Joint tuner reuses it as "joint-cs"/"joint-nm").
func newSearchStrategy(name, kind string, cfg Config) *SearchStrategy {
	cfg = cfg.withDefaults()
	s := &SearchStrategy{
		cfg:     cfg,
		name:    name,
		kind:    kind,
		x0:      cfg.Box.ClampInt(cfg.Start),
		rng:     sim.NewRNG(cfg.Seed),
		monitor: Monitor{Tolerance: cfg.Tolerance},
	}
	s.startSearch(s.x0)
	s.advance()
	return s
}

// NewCSStrategy returns the compass-search strategy of Algorithm 2.
func NewCSStrategy(cfg Config) *SearchStrategy {
	return newSearchStrategy("cs-tuner", searchKindCompass, cfg)
}

// NewNMStrategy returns the Nelder–Mead strategy of Algorithm 3.
func NewNMStrategy(cfg Config) *SearchStrategy {
	return newSearchStrategy("nm-tuner", searchKindNM, cfg)
}

// newSearch builds a fresh inner search from a starting vector.
func (s *SearchStrategy) newSearch(start []int) directsearch.Searcher {
	switch s.kind {
	case searchKindNM:
		return directsearch.NewNelderMead(start, s.cfg.Box, s.nmConfig())
	default:
		return directsearch.NewCompass(start, s.cfg.Box, directsearch.CompassConfig{
			Lambda: s.cfg.Lambda,
		}, s.rng)
	}
}

// nmConfig resolves the Nelder–Mead configuration (InitStep defaults
// to Lambda).
func (s *SearchStrategy) nmConfig() directsearch.NMConfig {
	nmCfg := s.cfg.NM
	if nmCfg.InitStep == 0 {
		nmCfg.InitStep = s.cfg.Lambda
	}
	return nmCfg
}

// startSearch enters the search phase with a fresh inner search.
func (s *SearchStrategy) startSearch(start []int) {
	s.phase = searchPhaseSearch
	s.srch = s.newSearch(start)
}

// advance resolves the inner search's pending transitions. On return,
// either the search holds a pending candidate (so Propose is pure) or
// it converged and the strategy moved to the monitor phase with the
// incumbent and a re-armed monitor.
func (s *SearchStrategy) advance() {
	if s.phase != searchPhaseSearch {
		return
	}
	if _, done := s.srch.Suggest(); !done {
		return
	}
	// Line 17 done: adopt the incumbent and start monitoring.
	bx, bf := s.srch.Best()
	if len(bx) == 0 {
		bx = ivec.Clone(s.x0)
	}
	s.x = bx
	s.monitor.Reset(bf)
	s.phase = searchPhaseMonitor
	s.srch = nil
}

// Name implements Strategy.
func (s *SearchStrategy) Name() string { return s.name }

// Propose implements Strategy.
func (s *SearchStrategy) Propose() ([]int, bool) {
	if s.phase == searchPhaseSearch {
		// advance left a pending candidate, so Suggest is pure here.
		cand, _ := s.srch.Suggest()
		return ivec.Clone(cand), false
	}
	return ivec.Clone(s.x), false
}

// Observe implements Strategy.
func (s *SearchStrategy) Observe(rep xfer.Report) {
	f := fitnessOf(s.cfg, rep)
	if s.phase == searchPhaseSearch {
		s.srch.Observe(f)
		s.advance()
		return
	}
	// Lines 18-25: the monitor loop.
	last := s.monitor.Last
	if s.monitor.Observe(f) {
		s.cfg.Obs.Retrigger(rep.End, delta(last, f))
		start := s.x0
		if s.cfg.Restart == FromCurrent {
			start = s.x
		}
		s.startSearch(start)
		s.advance()
	}
}

// Snapshot implements Strategy.
func (s *SearchStrategy) Snapshot() (json.RawMessage, error) {
	st := SearchState{
		Phase:   s.phase,
		X:       s.x,
		Monitor: s.monitor,
	}
	rng, err := s.rng.MarshalBinary()
	if err != nil {
		return nil, fmt.Errorf("tuner: %s snapshot: %w", s.name, err)
	}
	st.RNG = rng
	switch srch := s.srch.(type) {
	case *directsearch.Compass:
		cs := srch.Snapshot()
		st.Compass = &cs
	case *directsearch.NelderMead:
		nm := srch.Snapshot()
		st.NM = &nm
	}
	return json.Marshal(st)
}

// Restore implements Strategy.
func (s *SearchStrategy) Restore(raw json.RawMessage) error {
	var st SearchState
	if err := json.Unmarshal(raw, &st); err != nil {
		return fmt.Errorf("tuner: %s state: %w", s.name, err)
	}
	rng := sim.NewRNG(s.cfg.Seed)
	if len(st.RNG) > 0 {
		if err := rng.UnmarshalBinary(st.RNG); err != nil {
			return fmt.Errorf("tuner: %s state rng: %w", s.name, err)
		}
	}
	var srch directsearch.Searcher
	switch st.Phase {
	case searchPhaseSearch:
		var err error
		srch, err = s.restoreSearch(st, rng)
		if err != nil {
			return err
		}
	case searchPhaseMonitor:
		if len(st.X) != s.cfg.Box.Dim() {
			return fmt.Errorf("tuner: %s state incumbent has %d dims, box has %d", s.name, len(st.X), s.cfg.Box.Dim())
		}
	default:
		return fmt.Errorf("tuner: %s state has unknown phase %q", s.name, st.Phase)
	}
	st.Monitor.Tolerance = s.cfg.Tolerance
	s.phase = st.Phase
	s.x = st.X
	s.monitor = st.Monitor
	s.rng = rng
	s.srch = srch
	return nil
}

// restoreSearch rebuilds the in-flight inner search from its
// serialized state, enforcing the advance invariant: a search-phase
// snapshot always carries a pending candidate.
func (s *SearchStrategy) restoreSearch(st SearchState, rng *sim.RNG) (directsearch.Searcher, error) {
	switch s.kind {
	case searchKindNM:
		if st.NM == nil {
			return nil, fmt.Errorf("tuner: %s state is mid-search but has no nm state", s.name)
		}
		if !st.NM.Pending.Set {
			return nil, fmt.Errorf("tuner: %s state is mid-search with no pending candidate", s.name)
		}
		return directsearch.NewNelderMeadFromState(*st.NM, s.cfg.Box, s.nmConfig())
	default:
		if st.Compass == nil {
			return nil, fmt.Errorf("tuner: %s state is mid-search but has no compass state", s.name)
		}
		if !st.Compass.Pending.Set {
			return nil, fmt.Errorf("tuner: %s state is mid-search with no pending candidate", s.name)
		}
		return directsearch.NewCompassFromState(*st.Compass, s.cfg.Box, directsearch.CompassConfig{
			Lambda: s.cfg.Lambda,
		}, rng)
	}
}

// searchTuner is cs-tuner or nm-tuner as a blocking Tuner: a
// SearchStrategy under the shared Driver.
type searchTuner struct {
	cfg  Config
	name string
	kind string
}

// Name implements Tuner.
func (s *searchTuner) Name() string { return s.name }

// Tune implements Tuner.
func (s *searchTuner) Tune(ctx context.Context, t xfer.Transferer) (*Trace, error) {
	return tuneWith(ctx, s.cfg, t, func(cfg Config) Strategy {
		return newSearchStrategy(s.name, s.kind, cfg)
	})
}

// NewCS returns the compass-search tuner of Algorithm 2.
func NewCS(cfg Config) Tuner {
	return &searchTuner{cfg: cfg, name: "cs-tuner", kind: searchKindCompass}
}

// NewNM returns the Nelder–Mead tuner of Algorithm 3.
func NewNM(cfg Config) Tuner {
	return &searchTuner{cfg: cfg, name: "nm-tuner", kind: searchKindNM}
}
