package tuner

import (
	"context"

	"dstune/internal/directsearch"
	"dstune/internal/sim"
	"dstune/internal/xfer"
)

// searchTuner is the common frame of cs-tuner and nm-tuner
// (Algorithms 2 and 3): run the inner direct search to convergence,
// then hold the incumbent and monitor consecutive epoch throughputs;
// when they differ by more than the tolerance, invoke the search
// again.
type searchTuner struct {
	cfg  Config
	name string
	// newSearch builds a fresh inner search from a starting vector.
	newSearch func(start []int, cfg Config, rng *sim.RNG) directsearch.Searcher
}

// Name implements Tuner.
func (s *searchTuner) Name() string { return s.name }

// Tune implements Tuner.
func (s *searchTuner) Tune(ctx context.Context, t xfer.Transferer) (*Trace, error) {
	r, err := newRunner(s.name, s.cfg, t)
	if err != nil {
		return nil, err
	}
	defer r.close()
	cfg := r.cfg
	rng := sim.NewRNG(cfg.Seed)
	x0 := cfg.Box.ClampInt(cfg.Start)

	// The checkpoint's diagnostic search state: the tuner phase, the
	// inner search's position, and the RNG stream position. Resume
	// rebuilds all of it by replay; the snapshot exists for
	// inspection.
	phase := "search"
	var srch directsearch.Searcher
	r.searchState = func() any { return searchSnapshot(phase, srch, rng) }

	// search drives one inner direct search to convergence, one
	// control epoch per evaluation, and returns the incumbent.
	search := func(start []int) (x []int, f float64, stop bool, err error) {
		phase = "search"
		srch = s.newSearch(start, cfg, rng)
		for {
			cand, done := srch.Suggest()
			if done {
				x, f = srch.Best()
				return x, f, false, nil
			}
			rep, stop, err := r.run(ctx, cand)
			if err != nil || stop {
				bx, bf := srch.Best()
				if bx == nil {
					bx = start
				}
				return bx, bf, true, err
			}
			srch.Observe(r.fitness(rep))
		}
	}

	// Line 17: the initial search from x0.
	x, fLast, stop, err := search(x0)
	if err != nil || stop {
		return r.tr, err
	}
	phase = "monitor"

	// Lines 18-25: the monitor loop.
	for {
		rep, stop, err := r.run(ctx, x)
		if err != nil || stop {
			return r.tr, err
		}
		dc := delta(fLast, r.fitness(rep))
		fLast = r.fitness(rep)
		if dc > cfg.Tolerance || dc < -cfg.Tolerance {
			start := x0
			if cfg.Restart == FromCurrent {
				start = x
			}
			x, fLast, stop, err = search(start)
			if err != nil || stop {
				return r.tr, err
			}
			phase = "monitor"
		}
	}
}

// searchSnapshot composes the diagnostic search state cs-tuner and
// nm-tuner record in checkpoints: the tuner phase, the inner search's
// position (the compass step size and polling queue, or the
// Nelder–Mead simplex), and the RNG stream position (JSON-encoded as
// base64).
func searchSnapshot(phase string, srch directsearch.Searcher, rng *sim.RNG) any {
	st := map[string]any{"phase": phase}
	switch s := srch.(type) {
	case *directsearch.Compass:
		st["search"] = s.Snapshot()
	case *directsearch.NelderMead:
		st["search"] = s.Snapshot()
	}
	if b, err := rng.MarshalBinary(); err == nil {
		st["rng"] = b
	}
	return st
}

// NewCS returns the compass-search tuner of Algorithm 2.
func NewCS(cfg Config) Tuner {
	return &searchTuner{
		cfg:  cfg,
		name: "cs-tuner",
		newSearch: func(start []int, cfg Config, rng *sim.RNG) directsearch.Searcher {
			return directsearch.NewCompass(start, cfg.Box, directsearch.CompassConfig{
				Lambda: cfg.Lambda,
			}, rng)
		},
	}
}

// NewNM returns the Nelder–Mead tuner of Algorithm 3.
func NewNM(cfg Config) Tuner {
	return &searchTuner{
		cfg:  cfg,
		name: "nm-tuner",
		newSearch: func(start []int, cfg Config, rng *sim.RNG) directsearch.Searcher {
			nmCfg := cfg.NM
			if nmCfg.InitStep == 0 {
				nmCfg.InitStep = cfg.Lambda
			}
			return directsearch.NewNelderMead(start, cfg.Box, nmCfg)
		},
	}
}
