package tuner

import (
	"context"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"dstune/internal/history"
	"dstune/internal/xfer"
)

// fleetTestSession builds a one-transfer fleet session over a fake
// world peaked at the given nc.
func fleetTestSession(t *testing.T, name string, peak int) FleetSession {
	t.Helper()
	cfg := cfg1D(0)
	strat, err := NewStrategy("cs-tuner", cfg)
	if err != nil {
		t.Fatal(err)
	}
	return FleetSession{
		Name:      name,
		Strategy:  strat,
		Transfers: []xfer.Transferer{newFake(peaked(peak))},
		Maps:      []ParamMap{cfg.Map},
	}
}

// TestFleetRejectsSharedDurableIdentity is the dedup/durability guard:
// session-ID deduplication ("bulk", "bulk-2") keeps metrics apart, but
// checkpoint files and history keys are configured before dedup runs —
// two sessions pointing at one file (or one key) must be rejected, not
// silently interleaved.
func TestFleetRejectsSharedDurableIdentity(t *testing.T) {
	ckPath := filepath.Join(t.TempDir(), "run.checkpoint")

	a := fleetTestSession(t, "bulk", 10)
	a.Checkpoint = NewFileCheckpoint(ckPath)
	b := fleetTestSession(t, "bulk", 12)
	b.Checkpoint = NewFileCheckpoint(ckPath)
	_, err := NewFleet(FleetConfig{Epoch: 10, Budget: 20}, a, b).Run(context.Background())
	if err == nil || !strings.Contains(err.Error(), "share checkpoint file") {
		t.Fatalf("shared checkpoint file accepted: %v", err)
	}

	key := history.Key{Endpoint: "uchicago/bulk", SizeClass: -1, LoadClass: 0}
	c := fleetTestSession(t, "bulk", 10)
	c.HistoryKey = key
	d := fleetTestSession(t, "bulk", 12)
	d.HistoryKey = key
	_, err = NewFleet(FleetConfig{Epoch: 10, Budget: 20, History: history.NewMemStore()}, c, d).Run(context.Background())
	if err == nil || !strings.Contains(err.Error(), "share history key") {
		t.Fatalf("shared history key accepted: %v", err)
	}

	// Distinct durable identities under colliding names are fine: the
	// IDs deduplicate and both sessions run.
	e := fleetTestSession(t, "bulk", 10)
	e.Checkpoint = NewFileCheckpoint(ckPath)
	e.HistoryKey = key
	f := fleetTestSession(t, "bulk", 12)
	f.Checkpoint = NewFileCheckpoint(filepath.Join(t.TempDir(), "run-2.checkpoint"))
	f.HistoryKey = history.Key{Endpoint: "uchicago/bulk-2", SizeClass: -1, LoadClass: 0}
	results, err := NewFleet(FleetConfig{Epoch: 10, Budget: 20, History: history.NewMemStore()}, e, f).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if results[0].ID != "bulk" || results[1].ID != "bulk-2" {
		t.Fatalf("session IDs = %q, %q", results[0].ID, results[1].ID)
	}
}

// TestFleetRecordsHistory: sessions ending cleanly record their best
// observed epoch in the shared store under their own keys; keyless
// sessions record nothing.
func TestFleetRecordsHistory(t *testing.T) {
	store := history.NewMemStore()
	keyA := history.Key{Endpoint: "uchicago/bulk", SizeClass: -1, LoadClass: 0}
	a := fleetTestSession(t, "bulk", 10)
	a.HistoryKey = keyA
	b := fleetTestSession(t, "background", 20) // no key: must not record
	results, err := NewFleet(FleetConfig{Epoch: 10, Budget: 60, History: store}, a, b).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range results {
		if r.Err != nil {
			t.Fatalf("session %s failed: %v", r.ID, r.Err)
		}
	}
	if store.Len() != 1 {
		t.Fatalf("store holds %d records, want 1", store.Len())
	}
	bestX, bestTp, ok := results[0].Traces[0].BestEpoch()
	if !ok {
		t.Fatal("session recorded no epochs")
	}
	e, ok := store.Lookup(keyA)
	if !ok || !reflect.DeepEqual(e.X, bestX) || e.Throughput != bestTp {
		t.Fatalf("Lookup = %+v ok=%v, want best epoch %v at %v", e, ok, bestX, bestTp)
	}
	rec := store.Records("uchicago/bulk")[0]
	if rec.Tuner != "cs-tuner" || rec.Epochs != len(results[0].Traces[0].Results) {
		t.Fatalf("record metadata = %+v", rec)
	}
}
