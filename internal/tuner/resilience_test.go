package tuner

import (
	"context"
	"errors"
	"fmt"
	"testing"

	"dstune/internal/directsearch"
	"dstune/internal/xfer"
)

// flaky is a Transferer whose listed run numbers (1-based) fail with a
// transient error; all other runs deliver a constant throughput.
type flaky struct {
	now       float64
	failRuns  map[int]bool
	fatalRuns map[int]bool
	runs      int
	stopped   bool
}

func (f *flaky) Run(ctx context.Context, p xfer.Params, epoch float64) (xfer.Report, error) {
	if f.stopped {
		return xfer.Report{}, xfer.ErrStopped
	}
	f.runs++
	start := f.now
	f.now += epoch
	if f.fatalRuns[f.runs] {
		return xfer.Report{}, errors.New("flaky: fatal failure")
	}
	if f.failRuns[f.runs] {
		return xfer.Report{}, xfer.Transient(fmt.Errorf("flaky: epoch %d failed", f.runs))
	}
	const tput = 100e6
	return xfer.Report{
		Params: p, Start: start, End: f.now,
		Bytes: tput * epoch, Throughput: tput, BestCase: tput,
	}, nil
}

func (f *flaky) Remaining() float64 { return 1 }
func (f *flaky) Now() float64       { return f.now }
func (f *flaky) Stop()              { f.stopped = true }

func TestRunnerToleratesConsecutiveTransients(t *testing.T) {
	const maxFail = 3
	cases := []struct {
		name     string
		failRuns map[int]bool
		wantErr  bool
	}{
		{"no failures", nil, false},
		{"one transient", map[int]bool{2: true}, false},
		{"n-1 consecutive", map[int]bool{2: true, 3: true}, false},
		{"n consecutive aborts", map[int]bool{2: true, 3: true, 4: true}, true},
		{"n non-consecutive survives", map[int]bool{2: true, 3: true, 5: true, 7: true}, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			f := &flaky{failRuns: tc.failRuns}
			cfg := Config{
				Epoch:                1,
				Box:                  directsearch.MustBox([]int{1}, []int{8}),
				Start:                []int{2},
				Map:                  MapNC(1),
				Budget:               10,
				MaxTransientFailures: maxFail,
			}
			tr, err := NewStatic(cfg).Tune(context.Background(), f)
			if tc.wantErr {
				if err == nil {
					t.Fatal("n consecutive transient failures did not abort")
				}
				if !xfer.IsTransient(err) {
					t.Fatalf("abort error lost the transient mark: %v", err)
				}
				return
			}
			if err != nil {
				t.Fatalf("tuning aborted: %v", err)
			}
			// Failed epochs are recorded as zero-throughput entries and
			// the trace stays monotone in time.
			for i, r := range tr.Results {
				failed := tc.failRuns[i+1]
				if failed && r.Report.Throughput != 0 {
					t.Fatalf("epoch %d failed but reports throughput %v", i, r.Report.Throughput)
				}
				if i > 0 && r.Report.Start < tr.Results[i-1].Report.End {
					t.Fatalf("epoch %d not monotone in time", i)
				}
			}
			if len(tr.Results) != 10 {
				t.Fatalf("trace has %d epochs, want 10 (failures recorded, not dropped)", len(tr.Results))
			}
		})
	}
}

func TestFatalErrorStillAborts(t *testing.T) {
	f := &flaky{fatalRuns: map[int]bool{3: true}}
	cfg := Config{
		Epoch:  1,
		Box:    directsearch.MustBox([]int{1}, []int{8}),
		Start:  []int{2},
		Map:    MapNC(1),
		Budget: 10,
	}
	_, err := NewStatic(cfg).Tune(context.Background(), f)
	if err == nil {
		t.Fatal("fatal error did not abort tuning")
	}
	if xfer.IsTransient(err) {
		t.Fatalf("fatal error wrongly marked transient: %v", err)
	}
}

func TestZeroEpochReTriggersSearch(t *testing.T) {
	// A transient outage during the cs-tuner's hold phase must drive
	// the ε-monitor (a zero reading is an infinite relative change) and
	// re-start the inner search rather than kill the trace.
	f := &flaky{failRuns: map[int]bool{8: true}}
	cfg := Config{
		Epoch:  1,
		Box:    directsearch.MustBox([]int{1}, []int{8}),
		Start:  []int{2},
		Map:    MapNC(1),
		Budget: 20,
		Lambda: 2,
		Seed:   1,
	}
	tr, err := NewCS(cfg).Tune(context.Background(), f)
	if err != nil {
		t.Fatalf("cs-tuner died on a single transient outage: %v", err)
	}
	if len(tr.Results) < 15 {
		t.Fatalf("trace ended early: %d epochs", len(tr.Results))
	}
}

func TestToleranceSentinels(t *testing.T) {
	cases := []struct {
		name                string
		tol, lambda         float64
		wantTol, wantLambda float64
	}{
		{"zero values select paper defaults", 0, 0, 5, 8},
		{"explicit values kept", 12, 3, 12, 3},
		{"sentinels select exact zero", NoTolerance, NoLambda, 0, 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := Config{
				Tolerance: tc.tol,
				Lambda:    tc.lambda,
				Box:       directsearch.MustBox([]int{1}, []int{8}),
				Start:     []int{2},
				Map:       MapNC(1),
			}
			if err := cfg.Validate(); err != nil {
				t.Fatalf("Validate rejected the config: %v", err)
			}
			got := cfg.withDefaults()
			if got.Tolerance != tc.wantTol {
				t.Fatalf("Tolerance resolved to %v, want %v", got.Tolerance, tc.wantTol)
			}
			if got.Lambda != tc.wantLambda {
				t.Fatalf("Lambda resolved to %v, want %v", got.Lambda, tc.wantLambda)
			}

			jcfg := JointConfig{Tolerance: tc.tol, Lambda: tc.lambda}
			jgot := jcfg.withDefaults()
			if jgot.Tolerance != tc.wantTol || jgot.Lambda != tc.wantLambda {
				t.Fatalf("JointConfig resolved (%v, %v), want (%v, %v)",
					jgot.Tolerance, jgot.Lambda, tc.wantTol, tc.wantLambda)
			}
		})
	}
}

func TestNoToleranceMakesEveryChangeSignificant(t *testing.T) {
	// With ε = 0 the cd-tuner must react to an arbitrarily small
	// slope; with the default ε = 5% it must hold. The fake's
	// throughput grows 1% per unit of nc — below 5, above 0.
	gentle := func(p xfer.Params, _ float64) float64 {
		return 100e6 * (1 + 0.01*float64(p.NC))
	}
	run := func(tol float64) int {
		f := &fake{remaining: 1e18, g: gentle}
		cfg := Config{
			Epoch:     1,
			Tolerance: tol,
			Box:       directsearch.MustBox([]int{1}, []int{64}),
			Start:     []int{2},
			Map:       MapNC(1),
			Budget:    30,
		}
		tr, err := NewCD(cfg).Tune(context.Background(), f)
		if err != nil {
			t.Fatal(err)
		}
		return tr.FinalX()[0]
	}
	if got := run(NoTolerance); got <= 3 {
		t.Fatalf("ε=0 cd-tuner stayed at nc=%d, want climb", got)
	}
	if got := run(0); got > 4 {
		t.Fatalf("default-ε cd-tuner climbed to nc=%d on an insignificant slope", got)
	}
}
