package tuner

import (
	"reflect"
	"testing"

	"dstune/internal/obs"
	"dstune/internal/xfer"
)

// kernelCfg is the shared configuration of the kernel-aware tests: a
// 1-D box with a 10% ε so a 50% dip is unambiguously significant.
func kernelCfg(observer *obs.Observer) Config {
	cfg := simCfg()
	cfg.Tolerance = 10
	cfg.Restart = FromCurrent
	if observer != nil {
		cfg.Obs = observer.Session("ka")
	}
	return cfg
}

// settle drives s with a constant fitness until the inner search
// converges to its monitor phase (the proposal stops moving), then
// returns the incumbent vector.
func settle(t *testing.T, s Strategy, fitness float64) []int {
	t.Helper()
	var x []int
	stable := 0
	for i := 0; i < 200; i++ {
		nx, done := s.Propose()
		if done {
			t.Fatal("strategy finished during settling")
		}
		if reflect.DeepEqual(nx, x) {
			stable++
			if stable >= 5 {
				return x
			}
		} else {
			stable = 0
		}
		x = nx
		s.Observe(xfer.Report{Throughput: fitness, BestCase: fitness})
	}
	t.Fatal("search did not settle in 200 epochs")
	return nil
}

// retriggers counts RetriggerEpsilon events recorded so far.
func retriggers(observer *obs.Observer) int {
	n := 0
	for _, ev := range observer.Recorder().Events() {
		if ev.Type == obs.EventRetriggerEpsilon {
			n++
		}
	}
	return n
}

// TestKernelAwareRegistration: the prefix registers, refuses to nest,
// composes under warm: (and only in that order), and canonicalizes its
// inner alias.
func TestKernelAwareRegistration(t *testing.T) {
	if !KnownStrategy("kernel-aware:cs-tuner") {
		t.Fatal("kernel-aware:cs-tuner unknown")
	}
	if !KnownStrategy("warm:kernel-aware:cs-tuner") {
		t.Fatal("warm:kernel-aware:cs-tuner unknown")
	}
	for _, bad := range []string{
		"kernel-aware:kernel-aware:cs-tuner",
		"kernel-aware:warm:cs-tuner",
		"kernel-aware:bogus",
		"kernel-aware:",
	} {
		if KnownStrategy(bad) {
			t.Fatalf("KnownStrategy(%q) = true", bad)
		}
		if _, err := NewStrategy(bad, kernelCfg(nil)); err == nil {
			t.Fatalf("NewStrategy(%q) succeeded", bad)
		}
	}
	s, err := NewStrategy("kernel-aware:static", kernelCfg(nil))
	if err != nil {
		t.Fatal(err)
	}
	if s.Name() != "kernel-aware:default" {
		t.Fatalf("Name() = %q, want kernel-aware:default", s.Name())
	}
	if got := canonicalName("warm:kernel-aware:static"); got != "warm:kernel-aware:default" {
		t.Fatalf("canonicalName = %q", got)
	}
	w, err := NewStrategy("warm:kernel-aware:cs-tuner", kernelCfg(nil))
	if err != nil {
		t.Fatal(err)
	}
	if w.Name() != "warm:kernel-aware:cs-tuner" {
		t.Fatalf("composed Name() = %q", w.Name())
	}
}

// TestKernelAwareDampsRetransDips: once the inner cs-tuner is in its
// monitor phase, a significant dip accompanied by kernel-reported
// retransmissions is damped — no retrigger, incumbent held — for at
// most kernelDampCap consecutive epochs, after which the dip passes
// through and the search restarts.
func TestKernelAwareDampsRetransDips(t *testing.T) {
	observer := obs.NewObserver(obs.ObserverConfig{})
	s, err := NewKernelAware("cs-tuner", kernelCfg(observer))
	if err != nil {
		t.Fatal(err)
	}
	const base = 100e6
	incumbent := settle(t, s, base)
	before := retriggers(observer)

	lossyDip := xfer.Report{
		Throughput: base / 2, BestCase: base / 2,
		Kernel: &xfer.KernelStats{RetransDelta: 7},
	}
	for i := 1; i <= kernelDampCap; i++ {
		s.Observe(lossyDip)
		if got := s.Damped(); got != i {
			t.Fatalf("after lossy dip %d: Damped() = %d, want %d", i, got, i)
		}
		if retriggers(observer) != before {
			t.Fatalf("lossy dip %d retriggered the search", i)
		}
		if x, _ := s.Propose(); !reflect.DeepEqual(x, incumbent) {
			t.Fatalf("lossy dip %d moved the proposal to %v (incumbent %v)", i, x, incumbent)
		}
	}

	// Past the cap the dip is real no matter what the kernel says.
	s.Observe(lossyDip)
	if got := s.Damped(); got != 0 {
		t.Fatalf("after capped dip: Damped() = %d, want 0", got)
	}
	if retriggers(observer) != before+1 {
		t.Fatal("dip beyond the damp cap did not retrigger the search")
	}
}

// TestKernelAwarePassesThroughCleanDips: a significant dip with no
// retransmissions (the paper's CPU-contention case) or with no kernel
// samples at all (Sim fabric) retriggers immediately.
func TestKernelAwarePassesThroughCleanDips(t *testing.T) {
	for _, tc := range []struct {
		name   string
		kernel *xfer.KernelStats
	}{
		{"no-samples", nil},
		{"no-retrans", &xfer.KernelStats{RetransDelta: 0}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			observer := obs.NewObserver(obs.ObserverConfig{})
			s, err := NewKernelAware("cs-tuner", kernelCfg(observer))
			if err != nil {
				t.Fatal(err)
			}
			const base = 100e6
			settle(t, s, base)
			before := retriggers(observer)
			s.Observe(xfer.Report{Throughput: base / 2, BestCase: base / 2, Kernel: tc.kernel})
			if s.Damped() != 0 {
				t.Fatalf("clean dip was damped")
			}
			if retriggers(observer) != before+1 {
				t.Fatal("clean dip did not retrigger the search")
			}
		})
	}
}

// TestKernelAwareRecoveryKeepsBaseline: a damped dip must not poison
// the wrapper's baseline — when throughput recovers to the pre-dip
// level the recovery is not itself a significant change.
func TestKernelAwareRecoveryKeepsBaseline(t *testing.T) {
	observer := obs.NewObserver(obs.ObserverConfig{})
	s, err := NewKernelAware("cs-tuner", kernelCfg(observer))
	if err != nil {
		t.Fatal(err)
	}
	const base = 100e6
	settle(t, s, base)
	before := retriggers(observer)
	s.Observe(xfer.Report{Throughput: base / 2, BestCase: base / 2, Kernel: &xfer.KernelStats{RetransDelta: 3}})
	s.Observe(xfer.Report{Throughput: base, BestCase: base})
	if s.Damped() != 0 {
		t.Fatal("recovery left the wrapper damped")
	}
	if retriggers(observer) != before {
		t.Fatal("recovery from a damped dip retriggered the search")
	}
}

// TestKernelAwareSnapshotRoundTrip: a mid-damp snapshot restores into
// an identically configured strategy with the damp count, baseline,
// and inner search state intact.
func TestKernelAwareSnapshotRoundTrip(t *testing.T) {
	s, err := NewKernelAware("cs-tuner", kernelCfg(nil))
	if err != nil {
		t.Fatal(err)
	}
	const base = 100e6
	incumbent := settle(t, s, base)
	s.Observe(xfer.Report{Throughput: base / 2, BestCase: base / 2, Kernel: &xfer.KernelStats{RetransDelta: 1}})
	raw, err := s.Snapshot()
	if err != nil {
		t.Fatal(err)
	}

	r, err := NewKernelAware("cs-tuner", kernelCfg(nil))
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Restore(raw); err != nil {
		t.Fatal(err)
	}
	if r.Damped() != 1 {
		t.Fatalf("restored Damped() = %d, want 1", r.Damped())
	}
	if x, _ := r.Propose(); !reflect.DeepEqual(x, incumbent) {
		t.Fatalf("restored proposal = %v, want %v", x, incumbent)
	}
	// The restored wrapper damps exactly one more epoch, like the
	// original would.
	r.Observe(xfer.Report{Throughput: base / 2, BestCase: base / 2, Kernel: &xfer.KernelStats{RetransDelta: 1}})
	if r.Damped() != 2 {
		t.Fatalf("restored wrapper Damped() = %d after second dip, want 2", r.Damped())
	}

	// Garbage and truncated states are rejected.
	if err := r.Restore([]byte("{")); err == nil {
		t.Fatal("garbage state accepted")
	}
	if err := r.Restore([]byte(`{"last":1,"armed":true,"damped":0}`)); err == nil {
		t.Fatal("state without inner accepted")
	}
	if err := r.Restore([]byte(`{"last":1,"armed":true,"damped":9,"inner":{}}`)); err == nil {
		t.Fatal("out-of-range damp count accepted")
	}
}
