package tuner

import (
	"context"
	"errors"
	"fmt"
	"time"

	"dstune/internal/ivec"
	"dstune/internal/obs"
	"dstune/internal/xfer"
)

// Driver owns the control-epoch loop every tuner shares: it paces a
// Strategy against a transfer one epoch at a time, enforces the time
// budget, tolerates transient epoch failures, and checkpoints after
// every epoch. The seven tuners are thin Strategy + Driver
// compositions; custom strategies get the same machinery through
// NewDriver directly.
type Driver struct {
	cfg Config
}

// NewDriver returns a driver for cfg. Run validates the configuration.
func NewDriver(cfg Config) *Driver { return &Driver{cfg: cfg} }

// Run drives s against t until the transfer completes, the budget is
// reached, or s stops proposing, then stops the transfer and returns
// the per-epoch trace.
//
// With cfg.Resume set, Run first restores s from the checkpoint's
// serialized strategy state and preloads the recorded trace — an O(1)
// continuation that never re-runs an epoch. With cfg.ValidateResume
// set it instead rebuilds s by replaying the recorded reports through
// it, verifying that every proposal matches what the checkpoint
// recorded; a mismatch (a changed configuration) fails loudly.
//
// Cancelling ctx aborts the in-flight epoch promptly and returns the
// trace so far with the context's error; closing cfg.Drain instead
// finishes the in-flight epoch first and returns ErrInterrupted.
// Either way a final checkpoint is written (when configured) and the
// transfer is left running — not stopped — so a later run can resume.
func (d *Driver) Run(ctx context.Context, s Strategy, t xfer.Transferer) (*Trace, error) {
	if err := d.cfg.Validate(); err != nil {
		return nil, err
	}
	r := &session{cfg: d.cfg.withDefaults(), s: s, t: t, tr: &Trace{Tuner: s.Name()}}
	r.cfg.Obs.SetStrategy(s.Name())
	if ck := d.cfg.Resume; ck != nil {
		if err := r.resume(ck); err != nil {
			return nil, err
		}
	}
	defer r.close()
	tr, err := r.loop(ctx)
	r.cfg.Obs.Finish(err)
	return tr, err
}

// session is one Driver.Run in flight.
type session struct {
	cfg Config
	s   Strategy
	t   xfer.Transferer
	tr  *Trace
	// records mirrors tr.Results with the transient flag attached —
	// the trace a checkpoint carries.
	records []EpochRecord
	// transients counts consecutive transient epoch failures.
	transients int
	// preserve suppresses Stop on close: set when the run is
	// interrupted, because stopping the transfer would discard state a
	// resumed run needs (a real-socket Stop deletes the server-side
	// byte account).
	preserve bool
	// lastX is the previously proposed vector, carried on Propose
	// events so a trace shows the strategy's step deltas.
	lastX []int
	// lastFit is the fitness of the previous observed epoch, the
	// baseline for the relative delta carried on Observe events.
	lastFit float64
	// haveFit reports whether lastFit holds a real observation yet.
	haveFit bool
}

// resume validates ck against the strategy and restores the session
// mid-trajectory: the recorded epochs are preloaded into the trace and
// the strategy state is either deserialized directly (the default) or
// rebuilt by replaying the recorded reports (cfg.ValidateResume).
func (r *session) resume(ck *Checkpoint) error {
	if ck.Version != CheckpointVersion {
		return fmt.Errorf("tuner: checkpoint version %d, this build reads %d", ck.Version, CheckpointVersion)
	}
	if ck.Tuner != r.s.Name() {
		return fmt.Errorf("tuner: checkpoint belongs to %q, cannot resume with %q", ck.Tuner, r.s.Name())
	}
	if ck.Epochs != len(ck.Trace) {
		return fmt.Errorf("tuner: corrupt checkpoint: %d epochs but %d trace records", ck.Epochs, len(ck.Trace))
	}
	r.cfg.Seed = ck.Seed
	if len(ck.Trace) == 0 {
		return nil
	}
	if r.cfg.ValidateResume {
		return r.replay(ck)
	}
	if len(ck.Strategy) == 0 {
		return errors.New("tuner: checkpoint has no strategy state; set ValidateResume to rebuild it by replay")
	}
	if err := r.s.Restore(ck.Strategy); err != nil {
		return fmt.Errorf("tuner: resume: %w", err)
	}
	for _, rec := range ck.Trace {
		r.record(rec.X, rec.Report, rec.Transient)
	}
	r.transients = ck.Transients
	return nil
}

// replay rebuilds the strategy state by feeding the recorded reports
// through a fresh strategy, verifying that each proposal matches the
// vector the original run recorded — the opt-in divergence check for
// resumes whose configuration may have drifted.
func (r *session) replay(ck *Checkpoint) error {
	for _, rec := range ck.Trace {
		x, done := r.s.Propose()
		if done {
			return fmt.Errorf("tuner: resume diverged at epoch %d: strategy finished, checkpoint recorded %v", len(r.records), rec.X)
		}
		if !ivec.Equal(x, rec.X) {
			return fmt.Errorf(
				"tuner: resume diverged at epoch %d: proposed %v, checkpoint recorded %v (was the configuration changed?)",
				len(r.records), x, rec.X)
		}
		if rec.Transient {
			r.transients++
		} else {
			r.transients = 0
		}
		r.record(rec.X, rec.Report, rec.Transient)
		r.s.Observe(rec.Report)
	}
	return nil
}

// loop is the epoch loop: check for interrupts and exhaustion, ask the
// strategy for a vector, run the epoch, tell the strategy what
// happened.
func (r *session) loop(ctx context.Context) (*Trace, error) {
	for {
		if err := r.interrupted(ctx); err != nil {
			if ckErr := r.checkpoint(); ckErr != nil {
				return r.tr, ckErr
			}
			return r.tr, err
		}
		if r.spent() {
			return r.tr, nil
		}
		x, done := r.s.Propose()
		if done {
			return r.tr, nil
		}
		r.cfg.Obs.Propose(r.t.Now(), x, r.lastX)
		r.lastX = ivec.Clone(x)
		stop, err := r.step(ctx, x)
		if err != nil || stop {
			return r.tr, err
		}
	}
}

// step executes one control epoch with vector x, records it, and
// feeds the report to the strategy. The bool result reports whether
// tuning should stop.
//
// A transient failure (xfer.ErrTransient) does not abort the trace:
// up to MaxTransientFailures-1 consecutive failures are each recorded
// and observed as a zero-throughput epoch and tuning continues — the
// zero reading trips the ε-monitor, so the search re-engages once the
// transfer recovers. The MaxTransientFailures-th consecutive failure,
// and any fatal error, stops tuning with the error. A ctx cancelled
// mid-epoch records the partial epoch (when it carries any transfer
// time), checkpoints, and stops with the context's error.
func (r *session) step(ctx context.Context, x []int) (bool, error) {
	p := r.cfg.Map(x)
	epoch := len(r.records)
	start := r.t.Now()
	r.cfg.Obs.EpochStart(start, epoch, x)
	rep, err := r.t.Run(ctx, p, r.cfg.Epoch)
	switch {
	case err == nil:
		r.transients = 0
		r.record(x, rep, false)
		r.observe(epoch, x, rep, false)
		if ckErr := r.checkpoint(); ckErr != nil {
			return true, ckErr
		}
		return rep.Done, nil
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		r.preserve = true
		if rep.End > rep.Start {
			r.record(x, rep, false)
			r.observe(epoch, x, rep, false)
		}
		if ckErr := r.checkpoint(); ckErr != nil {
			return true, ckErr
		}
		return true, err
	case xfer.IsTransient(err):
		r.transients++
		if r.transients < r.cfg.MaxTransientFailures {
			rep = xfer.Report{Params: p, Start: start, End: r.t.Now()}
			r.record(x, rep, true)
			r.observe(epoch, x, rep, true)
			if ckErr := r.checkpoint(); ckErr != nil {
				return true, ckErr
			}
			return false, nil
		}
		return true, err
	default:
		return true, err
	}
}

// observe publishes the epoch's outcome to the observation plane and
// feeds the report to the strategy, in that order, so an ε-retrigger
// emitted inside Strategy.Observe lands after the Observe event in the
// trace.
func (r *session) observe(epoch int, x []int, rep xfer.Report, transient bool) {
	if r.cfg.Obs != nil {
		budget := r.cfg.MaxTransientFailures - 1 - r.transients
		if budget < 0 {
			budget = 0
		}
		r.cfg.Obs.EpochEnd(rep.End, epoch, x, obs.EpochStats{
			Throughput:      rep.Throughput,
			BestCase:        rep.BestCase,
			Bytes:           rep.Bytes,
			DeadTime:        rep.DeadTime,
			Dials:           rep.Dials,
			ReusedStreams:   rep.ReusedStreams,
			Retries:         rep.Retries,
			DegradedStreams: rep.DegradedStreams,
			Files:           rep.Files,
			FirstByteLag:    rep.FirstByteLag,
		}, transient, budget)
		f := fitnessOf(r.cfg, rep)
		var d float64
		if r.haveFit {
			d = delta(r.lastFit, f)
		}
		r.lastFit, r.haveFit = f, true
		r.cfg.Obs.Observe(rep.End, epoch, d)
	}
	r.s.Observe(rep)
}

// interrupted reports the pending interrupt, if any: a cancelled ctx
// (hard abort) or a closed Drain channel (stop at the epoch
// boundary). Either way the transfer is preserved for resumption.
func (r *session) interrupted(ctx context.Context) error {
	if err := ctx.Err(); err != nil {
		r.preserve = true
		return err
	}
	if r.cfg.Drain != nil {
		select {
		case <-r.cfg.Drain:
			r.preserve = true
			return ErrInterrupted
		default:
		}
	}
	return nil
}

// spent reports whether the transfer is finished or out of budget.
func (r *session) spent() bool {
	if r.t.Remaining() <= 0 {
		return true
	}
	if r.cfg.Budget > 0 && r.t.Now() >= r.cfg.Budget-1e-9 {
		return true
	}
	return false
}

// record appends an epoch to the trace and the checkpoint record.
func (r *session) record(x []int, rep xfer.Report, transient bool) {
	r.tr.add(x, rep)
	r.records = append(r.records, EpochRecord{X: ivec.Clone(x), Report: rep, Transient: transient})
}

// close releases the transfer, unless the run was interrupted — an
// interrupted transfer is left alive so a checkpointed run can resume
// it (the caller may still Stop it explicitly).
func (r *session) close() {
	if r.preserve {
		return
	}
	r.t.Stop()
}

// checkpoint snapshots the session's durable state — including the
// strategy's serialized state machine — to the configured writer; with
// no writer configured it is a no-op.
func (r *session) checkpoint() error {
	if r.cfg.Checkpoint == nil {
		return nil
	}
	raw, err := r.s.Snapshot()
	if err != nil {
		return fmt.Errorf("tuner: checkpoint: strategy snapshot: %w", err)
	}
	ck := &Checkpoint{
		Version:    CheckpointVersion,
		Tuner:      r.tr.Tuner,
		Seed:       r.cfg.Seed,
		Epochs:     len(r.records),
		Transients: r.transients,
		Transfer:   xfer.CaptureState(r.t),
		Strategy:   raw,
		Trace:      append([]EpochRecord(nil), r.records...),
	}
	t0 := time.Now()
	if err := r.cfg.Checkpoint.Save(ck); err != nil {
		return fmt.Errorf("tuner: checkpoint: %w", err)
	}
	// The write latency is wall time and lands in metrics only; the
	// event carries the transfer clock, keeping Sim traces
	// deterministic.
	r.cfg.Obs.CheckpointWritten(r.t.Now(), ck.Epochs, time.Since(t0).Seconds())
	return nil
}
