package tuner

import (
	"context"
	"encoding/json"
	"fmt"

	"dstune/internal/history"
	"dstune/internal/ivec"
	"dstune/internal/xfer"
)

// Phases of the two-phase strategy.
const (
	twoPhaseCoarse = "coarse" // sampling the candidate list, one epoch each
	twoPhaseFine   = "fine"   // refining around the coarse winner
)

// fineLambda is the fine phase's initial compass step: small, because
// the coarse phase already placed the search near an operating point.
const fineLambda = 2

// TwoPhaseState is the serializable state of the two-phase strategy:
// the phase, the coarse candidate list with the fitnesses observed so
// far, and — once the fine search is running — the coarse winner and
// the inner search's complete state.
type TwoPhaseState struct {
	// Phase is "coarse" or "fine".
	Phase string `json:"phase"`
	// Cands is the coarse candidate list (coarse phase only). It is
	// serialized state, not configuration: a warm construction derives
	// it from the history store, and a resume must not re-derive it.
	Cands [][]int `json:"cands,omitempty"`
	// Fits holds the observed fitness of each sampled candidate, in
	// candidate order (coarse phase only).
	Fits []float64 `json:"fits,omitempty"`
	// Winner is the coarse phase's best candidate (fine phase only).
	Winner []int `json:"winner,omitempty"`
	// Inner is the fine search's serialized state (fine phase only).
	Inner json.RawMessage `json:"inner,omitempty"`
}

// TwoPhaseStrategy is the coarse-then-fine tuner of the historical
// knowledge plane (after the two-phase designs surveyed in
// arXiv:1812.11255): a short coarse phase evaluates a handful of
// candidates — seeded by the history store's prediction when one
// exists, by scalings of the cold-start point otherwise — for one
// control epoch each, then a fine compass search with a small initial
// step refines around the coarse winner under the usual ε-monitor.
// Monitor retriggers restart the fine search from the coarse winner,
// not the cold-start point.
type TwoPhaseStrategy struct {
	cfg    Config
	phase  string
	cands  [][]int
	fits   []float64
	winner []int
	fine   *SearchStrategy
}

// NewTwoPhase builds a two-phase strategy, consulting the store under
// key for the coarse phase's seed when store is non-nil and no resume
// is pending (the consultation is announced through cfg.Obs as a
// WarmStart event). NewStrategy("two-phase", cfg) uses the nil-store
// form.
func NewTwoPhase(cfg Config, store *history.Store, key history.Key) *TwoPhaseStrategy {
	cfg = cfg.withDefaults()
	s := &TwoPhaseStrategy{cfg: cfg, phase: twoPhaseCoarse}
	var pred []int
	if store != nil && cfg.Resume == nil {
		if e, ok := store.Lookup(key); ok && len(e.X) == cfg.Box.Dim() {
			pred = cfg.Box.ClampInt(e.X)
		}
		cfg.Obs.WarmStart(0, pred, pred != nil)
	}
	s.cands = coarseCandidates(cfg, pred)
	return s
}

// NewTwoPhaseStrategy builds the cold (store-less) two-phase strategy.
func NewTwoPhaseStrategy(cfg Config) *TwoPhaseStrategy {
	return NewTwoPhase(cfg, nil, history.Key{})
}

// coarseCandidates derives the coarse sampling list: around a
// historical prediction it brackets the predicted optimum (pred,
// pred×2, pred÷2); cold it climbs from the start point (start, ×2,
// ×4). Candidates are clamped to the box and deduplicated in order,
// so the list always holds at least one vector.
func coarseCandidates(cfg Config, pred []int) [][]int {
	scale := func(x []int, num, den int) []int {
		out := make([]int, len(x))
		for i, v := range x {
			out[i] = v * num / den
		}
		return cfg.Box.ClampInt(out)
	}
	var raw [][]int
	if pred != nil {
		raw = [][]int{scale(pred, 1, 1), scale(pred, 2, 1), scale(pred, 1, 2)}
	} else {
		start := cfg.Box.ClampInt(cfg.Start)
		raw = [][]int{scale(start, 1, 1), scale(start, 2, 1), scale(start, 4, 1)}
	}
	var cands [][]int
	for _, c := range raw {
		dup := false
		for _, prev := range cands {
			if ivec.Equal(prev, c) {
				dup = true
				break
			}
		}
		if !dup {
			cands = append(cands, c)
		}
	}
	return cands
}

// Name implements Strategy.
func (s *TwoPhaseStrategy) Name() string { return "two-phase" }

// Propose implements Strategy.
func (s *TwoPhaseStrategy) Propose() ([]int, bool) {
	if s.phase == twoPhaseCoarse {
		return ivec.Clone(s.cands[len(s.fits)]), false
	}
	return s.fine.Propose()
}

// Observe implements Strategy.
func (s *TwoPhaseStrategy) Observe(rep xfer.Report) {
	if s.phase == twoPhaseFine {
		s.fine.Observe(rep)
		return
	}
	s.fits = append(s.fits, fitnessOf(s.cfg, rep))
	if len(s.fits) == len(s.cands) {
		best := 0
		for i, f := range s.fits {
			if f > s.fits[best] {
				best = i
			}
		}
		s.enterFine(s.cands[best])
	}
}

// enterFine starts the fine compass search around the coarse winner.
func (s *TwoPhaseStrategy) enterFine(winner []int) {
	s.winner = ivec.Clone(winner)
	fcfg := s.cfg
	fcfg.Start = s.winner
	fcfg.Lambda = fineLambda
	s.fine = newSearchStrategy("two-phase", searchKindCompass, fcfg)
	s.phase = twoPhaseFine
}

// Snapshot implements Strategy.
func (s *TwoPhaseStrategy) Snapshot() (json.RawMessage, error) {
	st := TwoPhaseState{Phase: s.phase}
	if s.phase == twoPhaseCoarse {
		st.Cands = s.cands
		st.Fits = s.fits
		return json.Marshal(st)
	}
	raw, err := s.fine.Snapshot()
	if err != nil {
		return nil, fmt.Errorf("tuner: two-phase snapshot: %w", err)
	}
	st.Winner = s.winner
	st.Inner = raw
	return json.Marshal(st)
}

// Restore implements Strategy.
func (s *TwoPhaseStrategy) Restore(raw json.RawMessage) error {
	var st TwoPhaseState
	if err := json.Unmarshal(raw, &st); err != nil {
		return fmt.Errorf("tuner: two-phase state: %w", err)
	}
	dim := s.cfg.Box.Dim()
	switch st.Phase {
	case twoPhaseCoarse:
		if len(st.Cands) == 0 {
			return fmt.Errorf("tuner: two-phase state has no candidates")
		}
		for i, c := range st.Cands {
			if len(c) != dim {
				return fmt.Errorf("tuner: two-phase candidate %d has %d dims, box has %d", i, len(c), dim)
			}
		}
		if len(st.Fits) >= len(st.Cands) {
			return fmt.Errorf("tuner: two-phase state is coarse with %d of %d candidates already observed", len(st.Fits), len(st.Cands))
		}
		s.phase = twoPhaseCoarse
		s.cands = st.Cands
		s.fits = st.Fits
		s.winner = nil
		s.fine = nil
		return nil
	case twoPhaseFine:
		if len(st.Winner) != dim {
			return fmt.Errorf("tuner: two-phase winner has %d dims, box has %d", len(st.Winner), dim)
		}
		if len(st.Inner) == 0 {
			return fmt.Errorf("tuner: two-phase state is fine but has no inner search state")
		}
		fcfg := s.cfg
		fcfg.Start = s.cfg.Box.ClampInt(st.Winner)
		fcfg.Lambda = fineLambda
		fine := newSearchStrategy("two-phase", searchKindCompass, fcfg)
		if err := fine.Restore(st.Inner); err != nil {
			return err
		}
		s.phase = twoPhaseFine
		s.winner = ivec.Clone(fcfg.Start)
		s.fine = fine
		s.cands = nil
		s.fits = nil
		return nil
	}
	return fmt.Errorf("tuner: two-phase state has unknown phase %q", st.Phase)
}

// twoPhaseTuner is the two-phase strategy under the shared Driver.
type twoPhaseTuner struct {
	cfg   Config
	store *history.Store
	key   history.Key
}

// NewTwoPhaseTuner returns the two-phase Tuner: coarse historical
// sampling, then fine online search. The store may be nil.
func NewTwoPhaseTuner(cfg Config, store *history.Store, key history.Key) Tuner {
	return &twoPhaseTuner{cfg: cfg, store: store, key: key}
}

// Name implements Tuner.
func (w *twoPhaseTuner) Name() string { return "two-phase" }

// Tune implements Tuner.
func (w *twoPhaseTuner) Tune(ctx context.Context, t xfer.Transferer) (*Trace, error) {
	cfg := w.cfg
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if ck := cfg.Resume; ck != nil {
		cfg.Seed = ck.Seed
	}
	return NewDriver(cfg).Run(ctx, NewTwoPhase(cfg, w.store, w.key), t)
}
