package tuner

import (
	"context"
	"encoding/json"
	"reflect"
	"testing"

	"dstune/internal/xfer"
)

// strategyNames lists every built-in strategy.
func strategyNames() []string {
	return []string{
		"default", "cd-tuner", "cs-tuner", "nm-tuner", "heur1", "heur2", "model",
		"two-phase", "rl-bandit", "rl-q", "warm:cs-tuner", "warm:cd-tuner",
		"warm:rl-q", "kernel-aware:cs-tuner", "kernel-aware:rl-q",
		"warm:kernel-aware:cs-tuner",
	}
}

// countingStrategy wraps a Strategy and counts the protocol calls, so
// a test can prove how a resumed Driver rebuilt the state: one Restore
// and zero replayed Proposes for the direct path.
type countingStrategy struct {
	Strategy
	proposes, observes, restores int
}

func (c *countingStrategy) Propose() ([]int, bool) {
	c.proposes++
	return c.Strategy.Propose()
}

func (c *countingStrategy) Observe(rep xfer.Report) {
	c.observes++
	c.Strategy.Observe(rep)
}

func (c *countingStrategy) Restore(raw json.RawMessage) error {
	c.restores++
	return c.Strategy.Restore(raw)
}

// TestDirectResumeSkipsReplay is the O(1)-resume property: for every
// strategy, a run interrupted after k epochs resumes by deserializing
// the checkpointed strategy state directly — exactly one Restore, no
// replayed proposals — and still produces the uninterrupted trace.
func TestDirectResumeSkipsReplay(t *testing.T) {
	const seed = 11
	const interruptAfter = 3
	for _, name := range strategyNames() {
		t.Run(name, func(t *testing.T) {
			// Reference: an uninterrupted Driver run.
			ref, err := mustStrategyRun(t, name, simCfg(), seed, nil, nil)
			if err != nil {
				t.Fatalf("reference run: %v", err)
			}
			if len(ref.Results) <= interruptAfter {
				t.Fatalf("reference run too short: %d epochs", len(ref.Results))
			}

			// Interrupted: drain after k epochs, keeping the last
			// checkpoint.
			live := simTransfer(t, seed)
			var last *Checkpoint
			drain := make(chan struct{})
			drained := false
			cfg := simCfg()
			cfg.Drain = drain
			cfg.Checkpoint = CheckpointFunc(func(ck *Checkpoint) error {
				last = ck
				if ck.Epochs >= interruptAfter && !drained {
					drained = true
					close(drain)
				}
				return nil
			})
			s, err := NewStrategy(name, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := NewDriver(cfg).Run(context.Background(), s, live); err != ErrInterrupted {
				t.Fatalf("drained run returned %v, want ErrInterrupted", err)
			}
			if last == nil || last.Epochs != interruptAfter {
				t.Fatalf("last checkpoint holds %v epochs, want %d", last, interruptAfter)
			}
			if len(last.Strategy) == 0 {
				t.Fatal("checkpoint carries no strategy state")
			}

			// Resume on the same live transfer with a counting wrapper:
			// the trace must match the reference, via exactly one Restore
			// and only the live epochs' Proposes — no replay.
			rcfg := simCfg()
			rcfg.Resume = last
			rs, err := NewStrategy(name, rcfg)
			if err != nil {
				t.Fatal(err)
			}
			cs := &countingStrategy{Strategy: rs}
			resumed, err := NewDriver(rcfg).Run(context.Background(), cs, live)
			if err != nil {
				t.Fatalf("resumed run: %v", err)
			}
			if !reflect.DeepEqual(resumed.Results, ref.Results) {
				t.Fatalf("resumed trace diverged from reference:\n got %+v\nwant %+v",
					resumed.Results, ref.Results)
			}
			liveEpochs := len(ref.Results) - interruptAfter
			if cs.restores != 1 {
				t.Fatalf("resume called Restore %d times, want 1", cs.restores)
			}
			if cs.proposes != liveEpochs {
				t.Fatalf("resume called Propose %d times, want %d (replay would add %d)",
					cs.proposes, liveEpochs, interruptAfter)
			}
			if cs.observes != liveEpochs {
				t.Fatalf("resume called Observe %d times, want %d", cs.observes, liveEpochs)
			}
		})
	}
}

// TestSnapshotRestoreRoundTrip: after any number of observed epochs,
// Snapshot into a fresh identically-configured strategy must continue
// with exactly the proposals the original produces.
func TestSnapshotRestoreRoundTrip(t *testing.T) {
	const seed = 11
	for _, name := range strategyNames() {
		t.Run(name, func(t *testing.T) {
			cfg := simCfg()
			cfg.Budget = 100 // 20 epochs: deep enough to cross phases
			orig, err := NewStrategy(name, cfg)
			if err != nil {
				t.Fatal(err)
			}
			tr := simTransfer(t, seed)
			defer tr.Stop()
			ctx := context.Background()
			for epoch := 0; epoch < 20; epoch++ {
				x, done := orig.Propose()
				if done {
					break
				}
				rep, err := tr.Run(ctx, cfg.Map(x), cfg.Epoch)
				if err != nil {
					t.Fatal(err)
				}
				orig.Observe(rep)

				raw, err := orig.Snapshot()
				if err != nil {
					t.Fatalf("epoch %d: snapshot: %v", epoch, err)
				}
				clone, err := NewStrategy(name, cfg)
				if err != nil {
					t.Fatal(err)
				}
				if err := clone.Restore(raw); err != nil {
					t.Fatalf("epoch %d: restore: %v", epoch, err)
				}
				ox, od := orig.Propose()
				cx, cd := clone.Propose()
				if od != cd || !reflect.DeepEqual(ox, cx) {
					t.Fatalf("epoch %d: restored clone proposes (%v,%v), original (%v,%v)",
						epoch, cx, cd, ox, od)
				}
			}
		})
	}
}

// mustStrategyRun drives the named strategy under a Driver on a fresh
// simulated transfer.
func mustStrategyRun(t *testing.T, name string, cfg Config, seed uint64, drain chan struct{}, ckpt CheckpointWriter) (*Trace, error) {
	t.Helper()
	cfg.Drain = drain
	cfg.Checkpoint = ckpt
	s, err := NewStrategy(name, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return NewDriver(cfg).Run(context.Background(), s, simTransfer(t, seed))
}
