package tuner

import (
	"context"

	"dstune/internal/model"
	"dstune/internal/xfer"
)

// Model is the empirical-approach baseline from the paper's related
// work (Yildirim et al. [27], Yin et al. [28]): sample the throughput
// at a few exponentially spaced stream counts, fit the parallel-stream
// curve Th(n) = n/sqrt(a*n^2+b*n+c), jump to the fitted optimum, and
// hold. The ε-monitor re-samples when consecutive epoch throughputs
// diverge, giving the empirical approach its best shot at the
// adaptivity the paper says it lacks ("collected data may become
// obsolete when the external conditions change").
//
// The model covers one parameter — the first coordinate of the tuned
// vector (the stream count); remaining coordinates stay at Start.
type Model struct {
	cfg Config
}

// NewModel returns a model-fitting tuner.
func NewModel(cfg Config) *Model { return &Model{cfg: cfg} }

// Name implements Tuner.
func (m *Model) Name() string { return "model" }

// samplePoints returns exponentially spaced probe values for the
// first coordinate: lo, 4*lo, 16*lo, ... clamped to the box, at least
// three distinct values.
func samplePoints(cfg Config) []int {
	lo, hi := cfg.Box.Lo(0), cfg.Box.Hi(0)
	if lo < 1 {
		lo = 1
	}
	var pts []int
	seen := map[int]bool{}
	for v := lo; v <= hi; v *= 4 {
		if !seen[v] {
			pts = append(pts, v)
			seen[v] = true
		}
		if v > hi/4 {
			break
		}
	}
	if !seen[hi] {
		pts = append(pts, hi)
	}
	// Guarantee at least three distinct points when the box allows.
	for _, extra := range []int{lo + 1, (lo + hi) / 2} {
		if len(pts) >= 3 {
			break
		}
		if extra >= lo && extra <= hi && !seen[extra] {
			pts = append(pts, extra)
			seen[extra] = true
		}
	}
	return pts
}

// Tune implements Tuner.
func (m *Model) Tune(ctx context.Context, t xfer.Transferer) (*Trace, error) {
	r, err := newRunner(m.Name(), m.cfg, t)
	if err != nil {
		return nil, err
	}
	defer r.close()
	cfg := r.cfg
	rest := cfg.Box.ClampInt(cfg.Start)
	points := samplePoints(cfg)
	n := 0
	r.searchState = func() any {
		return map[string]any{"kind": "model", "n": n}
	}

	// withN substitutes n into the first coordinate.
	withN := func(n int) []int {
		x := make([]int, len(rest))
		copy(x, rest)
		x[0] = n
		return cfg.Box.ClampInt(x)
	}

	// sampleAndFit probes the sample points and returns the chosen
	// stream count: the fitted optimum, or the best sampled point
	// when the fit is degenerate.
	sampleAndFit := func() (int, bool, error) {
		ns := make([]int, 0, len(points))
		th := make([]float64, 0, len(points))
		bestN, bestF := points[0], -1.0
		for _, n := range points {
			rep, stop, err := r.run(ctx, withN(n))
			if err != nil || stop {
				return bestN, true, err
			}
			f := r.fitness(rep)
			ns = append(ns, n)
			th = append(th, f)
			if f > bestF {
				bestN, bestF = n, f
			}
		}
		co, err := model.Fit(ns, th)
		if err != nil {
			// Degenerate fit: fall back to the best probe.
			return bestN, false, nil
		}
		return co.Optimum(cfg.Box.Lo(0), cfg.Box.Hi(0)), false, nil
	}

	var stop bool
	n, stop, err = sampleAndFit()
	if err != nil || stop {
		return r.tr, err
	}
	fLast := -1.0
	for {
		rep, stop, err := r.run(ctx, withN(n))
		if err != nil || stop {
			return r.tr, err
		}
		f := r.fitness(rep)
		if fLast >= 0 {
			dc := delta(fLast, f)
			if dc > cfg.Tolerance || dc < -cfg.Tolerance {
				n, stop, err = sampleAndFit()
				if err != nil || stop {
					return r.tr, err
				}
				fLast = -1
				continue
			}
		}
		fLast = f
	}
}
