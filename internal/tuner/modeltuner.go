package tuner

import (
	"context"
	"encoding/json"
	"fmt"

	"dstune/internal/ivec"
	"dstune/internal/model"
	"dstune/internal/xfer"
)

// Phases of the model strategy.
const (
	modelPhaseSample = "sample" // probing the sample points
	modelPhaseHold   = "hold"   // holding the fitted optimum
)

// ModelState is the serializable state of the model strategy: the
// sampling progress, the accumulated (stream count, throughput)
// samples, the chosen stream count, and the ε-monitor.
type ModelState struct {
	// Phase is the tuner phase: sample or hold.
	Phase string `json:"phase"`
	// Idx is the next sample point to probe (sample phase).
	Idx int `json:"idx"`
	// Ns and Th are the samples collected so far this sweep.
	Ns []int `json:"ns,omitempty"`
	// Th holds the throughputs paired with Ns.
	Th []float64 `json:"th,omitempty"`
	// BestN and BestF track the best probe of the sweep, the fallback
	// when the curve fit is degenerate.
	BestN int `json:"best_n"`
	// BestF is BestN's fitness.
	BestF float64 `json:"best_f"`
	// N is the chosen stream count (hold phase).
	N int `json:"n"`
	// Monitor is the ε-monitor state (armed flag and baseline).
	Monitor Monitor `json:"monitor"`
	// Next is the vector Propose returns.
	Next []int `json:"next"`
}

// ModelStrategy is the empirical-approach baseline from the paper's
// related work (Yildirim et al. [27], Yin et al. [28]): sample the
// throughput at a few exponentially spaced stream counts, fit the
// parallel-stream curve Th(n) = n/sqrt(a*n^2+b*n+c), jump to the
// fitted optimum, and hold. The ε-monitor re-samples when consecutive
// epoch throughputs diverge, giving the empirical approach its best
// shot at the adaptivity the paper says it lacks ("collected data may
// become obsolete when the external conditions change").
//
// The model covers one parameter — the first coordinate of the tuned
// vector (the stream count); remaining coordinates stay at Start.
type ModelStrategy struct {
	cfg    Config
	rest   []int
	points []int
	st     ModelState
}

// NewModelStrategy returns a model-fitting strategy.
func NewModelStrategy(cfg Config) *ModelStrategy {
	cfg = cfg.withDefaults()
	m := &ModelStrategy{
		cfg:    cfg,
		rest:   cfg.Box.ClampInt(cfg.Start),
		points: samplePoints(cfg),
	}
	m.st.Monitor.Tolerance = cfg.Tolerance
	m.beginSample()
	return m
}

// samplePoints returns exponentially spaced probe values for the
// first coordinate: lo, 4*lo, 16*lo, ... clamped to the box, at least
// three distinct values.
func samplePoints(cfg Config) []int {
	lo, hi := cfg.Box.Lo(0), cfg.Box.Hi(0)
	if lo < 1 {
		lo = 1
	}
	var pts []int
	seen := map[int]bool{}
	for v := lo; v <= hi; v *= 4 {
		if !seen[v] {
			pts = append(pts, v)
			seen[v] = true
		}
		if v > hi/4 {
			break
		}
	}
	if !seen[hi] {
		pts = append(pts, hi)
	}
	// Guarantee at least three distinct points when the box allows.
	for _, extra := range []int{lo + 1, (lo + hi) / 2} {
		if len(pts) >= 3 {
			break
		}
		if extra >= lo && extra <= hi && !seen[extra] {
			pts = append(pts, extra)
			seen[extra] = true
		}
	}
	return pts
}

// withN substitutes n into the first coordinate.
func (m *ModelStrategy) withN(n int) []int {
	x := ivec.Clone(m.rest)
	x[0] = n
	return m.cfg.Box.ClampInt(x)
}

// beginSample starts a sampling sweep over the probe points.
func (m *ModelStrategy) beginSample() {
	m.st.Phase = modelPhaseSample
	m.st.Idx = 0
	m.st.Ns, m.st.Th = nil, nil
	m.st.BestN, m.st.BestF = m.points[0], -1.0
	m.st.Monitor.Disarm()
	m.st.Next = m.withN(m.points[0])
}

// Name implements Strategy.
func (m *ModelStrategy) Name() string { return "model" }

// Propose implements Strategy.
func (m *ModelStrategy) Propose() ([]int, bool) { return ivec.Clone(m.st.Next), false }

// Observe implements Strategy.
func (m *ModelStrategy) Observe(rep xfer.Report) {
	f := fitnessOf(m.cfg, rep)
	st := &m.st
	switch st.Phase {
	case modelPhaseSample:
		n := m.points[st.Idx]
		st.Ns = append(st.Ns, n)
		st.Th = append(st.Th, f)
		if f > st.BestF {
			st.BestN, st.BestF = n, f
		}
		st.Idx++
		if st.Idx < len(m.points) {
			st.Next = m.withN(m.points[st.Idx])
			return
		}
		st.N = m.fit()
		st.Phase = modelPhaseHold
		st.Monitor.Disarm()
		st.Next = m.withN(st.N)
	case modelPhaseHold:
		last := st.Monitor.Last
		if st.Monitor.Observe(f) {
			m.cfg.Obs.Retrigger(rep.End, delta(last, f))
			m.beginSample()
		}
	}
}

// fit returns the chosen stream count from the collected samples: the
// fitted optimum, or the best sampled point when the fit is
// degenerate.
func (m *ModelStrategy) fit() int {
	co, err := model.Fit(m.st.Ns, m.st.Th)
	if err != nil {
		// Degenerate fit: fall back to the best probe.
		return m.st.BestN
	}
	return co.Optimum(m.cfg.Box.Lo(0), m.cfg.Box.Hi(0))
}

// Snapshot implements Strategy.
func (m *ModelStrategy) Snapshot() (json.RawMessage, error) { return json.Marshal(m.st) }

// Restore implements Strategy.
func (m *ModelStrategy) Restore(raw json.RawMessage) error {
	var st ModelState
	if err := json.Unmarshal(raw, &st); err != nil {
		return fmt.Errorf("tuner: model state: %w", err)
	}
	switch st.Phase {
	case modelPhaseSample:
		if st.Idx < 0 || st.Idx >= len(m.points) {
			return fmt.Errorf("tuner: model state sample index %d out of range (have %d points)", st.Idx, len(m.points))
		}
		if len(st.Ns) != st.Idx || len(st.Th) != st.Idx {
			return fmt.Errorf("tuner: model state has %d/%d samples at index %d", len(st.Ns), len(st.Th), st.Idx)
		}
	case modelPhaseHold:
	default:
		return fmt.Errorf("tuner: model state has unknown phase %q", st.Phase)
	}
	if len(st.Next) != m.cfg.Box.Dim() {
		return fmt.Errorf("tuner: model state next has %d dims, box has %d", len(st.Next), m.cfg.Box.Dim())
	}
	st.Monitor.Tolerance = m.cfg.Tolerance
	m.st = st
	return nil
}

// Model is the model tuner as a blocking Tuner: a ModelStrategy under
// the shared Driver.
type Model struct {
	cfg Config
}

// NewModel returns a model-fitting tuner.
func NewModel(cfg Config) *Model { return &Model{cfg: cfg} }

// Name implements Tuner.
func (m *Model) Name() string { return "model" }

// Tune implements Tuner.
func (m *Model) Tune(ctx context.Context, t xfer.Transferer) (*Trace, error) {
	return tuneWith(ctx, m.cfg, t, func(cfg Config) Strategy { return NewModelStrategy(cfg) })
}
