package tuner

import (
	"context"

	"dstune/internal/xfer"
)

// Heur1 is Balman & Kosar's dynamic adaptation heuristic [5], extended
// to multiple parameters the same way cd-tuner is (the paper's §IV-C):
// compare the two most recent epoch throughputs and additively
// increase the active parameter by one while the comparison shows a
// significant improvement. The heuristic has no decrease mechanism;
// the paper notes it is a simplified cd-tuner and needs many more
// control epochs to reach comparable throughput.
type Heur1 struct {
	cfg Config
}

// NewHeur1 returns a heur1 tuner.
func NewHeur1(cfg Config) *Heur1 { return &Heur1{cfg: cfg} }

// Name implements Tuner.
func (h *Heur1) Name() string { return "heur1" }

// Tune implements Tuner.
func (h *Heur1) Tune(ctx context.Context, t xfer.Transferer) (*Trace, error) {
	r, err := newRunner(h.Name(), h.cfg, t)
	if err != nil {
		return nil, err
	}
	defer r.close()
	cfg := r.cfg
	dim := 0
	climbing := true
	stalls := 0
	r.searchState = func() any {
		return map[string]any{"kind": "heur1", "dim": dim, "climbing": climbing, "stalls": stalls}
	}

	x := cfg.Box.ClampInt(cfg.Start)
	fPrev, stop, err := r.run(ctx, x)
	if err != nil || stop {
		return r.tr, err
	}
	// The first comparison needs a probe.
	for {
		next := x
		if climbing {
			next = bump(cfg, x, dim, +1)
		}
		f, stop, err := r.run(ctx, next)
		if err != nil || stop {
			return r.tr, err
		}
		dc := delta(r.fitness(fPrev), r.fitness(f))
		fPrev = f
		if dc > cfg.Tolerance {
			// Improvement between consecutive epochs: adopt the bump
			// (if any) and keep climbing.
			x = next
			climbing = true
			stalls = 0
			continue
		}
		// No significant improvement: stop climbing and hold. A later
		// significant improvement (e.g. external load released)
		// re-arms the climb; a drop never does — heur1 cannot
		// decrease.
		if climbing && !equalInts(next, x) {
			// The rejected probe still ran for an epoch; stay at x.
			climbing = false
		}
		stalls++
		if len(cfg.Start) > 1 && stalls >= cfg.StallEpochs {
			stalls = 0
			dim = (dim + 1) % cfg.Box.Dim()
			climbing = true // probe the fresh coordinate
		}
	}
}

// Heur2 is Yildirim et al.'s expert heuristic [25]: exponentially
// increase the active parameter (doubling each epoch) until the
// throughput stops improving significantly, settle on the best value
// seen, move to the next parameter, and terminate — it has no
// decrement mechanism and never re-tunes, which is why the paper finds
// it fast but sensitive to its starting values.
type Heur2 struct {
	cfg Config
}

// NewHeur2 returns a heur2 tuner.
func NewHeur2(cfg Config) *Heur2 { return &Heur2{cfg: cfg} }

// Name implements Tuner.
func (h *Heur2) Name() string { return "heur2" }

// Tune implements Tuner.
func (h *Heur2) Tune(ctx context.Context, t xfer.Transferer) (*Trace, error) {
	r, err := newRunner(h.Name(), h.cfg, t)
	if err != nil {
		return nil, err
	}
	defer r.close()
	cfg := r.cfg
	dim := 0
	settled := false
	r.searchState = func() any {
		return map[string]any{"kind": "heur2", "dim": dim, "settled": settled}
	}

	x := cfg.Box.ClampInt(cfg.Start)
	fBest, stop, err := r.run(ctx, x)
	if err != nil || stop {
		return r.tr, err
	}
	best := r.fitness(fBest)

	// Exponential climb, one coordinate at a time.
	for ; dim < cfg.Box.Dim(); dim++ {
		for {
			next := double(cfg, x, dim)
			if equalInts(next, x) {
				break // pinned at the bound
			}
			f, stop, err := r.run(ctx, next)
			if err != nil || stop {
				return r.tr, err
			}
			if delta(best, r.fitness(f)) > cfg.Tolerance {
				x = next
				best = r.fitness(f)
				continue
			}
			// Worse or flat: settle on the previous value.
			break
		}
	}
	settled = true

	// Terminated: hold the settled parameters for the remainder.
	for {
		if _, stop, err := r.run(ctx, x); err != nil || stop {
			return r.tr, err
		}
	}
}

// bump moves coordinate dim of x by d within bounds.
func bump(cfg Config, x []int, dim, d int) []int {
	out := make([]int, len(x))
	copy(out, x)
	out[dim] += d
	return cfg.Box.ClampInt(out)
}

// double doubles coordinate dim of x within bounds, moving at least
// one step.
func double(cfg Config, x []int, dim int) []int {
	out := make([]int, len(x))
	copy(out, x)
	v := out[dim] * 2
	if v <= out[dim] {
		v = out[dim] + 1
	}
	out[dim] = v
	return cfg.Box.ClampInt(out)
}
