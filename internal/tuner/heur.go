package tuner

import (
	"context"
	"encoding/json"
	"fmt"

	"dstune/internal/ivec"
	"dstune/internal/xfer"
)

// Phases of the heuristic state machines.
const (
	heurPhaseStart = "start" // evaluating x0
	heurPhaseLoop  = "loop"  // heur1's climb/hold loop
	heurPhaseClimb = "climb" // heur2's exponential climb
	heurPhaseHold  = "hold"  // heur2 settled
)

// Heur1State is the serializable state of heur1.
type Heur1State struct {
	// Phase is the tuner phase (always the climb/hold loop).
	Phase string `json:"phase"`
	// X is the adopted vector; a rejected probe is not adopted.
	X []int `json:"x"`
	// FPrev is the previous epoch's fitness.
	FPrev float64 `json:"f_prev,omitempty"`
	// Climbing reports whether the next epoch probes upward.
	Climbing bool `json:"climbing"`
	// Rotation tracks the active coordinate and its stall count.
	Rotation Rotation `json:"rotation"`
	// Next is the vector Propose returns.
	Next []int `json:"next"`
}

// Heur1Strategy is Balman & Kosar's dynamic adaptation heuristic [5],
// extended to multiple parameters the same way cd-tuner is (the
// paper's §IV-C): compare the two most recent epoch throughputs and
// additively increase the active parameter by one while the
// comparison shows a significant improvement. The heuristic has no
// decrease mechanism; the paper notes it is a simplified cd-tuner and
// needs many more control epochs to reach comparable throughput.
type Heur1Strategy struct {
	cfg Config
	st  Heur1State
}

// NewHeur1Strategy returns a heur1 strategy.
func NewHeur1Strategy(cfg Config) *Heur1Strategy {
	cfg = cfg.withDefaults()
	return &Heur1Strategy{cfg: cfg, st: Heur1State{
		Phase:    heurPhaseStart,
		Climbing: true,
		Next:     cfg.Box.ClampInt(cfg.Start),
	}}
}

// Name implements Strategy.
func (h *Heur1Strategy) Name() string { return "heur1" }

// Propose implements Strategy.
func (h *Heur1Strategy) Propose() ([]int, bool) { return ivec.Clone(h.st.Next), false }

// Observe implements Strategy.
func (h *Heur1Strategy) Observe(rep xfer.Report) {
	f := fitnessOf(h.cfg, rep)
	st := &h.st
	switch st.Phase {
	case heurPhaseStart:
		st.X, st.FPrev = st.Next, f
		st.Phase = heurPhaseLoop
	case heurPhaseLoop:
		ran := st.Next // the vector this report came from
		dc := delta(st.FPrev, f)
		st.FPrev = f
		if dc > h.cfg.Tolerance {
			// Improvement between consecutive epochs: adopt the bump
			// (if any) and keep climbing.
			st.X = ran
			st.Climbing = true
			st.Rotation.Progress()
			break
		}
		// No significant improvement: stop climbing and hold. A later
		// significant improvement (e.g. external load released)
		// re-arms the climb; a drop never does — heur1 cannot
		// decrease.
		if st.Climbing && !ivec.Equal(ran, st.X) {
			// The rejected probe still ran for an epoch; stay at X.
			st.Climbing = false
		}
		if st.Rotation.Hold(h.cfg.Box.Dim(), h.cfg.StallEpochs) {
			st.Climbing = true // probe the fresh coordinate
		}
	}
	if st.Climbing {
		st.Next = bump(h.cfg, st.X, st.Rotation.Dim, +1)
	} else {
		st.Next = ivec.Clone(st.X)
	}
}

// Snapshot implements Strategy.
func (h *Heur1Strategy) Snapshot() (json.RawMessage, error) { return json.Marshal(h.st) }

// Restore implements Strategy.
func (h *Heur1Strategy) Restore(raw json.RawMessage) error {
	var st Heur1State
	if err := json.Unmarshal(raw, &st); err != nil {
		return fmt.Errorf("tuner: heur1 state: %w", err)
	}
	dim := h.cfg.Box.Dim()
	if st.Phase != heurPhaseStart && st.Phase != heurPhaseLoop {
		return fmt.Errorf("tuner: heur1 state has unknown phase %q", st.Phase)
	}
	if len(st.Next) != dim || (st.Phase == heurPhaseLoop && len(st.X) != dim) {
		return fmt.Errorf("tuner: heur1 state vectors do not match box dim %d", dim)
	}
	if st.Rotation.Dim < 0 || st.Rotation.Dim >= dim || st.Rotation.Stalls < 0 {
		return fmt.Errorf("tuner: heur1 state rotation %+v out of range", st.Rotation)
	}
	h.st = st
	return nil
}

// Heur1 is heur1 as a blocking Tuner: a Heur1Strategy under the
// shared Driver.
type Heur1 struct {
	cfg Config
}

// NewHeur1 returns a heur1 tuner.
func NewHeur1(cfg Config) *Heur1 { return &Heur1{cfg: cfg} }

// Name implements Tuner.
func (h *Heur1) Name() string { return "heur1" }

// Tune implements Tuner.
func (h *Heur1) Tune(ctx context.Context, t xfer.Transferer) (*Trace, error) {
	return tuneWith(ctx, h.cfg, t, func(cfg Config) Strategy { return NewHeur1Strategy(cfg) })
}

// Heur2State is the serializable state of heur2.
type Heur2State struct {
	// Phase is the tuner phase: climb or hold.
	Phase string `json:"phase"`
	// X is the settled vector so far.
	X []int `json:"x"`
	// Best is the best fitness seen during the climb.
	Best float64 `json:"best,omitempty"`
	// Dim is the coordinate currently being doubled.
	Dim int `json:"dim"`
	// Next is the vector Propose returns.
	Next []int `json:"next"`
}

// Heur2Strategy is Yildirim et al.'s expert heuristic [25]:
// exponentially increase the active parameter (doubling each epoch)
// until the throughput stops improving significantly, settle on the
// best value seen, move to the next parameter, and terminate — it has
// no decrement mechanism and never re-tunes, which is why the paper
// finds it fast but sensitive to its starting values.
type Heur2Strategy struct {
	cfg Config
	st  Heur2State
}

// NewHeur2Strategy returns a heur2 strategy.
func NewHeur2Strategy(cfg Config) *Heur2Strategy {
	cfg = cfg.withDefaults()
	return &Heur2Strategy{cfg: cfg, st: Heur2State{
		Phase: heurPhaseStart,
		Next:  cfg.Box.ClampInt(cfg.Start),
	}}
}

// Name implements Strategy.
func (h *Heur2Strategy) Name() string { return "heur2" }

// Propose implements Strategy.
func (h *Heur2Strategy) Propose() ([]int, bool) { return ivec.Clone(h.st.Next), false }

// advance finds the next doubling probe, skipping coordinates pinned
// at their bound, or settles into the hold phase after the last one.
func (h *Heur2Strategy) advance() {
	st := &h.st
	for st.Dim < h.cfg.Box.Dim() {
		next := double(h.cfg, st.X, st.Dim)
		if !ivec.Equal(next, st.X) {
			st.Next = next
			st.Phase = heurPhaseClimb
			return
		}
		st.Dim++
	}
	st.Phase = heurPhaseHold
	st.Next = ivec.Clone(st.X)
}

// Observe implements Strategy.
func (h *Heur2Strategy) Observe(rep xfer.Report) {
	f := fitnessOf(h.cfg, rep)
	st := &h.st
	switch st.Phase {
	case heurPhaseStart:
		st.X, st.Best = st.Next, f
		h.advance()
	case heurPhaseClimb:
		if delta(st.Best, f) > h.cfg.Tolerance {
			st.X, st.Best = st.Next, f
		} else {
			// Worse or flat: settle on the previous value and move to
			// the next coordinate.
			st.Dim++
		}
		h.advance()
	case heurPhaseHold:
		// Terminated: hold the settled parameters for the remainder.
	}
}

// Snapshot implements Strategy.
func (h *Heur2Strategy) Snapshot() (json.RawMessage, error) { return json.Marshal(h.st) }

// Restore implements Strategy.
func (h *Heur2Strategy) Restore(raw json.RawMessage) error {
	var st Heur2State
	if err := json.Unmarshal(raw, &st); err != nil {
		return fmt.Errorf("tuner: heur2 state: %w", err)
	}
	dim := h.cfg.Box.Dim()
	switch st.Phase {
	case heurPhaseStart, heurPhaseClimb, heurPhaseHold:
	default:
		return fmt.Errorf("tuner: heur2 state has unknown phase %q", st.Phase)
	}
	if len(st.Next) != dim || (st.Phase != heurPhaseStart && len(st.X) != dim) {
		return fmt.Errorf("tuner: heur2 state vectors do not match box dim %d", dim)
	}
	if st.Dim < 0 || st.Dim > dim {
		return fmt.Errorf("tuner: heur2 state dim %d out of range", st.Dim)
	}
	h.st = st
	return nil
}

// Heur2 is heur2 as a blocking Tuner: a Heur2Strategy under the
// shared Driver.
type Heur2 struct {
	cfg Config
}

// NewHeur2 returns a heur2 tuner.
func NewHeur2(cfg Config) *Heur2 { return &Heur2{cfg: cfg} }

// Name implements Tuner.
func (h *Heur2) Name() string { return "heur2" }

// Tune implements Tuner.
func (h *Heur2) Tune(ctx context.Context, t xfer.Transferer) (*Trace, error) {
	return tuneWith(ctx, h.cfg, t, func(cfg Config) Strategy { return NewHeur2Strategy(cfg) })
}

// bump moves coordinate dim of x by d within bounds.
func bump(cfg Config, x []int, dim, d int) []int {
	out := ivec.Clone(x)
	out[dim] += d
	return cfg.Box.ClampInt(out)
}

// double doubles coordinate dim of x within bounds, moving at least
// one step.
func double(cfg Config, x []int, dim int) []int {
	out := ivec.Clone(x)
	v := out[dim] * 2
	if v <= out[dim] {
		v = out[dim] + 1
	}
	out[dim] = v
	return cfg.Box.ClampInt(out)
}
