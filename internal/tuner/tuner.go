// Package tuner implements the paper's online tuners: the direct
// search methods cd-tuner (Algorithm 1), cs-tuner (Algorithm 2), and
// nm-tuner (Algorithm 3), the baseline heuristics heur1 (Balman's
// additive increase) and heur2 (Yildirim's exponential increase), and
// the static `default` setting used by the Globus transfer service.
//
// A tuner drives an xfer.Transferer one control epoch at a time: it
// picks the parameter vector for the next epoch from the throughputs
// observed so far, exactly as the paper's Python wrappers drove
// globus-url-copy. The tuned vector is mapped to transfer parameters
// by a ParamMap, so the same tuners handle the paper's 1-D experiments
// (concurrency only, §IV-A) and 2-D experiments (concurrency and
// parallelism, §IV-B).
package tuner

import (
	"context"
	"errors"
	"fmt"
	"math"

	"dstune/internal/directsearch"
	"dstune/internal/obs"
	"dstune/internal/trace"
	"dstune/internal/xfer"
)

// NoTolerance and NoLambda make an explicit zero configurable where
// the zero value would select the paper's default: assign
// Config.Tolerance = NoTolerance for an exact ε = 0 monitor (every
// change is significant) and Config.Lambda = NoLambda for a zero
// initial step. They are NaN sentinels, resolved by withDefaults.
var (
	NoTolerance = math.NaN()
	NoLambda    = math.NaN()
)

// ParamMap converts a tuned integer vector into transfer parameters.
type ParamMap func(x []int) xfer.Params

// MapNC tunes concurrency only, with parallelism fixed at np — the
// paper's §IV-A setup (np = 8).
func MapNC(np int) ParamMap {
	return func(x []int) xfer.Params { return xfer.Params{NC: x[0], NP: np} }
}

// MapNCNP tunes concurrency and parallelism simultaneously — the
// paper's §IV-B setup; x is [nc, np].
func MapNCNP() ParamMap {
	return func(x []int) xfer.Params { return xfer.Params{NC: x[0], NP: x[1]} }
}

// MapNCNPPP tunes concurrency, parallelism, and pipelining — the
// disk-to-disk setting of the paper's future-work item (1); x is
// [nc, np, pp].
func MapNCNPPP() ParamMap {
	return func(x []int) xfer.Params { return xfer.Params{NC: x[0], NP: x[1], PP: x[2]} }
}

// MapFixedPP wraps m with the pipelining depth fixed at pp — for
// dataset transfers that tune fewer than three dimensions while
// keeping a static depth.
func MapFixedPP(m ParamMap, pp int) ParamMap {
	return func(x []int) xfer.Params {
		p := m(x)
		p.PP = pp
		return p
	}
}

// RestartFrom selects where cs-tuner and nm-tuner restart their inner
// search when the throughput monitor triggers.
type RestartFrom int

const (
	// FromOrigin restarts from the tuner's original starting point
	// x0, as written in the paper's Algorithm 2 (line 22).
	FromOrigin RestartFrom = iota
	// FromCurrent restarts from the current incumbent, keeping the
	// progress made so far.
	FromCurrent
)

// Config parameterizes a tuner. Box, Start, and Map are required.
type Config struct {
	// Epoch is the control epoch length e in seconds; zero selects
	// the paper's 30 s.
	Epoch float64
	// Tolerance is the significance threshold ε in percent; zero
	// selects the paper's 5%, NoTolerance selects an exact 0.
	Tolerance float64
	// Lambda is cs-tuner's initial step size; zero selects the
	// paper's 8, NoLambda selects an exact 0.
	Lambda float64
	// NM carries nm-tuner's coefficients; zeros select the customary
	// R=1, E=2, C=0.5, S=0.5.
	NM directsearch.NMConfig
	// Box bounds the tuned vector.
	Box directsearch.Box
	// Start is the initial vector x0.
	Start []int
	// Map converts the tuned vector to transfer parameters.
	Map ParamMap
	// Budget stops tuning once the transfer clock reaches this many
	// seconds; zero means run until the transfer completes. The
	// paper's experiments run fixed durations (e.g. 1800 s) of an
	// unbounded memory-to-memory transfer.
	Budget float64
	// Seed drives the randomized polling order of cs-tuner.
	Seed uint64
	// Restart selects the inner-search restart point for cs-tuner
	// and nm-tuner; the zero value follows the paper (FromOrigin).
	Restart RestartFrom
	// StallEpochs is the number of consecutive no-change epochs after
	// which the multi-parameter cd-tuner and heur1 rotate to the next
	// parameter; zero selects 3.
	StallEpochs int
	// ObserveBestCase makes the tuners optimize the restart-free
	// (best-case) throughput instead of the observed throughput.
	// The paper's tuners observe throughput including the restart
	// overhead; when a transfer engine adapts without restarting
	// (xfer.RestartOnChange — the paper's future-work item (2)),
	// epochs that change parameters still pay a restart while
	// holding epochs do not, and that systematic jump keeps
	// re-triggering the ε-monitor. Observing the best-case rate
	// removes the artifact.
	ObserveBestCase bool
	// MaxTransientFailures is the number of consecutive transient
	// epoch failures (errors matching xfer.ErrTransient) the tuners
	// tolerate before aborting. Each tolerated failure is recorded as
	// a zero-throughput epoch, so the ε-monitor naturally re-triggers
	// a search once the transfer recovers. Zero selects 3.
	MaxTransientFailures int
	// Checkpoint, when non-nil, receives a snapshot of the run's
	// durable state after every completed control epoch (and a final
	// one when tuning is interrupted), so an aborted run can be
	// resumed later. See FileCheckpoint for the durable file form.
	Checkpoint CheckpointWriter
	// Resume, when non-nil, continues the run recorded in the
	// checkpoint instead of starting fresh: the strategy's serialized
	// state is deserialized directly — an O(1) continuation, no epoch
	// is replayed — the recorded trace is preloaded, and live tuning
	// continues mid-trajectory from the first unrecorded epoch. The
	// checkpoint's seed overrides Seed. The transfer passed to Tune
	// must carry the checkpoint's remaining bytes and clock (see
	// xfer.TransferState and Checkpoint.Transfer).
	Resume *Checkpoint
	// ValidateResume makes Resume rebuild the strategy by replaying
	// the recorded reports through it instead of deserializing its
	// state, verifying that every proposal matches what the checkpoint
	// recorded — an opt-in divergence check for resumes whose
	// configuration may have drifted since the checkpoint was written.
	ValidateResume bool
	// Drain, when non-nil, requests a graceful stop: once the channel
	// is closed, tuning finishes the in-flight control epoch, writes a
	// final checkpoint, leaves the transfer running, and returns
	// ErrInterrupted. Cancelling the Tune context instead aborts the
	// in-flight epoch immediately.
	Drain <-chan struct{}
	// Obs, when non-nil, receives the run's observations: per-epoch
	// metrics, structured events (Propose/EpochStart/EpochEnd/Observe,
	// ε-monitor retriggers, checkpoint writes), and the live state
	// served by /status. Nil — the default — disables observation at
	// zero cost; see the obs package and OBSERVABILITY.md.
	Obs *obs.SessionObs
}

// resolveSentinel maps the zero value to def and the NaN sentinel
// (NoTolerance / NoLambda) to an exact zero.
func resolveSentinel(v, def float64) float64 {
	if math.IsNaN(v) {
		return 0
	}
	if v == 0 {
		return def
	}
	return v
}

// withDefaults returns cfg with zero fields replaced by defaults.
func (c Config) withDefaults() Config {
	if c.Epoch == 0 {
		c.Epoch = 30
	}
	c.Tolerance = resolveSentinel(c.Tolerance, 5)
	c.Lambda = resolveSentinel(c.Lambda, 8)
	if c.StallEpochs == 0 {
		c.StallEpochs = 3
	}
	if c.MaxTransientFailures == 0 {
		c.MaxTransientFailures = 3
	}
	return c
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	if c.Box.Dim() == 0 {
		return errors.New("tuner: Box is required")
	}
	if len(c.Start) != c.Box.Dim() {
		return fmt.Errorf("tuner: Start has %d dims, Box has %d", len(c.Start), c.Box.Dim())
	}
	if c.Map == nil {
		return errors.New("tuner: Map is required")
	}
	if c.Epoch < 0 || c.Tolerance < 0 || c.Lambda < 0 || c.Budget < 0 || c.MaxTransientFailures < 0 {
		return errors.New("tuner: negative parameter")
	}
	return nil
}

// EpochResult is one control epoch of a tuned transfer.
type EpochResult struct {
	// Epoch is the zero-based control epoch index c.
	Epoch int
	// X is the tuned vector used for the epoch.
	X []int
	// Report is the transfer's account of the epoch.
	Report xfer.Report
}

// Trace is the complete record of one tuned transfer.
type Trace struct {
	// Tuner is the tuner's name.
	Tuner string
	// Results holds one entry per control epoch in order.
	Results []EpochResult
}

// add appends an epoch result.
func (tr *Trace) add(x []int, r xfer.Report) {
	xc := make([]int, len(x))
	copy(xc, x)
	tr.Results = append(tr.Results, EpochResult{Epoch: len(tr.Results), X: xc, Report: r})
}

// Throughput returns the observed-throughput series, one sample per
// epoch at the epoch's end time.
func (tr *Trace) Throughput() *trace.Series {
	s := &trace.Series{Name: tr.Tuner + "/throughput"}
	for _, r := range tr.Results {
		s.Add(r.Report.End, r.Report.Throughput)
	}
	return s
}

// BestCase returns the restart-overhead-free throughput series.
func (tr *Trace) BestCase() *trace.Series {
	s := &trace.Series{Name: tr.Tuner + "/bestcase"}
	for _, r := range tr.Results {
		s.Add(r.Report.End, r.Report.BestCase)
	}
	return s
}

// Param returns the series of tuned coordinate dim over time.
func (tr *Trace) Param(dim int) *trace.Series {
	s := &trace.Series{Name: fmt.Sprintf("%s/x%d", tr.Tuner, dim)}
	for _, r := range tr.Results {
		if dim < len(r.X) {
			s.Add(r.Report.End, float64(r.X[dim]))
		}
	}
	return s
}

// MeanThroughput returns the byte-weighted mean observed throughput
// over the whole transfer: total bytes / total time.
func (tr *Trace) MeanThroughput() float64 {
	var bytes, dur float64
	for _, r := range tr.Results {
		bytes += r.Report.Bytes
		dur += r.Report.End - r.Report.Start
	}
	if dur == 0 {
		return 0
	}
	return bytes / dur
}

// MeanBestCase returns total bytes / total live (non-restart) time.
func (tr *Trace) MeanBestCase() float64 {
	var bytes, live float64
	for _, r := range tr.Results {
		bytes += r.Report.Bytes
		live += (r.Report.End - r.Report.Start) - r.Report.DeadTime
	}
	if live <= 0 {
		return 0
	}
	return bytes / live
}

// SteadyThroughput returns the mean observed throughput of epochs
// ending at or after t0, for steady-state comparisons.
func (tr *Trace) SteadyThroughput(t0 float64) float64 {
	var sum float64
	var n int
	for _, r := range tr.Results {
		if r.Report.End >= t0 {
			sum += r.Report.Throughput
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// ConvergenceTime returns the transfer time (the epoch-start of the
// first window) at which the rolling mean throughput over `window`
// epochs first reaches frac of the steady value (the mean of the last
// `window` epochs). It returns -1 when the trace is shorter than the
// window or the threshold is never reached. The paper quotes such
// times in §IV-A: cd-tuner ~100 s unloaded, cs/nm ~500-600 s.
func (tr *Trace) ConvergenceTime(frac float64, window int) float64 {
	if window < 1 {
		window = 1
	}
	n := len(tr.Results)
	if n < window {
		return -1
	}
	mean := func(rs []EpochResult) float64 {
		sum := 0.0
		for _, r := range rs {
			sum += r.Report.Throughput
		}
		return sum / float64(len(rs))
	}
	steady := mean(tr.Results[n-window:])
	for i := 0; i+window <= n; i++ {
		if mean(tr.Results[i:i+window]) >= frac*steady {
			return tr.Results[i].Report.Start
		}
	}
	return -1
}

// BestEpoch returns the vector and observed throughput of the
// highest-throughput epoch, the datum the history knowledge plane
// records after a run. Epochs without positive throughput (transient
// failures, empty epochs) never win; ok is false when no epoch
// qualifies.
func (tr *Trace) BestEpoch() (x []int, throughput float64, ok bool) {
	for _, r := range tr.Results {
		if r.Report.Throughput > throughput {
			x, throughput, ok = r.X, r.Report.Throughput, true
		}
	}
	if ok {
		x = append([]int(nil), x...)
	}
	return x, throughput, ok
}

// FinalX returns the tuned vector of the last epoch, or nil when no
// epoch ran.
func (tr *Trace) FinalX() []int {
	if len(tr.Results) == 0 {
		return nil
	}
	return tr.Results[len(tr.Results)-1].X
}

// Tuner adapts a transfer's parameters over its lifetime.
type Tuner interface {
	// Name returns the tuner's conventional name, e.g. "cs-tuner".
	Name() string
	// Tune drives the transfer until it completes or the budget is
	// reached, then stops it and returns the per-epoch trace.
	//
	// Cancelling ctx aborts the in-flight epoch promptly and returns
	// the trace so far with the context's error; closing Config.Drain
	// instead finishes the in-flight epoch first and returns
	// ErrInterrupted. Either way a final checkpoint is written (when
	// configured) and the transfer is left running — not stopped — so
	// a later run can resume it.
	Tune(ctx context.Context, t xfer.Transferer) (*Trace, error)
}

// delta returns the paper's relative change 100*(f1-f0)/f0 in percent,
// treating a zero baseline as an infinite change when f1 moved.
func delta(f0, f1 float64) float64 {
	if f0 == 0 {
		if f1 == 0 {
			return 0
		}
		return 1e9
	}
	return 100 * (f1 - f0) / f0
}

// tuneWith is the common Tune body of the built-in tuners: validate,
// adopt a resumed checkpoint's seed before the strategy (and so its
// RNG) is constructed, and hand the strategy to the Driver.
func tuneWith(ctx context.Context, cfg Config, t xfer.Transferer, mk func(Config) Strategy) (*Trace, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if ck := cfg.Resume; ck != nil {
		cfg.Seed = ck.Seed
	}
	return NewDriver(cfg).Run(ctx, mk(cfg), t)
}

// Static is the non-adaptive baseline: it runs the transfer with the
// starting parameters forever. With Start mapping to nc=2, np=8 it is
// the paper's `default` (the Globus service's large-file setting).
type Static struct {
	cfg Config
}

// NewStatic returns a static tuner.
func NewStatic(cfg Config) *Static {
	return &Static{cfg: cfg}
}

// Name implements Tuner.
func (s *Static) Name() string { return "default" }

// Tune implements Tuner.
func (s *Static) Tune(ctx context.Context, t xfer.Transferer) (*Trace, error) {
	return tuneWith(ctx, s.cfg, t, func(cfg Config) Strategy { return NewStaticStrategy(cfg) })
}
