package tuner

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"dstune/internal/history"
	"dstune/internal/ivec"
	"dstune/internal/obs"
	"dstune/internal/xfer"
)

// FleetConfig parameterizes a Fleet run: the shared epoch length, the
// per-session tuning budget, and the per-session transient-failure
// tolerance.
type FleetConfig struct {
	// Epoch is the control-epoch length in seconds (default 30).
	Epoch float64
	// Budget limits each session's tuning time in transfer-clock
	// seconds; 0 means until its transfers complete.
	Budget float64
	// MaxTransientFailures ends a session at the n-th consecutive
	// transient epoch failure (default 3). 1 means the first failure
	// of any kind ends the session.
	MaxTransientFailures int
	// Obs, when non-nil, observes every session: each session
	// registers under its stable ID, labels its metrics with it, and
	// appears in the /status document. Nil disables observation.
	Obs *obs.Observer
	// History, when non-nil, is the shared knowledge plane: every
	// session with a non-zero HistoryKey records its best observed
	// epoch under that key when it ends cleanly. Sessions must not
	// share a key (Run rejects duplicates).
	History *history.Store
	// Shards splits the session table across that many independent
	// round-robin worker loops, assigning each session by a stable
	// hash of its ID (ShardIndex). 0 or 1 keeps the single loop —
	// the exact code path earlier releases ran, so existing traces
	// stay byte-identical. Sessions sharing one simulation fabric
	// stay in lockstep across shards: the fabric's conservative-time
	// barrier already orders their epochs.
	Shards int
	// PreserveOnCancel leaves a session's transfers running (not
	// stopped) when the session ends on context cancellation, so the
	// owner can checkpoint-resume them later — the Fleet analogue of
	// the Driver's interrupt behaviour. Supervisors (dstuned) set it;
	// the default (false) keeps the historical stop-on-cancel.
	PreserveOnCancel bool
}

// withDefaults returns cfg with zero fields replaced by defaults.
func (c FleetConfig) withDefaults() FleetConfig {
	if c.Epoch == 0 {
		c.Epoch = 30
	}
	if c.MaxTransientFailures == 0 {
		c.MaxTransientFailures = 3
	}
	return c
}

// FleetSession is one (strategy, transfers) pairing a Fleet drives: a
// Strategy proposing over the concatenation of the transfers' vectors,
// sliced per transfer by Dims and mapped to parameters by Maps. A
// single-transfer session may leave Dims nil to hand the whole vector
// to that transfer.
type FleetSession struct {
	// ID is the session's stable identifier: the metrics label, the
	// /status key, and the error prefix. Empty defaults to Name (then
	// to the strategy name); Fleet deduplicates colliding IDs
	// deterministically by appending "-2", "-3", … in session order.
	ID string
	// Name labels the session in results; empty defaults to the
	// strategy name.
	Name string
	// Strategy decides the session's parameter vectors.
	Strategy Strategy
	// Transfers are the session's concurrent transfers.
	Transfers []xfer.Transferer
	// Dims is the vector width per transfer; nil with one transfer
	// means the whole vector.
	Dims []int
	// Maps converts each transfer's slice to its parameters.
	Maps []ParamMap
	// Weights scale each transfer's contribution to the aggregate
	// objective the strategy observes; nil = all ones.
	Weights []float64
	// Checkpoint, when non-nil, receives the session's durable state
	// after every settled epoch, exactly like the single-session
	// Driver. Only single-transfer sessions support checkpointing.
	Checkpoint CheckpointWriter
	// Seed is recorded in the session's checkpoints so a resumed
	// single-session run reconstructs the same strategy.
	Seed uint64
	// HistoryKey, when non-zero, is the session's identity in the
	// fleet's shared history store: a clean end records the session's
	// best epoch under it. Keys must be unique across the fleet —
	// deduplicated session IDs ("bulk", "bulk-2") must never alias one
	// key, or one session's record would overwrite another's identity.
	HistoryKey history.Key
	// Resume, when non-nil, restores the session mid-trajectory from a
	// prior checkpoint before the first round: the strategy state is
	// deserialized directly (O(1), like the Driver's resume), the
	// recorded epochs are preloaded into the trace and byte account,
	// and the transient-failure counter is restored. The checkpoint
	// must match the session's strategy name; only single-transfer
	// sessions support resumption.
	Resume *Checkpoint
}

// validate reports whether the session is usable.
func (s FleetSession) validate() error {
	if s.Strategy == nil {
		return errors.New("session has no strategy")
	}
	if len(s.Transfers) == 0 {
		return errors.New("session has no transfers")
	}
	if s.Dims == nil && len(s.Transfers) != 1 {
		return fmt.Errorf("session has %d transfers but no dims", len(s.Transfers))
	}
	if s.Dims != nil && len(s.Dims) != len(s.Transfers) {
		return fmt.Errorf("session has %d dims for %d transfers", len(s.Dims), len(s.Transfers))
	}
	if len(s.Maps) != len(s.Transfers) {
		return fmt.Errorf("session has %d maps for %d transfers", len(s.Maps), len(s.Transfers))
	}
	for i, m := range s.Maps {
		if m == nil {
			return fmt.Errorf("session transfer %d has nil map", i)
		}
	}
	for i, d := range s.Dims {
		if d < 1 {
			return fmt.Errorf("session transfer %d has dim %d", i, d)
		}
	}
	if s.Weights != nil && len(s.Weights) != len(s.Transfers) {
		return fmt.Errorf("session has %d weights for %d transfers", len(s.Weights), len(s.Transfers))
	}
	if s.Checkpoint != nil && len(s.Transfers) != 1 {
		return fmt.Errorf("session has %d transfers; checkpointing supports exactly one", len(s.Transfers))
	}
	if s.Resume != nil && len(s.Transfers) != 1 {
		return fmt.Errorf("session has %d transfers; resume supports exactly one", len(s.Transfers))
	}
	return nil
}

// SessionResult is one session's outcome: the per-transfer traces (in
// Transfers order), the total bytes its epochs moved, and the error
// that ended it, if any.
type SessionResult struct {
	// ID is the session's stable identifier (post-deduplication).
	ID string
	// Name is the session's label.
	Name string
	// Traces hold each transfer's recorded epochs; every epoch records
	// that transfer's own slice of the session vector.
	Traces []*Trace
	// Bytes is the total bytes moved across the session's transfers
	// and recorded epochs.
	Bytes float64
	// Err is the error that ended the session: nil for a normal end
	// (transfer done, budget spent, or strategy finished), the
	// transfer error otherwise.
	Err error
}

// Fleet drives N (strategy, transfers) sessions concurrently: each
// round a worker loop collects every active session's proposal, runs
// all the resulting transfer epochs at once (the simulation fabric
// keeps them in lockstep virtual time), and feeds each session's
// aggregate report back to its strategy. Sessions end independently —
// transfer completion, budget, strategy termination, or failure — and
// a session's transfers are stopped when it ends. With
// FleetConfig.Shards > 1 the session table is split across that many
// worker loops by a stable hash of the session ID; the default single
// loop is the exact historical code path.
//
// Fleet is the concurrent generalization of the single-session Driver
// and the substrate of the Joint tuner; it shares its accounting (one
// trace per transfer, per-session byte totals), per-session
// checkpointing (FleetSession.Checkpoint), and O(1) mid-trajectory
// resumption (FleetSession.Resume). Supervisors that need to admit and
// retire sessions dynamically drive SessionRuntime directly instead.
type Fleet struct {
	cfg      FleetConfig
	sessions []FleetSession
}

// NewFleet returns a fleet over the given sessions.
func NewFleet(cfg FleetConfig, sessions ...FleetSession) *Fleet {
	return &Fleet{cfg: cfg, sessions: sessions}
}

// fleetSession is one session's runtime state.
type fleetSession struct {
	cfg     FleetConfig
	spec    FleetSession
	id      string
	dims    []int
	weights []float64
	traces  []*Trace
	bytes   float64
	// transients counts consecutive transient epoch failures.
	transients int
	done       bool
	err        error
	// parts holds the current round's per-transfer slices.
	parts [][]int
	// obs is the session's observation view (nil when unobserved).
	obs *obs.SessionObs
	// epochs counts settled rounds, the epoch index for observation
	// and checkpointing.
	epochs int
	// lastX is the previous proposal, carried on Propose events.
	lastX []int
	// lastFit/haveFit track the previous aggregate throughput for
	// Observe-event deltas.
	lastFit float64
	haveFit bool
	// records accumulates the checkpoint trace when the session
	// checkpoints.
	records []EpochRecord
	// lastTransient reports whether the most recently settled round
	// was a tolerated transient failure (SessionRuntime surfaces it).
	lastTransient bool
}

// fleetJob is one (session, transfer) epoch in flight.
type fleetJob struct {
	s   *fleetSession
	i   int // transfer index within the session
	p   xfer.Params
	rep xfer.Report
	err error
	// start is the transfer clock when the epoch was dispatched, for
	// synthesizing a zero-throughput report on transient failure.
	start float64
}

// Run drives all sessions until each has ended and returns their
// results in session order. The error is non-nil only for an unusable
// configuration; per-session failures (including ctx cancellation,
// which fails each session's in-flight epoch) are reported in the
// results.
func (f *Fleet) Run(ctx context.Context) ([]SessionResult, error) {
	cfg := f.cfg.withDefaults()
	if len(f.sessions) == 0 {
		return nil, errors.New("tuner: fleet has no sessions")
	}
	states := make([]*fleetSession, len(f.sessions))
	ids := make(map[string]bool, len(f.sessions))
	// Deduplicated session IDs guarantee distinct metrics labels, but
	// durable identities are configured before deduplication runs — so
	// two sessions could still point at one checkpoint file or one
	// history key. Both would silently corrupt a resume (or a record),
	// so they are rejected here.
	ckPaths := make(map[string]string)
	histKeys := make(map[string]string)
	for i, spec := range f.sessions {
		id := sessionID(spec, ids)
		if err := spec.validate(); err != nil {
			return nil, fmt.Errorf("tuner: fleet session %q: %w", id, err)
		}
		if fc, ok := spec.Checkpoint.(*FileCheckpoint); ok {
			if prev, dup := ckPaths[fc.Path()]; dup {
				return nil, fmt.Errorf("tuner: fleet sessions %q and %q share checkpoint file %s", prev, id, fc.Path())
			}
			ckPaths[fc.Path()] = id
		}
		if k := spec.HistoryKey; !k.IsZero() {
			if prev, dup := histKeys[k.String()]; dup {
				return nil, fmt.Errorf("tuner: fleet sessions %q and %q share history key %s", prev, id, k)
			}
			histKeys[k.String()] = id
		}
		if spec.Name == "" {
			spec.Name = spec.Strategy.Name()
		}
		s := &fleetSession{cfg: cfg, spec: spec, id: id, dims: spec.Dims, weights: spec.Weights}
		s.obs = cfg.Obs.Session(id)
		s.obs.SetStrategy(spec.Strategy.Name())
		if s.weights == nil {
			s.weights = make([]float64, len(spec.Transfers))
			for j := range s.weights {
				s.weights[j] = 1
			}
		}
		s.traces = make([]*Trace, len(spec.Transfers))
		for j := range s.traces {
			s.traces[j] = &Trace{Tuner: spec.Name}
		}
		if spec.Resume != nil {
			if err := s.resume(spec.Resume); err != nil {
				return nil, fmt.Errorf("tuner: fleet session %q: %w", id, err)
			}
		}
		states[i] = s
	}

	if cfg.Shards <= 1 || len(states) == 1 {
		runRounds(ctx, cfg, states)
	} else {
		// Partition the session table by a stable hash of the session
		// ID and drive each shard from its own loop. Sessions on one
		// shared fabric still advance in lockstep: the fabric's
		// conservative-time barrier blocks every shard's epochs until
		// all registered transfers are in theirs.
		shards := make([][]*fleetSession, cfg.Shards)
		for _, s := range states {
			k := ShardIndex(s.id, cfg.Shards)
			shards[k] = append(shards[k], s)
		}
		var wg sync.WaitGroup
		for _, shard := range shards {
			if len(shard) == 0 {
				continue
			}
			wg.Add(1)
			go func(shard []*fleetSession) {
				defer wg.Done()
				runRounds(ctx, cfg, shard)
			}(shard)
		}
		wg.Wait()
	}

	results := make([]SessionResult, len(states))
	for i, s := range states {
		results[i] = SessionResult{ID: s.id, Name: s.spec.Name, Traces: s.traces, Bytes: s.bytes, Err: s.err}
	}
	return results, nil
}

// runRounds drives one shard's sessions round-by-round until every
// session has ended: collect each live session's proposal, run all the
// resulting transfer epochs at once, settle in session order.
func runRounds(ctx context.Context, cfg FleetConfig, states []*fleetSession) {
	for {
		// Collect this round's epochs from every live session.
		var jobs []*fleetJob
		for _, s := range states {
			if s.done {
				continue
			}
			jobs = append(jobs, s.propose()...)
		}
		if len(jobs) == 0 {
			return
		}

		runJobs(ctx, cfg.Epoch, jobs)

		// Settle sessions in order.
		perSession := map[*fleetSession][]*fleetJob{}
		for _, j := range jobs {
			perSession[j.s] = append(perSession[j.s], j)
		}
		for _, s := range states {
			if js := perSession[s]; js != nil {
				s.settle(js)
			}
		}
	}
}

// runJobs dispatches one round's transfer epochs concurrently and
// waits for all of them: one barrier group per round, so a simulation
// fabric advances virtual time only when every participant is in its
// epoch.
func runJobs(ctx context.Context, epoch float64, jobs []*fleetJob) {
	var wg sync.WaitGroup
	for _, j := range jobs {
		wg.Add(1)
		go func(j *fleetJob) {
			defer wg.Done()
			j.rep, j.err = j.s.spec.Transfers[j.i].Run(ctx, j.p, epoch)
		}(j)
	}
	wg.Wait()
}

// sessionID resolves a session's stable identifier: explicit ID, then
// Name, then the strategy name, deduplicated deterministically by
// appending "-2", "-3", … in declaration order.
func sessionID(spec FleetSession, used map[string]bool) string {
	base := spec.ID
	if base == "" {
		base = spec.Name
	}
	if base == "" && spec.Strategy != nil {
		base = spec.Strategy.Name()
	}
	if base == "" {
		base = "session"
	}
	id := base
	for n := 2; used[id]; n++ {
		id = fmt.Sprintf("%s-%d", base, n)
	}
	used[id] = true
	return id
}

// propose asks the session's strategy for this round's vector and
// expands it into per-transfer jobs. A finished strategy or a slicing
// error ends the session and returns nil.
func (s *fleetSession) propose() []*fleetJob {
	x, fin := s.spec.Strategy.Propose()
	if fin {
		s.finish(nil)
		return nil
	}
	now := s.spec.Transfers[0].Now()
	s.obs.Propose(now, x, s.lastX)
	s.lastX = ivec.Clone(x)
	parts, err := s.slice(x)
	if err != nil {
		s.finish(err)
		return nil
	}
	s.parts = parts
	s.obs.EpochStart(now, s.epochs, x)
	jobs := make([]*fleetJob, 0, len(s.spec.Transfers))
	for i := range s.spec.Transfers {
		jobs = append(jobs, &fleetJob{
			s: s, i: i,
			p:     s.spec.Maps[i](parts[i]),
			start: s.spec.Transfers[i].Now(),
		})
	}
	return jobs
}

// resume restores the session from a prior checkpoint before its first
// round: validate the checkpoint against the strategy, deserialize the
// strategy state directly, and preload the recorded epochs into the
// trace, the byte account, and the checkpoint record — so later
// checkpoints carry the full trajectory and Bytes counts cumulatively
// across incarnations (mirroring the Driver's resume).
func (s *fleetSession) resume(ck *Checkpoint) error {
	if ck.Version != CheckpointVersion {
		return fmt.Errorf("resume: checkpoint version %d, this build reads %d", ck.Version, CheckpointVersion)
	}
	if ck.Tuner != s.spec.Strategy.Name() {
		return fmt.Errorf("resume: checkpoint belongs to %q, cannot resume with %q", ck.Tuner, s.spec.Strategy.Name())
	}
	if ck.Epochs != len(ck.Trace) {
		return fmt.Errorf("resume: corrupt checkpoint: %d epochs but %d trace records", ck.Epochs, len(ck.Trace))
	}
	if len(ck.Trace) == 0 {
		return nil
	}
	if len(ck.Strategy) == 0 {
		return errors.New("resume: checkpoint has no strategy state")
	}
	if err := s.spec.Strategy.Restore(ck.Strategy); err != nil {
		return fmt.Errorf("resume: %w", err)
	}
	for _, rec := range ck.Trace {
		s.records = append(s.records, EpochRecord{X: ivec.Clone(rec.X), Report: rec.Report, Transient: rec.Transient})
		s.traces[0].add(rec.X, rec.Report)
		s.bytes += rec.Report.Bytes
	}
	s.transients = ck.Transients
	s.epochs = len(ck.Trace)
	s.lastX = ivec.Clone(ck.Trace[len(ck.Trace)-1].X)
	return nil
}

// slice cuts the session vector into per-transfer slices.
func (s *fleetSession) slice(x []int) ([][]int, error) {
	if s.dims == nil {
		return [][]int{x}, nil
	}
	total := 0
	for _, d := range s.dims {
		total += d
	}
	if len(x) != total {
		return nil, fmt.Errorf("tuner: session %q proposed %d dims, transfers need %d", s.spec.Name, len(x), total)
	}
	out := make([][]int, len(s.dims))
	off := 0
	for i, d := range s.dims {
		out[i] = x[off : off+d]
		off += d
	}
	return out, nil
}

// settle folds one round's per-transfer reports into the session:
// record the traces, observe the weighted aggregate, and decide
// whether the session ends (completion, budget, or failure).
func (s *fleetSession) settle(jobs []*fleetJob) {
	failed := false
	for _, j := range jobs {
		if j.err == nil {
			continue
		}
		if errors.Is(j.err, context.Canceled) || errors.Is(j.err, context.DeadlineExceeded) || !xfer.IsTransient(j.err) {
			s.finish(j.err)
			return
		}
		failed = true
	}
	if failed {
		s.transients++
		if s.transients >= s.cfg.MaxTransientFailures {
			for _, j := range jobs {
				if j.err != nil {
					s.finish(j.err)
					return
				}
			}
		}
		// Tolerated: the failed epochs read as zero throughput, which
		// trips the strategy's ε-monitor once the transfer recovers.
		for _, j := range jobs {
			if j.err != nil {
				j.rep = xfer.Report{Params: j.p, Start: j.start, End: s.spec.Transfers[j.i].Now()}
			}
		}
	} else {
		s.transients = 0
	}
	s.lastTransient = failed

	agg := xfer.Report{Start: jobs[0].rep.Start, End: jobs[0].rep.End}
	for _, j := range jobs {
		s.traces[j.i].add(s.parts[j.i], j.rep)
		s.bytes += j.rep.Bytes
		agg.Bytes += j.rep.Bytes
		agg.Throughput += s.weights[j.i] * j.rep.Throughput
		agg.BestCase += s.weights[j.i] * j.rep.BestCase
		agg.DeadTime += j.rep.DeadTime
		agg.Dials += j.rep.Dials
		agg.ReusedStreams += j.rep.ReusedStreams
		agg.Retries += j.rep.Retries
		agg.DegradedStreams += j.rep.DegradedStreams
		agg.Files += j.rep.Files
		if j.rep.Done {
			agg.Done = true
		}
	}
	epoch := s.epochs
	s.epochs++
	if s.obs != nil {
		budget := s.cfg.MaxTransientFailures - 1 - s.transients
		if budget < 0 {
			budget = 0
		}
		x := s.lastX
		s.obs.EpochEnd(agg.End, epoch, x, obs.EpochStats{
			Throughput:      agg.Throughput,
			BestCase:        agg.BestCase,
			Bytes:           agg.Bytes,
			DeadTime:        agg.DeadTime,
			Dials:           agg.Dials,
			ReusedStreams:   agg.ReusedStreams,
			Retries:         agg.Retries,
			DegradedStreams: agg.DegradedStreams,
			Files:           agg.Files,
		}, failed, budget)
		var d float64
		if s.haveFit {
			d = delta(s.lastFit, agg.Throughput)
		}
		s.obs.Observe(agg.End, epoch, d)
	}
	// Tracked unconditionally: SessionRuntime.LastThroughput reads it,
	// observer or not.
	s.lastFit, s.haveFit = agg.Throughput, true
	s.spec.Strategy.Observe(agg)
	if err := s.checkpoint(jobs, failed); err != nil {
		s.finish(err)
		return
	}
	if agg.Done {
		s.finish(nil)
		return
	}
	if s.cfg.Budget > 0 && s.spec.Transfers[0].Now() >= s.cfg.Budget-1e-9 {
		s.finish(nil)
	}
}

// checkpoint writes the session's durable state after a settled epoch,
// in the same Checkpoint form the single-session Driver writes, so a
// single-transfer fleet session can be resumed as a solo run. No-op
// without a configured writer.
func (s *fleetSession) checkpoint(jobs []*fleetJob, transient bool) error {
	if s.spec.Checkpoint == nil {
		return nil
	}
	// validate() pinned checkpointing sessions to one transfer.
	j := jobs[0]
	s.records = append(s.records, EpochRecord{X: ivec.Clone(s.parts[0]), Report: j.rep, Transient: transient})
	raw, err := s.spec.Strategy.Snapshot()
	if err != nil {
		return fmt.Errorf("tuner: fleet session %q: checkpoint: strategy snapshot: %w", s.id, err)
	}
	ck := &Checkpoint{
		Version:    CheckpointVersion,
		Tuner:      s.spec.Strategy.Name(),
		Seed:       s.spec.Seed,
		Epochs:     len(s.records),
		Transients: s.transients,
		Transfer:   xfer.CaptureState(s.spec.Transfers[0]),
		Strategy:   raw,
		Trace:      append([]EpochRecord(nil), s.records...),
	}
	t0 := time.Now()
	if err := s.spec.Checkpoint.Save(ck); err != nil {
		return fmt.Errorf("tuner: fleet session %q: checkpoint: %w", s.id, err)
	}
	s.obs.CheckpointWritten(s.spec.Transfers[0].Now(), ck.Epochs, time.Since(t0).Seconds())
	return nil
}

// finish ends the session and stops its transfers. A clean end folds
// the session's best epoch into the fleet's history store. Under
// PreserveOnCancel a context-cancellation end leaves the transfers
// running so a supervisor can resume them from the last checkpoint.
func (s *fleetSession) finish(err error) {
	s.done = true
	s.err = err
	if err == nil {
		s.recordHistory()
	}
	s.obs.Finish(err)
	if s.cfg.PreserveOnCancel && (errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)) {
		return
	}
	for _, t := range s.spec.Transfers {
		t.Stop()
	}
}

// recordHistory writes the session's best observed epoch to the shared
// history store under the session's key. No-op without a store, a key,
// a single transfer, or any observed epoch.
func (s *fleetSession) recordHistory() {
	if s.cfg.History == nil || s.spec.HistoryKey.IsZero() || len(s.traces) != 1 {
		return
	}
	x, tp, ok := s.traces[0].BestEpoch()
	if !ok {
		return
	}
	rec := history.Record{
		Key: s.spec.HistoryKey, X: x, Throughput: tp,
		Tuner: s.spec.Strategy.Name(), Epochs: len(s.traces[0].Results),
	}
	if s.cfg.History.Add(rec) == nil {
		s.obs.HistoryRecorded()
	}
}
