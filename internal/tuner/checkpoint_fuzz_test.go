package tuner

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// FuzzLoadCheckpoint feeds arbitrary bytes through the checkpoint
// loader and, when a checkpoint is accepted, through every strategy's
// Restore. Corrupt or truncated input must surface as an error — never
// a panic — and anything accepted must satisfy the loader's invariants.
func FuzzLoadCheckpoint(f *testing.F) {
	// Seed the corpus with a real checkpoint, truncations of it, and
	// hand-corrupted variants.
	ck := &Checkpoint{
		Version:  CheckpointVersion,
		Tuner:    "cs-tuner",
		Seed:     7,
		Epochs:   1,
		Strategy: json.RawMessage(`{"Phase":"search","Monitor":{"Last":0,"Armed":false}}`),
		Trace: []EpochRecord{
			{X: []int{2}},
		},
	}
	valid, err := json.Marshal(ck)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"version":2,"epochs":3,"trace":[]}`))
	f.Add([]byte(`{"version":99}`))
	f.Add([]byte(`{"version":2,"strategy":{"Phase":"bogus"}}`))
	f.Add([]byte(`null`))
	f.Add([]byte(``))
	// Learned-strategy checkpoints: a plausible rl-q state, and
	// hostile variants — an out-of-grid bandit arm, a mis-shaped
	// Q-table, a malformed state key, an overflowing Q-value.
	f.Add([]byte(`{"version":2,"tuner":"rl-q","seed":7,"epochs":1,"strategy":` +
		`{"step":1,"ctx":9,"x":[2],"pending":3,"f_max":2.5e8,` +
		`"table":[{"key":"9|2","q":[0.5,0,0,0,0],"n":[1,0,0,0,0]}]},"trace":[{"x":[2]}]}`))
	f.Add([]byte(`{"version":2,"tuner":"rl-bandit","epochs":1,"strategy":{"pending":64,"q":[[0]],"n":[[0]]},"trace":[{"x":[2]}]}`))
	f.Add([]byte(`{"version":2,"tuner":"rl-bandit","epochs":1,"strategy":{"q":[[1e999]]},"trace":[{"x":[2]}]}`))
	f.Add([]byte(`{"version":2,"tuner":"rl-q","epochs":1,"strategy":{"table":[{"key":"bogus","q":[],"n":[]}]},"trace":[{"x":[2]}]}`))

	names := strategyNames()
	f.Fuzz(func(t *testing.T, data []byte) {
		path := filepath.Join(t.TempDir(), "ck.json")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		ck, err := LoadCheckpoint(path)
		if err != nil {
			return // rejected input is fine; panics are not
		}
		if ck.Version != CheckpointVersion {
			t.Fatalf("loader accepted version %d", ck.Version)
		}
		if ck.Epochs != len(ck.Trace) {
			t.Fatalf("loader accepted %d epochs with %d trace records", ck.Epochs, len(ck.Trace))
		}
		// An accepted checkpoint's strategy state must restore cleanly
		// or error — arbitrary raw state must never panic a strategy.
		if len(ck.Strategy) == 0 {
			return
		}
		for _, name := range names {
			s, err := NewStrategy(name, simCfg())
			if err != nil {
				t.Fatal(err)
			}
			_ = s.Restore(ck.Strategy)
		}
	})
}
