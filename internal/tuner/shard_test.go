package tuner

import (
	"context"
	"fmt"
	"reflect"
	"testing"

	"dstune/internal/xfer"
)

// TestShardIndexContract pins the assignment function: deterministic,
// in range, degenerate cases map to shard 0, and real ID populations
// actually spread across shards.
func TestShardIndexContract(t *testing.T) {
	if got := ShardIndex("anything", 0); got != 0 {
		t.Fatalf("ShardIndex(_, 0) = %d, want 0", got)
	}
	if got := ShardIndex("anything", 1); got != 0 {
		t.Fatalf("ShardIndex(_, 1) = %d, want 0", got)
	}
	const shards = 8
	counts := make([]int, shards)
	for i := 0; i < 1000; i++ {
		id := fmt.Sprintf("job-%05d", i)
		k := ShardIndex(id, shards)
		if k < 0 || k >= shards {
			t.Fatalf("ShardIndex(%q, %d) = %d out of range", id, shards, k)
		}
		if k != ShardIndex(id, shards) {
			t.Fatalf("ShardIndex(%q) unstable", id)
		}
		counts[k]++
	}
	for k, n := range counts {
		if n == 0 {
			t.Fatalf("shard %d never used: %v", k, counts)
		}
	}
}

// isolationSessions builds one doomed session (fatal transfer error on
// its second epoch) among healthy finite-volume siblings.
func isolationSessions(t *testing.T) []FleetSession {
	t.Helper()
	cfg := cfg1D(0)
	sessions := []FleetSession{{
		Name:      "doomed",
		Strategy:  mustStrategy(t, cfg),
		Transfers: []xfer.Transferer{&fake{remaining: 1e18, g: peaked(10), failAfter: 2}},
		Maps:      []ParamMap{cfg.Map},
	}}
	for _, name := range []string{"healthy-1", "healthy-2", "healthy-3"} {
		sessions = append(sessions, FleetSession{
			Name:      name,
			Strategy:  mustStrategy(t, cfg),
			Transfers: []xfer.Transferer{&fake{remaining: 2e10, g: peaked(16)}},
			Maps:      []ParamMap{cfg.Map},
		})
	}
	return sessions
}

func mustStrategy(t *testing.T, cfg Config) Strategy {
	t.Helper()
	s, err := NewStrategy("cs-tuner", cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestFleetFailureIsolation is the shard-supervision regression guard:
// one session's fatal transfer error must not abort its siblings, on
// the single historical loop and on a sharded run alike. The siblings
// must still move every byte of their finite volumes.
func TestFleetFailureIsolation(t *testing.T) {
	for _, shards := range []int{1, 3} {
		results, err := NewFleet(FleetConfig{Epoch: 10, Shards: shards}, isolationSessions(t)...).Run(context.Background())
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		if results[0].Err == nil {
			t.Fatalf("shards=%d: doomed session did not fail", shards)
		}
		for _, r := range results[1:] {
			if r.Err != nil {
				t.Errorf("shards=%d: sibling %s aborted: %v", shards, r.ID, r.Err)
			}
			if r.Bytes != 2e10 {
				t.Errorf("shards=%d: sibling %s moved %.0f bytes, want 2e10", shards, r.ID, r.Bytes)
			}
		}
	}
}

// TestShardedFleetMatchesSingleLoop pins that sharding is purely a
// scheduling change: sessions over independent deterministic transfers
// produce byte-identical traces whether they share one loop or spread
// across several.
func TestShardedFleetMatchesSingleLoop(t *testing.T) {
	build := func() []FleetSession {
		cfg := cfg1D(0)
		var sessions []FleetSession
		for _, peak := range []int{8, 12, 16, 24, 32} {
			sessions = append(sessions, FleetSession{
				Strategy:  mustStrategy(t, cfg),
				Transfers: []xfer.Transferer{&fake{remaining: 2e10, g: peaked(peak)}},
				Maps:      []ParamMap{cfg.Map},
			})
		}
		for i := range sessions {
			sessions[i].Name = "s-" + string(rune('a'+i))
		}
		return sessions
	}
	single, err := NewFleet(FleetConfig{Epoch: 10}, build()...).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	sharded, err := NewFleet(FleetConfig{Epoch: 10, Shards: 4}, build()...).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	for i := range single {
		if single[i].ID != sharded[i].ID {
			t.Fatalf("result order differs: %q vs %q", single[i].ID, sharded[i].ID)
		}
		if !reflect.DeepEqual(single[i].Traces, sharded[i].Traces) {
			t.Errorf("session %s: sharded trace differs from single-loop trace", single[i].ID)
		}
	}
}

// BenchmarkSessionDispatch measures the shard supervisor's hot path:
// one SessionRuntime round (propose, epoch, settle) over an in-memory
// transfer. The allocation count is gated in BENCH_baseline.json — a
// regression here multiplies across every session of every shard of a
// loaded daemon.
func BenchmarkSessionDispatch(b *testing.B) {
	cfg := cfg1D(0)
	strat, err := NewStrategy("cs-tuner", cfg)
	if err != nil {
		b.Fatal(err)
	}
	rt, err := NewSessionRuntime(FleetConfig{Epoch: 10}, FleetSession{
		Name:      "bench",
		Strategy:  strat,
		Transfers: []xfer.Transferer{newFake(peaked(16))},
		Maps:      []ParamMap{cfg.Map},
	})
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if info := rt.Step(ctx); info.Done {
			b.Fatalf("session ended mid-benchmark: %+v", info)
		}
	}
}
