package tuner

import (
	"encoding/json"
	"fmt"
	"strings"

	"dstune/internal/history"
	"dstune/internal/ivec"
	"dstune/internal/xfer"
)

// Strategy is a tuner's decision kernel as an explicit state machine:
// a pure function of the observed epoch reports. Propose returns the
// parameter vector for the next control epoch; Observe folds in the
// epoch's report and advances the state. The Driver owns everything
// else — the epoch loop, pacing, budget, transient-failure counting,
// and checkpointing — so one process can step many strategies
// concurrently (see Fleet) and a checkpoint can serialize a strategy
// mid-flight.
//
// Protocol: Propose, run the epoch, Observe, repeat. Propose is
// idempotent — calling it again before Observe returns the same
// vector — and must be called at least once before the first Observe.
// A strategy's state after k Observe calls is a deterministic function
// of its configuration and the k observed reports; Snapshot/Restore
// round-trip that state exactly, which is what makes O(1) resume
// equivalent to replaying the recorded epochs.
type Strategy interface {
	// Name returns the strategy's conventional name, e.g. "cs-tuner".
	Name() string
	// Propose returns the vector for the next epoch, or done=true when
	// the strategy has nothing further to run (no built-in strategy
	// terminates; they hold their final vector forever).
	Propose() ([]int, bool)
	// Observe folds one epoch report into the state machine. A
	// tolerated transient failure arrives as a zero-throughput report,
	// so the ε-monitor re-triggers naturally once the transfer
	// recovers.
	Observe(rep xfer.Report)
	// Snapshot returns the strategy's complete serializable state.
	Snapshot() (json.RawMessage, error)
	// Restore replaces the strategy's state with a Snapshot taken from
	// an identically configured strategy, validating it first.
	Restore(raw json.RawMessage) error
}

// NewStrategy builds the named strategy — one of "default",
// "cd-tuner", "cs-tuner", "nm-tuner", "heur1", "heur2", "model",
// "two-phase", "rl-bandit", "rl-q", "kernel-aware:<inner>", or
// "warm:<inner>" — from cfg.
// The prefixed and two-phase forms construct cold (no history store):
// a checkpointed warm run resumes through this constructor by name
// alone, taking its predicted start from the serialized state rather
// than a store. The prefixes compose in exactly one order:
// "warm:kernel-aware:<inner>".
func NewStrategy(name string, cfg Config) (Strategy, error) {
	if inner, ok := strings.CutPrefix(name, "warm:"); ok {
		return NewWarmStart(inner, cfg, nil, history.Key{})
	}
	if inner, ok := strings.CutPrefix(name, "kernel-aware:"); ok {
		return NewKernelAware(inner, cfg)
	}
	switch name {
	case "default", "static":
		return NewStaticStrategy(cfg), nil
	case "cd-tuner":
		return NewCDStrategy(cfg), nil
	case "cs-tuner":
		return NewCSStrategy(cfg), nil
	case "nm-tuner":
		return NewNMStrategy(cfg), nil
	case "heur1":
		return NewHeur1Strategy(cfg), nil
	case "heur2":
		return NewHeur2Strategy(cfg), nil
	case "model":
		return NewModelStrategy(cfg), nil
	case "two-phase":
		return NewTwoPhaseStrategy(cfg), nil
	case "rl-bandit":
		return NewRLBandit(cfg), nil
	case "rl-q":
		return NewRLQ(cfg), nil
	}
	return nil, fmt.Errorf("tuner: unknown strategy %q", name)
}

// StrategyNames lists every base (unprefixed) strategy name NewStrategy
// accepts, in documentation order. The "static" alias for "default" is
// not listed. STRATEGIES.md keeps one section per name (plus the two
// wrapper prefixes); TestStrategyDocCoverage fails when one goes
// undocumented.
func StrategyNames() []string {
	return []string{
		"default", "cd-tuner", "cs-tuner", "nm-tuner", "heur1", "heur2",
		"model", "two-phase", "rl-bandit", "rl-q",
	}
}

// KnownStrategy reports whether name resolves to a built-in strategy,
// including the "warm:<inner>" and "kernel-aware:<inner>" prefixed
// forms (neither wrapper nests itself, and warm goes outside
// kernel-aware, never inside).
func KnownStrategy(name string) bool {
	if inner, ok := strings.CutPrefix(name, "warm:"); ok {
		return !strings.HasPrefix(inner, "warm:") && KnownStrategy(inner)
	}
	if inner, ok := strings.CutPrefix(name, "kernel-aware:"); ok {
		return !strings.HasPrefix(inner, "kernel-aware:") &&
			!strings.HasPrefix(inner, "warm:") && KnownStrategy(inner)
	}
	if name == "static" {
		return true
	}
	for _, n := range StrategyNames() {
		if name == n {
			return true
		}
	}
	return false
}

// fitnessOf returns the objective value of an epoch under the
// configured observation mode.
func fitnessOf(cfg Config, rep xfer.Report) float64 {
	if cfg.ObserveBestCase {
		return rep.BestCase
	}
	return rep.Throughput
}

// Monitor is the paper's ε-monitor, shared by every strategy that
// holds a vector and watches consecutive epoch throughputs: Observe
// compares each reading against the previous one and reports whether
// the relative change exceeded the tolerance. An unarmed monitor
// (fresh, or after Disarm) absorbs its first reading as the new
// baseline without triggering.
type Monitor struct {
	// Tolerance is the significance threshold ε in percent. It comes
	// from the configuration, not the serialized state.
	Tolerance float64 `json:"-"`
	// Last is the previous epoch's objective value.
	Last float64 `json:"last"`
	// Armed reports whether Last holds a valid baseline.
	Armed bool `json:"armed"`
}

// Observe folds in one reading and reports whether it triggered.
func (m *Monitor) Observe(f float64) bool {
	if !m.Armed {
		m.Armed = true
		m.Last = f
		return false
	}
	dc := delta(m.Last, f)
	m.Last = f
	return dc > m.Tolerance || dc < -m.Tolerance
}

// Reset arms the monitor with baseline f.
func (m *Monitor) Reset(f float64) {
	m.Last = f
	m.Armed = true
}

// Disarm drops the baseline; the next reading re-arms without
// triggering.
func (m *Monitor) Disarm() {
	m.Last = 0
	m.Armed = false
}

// Rotation is the stall-rotation shared by the multi-parameter
// cd-tuner and heur1: after StallEpochs consecutive holds, move the
// active coordinate to the next dimension.
type Rotation struct {
	// Dim is the active coordinate.
	Dim int `json:"dim"`
	// Stalls counts consecutive holding epochs.
	Stalls int `json:"stalls"`
}

// Hold records one holding epoch and reports whether it rotated the
// active coordinate (only with more than one dimension, after
// stallEpochs consecutive holds).
func (r *Rotation) Hold(dims, stallEpochs int) bool {
	r.Stalls++
	if dims > 1 && r.Stalls >= stallEpochs {
		r.Stalls = 0
		r.Dim = (r.Dim + 1) % dims
		return true
	}
	return false
}

// Progress resets the stall count after a moving epoch.
func (r *Rotation) Progress() {
	r.Stalls = 0
}

// StaticState is the serializable state of the static strategy.
type StaticState struct {
	// X is the held vector.
	X []int `json:"x"`
}

// StaticStrategy holds the starting parameters forever — the paper's
// non-adaptive `default` baseline.
type StaticStrategy struct {
	cfg Config
	st  StaticState
}

// NewStaticStrategy returns a static strategy holding cfg.Start
// (clamped to the box).
func NewStaticStrategy(cfg Config) *StaticStrategy {
	cfg = cfg.withDefaults()
	return &StaticStrategy{cfg: cfg, st: StaticState{X: cfg.Box.ClampInt(cfg.Start)}}
}

// Name implements Strategy.
func (s *StaticStrategy) Name() string { return "default" }

// Propose implements Strategy.
func (s *StaticStrategy) Propose() ([]int, bool) { return ivec.Clone(s.st.X), false }

// Observe implements Strategy.
func (s *StaticStrategy) Observe(xfer.Report) {}

// Snapshot implements Strategy.
func (s *StaticStrategy) Snapshot() (json.RawMessage, error) { return json.Marshal(s.st) }

// Restore implements Strategy.
func (s *StaticStrategy) Restore(raw json.RawMessage) error {
	var st StaticState
	if err := json.Unmarshal(raw, &st); err != nil {
		return fmt.Errorf("tuner: static state: %w", err)
	}
	if len(st.X) != s.cfg.Box.Dim() {
		return fmt.Errorf("tuner: static state has %d dims, box has %d", len(st.X), s.cfg.Box.Dim())
	}
	s.st = st
	return nil
}
