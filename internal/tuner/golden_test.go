package tuner

import (
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"dstune/internal/directsearch"
)

// updateGolden rewrites the golden trace fixtures from the current
// implementation. The fixtures were captured from the pre-Driver seed
// implementation (the blocking Tune loops), so a clean run of
// TestGoldenTraces proves the Strategy/Driver control plane reproduces
// the seed traces exactly.
var updateGolden = flag.Bool("update-golden", false, "rewrite testdata golden traces")

// goldenCase is one (tuner, world, config) combination pinned by the
// golden fixtures.
type goldenCase struct {
	name string
	seed uint64
	cfg  Config
}

// goldenCases exercises every tuner on two worlds: a 1-D tune long
// enough to trigger monitor restarts, and a 2-D tune that exercises
// the stall-rotation paths of cd-tuner and heur1.
func goldenCases() []goldenCase {
	oneD := Config{
		Epoch:  5,
		Box:    directsearch.MustBox([]int{1}, []int{32}),
		Start:  []int{2},
		Map:    MapNC(4),
		Budget: 400,
		Seed:   7,
	}
	twoD := Config{
		Epoch:  5,
		Box:    directsearch.MustBox([]int{1, 1}, []int{32, 8}),
		Start:  []int{2, 4},
		Map:    MapNCNP(),
		Budget: 400,
		Seed:   9,
	}
	return []goldenCase{
		{"1d", 11, oneD},
		{"2d", 13, twoD},
	}
}

func goldenTuners() map[string]func(Config) Tuner {
	return map[string]func(Config) Tuner{
		"default":  func(c Config) Tuner { return NewStatic(c) },
		"cd-tuner": func(c Config) Tuner { return NewCD(c) },
		"cs-tuner": NewCS,
		"nm-tuner": NewNM,
		"heur1":    func(c Config) Tuner { return NewHeur1(c) },
		"heur2":    func(c Config) Tuner { return NewHeur2(c) },
		"model":    func(c Config) Tuner { return NewModel(c) },
	}
}

// TestGoldenTraces is the refactor-equivalence property: for every
// tuner and pinned world, the produced trace must match the byte-level
// JSON fixture captured from the seed (pre-refactor) blocking-loop
// implementation.
func TestGoldenTraces(t *testing.T) {
	for _, gc := range goldenCases() {
		for name, mk := range goldenTuners() {
			t.Run(gc.name+"/"+name, func(t *testing.T) {
				tr, err := mk(gc.cfg).Tune(t.Context(), simTransfer(t, gc.seed))
				if err != nil {
					t.Fatal(err)
				}
				got, err := json.MarshalIndent(tr, "", " ")
				if err != nil {
					t.Fatal(err)
				}
				got = append(got, '\n')
				path := filepath.Join("testdata", "golden", gc.name+"_"+name+".json")
				if *updateGolden {
					if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
						t.Fatal(err)
					}
					if err := os.WriteFile(path, got, 0o644); err != nil {
						t.Fatal(err)
					}
					return
				}
				want, err := os.ReadFile(path)
				if err != nil {
					t.Fatalf("golden fixture missing (run with -update-golden): %v", err)
				}
				if string(got) != string(want) {
					// Locate the first diverging epoch for a usable message.
					var ref Trace
					if err := json.Unmarshal(want, &ref); err != nil {
						t.Fatal(err)
					}
					for i := range ref.Results {
						if i >= len(tr.Results) || !reflect.DeepEqual(tr.Results[i], ref.Results[i]) {
							t.Fatalf("trace diverged from seed implementation at epoch %d:\n got %+v\nwant %+v",
								i, epochOrNil(tr.Results, i), epochOrNil(ref.Results, i))
						}
					}
					t.Fatalf("trace diverged: got %d epochs, golden has %d", len(tr.Results), len(ref.Results))
				}
			})
		}
	}
}

func epochOrNil(rs []EpochResult, i int) any {
	if i < len(rs) {
		return rs[i]
	}
	return "(missing)"
}
