package tuner

import (
	"context"
	"fmt"
)

// ShardIndex assigns a session ID to one of shards worker loops by a
// stable FNV-1a hash, so a session lands on the same shard across
// restarts and across processes. shards <= 1 always maps to 0.
func ShardIndex(id string, shards int) int {
	if shards <= 1 {
		return 0
	}
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(id); i++ {
		h ^= uint64(id[i])
		h *= prime64
	}
	return int(h % uint64(shards))
}

// StepInfo is the outcome of one SessionRuntime.Step: whether the
// session has ended (and with what error), and whether the settled
// round was a tolerated transient failure.
type StepInfo struct {
	// Done reports whether the session has ended; once true, further
	// Steps are no-ops returning the same terminal state.
	Done bool
	// Transient reports that the settled round failed transiently and
	// was tolerated (recorded as a zero-throughput epoch).
	Transient bool
	// Err is the session's terminal error when Done; nil for a clean
	// end (transfer complete, budget spent, or strategy finished).
	Err error
}

// SessionRuntime drives a single fleet session one round at a time,
// for supervisors that admit and retire sessions dynamically (the
// dstuned service) instead of running a fixed set to completion the
// way Fleet.Run does. It reuses the Fleet's exact per-round machinery
// — propose, concurrent transfer epochs, settle, checkpoint — so a
// session behaves identically under either driver.
//
// A SessionRuntime is owned by one goroutine at a time: Step, Abort,
// and the accessors must not be called concurrently with one another.
type SessionRuntime struct {
	cfg FleetConfig
	s   *fleetSession
}

// NewSessionRuntime validates spec and returns a runtime for it. The
// session's ID is taken from spec (ID, then Name, then the strategy
// name) without deduplication — the caller guarantees uniqueness. A
// spec.Resume checkpoint restores the session mid-trajectory exactly
// as Fleet.Run would.
func NewSessionRuntime(cfg FleetConfig, spec FleetSession) (*SessionRuntime, error) {
	cfg = cfg.withDefaults()
	id := sessionID(spec, map[string]bool{})
	if err := spec.validate(); err != nil {
		return nil, fmt.Errorf("tuner: session %q: %w", id, err)
	}
	if spec.Name == "" {
		spec.Name = spec.Strategy.Name()
	}
	s := &fleetSession{cfg: cfg, spec: spec, id: id, dims: spec.Dims, weights: spec.Weights}
	s.obs = cfg.Obs.Session(id)
	s.obs.SetStrategy(spec.Strategy.Name())
	if s.weights == nil {
		s.weights = make([]float64, len(spec.Transfers))
		for j := range s.weights {
			s.weights[j] = 1
		}
	}
	s.traces = make([]*Trace, len(spec.Transfers))
	for j := range s.traces {
		s.traces[j] = &Trace{Tuner: spec.Name}
	}
	if spec.Resume != nil {
		if err := s.resume(spec.Resume); err != nil {
			return nil, fmt.Errorf("tuner: session %q: %w", id, err)
		}
	}
	return &SessionRuntime{cfg: cfg, s: s}, nil
}

// ID returns the session's stable identifier.
func (r *SessionRuntime) ID() string { return r.s.id }

// Done reports whether the session has ended.
func (r *SessionRuntime) Done() bool { return r.s.done }

// Err returns the session's terminal error (nil before it ends, and
// for a clean end).
func (r *SessionRuntime) Err() error { return r.s.err }

// Epochs returns the number of settled epochs, including any preloaded
// by a resume.
func (r *SessionRuntime) Epochs() int { return r.s.epochs }

// Bytes returns the total bytes the session's recorded epochs moved,
// cumulative across resumed incarnations.
func (r *SessionRuntime) Bytes() float64 { return r.s.bytes }

// Transients returns the current consecutive transient-failure count.
func (r *SessionRuntime) Transients() int { return r.s.transients }

// LastX returns the most recently proposed parameter vector (nil
// before the first round).
func (r *SessionRuntime) LastX() []int { return r.s.lastX }

// LastThroughput returns the aggregate throughput of the last settled
// epoch in bytes/second (0 before the first).
func (r *SessionRuntime) LastThroughput() float64 { return r.s.lastFit }

// Step runs one control round: propose, run the session's transfer
// epochs concurrently, settle, checkpoint. It blocks for the epoch
// duration (virtual time under a simulation fabric, wall time on
// sockets). Cancelling ctx aborts the in-flight epoch and ends the
// session with the context's error; under FleetConfig.PreserveOnCancel
// the transfers are left running for a later resume.
func (r *SessionRuntime) Step(ctx context.Context) StepInfo {
	if r.s.done {
		return StepInfo{Done: true, Err: r.s.err}
	}
	jobs := r.s.propose()
	if jobs == nil {
		return StepInfo{Done: true, Err: r.s.err}
	}
	runJobs(ctx, r.cfg.Epoch, jobs)
	r.s.settle(jobs)
	return StepInfo{Done: r.s.done, Transient: r.s.lastTransient, Err: r.s.err}
}

// Abort ends the session immediately with err, stopping its transfers
// (unless err is a context cancellation under PreserveOnCancel). It is
// how a supervisor evicts or cancels a session between rounds; a
// session that is already done is left untouched.
func (r *SessionRuntime) Abort(err error) {
	if r.s.done {
		return
	}
	r.s.finish(err)
}

// Result returns the session's outcome in the same form Fleet.Run
// reports. The traces include epochs preloaded by a resume.
func (r *SessionRuntime) Result() SessionResult {
	return SessionResult{ID: r.s.id, Name: r.s.spec.Name, Traces: r.s.traces, Bytes: r.s.bytes, Err: r.s.err}
}
