package tuner

import (
	"context"
	"encoding/json"
	"fmt"
	"strings"

	"dstune/internal/history"
	"dstune/internal/xfer"
)

// WarmStartState is the serializable state of a warm-started strategy:
// whether a historical prediction was adopted, the predicted vector,
// and the inner strategy's complete state. A resume rebuilds the inner
// strategy from the prediction alone — no history store is consulted —
// so warm runs checkpoint and resume exactly like the cold ones.
type WarmStartState struct {
	// Warm reports whether construction adopted a historical
	// prediction as the inner strategy's starting point.
	Warm bool `json:"warm"`
	// Pred is the adopted prediction (present only when Warm).
	Pred []int `json:"pred,omitempty"`
	// Inner is the inner strategy's serialized state.
	Inner json.RawMessage `json:"inner"`
}

// WarmStartStrategy wraps any built-in strategy with a knowledge-plane
// warm start: at construction it queries the history store for the
// best-known vector under the run's key and, on a hit, starts the
// inner strategy there instead of the configured cold-start point —
// the inner strategy's first proposal becomes the predicted optimum,
// its ε-monitor and restart origin follow along, and everything else
// (search, monitor, checkpointing) proceeds unchanged. On a miss the
// wrapper is transparent.
type WarmStartStrategy struct {
	cfg   Config // the cold configuration, kept for Restore
	inner Strategy
	name  string
	warm  bool
	pred  []int
}

// NewWarmStart builds a warm-started wrapper around the named inner
// strategy ("warm:" nesting is rejected). With a non-nil store and no
// pending resume, the store is consulted for key: a hit whose vector
// matches the box dimensionality becomes the inner strategy's starting
// point (clamped to the box) and is announced through cfg.Obs as a
// WarmStart event; anything else is a miss. With a nil store — the
// form NewStrategy("warm:<inner>", cfg) uses — construction is cold
// and the prediction, if any, arrives later via Restore.
func NewWarmStart(innerName string, cfg Config, store *history.Store, key history.Key) (*WarmStartStrategy, error) {
	if strings.HasPrefix(innerName, "warm:") {
		return nil, fmt.Errorf("tuner: warm start cannot nest %q", innerName)
	}
	s := &WarmStartStrategy{cfg: cfg}
	icfg := cfg
	if store != nil && cfg.Resume == nil {
		if e, ok := store.Lookup(key); ok && len(e.X) == cfg.Box.Dim() {
			s.warm = true
			s.pred = cfg.Box.ClampInt(e.X)
			icfg.Start = s.pred
			cfg.Obs.WarmStart(0, s.pred, true)
		} else {
			cfg.Obs.WarmStart(0, nil, false)
		}
	}
	inner, err := NewStrategy(innerName, icfg)
	if err != nil {
		return nil, err
	}
	s.inner = inner
	s.name = "warm:" + inner.Name()
	return s, nil
}

// Name implements Strategy. The name carries the inner strategy
// ("warm:cs-tuner"), so a checkpoint written by a warm run resumes
// through NewStrategy by name like every other strategy's.
func (s *WarmStartStrategy) Name() string { return s.name }

// Warm reports whether construction adopted a historical prediction,
// and the predicted vector when it did.
func (s *WarmStartStrategy) Warm() ([]int, bool) {
	if !s.warm {
		return nil, false
	}
	return append([]int(nil), s.pred...), true
}

// Propose implements Strategy.
func (s *WarmStartStrategy) Propose() ([]int, bool) { return s.inner.Propose() }

// Observe implements Strategy.
func (s *WarmStartStrategy) Observe(rep xfer.Report) { s.inner.Observe(rep) }

// Snapshot implements Strategy.
func (s *WarmStartStrategy) Snapshot() (json.RawMessage, error) {
	raw, err := s.inner.Snapshot()
	if err != nil {
		return nil, err
	}
	return json.Marshal(WarmStartState{Warm: s.warm, Pred: s.pred, Inner: raw})
}

// Restore implements Strategy. The inner strategy is rebuilt from the
// snapshot's prediction (its start point, restart origin, and RNG
// follow from the configuration plus the prediction), then its own
// state is restored — so a resumed warm run continues deterministically
// without the history store that seeded it.
func (s *WarmStartStrategy) Restore(raw json.RawMessage) error {
	var st WarmStartState
	if err := json.Unmarshal(raw, &st); err != nil {
		return fmt.Errorf("tuner: %s state: %w", s.name, err)
	}
	if len(st.Inner) == 0 {
		return fmt.Errorf("tuner: %s state has no inner strategy state", s.name)
	}
	icfg := s.cfg
	var pred []int
	if st.Warm {
		if len(st.Pred) != s.cfg.Box.Dim() {
			return fmt.Errorf("tuner: %s state prediction has %d dims, box has %d", s.name, len(st.Pred), s.cfg.Box.Dim())
		}
		pred = s.cfg.Box.ClampInt(st.Pred)
		icfg.Start = pred
	}
	innerName := strings.TrimPrefix(s.name, "warm:")
	inner, err := NewStrategy(innerName, icfg)
	if err != nil {
		return err
	}
	if err := inner.Restore(st.Inner); err != nil {
		return err
	}
	s.warm = st.Warm
	s.pred = pred
	s.inner = inner
	return nil
}

// warmTuner is a warm-started strategy under the shared Driver.
type warmTuner struct {
	inner string
	name  string
	cfg   Config
	store *history.Store
	key   history.Key
}

// NewWarm returns a Tuner that warm-starts the named inner strategy
// from the history store under key, then drives it with the standard
// Driver. The store may be nil (a cold run under the warm name); a
// resumed configuration takes its start from the checkpoint, never the
// store.
func NewWarm(inner string, cfg Config, store *history.Store, key history.Key) (Tuner, error) {
	if strings.HasPrefix(inner, "warm:") {
		return nil, fmt.Errorf("tuner: warm start cannot nest %q", inner)
	}
	if !KnownStrategy(inner) {
		return nil, fmt.Errorf("tuner: unknown strategy %q", inner)
	}
	return &warmTuner{inner: inner, name: "warm:" + canonicalName(inner), cfg: cfg, store: store, key: key}, nil
}

// canonicalName resolves strategy-name aliases ("static" is reported
// as "default", including under the warm prefix).
func canonicalName(name string) string {
	if inner, ok := strings.CutPrefix(name, "warm:"); ok {
		return "warm:" + canonicalName(inner)
	}
	if inner, ok := strings.CutPrefix(name, "kernel-aware:"); ok {
		return "kernel-aware:" + canonicalName(inner)
	}
	if name == "static" {
		return "default"
	}
	return name
}

// Name implements Tuner.
func (w *warmTuner) Name() string { return w.name }

// Tune implements Tuner.
func (w *warmTuner) Tune(ctx context.Context, t xfer.Transferer) (*Trace, error) {
	cfg := w.cfg
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if ck := cfg.Resume; ck != nil {
		cfg.Seed = ck.Seed
	}
	s, err := NewWarmStart(w.inner, cfg, w.store, w.key)
	if err != nil {
		return nil, err
	}
	return NewDriver(cfg).Run(ctx, s, t)
}
