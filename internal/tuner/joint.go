package tuner

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"dstune/internal/directsearch"
	"dstune/internal/sim"
	"dstune/internal/xfer"
)

// JointConfig parameterizes a Joint tuner. The Box and Start span the
// concatenation of all transfers' vectors; Dims gives each transfer's
// slice width and Maps its ParamMap over that slice. Weights scale
// each transfer's contribution to the aggregate objective (transfer
// priorities in the sense of Kettimuthu et al. [16]); nil means equal
// weights.
type JointConfig struct {
	// Epoch, Tolerance, Lambda, NM, Budget, Seed, Restart, and
	// ObserveBestCase mean the same as in Config.
	Epoch           float64
	Tolerance       float64
	Lambda          float64
	NM              directsearch.NMConfig
	Box             directsearch.Box
	Start           []int
	Budget          float64
	Seed            uint64
	Restart         RestartFrom
	ObserveBestCase bool

	// Dims is the vector width per transfer (e.g. [2, 2] for two
	// transfers each tuning nc and np).
	Dims []int
	// Maps converts each transfer's slice to its parameters.
	Maps []ParamMap
	// Weights are the per-transfer priorities; nil = all ones.
	Weights []float64
}

// withDefaults returns cfg with zero fields replaced by defaults.
func (c JointConfig) withDefaults() JointConfig {
	if c.Epoch == 0 {
		c.Epoch = 30
	}
	c.Tolerance = resolveSentinel(c.Tolerance, 5)
	c.Lambda = resolveSentinel(c.Lambda, 8)
	if c.Weights == nil {
		c.Weights = make([]float64, len(c.Dims))
		for i := range c.Weights {
			c.Weights[i] = 1
		}
	}
	return c
}

// Validate reports whether the configuration is usable.
func (c JointConfig) Validate() error {
	if len(c.Dims) == 0 {
		return errors.New("tuner: joint config needs at least one transfer")
	}
	if len(c.Maps) != len(c.Dims) {
		return fmt.Errorf("tuner: %d maps for %d transfers", len(c.Maps), len(c.Dims))
	}
	if c.Weights != nil && len(c.Weights) != len(c.Dims) {
		return fmt.Errorf("tuner: %d weights for %d transfers", len(c.Weights), len(c.Dims))
	}
	total := 0
	for i, d := range c.Dims {
		if d < 1 {
			return fmt.Errorf("tuner: transfer %d has dim %d", i, d)
		}
		if c.Maps[i] == nil {
			return fmt.Errorf("tuner: transfer %d has nil map", i)
		}
		total += d
	}
	if c.Box.Dim() != total || len(c.Start) != total {
		return fmt.Errorf("tuner: box dim %d / start %d, want %d", c.Box.Dim(), len(c.Start), total)
	}
	return nil
}

// Joint tunes several transfers on a shared endpoint as one
// optimization problem: one direct search over the concatenated
// parameter vector, maximizing the weighted aggregate throughput.
// This is the endpoint-level tuning the paper's §IV-D discussion and
// future-work item (4) call for, in contrast to Figure 11's
// independent tuners that treat each other as external load.
//
// All transfers run their control epochs concurrently (the simulation
// fabric keeps them in lockstep virtual time), so one evaluation of
// the joint vector costs one epoch of wall/virtual time regardless of
// the number of transfers.
type Joint struct {
	cfg  JointConfig
	name string
	// newSearch builds the inner search (compass or Nelder–Mead).
	newSearch func(start []int, cfg JointConfig, rng *sim.RNG) directsearch.Searcher
}

// NewJointCS returns a joint tuner driven by compass search.
func NewJointCS(cfg JointConfig) *Joint {
	return &Joint{
		cfg:  cfg,
		name: "joint-cs",
		newSearch: func(start []int, cfg JointConfig, rng *sim.RNG) directsearch.Searcher {
			return directsearch.NewCompass(start, cfg.Box, directsearch.CompassConfig{Lambda: cfg.Lambda}, rng)
		},
	}
}

// NewJointNM returns a joint tuner driven by Nelder–Mead.
func NewJointNM(cfg JointConfig) *Joint {
	return &Joint{
		cfg:  cfg,
		name: "joint-nm",
		newSearch: func(start []int, cfg JointConfig, rng *sim.RNG) directsearch.Searcher {
			nmCfg := cfg.NM
			if nmCfg.InitStep == 0 {
				nmCfg.InitStep = cfg.Lambda
			}
			return directsearch.NewNelderMead(start, cfg.Box, nmCfg)
		},
	}
}

// Name returns the tuner's name.
func (j *Joint) Name() string { return j.name }

// slices cuts the joint vector into per-transfer slices.
func (j *Joint) slices(x []int) [][]int {
	out := make([][]int, len(j.cfg.Dims))
	off := 0
	for i, d := range j.cfg.Dims {
		out[i] = x[off : off+d]
		off += d
	}
	return out
}

// Tune drives the transfers until any of them completes or the budget
// is reached, then stops them all and returns one trace per transfer
// (in input order). Each trace's epochs record that transfer's own
// slice of the joint vector.
//
// Cancelling ctx aborts the in-flight epoch and returns the traces so
// far. Joint tuning has no checkpoint/resume support: the transfers
// are always stopped on return.
func (j *Joint) Tune(ctx context.Context, ts []xfer.Transferer) ([]*Trace, error) {
	if err := j.cfg.Validate(); err != nil {
		return nil, err
	}
	if len(ts) != len(j.cfg.Dims) {
		return nil, fmt.Errorf("tuner: %d transfers for %d configured slots", len(ts), len(j.cfg.Dims))
	}
	cfg := j.cfg.withDefaults()
	defer func() {
		for _, t := range ts {
			t.Stop()
		}
	}()

	traces := make([]*Trace, len(ts))
	for i := range traces {
		traces[i] = &Trace{Tuner: j.name}
	}
	rng := sim.NewRNG(cfg.Seed)
	x0 := cfg.Box.ClampInt(cfg.Start)

	fitness := func(rep xfer.Report) float64 {
		if cfg.ObserveBestCase {
			return rep.BestCase
		}
		return rep.Throughput
	}

	// evaluate runs one concurrent epoch at joint vector x and
	// returns the weighted aggregate objective.
	evaluate := func(x []int) (float64, bool, error) {
		parts := j.slices(x)
		reps := make([]xfer.Report, len(ts))
		errs := make([]error, len(ts))
		var wg sync.WaitGroup
		for i, t := range ts {
			wg.Add(1)
			go func(i int, t xfer.Transferer) {
				defer wg.Done()
				reps[i], errs[i] = t.Run(ctx, cfg.Maps[i](parts[i]), cfg.Epoch)
			}(i, t)
		}
		wg.Wait()
		stop := false
		agg := 0.0
		for i := range ts {
			if errs[i] != nil {
				return 0, true, errs[i]
			}
			traces[i].add(parts[i], reps[i])
			agg += cfg.Weights[i] * fitness(reps[i])
			if reps[i].Done {
				stop = true
			}
		}
		if cfg.Budget > 0 && ts[0].Now() >= cfg.Budget-1e-9 {
			stop = true
		}
		return agg, stop, nil
	}

	// search drives one inner joint search to convergence.
	search := func(start []int) (x []int, f float64, stop bool, err error) {
		srch := j.newSearch(start, cfg, rng)
		for {
			cand, done := srch.Suggest()
			if done {
				x, f = srch.Best()
				return x, f, false, nil
			}
			agg, stop, err := evaluate(cand)
			if err != nil || stop {
				bx, bf := srch.Best()
				if bx == nil {
					bx = start
				}
				return bx, bf, true, err
			}
			srch.Observe(agg)
		}
	}

	x, fLast, stop, err := search(x0)
	if err != nil || stop {
		return traces, err
	}
	for {
		agg, stop, err := evaluate(x)
		if err != nil || stop {
			return traces, err
		}
		dc := delta(fLast, agg)
		fLast = agg
		if dc > cfg.Tolerance || dc < -cfg.Tolerance {
			start := x0
			if cfg.Restart == FromCurrent {
				start = x
			}
			x, fLast, stop, err = search(start)
			if err != nil || stop {
				return traces, err
			}
		}
	}
}
