package tuner

import (
	"context"
	"errors"
	"fmt"

	"dstune/internal/directsearch"
	"dstune/internal/xfer"
)

// JointConfig parameterizes a Joint tuner. The Box and Start span the
// concatenation of all transfers' vectors; Dims gives each transfer's
// slice width and Maps its ParamMap over that slice. Weights scale
// each transfer's contribution to the aggregate objective (transfer
// priorities in the sense of Kettimuthu et al. [16]); nil means equal
// weights.
type JointConfig struct {
	// Epoch, Tolerance, Lambda, NM, Budget, Seed, Restart, and
	// ObserveBestCase mean the same as in Config.
	Epoch     float64               // control-epoch length in seconds
	Tolerance float64               // significance threshold in percent
	Lambda    float64               // forgetting factor for the smoothed objective
	NM        directsearch.NMConfig // Nelder-Mead knobs
	Box       directsearch.Box      // bounds over the concatenated vector
	Start     []int                 // initial concatenated vector
	Budget    float64               // tuning time budget in seconds; 0 = unlimited
	Seed      uint64                // drives all randomness
	Restart   RestartFrom           // where a monitor retrigger restarts the search
	// ObserveBestCase selects the best-case (loss-free) throughput as
	// the objective, as in Config.
	ObserveBestCase bool

	// Dims is the vector width per transfer (e.g. [2, 2] for two
	// transfers each tuning nc and np).
	Dims []int
	// Maps converts each transfer's slice to its parameters.
	Maps []ParamMap
	// Weights are the per-transfer priorities; nil = all ones.
	Weights []float64
}

// withDefaults returns cfg with zero fields replaced by defaults.
func (c JointConfig) withDefaults() JointConfig {
	if c.Epoch == 0 {
		c.Epoch = 30
	}
	c.Tolerance = resolveSentinel(c.Tolerance, 5)
	c.Lambda = resolveSentinel(c.Lambda, 8)
	if c.Weights == nil {
		c.Weights = make([]float64, len(c.Dims))
		for i := range c.Weights {
			c.Weights[i] = 1
		}
	}
	return c
}

// Validate reports whether the configuration is usable.
func (c JointConfig) Validate() error {
	if len(c.Dims) == 0 {
		return errors.New("tuner: joint config needs at least one transfer")
	}
	if len(c.Maps) != len(c.Dims) {
		return fmt.Errorf("tuner: %d maps for %d transfers", len(c.Maps), len(c.Dims))
	}
	if c.Weights != nil && len(c.Weights) != len(c.Dims) {
		return fmt.Errorf("tuner: %d weights for %d transfers", len(c.Weights), len(c.Dims))
	}
	total := 0
	for i, d := range c.Dims {
		if d < 1 {
			return fmt.Errorf("tuner: transfer %d has dim %d", i, d)
		}
		if c.Maps[i] == nil {
			return fmt.Errorf("tuner: transfer %d has nil map", i)
		}
		total += d
	}
	if c.Box.Dim() != total || len(c.Start) != total {
		return fmt.Errorf("tuner: box dim %d / start %d, want %d", c.Box.Dim(), len(c.Start), total)
	}
	return nil
}

// Joint tunes several transfers on a shared endpoint as one
// optimization problem: one direct search over the concatenated
// parameter vector, maximizing the weighted aggregate throughput.
// This is the endpoint-level tuning the paper's §IV-D discussion and
// future-work item (4) call for, in contrast to Figure 11's
// independent tuners that treat each other as external load.
//
// All transfers run their control epochs concurrently (the simulation
// fabric keeps them in lockstep virtual time), so one evaluation of
// the joint vector costs one epoch of wall/virtual time regardless of
// the number of transfers.
//
// Joint is a single-session Fleet: one SearchStrategy over the
// concatenated vector, observing the weighted aggregate report.
type Joint struct {
	cfg  JointConfig
	name string
	kind string
}

// NewJointCS returns a joint tuner driven by compass search.
func NewJointCS(cfg JointConfig) *Joint {
	return &Joint{cfg: cfg, name: "joint-cs", kind: searchKindCompass}
}

// NewJointNM returns a joint tuner driven by Nelder–Mead.
func NewJointNM(cfg JointConfig) *Joint {
	return &Joint{cfg: cfg, name: "joint-nm", kind: searchKindNM}
}

// Name returns the tuner's name.
func (j *Joint) Name() string { return j.name }

// Tune drives the transfers until any of them completes or the budget
// is reached, then stops them all and returns one trace per transfer
// (in input order). Each trace's epochs record that transfer's own
// slice of the joint vector.
//
// Cancelling ctx aborts the in-flight epoch and returns the traces so
// far. Joint tuning has no checkpoint/resume support: the transfers
// are always stopped on return.
func (j *Joint) Tune(ctx context.Context, ts []xfer.Transferer) ([]*Trace, error) {
	if err := j.cfg.Validate(); err != nil {
		return nil, err
	}
	if len(ts) != len(j.cfg.Dims) {
		return nil, fmt.Errorf("tuner: %d transfers for %d configured slots", len(ts), len(j.cfg.Dims))
	}
	cfg := j.cfg.withDefaults()
	// The strategy config keeps the raw sentinels (NoTolerance,
	// NoLambda) so its own defaulting resolves them exactly once.
	strat := newSearchStrategy(j.name, j.kind, Config{
		Epoch:           j.cfg.Epoch,
		Tolerance:       j.cfg.Tolerance,
		Lambda:          j.cfg.Lambda,
		NM:              j.cfg.NM,
		Box:             j.cfg.Box,
		Start:           j.cfg.Start,
		Seed:            j.cfg.Seed,
		Restart:         j.cfg.Restart,
		ObserveBestCase: j.cfg.ObserveBestCase,
	})
	fleet := NewFleet(
		// MaxTransientFailures 1: the first failed epoch of any kind
		// ends joint tuning, as there is no checkpoint to resume from.
		FleetConfig{Epoch: cfg.Epoch, Budget: cfg.Budget, MaxTransientFailures: 1},
		FleetSession{
			Name:      j.name,
			Strategy:  strat,
			Transfers: ts,
			Dims:      cfg.Dims,
			Maps:      cfg.Maps,
			Weights:   cfg.Weights,
		},
	)
	results, err := fleet.Run(ctx)
	if err != nil {
		return nil, err
	}
	return results[0].Traces, results[0].Err
}
