package tuner

import (
	"context"
	"errors"
	"math"
	"testing"

	"dstune/internal/directsearch"
	"dstune/internal/xfer"
)

// fake is a synthetic Transferer whose throughput is a pure function
// of the parameters and the transfer clock — fast and noise-free, so
// tuner trajectories are exactly predictable.
type fake struct {
	now       float64
	remaining float64
	g         func(p xfer.Params, now float64) float64
	stopped   bool
	runs      int
	failAfter int // inject an error on run number failAfter (1-based)
}

func (f *fake) Run(ctx context.Context, p xfer.Params, epoch float64) (xfer.Report, error) {
	if f.stopped {
		return xfer.Report{}, xfer.ErrStopped
	}
	f.runs++
	if f.failAfter > 0 && f.runs >= f.failAfter {
		return xfer.Report{}, errors.New("injected failure")
	}
	tput := f.g(p, f.now)
	bytes := tput * epoch
	if bytes > f.remaining {
		bytes = f.remaining
	}
	start := f.now
	f.now += epoch
	f.remaining -= bytes
	return xfer.Report{
		Params:     p,
		Start:      start,
		End:        f.now,
		Bytes:      bytes,
		Throughput: bytes / epoch,
		BestCase:   bytes / epoch,
		Done:       f.remaining <= 0,
	}, nil
}

func (f *fake) Remaining() float64 { return f.remaining }
func (f *fake) Now() float64       { return f.now }
func (f *fake) Stop()              { f.stopped = true }

// peaked returns a time-invariant objective that rises 100 MB/s per
// unit of nc up to the peak and falls 80 MB/s per unit beyond it —
// steep enough that a 5% tolerance keeps the tuners moving.
func peaked(peak int) func(p xfer.Params, now float64) float64 {
	return func(p xfer.Params, _ float64) float64 {
		nc := p.NC
		if nc <= peak {
			return float64(nc) * 100e6
		}
		return float64(peak)*100e6 - float64(nc-peak)*80e6
	}
}

// shifting moves the peak (and scale) at t=shiftAt so the monitors
// have a significant change to detect.
func shifting(peak1, peak2 int, shiftAt float64) func(p xfer.Params, now float64) float64 {
	a, b := peaked(peak1), peaked(peak2)
	return func(p xfer.Params, now float64) float64 {
		if now < shiftAt {
			return a(p, now)
		}
		return b(p, now) * 2
	}
}

// cfg1D tunes nc in [1, 128] with np fixed at 8, short epochs.
func cfg1D(budget float64) Config {
	return Config{
		Epoch:  10,
		Box:    directsearch.MustBox([]int{1}, []int{128}),
		Start:  []int{2},
		Map:    MapNC(8),
		Budget: budget,
		Seed:   1,
	}
}

func newFake(g func(xfer.Params, float64) float64) *fake {
	return &fake{remaining: 1e18, g: g}
}

func allTuners(cfg Config) []Tuner {
	return []Tuner{NewCD(cfg), NewCS(cfg), NewNM(cfg), NewHeur1(cfg), NewHeur2(cfg), NewStatic(cfg)}
}

func TestConfigValidation(t *testing.T) {
	good := cfg1D(100)
	if err := good.Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	bad := good
	bad.Box = directsearch.Box{}
	if bad.Validate() == nil {
		t.Fatal("missing box accepted")
	}
	bad = good
	bad.Start = []int{1, 2}
	if bad.Validate() == nil {
		t.Fatal("dim mismatch accepted")
	}
	bad = good
	bad.Map = nil
	if bad.Validate() == nil {
		t.Fatal("missing map accepted")
	}
	bad = good
	bad.Budget = -1
	if bad.Validate() == nil {
		t.Fatal("negative budget accepted")
	}
}

func TestTuneRejectsBadConfig(t *testing.T) {
	for _, tn := range allTuners(Config{}) {
		if _, err := tn.Tune(context.Background(), newFake(peaked(10))); err == nil {
			t.Errorf("%s: bad config accepted", tn.Name())
		}
	}
}

func TestNames(t *testing.T) {
	want := map[string]bool{
		"cd-tuner": true, "cs-tuner": true, "nm-tuner": true,
		"heur1": true, "heur2": true, "default": true,
	}
	for _, tn := range allTuners(cfg1D(10)) {
		if !want[tn.Name()] {
			t.Errorf("unexpected name %q", tn.Name())
		}
	}
}

func TestStaticHoldsParams(t *testing.T) {
	f := newFake(peaked(10))
	tr, err := NewStatic(cfg1D(100)).Tune(context.Background(), f)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Results) != 10 {
		t.Fatalf("epochs = %d, want 10 (budget 100 / epoch 10)", len(tr.Results))
	}
	for _, r := range tr.Results {
		if r.X[0] != 2 {
			t.Fatalf("static moved to %v", r.X)
		}
		if r.Report.Params != (xfer.Params{NC: 2, NP: 8}) {
			t.Fatalf("static params %v", r.Report.Params)
		}
	}
	if !f.stopped {
		t.Fatal("Tune did not stop the transfer")
	}
}

func TestBudgetRespected(t *testing.T) {
	for _, tn := range allTuners(cfg1D(120)) {
		f := newFake(peaked(10))
		tr, err := tn.Tune(context.Background(), f)
		if err != nil {
			t.Fatalf("%s: %v", tn.Name(), err)
		}
		if got := len(tr.Results); got != 12 {
			t.Errorf("%s: %d epochs, want 12", tn.Name(), got)
		}
		if !f.stopped {
			t.Errorf("%s: transfer not stopped", tn.Name())
		}
	}
}

func TestTunersBeatDefaultOnPeakedObjective(t *testing.T) {
	base, err := NewStatic(cfg1D(600)).Tune(context.Background(), newFake(peaked(20)))
	if err != nil {
		t.Fatal(err)
	}
	baseMean := base.SteadyThroughput(300)
	for _, tn := range []Tuner{NewCD(cfg1D(600)), NewCS(cfg1D(600)), NewNM(cfg1D(600)), NewHeur1(cfg1D(600)), NewHeur2(cfg1D(600))} {
		tr, err := tn.Tune(context.Background(), newFake(peaked(20)))
		if err != nil {
			t.Fatalf("%s: %v", tn.Name(), err)
		}
		if got := tr.SteadyThroughput(300); got < 3*baseMean {
			t.Errorf("%s: steady %v not >= 3x default %v", tn.Name(), got, baseMean)
		}
	}
}

func TestCDHoversAtPeak(t *testing.T) {
	tr, err := NewCD(cfg1D(600)).Tune(context.Background(), newFake(peaked(10)))
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range tr.Results[20:] {
		if r.X[0] < 8 || r.X[0] > 12 {
			t.Fatalf("epoch %d: nc=%d drifted from peak 10", r.Epoch, r.X[0])
		}
	}
}

func TestSearchTunersConvergeNearPeak(t *testing.T) {
	for _, tn := range []Tuner{NewCS(cfg1D(900)), NewNM(cfg1D(900))} {
		tr, err := tn.Tune(context.Background(), newFake(peaked(40)))
		if err != nil {
			t.Fatalf("%s: %v", tn.Name(), err)
		}
		x := tr.FinalX()
		if x[0] < 35 || x[0] > 45 {
			t.Errorf("%s: final nc=%d, want near 40", tn.Name(), x[0])
		}
	}
}

func TestSearchTunersReadaptAfterShift(t *testing.T) {
	// Peak moves from 10 to 30 (and scale doubles) at t=600; the
	// monitor must notice and re-search.
	for _, mk := range []func(Config) Tuner{NewCS, NewNM} {
		cfg := cfg1D(1800)
		tn := mk(cfg)
		tr, err := tn.Tune(context.Background(), newFake(shifting(10, 30, 600)))
		if err != nil {
			t.Fatalf("%s: %v", tn.Name(), err)
		}
		x := tr.FinalX()
		if x[0] < 25 || x[0] > 35 {
			t.Errorf("%s: final nc=%d, want near new peak 30", tn.Name(), x[0])
		}
	}
}

func TestRestartFromCurrent(t *testing.T) {
	cfg := cfg1D(1800)
	cfg.Restart = FromCurrent
	tr, err := NewCS(cfg).Tune(context.Background(), newFake(shifting(10, 30, 600)))
	if err != nil {
		t.Fatal(err)
	}
	if x := tr.FinalX(); x[0] < 25 || x[0] > 35 {
		t.Fatalf("FromCurrent final nc=%d, want near 30", x[0])
	}
}

func TestHeur2SettlesAndNeverRetunes(t *testing.T) {
	// Doubling from 2: 4, 8, 16 (worse) -> settle at 8 and hold, even
	// after the landscape shifts.
	tr, err := NewHeur2(cfg1D(1800)).Tune(context.Background(), newFake(shifting(10, 30, 600)))
	if err != nil {
		t.Fatal(err)
	}
	settled := tr.FinalX()[0]
	if settled != 8 {
		t.Fatalf("heur2 settled at %d, want 8", settled)
	}
	// Every epoch after settling keeps the same value.
	for _, r := range tr.Results[10:] {
		if r.X[0] != settled {
			t.Fatalf("heur2 moved after settling: epoch %d at %d", r.Epoch, r.X[0])
		}
	}
}

func TestHeur2StartAboveCriticalStaysHigh(t *testing.T) {
	// The paper: started above the critical point, heur2 cannot come
	// back down.
	cfg := cfg1D(600)
	cfg.Start = []int{64}
	tr, err := NewHeur2(cfg).Tune(context.Background(), newFake(peaked(10)))
	if err != nil {
		t.Fatal(err)
	}
	if x := tr.FinalX(); x[0] < 64 {
		t.Fatalf("heur2 decreased from 64 to %d; it has no decrement mechanism", x[0])
	}
}

func TestHeur1ClimbsAdditively(t *testing.T) {
	tr, err := NewHeur1(cfg1D(600)).Tune(context.Background(), newFake(peaked(10)))
	if err != nil {
		t.Fatal(err)
	}
	// Additive climb: nc must never jump by more than 1 per epoch.
	prev := tr.Results[0].X[0]
	for _, r := range tr.Results[1:] {
		if d := r.X[0] - prev; d > 1 || d < -1 {
			t.Fatalf("heur1 jumped %d -> %d", prev, r.X[0])
		}
		prev = r.X[0]
	}
	// And it must get near the peak eventually.
	if x := tr.FinalX(); x[0] < 9 || x[0] > 12 {
		t.Fatalf("heur1 final nc=%d, want ~10", x[0])
	}
}

func TestHeur1NeverDecreasesBelowStart(t *testing.T) {
	cfg := cfg1D(600)
	cfg.Start = []int{64}
	tr, err := NewHeur1(cfg).Tune(context.Background(), newFake(peaked(10)))
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range tr.Results {
		if r.X[0] < 64 {
			t.Fatalf("heur1 decreased to %d", r.X[0])
		}
	}
}

func TestTwoParameterTuning(t *testing.T) {
	// Peak at nc=20; np matters weakly (best at 8, as in the paper
	// where parallelism has minor impact).
	g := func(p xfer.Params, _ float64) float64 {
		base := peaked(20)(xfer.Params{NC: p.NC}, 0)
		pen := float64((p.NP - 8) * (p.NP - 8))
		return base - pen*1e6
	}
	cfg := Config{
		Epoch:  10,
		Box:    directsearch.MustBox([]int{1, 1}, []int{128, 32}),
		Start:  []int{2, 8},
		Map:    MapNCNP(),
		Budget: 2400,
		Seed:   2,
	}
	for _, tn := range []Tuner{NewCS(cfg), NewNM(cfg), NewCD(cfg)} {
		tr, err := tn.Tune(context.Background(), newFake(g))
		if err != nil {
			t.Fatalf("%s: %v", tn.Name(), err)
		}
		x := tr.FinalX()
		if x[0] < 14 || x[0] > 26 {
			t.Errorf("%s: final nc=%d, want near 20", tn.Name(), x[0])
		}
	}
}

func TestErrorPropagation(t *testing.T) {
	for _, tn := range allTuners(cfg1D(1000)) {
		f := newFake(peaked(10))
		f.failAfter = 5
		_, err := tn.Tune(context.Background(), f)
		if err == nil {
			t.Errorf("%s: injected failure not propagated", tn.Name())
		}
	}
}

func TestTransferCompletionEndsTuning(t *testing.T) {
	for _, tn := range allTuners(cfg1D(0)) {
		f := newFake(peaked(10))
		f.remaining = 5e9 // finishes within a few epochs
		tr, err := tn.Tune(context.Background(), f)
		if err != nil {
			t.Fatalf("%s: %v", tn.Name(), err)
		}
		last := tr.Results[len(tr.Results)-1]
		if !last.Report.Done {
			t.Errorf("%s: last epoch not marked done", tn.Name())
		}
		if f.remaining > 0 {
			t.Errorf("%s: transfer incomplete", tn.Name())
		}
	}
}

func TestTraceAccessors(t *testing.T) {
	f := newFake(peaked(10))
	tr, err := NewStatic(cfg1D(100)).Tune(context.Background(), f)
	if err != nil {
		t.Fatal(err)
	}
	if s := tr.Throughput(); s.Len() != 10 {
		t.Fatalf("throughput series len %d", s.Len())
	}
	if s := tr.BestCase(); s.Len() != 10 {
		t.Fatalf("bestcase series len %d", s.Len())
	}
	if s := tr.Param(0); s.Len() != 10 || s.Last().V != 2 {
		t.Fatalf("param series %v", s.Last())
	}
	if tr.Param(5).Len() != 0 {
		t.Fatal("out-of-range param dim returned data")
	}
	if tr.MeanThroughput() != 200e6 {
		t.Fatalf("mean throughput %v, want 2e8", tr.MeanThroughput())
	}
	if tr.MeanBestCase() != 200e6 {
		t.Fatalf("mean best case %v", tr.MeanBestCase())
	}
	empty := &Trace{}
	if empty.FinalX() != nil || empty.MeanThroughput() != 0 || empty.SteadyThroughput(0) != 0 {
		t.Fatal("empty trace accessors misbehave")
	}
}

func TestDelta(t *testing.T) {
	if d := delta(100, 110); d != 10 {
		t.Fatalf("delta = %v, want 10", d)
	}
	if d := delta(100, 90); d != -10 {
		t.Fatalf("delta = %v, want -10", d)
	}
	if d := delta(0, 0); d != 0 {
		t.Fatalf("delta(0,0) = %v", d)
	}
	if d := delta(0, 5); d < 1e8 {
		t.Fatalf("delta(0,5) = %v, want huge", d)
	}
}

func TestConvergenceTime(t *testing.T) {
	tr := &Trace{}
	// Ramp: 10 epochs climbing 100..1000, then 10 steady at 1000.
	for i := 0; i < 20; i++ {
		v := 1000.0
		if i < 10 {
			v = float64(i+1) * 100
		}
		tr.add([]int{i}, xfer.Report{
			Start:      float64(i) * 30,
			End:        float64(i+1) * 30,
			Throughput: v,
		})
	}
	// With window 1 and frac 0.9: first epoch at >= 900 is epoch 8
	// (start 240).
	if got := tr.ConvergenceTime(0.9, 1); got != 240 {
		t.Fatalf("ConvergenceTime = %v, want 240", got)
	}
	// Frac 0.1: immediately (epoch 0 mean 100 >= 100).
	if got := tr.ConvergenceTime(0.1, 1); got != 0 {
		t.Fatalf("ConvergenceTime(0.1) = %v, want 0", got)
	}
	// Window longer than the trace: -1.
	if got := tr.ConvergenceTime(0.9, 50); got != -1 {
		t.Fatalf("short trace = %v, want -1", got)
	}
	// Degenerate window clamps to 1.
	if got := tr.ConvergenceTime(0.9, 0); got != 240 {
		t.Fatalf("window 0 = %v, want 240", got)
	}
	// Empty trace.
	if got := (&Trace{}).ConvergenceTime(0.9, 1); got != -1 {
		t.Fatalf("empty trace = %v, want -1", got)
	}
}

func TestModelSamplePoints(t *testing.T) {
	cfg := cfg1D(0).withDefaults()
	pts := samplePoints(cfg)
	if len(pts) < 3 {
		t.Fatalf("too few sample points: %v", pts)
	}
	seen := map[int]bool{}
	for _, p := range pts {
		if p < 1 || p > 128 || seen[p] {
			t.Fatalf("bad sample points %v", pts)
		}
		seen[p] = true
	}
	// Tiny box still yields three distinct points when possible.
	small := cfg
	small.Box = directsearch.MustBox([]int{1}, []int{3})
	if got := samplePoints(small); len(got) < 3 {
		t.Fatalf("tiny box points %v", got)
	}
}

// modelCurve builds a throughput function from the model family
// Th(n) = scale * n / sqrt(a*n^2 + b*n + c) with its peak at the
// given stream count and a negative discriminant (valid everywhere).
func modelCurve(peak int, scale float64) func(p xfer.Params, now float64) float64 {
	c := 4e-17
	b := -2 * c / float64(peak)
	a := b * b / (2 * c) // 4ac = 2b^2 > b^2: always positive
	return func(p xfer.Params, _ float64) float64 {
		n := float64(p.NC)
		return scale * n / math.Sqrt(a*n*n+b*n+c)
	}
}

func TestModelTunerFindsPeak(t *testing.T) {
	tr, err := NewModel(cfg1D(900)).Tune(context.Background(), newFake(modelCurve(28, 1)))
	if err != nil {
		t.Fatal(err)
	}
	x := tr.FinalX()
	if x[0] < 20 || x[0] > 40 {
		t.Fatalf("model tuner settled at nc=%d, want near 28", x[0])
	}
}

func TestModelTunerResamplesOnShift(t *testing.T) {
	early := modelCurve(20, 1)
	late := modelCurve(100, 3)
	shiftG := func(p xfer.Params, now float64) float64 {
		if now < 600 {
			return early(p, now)
		}
		return late(p, now)
	}
	tr, err := NewModel(cfg1D(1800)).Tune(context.Background(), newFake(shiftG))
	if err != nil {
		t.Fatal(err)
	}
	// After the shift the peak moves to 100; the re-sampled model
	// must land well above the pre-shift peak of 20.
	if x := tr.FinalX(); x[0] < 60 {
		t.Fatalf("model tuner did not re-adapt: final nc=%d", x[0])
	}
}

func TestModelTunerName(t *testing.T) {
	if NewModel(cfg1D(10)).Name() != "model" {
		t.Fatal("name")
	}
}

func TestModelTunerBadConfig(t *testing.T) {
	if _, err := NewModel(Config{}).Tune(context.Background(), newFake(peaked(5))); err == nil {
		t.Fatal("bad config accepted")
	}
}

// noisy wraps an objective with deterministic pseudo-random
// multiplicative noise of the given amplitude.
func noisy(g func(xfer.Params, float64) float64, amp float64) func(xfer.Params, float64) float64 {
	state := uint64(0x9e3779b97f4a7c15)
	return func(p xfer.Params, now float64) float64 {
		state = state*6364136223846793005 + 1442695040888963407
		u := float64(state>>11) / float64(1<<53) // [0,1)
		return g(p, now) * (1 + amp*(2*u-1))
	}
}

func TestTunersTolerateMildNoise(t *testing.T) {
	// 3% noise sits under the 5% tolerance: tuners should still beat
	// the static default clearly.
	base, err := NewStatic(cfg1D(900)).Tune(context.Background(), newFake(noisy(peaked(20), 0.03)))
	if err != nil {
		t.Fatal(err)
	}
	def := base.SteadyThroughput(450)
	for _, tn := range []Tuner{NewCD(cfg1D(900)), NewCS(cfg1D(900)), NewNM(cfg1D(900))} {
		tr, err := tn.Tune(context.Background(), newFake(noisy(peaked(20), 0.03)))
		if err != nil {
			t.Fatalf("%s: %v", tn.Name(), err)
		}
		if got := tr.SteadyThroughput(450); got < 2*def {
			t.Errorf("%s under mild noise: steady %v not >= 2x default %v", tn.Name(), got, def)
		}
	}
}

func TestSearchTunersSurviveHeavyNoise(t *testing.T) {
	// 15% noise constantly re-triggers the monitor; the tuners must
	// not crash, loop, or collapse below the static baseline.
	base, err := NewStatic(cfg1D(1200)).Tune(context.Background(), newFake(noisy(peaked(20), 0.15)))
	if err != nil {
		t.Fatal(err)
	}
	def := base.MeanThroughput()
	for _, tn := range []Tuner{NewCS(cfg1D(1200)), NewNM(cfg1D(1200))} {
		tr, err := tn.Tune(context.Background(), newFake(noisy(peaked(20), 0.15)))
		if err != nil {
			t.Fatalf("%s: %v", tn.Name(), err)
		}
		if got := tr.MeanThroughput(); got < def {
			t.Errorf("%s under heavy noise: mean %v below default %v", tn.Name(), got, def)
		}
	}
}
