package tuner

import (
	"context"
	"fmt"

	"dstune/internal/xfer"
)

// namedTuner drives any registered strategy under the shared Driver.
type namedTuner struct {
	name string
	cfg  Config
}

// NewNamed returns a Tuner for any strategy NewStrategy knows —
// including "two-phase" and the "warm:<inner>" forms, which construct
// cold (no history store; a resumed warm checkpoint carries its
// prediction in its serialized state). Dedicated constructors
// (NewStatic, NewCS, NewWarm, …) remain the explicit forms; NewNamed
// is for call sites that hold only a name, such as a -resume path
// adopting the checkpoint's tuner.
func NewNamed(name string, cfg Config) (Tuner, error) {
	if !KnownStrategy(name) {
		return nil, fmt.Errorf("tuner: unknown strategy %q", name)
	}
	return &namedTuner{name: canonicalName(name), cfg: cfg}, nil
}

// Name implements Tuner.
func (n *namedTuner) Name() string { return n.name }

// Tune implements Tuner.
func (n *namedTuner) Tune(ctx context.Context, t xfer.Transferer) (*Trace, error) {
	cfg := n.cfg
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if ck := cfg.Resume; ck != nil {
		cfg.Seed = ck.Seed
	}
	s, err := NewStrategy(n.name, cfg)
	if err != nil {
		return nil, err
	}
	return NewDriver(cfg).Run(ctx, s, t)
}
