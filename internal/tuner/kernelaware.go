package tuner

import (
	"encoding/json"
	"fmt"
	"strings"

	"dstune/internal/xfer"
)

// kernelDampCap bounds how many consecutive epochs the kernel-aware
// wrapper may damp. A loss burst that outlives the cap is a real
// network regression and the inner strategy gets to see it.
const kernelDampCap = 2

// KernelAwareState is the serializable state of a kernel-aware
// strategy: the wrapper's own ε-baseline, the consecutive-damp count,
// and the inner strategy's complete state.
type KernelAwareState struct {
	// Last is the wrapper's fitness baseline (the last reading it let
	// through to the inner strategy).
	Last float64 `json:"last"`
	// Armed reports whether Last holds a valid baseline.
	Armed bool `json:"armed"`
	// Damped counts consecutive damped epochs (0..kernelDampCap).
	Damped int `json:"damped"`
	// Inner is the inner strategy's serialized state.
	Inner json.RawMessage `json:"inner"`
}

// KernelAwareStrategy wraps any built-in strategy with kernel-informed
// damping of the ε-monitor: when an epoch's fitness dips beyond the
// tolerance and the kernel's TCP_INFO samples show retransmissions in
// the same epoch (Report.Kernel.RetransDelta > 0), the dip is
// attributed to transient network loss rather than a parameter-induced
// endpoint regression, and the inner strategy observes a report whose
// fitness is pinned at the pre-dip baseline — so its own ε-monitor does
// not retrigger a full search over a loss burst. At most kernelDampCap
// consecutive epochs are damped; a longer-lived dip, a dip without
// retransmissions (CPU contention, the paper's case for retriggering),
// or a run without kernel samples (Report.Kernel == nil: Sim fabric,
// fault-wrapped conns, non-Linux) passes through untouched.
type KernelAwareStrategy struct {
	cfg   Config // kept for Restore
	inner Strategy
	name  string
	st    KernelAwareState
}

// NewKernelAware builds a kernel-aware wrapper around the named inner
// strategy. The wrapper does not nest, and warm wrapping goes outside
// ("warm:kernel-aware:<inner>"), never inside.
func NewKernelAware(innerName string, cfg Config) (*KernelAwareStrategy, error) {
	if strings.HasPrefix(innerName, "kernel-aware:") || strings.HasPrefix(innerName, "warm:") {
		return nil, fmt.Errorf("tuner: kernel-aware cannot wrap %q", innerName)
	}
	inner, err := NewStrategy(innerName, cfg)
	if err != nil {
		return nil, err
	}
	return &KernelAwareStrategy{
		cfg:   cfg,
		inner: inner,
		name:  "kernel-aware:" + inner.Name(),
	}, nil
}

// Name implements Strategy. The name carries the inner strategy
// ("kernel-aware:cs-tuner") so checkpoints resume through NewStrategy
// by name.
func (s *KernelAwareStrategy) Name() string { return s.name }

// Propose implements Strategy.
func (s *KernelAwareStrategy) Propose() ([]int, bool) { return s.inner.Propose() }

// Damped reports how many consecutive epochs are currently being
// damped (0 when the last report passed through).
func (s *KernelAwareStrategy) Damped() int { return s.st.Damped }

// Observe implements Strategy.
func (s *KernelAwareStrategy) Observe(rep xfer.Report) {
	f := fitnessOf(s.cfg, rep)
	if !s.st.Armed {
		s.st.Armed = true
		s.st.Last = f
		s.inner.Observe(rep)
		return
	}
	dip := delta(s.st.Last, f) < -s.cfg.Tolerance
	lossy := rep.Kernel != nil && rep.Kernel.RetransDelta > 0
	if dip && lossy && s.st.Damped < kernelDampCap {
		// Loss explains the dip: hold the baseline and feed the inner
		// strategy a report pinned at it. Both fitness fields are
		// overwritten because the inner reads exactly one of them
		// (per cfg.ObserveBestCase), and everything else is kept.
		s.st.Damped++
		damped := rep
		damped.Throughput = s.st.Last
		damped.BestCase = s.st.Last
		s.inner.Observe(damped)
		return
	}
	s.st.Damped = 0
	s.st.Last = f
	s.inner.Observe(rep)
}

// Snapshot implements Strategy.
func (s *KernelAwareStrategy) Snapshot() (json.RawMessage, error) {
	raw, err := s.inner.Snapshot()
	if err != nil {
		return nil, err
	}
	st := s.st
	st.Inner = raw
	return json.Marshal(st)
}

// Restore implements Strategy. The inner strategy is rebuilt from the
// configuration and then restored from the snapshot's inner state.
func (s *KernelAwareStrategy) Restore(raw json.RawMessage) error {
	var st KernelAwareState
	if err := json.Unmarshal(raw, &st); err != nil {
		return fmt.Errorf("tuner: %s state: %w", s.name, err)
	}
	if len(st.Inner) == 0 {
		return fmt.Errorf("tuner: %s state has no inner strategy state", s.name)
	}
	if st.Damped < 0 || st.Damped > kernelDampCap {
		return fmt.Errorf("tuner: %s state damp count %d out of range", s.name, st.Damped)
	}
	innerName := strings.TrimPrefix(s.name, "kernel-aware:")
	inner, err := NewStrategy(innerName, s.cfg)
	if err != nil {
		return err
	}
	if err := inner.Restore(st.Inner); err != nil {
		return err
	}
	st.Inner = nil
	s.st = st
	s.inner = inner
	return nil
}
