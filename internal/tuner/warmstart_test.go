package tuner

import (
	"context"
	"errors"
	"path/filepath"
	"reflect"
	"testing"

	"dstune/internal/history"
	"dstune/internal/xfer"
)

// simKey is the history key the warm-start tests share.
func simKey() history.Key {
	return history.Key{Endpoint: "sim", SizeClass: -1, LoadClass: 0}
}

// seededStore returns a memory store holding one best-known record for
// simKey with the given vector.
func seededStore(t *testing.T, x []int) *history.Store {
	t.Helper()
	s := history.NewMemStore()
	if err := s.Add(history.Record{Key: simKey(), X: x, Throughput: 3e8, Tuner: "cs-tuner", Epochs: 12}); err != nil {
		t.Fatal(err)
	}
	return s
}

// TestWarmStartAdoptsPrediction: a store hit makes the wrapped
// strategy's first proposal the predicted optimum; a miss leaves the
// cold start untouched; out-of-box predictions are clamped.
func TestWarmStartAdoptsPrediction(t *testing.T) {
	s, err := NewWarmStart("cs-tuner", simCfg(), seededStore(t, []int{14}), simKey())
	if err != nil {
		t.Fatal(err)
	}
	if s.Name() != "warm:cs-tuner" {
		t.Fatalf("Name() = %q", s.Name())
	}
	if pred, ok := s.Warm(); !ok || !reflect.DeepEqual(pred, []int{14}) {
		t.Fatalf("Warm() = %v, %v; want [14], true", pred, ok)
	}
	if x, done := s.Propose(); done || !reflect.DeepEqual(x, []int{14}) {
		t.Fatalf("first proposal = %v, done=%v; want the prediction [14]", x, done)
	}

	// Miss: an endpoint the store has never seen cold-starts.
	cold, err := NewWarmStart("cs-tuner", simCfg(), seededStore(t, []int{14}), history.Key{Endpoint: "elsewhere"})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := cold.Warm(); ok {
		t.Fatal("miss reported as warm")
	}
	if x, _ := cold.Propose(); !reflect.DeepEqual(x, []int{2}) {
		t.Fatalf("cold first proposal = %v, want the configured start [2]", x)
	}

	// A prediction outside the box is clamped into it, never trusted raw.
	clamped, err := NewWarmStart("cs-tuner", simCfg(), seededStore(t, []int{99}), simKey())
	if err != nil {
		t.Fatal(err)
	}
	if pred, ok := clamped.Warm(); !ok || !reflect.DeepEqual(pred, []int{32}) {
		t.Fatalf("Warm() = %v, %v; want the clamped [32]", pred, ok)
	}

	// Warm-start nesting is rejected.
	if _, err := NewWarmStart("warm:cs-tuner", simCfg(), nil, history.Key{}); err == nil {
		t.Fatal("nested warm start accepted")
	}
}

// TestTwoPhaseCoarseCandidates: with a prediction the coarse list
// brackets it; cold it climbs from the start point; the fine phase
// begins only after every candidate has one observation.
func TestTwoPhaseCoarseCandidates(t *testing.T) {
	warm := NewTwoPhase(simCfg(), seededStore(t, []int{14}), simKey())
	if x, _ := warm.Propose(); !reflect.DeepEqual(x, []int{14}) {
		t.Fatalf("warm two-phase first proposal = %v, want the prediction [14]", x)
	}
	if want := [][]int{{14}, {28}, {7}}; !reflect.DeepEqual(warm.cands, want) {
		t.Fatalf("warm candidates = %v, want %v", warm.cands, want)
	}

	cold := NewTwoPhaseStrategy(simCfg())
	if want := [][]int{{2}, {4}, {8}}; !reflect.DeepEqual(cold.cands, want) {
		t.Fatalf("cold candidates = %v, want %v", cold.cands, want)
	}
}

// TestWarmResumeMatchesUninterrupted is the warm-path determinism
// property: a warm-started run interrupted mid-flight and resumed from
// its durable checkpoint reproduces the uninterrupted warm trace
// exactly — even when the history store has learned new (different)
// records in between, because the prediction travels in the checkpoint,
// never through a fresh lookup.
func TestWarmResumeMatchesUninterrupted(t *testing.T) {
	const seed = 11
	const interruptAfter = 3

	// Reference: one uninterrupted warm run to completion.
	ref := mustWarmRun(t, simCfg(), seed, seededStore(t, []int{14}), nil, nil)
	if len(ref.Results) <= interruptAfter {
		t.Fatalf("reference run too short to interrupt: %d epochs", len(ref.Results))
	}
	if ref.Tuner != "warm:cs-tuner" {
		t.Fatalf("trace tuner = %q", ref.Tuner)
	}

	// Interrupted: identical world, drained after k epochs, every
	// checkpoint persisted through the durable file form.
	live := simTransfer(t, seed)
	fc := NewFileCheckpoint(filepath.Join(t.TempDir(), "run.checkpoint"))
	drain := make(chan struct{})
	drained := false
	cfg := simCfg()
	cfg.Drain = drain
	cfg.Checkpoint = CheckpointFunc(func(ck *Checkpoint) error {
		if err := fc.Save(ck); err != nil {
			return err
		}
		if ck.Epochs >= interruptAfter && !drained {
			drained = true
			close(drain)
		}
		return nil
	})
	store := seededStore(t, []int{14})
	w, err := NewWarm("cs-tuner", cfg, store, simKey())
	if err != nil {
		t.Fatal(err)
	}
	part, err := w.Tune(context.Background(), live)
	if !errors.Is(err, ErrInterrupted) {
		t.Fatalf("drained run returned %v, want ErrInterrupted", err)
	}
	if !reflect.DeepEqual(part.Results, ref.Results[:interruptAfter]) {
		t.Fatalf("pre-interrupt trace diverged from reference:\n got %+v\nwant %+v",
			part.Results, ref.Results[:interruptAfter])
	}

	// The store learns a new, better record before the resume. The
	// resumed run must ignore it: the adopted prediction is checkpoint
	// state.
	if err := store.Add(history.Record{Key: simKey(), X: []int{31}, Throughput: 9e8, Tuner: "cs-tuner", Epochs: 2}); err != nil {
		t.Fatal(err)
	}

	ck, err := LoadCheckpoint(fc.Path())
	if err != nil {
		t.Fatal(err)
	}
	if ck.Tuner != "warm:cs-tuner" {
		t.Fatalf("checkpoint tuner = %q, want warm:cs-tuner", ck.Tuner)
	}
	resumed := mustWarmRun(t, simCfg(), seed, store, ck, live)
	if len(resumed.Results) != len(ref.Results) {
		t.Fatalf("resumed run has %d epochs, reference has %d", len(resumed.Results), len(ref.Results))
	}
	for i := range ref.Results {
		if !reflect.DeepEqual(resumed.Results[i], ref.Results[i]) {
			t.Fatalf("epoch %d diverged after resume:\n got %+v\nwant %+v",
				i, resumed.Results[i], ref.Results[i])
		}
	}
}

// mustWarmRun runs the warm cs-tuner to completion on live (or a fresh
// seeded world when live is nil), resuming from ck when non-nil.
func mustWarmRun(t *testing.T, cfg Config, seed uint64, store *history.Store, ck *Checkpoint, live *xfer.Sim) *Trace {
	t.Helper()
	cfg.Resume = ck
	w, err := NewWarm("cs-tuner", cfg, store, simKey())
	if err != nil {
		t.Fatal(err)
	}
	if live == nil {
		live = simTransfer(t, seed)
	}
	tr, err := w.Tune(context.Background(), live)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}
