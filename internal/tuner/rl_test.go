package tuner

import (
	"bytes"
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"dstune/internal/endpoint"
	"dstune/internal/load"
	"dstune/internal/netem"
	"dstune/internal/obs"
	"dstune/internal/xfer"
)

// simLoadedTransfer builds the simTransfer world with a Step load
// schedule: heavy external traffic for the first half of the budget,
// light after — the dynamic regime the learned strategies are built
// for.
func simLoadedTransfer(t *testing.T, seed uint64) *xfer.Sim {
	t.Helper()
	f, err := xfer.NewFabric(xfer.FabricConfig{
		Seed: seed,
		Source: endpoint.Config{
			Name:         "src",
			Cores:        8,
			CorePumpRate: 1.25e9,
			RestartBase:  0.5,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.AddPath(netem.Config{
		Name:       "wan",
		Capacity:   1.25e9,
		BaseRTT:    0.03,
		RandomLoss: 1e-5,
		MaxCwnd:    8 << 20,
	}); err != nil {
		t.Fatal(err)
	}
	f.SetLoad(load.Step(30, load.Load{Tfr: 24, Cmp: 8}, load.Load{Tfr: 4}), nil)
	tr, err := f.NewTransfer(xfer.TransferConfig{Name: "t", Bytes: xfer.Unbounded})
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

// TestRLResumeByteIdentical is the acceptance property in its
// strictest form: for both learned strategies, a run interrupted
// mid-flight and resumed from its checkpoint must produce a trace that
// is byte-identical (as canonical JSON) to the uninterrupted run's —
// the Q-tables, visit counts, and RNG stream position all survive the
// round trip exactly.
func TestRLResumeByteIdentical(t *testing.T) {
	const seed = 11
	const interruptAfter = 4
	for _, name := range []string{"rl-bandit", "rl-q"} {
		t.Run(name, func(t *testing.T) {
			ref, err := mustStrategyRun(t, name, simCfg(), seed, nil, nil)
			if err != nil {
				t.Fatalf("reference run: %v", err)
			}
			if len(ref.Results) <= interruptAfter {
				t.Fatalf("reference run too short: %d epochs", len(ref.Results))
			}

			live := simTransfer(t, seed)
			var last *Checkpoint
			drain := make(chan struct{})
			drained := false
			cfg := simCfg()
			cfg.Drain = drain
			cfg.Checkpoint = CheckpointFunc(func(ck *Checkpoint) error {
				last = ck
				if ck.Epochs >= interruptAfter && !drained {
					drained = true
					close(drain)
				}
				return nil
			})
			s, err := NewStrategy(name, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := NewDriver(cfg).Run(context.Background(), s, live); err != ErrInterrupted {
				t.Fatalf("drained run returned %v, want ErrInterrupted", err)
			}

			rcfg := simCfg()
			rcfg.Resume = last
			rs, err := NewStrategy(name, rcfg)
			if err != nil {
				t.Fatal(err)
			}
			resumed, err := NewDriver(rcfg).Run(context.Background(), rs, live)
			if err != nil {
				t.Fatalf("resumed run: %v", err)
			}

			want, err := json.Marshal(ref)
			if err != nil {
				t.Fatal(err)
			}
			got, err := json.Marshal(resumed)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("resumed trace not byte-identical to uninterrupted:\n got %s\nwant %s", got, want)
			}
		})
	}
}

// TestGoldenRLEventTrace pins rl-q's full event stream — including the
// new RLAction events — on a Step-load world, exactly as
// TestGoldenEventTrace pins the search strategies'. When
// DSTUNE_EVENT_TRACE is set the trace is also written to
// $DSTUNE_EVENT_TRACE.rl-q-step.jsonl for the CI race job's artifacts
// (the label avoids ':' because it is spliced into filenames).
func TestGoldenRLEventTrace(t *testing.T) {
	const label = "rl-q-step"
	observer := obs.NewObserver(obs.ObserverConfig{})
	cfg := simCfg()
	cfg.Obs = observer.Session("e2e")
	cfg.Checkpoint = CheckpointFunc(func(*Checkpoint) error { return nil })
	tn, err := NewNamed("rl-q", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tn.Tune(t.Context(), simLoadedTransfer(t, 11)); err != nil {
		t.Fatal(err)
	}

	events := observer.Recorder().Events()
	if len(events) == 0 {
		t.Fatal("no events recorded")
	}
	checkEventOrdering(t, events)
	sawAction := false
	for _, ev := range events {
		if ev.Type == obs.EventRLAction {
			sawAction = true
			break
		}
	}
	if !sawAction {
		t.Fatal("trace carries no RLAction events")
	}

	var got []byte
	for _, ev := range events {
		line, err := json.Marshal(ev)
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, line...)
		got = append(got, '\n')
	}

	if path := os.Getenv("DSTUNE_EVENT_TRACE"); path != "" {
		if err := os.WriteFile(path+"."+label+".jsonl", got, 0o644); err != nil {
			t.Fatal(err)
		}
	}

	path := filepath.Join("testdata", "golden", "events_"+label+".jsonl")
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("golden fixture missing (run with -update-golden): %v", err)
	}
	if string(got) != string(want) {
		gotLines, wantLines := splitLines(got), splitLines(want)
		for i := range wantLines {
			if i >= len(gotLines) || gotLines[i] != wantLines[i] {
				t.Fatalf("event trace diverged at event %d:\n got %s\nwant %s",
					i, lineOrNil(gotLines, i), lineOrNil(wantLines, i))
			}
		}
		t.Fatalf("event trace diverged: got %d events, golden has %d", len(gotLines), len(wantLines))
	}
}

// TestRLContextBuckets pins the context quantizer's edges.
func TestRLContextBuckets(t *testing.T) {
	cases := []struct {
		fit   float64
		lossy bool
		want  int
	}{
		{0, false, 0},
		{-1, false, 0},
		{1, false, 1},        // below the anchor clamps into bucket 1
		{1 << 20, false, 1},  // the anchor itself
		{1 << 21, false, 2},  // one doubling up
		{1e18, false, rlLoadBuckets - 1},
		{0, true, rlLoadBuckets},
		{1 << 21, true, rlLoadBuckets + 2},
	}
	for _, tc := range cases {
		if got := rlContext(tc.fit, tc.lossy); got != tc.want {
			t.Errorf("rlContext(%g, %v) = %d, want %d", tc.fit, tc.lossy, got, tc.want)
		}
	}
}

// TestRLBanditGrid pins the arm grid: geometric ladders spanning the
// box, endpoints included, off-ladder start appended.
func TestRLBanditGrid(t *testing.T) {
	cfg := simCfg() // box [1,32]
	s := NewRLBandit(cfg)
	wantArms := 6 // 1,2,4,8,16,32
	if len(s.arms) != wantArms {
		t.Fatalf("grid has %d arms %v, want %d", len(s.arms), s.arms, wantArms)
	}
	cfg.Start = []int{21} // off the ladder
	s = NewRLBandit(cfg)
	if len(s.arms) != wantArms+1 {
		t.Fatalf("off-ladder start: grid has %d arms %v, want %d", len(s.arms), s.arms, wantArms+1)
	}
	if x, _ := s.Propose(); x[0] != 21 {
		t.Fatalf("first proposal %v, want the configured start 21", x)
	}
}

// FuzzRLRestore feeds arbitrary bytes through both learned strategies'
// Restore (bare and wrapped): hostile state — NaN or infinite
// Q-values, out-of-grid actions, truncated or mis-shaped tables,
// malformed state keys — must error or clamp, never panic, and any
// accepted state must propose an in-box vector and snapshot cleanly
// into a second strategy.
func FuzzRLRestore(f *testing.F) {
	// Real snapshots of both strategies after a few observed epochs.
	for _, name := range []string{"rl-bandit", "rl-q"} {
		s, err := NewStrategy(name, simCfg())
		if err != nil {
			f.Fatal(err)
		}
		rep := xfer.Report{Start: 0, End: 5, Bytes: 5e8, Throughput: 2.5e8, BestCase: 2.6e8}
		for i := 0; i < 4; i++ {
			s.Propose()
			s.Observe(rep)
			rep.Start, rep.End = rep.End, rep.End+5
			rep.Throughput *= 1.3
		}
		raw, err := s.Snapshot()
		if err != nil {
			f.Fatal(err)
		}
		f.Add([]byte(raw))
		f.Add([]byte(raw[:len(raw)/2]))
	}
	// Hand-built hostile states.
	f.Add([]byte(`{}`))
	f.Add([]byte(`null`))
	f.Add([]byte(`{"step":-1}`))
	f.Add([]byte(`{"ctx":-3}`))
	f.Add([]byte(`{"ctx":9999}`))
	f.Add([]byte(`{"pending":64,"q":[[0]],"n":[[0]]}`))
	f.Add([]byte(`{"q":[[1e999]]}`))
	f.Add([]byte(`{"x":[1,2,3]}`))
	f.Add([]byte(`{"f_max":-1}`))
	f.Add([]byte(`{"table":[{"key":"bogus","q":[],"n":[]}]}`))
	f.Add([]byte(`{"table":[{"key":"0|2","q":[1,2],"n":[1,2]}]}`))
	f.Add([]byte(`{"table":[{"key":"0|2","q":[0,0,0,0,0],"n":[0,0,0,0,0]},{"key":"0|2","q":[0,0,0,0,0],"n":[0,0,0,0,0]}]}`))
	f.Add([]byte(`{"table":[{"key":"1|4","q":[0.5,0,0,0,0],"n":[1,0,0,0,-7]}]}`))
	f.Add([]byte(`{"rng":"AAAA"}`))

	names := []string{"rl-bandit", "rl-q", "warm:rl-bandit", "kernel-aware:rl-q"}
	f.Fuzz(func(t *testing.T, data []byte) {
		for _, name := range names {
			cfg := simCfg()
			s, err := NewStrategy(name, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if err := s.Restore(data); err != nil {
				continue // rejected input is fine; panics are not
			}
			x, done := s.Propose()
			if done {
				t.Fatalf("%s: restored state proposes done", name)
			}
			if len(x) != cfg.Box.Dim() || !cfg.Box.Contains(x) {
				t.Fatalf("%s: restored state proposes %v outside box", name, x)
			}
			raw, err := s.Snapshot()
			if err != nil {
				t.Fatalf("%s: snapshot after accepted restore: %v", name, err)
			}
			clone, err := NewStrategy(name, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if err := clone.Restore(raw); err != nil {
				t.Fatalf("%s: snapshot of accepted state rejected: %v", name, err)
			}
		}
	})
}

// BenchmarkRLPropose holds the learned strategies' hot path to a
// bounded allocation budget: one Propose plus one Observe per epoch,
// including the Q-update and the next action choice. CI gates
// allocs/op against BENCH_baseline.json via benchjson.
func BenchmarkRLPropose(b *testing.B) {
	for _, name := range []string{"rl-bandit", "rl-q"} {
		b.Run(name, func(b *testing.B) {
			s, err := NewStrategy(name, simCfg())
			if err != nil {
				b.Fatal(err)
			}
			rep := xfer.Report{Start: 0, End: 5, Bytes: 5e8, Throughput: 2.5e8, BestCase: 2.6e8}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				x, _ := s.Propose()
				rep.Start = float64(i) * 5
				rep.End = rep.Start + 5
				rep.Throughput = 1e8 + float64(x[0])*5e6
				s.Observe(rep)
			}
		})
	}
}
