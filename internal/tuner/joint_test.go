package tuner

import (
	"context"
	"sync"
	"testing"

	"dstune/internal/directsearch"
	"dstune/internal/xfer"
)

// sharedFake models two transfers competing for one capacity pool: a
// transfer's throughput is its demand share of the pool, minus an
// overhead quadratic in the total stream count — so the joint optimum
// differs from each transfer greedily maximizing its own share.
type sharedFake struct {
	mu       sync.Mutex
	posted   *sync.Cond
	capacity float64
	quad     float64
	demand   [2]float64 // per-transfer current demand (streams)
	arrived  int        // members that posted their demand this round
	departed int        // members that read the round's total
}

// member returns the transfer i view of the pool.
func (s *sharedFake) member(i int) *sharedMember {
	return &sharedMember{pool: s, idx: i, remaining: 1e18}
}

type sharedMember struct {
	pool      *sharedFake
	idx       int
	remaining float64
	now       float64
	stopped   bool
}

func (m *sharedMember) Run(ctx context.Context, p xfer.Params, epoch float64) (xfer.Report, error) {
	if m.stopped {
		return xfer.Report{}, xfer.ErrStopped
	}
	s := m.pool
	s.mu.Lock()
	if s.posted == nil {
		s.posted = sync.NewCond(&s.mu)
	}
	s.demand[m.idx] = float64(p.Streams())
	// Round barrier: the fleet runs both members' epochs concurrently,
	// so wait until both demands for this round are posted before
	// reading the total — otherwise the measured throughput depends on
	// goroutine scheduling order.
	s.arrived++
	if s.arrived == 2 {
		s.posted.Broadcast()
	}
	for s.arrived < 2 {
		s.posted.Wait()
	}
	total := s.demand[0] + s.demand[1]
	eff := 1 / (1 + s.quad*total*total)
	tput := 0.0
	if total > 0 {
		tput = s.capacity * eff * s.demand[m.idx] / total
	}
	s.departed++
	if s.departed == 2 {
		s.arrived, s.departed = 0, 0
	}
	s.mu.Unlock()
	start := m.now
	m.now += epoch
	bytes := tput * epoch
	m.remaining -= bytes
	return xfer.Report{
		Params: p, Start: start, End: m.now,
		Bytes: bytes, Throughput: tput, BestCase: tput,
	}, nil
}

func (m *sharedMember) Remaining() float64 { return m.remaining }
func (m *sharedMember) Now() float64       { return m.now }
func (m *sharedMember) Stop()              { m.stopped = true }

func jointCfg(budget float64) JointConfig {
	return JointConfig{
		Epoch:  10,
		Box:    directsearch.MustBox([]int{1, 1}, []int{64, 64}),
		Start:  []int{2, 2},
		Dims:   []int{1, 1},
		Maps:   []ParamMap{MapNC(1), MapNC(1)},
		Budget: budget,
		Seed:   1,
	}
}

func TestJointConfigValidation(t *testing.T) {
	good := jointCfg(100)
	if err := good.Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	bad := good
	bad.Dims = nil
	if bad.Validate() == nil {
		t.Fatal("empty dims accepted")
	}
	bad = good
	bad.Maps = []ParamMap{MapNC(1)}
	if bad.Validate() == nil {
		t.Fatal("map count mismatch accepted")
	}
	bad = good
	bad.Weights = []float64{1}
	if bad.Validate() == nil {
		t.Fatal("weight count mismatch accepted")
	}
	bad = good
	bad.Dims = []int{1, 0}
	if bad.Validate() == nil {
		t.Fatal("zero dim accepted")
	}
	bad = good
	bad.Maps = []ParamMap{nil, MapNC(1)}
	if bad.Validate() == nil {
		t.Fatal("nil map accepted")
	}
	bad = good
	bad.Start = []int{1}
	if bad.Validate() == nil {
		t.Fatal("start width mismatch accepted")
	}
}

func TestJointTuneWrongTransferCount(t *testing.T) {
	pool := &sharedFake{capacity: 1e9, quad: 1e-4}
	_, err := NewJointCS(jointCfg(100)).Tune(context.Background(), []xfer.Transferer{pool.member(0)})
	if err == nil {
		t.Fatal("transfer count mismatch accepted")
	}
}

func TestJointFindsSharedOptimum(t *testing.T) {
	// Aggregate = capacity / (1 + quad*total^2) is maximized by the
	// SMALLEST total stream count; independent greedy tuners would
	// race upward. Joint tuning must keep the total low.
	for _, mk := range []func(JointConfig) *Joint{NewJointCS, NewJointNM} {
		pool := &sharedFake{capacity: 1e9, quad: 1.0 / 256} // optimum: total -> minimal
		j := mk(jointCfg(2400))
		traces, err := j.Tune(context.Background(), []xfer.Transferer{pool.member(0), pool.member(1)})
		if err != nil {
			t.Fatalf("%s: %v", j.Name(), err)
		}
		if len(traces) != 2 {
			t.Fatalf("%s: %d traces", j.Name(), len(traces))
		}
		// Greedy independent tuners would race toward the 64+64
		// bound; the joint objective keeps the total an order of
		// magnitude lower (integer NM/compass stop within a few
		// steps of the true minimum once gains drop under ε).
		total := traces[0].FinalX()[0] + traces[1].FinalX()[0]
		if total > 16 {
			t.Errorf("%s: final total streams %d, want small (joint optimum)", j.Name(), total)
		}
	}
}

func TestJointInteriorOptimum(t *testing.T) {
	// With a milder penalty the joint optimum is interior: aggregate
	// n/(1+q*n^2) peaks at n = 1/sqrt(q) = 16.
	pool := &sharedFake{capacity: 1e9, quad: 1.0 / 256}
	// Rescale: make member throughput proportional to demand to give
	// an interior peak for the total.
	pool.capacity = 1e9
	cfg := jointCfg(2400)
	j := NewJointCS(cfg)
	traces, err := j.Tune(context.Background(), []xfer.Transferer{pool.member(0), pool.member(1)})
	if err != nil {
		t.Fatal(err)
	}
	for i, tr := range traces {
		if tr.MeanThroughput() <= 0 {
			t.Fatalf("transfer %d made no progress", i)
		}
		if len(tr.Results) == 0 {
			t.Fatalf("transfer %d has no epochs", i)
		}
	}
}

func TestJointBudget(t *testing.T) {
	pool := &sharedFake{capacity: 1e9, quad: 1e-6}
	traces, err := NewJointNM(jointCfg(200)).Tune(context.Background(), []xfer.Transferer{pool.member(0), pool.member(1)})
	if err != nil {
		t.Fatal(err)
	}
	// 200 s budget at 10 s epochs: exactly 20 joint epochs per
	// transfer.
	for i, tr := range traces {
		if len(tr.Results) != 20 {
			t.Fatalf("transfer %d ran %d epochs, want 20", i, len(tr.Results))
		}
	}
}

func TestJointStopsTransfers(t *testing.T) {
	pool := &sharedFake{capacity: 1e9, quad: 1e-6}
	m0, m1 := pool.member(0), pool.member(1)
	if _, err := NewJointCS(jointCfg(100)).Tune(context.Background(), []xfer.Transferer{m0, m1}); err != nil {
		t.Fatal(err)
	}
	if !m0.stopped || !m1.stopped {
		t.Fatal("joint tuner did not stop its transfers")
	}
}

func TestJointWeights(t *testing.T) {
	// All weight on transfer 0: the aggregate ignores transfer 1, so
	// the search maximizes member 0's share — which grows with its
	// own demand. Expect x0 to climb well above x1's influence.
	cfg := jointCfg(2400)
	cfg.Weights = []float64{1, 0}
	pool := &sharedFake{capacity: 1e9, quad: 1e-7} // negligible penalty
	traces, err := NewJointCS(cfg).Tune(context.Background(), []xfer.Transferer{pool.member(0), pool.member(1)})
	if err != nil {
		t.Fatal(err)
	}
	x0 := traces[0].FinalX()[0]
	x1 := traces[1].FinalX()[0]
	// x0 climbs until its share gains fall under the 5% tolerance;
	// x1 has no effect on the aggregate and stays put.
	if x0 < 16 || x0 < 3*x1 {
		t.Fatalf("weighted joint tuner: x0=%d x1=%d; expected x0 to dominate", x0, x1)
	}
}

func TestMapNCNPPP(t *testing.T) {
	p := MapNCNPPP()([]int{3, 4, 5})
	if p != (xfer.Params{NC: 3, NP: 4, PP: 5}) {
		t.Fatalf("MapNCNPPP = %v", p)
	}
}

func TestObserveBestCase(t *testing.T) {
	cfg := Config{ObserveBestCase: true}
	rep := xfer.Report{Throughput: 10, BestCase: 20}
	if fitnessOf(cfg, rep) != 20 {
		t.Fatal("ObserveBestCase not honoured")
	}
	cfg.ObserveBestCase = false
	if fitnessOf(cfg, rep) != 10 {
		t.Fatal("default observation wrong")
	}
}
