package tuner

import (
	"encoding/json"
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"

	"dstune/internal/directsearch"
	"dstune/internal/ivec"
	"dstune/internal/sim"
	"dstune/internal/xfer"
)

// The learned strategies share one context model: the load level the
// transfer is experiencing, quantized from the last epoch's observed
// fitness into factor-2 buckets, with the kernel retransmit signal —
// when the data plane samples TCP_INFO — splitting each bucket into a
// clean and a lossy variant. Context is the whole point: a direct
// search re-discovers the optimum from scratch after every load
// shift, while a learned strategy that has seen a load level before
// jumps straight back to the vector that won there.
const (
	// rlLoadBuckets is the number of factor-2 throughput buckets.
	// Bucket 0 means "no signal yet" (fresh strategy, or a transient
	// zero-throughput epoch); buckets 1..rlLoadBuckets-1 ladder from
	// 2^rlBaseLog2 bytes/s upward.
	rlLoadBuckets = 16
	// rlNumContexts doubles the bucket space with the retransmit
	// flag.
	rlNumContexts = 2 * rlLoadBuckets
	// rlBaseLog2 anchors bucket 1 at 2^20 bytes/s (1 MiB/s); WAN
	// transfers of interest live between there and 2^34.
	rlBaseLog2 = 20

	// rlBanditEps0 is the bandit's initial exploration probability,
	// decayed by per-context visits with half-life rlBanditEpsHalf.
	rlBanditEps0    = 0.08
	rlBanditEpsHalf = 4.0
	// rlQEps0 is rl-q's initial exploration probability; its moves
	// are local, so it explores harder than the bandit and decays by
	// per-state visits with half-life rlQEpsHalf.
	rlQEps0    = 0.25
	rlQEpsHalf = 4.0
	// rlBanditAlpha / rlQAlpha floor the learning rate, turning the
	// sample mean into an exponential recency weight after a few
	// visits so a drifting regime is tracked, not averaged away.
	rlBanditAlpha = 0.3
	rlQAlpha      = 0.5
	// rlQGamma is rl-q's discount: modest, because the immediate
	// reward (the arrived vector's throughput) already carries most
	// of the value in this domain.
	rlQGamma = 0.3
	// rlQOptimistic is the score of an unvisited (state, action)
	// cell: an upper bound on the normalized immediate reward, so a
	// fresh state tries its actions systematically before settling.
	rlQOptimistic = 1.0
)

// rlContext quantizes an epoch fitness into a context bucket. Zero or
// non-finite fitness maps to bucket 0 ("no signal"); lossy shifts the
// bucket into the retransmit half of the context space.
func rlContext(fit float64, lossy bool) int {
	b := 0
	if fit > 0 && !math.IsInf(fit, 0) && !math.IsNaN(fit) {
		l := int(math.Floor(math.Log2(fit))) - rlBaseLog2
		if l < 0 {
			l = 0
		}
		if l > rlLoadBuckets-2 {
			l = rlLoadBuckets - 2
		}
		b = l + 1
	}
	if lossy {
		b += rlLoadBuckets
	}
	return b
}

// rlLossy reports whether the epoch's kernel sample saw retransmits —
// the optional congestion signal. Reports from the Sim fabric carry no
// kernel sample, so the flag simply stays false there.
func rlLossy(rep xfer.Report) bool {
	return rep.Kernel != nil && rep.Kernel.RetransDelta > 0
}

// rlFinite reports whether f is an ordinary float (no NaN, no ±Inf) —
// the invariant every restored value estimate must satisfy.
func rlFinite(f float64) bool {
	return !math.IsNaN(f) && !math.IsInf(f, 0)
}

// --- rl-bandit -------------------------------------------------------

// rlArms builds the bandit's action grid: per dimension a geometric
// ladder of doublings spanning the box (both endpoints always
// included), crossed over dimensions, plus the clamped start vector as
// an extra arm when it falls off the ladder. The grid is a pure
// function of the configuration, so a resume rebuilds the identical
// arm indexing.
func rlArms(box directsearch.Box, start []int) [][]int {
	rails := make([][]int, box.Dim())
	for d := 0; d < box.Dim(); d++ {
		lo, hi := box.Lo(d), box.Hi(d)
		rail := []int{lo}
		for v := lo * 2; v > lo && v < hi; v *= 2 {
			rail = append(rail, v)
		}
		if hi > lo {
			rail = append(rail, hi)
		}
		rails[d] = rail
	}
	arms := [][]int{nil}
	for _, rail := range rails {
		next := make([][]int, 0, len(arms)*len(rail))
		for _, a := range arms {
			for _, v := range rail {
				na := make([]int, len(a), len(a)+1)
				copy(na, a)
				next = append(next, append(na, v))
			}
		}
		arms = next
	}
	if rlArmIndex(arms, start) < 0 {
		arms = append(arms, ivec.Clone(start))
	}
	return arms
}

// rlArmIndex returns the index of x in arms, or -1.
func rlArmIndex(arms [][]int, x []int) int {
	for i, a := range arms {
		if ivec.Equal(a, x) {
			return i
		}
	}
	return -1
}

// RLBanditState is the complete serializable state of RLBanditStrategy:
// the value tables, visit counts, the arm in flight, and the RNG stream
// position. Everything the policy learned is in here, so a resumed run
// keeps its experience.
type RLBanditState struct {
	// Step counts committed actions (equals epochs observed).
	Step int `json:"step"`
	// Ctx is the context bucket Pending was chosen in.
	Ctx int `json:"ctx"`
	// Pending is the arm index currently in flight.
	Pending int `json:"pending"`
	// Q is the per-context per-arm reward estimate in bytes/second.
	Q [][]float64 `json:"q"`
	// N is the per-context per-arm visit count.
	N [][]int `json:"n"`
	// G is the context-free per-arm reward estimate — the prior an
	// unvisited (context, arm) cell falls back to, which is what lets
	// a freshly entered context start from the globally best arm
	// instead of from scratch.
	G []float64 `json:"g"`
	// GN is the context-free per-arm visit count.
	GN []int `json:"gn"`
	// RNG is the exploration stream position (binary, JSON-encoded as
	// base64).
	RNG []byte `json:"rng,omitempty"`
}

// RLBanditStrategy is a contextual ε-greedy bandit over a geometric
// (nc, np[, pp]) arm grid. It opens with one systematic sweep of the
// grid (every arm sampled once, starting from the configured start
// vector), then plays ε-greedy per load-context bucket: greedy picks
// the best arm known for the current context, falling back to the
// context-free estimate for arms the context hasn't tried. There is no
// ε-monitor — a load shift changes the context bucket, and the policy
// switches arms on the next epoch without re-searching.
type RLBanditStrategy struct {
	cfg   Config
	arms  [][]int
	start int // index of the clamped start arm; base of the opening sweep
	rng   *sim.RNG
	st    RLBanditState
}

// NewRLBandit returns an rl-bandit strategy over cfg's box. The
// clamped cfg.Start is the first arm played — under the warm: wrapper
// the history-predicted vector lands there, seeding the value table
// with the prediction's reward first.
func NewRLBandit(cfg Config) *RLBanditStrategy {
	cfg = cfg.withDefaults()
	start := cfg.Box.ClampInt(cfg.Start)
	arms := rlArms(cfg.Box, start)
	s := &RLBanditStrategy{
		cfg:   cfg,
		arms:  arms,
		start: rlArmIndex(arms, start),
		rng:   sim.NewRNG(cfg.Seed),
	}
	s.st = RLBanditState{
		Pending: s.start,
		Q:       rlZeroTable(len(arms)),
		N:       rlZeroCounts(len(arms)),
		G:       make([]float64, len(arms)),
		GN:      make([]int, len(arms)),
	}
	cfg.Obs.RLAction(0, 0, s.arms[s.start], 0, rlBanditEps0, 0, true)
	return s
}

// rlZeroTable allocates the dense [context][arm] value table.
func rlZeroTable(arms int) [][]float64 {
	q := make([][]float64, rlNumContexts)
	for c := range q {
		q[c] = make([]float64, arms)
	}
	return q
}

// rlZeroCounts allocates the dense [context][arm] visit table.
func rlZeroCounts(arms int) [][]int {
	n := make([][]int, rlNumContexts)
	for c := range n {
		n[c] = make([]int, arms)
	}
	return n
}

// Name implements Strategy.
func (s *RLBanditStrategy) Name() string { return "rl-bandit" }

// Propose implements Strategy.
func (s *RLBanditStrategy) Propose() ([]int, bool) {
	return ivec.Clone(s.arms[s.st.Pending]), false
}

// Observe implements Strategy: credit the arm in flight with the
// epoch's fitness (in the context it was chosen for, and in the
// context-free prior), recompute the context from the fresh reading,
// and commit the next arm.
func (s *RLBanditStrategy) Observe(rep xfer.Report) {
	f := fitnessOf(s.cfg, rep)
	a := s.st.Pending
	rlCredit(&s.st.Q[s.st.Ctx][a], &s.st.N[s.st.Ctx][a], f, rlBanditAlpha)
	rlCredit(&s.st.G[a], &s.st.GN[a], f, rlBanditAlpha)
	s.st.Step++
	ctx := rlContext(f, rlLossy(rep))
	next, eps, q, explore := s.choose(ctx)
	s.st.Ctx = ctx
	s.st.Pending = next
	s.cfg.Obs.RLAction(rep.End, s.st.Step, s.arms[next], ctx, eps, q, explore)
}

// rlCredit folds reward r into the estimate with a floored learning
// rate: a plain mean for the first visits, an exponential recency
// weight after.
func rlCredit(q *float64, n *int, r, floor float64) {
	*n++
	a := 1.0 / float64(*n)
	if a < floor {
		a = floor
	}
	*q += a * (r - *q)
}

// eps is the context's current exploration probability.
func (s *RLBanditStrategy) eps(ctx int) float64 {
	visits := 0
	for _, n := range s.st.N[ctx] {
		visits += n
	}
	return rlBanditEps0 / (1 + float64(visits)/rlBanditEpsHalf)
}

// score is the greedy value of an arm in a context: the contextual
// estimate when the context has tried the arm, the context-free prior
// otherwise.
func (s *RLBanditStrategy) score(ctx, arm int) float64 {
	if s.st.N[ctx][arm] > 0 {
		return s.st.Q[ctx][arm]
	}
	return s.st.G[arm]
}

// choose commits the next arm for context ctx: the opening sweep plays
// every arm once in ring order from the start arm; after that it is
// ε-greedy with the decayed context ε.
func (s *RLBanditStrategy) choose(ctx int) (arm int, eps, q float64, explore bool) {
	eps = s.eps(ctx)
	if s.st.Step < len(s.arms) {
		arm = (s.start + s.st.Step) % len(s.arms)
		return arm, eps, s.score(ctx, arm), true
	}
	if s.rng.Bernoulli(eps) {
		arm = s.rng.IntN(len(s.arms))
		return arm, eps, s.score(ctx, arm), true
	}
	best, bq := 0, math.Inf(-1)
	for a := range s.arms {
		if sc := s.score(ctx, a); sc > bq {
			best, bq = a, sc
		}
	}
	return best, eps, bq, false
}

// Snapshot implements Strategy.
func (s *RLBanditStrategy) Snapshot() (json.RawMessage, error) {
	st := s.st
	rng, err := s.rng.MarshalBinary()
	if err != nil {
		return nil, err
	}
	st.RNG = rng
	return json.Marshal(st)
}

// Restore implements Strategy. Hostile state — wrong table shapes,
// non-finite value estimates, negative visit counts, an out-of-grid
// pending arm — is rejected with an error, never a panic; an entirely
// empty state restores as a fresh strategy.
func (s *RLBanditStrategy) Restore(raw json.RawMessage) error {
	var st RLBanditState
	if err := json.Unmarshal(raw, &st); err != nil {
		return fmt.Errorf("tuner: rl-bandit state: %w", err)
	}
	nArms := len(s.arms)
	if st.Step < 0 {
		return fmt.Errorf("tuner: rl-bandit state has negative step %d", st.Step)
	}
	if st.Pending < 0 || st.Pending >= nArms {
		return fmt.Errorf("tuner: rl-bandit state pending arm %d outside grid of %d", st.Pending, nArms)
	}
	if st.Ctx < 0 || st.Ctx >= rlNumContexts {
		return fmt.Errorf("tuner: rl-bandit state context %d outside [0,%d)", st.Ctx, rlNumContexts)
	}
	if st.Q == nil && st.N == nil && st.G == nil && st.GN == nil {
		st.Q = rlZeroTable(nArms)
		st.N = rlZeroCounts(nArms)
		st.G = make([]float64, nArms)
		st.GN = make([]int, nArms)
	} else {
		if len(st.Q) != rlNumContexts || len(st.N) != rlNumContexts {
			return fmt.Errorf("tuner: rl-bandit state has %d/%d contexts, want %d", len(st.Q), len(st.N), rlNumContexts)
		}
		for c := range st.Q {
			if len(st.Q[c]) != nArms || len(st.N[c]) != nArms {
				return fmt.Errorf("tuner: rl-bandit state context %d has %d/%d arms, grid has %d", c, len(st.Q[c]), len(st.N[c]), nArms)
			}
			for a := range st.Q[c] {
				if !rlFinite(st.Q[c][a]) {
					return fmt.Errorf("tuner: rl-bandit state q[%d][%d] is not finite", c, a)
				}
				if st.N[c][a] < 0 {
					return fmt.Errorf("tuner: rl-bandit state n[%d][%d] is negative", c, a)
				}
			}
		}
		if len(st.G) != nArms || len(st.GN) != nArms {
			return fmt.Errorf("tuner: rl-bandit state prior has %d/%d arms, grid has %d", len(st.G), len(st.GN), nArms)
		}
		for a := range st.G {
			if !rlFinite(st.G[a]) {
				return fmt.Errorf("tuner: rl-bandit state g[%d] is not finite", a)
			}
			if st.GN[a] < 0 {
				return fmt.Errorf("tuner: rl-bandit state gn[%d] is negative", a)
			}
		}
	}
	rng := sim.NewRNG(s.cfg.Seed)
	if len(st.RNG) > 0 {
		if err := rng.UnmarshalBinary(st.RNG); err != nil {
			return fmt.Errorf("tuner: rl-bandit state rng: %w", err)
		}
	}
	s.st = st
	s.rng = rng
	return nil
}

// --- rl-q ------------------------------------------------------------

// RLQEntry is one (context, vector) state's row in the sparse Q-table.
type RLQEntry struct {
	// Key identifies the state: "<context>|<x0>,<x1>,...".
	Key string `json:"key"`
	// Q holds the per-action value estimates (normalized reward
	// units).
	Q []float64 `json:"q"`
	// N holds the per-action visit counts.
	N []int `json:"n"`
}

// RLQState is the complete serializable state of RLQStrategy.
type RLQState struct {
	// Step counts committed actions (equals epochs observed).
	Step int `json:"step"`
	// Ctx is the context bucket of the state the pending action
	// departs from.
	Ctx int `json:"ctx"`
	// X is the vector component of that state.
	X []int `json:"x"`
	// Pending is the index of the action in flight.
	Pending int `json:"pending"`
	// FMax is the running fitness maximum, the reward normalizer.
	FMax float64 `json:"f_max"`
	// Table is the sparse Q-table, sorted by Key so snapshots are
	// canonical.
	Table []RLQEntry `json:"table"`
	// RNG is the exploration stream position (binary, JSON-encoded as
	// base64).
	RNG []byte `json:"rng,omitempty"`
}

// RLQStrategy is tabular Q-learning over state = (load-context bucket,
// current vector) and action = compass move ∪ stay: per dimension a
// coarse step of Config.Lambda and a fine step of 1, each in both
// directions, all clamped to the box. Rewards are throughput
// normalized by the running maximum; unvisited actions score an
// optimistic constant so every newly entered state tries its moves
// systematically, and ε decays with per-state visits. Like rl-bandit
// it carries no ε-monitor: a load shift re-keys the state and the
// policy re-plans from whatever that state already learned.
type RLQStrategy struct {
	cfg    Config
	coarse int
	rng    *sim.RNG
	st     RLQState
	px     []int // applyMove(st.X, st.Pending), cached
}

// NewRLQ returns an rl-q strategy over cfg's box, starting at the
// clamped cfg.Start — under the warm: wrapper the history-predicted
// vector becomes the initial state, so its neighborhood is valued
// first.
func NewRLQ(cfg Config) *RLQStrategy {
	cfg = cfg.withDefaults()
	coarse := 1
	if !math.IsNaN(cfg.Lambda) && int(cfg.Lambda) > 1 {
		coarse = int(cfg.Lambda)
	}
	s := &RLQStrategy{cfg: cfg, coarse: coarse, rng: sim.NewRNG(cfg.Seed)}
	s.st = RLQState{X: cfg.Box.ClampInt(cfg.Start), Pending: 0}
	s.px = s.applyMove(s.st.X, 0)
	cfg.Obs.RLAction(0, 0, s.px, 0, rlQEps0, rlQOptimistic, true)
	return s
}

// numActions is the size of the move set: stay plus four moves per
// dimension.
func (s *RLQStrategy) numActions() int { return 1 + 4*s.cfg.Box.Dim() }

// applyMove returns the clamped result of applying action a to x.
// Action 0 is stay; action 1+4d+k moves dimension d by +coarse,
// -coarse, +1, -1 for k = 0..3.
func (s *RLQStrategy) applyMove(x []int, a int) []int {
	nx := ivec.Clone(x)
	if a > 0 {
		d := (a - 1) / 4
		switch (a - 1) % 4 {
		case 0:
			nx[d] += s.coarse
		case 1:
			nx[d] -= s.coarse
		case 2:
			nx[d]++
		case 3:
			nx[d]--
		}
	}
	return s.cfg.Box.ClampInt(nx)
}

// rlQKey builds the state key for a context bucket and vector.
func rlQKey(ctx int, x []int) string {
	var b strings.Builder
	b.WriteString(strconv.Itoa(ctx))
	b.WriteByte('|')
	for i, v := range x {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(strconv.Itoa(v))
	}
	return b.String()
}

// find returns the table index holding key, or -1.
func (s *RLQStrategy) find(key string) int {
	i := sort.Search(len(s.st.Table), func(i int) bool { return s.st.Table[i].Key >= key })
	if i < len(s.st.Table) && s.st.Table[i].Key == key {
		return i
	}
	return -1
}

// entry returns the table row for key, inserting a zero row in sorted
// position on first touch.
func (s *RLQStrategy) entry(key string) *RLQEntry {
	i := sort.Search(len(s.st.Table), func(i int) bool { return s.st.Table[i].Key >= key })
	if i < len(s.st.Table) && s.st.Table[i].Key == key {
		return &s.st.Table[i]
	}
	s.st.Table = append(s.st.Table, RLQEntry{})
	copy(s.st.Table[i+1:], s.st.Table[i:])
	s.st.Table[i] = RLQEntry{Key: key, Q: make([]float64, s.numActions()), N: make([]int, s.numActions())}
	return &s.st.Table[i]
}

// scoreAt is the greedy value of action a in the table row at index i
// (i < 0 means the state is unvisited): optimistic for unvisited
// actions.
func (s *RLQStrategy) scoreAt(i, a int) float64 {
	if i < 0 || s.st.Table[i].N[a] == 0 {
		return rlQOptimistic
	}
	return s.st.Table[i].Q[a]
}

// maxScore is the greedy value of a state: the max action score.
func (s *RLQStrategy) maxScore(key string) float64 {
	i := s.find(key)
	best := math.Inf(-1)
	for a := 0; a < s.numActions(); a++ {
		if sc := s.scoreAt(i, a); sc > best {
			best = sc
		}
	}
	return best
}

// Name implements Strategy.
func (s *RLQStrategy) Name() string { return "rl-q" }

// Propose implements Strategy.
func (s *RLQStrategy) Propose() ([]int, bool) { return ivec.Clone(s.px), false }

// Observe implements Strategy: Q-update the departed state's pending
// action toward reward + γ·max over the arrived state, move the state
// forward, and commit the next action.
func (s *RLQStrategy) Observe(rep xfer.Report) {
	f := fitnessOf(s.cfg, rep)
	if f > s.st.FMax {
		s.st.FMax = f
	}
	r := 0.0
	if s.st.FMax > 0 {
		r = f / s.st.FMax
	}
	arrived := s.px
	ctx2 := rlContext(f, rlLossy(rep))
	target := r + rlQGamma*s.maxScore(rlQKey(ctx2, arrived))
	e := s.entry(rlQKey(s.st.Ctx, s.st.X))
	rlCredit(&e.Q[s.st.Pending], &e.N[s.st.Pending], target, rlQAlpha)

	s.st.Step++
	s.st.Ctx = ctx2
	s.st.X = arrived
	next, eps, q, explore := s.choose(ctx2, arrived)
	s.st.Pending = next
	s.px = s.applyMove(arrived, next)
	s.cfg.Obs.RLAction(rep.End, s.st.Step, s.px, ctx2, eps, q, explore)
}

// choose commits the next action for the state (ctx, x): ε-greedy with
// per-state visit decay, unvisited actions optimistic, greedy ties
// broken by lowest action index (stay, then coarse moves, then fine).
func (s *RLQStrategy) choose(ctx int, x []int) (action int, eps, q float64, explore bool) {
	i := s.find(rlQKey(ctx, x))
	visits := 0
	if i >= 0 {
		for _, n := range s.st.Table[i].N {
			visits += n
		}
	}
	eps = rlQEps0 / (1 + float64(visits)/rlQEpsHalf)
	if s.rng.Bernoulli(eps) {
		action = s.rng.IntN(s.numActions())
		return action, eps, s.scoreAt(i, action), true
	}
	best, bq := 0, math.Inf(-1)
	for a := 0; a < s.numActions(); a++ {
		if sc := s.scoreAt(i, a); sc > bq {
			best, bq = a, sc
		}
	}
	return best, eps, bq, false
}

// Snapshot implements Strategy.
func (s *RLQStrategy) Snapshot() (json.RawMessage, error) {
	st := s.st
	rng, err := s.rng.MarshalBinary()
	if err != nil {
		return nil, err
	}
	st.RNG = rng
	return json.Marshal(st)
}

// Restore implements Strategy. Hostile state — malformed keys, rows of
// the wrong width, non-finite value estimates, an out-of-range pending
// action — is rejected with an error, never a panic; vectors that
// drifted outside the box are clamped back in.
func (s *RLQStrategy) Restore(raw json.RawMessage) error {
	var st RLQState
	if err := json.Unmarshal(raw, &st); err != nil {
		return fmt.Errorf("tuner: rl-q state: %w", err)
	}
	dim := s.cfg.Box.Dim()
	if st.Step < 0 {
		return fmt.Errorf("tuner: rl-q state has negative step %d", st.Step)
	}
	if st.Pending < 0 || st.Pending >= s.numActions() {
		return fmt.Errorf("tuner: rl-q state pending action %d outside move set of %d", st.Pending, s.numActions())
	}
	if st.Ctx < 0 || st.Ctx >= rlNumContexts {
		return fmt.Errorf("tuner: rl-q state context %d outside [0,%d)", st.Ctx, rlNumContexts)
	}
	if len(st.X) == 0 {
		st.X = s.cfg.Box.ClampInt(s.cfg.Start)
	} else if len(st.X) != dim {
		return fmt.Errorf("tuner: rl-q state vector has %d dims, box has %d", len(st.X), dim)
	} else {
		st.X = s.cfg.Box.ClampInt(st.X)
	}
	if !rlFinite(st.FMax) || st.FMax < 0 {
		return fmt.Errorf("tuner: rl-q state f_max %v invalid", st.FMax)
	}
	seen := make(map[string]bool, len(st.Table))
	for i := range st.Table {
		e := &st.Table[i]
		ctx, _, err := rlQParseKey(e.Key, dim)
		if err != nil {
			return fmt.Errorf("tuner: rl-q state table[%d]: %w", i, err)
		}
		if ctx < 0 || ctx >= rlNumContexts {
			return fmt.Errorf("tuner: rl-q state table[%d] context %d outside [0,%d)", i, ctx, rlNumContexts)
		}
		if seen[e.Key] {
			return fmt.Errorf("tuner: rl-q state table has duplicate key %q", e.Key)
		}
		seen[e.Key] = true
		if len(e.Q) != s.numActions() || len(e.N) != s.numActions() {
			return fmt.Errorf("tuner: rl-q state table[%d] has %d/%d actions, move set has %d", i, len(e.Q), len(e.N), s.numActions())
		}
		for a := range e.Q {
			if !rlFinite(e.Q[a]) {
				return fmt.Errorf("tuner: rl-q state table[%d] q[%d] is not finite", i, a)
			}
			if e.N[a] < 0 {
				return fmt.Errorf("tuner: rl-q state table[%d] n[%d] is negative", i, a)
			}
		}
	}
	sort.Slice(st.Table, func(i, j int) bool { return st.Table[i].Key < st.Table[j].Key })
	rng := sim.NewRNG(s.cfg.Seed)
	if len(st.RNG) > 0 {
		if err := rng.UnmarshalBinary(st.RNG); err != nil {
			return fmt.Errorf("tuner: rl-q state rng: %w", err)
		}
	}
	s.st = st
	s.rng = rng
	s.px = s.applyMove(s.st.X, s.st.Pending)
	return nil
}

// rlQParseKey parses and validates a state key against the box
// dimensionality, returning the context bucket and vector.
func rlQParseKey(key string, dim int) (int, []int, error) {
	ctxStr, vecStr, ok := strings.Cut(key, "|")
	if !ok {
		return 0, nil, fmt.Errorf("key %q has no context separator", key)
	}
	ctx, err := strconv.Atoi(ctxStr)
	if err != nil {
		return 0, nil, fmt.Errorf("key %q context: %v", key, err)
	}
	parts := strings.Split(vecStr, ",")
	if len(parts) != dim {
		return 0, nil, fmt.Errorf("key %q has %d dims, box has %d", key, len(parts), dim)
	}
	x := make([]int, dim)
	for i, p := range parts {
		v, err := strconv.Atoi(p)
		if err != nil {
			return 0, nil, fmt.Errorf("key %q component %d: %v", key, i, err)
		}
		x[i] = v
	}
	return ctx, x, nil
}
