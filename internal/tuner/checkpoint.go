package tuner

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"

	"dstune/internal/fsx"
	"dstune/internal/xfer"
)

// CheckpointVersion is the checkpoint format version this build
// writes and reads. LoadCheckpoint and Config.Resume reject other
// versions rather than guess at their layout. Version 2 replaced the
// diagnostic Search snapshot with the authoritative Strategy state,
// making resume a direct deserialization instead of a replay.
const CheckpointVersion = 2

// ErrInterrupted is returned by Tune when the run was stopped by the
// Config.Drain channel: the in-flight epoch completed, the final
// checkpoint (when configured) was written, and the transfer was left
// running so a later run can resume it.
var ErrInterrupted = errors.New("tuner: tuning interrupted")

// EpochRecord is one recorded control epoch of a checkpointed run.
type EpochRecord struct {
	// X is the tuned vector the epoch ran with.
	X []int `json:"x"`
	// Report is the transfer's account of the epoch.
	Report xfer.Report `json:"report"`
	// Transient marks a tolerated transient-failure epoch (recorded
	// as zero throughput); replay validation uses it to restore the
	// consecutive failure counter.
	Transient bool `json:"transient,omitempty"`
}

// Checkpoint is the durable state of a tuned transfer, written after
// every control epoch. Strategy is the authoritative tuner state: a
// resume deserializes it directly and continues in O(1), without
// re-running or replaying any epoch. Trace holds the recorded epochs
// for reporting — and, with Config.ValidateResume, for the opt-in
// divergence check that rebuilds the strategy by replay and verifies
// every recorded proposal.
type Checkpoint struct {
	// Version is the format version; see CheckpointVersion.
	Version int `json:"version"`
	// Tuner is the name of the tuner that wrote the checkpoint; a
	// resume with a different tuner is rejected.
	Tuner string `json:"tuner"`
	// Seed is the run's RNG seed; resume adopts it.
	Seed uint64 `json:"seed"`
	// Epochs counts the recorded control epochs (== len(Trace)).
	Epochs int `json:"epochs"`
	// Transients is the consecutive transient-failure count at the
	// time of the snapshot.
	Transients int `json:"transients,omitempty"`
	// Transfer is the transfer's durable state: bytes acked by the
	// receiver, bytes remaining, and the cumulative transfer clock.
	Transfer xfer.TransferState `json:"transfer"`
	// Strategy is the tuner's complete serialized state machine —
	// phase, incumbents, compass queue and step size, Nelder–Mead
	// simplex, stall rotation, ε-monitor, RNG stream position — taken
	// after the last recorded epoch was observed.
	Strategy json.RawMessage `json:"strategy,omitempty"`
	// Trace holds every recorded epoch in order.
	Trace []EpochRecord `json:"trace"`
}

// CheckpointWriter persists checkpoints. Save is called after every
// control epoch with the complete current state (not a delta); an
// error aborts tuning.
type CheckpointWriter interface {
	Save(ck *Checkpoint) error
}

// CheckpointFunc adapts a function to the CheckpointWriter interface.
type CheckpointFunc func(ck *Checkpoint) error

// Save implements CheckpointWriter.
func (f CheckpointFunc) Save(ck *Checkpoint) error { return f(ck) }

// FileCheckpoint writes checkpoints to a file as indented JSON. Each
// Save writes a temporary file in the same directory, syncs it, and
// renames it over the target, so the file always holds one complete
// checkpoint even if the process dies mid-write.
type FileCheckpoint struct {
	path string
}

// NewFileCheckpoint returns a writer targeting path.
func NewFileCheckpoint(path string) *FileCheckpoint {
	return &FileCheckpoint{path: path}
}

// Path returns the target path.
func (f *FileCheckpoint) Path() string { return f.path }

// Save implements CheckpointWriter.
func (f *FileCheckpoint) Save(ck *Checkpoint) error {
	data, err := json.MarshalIndent(ck, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	// WriteAtomic syncs the temp file and then the directory entry:
	// without the latter a crash can roll the file back to the
	// previous checkpoint — or to nothing — despite the fsynced data.
	return fsx.WriteAtomic(f.path, data, 0o644)
}

// LoadCheckpoint reads and validates a checkpoint file written by
// FileCheckpoint.
func LoadCheckpoint(path string) (*Checkpoint, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var ck Checkpoint
	if err := json.Unmarshal(data, &ck); err != nil {
		return nil, fmt.Errorf("tuner: checkpoint %s: %w", path, err)
	}
	if ck.Version != CheckpointVersion {
		return nil, fmt.Errorf("tuner: checkpoint %s has version %d, this build reads %d", path, ck.Version, CheckpointVersion)
	}
	if ck.Epochs != len(ck.Trace) {
		return nil, fmt.Errorf("tuner: checkpoint %s is corrupt: %d epochs but %d trace records", path, ck.Epochs, len(ck.Trace))
	}
	return &ck, nil
}
