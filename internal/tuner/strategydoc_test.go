package tuner

import (
	"os"
	"regexp"
	"strings"
	"testing"
)

// TestStrategyDocCoverage pins STRATEGIES.md to the strategy registry
// the way TestObservabilityDocCoverage pins OBSERVABILITY.md to the
// instrument registry: every name NewStrategy accepts must have its
// own "## `name`" section, the wrapper prefixes must be documented,
// and — in reverse — every documented name must actually construct,
// so the catalog can neither lag the code nor advertise strategies
// that do not exist.
func TestStrategyDocCoverage(t *testing.T) {
	doc, err := os.ReadFile("../../STRATEGIES.md")
	if err != nil {
		t.Fatalf("STRATEGIES.md: %v", err)
	}
	text := string(doc)

	headRE := regexp.MustCompile("(?m)^## `([^`]+)`")
	documented := map[string]bool{}
	for _, m := range headRE.FindAllStringSubmatch(text, -1) {
		if documented[m[1]] {
			t.Errorf("STRATEGIES.md documents %q twice", m[1])
		}
		documented[m[1]] = true
	}

	want := append(StrategyNames(), "static", "warm:<inner>", "kernel-aware:<inner>")
	for _, name := range want {
		if !documented[name] {
			t.Errorf("STRATEGIES.md has no section \"## `%s`\"", name)
		}
	}

	for name := range documented {
		probe := name
		// The wrapper sections use a placeholder inner name; probe
		// them with a real one.
		if strings.Contains(name, "<inner>") {
			probe = strings.ReplaceAll(name, "<inner>", "cs-tuner")
		}
		if !KnownStrategy(probe) {
			t.Errorf("STRATEGIES.md documents %q but NewStrategy rejects it", name)
		}
	}
}
