package tuner

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"dstune/internal/directsearch"
	"dstune/internal/endpoint"
	"dstune/internal/netem"
	"dstune/internal/xfer"
)

// simTransfer builds a deterministic simulated world — a small 8-core
// source over one 10 Gb/s, 30 ms path — and registers one unbounded
// transfer on it.
func simTransfer(t *testing.T, seed uint64) *xfer.Sim {
	t.Helper()
	f, err := xfer.NewFabric(xfer.FabricConfig{
		Seed: seed,
		Source: endpoint.Config{
			Name:         "src",
			Cores:        8,
			CorePumpRate: 1.25e9,
			RestartBase:  0.5,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.AddPath(netem.Config{
		Name:       "wan",
		Capacity:   1.25e9,
		BaseRTT:    0.03,
		RandomLoss: 1e-5,
		MaxCwnd:    8 << 20,
	}); err != nil {
		t.Fatal(err)
	}
	tr, err := f.NewTransfer(xfer.TransferConfig{Name: "t", Bytes: xfer.Unbounded})
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

// simCfg tunes nc in [1, 32] with np fixed at 4 over short simulated
// epochs.
func simCfg() Config {
	return Config{
		Epoch:  5,
		Box:    directsearch.MustBox([]int{1}, []int{32}),
		Start:  []int{2},
		Map:    MapNC(4),
		Budget: 60,
		Seed:   7,
	}
}

// tunerCtors builds every tuner kind from a config.
func tunerCtors() []func(Config) Tuner {
	return []func(Config) Tuner{
		func(c Config) Tuner { return NewStatic(c) },
		func(c Config) Tuner { return NewCD(c) },
		NewCS,
		NewNM,
		func(c Config) Tuner { return NewHeur1(c) },
		func(c Config) Tuner { return NewHeur2(c) },
		func(c Config) Tuner { return NewModel(c) },
	}
}

// TestResumeMatchesUninterrupted is the checkpoint/resume property:
// for every tuner, interrupting a run after k epochs (graceful drain),
// checkpointing it through the durable JSON file form, and resuming on
// the same live transfer must produce exactly the trace an
// uninterrupted run produces on an identical fresh world — same
// proposals, same reports, no restart-from-default.
func TestResumeMatchesUninterrupted(t *testing.T) {
	const seed = 11
	const interruptAfter = 3
	for _, mk := range tunerCtors() {
		name := mk(simCfg()).Name()
		t.Run(name, func(t *testing.T) {
			// Reference: one uninterrupted run to completion.
			ref, err := mk(simCfg()).Tune(context.Background(), simTransfer(t, seed))
			if err != nil {
				t.Fatalf("reference run: %v", err)
			}
			if len(ref.Results) <= interruptAfter {
				t.Fatalf("reference run too short to interrupt: %d epochs", len(ref.Results))
			}

			// Interrupted: identical world, drained after k epochs, every
			// checkpoint persisted through the durable file form.
			live := simTransfer(t, seed)
			fc := NewFileCheckpoint(filepath.Join(t.TempDir(), "run.checkpoint"))
			drain := make(chan struct{})
			drained := false
			cfg := simCfg()
			cfg.Drain = drain
			cfg.Checkpoint = CheckpointFunc(func(ck *Checkpoint) error {
				if err := fc.Save(ck); err != nil {
					return err
				}
				if ck.Epochs >= interruptAfter && !drained {
					drained = true
					close(drain)
				}
				return nil
			})
			part, err := mk(cfg).Tune(context.Background(), live)
			if !errors.Is(err, ErrInterrupted) {
				t.Fatalf("drained run returned %v, want ErrInterrupted", err)
			}
			if len(part.Results) != interruptAfter {
				t.Fatalf("drained run recorded %d epochs, want %d", len(part.Results), interruptAfter)
			}
			if !reflect.DeepEqual(part.Results, ref.Results[:interruptAfter]) {
				t.Fatalf("pre-interrupt trace diverged from reference:\n got %+v\nwant %+v",
					part.Results, ref.Results[:interruptAfter])
			}

			// Resume from the JSON checkpoint on the same live transfer.
			ck, err := LoadCheckpoint(fc.Path())
			if err != nil {
				t.Fatal(err)
			}
			if ck.Epochs != interruptAfter {
				t.Fatalf("checkpoint holds %d epochs, want %d", ck.Epochs, interruptAfter)
			}
			rcfg := simCfg()
			rcfg.Resume = ck
			resumed, err := mk(rcfg).Tune(context.Background(), live)
			if err != nil {
				t.Fatalf("resumed run: %v", err)
			}
			if len(resumed.Results) != len(ref.Results) {
				t.Fatalf("resumed run has %d epochs, reference has %d",
					len(resumed.Results), len(ref.Results))
			}
			for i := range ref.Results {
				if !reflect.DeepEqual(resumed.Results[i], ref.Results[i]) {
					t.Fatalf("epoch %d diverged after resume:\n got %+v\nwant %+v",
						i, resumed.Results[i], ref.Results[i])
				}
			}
		})
	}
}

// TestResumeRejectsMismatchedCheckpoint covers the resume validation:
// foreign tuner, unknown version, and a trace/epoch-count mismatch all
// fail before the transfer is touched.
func TestResumeRejectsMismatchedCheckpoint(t *testing.T) {
	good := &Checkpoint{Version: CheckpointVersion, Tuner: "default", Seed: 1}
	cases := []struct {
		name string
		ck   Checkpoint
	}{
		{"foreign tuner", Checkpoint{Version: CheckpointVersion, Tuner: "cs-tuner"}},
		{"unknown version", Checkpoint{Version: CheckpointVersion + 1, Tuner: "default"}},
		{"epoch mismatch", Checkpoint{Version: CheckpointVersion, Tuner: "default", Epochs: 2}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := cfg1D(100)
			ck := tc.ck
			cfg.Resume = &ck
			f := newFake(peaked(10))
			if _, err := NewStatic(cfg).Tune(context.Background(), f); err == nil {
				t.Fatal("bad checkpoint accepted")
			}
			if f.runs != 0 {
				t.Fatalf("transfer ran %d epochs under a rejected checkpoint", f.runs)
			}
		})
	}
	// Sanity: the good zero-epoch checkpoint is accepted.
	cfg := cfg1D(100)
	cfg.Resume = good
	if _, err := NewStatic(cfg).Tune(context.Background(), newFake(peaked(10))); err != nil {
		t.Fatalf("valid empty checkpoint rejected: %v", err)
	}
}

// TestResumeDivergenceDetected: resuming with a changed configuration
// makes the tuner propose a different vector than the checkpoint
// recorded, which must fail loudly rather than corrupt the trace.
func TestResumeDivergenceDetected(t *testing.T) {
	ck := &Checkpoint{
		Version: CheckpointVersion,
		Tuner:   "default",
		Epochs:  1,
		Trace: []EpochRecord{{
			X:      []int{5},
			Report: xfer.Report{Start: 0, End: 10, Bytes: 1e9, Throughput: 1e8},
		}},
	}
	cfg := cfg1D(100) // Start {2}: the static tuner proposes {2}, not {5}
	cfg.Resume = ck
	cfg.ValidateResume = true
	_, err := NewStatic(cfg).Tune(context.Background(), newFake(peaked(10)))
	if err == nil {
		t.Fatal("diverged resume did not fail")
	}
	if got := err.Error(); !containsAll(got, "diverged", "[2]", "[5]") {
		t.Fatalf("divergence error lacks detail: %q", got)
	}
}

func containsAll(s string, subs ...string) bool {
	for _, sub := range subs {
		found := false
		for i := 0; i+len(sub) <= len(s); i++ {
			if s[i:i+len(sub)] == sub {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

// TestDrainLeavesTransferRunning: a drain-interrupted run must return
// ErrInterrupted, write a final checkpoint, and leave the transfer
// alive for resumption (Stop would destroy the far end's byte
// account).
func TestDrainLeavesTransferRunning(t *testing.T) {
	f := newFake(peaked(10))
	drain := make(chan struct{})
	close(drain)
	var last *Checkpoint
	cfg := cfg1D(100)
	cfg.Drain = drain
	cfg.Checkpoint = CheckpointFunc(func(ck *Checkpoint) error { last = ck; return nil })
	tr, err := NewStatic(cfg).Tune(context.Background(), f)
	if !errors.Is(err, ErrInterrupted) {
		t.Fatalf("err = %v, want ErrInterrupted", err)
	}
	if len(tr.Results) != 0 {
		t.Fatalf("pre-closed drain still ran %d epochs", len(tr.Results))
	}
	if f.stopped {
		t.Fatal("drained run stopped the transfer; resume is impossible")
	}
	if last == nil || last.Epochs != 0 || last.Tuner != "default" {
		t.Fatalf("final checkpoint missing or wrong: %+v", last)
	}
}

// cancelingFake wraps fake to cancel a context mid-epoch on a chosen
// run, returning the partial epoch with the context's error — the
// behaviour real transferers (Sim, gridftp.Client) exhibit under a
// hard cancel.
type cancelingFake struct {
	fake
	cancelOn int
	cancel   context.CancelFunc
}

func (c *cancelingFake) Run(ctx context.Context, p xfer.Params, epoch float64) (xfer.Report, error) {
	rep, err := c.fake.Run(ctx, p, epoch)
	if err == nil && c.fake.runs == c.cancelOn {
		c.cancel()
		// Model a half-finished epoch: time passed, fewer bytes moved.
		rep.End = rep.Start + epoch/2
		rep.Bytes /= 2
		return rep, ctx.Err()
	}
	return rep, err
}

// TestCancelRecordsPartialEpoch: a ctx cancelled mid-epoch must stop
// tuning with the context's error, record the partial epoch it got,
// checkpoint it, and preserve the transfer.
func TestCancelRecordsPartialEpoch(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	f := &cancelingFake{fake: *newFake(peaked(10)), cancelOn: 3, cancel: cancel}
	var last *Checkpoint
	cfg := cfg1D(1000)
	cfg.Checkpoint = CheckpointFunc(func(ck *Checkpoint) error { last = ck; return nil })
	tr, err := NewStatic(cfg).Tune(ctx, f)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if len(tr.Results) != 3 {
		t.Fatalf("trace has %d epochs, want 3 (two full + one partial)", len(tr.Results))
	}
	if f.fake.stopped {
		t.Fatal("cancelled run stopped the transfer; resume is impossible")
	}
	if last == nil || last.Epochs != 3 {
		t.Fatalf("final checkpoint missing or wrong: %+v", last)
	}
	partial := last.Trace[2].Report
	if partial.End <= partial.Start || partial.End-partial.Start >= cfg.Epoch {
		t.Fatalf("partial epoch not recorded as partial: %+v", partial)
	}
}

// TestFileCheckpointDurability: Save must leave a complete, loadable
// file (atomic rename, no temp litter), and LoadCheckpoint must reject
// garbage and version skew.
func TestFileCheckpointDurability(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "run.checkpoint")
	fc := NewFileCheckpoint(path)
	ck := &Checkpoint{
		Version:  CheckpointVersion,
		Tuner:    "cs-tuner",
		Seed:     42,
		Epochs:   1,
		Transfer: xfer.TransferState{Total: -1, Acked: 3e9, Remaining: -1, Clock: 30, Token: "tok"},
		Trace: []EpochRecord{{
			X:      []int{4},
			Report: xfer.Report{Start: 0, End: 30, Bytes: 3e9, Throughput: 1e8, Run: 1},
		}},
	}
	for i := 0; i < 3; i++ { // overwrite repeatedly, as a live run does
		if err := fc.Save(ck); err != nil {
			t.Fatal(err)
		}
	}
	got, err := LoadCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, ck) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, ck)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("checkpoint dir holds %d entries, want only the checkpoint", len(entries))
	}

	bad := filepath.Join(dir, "bad.checkpoint")
	if err := os.WriteFile(bad, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadCheckpoint(bad); err == nil {
		t.Fatal("garbage checkpoint loaded")
	}
	ck2 := *ck
	ck2.Version = CheckpointVersion + 1
	if err := NewFileCheckpoint(bad).Save(&ck2); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadCheckpoint(bad); err == nil {
		t.Fatal("version-skewed checkpoint loaded")
	}
}

// TestCheckpointFailureIsFatal: a failing checkpoint writer must abort
// tuning — silently continuing would leave the operator with a stale
// resume point.
func TestCheckpointFailureIsFatal(t *testing.T) {
	cfg := cfg1D(1000)
	boom := errors.New("disk full")
	cfg.Checkpoint = CheckpointFunc(func(*Checkpoint) error { return boom })
	_, err := NewStatic(cfg).Tune(context.Background(), newFake(peaked(10)))
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want the checkpoint write error", err)
	}
}
