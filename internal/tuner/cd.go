package tuner

import (
	"context"
	"encoding/json"
	"fmt"

	"dstune/internal/ivec"
	"dstune/internal/xfer"
)

// Phases of the cd-tuner state machine.
const (
	cdPhaseStart = "start" // evaluating x0
	cdPhaseProbe = "probe" // evaluating the initial upward probe
	cdPhaseWalk  = "walk"  // the steady ±1 walk
)

// CDState is the serializable state of the cd-tuner: the last two
// (vector, fitness) pairs the walk compares, the stall rotation, and
// the precomputed next proposal.
type CDState struct {
	// Phase is the tuner phase: probe or walk.
	Phase string `json:"phase"`
	// XPrev2 and F2 are the older of the two compared epochs.
	XPrev2 []int `json:"x_prev2,omitempty"`
	// F2 is XPrev2's fitness.
	F2 float64 `json:"f2,omitempty"`
	// XPrev and F1 are the newer of the two compared epochs.
	XPrev []int `json:"x_prev,omitempty"`
	// F1 is XPrev's fitness.
	F1 float64 `json:"f1,omitempty"`
	// Rotation tracks the active coordinate and its stall count.
	Rotation Rotation `json:"rotation"`
	// Next is the vector Propose returns.
	Next []int `json:"next"`
}

// CDStrategy is the coordinate-descent tuner of the paper's
// Algorithm 1 as a propose/observe state machine: a ±1 walk on one
// parameter driven by the sign of the relative change between the
// last two epoch throughputs.
//
//   - Same vector twice with a significant throughput change (new
//     congestion or freed bandwidth): probe upward.
//   - Vector changed and the throughput slope is significantly
//     positive: keep moving the same way (+1).
//   - Vector changed and the slope is significantly negative: the
//     parameter overshot (the source became the bottleneck): step
//     back (-1).
//   - Otherwise: hold.
//
// For multi-parameter tuning (the paper's §IV-B extension) the walk
// applies to one coordinate at a time, rotating to the next after
// StallEpochs consecutive holds and probing the new coordinate once.
type CDStrategy struct {
	cfg Config
	st  CDState
}

// NewCDStrategy returns a cd-tuner strategy.
func NewCDStrategy(cfg Config) *CDStrategy {
	cfg = cfg.withDefaults()
	return &CDStrategy{cfg: cfg, st: CDState{
		Phase: cdPhaseStart,
		Next:  cfg.Box.ClampInt(cfg.Start),
	}}
}

// Name implements Strategy.
func (c *CDStrategy) Name() string { return "cd-tuner" }

// Propose implements Strategy.
func (c *CDStrategy) Propose() ([]int, bool) { return ivec.Clone(c.st.Next), false }

// step moves the active coordinate of x by d within bounds.
func (c *CDStrategy) step(x []int, d int) []int {
	out := ivec.Clone(x)
	out[c.st.Rotation.Dim] += d
	return c.cfg.Box.ClampInt(out)
}

// Observe implements Strategy.
func (c *CDStrategy) Observe(rep xfer.Report) {
	f := fitnessOf(c.cfg, rep)
	switch c.st.Phase {
	case cdPhaseStart:
		// Lines 7-11: x0 evaluated; probe upward next.
		c.st.XPrev2, c.st.F2 = c.st.Next, f
		c.st.Next = c.step(c.st.XPrev2, +1)
		c.st.Phase = cdPhaseProbe
	case cdPhaseProbe:
		c.st.XPrev, c.st.F1 = c.st.Next, f
		c.st.Phase = cdPhaseWalk
		c.st.Next = c.decide()
	case cdPhaseWalk:
		c.st.XPrev2, c.st.F2 = c.st.XPrev, c.st.F1
		c.st.XPrev, c.st.F1 = c.st.Next, f
		c.st.Next = c.decide()
	}
}

// decide is the walk's decision kernel: compare the last two epochs
// and pick the next vector, rotating the active coordinate after
// repeated holds.
func (c *CDStrategy) decide() []int {
	st := &c.st
	dim := st.Rotation.Dim
	// Line 13: relative change between the last two epochs.
	dc := delta(st.F2, st.F1)

	var next []int
	moved := st.XPrev[dim] != st.XPrev2[dim]
	switch {
	case !moved && (dc > c.cfg.Tolerance || dc < -c.cfg.Tolerance):
		// External conditions shifted while we held still: probe.
		next = c.step(st.XPrev, +1)
	case moved:
		// Line 15: slope per unit move of the active coordinate.
		slope := dc / float64(st.XPrev[dim]-st.XPrev2[dim])
		switch {
		case slope > c.cfg.Tolerance:
			next = c.step(st.XPrev, +1)
		case slope < -c.cfg.Tolerance:
			next = c.step(st.XPrev, -1)
		default:
			next = st.XPrev
		}
	default:
		next = st.XPrev
	}

	// Multi-parameter extension: rotate after repeated holds.
	if ivec.Equal(next, st.XPrev) {
		if st.Rotation.Hold(c.cfg.Box.Dim(), c.cfg.StallEpochs) {
			next = c.step(st.XPrev, +1) // probe the fresh coordinate once
		}
	} else {
		st.Rotation.Progress()
	}
	return next
}

// Snapshot implements Strategy.
func (c *CDStrategy) Snapshot() (json.RawMessage, error) { return json.Marshal(c.st) }

// Restore implements Strategy.
func (c *CDStrategy) Restore(raw json.RawMessage) error {
	var st CDState
	if err := json.Unmarshal(raw, &st); err != nil {
		return fmt.Errorf("tuner: cd state: %w", err)
	}
	dim := c.cfg.Box.Dim()
	switch st.Phase {
	case cdPhaseStart, cdPhaseProbe, cdPhaseWalk:
	default:
		return fmt.Errorf("tuner: cd state has unknown phase %q", st.Phase)
	}
	for name, x := range map[string][]int{"next": st.Next, "x_prev": st.XPrev, "x_prev2": st.XPrev2} {
		if x == nil && name != "next" {
			continue // legitimately absent before the walk phase
		}
		if len(x) != dim {
			return fmt.Errorf("tuner: cd state %s has %d dims, box has %d", name, len(x), dim)
		}
	}
	if st.Rotation.Dim < 0 || st.Rotation.Dim >= dim || st.Rotation.Stalls < 0 {
		return fmt.Errorf("tuner: cd state rotation %+v out of range", st.Rotation)
	}
	c.st = st
	return nil
}

// CD is the cd-tuner as a blocking Tuner: a CDStrategy under the
// shared Driver.
type CD struct {
	cfg Config
}

// NewCD returns a cd-tuner.
func NewCD(cfg Config) *CD { return &CD{cfg: cfg} }

// Name implements Tuner.
func (c *CD) Name() string { return "cd-tuner" }

// Tune implements Tuner.
func (c *CD) Tune(ctx context.Context, t xfer.Transferer) (*Trace, error) {
	return tuneWith(ctx, c.cfg, t, func(cfg Config) Strategy { return NewCDStrategy(cfg) })
}
