package tuner

import (
	"context"

	"dstune/internal/xfer"
)

// CD is the coordinate-descent tuner of the paper's Algorithm 1: a
// ±1 walk on one parameter driven by the sign of the relative change
// between the last two epoch throughputs.
//
//   - Same vector twice with a significant throughput change (new
//     congestion or freed bandwidth): probe upward.
//   - Vector changed and the throughput slope is significantly
//     positive: keep moving the same way (+1).
//   - Vector changed and the slope is significantly negative: the
//     parameter overshot (the source became the bottleneck): step
//     back (-1).
//   - Otherwise: hold.
//
// For multi-parameter tuning (the paper's §IV-B extension) the walk
// applies to one coordinate at a time, rotating to the next after
// StallEpochs consecutive holds and probing the new coordinate once.
type CD struct {
	cfg Config
}

// NewCD returns a cd-tuner.
func NewCD(cfg Config) *CD { return &CD{cfg: cfg} }

// Name implements Tuner.
func (c *CD) Name() string { return "cd-tuner" }

// Tune implements Tuner.
func (c *CD) Tune(ctx context.Context, t xfer.Transferer) (*Trace, error) {
	r, err := newRunner(c.Name(), c.cfg, t)
	if err != nil {
		return nil, err
	}
	defer r.close()
	cfg := r.cfg
	dim := 0
	stalls := 0
	r.searchState = func() any {
		return map[string]any{"kind": "cd", "dim": dim, "stalls": stalls}
	}

	// step moves coordinate `dim` of x by d within bounds.
	step := func(x []int, d int) []int {
		out := make([]int, len(x))
		copy(out, x)
		out[dim] += d
		return cfg.Box.ClampInt(out)
	}

	// Lines 7-11: evaluate x0 and its upward probe x1.
	xPrev2 := cfg.Box.ClampInt(cfg.Start)
	fPrev2, stop, err := r.run(ctx, xPrev2)
	if err != nil || stop {
		return r.tr, err
	}
	xPrev := step(xPrev2, +1)
	fPrev, stop, err := r.run(ctx, xPrev)
	if err != nil || stop {
		return r.tr, err
	}

	for {
		// Line 13: relative change between the last two epochs.
		dc := delta(r.fitness(fPrev2), r.fitness(fPrev))

		var next []int
		moved := xPrev[dim] != xPrev2[dim]
		switch {
		case !moved && (dc > cfg.Tolerance || dc < -cfg.Tolerance):
			// External conditions shifted while we held still: probe.
			next = step(xPrev, +1)
		case moved:
			// Line 15: slope per unit move of the active coordinate.
			slope := dc / float64(xPrev[dim]-xPrev2[dim])
			switch {
			case slope > cfg.Tolerance:
				next = step(xPrev, +1)
			case slope < -cfg.Tolerance:
				next = step(xPrev, -1)
			default:
				next = xPrev
			}
		default:
			next = xPrev
		}

		// Multi-parameter extension: rotate after repeated holds.
		if equalInts(next, xPrev) {
			stalls++
			if len(cfg.Start) > 1 && stalls >= cfg.StallEpochs {
				stalls = 0
				dim = (dim + 1) % cfg.Box.Dim()
				next = step(xPrev, +1) // probe the fresh coordinate once
			}
		} else {
			stalls = 0
		}

		f, stop, err := r.run(ctx, next)
		if err != nil || stop {
			return r.tr, err
		}
		xPrev2, fPrev2 = xPrev, fPrev
		xPrev, fPrev = next, f
	}
}

// equalInts reports whether two vectors coincide.
func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
