package tuner

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"dstune/internal/history"
	"dstune/internal/obs"
)

// TestGoldenEventTrace is the observation-plane determinism property:
// a Driver session on a pinned simulated world, watched by an
// obs.Recorder, must emit exactly the event sequence captured in the
// golden fixture — same types, same order, same epochs, same virtual
// timestamps, same strategy deltas. Event.T is transfer-clock time and
// checkpoint write latency lands in metrics only, so the trace is
// bit-stable across machines.
//
// When DSTUNE_EVENT_TRACE is set, each trace is also written to
// $DSTUNE_EVENT_TRACE.<tuner>.jsonl (CI uploads them as artifacts from
// the race run).
func TestGoldenEventTrace(t *testing.T) {
	gc := goldenCases()[0] // the 1-D world, long enough for the search to settle
	cases := []struct {
		tuner string
		mk    func(Config) Tuner
	}{
		{"cs-tuner", NewCS},
		// The model tuner's hold phase retriggers the ε-monitor on this
		// world, so its fixture locks the RetriggerEpsilon event too.
		{"model", func(c Config) Tuner { return NewModel(c) }},
		// The warm case runs cs-tuner over a preloaded memory store, so
		// its fixture locks the leading WarmStart hit event and the
		// prediction-first proposal. The label avoids ':' because it is
		// spliced into artifact and fixture filenames.
		{"warm-cs-tuner", func(c Config) Tuner {
			key := history.Key{Endpoint: "golden", SizeClass: -1, LoadClass: 0}
			store := history.NewMemStore()
			if err := store.Add(history.Record{Key: key, X: []int{14}, Throughput: 3e8, Tuner: "cs-tuner", Epochs: 12}); err != nil {
				panic(err)
			}
			w, err := NewWarm("cs-tuner", c, store, key)
			if err != nil {
				panic(err)
			}
			return w
		}},
	}
	for _, tc := range cases {
		t.Run(tc.tuner, func(t *testing.T) {
			observer := obs.NewObserver(obs.ObserverConfig{})
			cfg := gc.cfg
			cfg.Obs = observer.Session("e2e")
			cfg.Checkpoint = CheckpointFunc(func(*Checkpoint) error { return nil })
			if _, err := tc.mk(cfg).Tune(t.Context(), simTransfer(t, gc.seed)); err != nil {
				t.Fatal(err)
			}

			events := observer.Recorder().Events()
			if len(events) == 0 {
				t.Fatal("no events recorded")
			}
			checkEventOrdering(t, events)

			var got []byte
			for _, ev := range events {
				line, err := json.Marshal(ev)
				if err != nil {
					t.Fatal(err)
				}
				got = append(got, line...)
				got = append(got, '\n')
			}

			if path := os.Getenv("DSTUNE_EVENT_TRACE"); path != "" {
				if err := os.WriteFile(path+"."+tc.tuner+".jsonl", got, 0o644); err != nil {
					t.Fatal(err)
				}
			}

			path := filepath.Join("testdata", "golden", "events_"+tc.tuner+".jsonl")
			if *updateGolden {
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, got, 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("golden fixture missing (run with -update-golden): %v", err)
			}
			if string(got) != string(want) {
				gotLines, wantLines := splitLines(got), splitLines(want)
				for i := range wantLines {
					if i >= len(gotLines) || gotLines[i] != wantLines[i] {
						t.Fatalf("event trace diverged at event %d:\n got %s\nwant %s",
							i, lineOrNil(gotLines, i), lineOrNil(wantLines, i))
					}
				}
				t.Fatalf("event trace diverged: got %d events, golden has %d", len(gotLines), len(wantLines))
			}
		})
	}
}

// checkEventOrdering asserts the per-epoch protocol the Driver
// documents: Propose precedes EpochStart, EpochEnd precedes Observe,
// retriggers only ever follow an Observe, and sequence numbers are
// contiguous from zero.
func checkEventOrdering(t *testing.T, events []obs.Event) {
	t.Helper()
	var last obs.EventType
	for i, ev := range events {
		if ev.Seq != int64(i) {
			t.Fatalf("event %d has seq %d", i, ev.Seq)
		}
		switch ev.Type {
		case obs.EventEpochStart:
			if last != obs.EventPropose {
				t.Fatalf("event %d: EpochStart follows %s, want Propose", i, last)
			}
		case obs.EventObserve:
			if last != obs.EventEpochEnd {
				t.Fatalf("event %d: Observe follows %s, want EpochEnd", i, last)
			}
		case obs.EventRetriggerEpsilon:
			if last != obs.EventObserve {
				t.Fatalf("event %d: RetriggerEpsilon follows %s, want Observe", i, last)
			}
		}
		last = ev.Type
	}
}

func splitLines(b []byte) []string {
	var out []string
	for len(b) > 0 {
		i := 0
		for i < len(b) && b[i] != '\n' {
			i++
		}
		out = append(out, string(b[:i]))
		if i < len(b) {
			i++
		}
		b = b[i:]
	}
	return out
}

func lineOrNil(lines []string, i int) string {
	if i < len(lines) {
		return lines[i]
	}
	return "(missing)"
}
