package trace

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"testing"
	"unicode/utf8"
)

func sample() *Series {
	s := &Series{Name: "tput"}
	s.Add(0, 10)
	s.Add(30, 20)
	s.Add(60, 30)
	s.Add(90, 40)
	return s
}

func TestSeriesBasics(t *testing.T) {
	s := sample()
	if s.Len() != 4 {
		t.Fatalf("Len = %d", s.Len())
	}
	if got := s.Last(); got != (Point{T: 90, V: 40}) {
		t.Fatalf("Last = %v", got)
	}
	if got := s.Mean(); got != 25 {
		t.Fatalf("Mean = %v", got)
	}
	if got := s.MeanAfter(60); got != 35 {
		t.Fatalf("MeanAfter(60) = %v", got)
	}
	if got := s.MeanAfter(1000); got != 0 {
		t.Fatalf("MeanAfter past end = %v", got)
	}
	if got := s.MeanBetween(30, 90); got != 25 {
		t.Fatalf("MeanBetween(30,90) = %v", got)
	}
	if got := s.MeanBetween(91, 92); got != 0 {
		t.Fatalf("MeanBetween empty = %v", got)
	}
}

func TestEmptySeries(t *testing.T) {
	s := &Series{Name: "empty"}
	if s.Mean() != 0 || s.Len() != 0 {
		t.Fatal("empty series stats")
	}
	if s.Last() != (Point{}) {
		t.Fatal("empty Last should be zero")
	}
}

func TestValuesTimes(t *testing.T) {
	s := sample()
	vs, ts := s.Values(), s.Times()
	if len(vs) != 4 || vs[2] != 30 {
		t.Fatalf("Values = %v", vs)
	}
	if len(ts) != 4 || ts[3] != 90 {
		t.Fatalf("Times = %v", ts)
	}
}

func TestWriteCSV(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteCSV(&buf, sample()); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 5 {
		t.Fatalf("got %d lines, want 5 (header + 4)", len(lines))
	}
	if lines[0] != "series,t,v" {
		t.Fatalf("header = %q", lines[0])
	}
	if lines[1] != "tput,0,10" {
		t.Fatalf("first row = %q", lines[1])
	}
}

func TestWriteJSONRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteJSON(&buf, sample()); err != nil {
		t.Fatal(err)
	}
	var out []Series
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 || out[0].Name != "tput" || len(out[0].Points) != 4 {
		t.Fatalf("round trip = %+v", out)
	}
}

func TestSparkline(t *testing.T) {
	s := sample()
	sp := Sparkline(s, 4)
	if utf8.RuneCountInString(sp) != 4 {
		t.Fatalf("width = %d, want 4 (%q)", utf8.RuneCountInString(sp), sp)
	}
	// Monotone series: first rune lowest, last rune highest.
	runes := []rune(sp)
	if runes[0] != '▁' || runes[3] != '█' {
		t.Fatalf("sparkline = %q, want low..high", sp)
	}
}

func TestSparklineEdge(t *testing.T) {
	if Sparkline(&Series{}, 10) != "" {
		t.Fatal("empty series should render empty")
	}
	if Sparkline(sample(), 0) != "" {
		t.Fatal("zero width should render empty")
	}
	// Constant series: all same rune, no division by zero.
	s := &Series{Name: "c"}
	s.Add(0, 5)
	s.Add(1, 5)
	sp := Sparkline(s, 2)
	if utf8.RuneCountInString(sp) != 2 {
		t.Fatalf("constant sparkline %q", sp)
	}
	// All-NaN series renders as spaces.
	n := &Series{Name: "nan"}
	n.Add(0, math.NaN())
	n.Add(1, math.NaN())
	if got := Sparkline(n, 3); got != "   " {
		t.Fatalf("NaN sparkline = %q", got)
	}
}

func TestSparklineSinglePoint(t *testing.T) {
	s := &Series{Name: "one"}
	s.Add(5, 42)
	sp := Sparkline(s, 3)
	if utf8.RuneCountInString(sp) != 3 {
		t.Fatalf("single-point sparkline %q has wrong width", sp)
	}
}

func TestTable(t *testing.T) {
	out := Table([]string{"a", "long-header"}, [][]string{
		{"1", "2"},
		{"333"},
	})
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("got %d lines, want 4", len(lines))
	}
	if !strings.HasPrefix(lines[0], "a  ") {
		t.Fatalf("header row = %q", lines[0])
	}
	if !strings.Contains(lines[1], "---") {
		t.Fatalf("separator row = %q", lines[1])
	}
	// All rows align to the same width.
	if len(lines[2]) > len(lines[0])+2 {
		t.Fatalf("row wider than header: %q vs %q", lines[2], lines[0])
	}
}

func TestMBs(t *testing.T) {
	if got := MBs(2.5e9); got != "2500.0" {
		t.Fatalf("MBs = %q, want 2500.0", got)
	}
	if got := MBs(0); got != "0.0" {
		t.Fatalf("MBs(0) = %q", got)
	}
}
