// Package trace records named time series produced by transfers and
// tuners and renders them as CSV, aligned text tables, and ASCII
// sparklines for the experiment harnesses.
package trace

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// Point is one (time, value) sample.
type Point struct {
	T float64 `json:"t"`
	V float64 `json:"v"`
}

// Series is a named time series.
type Series struct {
	Name   string  `json:"name"`
	Points []Point `json:"points"`
}

// Add appends a sample.
func (s *Series) Add(t, v float64) { s.Points = append(s.Points, Point{T: t, V: v}) }

// Len returns the number of samples.
func (s *Series) Len() int { return len(s.Points) }

// Last returns the final sample, or a zero Point when empty.
func (s *Series) Last() Point {
	if len(s.Points) == 0 {
		return Point{}
	}
	return s.Points[len(s.Points)-1]
}

// Values returns the sample values.
func (s *Series) Values() []float64 {
	vs := make([]float64, len(s.Points))
	for i, p := range s.Points {
		vs[i] = p.V
	}
	return vs
}

// Times returns the sample times.
func (s *Series) Times() []float64 {
	ts := make([]float64, len(s.Points))
	for i, p := range s.Points {
		ts[i] = p.T
	}
	return ts
}

// Mean returns the mean value, or 0 when empty.
func (s *Series) Mean() float64 {
	if len(s.Points) == 0 {
		return 0
	}
	sum := 0.0
	for _, p := range s.Points {
		sum += p.V
	}
	return sum / float64(len(s.Points))
}

// MeanAfter returns the mean of samples with T >= t0, or 0 when there
// are none. Experiment harnesses use it for steady-state throughput.
func (s *Series) MeanAfter(t0 float64) float64 {
	sum, n := 0.0, 0
	for _, p := range s.Points {
		if p.T >= t0 {
			sum += p.V
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// MeanBetween returns the mean of samples with t0 <= T < t1, or 0 when
// there are none.
func (s *Series) MeanBetween(t0, t1 float64) float64 {
	sum, n := 0.0, 0
	for _, p := range s.Points {
		if p.T >= t0 && p.T < t1 {
			sum += p.V
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// WriteCSV writes the series in long format (series,t,v), one row per
// sample, with a header.
func WriteCSV(w io.Writer, series ...*Series) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"series", "t", "v"}); err != nil {
		return err
	}
	for _, s := range series {
		for _, p := range s.Points {
			rec := []string{
				s.Name,
				strconv.FormatFloat(p.T, 'g', -1, 64),
				strconv.FormatFloat(p.V, 'g', -1, 64),
			}
			if err := cw.Write(rec); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteJSON writes the series as a JSON array.
func WriteJSON(w io.Writer, series ...*Series) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(series)
}

// sparkRunes are the eight block heights used by Sparkline.
var sparkRunes = []rune("▁▂▃▄▅▆▇█")

// Sparkline renders the series as a fixed-width ASCII sparkline by
// binning samples into width columns. NaN samples and empty columns
// render as spaces.
func Sparkline(s *Series, width int) string {
	if width <= 0 || len(s.Points) == 0 {
		return ""
	}
	t0 := s.Points[0].T
	t1 := s.Points[len(s.Points)-1].T
	if t1 <= t0 {
		t1 = t0 + 1
	}
	sums := make([]float64, width)
	counts := make([]int, width)
	for _, p := range s.Points {
		if math.IsNaN(p.V) {
			continue
		}
		b := int(float64(width) * (p.T - t0) / (t1 - t0))
		if b >= width {
			b = width - 1
		}
		if b < 0 {
			b = 0
		}
		sums[b] += p.V
		counts[b]++
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	vals := make([]float64, width)
	for i := range vals {
		if counts[i] == 0 {
			vals[i] = math.NaN()
			continue
		}
		vals[i] = sums[i] / float64(counts[i])
		lo = math.Min(lo, vals[i])
		hi = math.Max(hi, vals[i])
	}
	if math.IsInf(lo, 1) {
		return strings.Repeat(" ", width)
	}
	var b strings.Builder
	for _, v := range vals {
		if math.IsNaN(v) {
			b.WriteByte(' ')
			continue
		}
		idx := 0
		if hi > lo {
			idx = int(float64(len(sparkRunes)-1) * (v - lo) / (hi - lo))
		}
		b.WriteRune(sparkRunes[idx])
	}
	return b.String()
}

// Table renders rows as an aligned text table with the given header.
// All rows must have the same number of columns as the header; short
// rows are padded with empty cells.
func Table(header []string, rows [][]string) string {
	widths := make([]int, len(header))
	for i, h := range header {
		widths[i] = len(h)
	}
	for _, row := range rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, w := range widths {
			cell := ""
			if i < len(cells) {
				cell = cells[i]
			}
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", w, cell)
		}
		b.WriteByte('\n')
	}
	writeRow(header)
	sep := make([]string, len(header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range rows {
		writeRow(row)
	}
	return b.String()
}

// MBs formats a bytes-per-second rate as MB/s with one decimal, the
// unit used throughout the paper's figures.
func MBs(bytesPerSec float64) string {
	return fmt.Sprintf("%.1f", bytesPerSec/1e6)
}
