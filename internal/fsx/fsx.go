// Package fsx holds small filesystem durability helpers shared by the
// durable writers in the stack (tuner.FileCheckpoint, history.Store,
// the dstuned job journal).
package fsx

import (
	"errors"
	"os"
	"path/filepath"
)

// WriteAtomic durably replaces the file at path with data: it writes a
// temporary file in the same directory, fsyncs it, renames it over the
// target, and fsyncs the directory — so path always holds either the
// previous or the new complete contents, even across a crash
// mid-write.
func WriteAtomic(path string, data []byte, perm os.FileMode) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, "."+filepath.Base(path)+"-*")
	if err != nil {
		return err
	}
	_, werr := tmp.Write(data)
	var cherr error
	if werr == nil {
		cherr = tmp.Chmod(perm)
	}
	serr := tmp.Sync()
	cerr := tmp.Close()
	if err := errors.Join(werr, cherr, serr, cerr); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return SyncDir(dir)
}

// SyncDir fsyncs the directory at dir. An atomic create-rename write
// is only durable once the directory entry itself is synced: fsyncing
// the file alone persists its contents, but a crash can still lose the
// rename (or a newly created name) until the containing directory's
// metadata reaches disk. Callers invoke SyncDir after the rename (or
// after creating a file that must survive a crash).
func SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	serr := d.Sync()
	cerr := d.Close()
	if serr != nil {
		return serr
	}
	return cerr
}
