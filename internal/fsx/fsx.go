// Package fsx holds small filesystem durability helpers shared by the
// durable writers in the stack (tuner.FileCheckpoint, history.Store).
package fsx

import "os"

// SyncDir fsyncs the directory at dir. An atomic create-rename write
// is only durable once the directory entry itself is synced: fsyncing
// the file alone persists its contents, but a crash can still lose the
// rename (or a newly created name) until the containing directory's
// metadata reaches disk. Callers invoke SyncDir after the rename (or
// after creating a file that must survive a crash).
func SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	serr := d.Sync()
	cerr := d.Close()
	if serr != nil {
		return serr
	}
	return cerr
}
