package model

import "testing"

func BenchmarkFit(b *testing.B) {
	want := Coeffs{A: 1e-20, B: -1e-18, C: 3.2e-17}
	ns := []int{1, 2, 4, 8, 16, 32, 64, 128}
	th := synth(want, ns)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Fit(ns, th); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkOptimum(b *testing.B) {
	c := Coeffs{A: 1e-20, B: -1e-18, C: 3.2e-17}
	for i := 0; i < b.N; i++ {
		if c.Optimum(1, 512) < 1 {
			b.Fatal("bad optimum")
		}
	}
}
