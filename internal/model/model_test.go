package model

import (
	"math"
	"testing"
	"testing/quick"
)

// synth generates exact samples from known coefficients.
func synth(c Coeffs, ns []int) []float64 {
	th := make([]float64, len(ns))
	for i, n := range ns {
		th[i] = c.Predict(n)
	}
	return th
}

func TestFitRecoversKnownCurve(t *testing.T) {
	// A curve with an interior optimum at n* = -2C/B = 64 and a
	// negative discriminant (B^2 < 4AC), so the denominator stays
	// positive everywhere.
	want := Coeffs{A: 1e-20, B: -1e-18, C: 3.2e-17}
	ns := []int{1, 4, 16, 64}
	th := synth(want, ns)
	got, err := Fit(ns, th)
	if err != nil {
		t.Fatal(err)
	}
	for n := 1; n <= 128; n *= 2 {
		w, g := want.Predict(n), got.Predict(n)
		if math.Abs(w-g)/w > 1e-6 {
			t.Fatalf("Predict(%d): fitted %v vs true %v", n, g, w)
		}
	}
	if opt := got.Optimum(1, 128); opt != 64 {
		t.Fatalf("Optimum = %d, want 64", opt)
	}
}

func TestFitExactWithThreeSamples(t *testing.T) {
	want := Coeffs{A: 2e-19, B: -2e-19, C: 4e-17}
	ns := []int{2, 8, 32}
	got, err := Fit(ns, synth(want, ns))
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range ns {
		if math.Abs(got.Predict(n)-want.Predict(n))/want.Predict(n) > 1e-9 {
			t.Fatalf("three-point fit not exact at n=%d", n)
		}
	}
}

func TestFitErrors(t *testing.T) {
	if _, err := Fit([]int{1, 2}, []float64{1}); err == nil {
		t.Fatal("length mismatch accepted")
	}
	if _, err := Fit([]int{1, 2}, []float64{1, 2}); err != ErrDegenerate {
		t.Fatalf("two samples: %v, want ErrDegenerate", err)
	}
	// Repeated stream counts collapse to fewer distinct points.
	if _, err := Fit([]int{4, 4, 4}, []float64{1, 1, 1}); err != ErrDegenerate {
		t.Fatalf("repeated points: %v", err)
	}
	// Zero throughputs are discarded.
	if _, err := Fit([]int{1, 2, 3}, []float64{0, 0, 0}); err != ErrDegenerate {
		t.Fatalf("zero throughputs: %v", err)
	}
	// Invalid stream counts are discarded.
	if _, err := Fit([]int{-1, 0, 2, 3}, []float64{1, 1, 1, 1}); err != ErrDegenerate {
		t.Fatalf("invalid counts: %v", err)
	}
}

func TestPredictEdge(t *testing.T) {
	c := Coeffs{A: 1, B: 1, C: 1}
	if c.Predict(0) != 0 || c.Predict(-3) != 0 {
		t.Fatal("non-positive n should predict 0")
	}
	// Negative discriminant region predicts 0.
	neg := Coeffs{A: -1, B: 0, C: 0}
	if neg.Predict(5) != 0 {
		t.Fatal("invalid region should predict 0")
	}
}

func TestOptimumMonotoneCurve(t *testing.T) {
	// b >= 0: throughput decreasing in n beyond... for a>0, b>0 the
	// curve is maximized at the lower end or upper end; with b>0,c>0
	// Th is increasing toward 1/sqrt(a) asymptote -> hi wins.
	c := Coeffs{A: 1e-20, B: 1e-19, C: 1e-17}
	if got := c.Optimum(1, 64); got != 64 {
		t.Fatalf("monotone-up optimum = %d, want 64", got)
	}
}

func TestOptimumClamps(t *testing.T) {
	// Interior peak at 64, but the box is [1, 16]: clamp to 16.
	c := Coeffs{A: 1e-20, B: -1e-18, C: 3.2e-17}
	if got := c.Optimum(1, 16); got != 16 {
		t.Fatalf("clamped optimum = %d, want 16", got)
	}
	if got := c.Optimum(100, 128); got != 100 {
		t.Fatalf("clamped-from-below optimum = %d, want 100", got)
	}
	if got := c.Optimum(-5, 0); got < 1 {
		t.Fatalf("degenerate range gave %d", got)
	}
}

func TestOptimumNeverOutsideRangeProperty(t *testing.T) {
	f := func(a, b, c float64, loRaw, span uint8) bool {
		lo := int(loRaw%64) + 1
		hi := lo + int(span%64)
		co := Coeffs{A: a, B: b, C: c}
		got := co.Optimum(lo, hi)
		return got >= lo && got <= hi
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFitWithNoise(t *testing.T) {
	// 5% multiplicative noise: the recovered optimum should land in
	// the right neighbourhood.
	want := Coeffs{A: 1e-20, B: -1e-18, C: 3.2e-17} // peak 64
	ns := []int{1, 2, 4, 8, 16, 32, 64, 128}
	th := synth(want, ns)
	noise := []float64{1.03, 0.97, 1.05, 0.96, 1.02, 0.98, 1.04, 0.99}
	for i := range th {
		th[i] *= noise[i]
	}
	got, err := Fit(ns, th)
	if err != nil {
		t.Fatal(err)
	}
	opt := got.Optimum(1, 256)
	if opt < 32 || opt > 128 {
		t.Fatalf("noisy fit optimum = %d, want near 64", opt)
	}
}

func TestString(t *testing.T) {
	if s := (Coeffs{A: 1, B: -2, C: 3}).String(); s == "" {
		t.Fatal("empty String")
	}
}

func TestSolve3Singular(t *testing.T) {
	m := [3][4]float64{
		{1, 2, 3, 4},
		{2, 4, 6, 8},
		{3, 6, 9, 12},
	}
	if _, ok := solve3(m); ok {
		t.Fatal("singular system solved")
	}
}
