// Package model implements the empirical throughput model of the
// paper's related work (Yildirim et al. [27], Yin et al. [28]): the
// parallel-stream throughput curve
//
//	Th(n) = n / sqrt(a*n^2 + b*n + c)
//
// fitted from a few sampled (streams, throughput) measurements. The
// linearization n^2/Th^2 = a*n^2 + b*n + c makes the fit a linear
// least-squares problem; the fitted curve has an interior maximum at
// n* = -2c/b when b < 0, otherwise it is monotone.
//
// The paper classifies this as an "empirical approach" and argues
// model-free direct search is more robust to changing external
// conditions; internal/tuner.Model turns this package into the
// corresponding baseline tuner so the claim can be measured.
package model

import (
	"errors"
	"fmt"
	"math"
)

// Coeffs are the fitted curve coefficients.
type Coeffs struct {
	A, B, C float64
}

// ErrDegenerate reports that the samples do not determine the model
// (fewer than three distinct stream counts, zero throughputs, or a
// singular system).
var ErrDegenerate = errors.New("model: degenerate sample set")

// Fit fits the curve to samples (ns[i] streams yielded th[i] bytes/s)
// by least squares on the linearized form. At least three samples
// with distinct positive stream counts and positive throughputs are
// required.
func Fit(ns []int, th []float64) (Coeffs, error) {
	if len(ns) != len(th) {
		return Coeffs{}, fmt.Errorf("model: %d stream counts for %d throughputs", len(ns), len(th))
	}
	distinct := map[int]bool{}
	var xs, ys []float64
	for i, n := range ns {
		if n < 1 || th[i] <= 0 {
			continue
		}
		distinct[n] = true
		xs = append(xs, float64(n))
		y := float64(n) * float64(n) / (th[i] * th[i])
		ys = append(ys, y)
	}
	if len(distinct) < 3 {
		return Coeffs{}, ErrDegenerate
	}

	// Normal equations for y = a*x^2 + b*x + c.
	var s [5]float64 // sums of x^0 .. x^4
	var t [3]float64 // sums of y*x^0 .. y*x^2
	for i, x := range xs {
		xp := 1.0
		for p := 0; p <= 4; p++ {
			s[p] += xp
			if p <= 2 {
				t[p] += ys[i] * xp
			}
			xp *= x
		}
	}
	// Solve the 3x3 system M * [c b a]^T = t.
	m := [3][4]float64{
		{s[0], s[1], s[2], t[0]},
		{s[1], s[2], s[3], t[1]},
		{s[2], s[3], s[4], t[2]},
	}
	sol, ok := solve3(m)
	if !ok {
		return Coeffs{}, ErrDegenerate
	}
	return Coeffs{C: sol[0], B: sol[1], A: sol[2]}, nil
}

// solve3 performs Gaussian elimination with partial pivoting on a
// 3x4 augmented matrix.
func solve3(m [3][4]float64) ([3]float64, bool) {
	for col := 0; col < 3; col++ {
		// Pivot.
		p := col
		for r := col + 1; r < 3; r++ {
			if math.Abs(m[r][col]) > math.Abs(m[p][col]) {
				p = r
			}
		}
		if math.Abs(m[p][col]) < 1e-12 {
			return [3]float64{}, false
		}
		m[col], m[p] = m[p], m[col]
		// Eliminate below.
		for r := col + 1; r < 3; r++ {
			f := m[r][col] / m[col][col]
			for k := col; k < 4; k++ {
				m[r][k] -= f * m[col][k]
			}
		}
	}
	var out [3]float64
	for r := 2; r >= 0; r-- {
		v := m[r][3]
		for k := r + 1; k < 3; k++ {
			v -= m[r][k] * out[k]
		}
		out[r] = v / m[r][r]
	}
	for _, v := range out {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return [3]float64{}, false
		}
	}
	return out, true
}

// Predict returns the modelled throughput for n streams, or 0 when
// the model is invalid there.
func (c Coeffs) Predict(n int) float64 {
	if n < 1 {
		return 0
	}
	x := float64(n)
	d := c.A*x*x + c.B*x + c.C
	if d <= 0 {
		return 0
	}
	return x / math.Sqrt(d)
}

// Optimum returns the stream count in [lo, hi] that maximizes the
// modelled throughput: the interior peak n* = -2C/B when it exists
// within the range, otherwise the better bound.
func (c Coeffs) Optimum(lo, hi int) int {
	if lo < 1 {
		lo = 1
	}
	if hi < lo {
		hi = lo
	}
	best, bestV := lo, c.Predict(lo)
	consider := func(n int) {
		if n < lo || n > hi {
			return
		}
		if v := c.Predict(n); v > bestV {
			best, bestV = n, v
		}
	}
	consider(hi)
	if c.B < 0 {
		star := -2 * c.C / c.B
		consider(int(math.Floor(star)))
		consider(int(math.Ceil(star)))
	}
	return best
}

// String implements fmt.Stringer.
func (c Coeffs) String() string {
	return fmt.Sprintf("Th(n)=n/sqrt(%.3g*n^2%+.3g*n%+.3g)", c.A, c.B, c.C)
}
