//go:build linux

package tcpinfo

import (
	"encoding/binary"
	"net"
	"syscall"
	"time"
	"unsafe"
)

// tcpInfoBuf is sized for the modern struct tcp_info (kernel 4.9+,
// which added delivery_rate at offset 160). The kernel truncates to
// whatever it supports and returns the written length, so older
// kernels still fill the classic prefix.
const tcpInfoBuf = 232

// Offsets into the kernel's struct tcp_info. The leading eight fields
// are u8s, everything from tcpi_rto on is u32 (then u64 from
// pacing_rate at 152). These offsets are ABI: the kernel only ever
// appends fields.
const (
	offRTT          = 68  // tcpi_rtt, microseconds (u32)
	offRTTVar       = 72  // tcpi_rttvar, microseconds (u32)
	offSndCwnd      = 80  // tcpi_snd_cwnd, segments (u32)
	offTotalRetrans = 100 // tcpi_total_retrans (u32)
	offDeliveryRate = 160 // tcpi_delivery_rate, bytes/s (u64, kernel 4.9+)
)

// sample implements Sample on Linux: it borrows the connection's file
// descriptor through the RawConn Control hook (no dup, no ownership
// transfer) and issues one getsockopt(IPPROTO_TCP, TCP_INFO).
func sample(conn net.Conn) (Info, bool) {
	sc, ok := conn.(syscall.Conn)
	if !ok {
		return Info{}, false
	}
	raw, err := sc.SyscallConn()
	if err != nil {
		return Info{}, false
	}
	var buf [tcpInfoBuf]byte
	var n uint32
	var serr syscall.Errno
	cerr := raw.Control(func(fd uintptr) {
		n = tcpInfoBuf
		_, _, serr = syscall.Syscall6(syscall.SYS_GETSOCKOPT, fd,
			syscall.IPPROTO_TCP, syscall.TCP_INFO,
			uintptr(unsafe.Pointer(&buf[0])), uintptr(unsafe.Pointer(&n)), 0)
	})
	if cerr != nil || serr != 0 {
		return Info{}, false
	}
	// Guard every field by the length the kernel actually wrote, so an
	// old kernel's short struct never reads past valid bytes.
	if n < offSndCwnd+4 {
		return Info{}, false
	}
	u32 := func(off uint32) uint32 { return binary.NativeEndian.Uint32(buf[off : off+4]) }
	info := Info{
		RTT:     time.Duration(u32(offRTT)) * time.Microsecond,
		RTTVar:  time.Duration(u32(offRTTVar)) * time.Microsecond,
		SndCwnd: u32(offSndCwnd),
	}
	if n >= offTotalRetrans+4 {
		info.TotalRetrans = u32(offTotalRetrans)
	}
	if n >= offDeliveryRate+8 {
		info.DeliveryRate = binary.NativeEndian.Uint64(buf[offDeliveryRate : offDeliveryRate+8])
	}
	return info, true
}
