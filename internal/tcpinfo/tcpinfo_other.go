//go:build !linux

package tcpinfo

import "net"

// sample is the portable no-op: platforms without TCP_INFO report no
// sample, and callers fall back to epoch-level throughput alone.
func sample(net.Conn) (Info, bool) { return Info{}, false }
