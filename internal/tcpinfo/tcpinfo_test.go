package tcpinfo

import (
	"io"
	"net"
	"runtime"
	"testing"
)

// TestSampleLoopback pushes some traffic over a loopback TCP pair and
// samples the sender: on Linux the kernel must report a live
// congestion window; elsewhere Sample must report ok=false.
func TestSampleLoopback(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	done := make(chan struct{})
	go func() {
		defer close(done)
		c, err := ln.Accept()
		if err != nil {
			return
		}
		io.Copy(io.Discard, c)
		c.Close()
	}()
	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	buf := make([]byte, 64<<10)
	for i := 0; i < 64; i++ {
		if _, err := conn.Write(buf); err != nil {
			t.Fatal(err)
		}
	}

	info, ok := Sample(conn)
	if runtime.GOOS != "linux" {
		if ok {
			t.Fatalf("Sample reported ok on %s; want the portable no-op", runtime.GOOS)
		}
		return
	}
	if !ok {
		t.Fatal("Sample failed on a live Linux TCP connection")
	}
	if info.SndCwnd == 0 {
		t.Fatalf("snd_cwnd = 0 after 4 MiB of traffic: %+v", info)
	}
	if info.RTT <= 0 {
		t.Fatalf("rtt = %v after 4 MiB of traffic: %+v", info.RTT, info)
	}
	conn.Close()
	<-done
}

// TestSampleNonSocket pins the nil-cost degradation: connections that
// do not expose a raw file descriptor (in-memory pipes, wrapped test
// conns) must report ok=false rather than erroring or panicking.
func TestSampleNonSocket(t *testing.T) {
	a, b := net.Pipe()
	defer a.Close()
	defer b.Close()
	if _, ok := Sample(a); ok {
		t.Fatal("Sample reported ok on a net.Pipe connection")
	}
}
