// Package tcpinfo samples the kernel's per-connection TCP state —
// RTT, congestion window, delivery rate, retransmissions — through
// getsockopt(TCP_INFO). This is the signal plane the adaptive-sampling
// literature (Nine et al., arXiv:1707.09455; Arslan & Kosar,
// arXiv:1708.05425) builds on: kernel counters distinguish "the link
// is lossy" from "the endpoint is slow" where epoch-level throughput
// alone cannot.
//
// Sampling is Linux-only and strictly best-effort: on other platforms,
// and for connections that do not expose a raw file descriptor
// (wrapped test connections, in-memory pipes), Sample reports ok=false
// and costs nothing. Callers treat a missing sample as "no kernel
// signal", never as an error.
package tcpinfo

import (
	"net"
	"time"
)

// Info is one connection's kernel TCP snapshot at the moment of
// sampling. Counters (TotalRetrans) are cumulative over the
// connection's lifetime; gauges (RTT, SndCwnd, DeliveryRate) are the
// kernel's current smoothed estimates.
type Info struct {
	// RTT is the smoothed round-trip time estimate.
	RTT time.Duration
	// RTTVar is the RTT variance estimate.
	RTTVar time.Duration
	// SndCwnd is the congestion window, in segments.
	SndCwnd uint32
	// DeliveryRate is the kernel's most recent goodput estimate in
	// bytes/second (zero on kernels that predate tcp_info.delivery_rate
	// or before any data has been delivered).
	DeliveryRate uint64
	// TotalRetrans is the cumulative count of retransmitted segments.
	TotalRetrans uint32
}

// Sample reads conn's kernel TCP state. It reports ok=false — at zero
// syscall cost — when the platform has no TCP_INFO, when conn does not
// expose a raw file descriptor (wrapped or synthetic connections), or
// when the getsockopt itself fails.
func Sample(conn net.Conn) (Info, bool) {
	return sample(conn)
}
