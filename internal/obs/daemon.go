package obs

// Metric names emitted by the dstuned service plane. Like the dstune_*
// families, each is documented in OBSERVABILITY.md and covered by
// TestObservabilityDocCoverage.
const (
	// MetricDaemonSubmitted counts jobs submitted to the control API,
	// accepted or not.
	MetricDaemonSubmitted = "dstuned_jobs_submitted_total"
	// MetricDaemonRejected counts jobs refused by admission control,
	// labeled by reason (queue-full, tenant-quota, fault-budget,
	// duplicate, draining).
	MetricDaemonRejected = "dstuned_jobs_rejected_total"
	// MetricDaemonAdmitted counts jobs accepted and journaled.
	MetricDaemonAdmitted = "dstuned_jobs_admitted_total"
	// MetricDaemonAdopted counts journaled jobs re-adopted after a
	// restart.
	MetricDaemonAdopted = "dstuned_jobs_adopted_total"
	// MetricDaemonCompleted counts jobs that ended cleanly.
	MetricDaemonCompleted = "dstuned_jobs_completed_total"
	// MetricDaemonFailed counts jobs that ended with an error.
	MetricDaemonFailed = "dstuned_jobs_failed_total"
	// MetricDaemonCancelled counts jobs ended by DELETE /jobs/{id}.
	MetricDaemonCancelled = "dstuned_jobs_cancelled_total"
	// MetricDaemonEvicted counts jobs force-ended by the supervisor
	// (exhausted tenant fault budget).
	MetricDaemonEvicted = "dstuned_jobs_evicted_total"
	// MetricDaemonQueueDepth is the number of admitted jobs waiting
	// for a shard slot.
	MetricDaemonQueueDepth = "dstuned_queue_depth"
	// MetricDaemonActive is the number of sessions currently stepping
	// on shard loops.
	MetricDaemonActive = "dstuned_active_sessions"
	// MetricDaemonShardSessions is the per-shard live session count,
	// labeled by shard index.
	MetricDaemonShardSessions = "dstuned_shard_sessions"
	// MetricDaemonRoundSeconds is the per-shard wall-clock duration of
	// one supervision round (admit + step + settle), labeled by shard.
	MetricDaemonRoundSeconds = "dstuned_round_seconds"
	// MetricDaemonTenantActive is the per-tenant count of admitted
	// (queued + running) jobs, labeled by tenant.
	MetricDaemonTenantActive = "dstuned_tenant_active_jobs"
	// MetricDaemonTenantFaults is the per-tenant cumulative count of
	// transient-failure epochs, the meter behind the tenant fault
	// budget, labeled by tenant.
	MetricDaemonTenantFaults = "dstuned_tenant_transient_epochs_total"
)

// DaemonObs is the dstuned supervisor's instrument bundle: admission,
// adoption, eviction, and shard-load metrics plus the job lifecycle
// events. A nil *DaemonObs is a valid no-op; all methods are safe for
// concurrent use.
type DaemonObs struct {
	o          *Observer
	submitted  *Counter
	admitted   *Counter
	adopted    *Counter
	completed  *Counter
	failed     *Counter
	cancelled  *Counter
	evicted    *Counter
	queueDepth *Gauge
	active     *Gauge
}

// Daemon registers and returns the dstuned instrument bundle; nil on a
// nil receiver.
func (o *Observer) Daemon() *DaemonObs {
	if o == nil {
		return nil
	}
	return &DaemonObs{
		o:          o,
		submitted:  o.reg.Counter(MetricDaemonSubmitted, "Jobs submitted to the control API."),
		admitted:   o.reg.Counter(MetricDaemonAdmitted, "Jobs accepted and journaled."),
		adopted:    o.reg.Counter(MetricDaemonAdopted, "Journaled jobs re-adopted after a restart."),
		completed:  o.reg.Counter(MetricDaemonCompleted, "Jobs that ended cleanly."),
		failed:     o.reg.Counter(MetricDaemonFailed, "Jobs that ended with an error."),
		cancelled:  o.reg.Counter(MetricDaemonCancelled, "Jobs cancelled through the control API."),
		evicted:    o.reg.Counter(MetricDaemonEvicted, "Jobs force-ended by the supervisor."),
		queueDepth: o.reg.Gauge(MetricDaemonQueueDepth, "Admitted jobs waiting for a shard slot."),
		active:     o.reg.Gauge(MetricDaemonActive, "Sessions currently stepping on shard loops."),
	}
}

// Submitted counts one submission attempt (accepted or not).
func (d *DaemonObs) Submitted() {
	if d == nil {
		return
	}
	d.submitted.Inc()
}

// Rejected counts one admission refusal for the given reason.
func (d *DaemonObs) Rejected(reason string) {
	if d == nil {
		return
	}
	d.o.reg.Counter(MetricDaemonRejected, "Jobs refused by admission control, by reason.", L("reason", reason)).Inc()
}

// JobAdmitted records a job passing admission control with its journal
// entry durable: the JobAdmitted event plus the admitted counter.
func (d *DaemonObs) JobAdmitted(id, tenant string) {
	if d == nil {
		return
	}
	d.admitted.Inc()
	d.o.Event(Event{Type: EventJobAdmitted, Session: id, Detail: tenant})
}

// JobAdopted records a restarted daemon re-adopting a journaled job
// that had completed epochs checkpointed epochs.
func (d *DaemonObs) JobAdopted(id string, epochs int) {
	if d == nil {
		return
	}
	d.adopted.Inc()
	d.o.Event(Event{Type: EventJobAdopted, Session: id, Epoch: epochs})
}

// JobEvicted records the supervisor force-ending a job for the given
// reason.
func (d *DaemonObs) JobEvicted(id, reason string) {
	if d == nil {
		return
	}
	d.evicted.Inc()
	d.o.Event(Event{Type: EventJobEvicted, Session: id, Detail: reason})
}

// JobDone counts a job's terminal state: cancelled, failed (err
// non-nil), or completed.
func (d *DaemonObs) JobDone(err error, cancelled bool) {
	if d == nil {
		return
	}
	switch {
	case cancelled:
		d.cancelled.Inc()
	case err != nil:
		d.failed.Inc()
	default:
		d.completed.Inc()
	}
}

// SetQueueDepth updates the waiting-job gauge.
func (d *DaemonObs) SetQueueDepth(n int) {
	if d == nil {
		return
	}
	d.queueDepth.Set(float64(n))
}

// SetActive updates the live-session gauge.
func (d *DaemonObs) SetActive(n int) {
	if d == nil {
		return
	}
	d.active.Set(float64(n))
}

// SetShardSessions updates shard's live session count.
func (d *DaemonObs) SetShardSessions(shard string, n int) {
	if d == nil {
		return
	}
	d.o.reg.Gauge(MetricDaemonShardSessions, "Live sessions per shard.", L("shard", shard)).Set(float64(n))
}

// RoundObserved records the wall-clock duration of one supervision
// round on shard.
func (d *DaemonObs) RoundObserved(shard string, seconds float64) {
	if d == nil {
		return
	}
	d.o.reg.Histogram(MetricDaemonRoundSeconds, "Wall-clock duration of one supervision round.", DefaultLatencyBuckets, L("shard", shard)).Observe(seconds)
}

// SetTenantActive updates tenant's admitted-job gauge.
func (d *DaemonObs) SetTenantActive(tenant string, n int) {
	if d == nil {
		return
	}
	d.o.reg.Gauge(MetricDaemonTenantActive, "Admitted (queued + running) jobs per tenant.", L("tenant", tenant)).Set(float64(n))
}

// TenantFaults counts n transient-failure epochs against tenant's
// fault budget.
func (d *DaemonObs) TenantFaults(tenant string, n int) {
	if d == nil {
		return
	}
	d.o.reg.Counter(MetricDaemonTenantFaults, "Cumulative transient-failure epochs per tenant.", L("tenant", tenant)).Add(int64(n))
}
