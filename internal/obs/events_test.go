package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestRecorderRingAndSink(t *testing.T) {
	var sink bytes.Buffer
	r := NewRecorder(4, &sink)
	for i := 0; i < 6; i++ {
		r.Record(Event{Type: EventEpochStart, Epoch: i})
	}
	evs := r.Events()
	if len(evs) != 4 {
		t.Fatalf("ring holds %d events, want 4", len(evs))
	}
	for i, ev := range evs {
		if want := int64(i + 2); ev.Seq != want {
			t.Errorf("event %d: seq %d, want %d (oldest-first after wrap)", i, ev.Seq, want)
		}
	}
	if r.Len() != 6 {
		t.Errorf("Len %d, want 6", r.Len())
	}
	// The JSONL sink keeps everything, one object per line.
	sc := bufio.NewScanner(&sink)
	var n int
	for sc.Scan() {
		var ev Event
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("line %d: %v", n, err)
		}
		if ev.Seq != int64(n) || ev.Epoch != n {
			t.Errorf("line %d: seq=%d epoch=%d", n, ev.Seq, ev.Epoch)
		}
		n++
	}
	if n != 6 {
		t.Errorf("sink has %d lines, want 6", n)
	}
	if r.Err() != nil {
		t.Errorf("sink error: %v", r.Err())
	}
}

func TestEventJSONOmitsUnusedFields(t *testing.T) {
	b, err := json.Marshal(Event{Seq: 1, T: 2.5, Type: EventObserve, Session: "s", Delta: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	got := string(b)
	for _, forbidden := range []string{"throughput", "dials", "prev", "detail", "transient"} {
		if strings.Contains(got, forbidden) {
			t.Errorf("encoding contains unused field %q: %s", forbidden, got)
		}
	}
}

func TestSessionStatusAndStatusEndpoint(t *testing.T) {
	o := NewObserver(ObserverConfig{})
	s := o.Session("bulk")
	s.SetStrategy("cs-tuner")
	s.Propose(0, []int{4, 8}, nil)
	s.EpochStart(0, 0, []int{4, 8})
	s.EpochEnd(5, 0, []int{4, 8}, EpochStats{
		Throughput: 2e9, BestCase: 2.5e9, Bytes: 1e10, DeadTime: 0.5,
		Dials: 4, ReusedStreams: 0, Retries: 1, DegradedStreams: 2,
	}, false, 3)
	s.Retrigger(5, 0.42)
	s.CheckpointWritten(5, 1, 0.002)
	s.Finish(nil)

	st := o.Status()
	if len(st.Sessions) != 1 {
		t.Fatalf("status has %d sessions, want 1", len(st.Sessions))
	}
	got := st.Sessions[0]
	if got.ID != "bulk" || got.Strategy != "cs-tuner" || got.Epochs != 1 ||
		got.Throughput != 2e9 || got.Dials != 4 || got.Retriggers != 1 ||
		got.Checkpoints != 1 || got.TransientBudget != 3 || !got.Done {
		t.Errorf("unexpected status: %+v", got)
	}
	if len(got.X) != 2 || got.X[0] != 4 || got.X[1] != 8 {
		t.Errorf("status X = %v, want [4 8]", got.X)
	}

	// The instruments must reflect the same epoch.
	if v := o.Registry().Counter(MetricEpochs, "", L("session", "bulk")).Value(); v != 1 {
		t.Errorf("epochs counter = %d, want 1", v)
	}
	if v := o.Registry().Gauge(MetricParamNC, "", L("session", "bulk")).Value(); v != 4 {
		t.Errorf("nc gauge = %v, want 4", v)
	}

	// And the HTTP endpoints must serve them.
	srv := httptest.NewServer(o.Handler())
	defer srv.Close()
	for path, want := range map[string]string{
		"/metrics": `dstune_epochs_total{session="bulk"} 1`,
		"/status":  `"id": "bulk"`,
	} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		var body bytes.Buffer
		_, _ = body.ReadFrom(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Errorf("GET %s: status %d", path, resp.StatusCode)
		}
		if !strings.Contains(body.String(), want) {
			t.Errorf("GET %s: body missing %q:\n%s", path, want, body.String())
		}
	}
	// pprof index must be wired.
	resp, err := http.Get(srv.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Errorf("GET /debug/pprof/: status %d", resp.StatusCode)
	}
}

func TestObserverSessionIdempotent(t *testing.T) {
	o := NewObserver(ObserverConfig{})
	a := o.Session("x")
	b := o.Session("x")
	if a != b {
		t.Fatal("Session must be idempotent per ID")
	}
	o.Session("y")
	st := o.Status()
	if len(st.Sessions) != 2 || st.Sessions[0].ID != "x" || st.Sessions[1].ID != "y" {
		t.Fatalf("sessions out of order: %+v", st.Sessions)
	}
}

func TestFaultInjectedMetric(t *testing.T) {
	o := NewObserver(ObserverConfig{})
	o.FaultInjected(FaultReset, "10.0.0.1:2811")
	o.FaultInjected(FaultDialRefusal, "10.0.0.1:2811")
	o.FaultInjected(FaultReset, "10.0.0.1:2811")
	if v := o.Registry().Counter(MetricFaults, "", L("kind", string(FaultReset))).Value(); v != 2 {
		t.Errorf("reset faults = %d, want 2", v)
	}
	evs := o.Recorder().Events()
	if len(evs) != 3 || evs[0].Type != EventFaultInjected {
		t.Fatalf("unexpected events: %+v", evs)
	}
}
