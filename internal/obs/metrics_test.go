package obs

import (
	"strings"
	"testing"
)

// TestPrometheusExposition locks the text exposition format: escaping,
// label ordering, family sorting, and histogram bucket rendering.
func TestPrometheusExposition(t *testing.T) {
	cases := []struct {
		name string
		fill func(r *Registry)
		want string
	}{
		{
			name: "counter basic",
			fill: func(r *Registry) {
				r.Counter("a_total", "Things.").Add(3)
			},
			want: "# HELP a_total Things.\n# TYPE a_total counter\na_total 3\n",
		},
		{
			name: "gauge float formatting",
			fill: func(r *Registry) {
				r.Gauge("g", "A gauge.").Set(1.25e9)
			},
			want: "# HELP g A gauge.\n# TYPE g gauge\ng 1.25e+09\n",
		},
		{
			name: "label ordering is sorted regardless of registration order",
			fill: func(r *Registry) {
				r.Counter("c_total", "C.", L("zeta", "1"), L("alpha", "2")).Inc()
			},
			want: "# HELP c_total C.\n# TYPE c_total counter\n" +
				`c_total{alpha="2",zeta="1"} 1` + "\n",
		},
		{
			name: "series within a family sorted by labels, HELP/TYPE once",
			fill: func(r *Registry) {
				r.Counter("c_total", "C.", L("session", "b")).Add(2)
				r.Counter("c_total", "C.", L("session", "a")).Add(1)
			},
			want: "# HELP c_total C.\n# TYPE c_total counter\n" +
				`c_total{session="a"} 1` + "\n" +
				`c_total{session="b"} 2` + "\n",
		},
		{
			name: "families sorted by name",
			fill: func(r *Registry) {
				r.Counter("z_total", "Z.").Inc()
				r.Gauge("a_gauge", "A.").Set(1)
			},
			want: "# HELP a_gauge A.\n# TYPE a_gauge gauge\na_gauge 1\n" +
				"# HELP z_total Z.\n# TYPE z_total counter\nz_total 1\n",
		},
		{
			name: "label value escaping",
			fill: func(r *Registry) {
				r.Counter("e_total", "E.", L("p", `back\slash "quote"`+"\nnl")).Inc()
			},
			want: "# HELP e_total E.\n# TYPE e_total counter\n" +
				`e_total{p="back\\slash \"quote\"\nnl"} 1` + "\n",
		},
		{
			name: "help escaping",
			fill: func(r *Registry) {
				r.Gauge("h", "line one\nline \\two").Set(0)
			},
			want: `# HELP h line one\nline \\two` + "\n# TYPE h gauge\nh 0\n",
		},
		{
			name: "histogram cumulative buckets with labels",
			fill: func(r *Registry) {
				h := r.Histogram("lat_seconds", "Latency.", []float64{0.1, 1, 10}, L("session", "s"))
				h.Observe(0.05)
				h.Observe(0.5)
				h.Observe(0.7)
				h.Observe(99)
			},
			want: "# HELP lat_seconds Latency.\n# TYPE lat_seconds histogram\n" +
				`lat_seconds_bucket{session="s",le="0.1"} 1` + "\n" +
				`lat_seconds_bucket{session="s",le="1"} 3` + "\n" +
				`lat_seconds_bucket{session="s",le="10"} 3` + "\n" +
				`lat_seconds_bucket{session="s",le="+Inf"} 4` + "\n" +
				`lat_seconds_sum{session="s"} 100.25` + "\n" +
				`lat_seconds_count{session="s"} 4` + "\n",
		},
		{
			name: "histogram without labels",
			fill: func(r *Registry) {
				h := r.Histogram("d_seconds", "D.", []float64{1})
				h.Observe(2)
			},
			want: "# HELP d_seconds D.\n# TYPE d_seconds histogram\n" +
				`d_seconds_bucket{le="1"} 0` + "\n" +
				`d_seconds_bucket{le="+Inf"} 1` + "\n" +
				"d_seconds_sum 2\nd_seconds_count 1\n",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			r := NewRegistry()
			tc.fill(r)
			var b strings.Builder
			if err := r.WritePrometheus(&b); err != nil {
				t.Fatalf("WritePrometheus: %v", err)
			}
			if got := b.String(); got != tc.want {
				t.Errorf("exposition mismatch\n got:\n%s\nwant:\n%s", got, tc.want)
			}
		})
	}
}

func TestRegistryIdempotentAndConflicts(t *testing.T) {
	r := NewRegistry()
	c1 := r.Counter("x_total", "X.", L("a", "1"))
	c2 := r.Counter("x_total", "ignored second help", L("a", "1"))
	if c1 != c2 {
		t.Fatal("same (name, labels) must return the same instrument")
	}
	c3 := r.Counter("x_total", "X.", L("a", "2"))
	if c1 == c3 {
		t.Fatal("distinct labels must return distinct instruments")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("registering a counter name as a gauge must panic")
		}
	}()
	r.Gauge("x_total", "conflict")
}

func TestNilSafety(t *testing.T) {
	var r *Registry
	c := r.Counter("n", "nil")
	g := r.Gauge("n2", "nil")
	h := r.Histogram("n3", "nil", []float64{1})
	c.Add(1)
	c.Inc()
	g.Set(2)
	h.Observe(3)
	if c.Value() != 0 || g.Value() != 0 {
		t.Fatal("nil instruments must read zero")
	}
	if sum, n := h.SumCount(); sum != 0 || n != 0 {
		t.Fatal("nil histogram must read zero")
	}
	if err := r.WritePrometheus(nil); err != nil {
		t.Fatalf("nil registry WritePrometheus: %v", err)
	}
	if r.Names() != nil {
		t.Fatal("nil registry Names must be nil")
	}

	var o *Observer
	s := o.Session("x")
	s.Propose(0, []int{1}, nil)
	s.EpochStart(0, 0, []int{1})
	s.EpochEnd(0, 0, []int{1}, EpochStats{}, false, 0)
	s.Observe(0, 0, 0)
	s.Retrigger(0, 0)
	s.CheckpointWritten(0, 1, 0.001)
	s.StripeDialed(0, 1)
	s.StripeEvicted(0, "test")
	s.SetPool(1)
	s.SetStrategy("cs")
	s.Finish(nil)
	if st := s.Status(); s.ID() != "" || st.ID != "" || st.Epochs != 0 {
		t.Fatal("nil SessionObs must read zero values")
	}
	o.FaultInjected(FaultDialRefusal, "addr")
	o.Event(Event{})
	if o.Registry() != nil || o.Recorder() != nil {
		t.Fatal("nil observer accessors must return nil")
	}
	if got := o.Status(); len(got.Sessions) != 0 {
		t.Fatal("nil observer status must be empty")
	}
	var rec *Recorder
	rec.Record(Event{})
	if rec.Events() != nil || rec.Len() != 0 || rec.Err() != nil {
		t.Fatal("nil recorder must read zero values")
	}
}

// TestInstrumentAllocs pins the zero-allocation contract on the
// instrument hot paths and on the full no-op (nil) instrumentation
// chain, protecting BenchmarkPump's 0 allocs/op.
func TestInstrumentAllocs(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("a_total", "A.")
	g := r.Gauge("g", "G.")
	h := r.Histogram("h_seconds", "H.", DefaultLatencyBuckets)
	var nilSess *SessionObs
	cases := []struct {
		name string
		fn   func()
	}{
		{"counter add", func() { c.Add(1) }},
		{"gauge set", func() { g.Set(3.14) }},
		{"histogram observe", func() { h.Observe(0.25) }},
		{"nil session epoch end", func() {
			nilSess.EpochEnd(0, 0, nil, EpochStats{}, false, 0)
		}},
	}
	for _, tc := range cases {
		if n := testing.AllocsPerRun(100, tc.fn); n != 0 {
			t.Errorf("%s: %v allocs/op, want 0", tc.name, n)
		}
	}
}

func BenchmarkCounterAdd(b *testing.B) {
	c := NewRegistry().Counter("bench_total", "B.")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Add(1)
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	h := NewRegistry().Histogram("bench_seconds", "B.", DefaultLatencyBuckets)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(0.05)
	}
}

func BenchmarkNilSessionEpochEnd(b *testing.B) {
	var s *SessionObs
	st := EpochStats{Throughput: 1e9}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.EpochEnd(0, i, nil, st, false, 3)
	}
}
