package obs

import (
	"encoding/json"
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
)

// Handler returns the introspection mux:
//
//	/metrics        Prometheus text exposition of the registry
//	/status         JSON snapshot of every session's live state
//	/debug/vars     expvar (includes the registry once published)
//	/debug/pprof/*  net/http/pprof profiles
//
// The root path serves a plain-text index of the above. Handler is
// valid on a nil receiver (the endpoints serve empty documents).
func (o *Observer) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = o.Registry().WritePrometheus(w)
	})
	mux.HandleFunc("/status", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(o.Status())
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		fmt.Fprint(w, "dstune observation plane\n\n/metrics\n/status\n/debug/vars\n/debug/pprof/\n")
	})
	return mux
}

// Endpoint is a live introspection server started by Serve.
type Endpoint struct {
	ln  net.Listener
	srv *http.Server
}

// Addr returns the endpoint's bound address (useful with ":0").
func (e *Endpoint) Addr() string { return e.ln.Addr().String() }

// Close shuts the endpoint's listener down.
func (e *Endpoint) Close() error { return e.srv.Close() }

// Serve binds addr (host:port; ":0" picks a free port), publishes the
// registry to expvar, and serves Handler until Close. It returns
// immediately; the accept loop runs on a background goroutine.
func (o *Observer) Serve(addr string) (*Endpoint, error) {
	if o == nil {
		return nil, fmt.Errorf("obs: Serve on nil Observer")
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: listen %s: %w", addr, err)
	}
	o.Registry().PublishExpvar()
	srv := &http.Server{Handler: o.Handler()}
	go func() { _ = srv.Serve(ln) }()
	return &Endpoint{ln: ln, srv: srv}, nil
}
