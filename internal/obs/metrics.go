// Package obs is the observation plane of the tuning stack: a
// zero-dependency metrics registry (Prometheus text exposition plus
// expvar), a structured event stream with a bounded ring buffer and an
// optional JSONL sink, and a live HTTP introspection endpoint serving
// /metrics, /status, /debug/vars, and /debug/pprof.
//
// Every type in the package is nil-safe: methods on a nil *Registry,
// *Counter, *Gauge, *Histogram, *Recorder, *Observer, or *SessionObs
// are no-ops, so instrumented code never has to guard call sites. The
// instrument hot paths (Counter.Add, Gauge.Set, Histogram.Observe) are
// single atomic operations on pre-allocated memory and perform zero
// heap allocations; TestInstrumentAllocs and the package benchmarks
// pin that contract.
//
// Metric and event semantics — names, units, label sets — are
// documented in OBSERVABILITY.md at the repository root; a test fails
// if a registered metric or emitted event type is missing from it.
package obs

import (
	"expvar"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Label is one key/value pair attached to a metric series. Keys must
// be valid Prometheus label names ([a-zA-Z_][a-zA-Z0-9_]*); values are
// arbitrary UTF-8 and are escaped on exposition.
type Label struct {
	// Key is the label name.
	Key string
	// Value is the label value.
	Value string
}

// L is shorthand for constructing a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// metricKind discriminates the instrument types within a family.
type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	case kindHistogram:
		return "histogram"
	}
	return "untyped"
}

// series is the registry's view of one instrument: its canonical label
// rendering plus the value-producing instrument itself.
type series struct {
	labels string // canonical `{k="v",...}` rendering, "" when unlabeled
	inst   interface{ write(w *strings.Builder, name, labels string) }
}

// family groups all series registered under one metric name. A family
// has a single kind and help string; registering the same name with a
// different kind panics (it is a programming error, like a duplicate
// flag).
type family struct {
	name   string
	help   string
	kind   metricKind
	series map[string]*series // keyed by canonical label rendering
}

// Registry holds metric families and renders them in Prometheus text
// exposition format. The zero value is not usable; call NewRegistry.
// A nil *Registry is a valid no-op: instrument constructors return nil
// instruments whose methods do nothing.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// NewRegistry returns an empty metrics registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// renderLabels produces the canonical `{k="v",...}` rendering of a
// label set, sorted by key, with Prometheus value escaping. An empty
// set renders as "".
func renderLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	ls := make([]Label, len(labels))
	copy(ls, labels)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range ls {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(l.Value))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// escapeLabelValue applies Prometheus label-value escaping: backslash,
// double quote, and newline.
func escapeLabelValue(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var b strings.Builder
	for _, r := range v {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// escapeHelp applies Prometheus HELP escaping: backslash and newline.
func escapeHelp(v string) string {
	if !strings.ContainsAny(v, "\\\n") {
		return v
	}
	var b strings.Builder
	for _, r := range v {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// lookup returns the instrument registered under (name, labels),
// creating family and series as needed via mk. Registration is
// idempotent: asking for an existing series returns the existing
// instrument, so packages can re-derive handles freely.
func (r *Registry) lookup(name, help string, kind metricKind, labels []Label, mk func() interface {
	write(w *strings.Builder, name, labels string)
}) interface{} {
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.families[name]
	if !ok {
		f = &family{name: name, help: help, kind: kind, series: make(map[string]*series)}
		r.families[name] = f
	} else if f.kind != kind {
		panic(fmt.Sprintf("obs: metric %q registered as %s and %s", name, f.kind, kind))
	}
	ls := renderLabels(labels)
	s, ok := f.series[ls]
	if !ok {
		s = &series{labels: ls, inst: mk()}
		f.series[ls] = s
	}
	return s.inst
}

// Counter returns the monotonically increasing counter registered
// under name with the given labels, creating it on first use. Returns
// nil (a no-op instrument) when the registry is nil.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	if r == nil {
		return nil
	}
	return r.lookup(name, help, kindCounter, labels, func() interface {
		write(w *strings.Builder, name, labels string)
	} {
		return new(Counter)
	}).(*Counter)
}

// Gauge returns the gauge registered under name with the given labels,
// creating it on first use. Returns nil (a no-op instrument) when the
// registry is nil.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	if r == nil {
		return nil
	}
	return r.lookup(name, help, kindGauge, labels, func() interface {
		write(w *strings.Builder, name, labels string)
	} {
		return new(Gauge)
	}).(*Gauge)
}

// Histogram returns the histogram registered under name with the given
// cumulative bucket upper bounds (ascending; +Inf is implicit) and
// labels, creating it on first use. Returns nil (a no-op instrument)
// when the registry is nil. Buckets are fixed at first registration;
// later calls for the same series ignore the buckets argument.
func (r *Registry) Histogram(name, help string, buckets []float64, labels ...Label) *Histogram {
	if r == nil {
		return nil
	}
	return r.lookup(name, help, kindHistogram, labels, func() interface {
		write(w *strings.Builder, name, labels string)
	} {
		return newHistogram(buckets)
	}).(*Histogram)
}

// WritePrometheus renders every registered family in Prometheus text
// exposition format (version 0.0.4): families sorted by name, series
// within a family sorted by label rendering, one HELP and TYPE line
// per family.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	var b strings.Builder
	r.mu.Lock()
	names := make([]string, 0, len(r.families))
	for name := range r.families {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		f := r.families[name]
		if f.help != "" {
			b.WriteString("# HELP ")
			b.WriteString(name)
			b.WriteByte(' ')
			b.WriteString(escapeHelp(f.help))
			b.WriteByte('\n')
		}
		b.WriteString("# TYPE ")
		b.WriteString(name)
		b.WriteByte(' ')
		b.WriteString(f.kind.String())
		b.WriteByte('\n')
		keys := make([]string, 0, len(f.series))
		for k := range f.series {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			f.series[k].inst.write(&b, name, k)
		}
	}
	r.mu.Unlock()
	_, err := io.WriteString(w, b.String())
	return err
}

// Names returns the sorted names of all registered metric families.
func (r *Registry) Names() []string {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.families))
	for name := range r.families {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// ExpvarFunc returns a func suitable for expvar.Publish(name,
// expvar.Func(...)): a map from "name{labels}" to the series' current
// value (buckets are elided for histograms; sum and count are
// exported).
func (r *Registry) ExpvarFunc() func() any {
	return func() any {
		if r == nil {
			return nil
		}
		out := map[string]any{}
		r.mu.Lock()
		defer r.mu.Unlock()
		for name, f := range r.families {
			for ls, s := range f.series {
				switch inst := s.inst.(type) {
				case *Counter:
					out[name+ls] = inst.Value()
				case *Gauge:
					out[name+ls] = inst.Value()
				case *Histogram:
					sum, count := inst.SumCount()
					out[name+ls+":sum"] = sum
					out[name+ls+":count"] = count
				}
			}
		}
		return out
	}
}

// publishOnce guards global expvar publication: expvar panics on
// duplicate names, and tests construct many registries.
var publishOnce sync.Once

// PublishExpvar publishes the registry under the expvar name "dstune".
// Only the first registry published process-wide wins; later calls are
// no-ops (expvar's namespace is global and append-only).
func (r *Registry) PublishExpvar() {
	if r == nil {
		return
	}
	publishOnce.Do(func() {
		expvar.Publish("dstune", expvar.Func(r.ExpvarFunc()))
	})
}

// Counter is a monotonically increasing metric. The zero value is
// ready to use; a nil *Counter is a no-op. Add is a single atomic
// add and never allocates.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n. Negative n is ignored (counters are
// monotonic). No-op on a nil receiver.
func (c *Counter) Add(n int64) {
	if c == nil || n < 0 {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one. No-op on a nil receiver.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count; zero on a nil receiver.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

func (c *Counter) write(b *strings.Builder, name, labels string) {
	b.WriteString(name)
	b.WriteString(labels)
	b.WriteByte(' ')
	b.WriteString(strconv.FormatInt(c.Value(), 10))
	b.WriteByte('\n')
}

// Gauge is a metric that can go up and down, stored as float64 bits.
// The zero value is ready to use; a nil *Gauge is a no-op. Set is a
// single atomic store and never allocates.
type Gauge struct {
	bits atomic.Uint64
}

// Set replaces the gauge value. No-op on a nil receiver.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Value returns the current gauge value; zero on a nil receiver.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

func (g *Gauge) write(b *strings.Builder, name, labels string) {
	b.WriteString(name)
	b.WriteString(labels)
	b.WriteByte(' ')
	writeFloat(b, g.Value())
	b.WriteByte('\n')
}

// Histogram counts observations into fixed cumulative buckets. The
// bucket bounds are set at construction; a nil *Histogram is a no-op.
// Observe is a bounds scan plus two atomic adds and never allocates.
type Histogram struct {
	bounds  []float64 // ascending upper bounds, +Inf excluded
	counts  []atomic.Int64
	inf     atomic.Int64
	sumBits atomic.Uint64 // float64 bits, CAS-accumulated
	count   atomic.Int64
}

// DefaultLatencyBuckets is a general-purpose set of second-denominated
// bounds spanning 1 ms to ~65 s in powers of four.
var DefaultLatencyBuckets = []float64{0.001, 0.004, 0.016, 0.064, 0.256, 1.024, 4.096, 16.384, 65.536}

// DefaultRateBuckets is a bytes/second-denominated set of bounds
// spanning 1 MB/s to ~64 GB/s in powers of four, for throughput-like
// distributions (the kernel's per-stripe delivery-rate estimate).
var DefaultRateBuckets = []float64{1e6, 4e6, 16e6, 64e6, 256e6, 1.024e9, 4.096e9, 16.384e9, 65.536e9}

func newHistogram(buckets []float64) *Histogram {
	bounds := make([]float64, 0, len(buckets))
	for _, b := range buckets {
		if math.IsInf(b, +1) {
			continue // +Inf bucket is implicit
		}
		bounds = append(bounds, b)
	}
	sort.Float64s(bounds)
	return &Histogram{bounds: bounds, counts: make([]atomic.Int64, len(bounds))}
}

// Observe records one observation. No-op on a nil receiver; NaN is
// ignored.
func (h *Histogram) Observe(v float64) {
	if h == nil || math.IsNaN(v) {
		return
	}
	placed := false
	for i, b := range h.bounds {
		if v <= b {
			h.counts[i].Add(1)
			placed = true
			break
		}
	}
	if !placed {
		h.inf.Add(1)
	}
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// SumCount returns the running sum and count of observations; zeros on
// a nil receiver.
func (h *Histogram) SumCount() (sum float64, count int64) {
	if h == nil {
		return 0, 0
	}
	return math.Float64frombits(h.sumBits.Load()), h.count.Load()
}

func (h *Histogram) write(b *strings.Builder, name, labels string) {
	// Prometheus histograms expose cumulative bucket counts with an
	// le label merged into the series' own labels.
	cum := int64(0)
	for i, bound := range h.bounds {
		cum += h.counts[i].Load()
		writeBucket(b, name, labels, strconv.FormatFloat(bound, 'g', -1, 64), cum)
	}
	cum += h.inf.Load()
	writeBucket(b, name, labels, "+Inf", cum)
	sum, count := h.SumCount()
	b.WriteString(name)
	b.WriteString("_sum")
	b.WriteString(labels)
	b.WriteByte(' ')
	writeFloat(b, sum)
	b.WriteByte('\n')
	b.WriteString(name)
	b.WriteString("_count")
	b.WriteString(labels)
	b.WriteByte(' ')
	b.WriteString(strconv.FormatInt(count, 10))
	b.WriteByte('\n')
}

// writeBucket emits one cumulative `name_bucket{...,le="bound"} n`
// line, splicing le into an existing label rendering when present.
func writeBucket(b *strings.Builder, name, labels, le string, n int64) {
	b.WriteString(name)
	b.WriteString("_bucket")
	if labels == "" {
		b.WriteString(`{le="`)
		b.WriteString(le)
		b.WriteString(`"}`)
	} else {
		b.WriteString(labels[:len(labels)-1]) // strip trailing '}'
		b.WriteString(`,le="`)
		b.WriteString(le)
		b.WriteString(`"}`)
	}
	b.WriteByte(' ')
	b.WriteString(strconv.FormatInt(n, 10))
	b.WriteByte('\n')
}

// writeFloat renders a float in Prometheus exposition form: shortest
// round-trip decimal, with +Inf/-Inf/NaN spelled out.
func writeFloat(b *strings.Builder, v float64) {
	switch {
	case math.IsInf(v, +1):
		b.WriteString("+Inf")
	case math.IsInf(v, -1):
		b.WriteString("-Inf")
	case math.IsNaN(v):
		b.WriteString("NaN")
	default:
		b.WriteString(strconv.FormatFloat(v, 'g', -1, 64))
	}
}
