package obs

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestObservabilityDocCoverage pins the documentation contract: every
// metric family an Observer can register and every event type the
// Recorder can emit must appear by name in OBSERVABILITY.md. A new
// instrument without documentation fails here before it ships.
func TestObservabilityDocCoverage(t *testing.T) {
	doc, err := os.ReadFile(filepath.Join("..", "..", "OBSERVABILITY.md"))
	if err != nil {
		t.Fatal(err)
	}
	text := string(doc)

	// Materialize every instrument: a full session lifecycle, server
	// metrics, and a fault, so Registry().Names() lists the complete
	// family set.
	o := NewObserver(ObserverConfig{})
	s := o.Session("doc")
	s.SetStrategy("cs-tuner")
	s.Propose(0, []int{2}, nil)
	s.EpochStart(0, 0, []int{2})
	s.EpochEnd(5, 0, []int{2}, EpochStats{Throughput: 1, Bytes: 5}, false, 2)
	s.Observe(5, 0, 0)
	s.Retrigger(5, 0.1)
	s.CheckpointWritten(5, 1, 0.001)
	s.StripeDialed(5, 1)
	s.StripeEvicted(5, "x")
	s.WarmStart(0, []int{14}, true)
	s.WarmStart(0, nil, false)
	s.RLAction(6, 1, []int{14}, 3, 0.2, 1.5e9, true)
	s.RLAction(7, 2, []int{14}, 3, 0.18, 1.5e9, false)
	s.HistoryRecorded()
	o.ServerMetrics().Conn()
	o.ServerMetrics().AddBytes(1)
	o.ServerMetrics().SetTokens(1)
	o.ServerMetrics().Expired(1)
	o.FaultInjected(FaultReset, "x")
	d := o.Daemon()
	d.Submitted()
	d.Rejected("queue-full")
	d.JobAdmitted("job-1", "tenant-a")
	d.JobAdopted("job-1", 3)
	d.JobEvicted("job-1", "fault-budget")
	d.JobDone(nil, false)
	d.SetQueueDepth(1)
	d.SetActive(1)
	d.SetShardSessions("0", 1)
	d.RoundObserved("0", 0.01)
	d.SetTenantActive("tenant-a", 1)
	d.TenantFaults("tenant-a", 1)

	for _, name := range o.Registry().Names() {
		if !strings.Contains(text, name) {
			t.Errorf("metric %q is not documented in OBSERVABILITY.md", name)
		}
	}
	for _, et := range EventTypes() {
		if !strings.Contains(text, string(et)) {
			t.Errorf("event type %q is not documented in OBSERVABILITY.md", et)
		}
	}
}
