package obs

import (
	"sync"
)

// ObserverConfig configures NewObserver.
type ObserverConfig struct {
	// EventBuffer is the Recorder ring capacity; DefaultEventBuffer
	// when zero.
	EventBuffer int
	// EventSink, when non-nil, receives every event as one JSON line
	// (a JSONL trace).
	EventSink interface{ Write(p []byte) (int, error) }
}

// Observer is the top-level observation handle: one metrics Registry,
// one event Recorder, and the set of per-session views feeding the
// /status endpoint. A nil *Observer is a valid no-op, as are all
// handles derived from it.
type Observer struct {
	reg *Registry
	rec *Recorder

	mu       sync.Mutex
	sessions []*SessionObs
	byID     map[string]*SessionObs
}

// NewObserver returns an Observer with a fresh registry and recorder.
func NewObserver(cfg ObserverConfig) *Observer {
	return &Observer{
		reg:  NewRegistry(),
		rec:  NewRecorder(cfg.EventBuffer, cfg.EventSink),
		byID: make(map[string]*SessionObs),
	}
}

// Registry returns the observer's metrics registry; nil on a nil
// receiver.
func (o *Observer) Registry() *Registry {
	if o == nil {
		return nil
	}
	return o.reg
}

// Recorder returns the observer's event recorder; nil on a nil
// receiver.
func (o *Observer) Recorder() *Recorder {
	if o == nil {
		return nil
	}
	return o.rec
}

// Event records a raw event. Most call sites should go through a
// SessionObs method instead; Event exists for session-less emitters
// such as faultnet. No-op on a nil receiver.
func (o *Observer) Event(ev Event) {
	if o == nil {
		return
	}
	o.rec.Record(ev)
}

// Metric names emitted by the stack. Each is documented in
// OBSERVABILITY.md; TestMetricsDocumented fails when one is missing.
const (
	// MetricEpochs counts completed control epochs per session.
	MetricEpochs = "dstune_epochs_total"
	// MetricThroughput is the last epoch's mean throughput (bytes/s).
	MetricThroughput = "dstune_epoch_throughput_bytes_per_second"
	// MetricBestCase is the last epoch's dead-time-compensated
	// throughput (bytes/s).
	MetricBestCase = "dstune_epoch_bestcase_bytes_per_second"
	// MetricDeadTime is the per-epoch dead-time distribution
	// (seconds).
	MetricDeadTime = "dstune_epoch_dead_seconds"
	// MetricBytes counts payload bytes acknowledged per session.
	MetricBytes = "dstune_bytes_total"
	// MetricParamNC is the current concurrency (nc) parameter.
	MetricParamNC = "dstune_param_nc"
	// MetricParamNP is the current parallelism (np) parameter.
	MetricParamNP = "dstune_param_np"
	// MetricParamPP is the current pipelining depth (pp) parameter.
	MetricParamPP = "dstune_param_pp"
	// MetricFilesCompleted counts dataset files completed (receiver
	// truth) per session.
	MetricFilesCompleted = "gridftp_files_completed_total"
	// MetricFirstByteLag is the per-epoch distribution of the delay
	// between epoch start and the first payload byte (seconds).
	MetricFirstByteLag = "gridftp_first_byte_lag_seconds"
	// MetricDials counts new data connections established.
	MetricDials = "dstune_dials_total"
	// MetricReused counts warm streams reused instead of dialed.
	MetricReused = "dstune_reused_streams_total"
	// MetricRetries counts transient-error retries inside epochs.
	MetricRetries = "dstune_retries_total"
	// MetricDegraded counts stream-slots that ran below the requested
	// concurrency.
	MetricDegraded = "dstune_degraded_streams_total"
	// MetricTransientEpochs counts epochs lost to transient failures.
	MetricTransientEpochs = "dstune_transient_epochs_total"
	// MetricTransientBudget is the remaining consecutive transient
	// failures the session tolerates before giving up.
	MetricTransientBudget = "dstune_transient_budget"
	// MetricRetriggers counts ε-monitor search restarts.
	MetricRetriggers = "dstune_retriggers_total"
	// MetricCheckpointWrites counts durable checkpoint writes.
	MetricCheckpointWrites = "dstune_checkpoint_writes_total"
	// MetricCheckpointSeconds is the checkpoint write-latency
	// distribution (wall seconds).
	MetricCheckpointSeconds = "dstune_checkpoint_write_seconds"
	// MetricWarmPool is the number of idle warm streams pooled between
	// epochs.
	MetricWarmPool = "dstune_warm_pool_streams"
	// MetricStripeEvictions counts dead stripes evicted from the warm
	// pool.
	MetricStripeEvictions = "dstune_stripe_evictions_total"
	// MetricFaults counts injected faults by kind.
	MetricFaults = "dstune_faults_injected_total"
	// MetricServerConns counts control/data connections accepted by
	// gridftpd.
	MetricServerConns = "gridftpd_connections_total"
	// MetricServerBytes counts payload bytes received by gridftpd.
	MetricServerBytes = "gridftpd_bytes_received_total"
	// MetricServerTokens is the number of live transfer tokens on
	// gridftpd.
	MetricServerTokens = "gridftpd_tokens"
	// MetricServerExpired counts transfer tokens expired by the
	// gridftpd janitor.
	MetricServerExpired = "gridftpd_expired_tokens_total"
	// MetricHistoryHits counts history-store lookups that warm-started
	// a session with a prediction.
	MetricHistoryHits = "dstune_history_hits_total"
	// MetricHistoryMisses counts history-store lookups that found no
	// usable prediction (the session cold-started).
	MetricHistoryMisses = "dstune_history_misses_total"
	// MetricHistoryRecords counts tuning outcomes recorded into the
	// history store.
	MetricHistoryRecords = "dstune_history_records_total"
	// MetricStripeRTT is the distribution of per-stripe kernel
	// smoothed RTT samples at epoch boundaries (seconds).
	MetricStripeRTT = "gridftp_stripe_rtt_seconds"
	// MetricStripeCwnd is the last sampled per-stripe congestion
	// window (segments).
	MetricStripeCwnd = "gridftp_stripe_cwnd_segments"
	// MetricStripeRate is the distribution of per-stripe kernel
	// delivery-rate estimates (bytes/s).
	MetricStripeRate = "gridftp_stripe_delivery_bytes_per_second"
	// MetricStripeRetrans counts retransmitted segments observed
	// across the stripe between epoch-boundary samples.
	MetricStripeRetrans = "gridftp_stripe_retransmits_total"
	// MetricRLExplorations counts epochs where a learned strategy's
	// RNG forced a random (exploring) action instead of the greedy
	// one.
	MetricRLExplorations = "dstune_rl_explorations_total"
	// MetricRLQValue is the value estimate of the action a learned
	// strategy most recently committed to.
	MetricRLQValue = "dstune_rl_q_value"
	// MetricRLEpsilon is the learned strategy's current exploration
	// probability (decays with context visits).
	MetricRLEpsilon = "dstune_rl_epsilon"
)

// EpochStats is the per-epoch observation a SessionObs ingests. It
// mirrors the authoritative xfer.Report fields without importing xfer,
// keeping obs dependency-free.
type EpochStats struct {
	// Throughput is mean payload throughput over the epoch (bytes/s).
	Throughput float64
	// BestCase is throughput with dead time excluded (bytes/s).
	BestCase float64
	// Bytes is the payload volume acknowledged this epoch.
	Bytes float64
	// DeadTime is non-transferring time within the epoch (seconds).
	DeadTime float64
	// Dials counts connections established this epoch.
	Dials int
	// ReusedStreams counts warm streams reused this epoch.
	ReusedStreams int
	// Retries counts transient-error retries this epoch.
	Retries int
	// DegradedStreams counts stream-slots below requested concurrency.
	DegradedStreams int
	// Files counts dataset files completed this epoch (receiver
	// truth; zero for bulk memory-to-memory epochs).
	Files int
	// FirstByteLag is the delay between the epoch's start and its
	// first payload byte, in seconds (zero when unmeasured).
	FirstByteLag float64
}

// SessionStatus is one session's live state as served by /status.
type SessionStatus struct {
	// ID is the session's stable identifier.
	ID string `json:"id"`
	// Strategy is the tuning strategy name.
	Strategy string `json:"strategy,omitempty"`
	// Epochs is the number of completed epochs.
	Epochs int `json:"epochs"`
	// X is the parameter vector currently in play.
	X []int `json:"x,omitempty"`
	// Throughput is the last observed mean throughput (bytes/s).
	Throughput float64 `json:"throughput"`
	// BestCase is the last dead-time-compensated throughput (bytes/s).
	BestCase float64 `json:"best_case"`
	// Bytes is the cumulative payload volume (bytes).
	Bytes float64 `json:"bytes"`
	// DeadTime is the last epoch's dead time (seconds).
	DeadTime float64 `json:"dead_seconds"`
	// Dials is the cumulative count of connections established.
	Dials int `json:"dials"`
	// ReusedStreams is the cumulative count of warm streams reused.
	ReusedStreams int `json:"reused_streams"`
	// Retries is the cumulative transient-retry count.
	Retries int `json:"retries"`
	// DegradedStreams is the cumulative degraded stream-slot count.
	DegradedStreams int `json:"degraded_streams"`
	// Files is the cumulative count of dataset files completed.
	Files int `json:"files,omitempty"`
	// TransientEpochs counts epochs lost to transient failures.
	TransientEpochs int `json:"transient_epochs"`
	// TransientBudget is the remaining tolerated consecutive transient
	// failures.
	TransientBudget int `json:"transient_budget"`
	// Retriggers counts ε-monitor search restarts.
	Retriggers int `json:"retriggers"`
	// Checkpoints counts durable checkpoint writes.
	Checkpoints int `json:"checkpoints"`
	// Clock is the transfer clock at the last event (seconds).
	Clock float64 `json:"clock_seconds"`
	// Done reports whether the session has finished.
	Done bool `json:"done"`
	// Err is the terminal error, if the session failed.
	Err string `json:"error,omitempty"`
}

// Status is the /status document: every registered session, in
// registration order.
type Status struct {
	// Sessions lists each session's live state.
	Sessions []SessionStatus `json:"sessions"`
}

// Status snapshots every session's live state. Nil receiver returns a
// zero Status.
func (o *Observer) Status() Status {
	if o == nil {
		return Status{}
	}
	o.mu.Lock()
	sessions := make([]*SessionObs, len(o.sessions))
	copy(sessions, o.sessions)
	o.mu.Unlock()
	st := Status{Sessions: make([]SessionStatus, 0, len(sessions))}
	for _, s := range sessions {
		st.Sessions = append(st.Sessions, s.Status())
	}
	return st
}

// Session returns the session view registered under id, creating it on
// first use. Sessions appear in /status in creation order and label
// every session-scoped metric with session=id. Returns nil (a no-op
// view) on a nil receiver.
func (o *Observer) Session(id string) *SessionObs {
	if o == nil {
		return nil
	}
	o.mu.Lock()
	if s, ok := o.byID[id]; ok {
		o.mu.Unlock()
		return s
	}
	o.mu.Unlock()

	lbl := L("session", id)
	s := &SessionObs{
		o:          o,
		id:         id,
		epochs:     o.reg.Counter(MetricEpochs, "Completed control epochs.", lbl),
		bytes:      o.reg.Counter(MetricBytes, "Payload bytes acknowledged.", lbl),
		dials:      o.reg.Counter(MetricDials, "New data connections established.", lbl),
		reused:     o.reg.Counter(MetricReused, "Warm streams reused instead of dialed.", lbl),
		retries:    o.reg.Counter(MetricRetries, "Transient-error retries inside epochs.", lbl),
		degraded:   o.reg.Counter(MetricDegraded, "Stream-slots run below requested concurrency.", lbl),
		transient:  o.reg.Counter(MetricTransientEpochs, "Epochs lost to transient failures.", lbl),
		retriggers: o.reg.Counter(MetricRetriggers, "Epsilon-monitor search restarts.", lbl),
		ckWrites:   o.reg.Counter(MetricCheckpointWrites, "Durable checkpoint writes.", lbl),
		evictions:  o.reg.Counter(MetricStripeEvictions, "Dead stripes evicted from the warm pool.", lbl),
		histHits:   o.reg.Counter(MetricHistoryHits, "History lookups that warm-started the session.", lbl),
		histMisses: o.reg.Counter(MetricHistoryMisses, "History lookups without a usable prediction.", lbl),
		histRecs:   o.reg.Counter(MetricHistoryRecords, "Tuning outcomes recorded into the history store.", lbl),
		files:      o.reg.Counter(MetricFilesCompleted, "Dataset files completed (receiver truth).", lbl),
		throughput: o.reg.Gauge(MetricThroughput, "Last epoch mean throughput in bytes/second.", lbl),
		bestCase:   o.reg.Gauge(MetricBestCase, "Last epoch dead-time-compensated throughput in bytes/second.", lbl),
		nc:         o.reg.Gauge(MetricParamNC, "Current concurrency (nc) parameter.", lbl),
		np:         o.reg.Gauge(MetricParamNP, "Current parallelism (np) parameter.", lbl),
		pp:         o.reg.Gauge(MetricParamPP, "Current pipelining depth (pp) parameter.", lbl),
		budget:     o.reg.Gauge(MetricTransientBudget, "Remaining tolerated consecutive transient failures.", lbl),
		pool:       o.reg.Gauge(MetricWarmPool, "Idle warm streams pooled between epochs.", lbl),
		deadTime:   o.reg.Histogram(MetricDeadTime, "Per-epoch dead time in seconds.", DefaultLatencyBuckets, lbl),
		ckSeconds:  o.reg.Histogram(MetricCheckpointSeconds, "Checkpoint write latency in wall seconds.", DefaultLatencyBuckets, lbl),
		firstByte:  o.reg.Histogram(MetricFirstByteLag, "Delay from epoch start to first payload byte in seconds.", DefaultLatencyBuckets, lbl),
		stripeRTT:  o.reg.Histogram(MetricStripeRTT, "Per-stripe kernel smoothed RTT at epoch boundaries in seconds.", DefaultLatencyBuckets, lbl),
		stripeRate: o.reg.Histogram(MetricStripeRate, "Per-stripe kernel delivery-rate estimate in bytes/second.", DefaultRateBuckets, lbl),
		stripeCwnd: o.reg.Gauge(MetricStripeCwnd, "Last sampled per-stripe congestion window in segments.", lbl),
		stripeRtx:  o.reg.Counter(MetricStripeRetrans, "Retransmitted segments observed between epoch-boundary samples.", lbl),
		rlExplore:  o.reg.Counter(MetricRLExplorations, "Epochs where the learned strategy explored a random action.", lbl),
		rlQ:        o.reg.Gauge(MetricRLQValue, "Value estimate of the learned strategy's chosen action.", lbl),
		rlEps:      o.reg.Gauge(MetricRLEpsilon, "Learned strategy's current exploration probability.", lbl),
	}
	s.st.ID = id

	o.mu.Lock()
	defer o.mu.Unlock()
	if prior, ok := o.byID[id]; ok {
		return prior // lost a registration race; instruments are shared anyway
	}
	o.byID[id] = s
	o.sessions = append(o.sessions, s)
	return s
}

// SessionObs is one session's observation view: it owns the session's
// metric instruments, feeds /status, and emits session-scoped events.
// A nil *SessionObs is a valid no-op. All methods are safe for
// concurrent use.
type SessionObs struct {
	o  *Observer
	id string

	epochs, bytes, dials, reused, retries, degraded  *Counter
	transient, retriggers, ckWrites, evictions       *Counter
	histHits, histMisses, histRecs, files, stripeRtx *Counter
	rlExplore                                        *Counter
	throughput, bestCase, nc, np, pp, budget, pool   *Gauge
	stripeCwnd, rlQ, rlEps                           *Gauge
	deadTime, ckSeconds, firstByte, stripeRTT        *Histogram
	stripeRate                                       *Histogram

	mu sync.Mutex
	st SessionStatus
}

// ID returns the session's stable identifier; "" on a nil receiver.
func (s *SessionObs) ID() string {
	if s == nil {
		return ""
	}
	return s.id
}

// Status snapshots the session's live state; a zero value on a nil
// receiver.
func (s *SessionObs) Status() SessionStatus {
	if s == nil {
		return SessionStatus{}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.st
	st.X = append([]int(nil), s.st.X...)
	return st
}

// SetStrategy records the session's strategy name for /status.
func (s *SessionObs) SetStrategy(name string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.st.Strategy = name
	s.mu.Unlock()
}

// setParams mirrors the leading parameter dimensions into the nc/np
// gauges and the status vector. Callers hold s.mu.
func (s *SessionObs) setParams(x []int) {
	s.st.X = append(s.st.X[:0], x...)
	if len(x) > 0 {
		s.nc.Set(float64(x[0]))
	}
	if len(x) > 1 {
		s.np.Set(float64(x[1]))
	}
	if len(x) > 2 {
		s.pp.Set(float64(x[2]))
	}
}

// Propose records the strategy proposing vector x at transfer clock t,
// with prev the previously proposed vector (nil on the first epoch).
func (s *SessionObs) Propose(t float64, x, prev []int) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.setParams(x)
	s.st.Clock = t
	epoch := s.st.Epochs
	s.mu.Unlock()
	s.o.Event(Event{T: t, Type: EventPropose, Session: s.id, Epoch: epoch,
		X: append([]int(nil), x...), Prev: append([]int(nil), prev...)})
}

// EpochStart records the data plane beginning epoch with vector x at
// transfer clock t.
func (s *SessionObs) EpochStart(t float64, epoch int, x []int) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.setParams(x)
	s.st.Clock = t
	s.mu.Unlock()
	s.o.Event(Event{T: t, Type: EventEpochStart, Session: s.id, Epoch: epoch,
		X: append([]int(nil), x...)})
}

// EpochEnd records the epoch's observed report. transient marks an
// epoch synthesized from a transient failure (its stats are zero);
// budget is the remaining transient-failure budget after this epoch.
func (s *SessionObs) EpochEnd(t float64, epoch int, x []int, rep EpochStats, transient bool, budget int) {
	if s == nil {
		return
	}
	s.epochs.Inc()
	s.bytes.Add(int64(rep.Bytes))
	s.dials.Add(int64(rep.Dials))
	s.reused.Add(int64(rep.ReusedStreams))
	s.retries.Add(int64(rep.Retries))
	s.degraded.Add(int64(rep.DegradedStreams))
	s.files.Add(int64(rep.Files))
	s.throughput.Set(rep.Throughput)
	s.bestCase.Set(rep.BestCase)
	s.deadTime.Observe(rep.DeadTime)
	if rep.FirstByteLag > 0 {
		s.firstByte.Observe(rep.FirstByteLag)
	}
	s.budget.Set(float64(budget))
	if transient {
		s.transient.Inc()
	}
	s.mu.Lock()
	s.st.Epochs = epoch + 1
	s.st.Throughput = rep.Throughput
	s.st.BestCase = rep.BestCase
	s.st.Bytes += rep.Bytes
	s.st.DeadTime = rep.DeadTime
	s.st.Dials += rep.Dials
	s.st.ReusedStreams += rep.ReusedStreams
	s.st.Retries += rep.Retries
	s.st.DegradedStreams += rep.DegradedStreams
	s.st.Files += rep.Files
	s.st.TransientBudget = budget
	if transient {
		s.st.TransientEpochs++
	}
	s.st.Clock = t
	s.mu.Unlock()
	s.o.Event(Event{T: t, Type: EventEpochEnd, Session: s.id, Epoch: epoch,
		X: append([]int(nil), x...), Throughput: rep.Throughput,
		BestCase: rep.BestCase, Bytes: rep.Bytes, DeadTime: rep.DeadTime,
		Dials: rep.Dials, Reused: rep.ReusedStreams, Retries: rep.Retries,
		Degraded: rep.DegradedStreams, Transient: transient})
	if rep.Files > 0 {
		s.o.Event(Event{T: t, Type: EventFileCompleted, Session: s.id,
			Epoch: epoch, Files: rep.Files})
	}
}

// Observe records the fitness delta handed to the strategy: delta is
// the relative change against the previous observation (0 on the
// first).
func (s *SessionObs) Observe(t float64, epoch int, delta float64) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.st.Clock = t
	s.mu.Unlock()
	s.o.Event(Event{T: t, Type: EventObserve, Session: s.id, Epoch: epoch, Delta: delta})
}

// Retrigger records an armed ε-monitor restarting the search after
// observing relative change delta.
func (s *SessionObs) Retrigger(t float64, delta float64) {
	if s == nil {
		return
	}
	s.retriggers.Inc()
	s.mu.Lock()
	s.st.Retriggers++
	epoch := s.st.Epochs
	s.mu.Unlock()
	s.o.Event(Event{T: t, Type: EventRetriggerEpsilon, Session: s.id, Epoch: epoch, Delta: delta})
}

// CheckpointWritten records a durable checkpoint write covering epochs
// completed epochs, taking seconds of wall time. The latency lands in
// metrics only — never in the event — so Sim-backed traces stay
// deterministic.
func (s *SessionObs) CheckpointWritten(t float64, epochs int, seconds float64) {
	if s == nil {
		return
	}
	s.ckWrites.Inc()
	s.ckSeconds.Observe(seconds)
	s.mu.Lock()
	s.st.Checkpoints++
	s.mu.Unlock()
	s.o.Event(Event{T: t, Type: EventCheckpointWritten, Session: s.id, Epoch: epochs})
}

// WarmStart records a strategy consulting the history knowledge plane
// at construction (transfer clock t, normally 0): on a hit, x is the
// adopted prediction; on a miss, x is nil and the session cold-starts.
func (s *SessionObs) WarmStart(t float64, x []int, hit bool) {
	if s == nil {
		return
	}
	detail := "miss"
	if hit {
		s.histHits.Inc()
		detail = "hit"
	} else {
		s.histMisses.Inc()
	}
	s.o.Event(Event{T: t, Type: EventWarmStart, Session: s.id,
		X: append([]int(nil), x...), Detail: detail})
}

// RLAction records a learned strategy committing to its next action:
// the chosen vector, the load-context bucket it was chosen in, the
// exploration probability in force, the action's value estimate, and
// whether the RNG forced exploration. Bumps the exploration counter
// on explore and keeps the q-value/epsilon gauges current.
func (s *SessionObs) RLAction(t float64, epoch int, x []int, bucket int, eps, q float64, explore bool) {
	if s == nil {
		return
	}
	detail := "exploit"
	if explore {
		s.rlExplore.Inc()
		detail = "explore"
	}
	s.rlQ.Set(q)
	s.rlEps.Set(eps)
	s.o.Event(Event{T: t, Type: EventRLAction, Session: s.id, Epoch: epoch,
		X: append([]int(nil), x...), Bucket: bucket, Epsilon: eps, QValue: q,
		Detail: detail})
}

// HistoryRecorded counts a tuning outcome recorded into the history
// store. It moves metrics only — no event — because recording happens
// at run teardown, where an event's timestamp would be wall-clock
// noise in otherwise deterministic traces.
func (s *SessionObs) HistoryRecorded() {
	if s == nil {
		return
	}
	s.histRecs.Inc()
}

// StripeDialed records the warm data plane establishing a new stripe
// connection; pool is the resulting live stripe count.
func (s *SessionObs) StripeDialed(t float64, pool int) {
	if s == nil {
		return
	}
	s.pool.Set(float64(pool))
	s.o.Event(Event{T: t, Type: EventStripeDialed, Session: s.id, Dials: 1})
}

// StripeEvicted records a dead stripe leaving the warm pool; detail
// carries the eviction reason.
func (s *SessionObs) StripeEvicted(t float64, detail string) {
	if s == nil {
		return
	}
	s.evictions.Inc()
	s.o.Event(Event{T: t, Type: EventStripeEvicted, Session: s.id, Detail: detail})
}

// StripeKernel records one data stripe's kernel TCP sample at an
// epoch boundary (getsockopt(TCP_INFO)): the smoothed RTT and its
// variance in seconds, the congestion window in segments, the
// kernel's delivery-rate estimate in bytes/second (zero when the
// kernel reports none), and the stripe's cumulative retransmit
// counter.
func (s *SessionObs) StripeKernel(t float64, stripe, cwnd int, rtt, rttvar, rate float64, retrans int64) {
	if s == nil {
		return
	}
	s.stripeRTT.Observe(rtt)
	s.stripeCwnd.Set(float64(cwnd))
	if rate > 0 {
		s.stripeRate.Observe(rate)
	}
	s.o.Event(Event{T: t, Type: EventStripeKernelStats, Session: s.id,
		Stripe: stripe, RTT: rtt, RTTVar: rttvar, Cwnd: cwnd, Rate: rate,
		Retrans: retrans})
}

// KernelRetrans counts n retransmitted segments observed across the
// stripe since the previous epoch-boundary sample.
func (s *SessionObs) KernelRetrans(n int64) {
	if s == nil {
		return
	}
	s.stripeRtx.Add(n)
}

// SetPool updates the warm-pool gauge without emitting an event (used
// when stripes are parked between epochs).
func (s *SessionObs) SetPool(n int) {
	if s == nil {
		return
	}
	s.pool.Set(float64(n))
}

// Finish marks the session done, recording its terminal error if any.
func (s *SessionObs) Finish(err error) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.st.Done = true
	if err != nil {
		s.st.Err = err.Error()
	}
	s.mu.Unlock()
}

// FaultKind labels an injected fault for metrics and events.
type FaultKind string

// The fault vocabulary of the faultnet fabric.
const (
	// FaultDialRefusal is an injected connection refusal at dial time.
	FaultDialRefusal FaultKind = "dial-refusal"
	// FaultReset is an injected mid-stream connection reset.
	FaultReset FaultKind = "reset"
)

// FaultInjected records the faultnet fabric injecting a fault of the
// given kind; detail carries the affected address. No-op on a nil
// receiver.
func (o *Observer) FaultInjected(kind FaultKind, detail string) {
	if o == nil {
		return
	}
	o.reg.Counter(MetricFaults, "Injected faults by kind.", L("kind", string(kind))).Inc()
	o.Event(Event{Type: EventFaultInjected, Detail: string(kind) + " " + detail})
}

// ServerMetrics is gridftpd's instrument bundle. A nil *ServerMetrics
// is a valid no-op; all methods are safe for concurrent use.
type ServerMetrics struct {
	conns   *Counter
	bytes   *Counter
	tokens  *Gauge
	expired *Counter
}

// ServerMetrics registers and returns gridftpd's instrument bundle;
// nil on a nil receiver.
func (o *Observer) ServerMetrics() *ServerMetrics {
	if o == nil {
		return nil
	}
	return &ServerMetrics{
		conns:   o.reg.Counter(MetricServerConns, "Connections accepted by gridftpd."),
		bytes:   o.reg.Counter(MetricServerBytes, "Payload bytes received by gridftpd."),
		tokens:  o.reg.Gauge(MetricServerTokens, "Live transfer tokens on gridftpd."),
		expired: o.reg.Counter(MetricServerExpired, "Transfer tokens expired by the janitor."),
	}
}

// Conn counts one accepted connection.
func (m *ServerMetrics) Conn() {
	if m == nil {
		return
	}
	m.conns.Inc()
}

// AddBytes counts n received payload bytes.
func (m *ServerMetrics) AddBytes(n int64) {
	if m == nil {
		return
	}
	m.bytes.Add(n)
}

// SetTokens updates the live transfer-token gauge.
func (m *ServerMetrics) SetTokens(n int) {
	if m == nil {
		return
	}
	m.tokens.Set(float64(n))
}

// Expired counts n tokens expired by the janitor.
func (m *ServerMetrics) Expired(n int) {
	if m == nil {
		return
	}
	m.expired.Add(int64(n))
}
