package obs

import (
	"encoding/json"
	"io"
	"sync"
)

// EventType names one kind of structured event in the trace stream.
// Every type emitted by the stack is listed in EventTypes and
// documented in OBSERVABILITY.md.
type EventType string

// The event vocabulary of the tuning stack.
const (
	// EventEpochStart marks the Driver handing a parameter vector to
	// the data plane for one epoch.
	EventEpochStart EventType = "EpochStart"
	// EventEpochEnd carries the epoch's observed report: throughput,
	// dead time, stream accounting, and whether the epoch failed
	// transiently.
	EventEpochEnd EventType = "EpochEnd"
	// EventPropose records the strategy's next parameter vector and
	// the delta from the previous proposal.
	EventPropose EventType = "Propose"
	// EventObserve records the fitness handed back to the strategy and
	// its relative change against the previous observation.
	EventObserve EventType = "Observe"
	// EventStripeDialed marks a new data stripe connection being
	// established by the warm data plane.
	EventStripeDialed EventType = "StripeDialed"
	// EventStripeEvicted marks a dead stripe being evicted from the
	// warm pool.
	EventStripeEvicted EventType = "StripeEvicted"
	// EventRetriggerEpsilon marks an armed ε-monitor observing a
	// relative throughput change beyond tolerance and restarting the
	// search.
	EventRetriggerEpsilon EventType = "RetriggerEpsilon"
	// EventCheckpointWritten marks a durable checkpoint write after an
	// epoch.
	EventCheckpointWritten EventType = "CheckpointWritten"
	// EventFaultInjected marks the faultnet fabric injecting a dial
	// refusal or connection reset.
	EventFaultInjected EventType = "FaultInjected"
	// EventWarmStart marks a strategy consulting the history knowledge
	// plane at construction: Detail is "hit" (X carries the adopted
	// prediction) or "miss" (the run cold-starts).
	EventWarmStart EventType = "WarmStart"
	// EventJobAdmitted marks the dstuned daemon accepting a tuning job
	// past admission control, after its journal entry is durable.
	// Session is the job ID; Detail carries the tenant.
	EventJobAdmitted EventType = "JobAdmitted"
	// EventJobAdopted marks a restarted daemon re-adopting a journaled
	// in-flight job mid-trajectory. Session is the job ID; Epoch is
	// the number of checkpointed epochs the job resumes from.
	EventJobAdopted EventType = "JobAdopted"
	// EventJobEvicted marks the daemon force-ending a job — an
	// exhausted per-tenant fault budget, typically. Session is the
	// job ID; Detail carries the reason.
	EventJobEvicted EventType = "JobEvicted"
	// EventFileCompleted marks dataset files finishing per receiver
	// truth: Files carries how many completed during the epoch.
	EventFileCompleted EventType = "FileCompleted"
	// EventStripeKernelStats carries one data stripe's kernel TCP
	// sample at an epoch boundary (getsockopt(TCP_INFO)): Stripe
	// indexes the surviving stripe, RTT/RTTVar are the kernel's
	// smoothed estimates in seconds, Cwnd the congestion window in
	// segments, Rate the delivery-rate estimate in bytes/second, and
	// Retrans the stripe's cumulative retransmit counter.
	EventStripeKernelStats EventType = "StripeKernelStats"
	// EventRLAction marks a learned strategy (rl-bandit, rl-q)
	// committing to its next action: X is the chosen vector, Bucket
	// the load-context bucket the choice was made in, Epsilon the
	// exploration probability in force, QValue the chosen action's
	// current value estimate, and Detail is "explore" (the RNG forced
	// a random action) or "exploit" (greedy argmax).
	EventRLAction EventType = "RLAction"
)

// EventTypes lists every event type the stack can emit, in a stable
// order. Documentation tests iterate it.
func EventTypes() []EventType {
	return []EventType{
		EventEpochStart, EventEpochEnd, EventPropose, EventObserve,
		EventStripeDialed, EventStripeEvicted, EventRetriggerEpsilon,
		EventCheckpointWritten, EventFaultInjected, EventWarmStart,
		EventJobAdmitted, EventJobAdopted, EventJobEvicted,
		EventFileCompleted, EventStripeKernelStats, EventRLAction,
	}
}

// Event is one structured trace record. Fields beyond Seq, T, and Type
// are populated per type; unused fields are omitted from the JSONL
// encoding. T is the transfer clock (seconds) — virtual time under the
// Sim fabric — never wall time, so traces from deterministic fabrics
// are bit-for-bit reproducible.
type Event struct {
	// Seq is the recorder-assigned monotonic sequence number.
	Seq int64 `json:"seq"`
	// T is the transfer-clock timestamp in seconds.
	T float64 `json:"t"`
	// Type discriminates the event.
	Type EventType `json:"type"`
	// Session is the owning session's stable ID, when the event is
	// session-scoped.
	Session string `json:"session,omitempty"`
	// Epoch is the zero-based epoch index, for epoch-scoped events.
	Epoch int `json:"epoch,omitempty"`
	// X is the parameter vector in play.
	X []int `json:"x,omitempty"`
	// Prev is the previous parameter vector (Propose only).
	Prev []int `json:"prev,omitempty"`
	// Throughput is the observed mean throughput in bytes/second.
	Throughput float64 `json:"throughput,omitempty"`
	// BestCase is the dead-time-compensated throughput in
	// bytes/second.
	BestCase float64 `json:"best_case,omitempty"`
	// Bytes is the payload volume moved this epoch.
	Bytes float64 `json:"bytes,omitempty"`
	// DeadTime is the epoch's non-transferring time in seconds.
	DeadTime float64 `json:"dead_time,omitempty"`
	// Dials counts new connections established.
	Dials int `json:"dials,omitempty"`
	// Reused counts warm streams reused from the pool.
	Reused int `json:"reused,omitempty"`
	// Retries counts transient-error retries.
	Retries int `json:"retries,omitempty"`
	// Degraded counts streams below the requested concurrency.
	Degraded int `json:"degraded,omitempty"`
	// Files counts dataset files completed (FileCompleted only).
	Files int `json:"files,omitempty"`
	// Stripe indexes the data stripe (StripeKernelStats only).
	Stripe int `json:"stripe,omitempty"`
	// RTT is the kernel's smoothed round-trip estimate in seconds
	// (StripeKernelStats only).
	RTT float64 `json:"rtt,omitempty"`
	// RTTVar is the kernel's RTT variance estimate in seconds
	// (StripeKernelStats only).
	RTTVar float64 `json:"rttvar,omitempty"`
	// Cwnd is the congestion window in segments (StripeKernelStats
	// only).
	Cwnd int `json:"cwnd,omitempty"`
	// Rate is the kernel's delivery-rate estimate in bytes/second
	// (StripeKernelStats only).
	Rate float64 `json:"rate,omitempty"`
	// Retrans is the stripe's cumulative retransmitted-segment count
	// (StripeKernelStats only).
	Retrans int64 `json:"retrans,omitempty"`
	// Delta is the relative change driving Observe/RetriggerEpsilon,
	// as a fraction (0.2 = 20%).
	Delta float64 `json:"delta,omitempty"`
	// Bucket is the load-context bucket a learned strategy acted in
	// (RLAction only).
	Bucket int `json:"bucket,omitempty"`
	// Epsilon is the exploration probability in force (RLAction
	// only).
	Epsilon float64 `json:"epsilon,omitempty"`
	// QValue is the chosen action's value estimate (RLAction only).
	QValue float64 `json:"q_value,omitempty"`
	// Transient marks an EpochEnd synthesized from a transient
	// failure.
	Transient bool `json:"transient,omitempty"`
	// Detail is free-form context: fault kind, stripe index, eviction
	// reason.
	Detail string `json:"detail,omitempty"`
}

// Recorder collects Events into a bounded ring buffer and optionally
// mirrors each one as a JSON line to a sink. A nil *Recorder is a
// valid no-op. Recorder is safe for concurrent use.
type Recorder struct {
	mu      sync.Mutex
	seq     int64
	ring    []Event
	next    int
	wrapped bool
	enc     *json.Encoder
	sinkErr error
}

// DefaultEventBuffer is the ring capacity used when RecorderConfig
// leaves Buffer zero.
const DefaultEventBuffer = 4096

// NewRecorder returns a Recorder holding the last buffer events
// (DefaultEventBuffer when buffer <= 0). When sink is non-nil every
// event is also appended to it as one JSON object per line; sink
// errors are sticky and reported by Err, never propagated to
// recording call sites.
func NewRecorder(buffer int, sink io.Writer) *Recorder {
	if buffer <= 0 {
		buffer = DefaultEventBuffer
	}
	r := &Recorder{ring: make([]Event, buffer)}
	if sink != nil {
		r.enc = json.NewEncoder(sink)
	}
	return r
}

// Record assigns the event its sequence number, stores it in the ring,
// and mirrors it to the JSONL sink when configured. No-op on a nil
// receiver.
func (r *Recorder) Record(ev Event) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	ev.Seq = r.seq
	r.seq++
	r.ring[r.next] = ev
	r.next++
	if r.next == len(r.ring) {
		r.next = 0
		r.wrapped = true
	}
	if r.enc != nil && r.sinkErr == nil {
		r.sinkErr = r.enc.Encode(ev)
	}
}

// Events returns the buffered events oldest-first. On a nil receiver
// it returns nil.
func (r *Recorder) Events() []Event {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.wrapped {
		out := make([]Event, r.next)
		copy(out, r.ring[:r.next])
		return out
	}
	out := make([]Event, 0, len(r.ring))
	out = append(out, r.ring[r.next:]...)
	out = append(out, r.ring[:r.next]...)
	return out
}

// Len reports how many events have been recorded in total (including
// any that have been evicted from the ring).
func (r *Recorder) Len() int64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.seq
}

// Err returns the first error the JSONL sink reported, if any.
func (r *Recorder) Err() error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.sinkErr
}
