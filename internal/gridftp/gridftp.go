// Package gridftp provides a real-socket substitute for the paper's
// globus-url-copy: a striped memory-to-memory transfer protocol over
// plain TCP, exposing the same xfer.Transferer interface the tuners
// drive against the simulator.
//
// The protocol is deliberately minimal (the paper's transfers are
// /dev/zero to /dev/null):
//
//	client                         server
//	------ control connection (persistent) ----
//	START <token> <channels>\n
//	                               OK\n
//	------ data connections (channels) --------
//	DATA <token>\n                 (reads and discards, counting)
//	<raw bytes until close>
//	------ same control connection ------------
//	ADJ <token> <channels>\n       (re-arms the next epoch, warm)
//	                               OK\n
//	STAT <token>\n
//	                               BYTES <n>\n
//	CLOSE <token>\n                (releases the token's counter)
//	                               OK\n
//
// # File plane
//
// When ClientConfig.Dataset is set, the same connections carry a
// dataset-aware framed protocol instead of the raw byte stream, so
// pipelining depth (pp) becomes a third tunable dimension alongside
// nc and np:
//
//	------ control connection ------------------
//	MANIFEST <token> <count>\n     (then <count> size lines)
//	<size>\n ...
//	                               OK\n
//	OPEN <token> <idx>\n           (<= pp in flight; ACK arrives
//	                               ACK <idx>\n     after the per-file latency)
//	FSTAT <token> <idx>\n
//	                               FILE <idx> <got> <size>\n
//	RESYNC <token>\n               (full per-file progress dump)
//	                               FILES <count>\n  <idx> <got>\n ...
//	------ data connections --------------------
//	DATAF <token>\n
//	FILE <idx> <off> <len>\n<len payload bytes>  (repeated frames)
//
// The server credits each file with min(received, size) so duplicate
// retransmissions never inflate goodput, and an epoch's Report.Bytes
// is the delta of that per-file "useful" sum — receiver truth at
// file granularity. OPEN admission is what pp buys: each file start
// costs one server-side latency (SetFileLatency in tests, real
// metadata lookups in the wild), and keeping pp OPENs outstanding
// overlaps those waits. Mid-epoch failures resume at file/offset
// granularity: RESYNC rebuilds the client's work queue from the
// server's per-file progress, so a restarted session re-sends only
// unacknowledged tails. An empty manifest leaves the protocol
// byte-identical to the bulk stream above.
//
// # Warm data plane
//
// Data connections form a persistent stripe pool that survives Run
// boundaries. The first epoch performs the START handshake and dials
// the full stripe; a later epoch with the same stream count performs
// zero dials — a lightweight ADJ exchange on the persistent control
// connection re-arms it — and a ±k change in stream count dials or
// retires only the k-connection delta. Stripes that die mid-epoch
// (resets, server failure) are evicted from the pool and only the
// missing delta is re-dialed, with the usual retry budget, at the
// next epoch. Report.Dials and Report.ReusedStreams account the
// split, so DeadTime is attributable to cold setup. Setting
// ClientConfig.ColdStart restores the paper-faithful behavior — a
// fresh stripe per epoch, the restart overhead the paper measures —
// and is the baseline BenchmarkEpochSetup compares against.
//
// The epoch's setup time (control exchange plus any delta dialing,
// including retry backoffs) is reported as DeadTime. An optional
// Shaper imposes per-connection rate limits and a contention penalty
// that grows with the connection count, recreating on loopback the
// interior optimum a WAN endpoint exhibits, so the tuners have
// something real to find.
//
// # Error taxonomy and retry semantics
//
// Production links fail in two distinct ways, and the client keeps
// them apart:
//
//   - Transient errors — dial timeouts, refused or reset connections,
//     streams that end unexpectedly — are network weather. Connection
//     setup retries them per ClientConfig.Retry with exponential,
//     seeded-jitter backoff. If some data dials still fail after
//     retries, the epoch runs degraded on the surviving streams
//     (Report.DegradedStreams counts the missing ones) as long as at
//     least ClientConfig.MinStreams survive. Only when an epoch cannot
//     proceed at all does Run fail, and then with an error matching
//     xfer.ErrTransient so callers (tuner runners) can record a
//     zero-throughput epoch and keep tuning.
//   - Fatal errors — protocol violations (ErrProtocol), invalid
//     parameters, a stopped transfer — are bugs or misuse. They are
//     never retried and never marked transient.
//
// A mid-epoch stream failure is not an error at all: the pump ends
// that stream, returns its unsent budget, and the epoch reports what
// the server actually received (Run reconciles its byte count against
// STAT, so throughput is receiver truth rather than bytes parked in
// kernel socket buffers).
package gridftp

import (
	"errors"
	"io"
	"math"
	"net"
	"sync/atomic"
	"syscall"
	"time"

	"dstune/internal/xfer"
)

// chunkSize is the write size of the zero pump, in bytes.
const chunkSize = 64 << 10

// leaseQuantum is the byte-lease granularity of the pump: each stream
// claims this much of the shared budget per refill, so the shared
// counter sees one CAS per quantum instead of one per chunk.
const leaseQuantum = 4 << 20

// clockCheckChunks is how many unshaped chunks a pump writes between
// deadline/abort checks, amortizing the time.Now() calls.
const clockCheckChunks = 16

// zeros is the shared source buffer (the /dev/zero stand-in).
var zeros = make([]byte, chunkSize)

// Shaper emulates endpoint contention on a loopback link. The
// effective per-connection rate is
//
//	Rate / (1 + Quad * n^2)
//
// for n total connections, so aggregate throughput n*Rate/(1+Quad*n^2)
// peaks at n = 1/sqrt(Quad) and declines beyond it — the shape of the
// paper's Figure 1.
type Shaper struct {
	// Rate is the per-connection byte rate with no contention; zero
	// means unshaped.
	Rate float64
	// Quad is the contention coefficient; zero means no contention
	// penalty.
	Quad float64
}

// perConnRate returns the shaped per-connection rate for n total
// connections, or +Inf when unshaped.
func (s *Shaper) perConnRate(n int) float64 {
	if s == nil || s.Rate <= 0 {
		return math.Inf(1)
	}
	return s.Rate / (1 + s.Quad*float64(n)*float64(n))
}

// Optimum returns the connection count at which the shaped aggregate
// peaks (at least 1), or 0 when the shaper imposes no interior
// optimum.
func (s *Shaper) Optimum() int {
	if s == nil || s.Rate <= 0 || s.Quad <= 0 {
		return 0
	}
	n := int(math.Round(1 / math.Sqrt(s.Quad)))
	if n < 1 {
		n = 1
	}
	return n
}

// ErrProtocol reports a malformed exchange on a control or data
// connection.
var ErrProtocol = errors.New("gridftp: protocol error")

// transientNetErr reports whether err is a plausibly transient
// network failure: timeouts, refused/reset/aborted connections, or
// streams that ended unexpectedly.
func transientNetErr(err error) bool {
	if err == nil {
		return false
	}
	var ne net.Error
	if errors.As(err, &ne) && ne.Timeout() {
		return true
	}
	return errors.Is(err, syscall.ECONNREFUSED) ||
		errors.Is(err, syscall.ECONNRESET) ||
		errors.Is(err, syscall.ECONNABORTED) ||
		errors.Is(err, syscall.EPIPE) ||
		errors.Is(err, syscall.ETIMEDOUT) ||
		errors.Is(err, io.EOF) ||
		errors.Is(err, io.ErrUnexpectedEOF) ||
		errors.Is(err, net.ErrClosed)
}

// classify marks network-weather errors as xfer.ErrTransient, leaving
// protocol violations and other fatal errors unmarked.
func classify(err error) error {
	if err == nil || errors.Is(err, ErrProtocol) {
		return err
	}
	if transientNetErr(err) {
		return xfer.Transient(err)
	}
	return err
}

// lease claims up to quantum bytes from the shared budget with a
// single CAS; it returns 0 when the budget is exhausted.
func lease(budget *atomic.Int64, quantum int64) int64 {
	for {
		left := budget.Load()
		if left <= 0 {
			return 0
		}
		take := quantum
		if left < take {
			take = left
		}
		if budget.CompareAndSwap(left, left-take) {
			return take
		}
	}
}

// pump writes zeros to w at the given rate until the deadline, the
// shared byte budget runs out, a write fails, or abort is closed. It
// returns the bytes written and whether the stream is still usable
// (false after a write error that is not a deadline expiry — the
// stream is dead and must be evicted from the pool).
//
// The shared budget is consumed through per-stream byte leases of
// leaseQuantum bytes, so the steady-state path performs no shared CAS
// per chunk; the unspent lease remainder is refunded on every exit
// path. Deadline and abort checks on the unshaped path are amortized
// over clockCheckChunks chunks.
func pump(w io.Writer, rate float64, deadline time.Time, budget *atomic.Int64, abort <-chan struct{}) (sent int64, alive bool) {
	var leased int64 // unspent bytes of the current lease
	defer func() {
		if leased > 0 {
			budget.Add(leased)
		}
	}()
	start := time.Now()
	shaped := !math.IsInf(rate, 1)
	sinceCheck := clockCheckChunks // force a check on the first chunk
	for {
		// Deadline and abort checks: every chunk when pacing (the
		// pacing math needs the clock anyway), every clockCheckChunks
		// chunks on the unshaped fast path.
		if shaped || sinceCheck >= clockCheckChunks {
			sinceCheck = 0
			select {
			case <-abort:
				return sent, true
			default:
			}
			if time.Now().After(deadline) {
				return sent, true
			}
		}
		sinceCheck++
		if leased == 0 {
			if leased = lease(budget, leaseQuantum); leased == 0 {
				return sent, true
			}
		}
		want := int64(chunkSize)
		if leased < want {
			want = leased
		}
		n, err := w.Write(zeros[:want])
		sent += int64(n)
		leased -= int64(n)
		if err != nil {
			// A deadline expiry (epoch end, or the abort watchdog
			// expiring the write) leaves the stream usable; any other
			// write error is a dead stripe.
			var ne net.Error
			return sent, errors.As(err, &ne) && ne.Timeout()
		}
		// Token-bucket pacing: sleep off any rate debt, watching for
		// an abort so a cancelled epoch is not held up by pacing.
		if shaped {
			due := time.Duration(float64(sent) / rate * float64(time.Second))
			elapsed := time.Since(start)
			if due > elapsed {
				sleep := due - elapsed
				if remain := time.Until(deadline); sleep > remain {
					sleep = remain
				}
				if sleep > 0 {
					t := time.NewTimer(sleep)
					select {
					case <-abort:
						t.Stop()
						return sent, true
					case <-t.C:
					}
				}
			}
		}
	}
}
