// Package gridftp provides a real-socket substitute for the paper's
// globus-url-copy: a striped memory-to-memory transfer protocol over
// plain TCP, exposing the same xfer.Transferer interface the tuners
// drive against the simulator.
//
// The protocol is deliberately minimal (the paper's transfers are
// /dev/zero to /dev/null):
//
//	client                         server
//	------ control connection -----------
//	START <token> <channels>\n
//	                               OK\n
//	------ data connections (channels) --
//	DATA <token>\n                 (reads and discards, counting)
//	<raw bytes until close>
//	------ control connection -----------
//	STAT <token>\n
//	                               BYTES <n>\n
//	------ control connection -----------
//	CLOSE <token>\n                (releases the token's counter)
//	                               OK\n
//
// Each Run call opens a fresh set of nc*np data connections, pumps
// zeros for one control epoch, and tears them down — mirroring the
// per-epoch process restart of the paper's wrappers; the setup time is
// reported as the epoch's DeadTime. An optional Shaper imposes
// per-connection rate limits and a contention penalty that grows with
// the connection count, recreating on loopback the interior optimum a
// WAN endpoint exhibits, so the tuners have something real to find.
//
// # Error taxonomy and retry semantics
//
// Production links fail in two distinct ways, and the client keeps
// them apart:
//
//   - Transient errors — dial timeouts, refused or reset connections,
//     streams that end unexpectedly — are network weather. Connection
//     setup retries them per ClientConfig.Retry with exponential,
//     seeded-jitter backoff. If some data dials still fail after
//     retries, the epoch runs degraded on the surviving streams
//     (Report.DegradedStreams counts the missing ones) as long as at
//     least ClientConfig.MinStreams survive. Only when an epoch cannot
//     proceed at all does Run fail, and then with an error matching
//     xfer.ErrTransient so callers (tuner runners) can record a
//     zero-throughput epoch and keep tuning.
//   - Fatal errors — protocol violations (ErrProtocol), invalid
//     parameters, a stopped transfer — are bugs or misuse. They are
//     never retried and never marked transient.
//
// A mid-epoch stream failure is not an error at all: the pump ends
// that stream, returns its unsent budget, and the epoch reports what
// the server actually received (Run reconciles its byte count against
// STAT, so throughput is receiver truth rather than bytes parked in
// kernel socket buffers).
package gridftp

import (
	"errors"
	"io"
	"math"
	"net"
	"sync/atomic"
	"syscall"
	"time"

	"dstune/internal/xfer"
)

// chunkSize is the write size of the zero pump, in bytes.
const chunkSize = 64 << 10

// zeros is the shared source buffer (the /dev/zero stand-in).
var zeros = make([]byte, chunkSize)

// Shaper emulates endpoint contention on a loopback link. The
// effective per-connection rate is
//
//	Rate / (1 + Quad * n^2)
//
// for n total connections, so aggregate throughput n*Rate/(1+Quad*n^2)
// peaks at n = 1/sqrt(Quad) and declines beyond it — the shape of the
// paper's Figure 1.
type Shaper struct {
	// Rate is the per-connection byte rate with no contention; zero
	// means unshaped.
	Rate float64
	// Quad is the contention coefficient; zero means no contention
	// penalty.
	Quad float64
}

// perConnRate returns the shaped per-connection rate for n total
// connections, or +Inf when unshaped.
func (s *Shaper) perConnRate(n int) float64 {
	if s == nil || s.Rate <= 0 {
		return math.Inf(1)
	}
	return s.Rate / (1 + s.Quad*float64(n)*float64(n))
}

// Optimum returns the connection count at which the shaped aggregate
// peaks (at least 1), or 0 when the shaper imposes no interior
// optimum.
func (s *Shaper) Optimum() int {
	if s == nil || s.Rate <= 0 || s.Quad <= 0 {
		return 0
	}
	n := int(math.Round(1 / math.Sqrt(s.Quad)))
	if n < 1 {
		n = 1
	}
	return n
}

// ErrProtocol reports a malformed exchange on a control or data
// connection.
var ErrProtocol = errors.New("gridftp: protocol error")

// transientNetErr reports whether err is a plausibly transient
// network failure: timeouts, refused/reset/aborted connections, or
// streams that ended unexpectedly.
func transientNetErr(err error) bool {
	if err == nil {
		return false
	}
	var ne net.Error
	if errors.As(err, &ne) && ne.Timeout() {
		return true
	}
	return errors.Is(err, syscall.ECONNREFUSED) ||
		errors.Is(err, syscall.ECONNRESET) ||
		errors.Is(err, syscall.ECONNABORTED) ||
		errors.Is(err, syscall.EPIPE) ||
		errors.Is(err, syscall.ETIMEDOUT) ||
		errors.Is(err, io.EOF) ||
		errors.Is(err, io.ErrUnexpectedEOF) ||
		errors.Is(err, net.ErrClosed)
}

// classify marks network-weather errors as xfer.ErrTransient, leaving
// protocol violations and other fatal errors unmarked.
func classify(err error) error {
	if err == nil || errors.Is(err, ErrProtocol) {
		return err
	}
	if transientNetErr(err) {
		return xfer.Transient(err)
	}
	return err
}

// pump writes zeros to w at the given rate until the deadline, the
// shared byte budget runs out, a write fails, or abort is closed. It
// returns the bytes written.
func pump(w io.Writer, rate float64, deadline time.Time, budget *atomic.Int64, abort <-chan struct{}) int64 {
	var sent int64
	start := time.Now()
	for {
		select {
		case <-abort:
			return sent
		default:
		}
		if time.Now().After(deadline) {
			return sent
		}
		// Claim a chunk from the shared budget.
		want := int64(chunkSize)
		for {
			left := budget.Load()
			if left <= 0 {
				return sent
			}
			if left < want {
				want = left
			}
			if budget.CompareAndSwap(left, left-want) {
				break
			}
		}
		n, err := w.Write(zeros[:want])
		sent += int64(n)
		if err != nil {
			budget.Add(want - int64(n)) // return the unsent remainder
			return sent
		}
		if int64(n) < want {
			budget.Add(want - int64(n))
		}
		// Token-bucket pacing: sleep off any rate debt, watching for
		// an abort so a cancelled epoch is not held up by pacing.
		if !math.IsInf(rate, 1) {
			due := time.Duration(float64(sent) / rate * float64(time.Second))
			elapsed := time.Since(start)
			if due > elapsed {
				sleep := due - elapsed
				if remain := time.Until(deadline); sleep > remain {
					sleep = remain
				}
				if sleep > 0 {
					t := time.NewTimer(sleep)
					select {
					case <-abort:
						t.Stop()
						return sent
					case <-t.C:
					}
				}
			}
		}
	}
}
