// Package gridftp provides a real-socket substitute for the paper's
// globus-url-copy: a striped memory-to-memory transfer protocol over
// plain TCP, exposing the same xfer.Transferer interface the tuners
// drive against the simulator.
//
// The protocol is deliberately minimal (the paper's transfers are
// /dev/zero to /dev/null):
//
//	client                         server
//	------ control connection -----------
//	START <token> <channels>\n
//	                               OK\n
//	------ data connections (channels) --
//	DATA <token>\n                 (reads and discards, counting)
//	<raw bytes until close>
//	------ control connection -----------
//	STAT <token>\n
//	                               BYTES <n>\n
//
// Each Run call opens a fresh set of nc*np data connections, pumps
// zeros for one control epoch, and tears them down — mirroring the
// per-epoch process restart of the paper's wrappers; the setup time is
// reported as the epoch's DeadTime. An optional Shaper imposes
// per-connection rate limits and a contention penalty that grows with
// the connection count, recreating on loopback the interior optimum a
// WAN endpoint exhibits, so the tuners have something real to find.
package gridftp

import (
	"errors"
	"io"
	"math"
	"sync/atomic"
	"time"
)

// chunkSize is the write size of the zero pump, in bytes.
const chunkSize = 64 << 10

// zeros is the shared source buffer (the /dev/zero stand-in).
var zeros = make([]byte, chunkSize)

// Shaper emulates endpoint contention on a loopback link. The
// effective per-connection rate is
//
//	Rate / (1 + Quad * n^2)
//
// for n total connections, so aggregate throughput n*Rate/(1+Quad*n^2)
// peaks at n = 1/sqrt(Quad) and declines beyond it — the shape of the
// paper's Figure 1.
type Shaper struct {
	// Rate is the per-connection byte rate with no contention; zero
	// means unshaped.
	Rate float64
	// Quad is the contention coefficient; zero means no contention
	// penalty.
	Quad float64
}

// perConnRate returns the shaped per-connection rate for n total
// connections, or +Inf when unshaped.
func (s *Shaper) perConnRate(n int) float64 {
	if s == nil || s.Rate <= 0 {
		return math.Inf(1)
	}
	return s.Rate / (1 + s.Quad*float64(n)*float64(n))
}

// Optimum returns the connection count at which the shaped aggregate
// peaks (at least 1), or 0 when the shaper imposes no interior
// optimum.
func (s *Shaper) Optimum() int {
	if s == nil || s.Rate <= 0 || s.Quad <= 0 {
		return 0
	}
	n := int(math.Round(1 / math.Sqrt(s.Quad)))
	if n < 1 {
		n = 1
	}
	return n
}

// ErrProtocol reports a malformed exchange on a control or data
// connection.
var ErrProtocol = errors.New("gridftp: protocol error")

// pump writes zeros to w at the given rate until the deadline, the
// shared byte budget runs out, or a write fails. It returns the bytes
// written.
func pump(w io.Writer, rate float64, deadline time.Time, budget *atomic.Int64) int64 {
	var sent int64
	start := time.Now()
	for {
		if time.Now().After(deadline) {
			return sent
		}
		// Claim a chunk from the shared budget.
		want := int64(chunkSize)
		for {
			left := budget.Load()
			if left <= 0 {
				return sent
			}
			if left < want {
				want = left
			}
			if budget.CompareAndSwap(left, left-want) {
				break
			}
		}
		n, err := w.Write(zeros[:want])
		sent += int64(n)
		if err != nil {
			budget.Add(want - int64(n)) // return the unsent remainder
			return sent
		}
		if int64(n) < want {
			budget.Add(want - int64(n))
		}
		// Token-bucket pacing: sleep off any rate debt.
		if !math.IsInf(rate, 1) {
			due := time.Duration(float64(sent) / rate * float64(time.Second))
			elapsed := time.Since(start)
			if due > elapsed {
				sleep := due - elapsed
				if remain := time.Until(deadline); sleep > remain {
					sleep = remain
				}
				if sleep > 0 {
					time.Sleep(sleep)
				}
			}
		}
	}
}
