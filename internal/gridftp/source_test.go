package gridftp

import (
	"bytes"
	"context"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"dstune/internal/dataset"
	"dstune/internal/faultnet"
	"dstune/internal/xfer"
)

// writeSourceFiles materializes ds under dir with deterministic
// patterned content (distinct per file and offset, so a swapped or
// shifted byte cannot cancel out) and returns each file's payload.
func writeSourceFiles(t *testing.T, dir string, ds dataset.Dataset) [][]byte {
	t.Helper()
	payloads := make([][]byte, ds.Count())
	for i, f := range ds.Files {
		p := make([]byte, f.Size)
		for j := range p {
			p[j] = byte(i*131 + j*7 + j>>9)
		}
		path := filepath.Join(dir, f.Name)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, p, 0o644); err != nil {
			t.Fatal(err)
		}
		payloads[i] = p
	}
	return payloads
}

// runToCompletion drives the client in short epochs until the dataset
// is done, returning the summed syscall count.
func runToCompletion(t *testing.T, c *Client, p xfer.Params) (syscalls int64) {
	t.Helper()
	for i := 0; i < 60; i++ {
		r, err := c.Run(context.Background(), p, 0.2)
		if err != nil {
			t.Fatal(err)
		}
		syscalls += r.Syscalls
		if r.Done {
			return syscalls
		}
	}
	t.Fatal("dataset transfer never completed")
	return 0
}

func TestFileSourceValidation(t *testing.T) {
	dir := t.TempDir()
	ds := dataset.Uniform(2, 1<<10)
	writeSourceFiles(t, dir, ds)

	if _, err := NewClient(ClientConfig{Addr: "x", Bytes: 1, SourceDir: dir}); err == nil {
		t.Fatal("SourceDir without Dataset accepted")
	}
	if _, err := NewClient(ClientConfig{Addr: "x", Bytes: 1, RequestSink: true}); err == nil {
		t.Fatal("RequestSink without Dataset accepted")
	}
	if _, err := NewClient(ClientConfig{Addr: "x", Dataset: ds, SourceDir: dir}); err != nil {
		t.Fatalf("valid source rejected: %v", err)
	}

	escape := dataset.Dataset{Files: []dataset.File{{Name: "../evil", Size: 1}}}
	if _, err := NewClient(ClientConfig{Addr: "x", Dataset: escape, SourceDir: dir}); err == nil ||
		!strings.Contains(err.Error(), "escapes") {
		t.Fatalf("path escape not rejected: %v", err)
	}
	missing := dataset.Uniform(3, 1<<10) // file-000002 was never written
	if _, err := NewClient(ClientConfig{Addr: "x", Dataset: missing, SourceDir: dir}); err == nil {
		t.Fatal("missing source file accepted")
	}
	big := dataset.Uniform(2, 2<<10) // real files hold only 1 KiB
	if _, err := NewClient(ClientConfig{Addr: "x", Dataset: big, SourceDir: dir}); err == nil ||
		!strings.Contains(err.Error(), "needs") {
		t.Fatalf("short source file not rejected: %v", err)
	}
}

// TestFileSourceToSinkByteExact is the end-to-end integrity property
// of the disk-backed data plane: patterned files travel source → wire
// → sink and land bit-for-bit identical, with the zero-copy pump and
// with the userspace fallback forced. Sizes straddle every pump route:
// empty, sub-zcMinSegment (vectored-write route), and multi-chunk
// (sendfile route when available).
func TestFileSourceToSinkByteExact(t *testing.T) {
	for _, mode := range []struct {
		name       string
		noZeroCopy bool
	}{
		{"fastpath", false}, // sendfile where the build provides it
		{"userspace", true},
	} {
		t.Run(mode.name, func(t *testing.T) {
			ds := dataset.Dataset{Files: []dataset.File{
				{Name: "empty", Size: 0},
				{Name: "tiny", Size: 1},
				{Name: "small", Size: 64 << 10},
				{Name: "sub/nested", Size: zcMinSegment - 1},
				{Name: "big", Size: 2<<20 + 12345},
			}}
			srcDir := t.TempDir()
			payloads := writeSourceFiles(t, srcDir, ds)

			s := startServer(t)
			sinkRoot := t.TempDir()
			s.SetSink(sinkRoot)

			c, err := NewClient(ClientConfig{
				Addr:        s.Addr(),
				Dataset:     ds,
				SourceDir:   srcDir,
				RequestSink: true,
				NoZeroCopy:  mode.noZeroCopy,
			})
			if err != nil {
				t.Fatal(err)
			}
			defer c.Stop()
			syscalls := runToCompletion(t, c, xfer.Params{NC: 2, NP: 1, PP: 4})
			if syscalls == 0 {
				t.Fatal("file-backed run reported no syscalls")
			}

			dir := filepath.Join(sinkRoot, sinkDirName(c.Token()))
			for i, want := range payloads {
				if len(want) == 0 {
					continue // zero-length files are done on arrival, never opened
				}
				got, err := os.ReadFile(filepath.Join(dir, fmt.Sprintf("%06d", i)))
				if err != nil {
					t.Fatalf("sink file %d: %v", i, err)
				}
				if !bytes.Equal(got, want) {
					t.Fatalf("sink file %d (%s): %d bytes differ from the %d sent",
						i, ds.Files[i].Name, len(got), len(want))
				}
			}
		})
	}
}

// TestSinkRefusedWithoutServerDir: a client asking for disk delivery
// against a server with no sink root fails fast with the server's
// refusal, not a silent discard.
func TestSinkRefusedWithoutServerDir(t *testing.T) {
	ds := dataset.Uniform(2, 1<<10)
	srcDir := t.TempDir()
	writeSourceFiles(t, srcDir, ds)
	s := startServer(t)
	c, err := NewClient(ClientConfig{Addr: s.Addr(), Dataset: ds, SourceDir: srcDir, RequestSink: true})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()
	if _, err := c.Run(context.Background(), xfer.Params{NC: 1, NP: 1, PP: 2}, 0.2); err == nil ||
		!strings.Contains(err.Error(), "sink") {
		t.Fatalf("sinkless server accepted SINK: %v", err)
	}
}

// TestDiskDatasetSurvivesInjectedFaults runs the disk-backed plane end
// to end under 20% dial refusals plus mid-epoch resets: every file must
// land on the sink bit-for-bit despite resent tails. The fault fabric
// wraps the conns, which defeats the *net.TCPConn assertion and forces
// the portable userspace pump — so together with
// TestFileSourceToSinkByteExact this proves byte-exactness with and
// without the fast path, fault-free and faulted.
func TestDiskDatasetSurvivesInjectedFaults(t *testing.T) {
	s := startServer(t)
	sinkRoot := t.TempDir()
	s.SetSink(sinkRoot)
	in := faultnet.New(faultnet.Config{
		Seed:            11,
		DialFailProb:    0.20,
		ResetAfterBytes: 256 << 10,
	})
	ds := dataset.Uniform(40, 48<<10)
	srcDir := t.TempDir()
	payloads := writeSourceFiles(t, srcDir, ds)
	c, err := NewClient(ClientConfig{
		Addr:        s.Addr(),
		Dataset:     ds,
		SourceDir:   srcDir,
		RequestSink: true,
		TCPInfo:     true, // wrapped conns: sampling must degrade to nil, not break
		Dialer:      in.Dial,
		Retry:       RetryConfig{Attempts: 3, Backoff: time.Millisecond, MaxBackoff: 5 * time.Millisecond},
		Seed:        11,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()
	done := false
	for i := 0; i < 200 && !done; i++ {
		r, err := c.Run(context.Background(), xfer.Params{NC: 2, NP: 2, PP: 4}, 0.15)
		if err != nil {
			if xfer.IsTransient(err) {
				continue
			}
			t.Fatal(err)
		}
		if r.Kernel != nil {
			t.Fatal("fault-wrapped conns produced kernel samples")
		}
		done = r.Done
	}
	if !done {
		t.Fatal("transfer never completed under faults")
	}
	if in.Refused() == 0 || in.Resets() == 0 {
		t.Fatalf("injector idle (refused=%d resets=%d); the test exercised nothing", in.Refused(), in.Resets())
	}
	dir := filepath.Join(sinkRoot, sinkDirName(c.Token()))
	for i, want := range payloads {
		got, err := os.ReadFile(filepath.Join(dir, fmt.Sprintf("%06d", i)))
		if err != nil {
			t.Fatalf("sink file %d: %v", i, err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("sink file %d differs after faulted transfer", i)
		}
	}
}

// TestZeroCopySyscallDiscipline pins the point of the zero-copy pump:
// moving the same dataset takes ≥5× fewer data-plane syscalls than the
// userspace fallback. Runs only where the fast path is compiled in.
func TestZeroCopySyscallDiscipline(t *testing.T) {
	if !zeroCopyAvailable {
		t.Skip("zero-copy unavailable in this build")
	}
	ds := dataset.Uniform(4, 32<<20) // 128 MiB: four full-quantum zc leases
	srcDir := t.TempDir()
	if err := dataset.Materialize(srcDir, ds); err != nil {
		t.Fatal(err)
	}
	measure := func(noZC bool) int64 {
		s := startServer(t)
		c, err := NewClient(ClientConfig{Addr: s.Addr(), Dataset: ds, SourceDir: srcDir, NoZeroCopy: noZC})
		if err != nil {
			t.Fatal(err)
		}
		defer c.Stop()
		return runToCompletion(t, c, xfer.Params{NC: 2, NP: 1, PP: 4})
	}
	zc := measure(false)
	us := measure(true)
	if zc == 0 || us == 0 {
		t.Fatalf("missing syscall accounting: zc=%d userspace=%d", zc, us)
	}
	if us < 5*zc {
		t.Fatalf("zero-copy used %d syscalls vs %d userspace — want ≥5× fewer", zc, us)
	}
}
