//go:build linux && (amd64 || arm64) && !dstune_nozerocopy

package gridftp

import (
	"io"
	"net"
	"syscall"
)

// discardPayload consumes n payload bytes from conn without copying
// them into userspace: Linux TCP treats MSG_TRUNC on recvfrom(2) with
// a null buffer as "drop up to len bytes from the receive queue",
// releasing the socket-buffer pages in kernel. For a discard-mode
// framed drain this removes the receiver's only memory pass, which is
// what lets a sendfile sender run copy-free end to end — the sender
// queues page-cache references and the receiver frees them without
// either side touching the bytes.
//
// credit is invoked with each slab dropped, so byte accounting and
// the server activity clock advance exactly as the copying drain's
// would, including for a stream that dies mid-payload. Returns
// ok=false — with nothing consumed and credit never called — when the
// kernel rejects the first truncating recv, so the caller can fall
// back to the copying drain; any later error is returned as err with
// the preceding slabs already credited (receiver truth is what the
// kernel actually handed over).
func discardPayload(conn net.Conn, n int64, credit func(int64)) (ok bool, err error) {
	tcp, isTCP := conn.(*net.TCPConn)
	if !isTCP {
		return false, nil
	}
	rc, rcErr := tcp.SyscallConn()
	if rcErr != nil {
		return false, nil
	}
	var done int64
	unsupported := false
	ioErr := rc.Read(func(fd uintptr) bool {
		for n > 0 {
			r, _, errno := syscall.Syscall6(syscall.SYS_RECVFROM, fd, 0, uintptr(n), syscall.MSG_TRUNC, 0, 0)
			if errno == syscall.EAGAIN {
				return false // wait for readability, then retry
			}
			if errno != 0 {
				if done == 0 && (errno == syscall.EINVAL || errno == syscall.EOPNOTSUPP) {
					unsupported = true
					return true
				}
				err = errno
				return true
			}
			if r == 0 {
				err = io.EOF
				return true
			}
			credit(int64(r))
			done += int64(r)
			n -= int64(r)
		}
		return true
	})
	if unsupported {
		return false, nil
	}
	if err == nil {
		err = ioErr
	}
	return true, err
}
