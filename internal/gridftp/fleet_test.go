package gridftp

import (
	"context"
	"testing"
	"time"

	"dstune/internal/directsearch"
	"dstune/internal/faultnet"
	"dstune/internal/tuner"
	"dstune/internal/xfer"
)

// TestFleetConcurrentFaultySockets is the Fleet acceptance test: eight
// real-socket transfers against one server, each with its own fault
// injector (20% dial refusals, mid-epoch resets) and its own tuning
// strategy, all paced by a single Fleet scheduler. Every session must
// complete its configured volume with exact byte accounting — lost
// (reset) bytes re-sent, buffered bytes not double-counted — despite
// running concurrently under injected faults.
func TestFleetConcurrentFaultySockets(t *testing.T) {
	s := startServer(t)
	names := []string{"default", "cd-tuner", "cs-tuner", "nm-tuner", "heur1", "heur2", "model", "cs-tuner"}

	sizes := make([]float64, len(names))
	injectors := make([]*faultnet.Injector, len(names))
	sessions := make([]tuner.FleetSession, len(names))
	for i, name := range names {
		sizes[i] = float64((i + 1) << 19) // 0.5 MB .. 4 MB: distinct per-session totals
		injectors[i] = faultnet.New(faultnet.Config{
			Seed:            uint64(11 + i),
			DialFailProb:    0.20,
			ResetAfterBytes: 256 << 10,
		})
		cfg := tuner.Config{
			Epoch:     0.1,
			Tolerance: 30,
			Restart:   tuner.FromCurrent,
			Box:       directsearch.MustBox([]int{1}, []int{8}),
			Start:     []int{2},
			Map:       tuner.MapNC(1),
			Seed:      uint64(5 + i),
			Lambda:    2,
		}
		strat, err := tuner.NewStrategy(name, cfg)
		if err != nil {
			t.Fatal(err)
		}
		c, err := NewClient(ClientConfig{
			Addr:   s.Addr(),
			Bytes:  sizes[i],
			Shaper: &Shaper{Rate: 4e6},
			Dialer: injectors[i].Dial,
			Retry:  RetryConfig{Attempts: 3, Backoff: time.Millisecond, MaxBackoff: 5 * time.Millisecond},
			Seed:   uint64(11 + i),
		})
		if err != nil {
			t.Fatal(err)
		}
		sessions[i] = tuner.FleetSession{
			Name:      name,
			Strategy:  strat,
			Transfers: []xfer.Transferer{c},
			Maps:      []tuner.ParamMap{cfg.Map},
		}
	}

	fleet := tuner.NewFleet(tuner.FleetConfig{Epoch: 0.1}, sessions...)
	results, err := fleet.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(names) {
		t.Fatalf("got %d session results, want %d", len(results), len(names))
	}
	for i, r := range results {
		if r.Err != nil {
			t.Errorf("session %d (%s) failed: %v", i, r.Name, r.Err)
			continue
		}
		tr := r.Traces[0]
		if len(tr.Results) == 0 {
			t.Errorf("session %d (%s) recorded no epochs", i, r.Name)
			continue
		}
		if last := tr.Results[len(tr.Results)-1]; !last.Report.Done {
			t.Errorf("session %d (%s) did not complete after %d epochs", i, r.Name, len(tr.Results))
		}
		// Exact per-session accounting: the scheduler's byte counter,
		// the session's own trace, and the configured volume all agree.
		if r.Bytes != sizes[i] {
			t.Errorf("session %d (%s) accounts %v bytes, want %v", i, r.Name, r.Bytes, sizes[i])
		}
		var moved float64
		for _, res := range tr.Results {
			moved += res.Report.Bytes
		}
		if moved != r.Bytes {
			t.Errorf("session %d (%s) trace sums to %v bytes, SessionResult says %v", i, r.Name, moved, r.Bytes)
		}
	}
	// The warm data plane must have carried streams across epochs even
	// under faults: summed stream reuse across all session traces is
	// positive (only evicted or retired stripes get re-dialed).
	reusedTotal := 0
	for _, r := range results {
		if r.Err != nil {
			continue
		}
		for _, res := range r.Traces[0].Results {
			reusedTotal += res.Report.ReusedStreams
		}
	}
	if reusedTotal == 0 {
		t.Fatal("no stream was ever reused across the fleet's epochs")
	}
	// The faults must actually have fired, or the test exercised nothing.
	var refused, resets int
	for _, in := range injectors {
		refused += in.Refused()
		resets += in.Resets()
	}
	if refused == 0 {
		t.Fatal("no dials were refused across the fleet")
	}
	if resets == 0 {
		t.Fatal("no connections were reset across the fleet")
	}
	// Every token was closed out: the server holds no live counters.
	if n := s.Tokens(); n != 0 {
		t.Fatalf("server still tracks %d transfer tokens after the fleet finished", n)
	}
}
