//go:build !linux || (!amd64 && !arm64) || dstune_nozerocopy

package gridftp

import "net"

// discardPayload reports that truncating receives are unavailable, so
// the framed drain keeps its portable copying path. Paired with the
// dstune_nozerocopy build tag this also gives the A/B benchmark a
// build with every kernel fast path off.
func discardPayload(net.Conn, int64, func(int64)) (bool, error) {
	return false, nil
}
