package gridftp

import (
	"context"
	"errors"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"dstune/internal/directsearch"
	"dstune/internal/faultnet"
	"dstune/internal/tuner"
	"dstune/internal/xfer"
)

// deadServerClient returns a client pointed at an address nothing
// listens on — a full outage from the first dial.
func deadServerClient(t *testing.T) *Client {
	t.Helper()
	s := startServer(t)
	addr := s.Addr()
	s.Close()
	c, err := NewClient(ClientConfig{
		Addr:        addr,
		Bytes:       xfer.Unbounded,
		DialTimeout: 200 * time.Millisecond,
		Retry:       RetryConfig{Attempts: 2, Backoff: time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// TestStopAbortsFailedEpochPacing is the regression for Stop blocking
// behind failEpoch's pacing: during a simulated outage a failed epoch
// is paced to its nominal duration, and Stop used to wait the whole
// epoch out. It must abort the pacing promptly.
func TestStopAbortsFailedEpochPacing(t *testing.T) {
	c := deadServerClient(t)
	done := make(chan error, 1)
	go func() {
		_, err := c.Run(context.Background(), xfer.Params{NC: 1, NP: 1}, 30)
		done <- err
	}()
	time.Sleep(100 * time.Millisecond) // let Run fail its dials and enter pacing
	start := time.Now()
	c.Stop()
	select {
	case err := <-done:
		if !errors.Is(err, xfer.ErrStopped) {
			t.Fatalf("err = %v, want xfer.ErrStopped", err)
		}
		if d := time.Since(start); d > time.Second {
			t.Fatalf("Run took %v to honor Stop during outage pacing, want < 1s", d)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Run still blocked 2 s after Stop during outage pacing")
	}
}

// TestCancelAbortsFailedEpochPacing: cancelling the context during a
// simulated outage must end the epoch within well under a second, not
// after the remainder of the paced epoch.
func TestCancelAbortsFailedEpochPacing(t *testing.T) {
	c := deadServerClient(t)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := c.Run(ctx, xfer.Params{NC: 1, NP: 1}, 30)
		done <- err
	}()
	time.Sleep(100 * time.Millisecond)
	start := time.Now()
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
		if d := time.Since(start); d > time.Second {
			t.Fatalf("Run took %v to honor cancel during outage pacing, want < 1s", d)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Run still blocked 2 s after cancel during outage pacing")
	}
}

// TestDeadlineCheckpointsPartialTransfer: a tuned transfer run under a
// deadline shorter than the transfer must stop cleanly when the
// deadline fires, write a valid checkpoint, and account the partial
// bytes exactly — the checkpoint's acked count is the server's count,
// and the trace sums to it.
func TestDeadlineCheckpointsPartialTransfer(t *testing.T) {
	s := startServer(t)
	const size = 32 << 20
	c, err := NewClient(ClientConfig{
		Addr:   s.Addr(),
		Bytes:  size,
		Shaper: &Shaper{Rate: 2e6},
		Token:  "deadline-tok",
		Seed:   3,
	})
	if err != nil {
		t.Fatal(err)
	}
	fc := tuner.NewFileCheckpoint(filepath.Join(t.TempDir(), "run.checkpoint"))
	cfg := tuner.Config{
		Epoch:      0.15,
		Box:        directsearch.MustBox([]int{1}, []int{4}),
		Start:      []int{2},
		Map:        tuner.MapNC(1),
		Seed:       5,
		Checkpoint: fc,
	}
	ctx, cancel := context.WithTimeout(context.Background(), 500*time.Millisecond)
	defer cancel()
	start := time.Now()
	tr, err := tuner.NewStatic(cfg).Tune(ctx, c)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	if d := time.Since(start); d > 3*time.Second {
		t.Fatalf("deadlined run took %v to return, want prompt abort", d)
	}
	if len(tr.Results) == 0 {
		t.Fatal("deadlined run recorded no epochs")
	}

	ck, err := tuner.LoadCheckpoint(fc.Path())
	if err != nil {
		t.Fatalf("deadlined run left no valid checkpoint: %v", err)
	}
	if ck.Transfer.Token != "deadline-tok" || ck.Transfer.Total != size {
		t.Fatalf("checkpoint transfer state wrong: %+v", ck.Transfer)
	}
	// Exact accounting, receiver truth: the transfer was preserved (not
	// stopped), so the server still holds the token's counter.
	got, err := c.ServerReceived()
	if err != nil {
		t.Fatalf("server token gone after deadline stop: %v", err)
	}
	if ck.Transfer.Acked != float64(got) {
		t.Fatalf("checkpoint says %v bytes acked, server counted %d", ck.Transfer.Acked, got)
	}
	if want := float64(size) - ck.Transfer.Acked; ck.Transfer.Remaining != want {
		t.Fatalf("Remaining = %v, want %v", ck.Transfer.Remaining, want)
	}
	var sum float64
	for _, rec := range ck.Trace {
		sum += rec.Report.Bytes
	}
	if sum != ck.Transfer.Acked {
		t.Fatalf("trace sums to %v bytes, acked %v — partial epoch unaccounted", sum, ck.Transfer.Acked)
	}
	// The run counter is reported per epoch (restart diagnostics).
	for i, rec := range ck.Trace {
		if rec.Report.Run != i+1 {
			t.Fatalf("epoch %d has Run = %d, want %d", i, rec.Report.Run, i+1)
		}
	}
}

// TestCancelResumeRoundTrip is the end-to-end resilience acceptance: a
// tuned real-socket transfer under fault injection is hard-cancelled
// mid-search, checkpointed, and resumed in a fresh client (as a new
// process would); the resumed run replays the recorded trajectory
// exactly, continues the search mid-stream, completes the transfer,
// and the full trace accounts every byte exactly once.
func TestCancelResumeRoundTrip(t *testing.T) {
	s := startServer(t)
	in := faultnet.New(faultnet.Config{
		Seed:            13,
		DialFailProb:    0.15,
		ResetAfterBytes: 256 << 10,
	})
	const size = 16 << 20
	mkClient := func(dial DialFunc, acked, clock float64) *Client {
		c, err := NewClient(ClientConfig{
			Addr:        s.Addr(),
			Bytes:       size,
			Token:       "resume-tok",
			Dialer:      dial,
			Retry:       RetryConfig{Attempts: 3, Backoff: time.Millisecond, MaxBackoff: 5 * time.Millisecond},
			Seed:        11,
			AckedBytes:  acked,
			ClockOffset: clock,
		})
		if err != nil {
			t.Fatal(err)
		}
		return c
	}
	cfg := tuner.Config{
		Epoch:     0.1,
		Tolerance: 30,
		Lambda:    2,
		Restart:   tuner.FromCurrent,
		Box:       directsearch.MustBox([]int{1}, []int{8}),
		Start:     []int{2},
		Map:       tuner.MapNC(1),
		Seed:      5,
	}

	// Session 1: tune under fault injection until 4 epochs are
	// checkpointed, then cancel.
	c1 := mkClient(in.Dial, 0, 0)
	fc := tuner.NewFileCheckpoint(filepath.Join(t.TempDir(), "run.checkpoint"))
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	cfg1 := cfg
	cfg1.Checkpoint = tuner.CheckpointFunc(func(ck *tuner.Checkpoint) error {
		if err := fc.Save(ck); err != nil {
			return err
		}
		if ck.Epochs >= 4 {
			cancel()
		}
		return nil
	})
	_, err := tuner.NewCS(cfg1).Tune(ctx, c1)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("session 1 err = %v, want context.Canceled", err)
	}
	ck, err := tuner.LoadCheckpoint(fc.Path())
	if err != nil {
		t.Fatal(err)
	}
	if ck.Epochs < 4 {
		t.Fatalf("checkpoint holds %d epochs, want >= 4", ck.Epochs)
	}
	if s.Tokens() != 1 {
		t.Fatalf("Tokens = %d after cancel, want 1 (transfer preserved)", s.Tokens())
	}
	if in.Refused() == 0 {
		t.Fatal("injector refused no dials; the test exercised nothing")
	}

	// Session 2: a fresh client seeded from the checkpoint's transfer
	// state resumes the run to completion. The faults stay behind with
	// session 1 so the final token-release check is deterministic.
	c2 := mkClient(nil, ck.Transfer.Acked, ck.Transfer.Clock)
	cfg2 := cfg
	cfg2.Resume = ck
	tr, err := tuner.NewCS(cfg2).Tune(context.Background(), c2)
	if err != nil {
		t.Fatalf("resumed session: %v", err)
	}
	if last := tr.Results[len(tr.Results)-1]; !last.Report.Done {
		t.Fatalf("resumed transfer did not complete: remaining %v after %d epochs",
			c2.Remaining(), len(tr.Results))
	}
	if len(tr.Results) <= ck.Epochs {
		t.Fatalf("resumed run added no live epochs (%d total, %d replayed)",
			len(tr.Results), ck.Epochs)
	}
	// Replay fidelity: the resumed trace begins with exactly the
	// checkpointed epochs — the search continued mid-trajectory rather
	// than restarting from the default.
	for i := 0; i < ck.Epochs; i++ {
		if !reflect.DeepEqual(tr.Results[i].X, ck.Trace[i].X) ||
			!reflect.DeepEqual(tr.Results[i].Report, ck.Trace[i].Report) {
			t.Fatalf("replayed epoch %d diverged:\n got %+v\nwant X=%v report=%+v",
				i, tr.Results[i], ck.Trace[i].X, ck.Trace[i].Report)
		}
	}
	// Exact byte accounting across the cancel/resume boundary: the full
	// trace accounts the configured volume exactly once.
	var moved float64
	for _, r := range tr.Results {
		moved += r.Report.Bytes
	}
	if moved != size {
		t.Fatalf("trace accounts %v bytes across cancel/resume, want %d", moved, size)
	}
	// Session 2 completed uninterrupted, so its Tune stopped the
	// transfer and released the server-side counter.
	deadline := time.Now().Add(2 * time.Second)
	for s.Tokens() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("Tokens = %d after completed resume, want 0", s.Tokens())
		}
		time.Sleep(5 * time.Millisecond)
	}
}
