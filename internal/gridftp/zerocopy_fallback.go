//go:build !linux || dstune_nozerocopy

package gridftp

import (
	"errors"
	"net"
	"os"
)

// zeroCopyAvailable is false in this build: file payload moves through
// the portable pread+writev pump, which produces a byte-identical
// stream.
const zeroCopyAvailable = false

// sendFileSegment is unreachable when zeroCopyAvailable is false; the
// stub keeps the call site portable.
func sendFileSegment(*net.TCPConn, *os.File, int64, int64) (int64, error) {
	return 0, errors.New("gridftp: zero-copy unavailable in this build")
}
