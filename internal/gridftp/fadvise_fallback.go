//go:build !linux || (!amd64 && !arm64) || dstune_nozerocopy

package gridftp

import "os"

// fadviseWillNeed is a no-op where the zero-copy pump is unavailable
// or the 64-bit fadvise64 calling convention does not apply; the
// userspace pump populates the page cache through its own reads.
func fadviseWillNeed(*os.File, int64, int64) int64 { return 0 }
