package gridftp

import (
	"bufio"
	"context"
	"fmt"
	"net"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"dstune/internal/directsearch"
	"dstune/internal/faultnet"
	"dstune/internal/tuner"
	"dstune/internal/xfer"
)

// seqDialer fails exactly the dial numbers (1-based) in fail; other
// dials pass through to the network.
type seqDialer struct {
	mu   sync.Mutex
	n    int
	fail map[int]bool
	// every makes all even-numbered dials fail once when set.
	everyOther bool
}

func (d *seqDialer) Dial(network, addr string, timeout time.Duration) (net.Conn, error) {
	d.mu.Lock()
	d.n++
	n := d.n
	d.mu.Unlock()
	if d.fail[n] || (d.everyOther && n%2 == 0) {
		return nil, fmt.Errorf("seqDialer: injected refusal of dial %d: %w", n, syscall.ECONNREFUSED)
	}
	return net.DialTimeout(network, addr, timeout)
}

func TestDegradedStripeRuns(t *testing.T) {
	// Dial 1 is the START control connection; dials 2-5 are the four
	// data connections. Refusing dials 2 and 3 with retries disabled
	// must degrade the epoch to two streams, not fail it.
	s := startServer(t)
	d := &seqDialer{fail: map[int]bool{2: true, 3: true}}
	c, err := NewClient(ClientConfig{
		Addr:   s.Addr(),
		Bytes:  xfer.Unbounded,
		Shaper: &Shaper{Rate: 4e6},
		Dialer: d.Dial,
		Retry:  RetryConfig{Attempts: -1}, // single attempt
	})
	if err != nil {
		t.Fatal(err)
	}
	r, err := c.Run(context.Background(), xfer.Params{NC: 2, NP: 2}, 0.2)
	if err != nil {
		t.Fatalf("degraded epoch failed: %v", err)
	}
	if r.DegradedStreams != 2 {
		t.Fatalf("DegradedStreams = %d, want 2", r.DegradedStreams)
	}
	if r.Bytes <= 0 {
		t.Fatalf("degraded epoch moved no bytes: %+v", r)
	}
}

func TestRetriesRecoverFailedDials(t *testing.T) {
	// Every even-numbered dial fails once; with 3 attempts per
	// connection each stream still comes up, with retries reported.
	s := startServer(t)
	d := &seqDialer{everyOther: true}
	c, err := NewClient(ClientConfig{
		Addr:   s.Addr(),
		Bytes:  xfer.Unbounded,
		Shaper: &Shaper{Rate: 4e6},
		Dialer: d.Dial,
		Retry:  RetryConfig{Attempts: 3, Backoff: time.Millisecond, MaxBackoff: 5 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	r, err := c.Run(context.Background(), xfer.Params{NC: 2, NP: 1}, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	if r.DegradedStreams != 0 {
		t.Fatalf("DegradedStreams = %d, want 0 (retries should recover)", r.DegradedStreams)
	}
	if r.Retries == 0 {
		t.Fatal("Retries = 0, want > 0")
	}
	if r.Bytes <= 0 {
		t.Fatalf("no bytes moved: %+v", r)
	}
}

func TestAllDialsFailedIsTransient(t *testing.T) {
	// A server that is gone mid-run must surface as a transient error,
	// so tuner runners keep the trace alive.
	s := startServer(t)
	addr := s.Addr()
	s.Close()
	c, err := NewClient(ClientConfig{
		Addr:        addr,
		Bytes:       1e6,
		DialTimeout: 200 * time.Millisecond,
		Retry:       RetryConfig{Attempts: 2, Backoff: time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	_, err = c.Run(context.Background(), xfer.Params{NC: 1, NP: 1}, 0.1)
	if err == nil {
		t.Fatal("run against dead server succeeded")
	}
	if !xfer.IsTransient(err) {
		t.Fatalf("dead-server error not transient: %v", err)
	}
}

func TestMinStreamsEnforced(t *testing.T) {
	// With MinStreams above the surviving stripe width the epoch must
	// fail transiently rather than run degraded.
	s := startServer(t)
	d := &seqDialer{fail: map[int]bool{2: true, 3: true, 4: true}}
	c, err := NewClient(ClientConfig{
		Addr:       s.Addr(),
		Bytes:      xfer.Unbounded,
		Dialer:     d.Dial,
		Retry:      RetryConfig{Attempts: -1},
		MinStreams: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	_, err = c.Run(context.Background(), xfer.Params{NC: 4, NP: 1}, 0.1)
	if err == nil {
		t.Fatal("epoch below MinStreams succeeded")
	}
	if !xfer.IsTransient(err) {
		t.Fatalf("partial-stripe error not transient: %v", err)
	}
}

func TestMinStreamsAboveStripeWidthIsConfigError(t *testing.T) {
	// When no dial failed and the epoch simply asks for fewer streams
	// than MinStreams, the error is a fatal config error — it must not
	// be transient (it would burn the tuner's outage budget) and must
	// not render a nil %w verb.
	s := startServer(t)
	c, err := NewClient(ClientConfig{
		Addr:       s.Addr(),
		Bytes:      xfer.Unbounded,
		MinStreams: 99,
	})
	if err != nil {
		t.Fatal(err)
	}
	_, err = c.Run(context.Background(), xfer.Params{NC: 2, NP: 1}, 0.1)
	if err == nil {
		t.Fatal("epoch below MinStreams succeeded")
	}
	if xfer.IsTransient(err) {
		t.Fatalf("config error wrongly transient: %v", err)
	}
	if s := err.Error(); strings.Contains(s, "%!w") {
		t.Fatalf("error message renders a nil wrap verb: %q", s)
	}
}

func TestReceiverTruthAccounting(t *testing.T) {
	// The epoch's Bytes must equal what the server counted, so a
	// follow-up STAT agrees immediately rather than eventually.
	s := startServer(t)
	c := newTestClient(t, s, xfer.Unbounded, &Shaper{Rate: 4e6})
	r, err := c.Run(context.Background(), xfer.Params{NC: 2, NP: 2}, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.ServerReceived()
	if err != nil {
		t.Fatal(err)
	}
	if float64(got) != r.Bytes {
		t.Fatalf("report says %v bytes, server counted %d", r.Bytes, got)
	}
}

func TestTunedTransferSurvivesInjectedFaults(t *testing.T) {
	// Acceptance: a tuned real-socket transfer completes under 20%
	// injected dial failures plus mid-epoch connection resets, and its
	// trace stays monotone in time. Deterministic per seed.
	s := startServer(t)
	in := faultnet.New(faultnet.Config{
		Seed:            11,
		DialFailProb:    0.20,
		ResetAfterBytes: 256 << 10, // every data conn dies mid-epoch
	})
	const size = 4 << 20
	c, err := NewClient(ClientConfig{
		Addr:   s.Addr(),
		Bytes:  size,
		Dialer: in.Dial,
		Retry:  RetryConfig{Attempts: 3, Backoff: time.Millisecond, MaxBackoff: 5 * time.Millisecond},
		Seed:   11,
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg := tuner.Config{
		Epoch:     0.1,
		Tolerance: 30,
		Restart:   tuner.FromCurrent,
		Box:       directsearch.MustBox([]int{1}, []int{8}),
		Start:     []int{2},
		Map:       tuner.MapNC(1),
		Budget:    30,
		Seed:      5,
		Lambda:    2,
	}
	tr, err := tuner.NewCS(cfg).Tune(context.Background(), c)
	if err != nil {
		t.Fatalf("tuned transfer did not survive the faults: %v", err)
	}
	if last := tr.Results[len(tr.Results)-1]; !last.Report.Done {
		t.Fatalf("transfer did not complete: remaining %v after %d epochs",
			c.Remaining(), len(tr.Results))
	}
	if in.Refused() == 0 {
		t.Fatal("injector refused no dials; the test exercised nothing")
	}
	if in.Resets() == 0 {
		t.Fatal("injector reset no connections; the test exercised nothing")
	}
	// Monotone trace: epochs ordered in time, each with End >= Start.
	prevEnd := 0.0
	for i, r := range tr.Results {
		if r.Report.End < r.Report.Start {
			t.Fatalf("epoch %d runs backwards: start %v end %v", i, r.Report.Start, r.Report.End)
		}
		if r.Report.Start < prevEnd {
			t.Fatalf("epoch %d starts (%v) before epoch %d ended (%v)",
				i, r.Report.Start, i-1, prevEnd)
		}
		prevEnd = r.Report.End
	}
	// Receiver truth: the trace's bytes sum to exactly the configured
	// volume — lost (reset) bytes were re-sent, buffered bytes were
	// not double-counted. (The server-side counter is gone by now:
	// Tune's deferred Stop sent CLOSE.)
	var moved float64
	for _, r := range tr.Results {
		moved += r.Report.Bytes
	}
	if moved != size {
		t.Fatalf("trace accounts %v bytes, want %d", moved, size)
	}
	if s.Tokens() != 0 {
		t.Fatalf("Tokens = %d after Stop, want 0", s.Tokens())
	}
}

// trackDialer counts dials and can be switched to refuse everything;
// it can also arm a die-after budget on the next dialed connections,
// so a test can kill specific stripes mid-epoch.
type trackDialer struct {
	mu       sync.Mutex
	n        int
	refuse   bool
	dieAfter map[int]int64 // dial number (1-based) -> byte budget
}

func (d *trackDialer) Dial(network, addr string, timeout time.Duration) (net.Conn, error) {
	d.mu.Lock()
	d.n++
	n := d.n
	refuse := d.refuse
	budget, die := d.dieAfter[n]
	d.mu.Unlock()
	if refuse {
		return nil, fmt.Errorf("trackDialer: injected refusal of dial %d: %w", n, syscall.ECONNREFUSED)
	}
	conn, err := net.DialTimeout(network, addr, timeout)
	if err != nil || !die {
		return conn, err
	}
	return &dieAfterConn{Conn: conn, remaining: budget}, nil
}

func (d *trackDialer) dials() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.n
}

func (d *trackDialer) setRefuse(v bool) {
	d.mu.Lock()
	d.refuse = v
	d.mu.Unlock()
}

// dieAfterConn fails writes with ECONNRESET once its byte budget is
// spent — a single stripe dying mid-epoch.
type dieAfterConn struct {
	net.Conn
	mu        sync.Mutex
	remaining int64
}

func (c *dieAfterConn) Write(p []byte) (int, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.remaining <= 0 {
		return 0, fmt.Errorf("dieAfterConn: %w", syscall.ECONNRESET)
	}
	if int64(len(p)) > c.remaining {
		p = p[:c.remaining]
	}
	n, err := c.Conn.Write(p)
	c.remaining -= int64(n)
	return n, err
}

func TestWarmPoolSteadyStateZeroDials(t *testing.T) {
	// First epoch: one control dial plus one per data connection.
	// Every following epoch with unchanged params: zero dials, full
	// stripe reuse.
	s := startServer(t)
	d := &trackDialer{}
	c, err := NewClient(ClientConfig{Addr: s.Addr(), Bytes: xfer.Unbounded, Dialer: d.Dial})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()
	for ep := 0; ep < 3; ep++ {
		r, err := c.Run(context.Background(), xfer.Params{NC: 2, NP: 1}, 0.05)
		if err != nil {
			t.Fatal(err)
		}
		wantDials, wantReused := 0, 2
		if ep == 0 {
			wantDials, wantReused = 3, 0 // control + 2 data
		}
		if r.Dials != wantDials || r.ReusedStreams != wantReused {
			t.Fatalf("epoch %d: Dials=%d ReusedStreams=%d, want %d/%d",
				ep, r.Dials, r.ReusedStreams, wantDials, wantReused)
		}
		if r.Bytes <= 0 {
			t.Fatalf("epoch %d moved no bytes", ep)
		}
	}
	if d.dials() != 3 {
		t.Fatalf("dialer saw %d dials across 3 epochs, want 3", d.dials())
	}
}

func TestWarmPoolDeltaDialing(t *testing.T) {
	// A +1 nc step dials exactly the missing stripe; a -1 step retires
	// one and dials nothing.
	s := startServer(t)
	d := &trackDialer{}
	c, err := NewClient(ClientConfig{Addr: s.Addr(), Bytes: xfer.Unbounded, Dialer: d.Dial})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()
	if _, err := c.Run(context.Background(), xfer.Params{NC: 2, NP: 1}, 0.05); err != nil {
		t.Fatal(err)
	}
	r, err := c.Run(context.Background(), xfer.Params{NC: 3, NP: 1}, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if r.Dials != 1 || r.ReusedStreams != 2 {
		t.Fatalf("+1 step: Dials=%d ReusedStreams=%d, want 1/2", r.Dials, r.ReusedStreams)
	}
	r, err = c.Run(context.Background(), xfer.Params{NC: 2, NP: 1}, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if r.Dials != 0 || r.ReusedStreams != 2 {
		t.Fatalf("-1 step: Dials=%d ReusedStreams=%d, want 0/2", r.Dials, r.ReusedStreams)
	}
}

func TestResetEvictsOnlyDeadStripes(t *testing.T) {
	// Kill exactly one of four stripes mid-epoch; the next epoch must
	// reuse the three survivors and re-dial exactly the evicted one.
	s := startServer(t)
	// Dial 1 is control, dials 2-5 are the four data connections; dial
	// 4 dies after 256 KiB.
	d := &trackDialer{dieAfter: map[int]int64{4: 256 << 10}}
	c, err := NewClient(ClientConfig{Addr: s.Addr(), Bytes: xfer.Unbounded, Dialer: d.Dial})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()
	r, err := c.Run(context.Background(), xfer.Params{NC: 4, NP: 1}, 0.1)
	if err != nil {
		t.Fatalf("epoch with one dying stripe failed: %v", err)
	}
	if r.Bytes <= 0 {
		t.Fatal("epoch moved no bytes")
	}
	r, err = c.Run(context.Background(), xfer.Params{NC: 4, NP: 1}, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if r.Dials != 1 || r.ReusedStreams != 3 {
		t.Fatalf("after eviction: Dials=%d ReusedStreams=%d, want 1/3", r.Dials, r.ReusedStreams)
	}
}

func TestWarmPoolMinStreamsDegradation(t *testing.T) {
	// A warm pool of two with all further dials refused: nc=4 with
	// MinStreams=2 runs degraded on the reused pair; MinStreams=3
	// fails transiently but keeps the pool, so recovery is a delta
	// dial, not a cold restart.
	for _, tc := range []struct {
		minStreams int
		wantErr    bool
	}{
		{minStreams: 2, wantErr: false},
		{minStreams: 3, wantErr: true},
	} {
		s := startServer(t)
		// Dial 1 is control, dials 2-5 the four data connections; two
		// of them die mid-epoch, leaving a warm pool of two.
		d := &trackDialer{dieAfter: map[int]int64{4: 128 << 10, 5: 128 << 10}}
		c, err := NewClient(ClientConfig{
			Addr:       s.Addr(),
			Bytes:      xfer.Unbounded,
			Dialer:     d.Dial,
			Retry:      RetryConfig{Attempts: -1},
			MinStreams: tc.minStreams,
		})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := c.Run(context.Background(), xfer.Params{NC: 4, NP: 1}, 0.1); err != nil {
			t.Fatal(err)
		}
		d.setRefuse(true)
		r, err := c.Run(context.Background(), xfer.Params{NC: 4, NP: 1}, 0.05)
		if tc.wantErr {
			if err == nil {
				t.Fatalf("MinStreams=%d: epoch below the floor succeeded", tc.minStreams)
			}
			if !xfer.IsTransient(err) {
				t.Fatalf("MinStreams=%d: error not transient: %v", tc.minStreams, err)
			}
		} else {
			if err != nil {
				t.Fatalf("MinStreams=%d: degraded warm epoch failed: %v", tc.minStreams, err)
			}
			if r.ReusedStreams != 2 || r.DegradedStreams != 2 {
				t.Fatalf("MinStreams=%d: ReusedStreams=%d DegradedStreams=%d, want 2/2",
					tc.minStreams, r.ReusedStreams, r.DegradedStreams)
			}
		}
		// The degradation is transient either way: once dials succeed
		// again, the next epoch reuses the surviving pair and dials
		// only the missing delta.
		d.setRefuse(false)
		r, err = c.Run(context.Background(), xfer.Params{NC: 4, NP: 1}, 0.05)
		if err != nil {
			t.Fatalf("MinStreams=%d: recovery epoch failed: %v", tc.minStreams, err)
		}
		if r.ReusedStreams != 2 || r.Dials != 2 || r.DegradedStreams != 0 {
			t.Fatalf("MinStreams=%d: recovery ReusedStreams=%d Dials=%d Degraded=%d, want 2/2/0",
				tc.minStreams, r.ReusedStreams, r.Dials, r.DegradedStreams)
		}
		c.Stop()
	}
}

func TestColdStartDialsEveryEpoch(t *testing.T) {
	// ColdStart restores the paper's restart behavior: each epoch
	// re-dials the full stripe and reuses nothing.
	s := startServer(t)
	d := &trackDialer{}
	c, err := NewClient(ClientConfig{Addr: s.Addr(), Bytes: xfer.Unbounded, Dialer: d.Dial, ColdStart: true})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()
	for ep := 0; ep < 2; ep++ {
		r, err := c.Run(context.Background(), xfer.Params{NC: 2, NP: 1}, 0.05)
		if err != nil {
			t.Fatal(err)
		}
		wantDials := 2 // the control connection stays persistent
		if ep == 0 {
			wantDials = 3
		}
		if r.Dials != wantDials || r.ReusedStreams != 0 {
			t.Fatalf("cold epoch %d: Dials=%d ReusedStreams=%d, want %d/0",
				ep, r.Dials, r.ReusedStreams, wantDials)
		}
	}
}

func TestServerCloseUnderConcurrentConnects(t *testing.T) {
	// Regression for the shutdown race: Close used to sweep s.conns
	// while just-accepted connections were not yet tracked, leaving
	// their handlers blocked in serveData and Close deadlocked in
	// wg.Wait. Hammer the server with connects while closing it.
	for round := 0; round < 5; round++ {
		s, err := Serve("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		addr := s.Addr()
		stop := make(chan struct{})
		var wg sync.WaitGroup
		for i := 0; i < 8; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					select {
					case <-stop:
						return
					default:
					}
					conn, err := net.DialTimeout("tcp", addr, time.Second)
					if err != nil {
						return
					}
					fmt.Fprintf(conn, "DATA race-token\n")
					conn.Write(make([]byte, 4096))
					conn.Close()
				}
			}()
		}
		time.Sleep(20 * time.Millisecond)
		closed := make(chan error, 1)
		go func() { closed <- s.Close() }()
		select {
		case err := <-closed:
			if err != nil {
				t.Fatal(err)
			}
		case <-time.After(5 * time.Second):
			t.Fatal("Close deadlocked under concurrent connects")
		}
		close(stop)
		wg.Wait()
	}
}

func TestStopReleasesServerToken(t *testing.T) {
	s := startServer(t)
	c := newTestClient(t, s, xfer.Unbounded, &Shaper{Rate: 4e6})
	if _, err := c.Run(context.Background(), xfer.Params{NC: 1, NP: 1}, 0.05); err != nil {
		t.Fatal(err)
	}
	if s.Tokens() != 1 {
		t.Fatalf("Tokens = %d after a run, want 1", s.Tokens())
	}
	c.Stop()
	deadline := time.Now().Add(2 * time.Second)
	for s.Tokens() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("Tokens = %d after Stop, want 0", s.Tokens())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestIdleTokenExpiry(t *testing.T) {
	s := startServer(t)
	s.SetTokenTTL(50 * time.Millisecond)
	// Register a token the way a client that dies without CLOSE does.
	conn, err := net.Dial("tcp", s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	fmt.Fprintf(conn, "START ghost 1\n")
	readLine(bufio.NewReader(conn))
	conn.Close()
	if s.Tokens() == 0 {
		t.Fatal("token not registered")
	}
	deadline := time.Now().Add(2 * time.Second)
	for s.Tokens() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("idle token never expired; Tokens = %d", s.Tokens())
		}
		time.Sleep(20 * time.Millisecond)
	}
}

func TestCloseCommandProtocol(t *testing.T) {
	s := startServer(t)
	conn, err := net.Dial("tcp", s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	br := bufio.NewReader(conn)
	fmt.Fprintf(conn, "START tokc 1\n")
	if resp, _ := readLine(br); resp != "OK" {
		t.Fatalf("START got %q", resp)
	}
	fmt.Fprintf(conn, "CLOSE tokc\n")
	if resp, _ := readLine(br); resp != "OK" {
		t.Fatalf("CLOSE got %q", resp)
	}
	if s.Tokens() != 0 {
		t.Fatalf("Tokens = %d after CLOSE, want 0", s.Tokens())
	}
	fmt.Fprintf(conn, "CLOSE\n")
	if resp, _ := readLine(br); resp != "ERR bad CLOSE" {
		t.Fatalf("bad CLOSE got %q", resp)
	}
}
