//go:build !linux

package gridftp

import "net"

// setCork is a no-op where TCP_CORK does not exist; the header simply
// rides in its own segment. Only the Linux zero-copy pump calls it on
// a hot path, and that pump is compiled out here anyway.
func setCork(*net.TCPConn, int) int64 { return 0 }
