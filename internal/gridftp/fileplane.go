package gridftp

import (
	"bufio"
	"fmt"
	"hash/fnv"
	"io"
	"net"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// maxManifestFiles bounds the file count one MANIFEST may register,
// so a hostile client cannot make the server allocate an unbounded
// file table.
const maxManifestFiles = 1 << 20

// fileTable is a token's server-side per-file state, registered by
// MANIFEST and fed by framed data connections. It hangs off the
// token's counter, so the idle-TTL janitor frees it with the token.
type fileTable struct {
	mu     sync.Mutex
	sizes  []int64
	got    []int64 // received bytes per file (duplicates included)
	done   []bool
	nDone  int
	useful int64 // sum of min(got, size): duplicate-free progress

	// sink, when non-nil, persists the table's payloads (the SINK
	// command); nil discards them.
	sink atomic.Pointer[fileSink]
}

// newFileTable builds a table for sizes; zero-length files are done
// on arrival.
func newFileTable(sizes []int64) *fileTable {
	ft := &fileTable{
		sizes: sizes,
		got:   make([]int64, len(sizes)),
		done:  make([]bool, len(sizes)),
	}
	for i, sz := range sizes {
		if sz <= 0 {
			ft.done[i] = true
			ft.nDone++
		}
	}
	return ft
}

// add credits n received bytes to file idx, maintaining the done count
// and the duplicate-free useful total (got beyond the file's size —
// a resend after a lost stripe — counts toward neither). It reports
// whether this credit completed the file.
func (ft *fileTable) add(idx int, n int64) (completed bool) {
	ft.mu.Lock()
	oldUseful := min(ft.got[idx], ft.sizes[idx])
	ft.got[idx] += n
	ft.useful += min(ft.got[idx], ft.sizes[idx]) - oldUseful
	if !ft.done[idx] && ft.got[idx] >= ft.sizes[idx] {
		ft.done[idx] = true
		ft.nDone++
		completed = true
	}
	ft.mu.Unlock()
	return completed
}

// sizeOf returns file idx's manifest size.
func (ft *fileTable) sizeOf(idx int) int64 {
	ft.mu.Lock()
	defer ft.mu.Unlock()
	return ft.sizes[idx]
}

// setSink installs (or with nil removes) the table's persistence
// sink, releasing the handles of the one it replaces.
func (ft *fileTable) setSink(fs *fileSink) {
	if old := ft.sink.Swap(fs); old != nil && old != fs {
		old.release()
	}
}

// stats returns the done count and duplicate-free received bytes.
func (ft *fileTable) stats() (done int, useful int64) {
	ft.mu.Lock()
	defer ft.mu.Unlock()
	return ft.nDone, ft.useful
}

// fileGot returns the raw received bytes for file idx.
func (ft *fileTable) fileGot(idx int) int64 {
	ft.mu.Lock()
	defer ft.mu.Unlock()
	return ft.got[idx]
}

// progress returns a copy of the per-file received counts.
func (ft *fileTable) progress() []int64 {
	ft.mu.Lock()
	defer ft.mu.Unlock()
	return append([]int64(nil), ft.got...)
}

// count returns the number of files in the table.
func (ft *fileTable) count() int {
	ft.mu.Lock()
	defer ft.mu.Unlock()
	return len(ft.sizes)
}

// SetFileLatency injects a delay between a pipelined OPEN request and
// its ACK, simulating the per-file handshake round trip that the
// pipelining depth (pp) hides. Pipelined OPENs are delayed
// concurrently — pp outstanding requests all ACK one latency after
// arrival — so the admission rate is pp/latency files per second.
// Zero (the default) ACKs immediately. Safe to call while serving.
func (s *Server) SetFileLatency(d time.Duration) { s.fileLatency.Store(int64(d)) }

// fileTableFor returns the token's file table, or nil when no
// MANIFEST registered one.
func (s *Server) fileTableFor(token string) *fileTable {
	s.mu.Lock()
	tc, ok := s.received[token]
	s.mu.Unlock()
	if !ok {
		return nil
	}
	tc.touch()
	return tc.files.Load()
}

// registerManifest installs the file table for token. A re-sent
// manifest with the same file count keeps the existing table — a
// resumed session must not erase the server's per-file progress — and
// any other shape replaces it, releasing the replaced table's sink
// handles.
func (s *Server) registerManifest(token string, sizes []int64) {
	tc := s.counter(token)
	old := tc.files.Load()
	if old != nil && old.count() == len(sizes) {
		return
	}
	tc.files.Store(newFileTable(sizes))
	if old != nil {
		old.setSink(nil)
	}
}

// sinkOpenFiles counts sink file handles currently open process-wide;
// the fuzz harness asserts hostile inputs leak none.
var sinkOpenFiles atomic.Int64

// maxSinkHandles caps the open handles one sink caches; beyond it an
// arbitrary handle is evicted and reopened on that file's next write.
const maxSinkHandles = 128

// fileSink persists one token's framed payloads as index-named files
// under the token's sink directory. The single lock covers both the
// handle cache and the writes: a pwrite must not race the eviction or
// release of its handle.
type fileSink struct {
	mu      sync.Mutex
	dir     string
	handles map[int]*os.File
	closed  bool
}

// newFileSink returns a sink writing under dir.
func newFileSink(dir string) *fileSink {
	return &fileSink{dir: dir, handles: make(map[int]*os.File)}
}

// writeAt persists p at offset off of file idx.
func (fs *fileSink) writeAt(idx int, p []byte, off int64) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if fs.closed {
		return os.ErrClosed
	}
	f, ok := fs.handles[idx]
	if !ok {
		if len(fs.handles) >= maxSinkHandles {
			for i, h := range fs.handles {
				h.Close()
				sinkOpenFiles.Add(-1)
				delete(fs.handles, i)
				break
			}
		}
		var err error
		f, err = os.OpenFile(filepath.Join(fs.dir, fmt.Sprintf("%06d", idx)), os.O_CREATE|os.O_WRONLY, 0o644)
		if err != nil {
			return err
		}
		sinkOpenFiles.Add(1)
		fs.handles[idx] = f
	}
	_, err := f.WriteAt(p, off)
	return err
}

// closeIdx drops file idx's cached handle (the file completed, so the
// cache slot is better spent on a file still in flight).
func (fs *fileSink) closeIdx(idx int) {
	fs.mu.Lock()
	if f, ok := fs.handles[idx]; ok {
		f.Close()
		sinkOpenFiles.Add(-1)
		delete(fs.handles, idx)
	}
	fs.mu.Unlock()
}

// release closes every cached handle and refuses further writes.
func (fs *fileSink) release() {
	fs.mu.Lock()
	for i, f := range fs.handles {
		f.Close()
		sinkOpenFiles.Add(-1)
		delete(fs.handles, i)
	}
	fs.closed = true
	fs.mu.Unlock()
}

// sinkDirName maps a token to a directory name that cannot escape the
// sink root: unsafe bytes are masked, the length is bounded, and a
// short FNV hash keeps distinct tokens from colliding after masking.
func sinkDirName(token string) string {
	h := fnv.New32a()
	io.WriteString(h, token)
	safe := make([]byte, 0, 24)
	for i := 0; i < len(token) && len(safe) < 24; i++ {
		c := token[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '-', c == '_', c == '.':
			safe = append(safe, c)
		default:
			safe = append(safe, '_')
		}
	}
	return fmt.Sprintf("%s-%08x", safe, h.Sum32())
}

// serveSink handles SINK <token>: it switches the token's framed data
// plane from discarding payloads to persisting them under the
// server's sink root (Server.SetSink). Requires a prior MANIFEST and
// a configured sink; either missing is an ERR. Idempotent for a token
// already sinking.
func (s *Server) serveSink(w io.Writer, fields []string) bool {
	if len(fields) != 2 {
		fmt.Fprintf(w, "ERR bad SINK\n")
		return false
	}
	root := s.sinkDir()
	if root == "" {
		fmt.Fprintf(w, "ERR sink not configured\n")
		return false
	}
	ft := s.fileTableFor(fields[1])
	if ft == nil {
		fmt.Fprintf(w, "ERR SINK before MANIFEST\n")
		return false
	}
	if ft.sink.Load() == nil {
		dir := filepath.Join(root, sinkDirName(fields[1]))
		if err := os.MkdirAll(dir, 0o755); err != nil {
			s.logf("gridftp: sink: %v", err)
			fmt.Fprintf(w, "ERR sink unavailable\n")
			return false
		}
		ft.setSink(newFileSink(dir))
	}
	fmt.Fprintf(w, "OK\n")
	return true
}

// connWriter serializes line writes to a control connection, so the
// delayed ACKs of pipelined OPENs never interleave mid-line with a
// synchronous response.
type connWriter struct {
	mu sync.Mutex
	c  net.Conn
}

// Write implements io.Writer under the lock.
func (w *connWriter) Write(p []byte) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.c.Write(p)
}

// serveManifest handles MANIFEST <token> <count>: it reads count size
// lines from br and registers the token's file table. Malformed input
// gets an ERR and drops the connection; the token's existing state is
// never corrupted by a bad manifest.
func (s *Server) serveManifest(w io.Writer, br *bufio.Reader, fields []string) bool {
	if len(fields) != 3 {
		fmt.Fprintf(w, "ERR bad MANIFEST\n")
		return false
	}
	count, err := strconv.Atoi(fields[2])
	if err != nil || count < 0 || count > maxManifestFiles {
		fmt.Fprintf(w, "ERR bad MANIFEST count\n")
		return false
	}
	sizes := make([]int64, count)
	for i := range sizes {
		line, err := readLine(br)
		if err != nil {
			return false
		}
		v, err := strconv.ParseInt(strings.TrimSpace(line), 10, 64)
		if err != nil || v < 0 {
			fmt.Fprintf(w, "ERR bad MANIFEST size\n")
			return false
		}
		sizes[i] = v
	}
	s.registerManifest(fields[1], sizes)
	fmt.Fprintf(w, "OK\n")
	return true
}

// serveOpen handles OPEN <token> <idx>: it validates the index
// against the token's manifest and schedules the ACK after the
// configured file latency. ACKs are concurrent across pipelined
// OPENs, writing through the locked writer.
func (s *Server) serveOpen(w *connWriter, fields []string) bool {
	if len(fields) != 3 {
		fmt.Fprintf(w, "ERR bad OPEN\n")
		return false
	}
	idx, err := strconv.Atoi(fields[2])
	if err != nil || idx < 0 {
		fmt.Fprintf(w, "ERR bad OPEN index\n")
		return false
	}
	ft := s.fileTableFor(fields[1])
	if ft == nil || idx >= ft.count() {
		fmt.Fprintf(w, "ERR OPEN outside manifest\n")
		return false
	}
	ack := func() { fmt.Fprintf(w, "ACK %d\n", idx) }
	if lat := time.Duration(s.fileLatency.Load()); lat > 0 {
		time.AfterFunc(lat, ack)
	} else {
		ack()
	}
	return true
}

// serveFstat handles FSTAT <token> [<idx>]: the aggregate form
// answers FILES <done> <useful-bytes> (duplicate-free receiver
// truth); the per-file form answers BYTES <got>.
func (s *Server) serveFstat(w io.Writer, fields []string) bool {
	ft := s.fileTableFor(fields[1])
	switch len(fields) {
	case 2:
		if ft == nil {
			fmt.Fprintf(w, "FILES 0 0\n")
			return true
		}
		done, useful := ft.stats()
		fmt.Fprintf(w, "FILES %d %d\n", done, useful)
		return true
	case 3:
		idx, err := strconv.Atoi(fields[2])
		if err != nil || idx < 0 || ft == nil || idx >= ft.count() {
			fmt.Fprintf(w, "ERR bad FSTAT index\n")
			return false
		}
		fmt.Fprintf(w, "BYTES %d\n", ft.fileGot(idx))
		return true
	default:
		fmt.Fprintf(w, "ERR bad FSTAT\n")
		return false
	}
}

// serveResync handles RESYNC <token>: it streams the token's per-file
// received counts — one "F <idx> <got>" line per file with any bytes,
// then "END" — so a resuming client rebuilds its work queue at
// file/offset granularity instead of re-sending the epoch.
func (s *Server) serveResync(w io.Writer, fields []string) bool {
	if len(fields) != 2 {
		fmt.Fprintf(w, "ERR bad RESYNC\n")
		return false
	}
	ft := s.fileTableFor(fields[1])
	if ft == nil {
		fmt.Fprintf(w, "END\n")
		return true
	}
	bw := bufio.NewWriter(w)
	for idx, got := range ft.progress() {
		if got > 0 {
			fmt.Fprintf(bw, "F %d %d\n", idx, got)
		}
	}
	fmt.Fprintf(bw, "END\n")
	return bw.Flush() == nil
}

// serveDataFramed discards a framed data stream: FILE <idx> <off>
// <len> headers each followed by exactly len payload bytes, credited
// to both the token's aggregate counter (so STAT keeps working) and
// its per-file table. A malformed or out-of-manifest frame drops the
// connection; bytes that arrived before the corruption stay counted,
// and other tokens' tables are untouched. A truncated final frame
// (stripe killed mid-file) credits what arrived — the client resends
// the deficit after reconciling.
func (s *Server) serveDataFramed(conn net.Conn, br *bufio.Reader, token string) {
	tc := s.counter(token)
	m := s.metrics.Load()
	bufp := fileDrainPool.Get().(*[]byte)
	defer fileDrainPool.Put(bufp)
	buf := *bufp
	// Discard mode tries the truncating receive first: payload bytes
	// the kernel can drop in place never cross into userspace. One
	// rejected attempt (non-Linux conn types, old kernels) disables it
	// for the connection's lifetime.
	tryTrunc := true
	for {
		line, err := readLine(br)
		if err != nil {
			return
		}
		fields := strings.Fields(line)
		if len(fields) != 4 || fields[0] != "FILE" {
			s.logf("gridftp: bad frame header %q", line)
			return
		}
		idx, err1 := strconv.Atoi(fields[1])
		off, err2 := strconv.ParseInt(fields[2], 10, 64)
		length, err3 := strconv.ParseInt(fields[3], 10, 64)
		if err1 != nil || err2 != nil || err3 != nil || idx < 0 || off < 0 || length < 0 {
			s.logf("gridftp: bad frame header %q", line)
			return
		}
		ft := tc.files.Load()
		if ft == nil || idx >= ft.count() {
			s.logf("gridftp: frame for file %d outside manifest", idx)
			return
		}
		sink := ft.sink.Load()
		if sink != nil {
			// A persisted frame must stay inside the manifest size:
			// a hostile offset would otherwise make pwrite allocate
			// an arbitrarily large sparse file. (The check is
			// overflow-safe: off <= sz first, then length against the
			// non-negative remainder.) Discard mode keeps the lenient
			// behavior — bytes past the size count toward nothing.
			if sz := ft.sizeOf(idx); off > sz || length > sz-off {
				s.logf("gridftp: sink frame for file %d outside its %d bytes", idx, ft.sizeOf(idx))
				return
			}
		}
		for rem, pos := length, off; rem > 0; {
			if sink == nil && tryTrunc && br.Buffered() == 0 {
				ok, terr := discardPayload(conn, rem, func(k int64) {
					rem -= k
					tc.n.Add(k)
					m.AddBytes(k)
					ft.add(idx, k)
					s.touchToken(tc)
				})
				if ok {
					if terr != nil {
						return
					}
					continue
				}
				tryTrunc = false
			}
			want := rem
			if want > int64(len(buf)) {
				want = int64(len(buf))
			}
			if b := int64(br.Buffered()); sink == nil && tryTrunc && b > 0 && want > b {
				// Only the header read's overshoot is buffered; drain
				// just that through the copy path and let the socket
				// remainder take the truncating receive.
				want = b
			}
			n, err := br.Read(buf[:want])
			if n > 0 {
				if sink != nil {
					if werr := sink.writeAt(idx, buf[:n], pos); werr != nil {
						// Nothing persisted: leave the read uncredited,
						// so receiver truth stays what is actually on
						// disk and the client resends the deficit after
						// reconciling.
						s.logf("gridftp: sink write: %v", werr)
						return
					}
				}
				pos += int64(n)
				rem -= int64(n)
				tc.n.Add(int64(n))
				m.AddBytes(int64(n))
				if ft.add(idx, int64(n)) && sink != nil {
					sink.closeIdx(idx)
				}
				s.touchToken(tc)
			}
			if err != nil {
				return
			}
		}
	}
}

// fileDrainChunk is the framed data plane's receive buffer size. The
// zero-copy pump delivers whole multi-MiB leases in one kernel burst;
// draining them 64 KiB at a time costs 16x the read syscalls and, on
// small hosts, lets the receive queue back up far enough to stall the
// sender's ACK clock. A 1 MiB drain keeps the receiver ahead of
// sendfile-sized bursts at one pooled buffer per active stream.
const fileDrainChunk = 1 << 20

// fileDrainPool recycles the framed plane's receive buffers.
var fileDrainPool = sync.Pool{
	New: func() any {
		buf := make([]byte, fileDrainChunk)
		return &buf
	},
}
