package gridftp

import (
	"bufio"
	"fmt"
	"io"
	"net"
	"strconv"
	"strings"
	"sync"
	"time"
)

// maxManifestFiles bounds the file count one MANIFEST may register,
// so a hostile client cannot make the server allocate an unbounded
// file table.
const maxManifestFiles = 1 << 20

// fileTable is a token's server-side per-file state, registered by
// MANIFEST and fed by framed data connections. It hangs off the
// token's counter, so the idle-TTL janitor frees it with the token.
type fileTable struct {
	mu     sync.Mutex
	sizes  []int64
	got    []int64 // received bytes per file (duplicates included)
	done   []bool
	nDone  int
	useful int64 // sum of min(got, size): duplicate-free progress
}

// newFileTable builds a table for sizes; zero-length files are done
// on arrival.
func newFileTable(sizes []int64) *fileTable {
	ft := &fileTable{
		sizes: sizes,
		got:   make([]int64, len(sizes)),
		done:  make([]bool, len(sizes)),
	}
	for i, sz := range sizes {
		if sz <= 0 {
			ft.done[i] = true
			ft.nDone++
		}
	}
	return ft
}

// add credits n received bytes to file idx, maintaining the done count
// and the duplicate-free useful total (got beyond the file's size —
// a resend after a lost stripe — counts toward neither).
func (ft *fileTable) add(idx int, n int64) {
	ft.mu.Lock()
	oldUseful := min(ft.got[idx], ft.sizes[idx])
	ft.got[idx] += n
	ft.useful += min(ft.got[idx], ft.sizes[idx]) - oldUseful
	if !ft.done[idx] && ft.got[idx] >= ft.sizes[idx] {
		ft.done[idx] = true
		ft.nDone++
	}
	ft.mu.Unlock()
}

// stats returns the done count and duplicate-free received bytes.
func (ft *fileTable) stats() (done int, useful int64) {
	ft.mu.Lock()
	defer ft.mu.Unlock()
	return ft.nDone, ft.useful
}

// fileGot returns the raw received bytes for file idx.
func (ft *fileTable) fileGot(idx int) int64 {
	ft.mu.Lock()
	defer ft.mu.Unlock()
	return ft.got[idx]
}

// progress returns a copy of the per-file received counts.
func (ft *fileTable) progress() []int64 {
	ft.mu.Lock()
	defer ft.mu.Unlock()
	return append([]int64(nil), ft.got...)
}

// count returns the number of files in the table.
func (ft *fileTable) count() int {
	ft.mu.Lock()
	defer ft.mu.Unlock()
	return len(ft.sizes)
}

// SetFileLatency injects a delay between a pipelined OPEN request and
// its ACK, simulating the per-file handshake round trip that the
// pipelining depth (pp) hides. Pipelined OPENs are delayed
// concurrently — pp outstanding requests all ACK one latency after
// arrival — so the admission rate is pp/latency files per second.
// Zero (the default) ACKs immediately. Safe to call while serving.
func (s *Server) SetFileLatency(d time.Duration) { s.fileLatency.Store(int64(d)) }

// fileTableFor returns the token's file table, or nil when no
// MANIFEST registered one.
func (s *Server) fileTableFor(token string) *fileTable {
	s.mu.Lock()
	tc, ok := s.received[token]
	s.mu.Unlock()
	if !ok {
		return nil
	}
	tc.touch()
	return tc.files.Load()
}

// registerManifest installs the file table for token. A re-sent
// manifest with the same file count keeps the existing table — a
// resumed session must not erase the server's per-file progress — and
// any other shape replaces it.
func (s *Server) registerManifest(token string, sizes []int64) {
	tc := s.counter(token)
	if ft := tc.files.Load(); ft != nil && ft.count() == len(sizes) {
		return
	}
	tc.files.Store(newFileTable(sizes))
}

// connWriter serializes line writes to a control connection, so the
// delayed ACKs of pipelined OPENs never interleave mid-line with a
// synchronous response.
type connWriter struct {
	mu sync.Mutex
	c  net.Conn
}

// Write implements io.Writer under the lock.
func (w *connWriter) Write(p []byte) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.c.Write(p)
}

// serveManifest handles MANIFEST <token> <count>: it reads count size
// lines from br and registers the token's file table. Malformed input
// gets an ERR and drops the connection; the token's existing state is
// never corrupted by a bad manifest.
func (s *Server) serveManifest(w io.Writer, br *bufio.Reader, fields []string) bool {
	if len(fields) != 3 {
		fmt.Fprintf(w, "ERR bad MANIFEST\n")
		return false
	}
	count, err := strconv.Atoi(fields[2])
	if err != nil || count < 0 || count > maxManifestFiles {
		fmt.Fprintf(w, "ERR bad MANIFEST count\n")
		return false
	}
	sizes := make([]int64, count)
	for i := range sizes {
		line, err := readLine(br)
		if err != nil {
			return false
		}
		v, err := strconv.ParseInt(strings.TrimSpace(line), 10, 64)
		if err != nil || v < 0 {
			fmt.Fprintf(w, "ERR bad MANIFEST size\n")
			return false
		}
		sizes[i] = v
	}
	s.registerManifest(fields[1], sizes)
	fmt.Fprintf(w, "OK\n")
	return true
}

// serveOpen handles OPEN <token> <idx>: it validates the index
// against the token's manifest and schedules the ACK after the
// configured file latency. ACKs are concurrent across pipelined
// OPENs, writing through the locked writer.
func (s *Server) serveOpen(w *connWriter, fields []string) bool {
	if len(fields) != 3 {
		fmt.Fprintf(w, "ERR bad OPEN\n")
		return false
	}
	idx, err := strconv.Atoi(fields[2])
	if err != nil || idx < 0 {
		fmt.Fprintf(w, "ERR bad OPEN index\n")
		return false
	}
	ft := s.fileTableFor(fields[1])
	if ft == nil || idx >= ft.count() {
		fmt.Fprintf(w, "ERR OPEN outside manifest\n")
		return false
	}
	ack := func() { fmt.Fprintf(w, "ACK %d\n", idx) }
	if lat := time.Duration(s.fileLatency.Load()); lat > 0 {
		time.AfterFunc(lat, ack)
	} else {
		ack()
	}
	return true
}

// serveFstat handles FSTAT <token> [<idx>]: the aggregate form
// answers FILES <done> <useful-bytes> (duplicate-free receiver
// truth); the per-file form answers BYTES <got>.
func (s *Server) serveFstat(w io.Writer, fields []string) bool {
	ft := s.fileTableFor(fields[1])
	switch len(fields) {
	case 2:
		if ft == nil {
			fmt.Fprintf(w, "FILES 0 0\n")
			return true
		}
		done, useful := ft.stats()
		fmt.Fprintf(w, "FILES %d %d\n", done, useful)
		return true
	case 3:
		idx, err := strconv.Atoi(fields[2])
		if err != nil || idx < 0 || ft == nil || idx >= ft.count() {
			fmt.Fprintf(w, "ERR bad FSTAT index\n")
			return false
		}
		fmt.Fprintf(w, "BYTES %d\n", ft.fileGot(idx))
		return true
	default:
		fmt.Fprintf(w, "ERR bad FSTAT\n")
		return false
	}
}

// serveResync handles RESYNC <token>: it streams the token's per-file
// received counts — one "F <idx> <got>" line per file with any bytes,
// then "END" — so a resuming client rebuilds its work queue at
// file/offset granularity instead of re-sending the epoch.
func (s *Server) serveResync(w io.Writer, fields []string) bool {
	if len(fields) != 2 {
		fmt.Fprintf(w, "ERR bad RESYNC\n")
		return false
	}
	ft := s.fileTableFor(fields[1])
	if ft == nil {
		fmt.Fprintf(w, "END\n")
		return true
	}
	bw := bufio.NewWriter(w)
	for idx, got := range ft.progress() {
		if got > 0 {
			fmt.Fprintf(bw, "F %d %d\n", idx, got)
		}
	}
	fmt.Fprintf(bw, "END\n")
	return bw.Flush() == nil
}

// serveDataFramed discards a framed data stream: FILE <idx> <off>
// <len> headers each followed by exactly len payload bytes, credited
// to both the token's aggregate counter (so STAT keeps working) and
// its per-file table. A malformed or out-of-manifest frame drops the
// connection; bytes that arrived before the corruption stay counted,
// and other tokens' tables are untouched. A truncated final frame
// (stripe killed mid-file) credits what arrived — the client resends
// the deficit after reconciling.
func (s *Server) serveDataFramed(br *bufio.Reader, token string) {
	tc := s.counter(token)
	m := s.metrics.Load()
	bufp := dataBufPool.Get().(*[]byte)
	defer dataBufPool.Put(bufp)
	buf := *bufp
	for {
		line, err := readLine(br)
		if err != nil {
			return
		}
		fields := strings.Fields(line)
		if len(fields) != 4 || fields[0] != "FILE" {
			s.logf("gridftp: bad frame header %q", line)
			return
		}
		idx, err1 := strconv.Atoi(fields[1])
		off, err2 := strconv.ParseInt(fields[2], 10, 64)
		length, err3 := strconv.ParseInt(fields[3], 10, 64)
		if err1 != nil || err2 != nil || err3 != nil || idx < 0 || off < 0 || length < 0 {
			s.logf("gridftp: bad frame header %q", line)
			return
		}
		ft := tc.files.Load()
		if ft == nil || idx >= ft.count() {
			s.logf("gridftp: frame for file %d outside manifest", idx)
			return
		}
		for rem := length; rem > 0; {
			want := rem
			if want > int64(len(buf)) {
				want = int64(len(buf))
			}
			n, err := br.Read(buf[:want])
			if n > 0 {
				rem -= int64(n)
				tc.n.Add(int64(n))
				m.AddBytes(int64(n))
				ft.add(idx, int64(n))
				tc.touch()
			}
			if err != nil {
				return
			}
		}
	}
}
