package gridftp

import (
	"bufio"
	"context"
	"fmt"
	"io"
	"net"
	"strings"
	"testing"
	"time"

	"dstune/internal/dataset"
	"dstune/internal/directsearch"
	"dstune/internal/faultnet"
	"dstune/internal/tuner"
	"dstune/internal/xfer"
)

// dialCtrl opens a raw protocol connection to the server.
func dialCtrl(t *testing.T, s *Server) (net.Conn, *bufio.Reader) {
	t.Helper()
	conn, err := net.Dial("tcp", s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	return conn, bufio.NewReader(conn)
}

// roundTrip sends one command line and asserts the exact response.
func roundTrip(t *testing.T, conn net.Conn, br *bufio.Reader, cmd, want string) {
	t.Helper()
	if _, err := fmt.Fprintf(conn, "%s\n", cmd); err != nil {
		t.Fatalf("%q: %v", cmd, err)
	}
	resp, err := readLine(br)
	if err != nil {
		t.Fatalf("%q: %v", cmd, err)
	}
	if resp != want {
		t.Fatalf("%q got %q, want %q", cmd, resp, want)
	}
}

// waitFileStats polls the token's file table until it reports the
// wanted done count and useful bytes (data connections credit
// asynchronously).
func waitFileStats(t *testing.T, s *Server, token string, wantDone int, wantUseful int64) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for {
		if ft := s.fileTableFor(token); ft != nil {
			if done, useful := ft.stats(); done == wantDone && useful == wantUseful {
				return
			}
		}
		if time.Now().After(deadline) {
			ft := s.fileTableFor(token)
			if ft == nil {
				t.Fatalf("token %q has no file table", token)
			}
			done, useful := ft.stats()
			t.Fatalf("token %q stats %d/%d, want %d/%d", token, done, useful, wantDone, wantUseful)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// sendFrame pushes one framed segment on its own DATAF connection,
// truncating the payload to sendBytes when it is below length.
func sendFrame(t *testing.T, s *Server, token string, idx int, off, length, sendBytes int64) {
	t.Helper()
	conn, err := net.Dial("tcp", s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := fmt.Fprintf(conn, "DATAF %s\nFILE %d %d %d\n", token, idx, off, length); err != nil {
		t.Fatal(err)
	}
	for rem := sendBytes; rem > 0; {
		n := rem
		if n > fileChunk {
			n = fileChunk
		}
		m, err := conn.Write(fileZeros[:n])
		rem -= int64(m)
		if err != nil {
			t.Fatal(err)
		}
	}
}

func TestManifestLifecycle(t *testing.T) {
	s := startServer(t)
	conn, br := dialCtrl(t, s)
	// Register 3 files; the zero-length one is done on arrival.
	roundTrip(t, conn, br, "MANIFEST tokm 3\n100\n200\n0", "OK")
	roundTrip(t, conn, br, "FSTAT tokm", "FILES 1 0")
	roundTrip(t, conn, br, "FSTAT tokm 1", "BYTES 0")

	// Complete file 0.
	sendFrame(t, s, "tokm", 0, 0, 100, 100)
	waitFileStats(t, s, "tokm", 2, 100)

	// A re-sent manifest of the same shape keeps the progress (the
	// resume path must not erase the server's per-file state).
	roundTrip(t, conn, br, "MANIFEST tokm 3\n100\n200\n0", "OK")
	roundTrip(t, conn, br, "FSTAT tokm", "FILES 2 100")

	// A different shape replaces the table.
	roundTrip(t, conn, br, "MANIFEST tokm 2\n50\n50", "OK")
	roundTrip(t, conn, br, "FSTAT tokm", "FILES 0 0")
}

func TestManifestRejectsHostileInput(t *testing.T) {
	s := startServer(t)
	for _, tc := range []struct{ input, wantPrefix string }{
		{"MANIFEST badtok", "ERR bad MANIFEST"},
		{"MANIFEST badtok x", "ERR bad MANIFEST count"},
		{"MANIFEST badtok -1", "ERR bad MANIFEST count"},
		{"MANIFEST badtok 1048577", "ERR bad MANIFEST count"},
		{"MANIFEST badtok 1\nxyz", "ERR bad MANIFEST size"},
		{"MANIFEST badtok 1\n-5", "ERR bad MANIFEST size"},
	} {
		conn, br := dialCtrl(t, s)
		fmt.Fprintf(conn, "%s\n", tc.input)
		resp, err := readLine(br)
		if err != nil {
			t.Fatalf("%q: %v", tc.input, err)
		}
		if !strings.HasPrefix(resp, tc.wantPrefix) {
			t.Fatalf("%q got %q, want prefix %q", tc.input, resp, tc.wantPrefix)
		}
		conn.Close()
	}
	// None of the rejected manifests may have installed a table.
	if ft := s.fileTableFor("badtok"); ft != nil {
		t.Fatal("rejected manifest left a file table behind")
	}
}

func TestOpenAcksArePipelined(t *testing.T) {
	s := startServer(t)
	const lat = 150 * time.Millisecond
	s.SetFileLatency(lat)
	conn, br := dialCtrl(t, s)
	roundTrip(t, conn, br, "MANIFEST toko 6\n10\n10\n10\n10\n10\n10", "OK")

	var sb strings.Builder
	for i := 0; i < 6; i++ {
		fmt.Fprintf(&sb, "OPEN toko %d\n", i)
	}
	start := time.Now()
	if _, err := conn.Write([]byte(sb.String())); err != nil {
		t.Fatal(err)
	}
	seen := make(map[int]bool)
	for i := 0; i < 6; i++ {
		resp, err := readLine(br)
		if err != nil {
			t.Fatal(err)
		}
		var idx int
		if _, err := fmt.Sscanf(resp, "ACK %d", &idx); err != nil {
			t.Fatalf("bad ACK %q", resp)
		}
		seen[idx] = true
	}
	elapsed := time.Since(start)
	if len(seen) != 6 {
		t.Fatalf("ACKed %d distinct files, want 6", len(seen))
	}
	// Concurrent delays: all six ACKs land about one latency after the
	// requests, not six latencies (900 ms) as a serial server would.
	if elapsed < lat-30*time.Millisecond {
		t.Fatalf("ACKs arrived in %v, before the %v file latency", elapsed, lat)
	}
	if elapsed > 4*lat {
		t.Fatalf("pipelined ACKs took %v, want about one %v latency", elapsed, lat)
	}

	// Hostile OPENs.
	s.SetFileLatency(0)
	for _, bad := range []string{"OPEN toko 99", "OPEN toko -1", "OPEN ghost-token 0"} {
		c2, br2 := dialCtrl(t, s)
		fmt.Fprintf(c2, "%s\n", bad)
		resp, err := readLine(br2)
		if err != nil {
			t.Fatalf("%q: %v", bad, err)
		}
		if !strings.HasPrefix(resp, "ERR") {
			t.Fatalf("%q got %q, want ERR", bad, resp)
		}
		c2.Close()
	}
}

func TestFramedDataAccounting(t *testing.T) {
	s := startServer(t)
	conn, br := dialCtrl(t, s)
	roundTrip(t, conn, br, "MANIFEST tokf 2\n1000\n1000", "OK")

	// Partial segment of file 0.
	sendFrame(t, s, "tokf", 0, 0, 600, 600)
	waitFileStats(t, s, "tokf", 0, 600)

	// Full resend of file 0 (a lost-stripe recovery): raw got runs to
	// 1600 but the duplicate-free useful total clamps at the file size.
	sendFrame(t, s, "tokf", 0, 0, 1000, 1000)
	waitFileStats(t, s, "tokf", 1, 1000)
	roundTrip(t, conn, br, "FSTAT tokf 0", "BYTES 1600")

	// Truncated frame (stripe killed mid-file): the 200 bytes that
	// arrived stay credited.
	sendFrame(t, s, "tokf", 1, 0, 500, 200)
	waitFileStats(t, s, "tokf", 1, 1200)

	// RESYNC streams the raw per-file counts for the client to rebuild
	// its queue from.
	fmt.Fprintf(conn, "RESYNC tokf\n")
	got := make(map[int]int64)
	for {
		line, err := readLine(br)
		if err != nil {
			t.Fatal(err)
		}
		if line == "END" {
			break
		}
		var idx int
		var n int64
		if _, err := fmt.Sscanf(line, "F %d %d", &idx, &n); err != nil {
			t.Fatalf("bad RESYNC line %q", line)
		}
		got[idx] = n
	}
	if got[0] != 1600 || got[1] != 200 || len(got) != 2 {
		t.Fatalf("RESYNC reported %v, want {0:1600, 1:200}", got)
	}

	// A frame for an unmanifested token drops its connection without
	// touching tokf's table.
	sendFrame(t, s, "straytok", 0, 0, 10, 10)
	time.Sleep(50 * time.Millisecond)
	if ft := s.fileTableFor("straytok"); ft != nil {
		t.Fatal("unmanifested token grew a file table")
	}
	waitFileStats(t, s, "tokf", 1, 1200)
}

func TestDatasetTransferCompletes(t *testing.T) {
	s := startServer(t)
	const nFiles = 48
	ds := dataset.Uniform(nFiles, 64<<10)
	c, err := NewClient(ClientConfig{Addr: s.Addr(), Dataset: ds})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Stop()
	total := float64(ds.TotalBytes())
	var moved float64
	files := 0
	for i := 0; i < 40; i++ {
		r, err := c.Run(context.Background(), xfer.Params{NC: 2, NP: 1, PP: 4}, 0.2)
		if err != nil {
			t.Fatal(err)
		}
		moved += r.Bytes
		files += r.Files
		if r.Done {
			if moved != total {
				t.Fatalf("reports account %v bytes, want %v", moved, total)
			}
			if files != nFiles {
				t.Fatalf("reports account %d files, want %d", files, nFiles)
			}
			if c.Remaining() != 0 {
				t.Fatalf("done but remaining %v", c.Remaining())
			}
			// Server-side receiver truth agrees file by file.
			ft := s.fileTableFor(c.Token())
			if ft == nil {
				t.Fatal("server lost the file table")
			}
			done, useful := ft.stats()
			if done != nFiles || useful != ds.TotalBytes() {
				t.Fatalf("server counted %d files / %d bytes, want %d / %d",
					done, useful, nFiles, ds.TotalBytes())
			}
			return
		}
	}
	t.Fatal("dataset transfer never completed")
}

func TestDatasetResumeAtFileOffsetGranularity(t *testing.T) {
	s := startServer(t)
	ds := dataset.Uniform(32, 64<<10) // 2 MiB
	c1, err := NewClient(ClientConfig{Addr: s.Addr(), Dataset: ds, Shaper: &Shaper{Rate: 1e6}})
	if err != nil {
		t.Fatal(err)
	}
	// One shaped epoch moves only part of the dataset, ending mid-file.
	r1, err := c1.Run(context.Background(), xfer.Params{NC: 2, NP: 1, PP: 8}, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Bytes <= 0 || r1.Done {
		t.Fatalf("first epoch should be a partial transfer: %+v", r1)
	}
	snap := c1.Snapshot()
	if snap.Acked != r1.Bytes {
		t.Fatalf("snapshot acked %v, epoch moved %v", snap.Acked, r1.Bytes)
	}
	// Abandon c1 without Stop (a crash keeps the server's token alive);
	// resume under a fresh client seeded from the snapshot.
	c2, err := NewClient(ClientConfig{
		Addr:        s.Addr(),
		Dataset:     ds,
		Token:       snap.Token,
		AckedBytes:  snap.Acked,
		ClockOffset: snap.Clock,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Stop()
	moved := snap.Acked
	files := r1.Files
	for i := 0; i < 40; i++ {
		r, err := c2.Run(context.Background(), xfer.Params{NC: 2, NP: 1, PP: 8}, 0.2)
		if err != nil {
			t.Fatal(err)
		}
		moved += r.Bytes
		files += r.Files
		if r.Done {
			if moved != float64(ds.TotalBytes()) {
				t.Fatalf("sessions account %v bytes, want %d (duplicates or losses across the resume)",
					moved, ds.TotalBytes())
			}
			if files != ds.Count() {
				t.Fatalf("sessions account %d files, want %d", files, ds.Count())
			}
			ft := s.fileTableFor(snap.Token)
			if ft == nil {
				t.Fatal("server lost the file table")
			}
			if done, useful := ft.stats(); done != ds.Count() || useful != ds.TotalBytes() {
				t.Fatalf("server counted %d files / %d bytes, want %d / %d",
					done, useful, ds.Count(), ds.TotalBytes())
			}
			return
		}
	}
	t.Fatal("resumed transfer never completed")
}

func TestPipeliningHidesFileLatency(t *testing.T) {
	// Acceptance (part A): with per-file handshake latency injected,
	// the epoch at pipelining depth 8 must recover well over 25%
	// throughput over depth 1 at the same (nc, np) — the admission rate
	// is pp/latency, so the gap is nominally 8x.
	s := startServer(t)
	s.SetFileLatency(20 * time.Millisecond)
	measure := func(pp int) xfer.Report {
		ds := dataset.Uniform(4096, 64<<10)
		c, err := NewClient(ClientConfig{Addr: s.Addr(), Dataset: ds})
		if err != nil {
			t.Fatal(err)
		}
		defer c.Stop()
		r, err := c.Run(context.Background(), xfer.Params{NC: 2, NP: 1, PP: pp}, 0.4)
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	one := measure(1)
	eight := measure(8)
	if one.Bytes <= 0 || eight.Bytes <= 0 {
		t.Fatalf("no progress: pp1 %v bytes, pp8 %v bytes", one.Bytes, eight.Bytes)
	}
	if eight.Throughput < 1.25*one.Throughput {
		t.Fatalf("pp=8 throughput %v not >= 1.25x pp=1 throughput %v",
			eight.Throughput, one.Throughput)
	}
	// The first byte waits for the first ACK, so the injected latency
	// must show up in the report's first-byte lag.
	if one.FirstByteLag < 0.015 {
		t.Fatalf("FirstByteLag %v below the injected 20 ms handshake", one.FirstByteLag)
	}
}

func TestTuned3DFindsPipelining(t *testing.T) {
	// Acceptance (part B): the cd strategy tuning all three dimensions
	// (nc, np, pp) over real sockets with injected per-file latency
	// must discover pp > 1 and beat the pp=1 baseline by >= 25%.
	s := startServer(t)
	s.SetFileLatency(20 * time.Millisecond)

	baselineDS := dataset.Uniform(20000, 64<<10)
	bc, err := NewClient(ClientConfig{Addr: s.Addr(), Dataset: baselineDS})
	if err != nil {
		t.Fatal(err)
	}
	baseline := 0.0
	for i := 0; i < 3; i++ {
		r, err := bc.Run(context.Background(), xfer.Params{NC: 2, NP: 1, PP: 1}, 0.25)
		if err != nil {
			t.Fatal(err)
		}
		if r.Throughput > baseline {
			baseline = r.Throughput
		}
	}
	bc.Stop()
	if baseline <= 0 {
		t.Fatal("pp=1 baseline moved nothing")
	}

	ds := dataset.Uniform(20000, 64<<10)
	c, err := NewClient(ClientConfig{Addr: s.Addr(), Dataset: ds})
	if err != nil {
		t.Fatal(err)
	}
	cfg := tuner.Config{
		Epoch:     0.25,
		Tolerance: 30,
		Restart:   tuner.FromCurrent,
		Box:       directsearch.MustBox([]int{1, 1, 1}, []int{4, 2, 16}),
		Start:     []int{2, 1, 1}, // pp starts at 1: the tuner must discover the depth
		Map:       tuner.MapNCNPPP(),
		Budget:    10,
		Seed:      7,
	}
	tr, err := tuner.NewCD(cfg).Tune(context.Background(), c)
	if err != nil {
		t.Fatal(err)
	}
	best := tr.Results[0]
	for _, r := range tr.Results {
		if r.Report.Throughput > best.Report.Throughput {
			best = r
		}
	}
	if best.X[2] <= 1 {
		t.Fatalf("cd-tuner never left pp=1; best epoch at %v", best.X)
	}
	if best.Report.Throughput < 1.25*baseline {
		t.Fatalf("tuned best %v not >= 1.25x pp=1 baseline %v (best at %v)",
			best.Report.Throughput, baseline, best.X)
	}
}

func TestDatasetSurvivesInjectedFaults(t *testing.T) {
	// Acceptance (part C): a dataset transfer completes under 20%
	// injected dial failures plus mid-epoch connection resets, with
	// byte- and file-exact accounting on both ends.
	s := startServer(t)
	in := faultnet.New(faultnet.Config{
		Seed:            11,
		DialFailProb:    0.20,
		ResetAfterBytes: 256 << 10,
	})
	const nFiles = 300
	ds := dataset.Uniform(nFiles, 16<<10) // ~4.7 MiB
	c, err := NewClient(ClientConfig{
		Addr:    s.Addr(),
		Dataset: ds,
		Dialer:  in.Dial,
		Retry:   RetryConfig{Attempts: 3, Backoff: time.Millisecond, MaxBackoff: 5 * time.Millisecond},
		Seed:    11,
	})
	if err != nil {
		t.Fatal(err)
	}
	var moved float64
	files := 0
	done := false
	for i := 0; i < 200 && !done; i++ {
		r, err := c.Run(context.Background(), xfer.Params{NC: 2, NP: 2, PP: 4}, 0.15)
		if err != nil {
			if xfer.IsTransient(err) {
				continue // an outage epoch; the next one retries
			}
			t.Fatal(err)
		}
		moved += r.Bytes
		files += r.Files
		done = r.Done
	}
	if !done {
		t.Fatalf("transfer never completed; moved %v of %d", moved, ds.TotalBytes())
	}
	if moved != float64(ds.TotalBytes()) {
		t.Fatalf("reports account %v bytes, want %d (resets must re-send, duplicates must not double-count)",
			moved, ds.TotalBytes())
	}
	if files != nFiles {
		t.Fatalf("reports account %d files, want %d", files, nFiles)
	}
	ft := s.fileTableFor(c.Token())
	if ft == nil {
		t.Fatal("server lost the file table")
	}
	if done, useful := ft.stats(); done != nFiles || useful != ds.TotalBytes() {
		t.Fatalf("server counted %d files / %d bytes, want %d / %d",
			done, useful, nFiles, ds.TotalBytes())
	}
	if in.Refused() == 0 {
		t.Fatal("injector refused no dials; the test exercised nothing")
	}
	if in.Resets() == 0 {
		t.Fatal("injector reset no connections; the test exercised nothing")
	}
	c.Stop()
	deadline := time.Now().Add(2 * time.Second)
	for s.Tokens() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("Tokens = %d after Stop, want 0", s.Tokens())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// FuzzServerControl hammers the server's control and framed-data
// parsers with hostile input. The contract: the server never panics,
// never corrupts another token's file table, and never grows a token
// the TTL janitor cannot expire.
func FuzzServerControl(f *testing.F) {
	seeds := []string{
		"MANIFEST t 2\n100\n200\n",
		"MANIFEST t 2\n100\n", // truncated manifest
		"MANIFEST t -1\n",
		"MANIFEST t 1048577\n",
		"MANIFEST t 99999999999999999999\n",
		"MANIFEST t 1\nxyz\n",
		"MANIFEST t 1\n-5\n",
		"MANIFEST\n",
		"OPEN t 0\n",
		"OPEN t -1\n",
		"OPEN t 999\n",
		"OPEN\n",
		"FSTAT t\n",
		"FSTAT t 0\nFSTAT t 99\nFSTAT t x\n",
		"RESYNC t\n",
		"RESYNC\n",
		"DATAF t\nFILE 0 0 10\n0123456789",
		"DATAF t\nFILE 0 0 10\n0123", // truncated frame
		"DATAF t\nFILE -1 0 10\n",
		"DATAF t\nFILE 0 0 nonsense\n",
		"DATAF t\nFILE 0 0 99999999999\n",
		"DATAF t\nGARBAGE\n",
		"FILE 0 0 10\n",
		"MANIFEST t 2\n100\n200\nOPEN t 0\nFSTAT t\nRESYNC t\nCLOSE t\n",
		"START t 4\nMANIFEST t 3\n1\n2\n3\nOPEN t 2\nSTAT t\n",
		strings.Repeat("MANIFEST t 1\n1\n", 20),
		"\x00\xff\n",
		strings.Repeat("x", 300) + "\n", // over maxLineLen
		// SINK: before manifest, malformed, hostile token names, and
		// sinked frames with out-of-bounds offsets and lengths.
		"SINK t\n",
		"SINK\n",
		"SINK t extra\n",
		"SINK " + strings.Repeat("A", 200) + "\n",
		"MANIFEST ../../evil 1\n10\nSINK ../../evil\n",
		"MANIFEST t 1\n10\nSINK t\nSINK t\nDATAF t\nFILE 0 0 10\n0123456789",
		"MANIFEST t 1\n10\nSINK t\nDATAF t\nFILE 0 8 10\n0123456789",
		"MANIFEST t 1\n10\nSINK t\nDATAF t\nFILE 0 99999999999999 5\nabcde",
		"MANIFEST t 1\n10\nSINK t\nDATAF t\nFILE 0 0 5\nabc", // truncated sink frame
		"MANIFEST t 2\n10\n10\nSINK t\nDATAF t\nFILE 1 0 10\n0123456789FILE 0 0 10\n0123456789",
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := Serve("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		defer s.Close()
		// A sink root makes the SINK verbs land real pwrites, so the
		// hostile frames exercise the bounds checks and the handle
		// cache, not just the parser.
		s.SetSink(t.TempDir())
		// A bystander token with a registered manifest: hostile traffic
		// against other tokens must not touch it.
		kc, err := net.Dial("tcp", s.Addr())
		if err != nil {
			t.Fatal(err)
		}
		fmt.Fprintf(kc, "MANIFEST keeper 2\n100\n200\n")
		if resp, err := readLine(bufio.NewReader(kc)); err != nil || resp != "OK" {
			t.Fatalf("keeper manifest: %q, %v", resp, err)
		}
		kc.Close()

		hc, err := net.Dial("tcp", s.Addr())
		if err != nil {
			t.Fatal(err)
		}
		hc.SetDeadline(time.Now().Add(2 * time.Second))
		hc.Write(data)
		if tc, ok := hc.(*net.TCPConn); ok {
			tc.CloseWrite()
		}
		io.Copy(io.Discard, hc) // drain responses until the server hangs up
		hc.Close()
		s.Close() // waits for every handler, so the checks below are quiesced

		ft := s.fileTableFor("keeper")
		if ft == nil || ft.count() != 2 {
			t.Fatalf("hostile input corrupted the keeper token's file table: %v", ft)
		}
		if done, useful := ft.stats(); done != 0 || useful != 0 {
			t.Fatalf("keeper token gained phantom progress: %d files, %d bytes", done, useful)
		}
		// Whatever tokens the input created must expire with the TTL
		// janitor; force the sweep rather than waiting out the clock.
		s.expireTokens(time.Now().Add(24 * time.Hour))
		if n := s.Tokens(); n != 0 {
			t.Fatalf("%d tokens leaked past the TTL janitor", n)
		}
		// Every sink handle the input may have opened must be closed
		// once the server and janitor have quiesced.
		if n := sinkOpenFiles.Load(); n != 0 {
			t.Fatalf("%d sink file handles leaked", n)
		}
	})
}
