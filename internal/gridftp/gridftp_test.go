package gridftp

import (
	"bufio"
	"context"
	"fmt"
	"math"
	"net"
	"sort"
	"strings"
	"testing"
	"time"

	"dstune/internal/directsearch"
	"dstune/internal/tuner"
	"dstune/internal/xfer"
)

// startServer launches a loopback server and registers its shutdown.
func startServer(t *testing.T) *Server {
	t.Helper()
	s, err := Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func newTestClient(t *testing.T, s *Server, bytes float64, sh *Shaper) *Client {
	t.Helper()
	c, err := NewClient(ClientConfig{Addr: s.Addr(), Bytes: bytes, Shaper: sh})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestClientConfigValidation(t *testing.T) {
	if _, err := NewClient(ClientConfig{Bytes: 1}); err == nil {
		t.Fatal("missing address accepted")
	}
	if _, err := NewClient(ClientConfig{Addr: "x", Bytes: 0}); err == nil {
		t.Fatal("zero size accepted")
	}
	c, err := NewClient(ClientConfig{Addr: "x", Bytes: xfer.Unbounded})
	if err != nil {
		t.Fatal(err)
	}
	if c.Remaining() <= 0 {
		t.Fatal("unbounded client has no remaining budget")
	}
}

func TestTransferMovesBytes(t *testing.T) {
	s := startServer(t)
	c := newTestClient(t, s, xfer.Unbounded, &Shaper{Rate: 4e6})
	r, err := c.Run(context.Background(), xfer.Params{NC: 2, NP: 2}, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	if r.Bytes <= 0 || r.Throughput <= 0 {
		t.Fatalf("no progress: %+v", r)
	}
	if r.DeadTime <= 0 || r.BestCase < r.Throughput {
		t.Fatalf("setup accounting wrong: dead=%v best=%v obs=%v", r.DeadTime, r.BestCase, r.Throughput)
	}
	// Server-side count must eventually match what the client sent.
	deadline := time.Now().Add(2 * time.Second)
	for {
		got, err := c.ServerReceived()
		if err != nil {
			t.Fatal(err)
		}
		if float64(got) == r.Bytes {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("server received %d, client sent %v", got, r.Bytes)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestBoundedTransferCompletes(t *testing.T) {
	s := startServer(t)
	const size = 1 << 20
	c := newTestClient(t, s, size, nil)
	var total float64
	for i := 0; i < 20; i++ {
		r, err := c.Run(context.Background(), xfer.Params{NC: 2, NP: 1}, 0.2)
		if err != nil {
			t.Fatal(err)
		}
		total += r.Bytes
		if r.Done {
			if c.Remaining() != 0 {
				t.Fatalf("done but remaining %v", c.Remaining())
			}
			if total != size {
				t.Fatalf("moved %v, want %d", total, size)
			}
			return
		}
	}
	t.Fatal("transfer never completed")
}

func TestRunErrors(t *testing.T) {
	s := startServer(t)
	c := newTestClient(t, s, xfer.Unbounded, nil)
	if _, err := c.Run(context.Background(), xfer.Params{NC: 1, NP: 1}, 0); err != xfer.ErrBadEpoch {
		t.Fatalf("zero epoch: %v", err)
	}
	if _, err := c.Run(context.Background(), xfer.Params{}, 0.1); err != xfer.ErrBadParams {
		t.Fatalf("bad params: %v", err)
	}
	c.Stop()
	if _, err := c.Run(context.Background(), xfer.Params{NC: 1, NP: 1}, 0.1); err != xfer.ErrStopped {
		t.Fatalf("after stop: %v", err)
	}
}

func TestRunAgainstDeadServer(t *testing.T) {
	s := startServer(t)
	addr := s.Addr()
	s.Close()
	c, err := NewClient(ClientConfig{Addr: addr, Bytes: 1e6, DialTimeout: 200 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Run(context.Background(), xfer.Params{NC: 1, NP: 1}, 0.1); err == nil {
		t.Fatal("run against closed server succeeded")
	}
}

func TestShapedRateRespected(t *testing.T) {
	s := startServer(t)
	c := newTestClient(t, s, xfer.Unbounded, &Shaper{Rate: 2e6})
	r, err := c.Run(context.Background(), xfer.Params{NC: 3, NP: 1}, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	// 3 connections at 2 MB/s: ~3 MB in 0.5 s. Allow generous slack
	// for scheduling noise and the initial burst.
	if r.BestCase > 9e6 {
		t.Fatalf("shaped best-case %v far above 6e6", r.BestCase)
	}
	if r.Bytes < 1e6 {
		t.Fatalf("shaped transfer too slow: %v bytes", r.Bytes)
	}
}

func TestMoreConnectionsMoreThroughputWhenShaped(t *testing.T) {
	s := startServer(t)
	measure := func(nc int) float64 {
		c := newTestClient(t, s, xfer.Unbounded, &Shaper{Rate: 2e6})
		r, err := c.Run(context.Background(), xfer.Params{NC: nc, NP: 1}, 0.4)
		if err != nil {
			t.Fatal(err)
		}
		return r.BestCase
	}
	one, four := measure(1), measure(4)
	if four < 2*one {
		t.Fatalf("4 conns (%v) not well above 1 conn (%v)", four, one)
	}
}

func TestShaperOptimum(t *testing.T) {
	sh := &Shaper{Rate: 1e6, Quad: 1.0 / 36}
	if got := sh.Optimum(); got != 6 {
		t.Fatalf("Optimum = %d, want 6", got)
	}
	if (&Shaper{}).Optimum() != 0 {
		t.Fatal("unshaped Optimum should be 0")
	}
	if (*Shaper)(nil).Optimum() != 0 {
		t.Fatal("nil Optimum should be 0")
	}
	if !math.IsInf((*Shaper)(nil).perConnRate(4), 1) {
		t.Fatal("nil shaper should be unlimited")
	}
	// Aggregate peaks at the optimum.
	agg := func(n int) float64 { return float64(n) * sh.perConnRate(n) }
	if !(agg(6) > agg(1) && agg(6) > agg(30)) {
		t.Fatalf("aggregate not peaked at 6: %v %v %v", agg(1), agg(6), agg(30))
	}
}

func TestQuadShaperInteriorPeakOnWire(t *testing.T) {
	s := startServer(t)
	sh := &Shaper{Rate: 4e6, Quad: 1.0 / 16} // optimum at 4 conns
	measure := func(nc int) float64 {
		c := newTestClient(t, s, xfer.Unbounded, sh)
		r, err := c.Run(context.Background(), xfer.Params{NC: nc, NP: 1}, 0.4)
		if err != nil {
			t.Fatal(err)
		}
		return r.BestCase
	}
	mid := measure(4)
	lo := measure(1)
	hi := measure(16)
	if !(mid > lo && mid > hi) {
		t.Fatalf("no interior peak: nc=1 %v, nc=4 %v, nc=16 %v", lo, mid, hi)
	}
}

func TestTunerOverRealSockets(t *testing.T) {
	// End-to-end: cs-tuner finds the shaped optimum over loopback.
	s := startServer(t)
	sh := &Shaper{Rate: 4e6, Quad: 1.0 / 16} // optimum at 4
	c := newTestClient(t, s, xfer.Unbounded, sh)
	cfg := tuner.Config{
		Epoch: 0.2, // wall-clock seconds
		// Loopback timing is far noisier than a 30 s WAN epoch; a
		// tight tolerance would keep re-triggering the search.
		Tolerance: 30,
		Restart:   tuner.FromCurrent,
		Box:       directsearch.MustBox([]int{1}, []int{32}),
		Start:     []int{1},
		Map:       tuner.MapNC(1),
		Budget:    12,
		Seed:      3,
		Lambda:    4,
	}
	tr, err := tuner.NewCS(cfg).Tune(context.Background(), c)
	if err != nil {
		t.Fatal(err)
	}
	// Judge by where the tuner spent the second half of the run.
	var xs []int
	for _, r := range tr.Results[len(tr.Results)/2:] {
		xs = append(xs, r.X[0])
	}
	sort.Ints(xs)
	med := xs[len(xs)/2]
	if med < 2 || med > 10 {
		t.Fatalf("cs-tuner over sockets spent its time at nc=%d (median), want near 4", med)
	}
}

func TestServerRejectsGarbage(t *testing.T) {
	s := startServer(t)
	conn, err := net.Dial("tcp", s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	fmt.Fprintf(conn, "BOGUS nonsense\n")
	resp, err := readLine(bufio.NewReader(conn))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(resp, "ERR") {
		t.Fatalf("garbage got %q, want ERR", resp)
	}
}

func TestServerRejectsBadStart(t *testing.T) {
	s := startServer(t)
	for _, cmd := range []string{"START onlytoken", "START tok notanumber", "STAT", "DATA"} {
		conn, err := net.Dial("tcp", s.Addr())
		if err != nil {
			t.Fatal(err)
		}
		fmt.Fprintf(conn, "%s\n", cmd)
		resp, err := readLine(bufio.NewReader(conn))
		conn.Close()
		if err != nil {
			t.Fatalf("%q: %v", cmd, err)
		}
		if !strings.HasPrefix(resp, "ERR") {
			t.Fatalf("%q got %q, want ERR", cmd, resp)
		}
	}
}

func TestControlMultipleCommands(t *testing.T) {
	s := startServer(t)
	conn, err := net.Dial("tcp", s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	br := bufio.NewReader(conn)
	fmt.Fprintf(conn, "START tok1 4\n")
	if resp, _ := readLine(br); resp != "OK" {
		t.Fatalf("START got %q", resp)
	}
	fmt.Fprintf(conn, "STAT tok1\n")
	if resp, _ := readLine(br); resp != "BYTES 0" {
		t.Fatalf("STAT got %q", resp)
	}
}

func TestStatUnknownTokenIsZero(t *testing.T) {
	s := startServer(t)
	if got := s.Received("never-seen"); got != 0 {
		t.Fatalf("Received(unknown) = %d", got)
	}
}

func TestServerCloseIdempotent(t *testing.T) {
	s := startServer(t)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestNowAndTokens(t *testing.T) {
	s := startServer(t)
	c := newTestClient(t, s, xfer.Unbounded, nil)
	if c.Now() != 0 {
		t.Fatal("Now before first run should be 0")
	}
	if c.Token() == "" {
		t.Fatal("empty token")
	}
	c2 := newTestClient(t, s, xfer.Unbounded, nil)
	if c.Token() == c2.Token() {
		t.Fatal("tokens collide")
	}
	if _, err := c.Run(context.Background(), xfer.Params{NC: 1, NP: 1}, 0.05); err != nil {
		t.Fatal(err)
	}
	if c.Now() <= 0 {
		t.Fatal("Now did not advance")
	}
}

func TestServerDiesMidEpoch(t *testing.T) {
	// Kill the server while the client is pumping: the epoch must end
	// with the bytes moved so far rather than hanging or panicking.
	s := startServer(t)
	c := newTestClient(t, s, xfer.Unbounded, &Shaper{Rate: 1e6})
	done := make(chan xfer.Report, 1)
	go func() {
		r, err := c.Run(context.Background(), xfer.Params{NC: 2, NP: 1}, 2)
		if err != nil {
			t.Error(err)
		}
		done <- r
	}()
	time.Sleep(300 * time.Millisecond)
	s.Close()
	select {
	case r := <-done:
		if r.Bytes <= 0 {
			t.Fatalf("no bytes before the crash: %+v", r)
		}
		// The write failures must end the epoch early.
		if r.End-r.Start > 1.9 {
			t.Fatalf("epoch ran to full length (%v s) despite dead server", r.End-r.Start)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("client hung after server death")
	}
}

func TestBudgetNotLostOnWriteFailure(t *testing.T) {
	// A bounded transfer that hits a dead server keeps its unsent
	// budget for the next attempt.
	s := startServer(t)
	const size = 10 << 20
	c := newTestClient(t, s, size, &Shaper{Rate: 1e6})
	r, err := c.Run(context.Background(), xfer.Params{NC: 1, NP: 1}, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	if got := c.Remaining() + r.Bytes; got != size {
		t.Fatalf("budget leak: remaining %v + moved %v != %v", c.Remaining(), r.Bytes, got)
	}
}
