//go:build linux && !dstune_nozerocopy

package gridftp

import (
	"io"
	"net"
	"os"
)

// zeroCopyAvailable reports whether this build can route file payload
// through the kernel's sendfile(2) fast path. The dstune_nozerocopy
// build tag forces the portable userspace path for A/B testing.
const zeroCopyAvailable = true

// sendFileSegment pushes n bytes of f starting at off into conn
// without crossing userspace: net.TCPConn.ReadFrom on an *os.File
// engages sendfile(2), the kernel looping internally over partial
// sends. Returns the bytes actually moved (short on error, e.g. an
// expired write deadline). Costs one lseek plus one sendfile chain
// per call, independent of n — the reason the zero-copy pump uses
// leases an order of magnitude larger than the userspace quantum.
func sendFileSegment(conn *net.TCPConn, f *os.File, off, n int64) (int64, error) {
	if _, err := f.Seek(off, io.SeekStart); err != nil {
		return 0, err
	}
	return conn.ReadFrom(&io.LimitedReader{R: f, N: n})
}
