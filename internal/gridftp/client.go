package gridftp

import (
	"bufio"
	"context"
	"fmt"
	"math/rand"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"dstune/internal/dataset"
	"dstune/internal/obs"
	"dstune/internal/tcpinfo"
	"dstune/internal/xfer"
)

// DialFunc dials a network address with a timeout; it is the
// signature of net.DialTimeout. Clients accept one so tests can
// substitute a fault-injecting dialer (internal/faultnet).
type DialFunc func(network, addr string, timeout time.Duration) (net.Conn, error)

// RetryConfig governs per-connection dial retries. Each failed dial
// (or data-header write) is retried after an exponentially growing,
// jittered backoff, up to Attempts total tries.
type RetryConfig struct {
	// Attempts is the total number of tries per connection (first try
	// included); zero selects 3, values below 1 select 1.
	Attempts int
	// Backoff is the delay before the first retry; it doubles per
	// retry. Zero selects 50 ms.
	Backoff time.Duration
	// MaxBackoff caps the grown backoff; zero selects 1 s.
	MaxBackoff time.Duration
}

// withDefaults returns r with zero fields replaced by defaults.
func (r RetryConfig) withDefaults() RetryConfig {
	if r.Attempts == 0 {
		r.Attempts = 3
	}
	if r.Attempts < 1 {
		r.Attempts = 1
	}
	if r.Backoff == 0 {
		r.Backoff = 50 * time.Millisecond
	}
	if r.MaxBackoff == 0 {
		r.MaxBackoff = time.Second
	}
	return r
}

// ClientConfig configures a transfer client.
type ClientConfig struct {
	// Addr is the server's address.
	Addr string
	// Bytes is the total volume to transfer; use xfer.Unbounded for
	// open-ended runs. With a Dataset, leave it zero (it is derived
	// from the dataset's total size).
	Bytes float64
	// Dataset, when non-empty, switches the client from the bulk
	// memory-to-memory stream to the multi-file framed data plane: the
	// dataset is registered on the server by a MANIFEST exchange, data
	// connections carry per-file segments behind FILE headers, file
	// starts are pipelined up to the epoch's pp depth (Params.PP), and
	// accounting is per-file receiver truth. Empty keeps the bulk
	// plane bit-for-bit unchanged.
	Dataset dataset.Dataset
	// SourceDir switches the dataset's payload from synthesized zeros
	// to real file contents: manifest entry i is read from
	// SourceDir/<name>. Validated up front — every name must be a
	// local path and exist as a regular file of at least the manifest
	// size. On Linux, leases on unwrapped *net.TCPConn stripes are
	// routed through sendfile(2), so payload bytes never cross
	// userspace; elsewhere — or under NoZeroCopy, the
	// dstune_nozerocopy build tag, or wrapped connections — a portable
	// pread+writev pump produces the identical byte stream. Requires a
	// Dataset.
	SourceDir string
	// NoZeroCopy forces the portable userspace copy path even where
	// the kernel fast path is available — the runtime A/B switch the
	// syscall-discipline benchmarks flip.
	NoZeroCopy bool
	// RequestSink asks the server to persist the transferred files
	// under its configured sink directory (Server.SetSink) instead of
	// discarding them, via a SINK exchange after the manifest. A
	// server without a sink refuses, failing the epoch fatally.
	// Requires a Dataset.
	RequestSink bool
	// TCPInfo samples every surviving data connection's kernel TCP
	// state (RTT, cwnd, delivery rate, retransmits) at each epoch
	// boundary via getsockopt(TCP_INFO), surfacing per-stripe samples
	// on Report.Kernel and the session's observability instruments.
	// Linux only; elsewhere — and on wrapped connections — Kernel
	// simply stays nil.
	TCPInfo bool
	// Shaper optionally imposes per-connection rate limits; nil
	// pumps at full speed.
	Shaper *Shaper
	// Token identifies the transfer on the server; empty generates
	// one.
	Token string
	// DialTimeout bounds each connection setup; zero selects 5 s.
	DialTimeout time.Duration
	// Dialer overrides the network dialer; nil uses net.DialTimeout.
	Dialer DialFunc
	// Retry governs per-connection dial retries and backoff.
	Retry RetryConfig
	// MinStreams is the minimum number of data connections an epoch
	// must establish after retries to proceed degraded instead of
	// failing; zero selects 1.
	MinStreams int
	// Seed drives the backoff jitter, deterministic per seed.
	Seed uint64
	// AckedBytes seeds the receiver-confirmed byte count when resuming
	// a checkpointed transfer: the server has already received this
	// many bytes for Token, so Bytes-AckedBytes remain to send.
	// Requires an explicit Token (the server-side counter must be the
	// same one the original session fed).
	AckedBytes float64
	// ClockOffset advances the transfer clock when resuming: Now
	// reports ClockOffset plus the wall time since the first Run, so a
	// tuning Budget counts cumulative transfer time across sessions.
	ClockOffset float64
	// SockBuf, when positive, sizes the kernel socket buffers
	// (SetReadBuffer/SetWriteBuffer) of every data connection, in
	// bytes. Zero keeps the OS default.
	SockBuf int
	// ColdStart disables the warm stripe pool: every epoch performs
	// the START handshake and dials a fresh set of data connections,
	// tearing them down afterwards — the per-epoch process restart of
	// the paper's wrappers. The default (false) keeps data connections
	// and the control connection alive across epochs, so a
	// steady-state epoch performs zero dials.
	ColdStart bool
	// Obs, when non-nil, receives the client's fine-grained data-plane
	// events (StripeDialed, StripeEvicted) and keeps the warm-pool
	// gauge current. Per-epoch aggregates (dials, retries, throughput)
	// are recorded by the tuning Driver from the epoch Report, not
	// here, so the two layers never double-count. Nil disables
	// observation; the pump path is never instrumented either way.
	Obs *obs.SessionObs
}

// clientSeq disambiguates generated tokens within a process.
var clientSeq atomic.Int64

// Client is a striped memory-to-memory sender. It implements
// xfer.Transferer against wall-clock time: each Run pumps zeros over
// nc*np data connections for the epoch. The data plane is warm by
// default — connections persist in a stripe pool across Run calls and
// only the delta between epochs is dialed or retired (see the package
// comment); ClientConfig.ColdStart restores the per-epoch restart.
//
// Run is fault-tolerant: connection setup retries transiently failed
// dials with exponential backoff, and an epoch whose stripe partly
// fails after retries runs degraded on the surviving streams (see the
// package comment's error taxonomy). Run must not be called
// concurrently with itself.
type Client struct {
	cfg   ClientConfig
	token string

	rngMu sync.Mutex
	rng   *rand.Rand

	// stopCh is closed by Stop so an in-flight Run — including its
	// retry backoffs and failed-epoch pacing — aborts promptly.
	stopCh chan struct{}

	mu        sync.Mutex
	remaining atomic.Int64
	start     time.Time
	started   bool
	stopped   bool
	runs      int
	acked     int64 // server-confirmed bytes (receiver truth)

	// Warm data plane, guarded by mu so Stop can sweep it while a Run
	// is in flight. Only Run mutates it otherwise (Run is not
	// concurrent with itself).
	pool  []net.Conn    // live data stripes, surviving Run boundaries
	ctrl  net.Conn      // persistent control connection
	ctrlR *bufio.Reader // reader paired with ctrl

	// File plane (dataset mode only; nil fq selects the bulk stream).
	// Mutated only by Run and NewClient — never concurrently.
	fq           *fileQueue
	src          *fileSource // file-backed payload (SourceDir); nil synthesizes zeros
	datasetBytes int64       // total payload bytes across the dataset
	manifested   bool        // MANIFEST registered on the server
	sinkOK       bool        // SINK accepted by the server this session
	needResync   bool        // queue must resync against server counters
	lastDone     int         // server's completed-file count last reconcile
	lastRetrans  int64       // summed stripe retransmit counters last sample
	gotScratch   []int64     // reusable RESYNC parse buffer
}

// NewClient returns a client for cfg. It does not touch the network
// until the first Run.
func NewClient(cfg ClientConfig) (*Client, error) {
	if cfg.Addr == "" {
		return nil, fmt.Errorf("gridftp: address required")
	}
	datasetMode := cfg.Dataset.Count() > 0
	if datasetMode {
		total := cfg.Dataset.TotalBytes()
		if cfg.Bytes == 0 {
			cfg.Bytes = float64(total)
		} else if cfg.Bytes != float64(total) {
			return nil, fmt.Errorf("gridftp: Bytes %v disagrees with the dataset's %d bytes; leave it zero", cfg.Bytes, total)
		}
	}
	if cfg.Bytes <= 0 {
		return nil, fmt.Errorf("gridftp: transfer size must be positive, got %v", cfg.Bytes)
	}
	if cfg.SourceDir != "" && !datasetMode {
		return nil, fmt.Errorf("gridftp: SourceDir requires a Dataset")
	}
	if cfg.RequestSink && !datasetMode {
		return nil, fmt.Errorf("gridftp: RequestSink requires a Dataset")
	}
	if cfg.AckedBytes < 0 || cfg.AckedBytes > cfg.Bytes {
		return nil, fmt.Errorf("gridftp: acked bytes %v outside [0, %v]", cfg.AckedBytes, cfg.Bytes)
	}
	if cfg.AckedBytes > 0 && cfg.Token == "" {
		return nil, fmt.Errorf("gridftp: resuming a transfer (AckedBytes > 0) requires its token")
	}
	if cfg.ClockOffset < 0 {
		return nil, fmt.Errorf("gridftp: negative clock offset %v", cfg.ClockOffset)
	}
	if cfg.DialTimeout == 0 {
		cfg.DialTimeout = 5 * time.Second
	}
	if cfg.Token == "" {
		cfg.Token = fmt.Sprintf("xfer-%d-%d", time.Now().UnixNano(), clientSeq.Add(1))
	}
	if cfg.Dialer == nil {
		cfg.Dialer = net.DialTimeout
	}
	cfg.Retry = cfg.Retry.withDefaults()
	if cfg.MinStreams < 1 {
		cfg.MinStreams = 1
	}
	c := &Client{
		cfg:    cfg,
		token:  cfg.Token,
		rng:    rand.New(rand.NewSource(int64(cfg.Seed))),
		stopCh: make(chan struct{}),
	}
	c.acked = int64(cfg.AckedBytes)
	if cfg.Bytes >= float64(int64(1)<<62) {
		c.remaining.Store(int64(1) << 62)
	} else {
		c.remaining.Store(int64(cfg.Bytes - cfg.AckedBytes))
	}
	if datasetMode {
		c.fq = newFileQueue(cfg.Dataset)
		c.datasetBytes = cfg.Dataset.TotalBytes()
		if cfg.SourceDir != "" {
			src, err := newFileSource(cfg.SourceDir, cfg.Dataset)
			if err != nil {
				return nil, err
			}
			c.src = src
		}
		// A resumed transfer rebuilds its work queue from the server's
		// per-file counters before the first pump, restarting at
		// file/offset granularity.
		c.needResync = cfg.AckedBytes > 0
	}
	return c, nil
}

// Token returns the transfer's identifying token on the server.
func (c *Client) Token() string { return c.token }

// Remaining implements xfer.Transferer.
func (c *Client) Remaining() float64 {
	r := c.remaining.Load()
	if r < 0 {
		return 0
	}
	return float64(r)
}

// Now implements xfer.Transferer: the configured clock offset plus
// wall-clock seconds since the first Run.
func (c *Client) Now() float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.started {
		return c.cfg.ClockOffset
	}
	return c.cfg.ClockOffset + time.Since(c.start).Seconds()
}

// Snapshot implements xfer.Snapshotter: the receiver-confirmed byte
// count, the sender's remaining budget, and the cumulative clock. A
// later session resumes the transfer with a client built from
// ClientConfig{Bytes: Total, Token: Token, AckedBytes: Acked,
// ClockOffset: Clock} — as long as the transfer was not stopped, so
// the server still holds the token's counter.
func (c *Client) Snapshot() xfer.TransferState {
	unbounded := c.cfg.Bytes >= float64(int64(1)<<62)
	s := xfer.TransferState{
		Total: c.cfg.Bytes,
		Clock: c.Now(),
		Token: c.token,
	}
	c.mu.Lock()
	s.Acked = float64(c.acked)
	c.mu.Unlock()
	if unbounded {
		s.Total = -1
		s.Remaining = -1
		return s
	}
	s.Remaining = c.Remaining()
	return s
}

// Stop implements xfer.Transferer. It aborts an in-flight Run —
// including its retry backoffs and failed-epoch pacing — closes the
// warm stripe pool and control connection, and releases the
// transfer's token counter on the server (a best-effort CLOSE
// exchange), so long-lived servers don't accumulate dead counters.
func (c *Client) Stop() {
	c.mu.Lock()
	already := c.stopped
	c.stopped = true
	started := c.started
	pool, ctrl := c.pool, c.ctrl
	c.pool, c.ctrl, c.ctrlR = nil, nil, nil
	c.mu.Unlock()
	if already {
		return
	}
	close(c.stopCh)
	for _, conn := range pool {
		conn.Close()
	}
	if ctrl != nil {
		ctrl.Close()
	}
	if !started {
		return
	}
	// Best-effort CLOSE. control would abort its retry backoffs
	// immediately now that stopCh is closed, so retry the exchange
	// directly — bounded by the configured attempts and backoff.
	for k := 0; k < c.cfg.Retry.Attempts; k++ {
		if k > 0 {
			time.Sleep(c.backoff(k))
		}
		if _, err := c.controlOnce("CLOSE "+c.token, "OK"); err == nil || !transientNetErr(err) {
			return
		}
	}
}

// sleep waits for d; it returns false without waiting out the full
// delay when ctx is cancelled or the client is stopped.
func (c *Client) sleep(ctx context.Context, d time.Duration) bool {
	if d <= 0 {
		return true
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-ctx.Done():
		return false
	case <-c.stopCh:
		return false
	}
}

// interrupted returns the governing interrupt error, if any: the
// context's error, or xfer.ErrStopped after Stop.
func (c *Client) interrupted(ctx context.Context) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	select {
	case <-c.stopCh:
		return xfer.ErrStopped
	default:
		return nil
	}
}

// backoff returns the jittered sleep before retry k (1-based): the
// configured base doubled per retry, capped, scaled by a seeded
// random factor in [0.5, 1.5).
func (c *Client) backoff(k int) time.Duration {
	d := c.cfg.Retry.Backoff
	for i := 1; i < k && d < c.cfg.Retry.MaxBackoff; i++ {
		d *= 2
	}
	if d > c.cfg.Retry.MaxBackoff {
		d = c.cfg.Retry.MaxBackoff
	}
	c.rngMu.Lock()
	j := 0.5 + c.rng.Float64()
	c.rngMu.Unlock()
	return time.Duration(float64(d) * j)
}

// ctrlConn returns the persistent control connection, dialing it when
// absent. The bool reports whether a dial was performed (attempted),
// successful or not.
func (c *Client) ctrlConn() (net.Conn, *bufio.Reader, bool, error) {
	c.mu.Lock()
	conn, br := c.ctrl, c.ctrlR
	c.mu.Unlock()
	if conn != nil {
		return conn, br, false, nil
	}
	conn, err := c.cfg.Dialer("tcp", c.cfg.Addr, c.cfg.DialTimeout)
	if err != nil {
		return nil, nil, true, err
	}
	br = bufio.NewReader(conn)
	c.mu.Lock()
	if c.stopped {
		c.mu.Unlock()
		conn.Close()
		return nil, nil, true, xfer.ErrStopped
	}
	c.ctrl, c.ctrlR = conn, br
	c.mu.Unlock()
	return conn, br, true, nil
}

// dropCtrl discards the persistent control connection (after an
// exchange error) so the next exchange re-dials it.
func (c *Client) dropCtrl(conn net.Conn) {
	c.mu.Lock()
	if c.ctrl == conn {
		c.ctrl, c.ctrlR = nil, nil
	}
	c.mu.Unlock()
	conn.Close()
}

// exchange performs one command/response exchange on the persistent
// control connection, dialing it only when absent and retrying
// transient failures per the retry config. It returns the response
// plus the dials (attempted, successful or not) and retries spent. A
// failed exchange discards the connection so the next attempt
// re-dials. A backoff wait aborts early when ctx is cancelled or the
// client is stopped, returning the last exchange error.
func (c *Client) exchange(ctx context.Context, cmd, wantPrefix string) (resp string, dials, retries int, err error) {
	for k := 0; k < c.cfg.Retry.Attempts; k++ {
		if k > 0 {
			retries++
			if !c.sleep(ctx, c.backoff(k)) {
				return "", dials, retries, err
			}
		}
		if ierr := c.interrupted(ctx); ierr != nil {
			return "", dials, retries, ierr
		}
		var conn net.Conn
		var br *bufio.Reader
		var dialed bool
		conn, br, dialed, err = c.ctrlConn()
		if dialed {
			dials++
		}
		if err != nil {
			if transientNetErr(err) {
				continue
			}
			return "", dials, retries, err
		}
		conn.SetDeadline(time.Now().Add(c.cfg.DialTimeout))
		if _, err = fmt.Fprintf(conn, "%s\n", cmd); err != nil {
			c.dropCtrl(conn)
			if transientNetErr(err) {
				continue
			}
			return "", dials, retries, err
		}
		resp, err = readLine(br)
		if err != nil {
			c.dropCtrl(conn)
			if transientNetErr(err) {
				continue
			}
			return "", dials, retries, err
		}
		conn.SetDeadline(time.Time{})
		if !strings.HasPrefix(resp, wantPrefix) {
			c.dropCtrl(conn)
			return "", dials, retries, fmt.Errorf("%w: %q to %q got %q", ErrProtocol, cmd, wantPrefix, resp)
		}
		return resp, dials, retries, nil
	}
	return "", dials, retries, err
}

// controlOnce performs one un-retried command/response exchange.
func (c *Client) controlOnce(cmd, wantPrefix string) (string, error) {
	conn, err := c.cfg.Dialer("tcp", c.cfg.Addr, c.cfg.DialTimeout)
	if err != nil {
		return "", err
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(c.cfg.DialTimeout))
	if _, err := fmt.Fprintf(conn, "%s\n", cmd); err != nil {
		return "", err
	}
	resp, err := readLine(bufio.NewReader(conn))
	if err != nil {
		return "", err
	}
	if !strings.HasPrefix(resp, wantPrefix) {
		return "", fmt.Errorf("%w: %q to %q got %q", ErrProtocol, cmd, wantPrefix, resp)
	}
	return resp, nil
}

// ServerReceived asks the server how many bytes it has received for
// this transfer's token, over the persistent control connection.
func (c *Client) ServerReceived() (int64, error) {
	n, _, err := c.serverReceived()
	return n, err
}

// serverReceived is ServerReceived plus the dials the STAT exchange
// spent (zero on a warm control connection).
func (c *Client) serverReceived() (int64, int, error) {
	resp, dials, _, err := c.exchange(context.Background(), "STAT "+c.token, "BYTES ")
	if err != nil {
		return 0, dials, err
	}
	var n int64
	if _, err := fmt.Sscanf(resp, "BYTES %d", &n); err != nil {
		return 0, dials, fmt.Errorf("%w: bad STAT response %q", ErrProtocol, resp)
	}
	return n, dials, nil
}

// setSockBuf applies the configured kernel socket buffer size to
// conn, when both are available. Wrapped connections (fault
// injectors) that do not expose the setters are left alone.
func (c *Client) setSockBuf(conn net.Conn) {
	if c.cfg.SockBuf <= 0 {
		return
	}
	if rb, ok := conn.(interface{ SetReadBuffer(int) error }); ok {
		rb.SetReadBuffer(c.cfg.SockBuf)
	}
	if wb, ok := conn.(interface{ SetWriteBuffer(int) error }); ok {
		wb.SetWriteBuffer(c.cfg.SockBuf)
	}
}

// dialData establishes one data connection (dial plus DATA header),
// retrying transient failures. It returns the connection plus the
// dials (attempted, successful or not) and retries spent. An
// interrupt (ctx cancel or Stop) aborts the attempts with the
// interrupt error.
func (c *Client) dialData(ctx context.Context) (conn net.Conn, dials, retries int, err error) {
	for k := 0; k < c.cfg.Retry.Attempts; k++ {
		if k > 0 {
			retries++
			if !c.sleep(ctx, c.backoff(k)) {
				break
			}
		}
		if ierr := c.interrupted(ctx); ierr != nil {
			return nil, dials, retries, ierr
		}
		dials++
		conn, err = c.cfg.Dialer("tcp", c.cfg.Addr, c.cfg.DialTimeout)
		if err != nil {
			if transientNetErr(err) {
				continue
			}
			return nil, dials, retries, err
		}
		verb := "DATA"
		if c.fq != nil {
			verb = "DATAF" // framed per-file segments
		}
		if _, err = fmt.Fprintf(conn, "%s %s\n", verb, c.token); err != nil {
			conn.Close()
			if transientNetErr(err) {
				continue
			}
			return nil, dials, retries, err
		}
		c.setSockBuf(conn)
		return conn, dials, retries, nil
	}
	if ierr := c.interrupted(ctx); ierr != nil {
		return nil, dials, retries, ierr
	}
	return nil, dials, retries, err
}

// reconcile polls the server's byte count for the token until two
// consecutive reads agree (the kernel buffers have drained) or a
// short deadline passes; individual STAT failures are retried within
// the deadline. It returns the count, the dials spent polling, and
// whether the server answered at all.
func (c *Client) reconcile() (int64, int, bool) {
	deadline := time.Now().Add(500 * time.Millisecond)
	prev := int64(-1)
	dials := 0
	seen := false
	for {
		got, d, err := c.serverReceived()
		dials += d
		if err == nil {
			if seen && got == prev {
				return got, dials, true
			}
			prev, seen = got, true
		}
		if time.Now().After(deadline) {
			return prev, dials, seen
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// failEpoch paces a transiently failed epoch to its nominal duration
// before returning err. The tuner's outage tolerance
// (MaxTransientFailures) is counted in consecutive epochs; a refused
// dial fails in milliseconds, so without pacing N failed epochs burn
// in well under a second and no real outage could be ridden out.
// Fatal errors return immediately, and so does an interrupt (ctx
// cancel or Stop) during the pacing wait — then the interrupt error
// supersedes err, so a cancellation during an outage surfaces within
// milliseconds instead of after the rest of the epoch.
func (c *Client) failEpoch(ctx context.Context, runStart time.Time, epoch float64, err error) error {
	if xfer.IsTransient(err) {
		if !c.sleep(ctx, time.Until(runStart.Add(time.Duration(epoch*float64(time.Second))))) {
			return c.interrupted(ctx)
		}
	}
	return err
}

// takePool detaches the warm stripe pool from the client, giving the
// caller exclusive ownership for the epoch (so a concurrent Stop
// cannot double-close the connections mid-pump).
func (c *Client) takePool() []net.Conn {
	c.mu.Lock()
	pool := c.pool
	c.pool = nil
	c.mu.Unlock()
	return pool
}

// storePool re-attaches the epoch's surviving connections as the warm
// pool for the next epoch; if the client was stopped meanwhile, they
// are closed instead.
func (c *Client) storePool(conns []net.Conn) {
	c.mu.Lock()
	stopped := c.stopped
	if !stopped {
		c.pool = conns
	}
	c.mu.Unlock()
	if stopped {
		for _, conn := range conns {
			conn.Close()
		}
		c.cfg.Obs.SetPool(0)
		return
	}
	c.cfg.Obs.SetPool(len(conns))
}

// closePool tears down the warm stripe pool (ColdStart mode).
func (c *Client) closePool() {
	for _, conn := range c.takePool() {
		conn.Close()
	}
}

// Run implements xfer.Transferer. The epoch is wall-clock seconds. A
// transiently failed epoch (server unreachable, stripe below
// MinStreams) still consumes its epoch of wall time, so the tuner's
// consecutive-failure budget maps onto outage duration. Cancelling
// ctx aborts the epoch promptly at any point — dial backoffs,
// failed-epoch pacing, or mid-pump — and Run returns the partial
// epoch's report with its byte accounting reconciled against the
// server, together with the context's error. A cancelled (not
// stopped) client keeps its warm pool, so a resumed session in the
// same process re-arms without dialing.
func (c *Client) Run(ctx context.Context, p xfer.Params, epoch float64) (xfer.Report, error) {
	if err := ctx.Err(); err != nil {
		return xfer.Report{}, err
	}
	c.mu.Lock()
	if c.stopped {
		c.mu.Unlock()
		return xfer.Report{}, xfer.ErrStopped
	}
	if epoch <= 0 {
		c.mu.Unlock()
		return xfer.Report{}, xfer.ErrBadEpoch
	}
	if !p.Valid() {
		c.mu.Unlock()
		return xfer.Report{}, xfer.ErrBadParams
	}
	if !c.started {
		c.started = true
		c.start = time.Now()
	}
	c.runs++
	run := c.runs
	startWall := c.cfg.ClockOffset + time.Since(c.start).Seconds()
	c.mu.Unlock()

	if c.remaining.Load() <= 0 {
		return xfer.Report{Params: p, Start: startWall, End: startWall, Run: run, Done: true}, nil
	}

	// Setup phase. Cold, this is the restart analog: a START handshake
	// plus one dial per data connection. Warm, it is an ADJ exchange on
	// the live control connection plus the stripe-width delta — zero
	// dials when the stream count is unchanged. Either way its
	// duration (including retry backoffs) is the epoch's DeadTime.
	if c.cfg.ColdStart {
		c.closePool()
	}
	pool := c.takePool()
	runStart := time.Now()
	setupStart := runStart
	n := p.Streams()
	var dials, retries int
	verb := "ADJ"
	if len(pool) == 0 {
		verb = "START"
	}
	_, d, rt, err := c.exchange(ctx, fmt.Sprintf("%s %s %d", verb, c.token, n), "OK")
	dials += d
	retries += rt
	if err != nil {
		c.storePool(pool)
		if ierr := c.interrupted(ctx); ierr != nil {
			return xfer.Report{}, ierr
		}
		return xfer.Report{}, c.failEpoch(ctx, runStart, epoch, classify(fmt.Errorf("gridftp: %s: %w", strings.ToLower(verb), err)))
	}
	// Dataset mode: register the manifest once per session (the server
	// keeps it under the token until the idle TTL), and rebuild the
	// work queue from receiver truth when resuming or after losses.
	if c.fq != nil && !c.manifested {
		d, rt, merr := c.sendManifest(ctx)
		dials += d
		retries += rt
		if merr != nil {
			c.storePool(pool)
			if ierr := c.interrupted(ctx); ierr != nil {
				return xfer.Report{}, ierr
			}
			return xfer.Report{}, c.failEpoch(ctx, runStart, epoch, classify(fmt.Errorf("gridftp: manifest: %w", merr)))
		}
		c.manifested = true
	}
	// The sink request follows the manifest (the server refuses SINK
	// for an unmanifested token) and is re-sent whenever the manifest
	// is, so a server restart re-arms persistence too.
	if c.fq != nil && c.cfg.RequestSink && !c.sinkOK {
		_, d, rt, serr := c.exchange(ctx, "SINK "+c.token, "OK")
		dials += d
		retries += rt
		if serr != nil {
			c.storePool(pool)
			if ierr := c.interrupted(ctx); ierr != nil {
				return xfer.Report{}, ierr
			}
			return xfer.Report{}, c.failEpoch(ctx, runStart, epoch, classify(fmt.Errorf("gridftp: sink: %w", serr)))
		}
		c.sinkOK = true
	}
	if c.fq != nil && c.needResync {
		// Quiesced here: no leases are in flight between epochs. A
		// failed resync is not fatal — the queue keeps its local view
		// (duplicates are clamped server-side) and a later epoch
		// retries.
		d, rerr := c.resyncQueue(ctx)
		dials += d
		if rerr == nil {
			c.needResync = false
		} else if ierr := c.interrupted(ctx); ierr != nil {
			c.storePool(pool)
			return xfer.Report{}, ierr
		}
	}
	// Delta dialing: retire surplus stripes, dial only the missing
	// ones; the rest of the pool is reused as-is.
	for len(pool) > n {
		pool[len(pool)-1].Close()
		pool = pool[:len(pool)-1]
	}
	reused := len(pool)
	degraded := 0
	var lastDialErr error
	for miss := n - len(pool); miss > 0; miss-- {
		conn, d, rt, err := c.dialData(ctx)
		dials += d
		retries += rt
		if err != nil {
			if ierr := c.interrupted(ctx); ierr != nil {
				c.storePool(pool)
				return xfer.Report{}, ierr
			}
			degraded++
			lastDialErr = err
			continue
		}
		pool = append(pool, conn)
		c.cfg.Obs.StripeDialed(c.Now(), len(pool))
	}
	if len(pool) < c.cfg.MinStreams {
		// The surviving stripes stay pooled: the next epoch re-dials
		// only the still-missing delta.
		c.storePool(pool)
		if lastDialErr == nil {
			// No dial failed: the epoch simply asked for fewer streams
			// than MinStreams. A configuration error, not an outage.
			return xfer.Report{}, fmt.Errorf("gridftp: epoch uses %d data connections but MinStreams is %d",
				n, c.cfg.MinStreams)
		}
		return xfer.Report{}, c.failEpoch(ctx, runStart, epoch, classify(fmt.Errorf("gridftp: only %d/%d data connections (min %d): %w",
			len(pool), n, c.cfg.MinStreams, lastDialErr)))
	}
	dead := time.Since(setupStart).Seconds()

	// Pump phase, on the streams that survived setup. An interrupt
	// (ctx cancel or Stop) closes abort — breaking any pacing wait —
	// and expires every stream's write deadline, so blocked writes
	// fail immediately and each pump returns its unsent budget.
	conns := pool
	deadline := time.Now().Add(time.Duration(epoch * float64(time.Second)))
	rate := c.cfg.Shaper.perConnRate(len(conns))
	// Dataset mode: the opener goroutine owns the control connection
	// for the pump phase, keeping up to pp OPEN requests in flight and
	// admitting files to the queue as their ACKs return.
	var (
		epochCtrl net.Conn
		epochBr   *bufio.Reader
	)
	if c.fq != nil {
		conn, br, dialed, cerr := c.ctrlConn()
		if dialed {
			dials++
		}
		if cerr != nil {
			c.storePool(pool)
			if ierr := c.interrupted(ctx); ierr != nil {
				return xfer.Report{}, ierr
			}
			return xfer.Report{}, c.failEpoch(ctx, runStart, epoch, classify(fmt.Errorf("gridftp: control: %w", cerr)))
		}
		epochCtrl, epochBr = conn, br
	}
	abort := make(chan struct{})
	unwatched := make(chan struct{})
	watchDone := make(chan struct{})
	go func() {
		defer close(watchDone)
		select {
		case <-ctx.Done():
		case <-c.stopCh:
		case <-unwatched:
			return
		}
		close(abort)
		now := time.Now()
		for _, conn := range conns {
			conn.SetWriteDeadline(now)
		}
		if epochCtrl != nil {
			// Unblock the opener's ACK read too.
			epochCtrl.SetReadDeadline(now)
		}
	}()
	// Each pump accumulates into goroutine-local state merged once
	// after wg.Wait — no adjacent shared counters for the streams to
	// false-share per chunk.
	var (
		wg        sync.WaitGroup
		mergeMu   sync.Mutex
		local     int64
		deadIdx   map[int]bool
		firstByte atomic.Int64
		sysCalls  atomic.Int64
		openDone  chan struct{}
	)
	if c.fq != nil {
		openDone = make(chan struct{})
		go func() {
			defer close(openDone)
			c.opener(epochCtrl, epochBr, c.fq, p.Pipelining(), deadline, abort, &sysCalls)
		}()
	}
	for i, conn := range conns {
		wg.Add(1)
		go func(i int, conn net.Conn) {
			defer wg.Done()
			conn.SetWriteDeadline(deadline.Add(time.Second))
			var sent int64
			var alive bool
			if c.fq != nil {
				pio := c.newPumpIO(conn)
				sent, alive = filePump(conn, c.fq, pio, rate, deadline, abort, &firstByte, runStart)
				sysCalls.Add(pio.syscalls())
			} else {
				sent, alive = pump(conn, rate, deadline, &c.remaining, abort)
			}
			mergeMu.Lock()
			local += sent
			if !alive {
				if deadIdx == nil {
					deadIdx = make(map[int]bool)
				}
				deadIdx[i] = true
			}
			mergeMu.Unlock()
		}(i, conn)
	}
	wg.Wait()
	// Join the opener before releasing the watchdog: its ACK drain is
	// bounded by the read deadline, and the control connection must be
	// quiet again before the reconciliation exchanges below.
	if openDone != nil {
		<-openDone
	}
	close(unwatched)
	// Join the watchdog before touching conns again: an already-fired
	// watchdog may still be walking the slice whose backing array the
	// eviction below compacts in place.
	<-watchDone

	// Sample kernel TCP state off the surviving stripes at the epoch
	// boundary — before eviction or a ColdStart teardown closes them.
	var kernel *xfer.KernelStats
	if c.cfg.TCPInfo {
		kernel = c.sampleKernel(conns, deadIdx)
	}

	// Evict dead stripes; the survivors stay warm for the next epoch
	// (unless ColdStart tears the stripe down per epoch, the paper's
	// restart behavior).
	if c.cfg.ColdStart {
		for _, conn := range conns {
			conn.Close()
		}
		c.storePool(nil)
	} else {
		alive := conns[:0]
		for i, conn := range conns {
			if deadIdx[i] {
				conn.Close()
				if c.cfg.Obs != nil {
					c.cfg.Obs.StripeEvicted(c.Now(), fmt.Sprintf("stripe %d dead after pump", i))
				}
				continue
			}
			alive = append(alive, conn)
		}
		c.storePool(alive)
	}

	bytes := float64(local)
	filesDone := 0
	// Reconcile against receiver truth: the epoch's volume is what the
	// server counted, not what sits in kernel socket buffers; bytes
	// written but lost to a reset go back to the budget, late arrivals
	// from a prior epoch are re-claimed. This also settles the exact
	// accounting an interrupted epoch checkpoints. In dataset mode the
	// receiver truth is per-file: the server's duplicate-free byte
	// total (resends past a file's size count toward nothing) and its
	// completed-file count.
	if c.fq != nil {
		done, useful, d, ok := c.reconcileFiles()
		dials += d
		if ok {
			c.mu.Lock()
			prev := c.acked
			if useful >= prev {
				c.acked = useful
			}
			c.mu.Unlock()
			if delta := useful - prev; delta >= 0 {
				bytes = float64(delta)
				c.remaining.Store(c.datasetBytes - useful)
			} else {
				// The server lost the token's file table (idle-TTL
				// expiry or restart): re-register the manifest — and
				// re-request the sink — and resync the queue next epoch.
				c.manifested = false
				c.sinkOK = false
				c.needResync = true
			}
			if done >= c.lastDone {
				filesDone = done - c.lastDone
			}
			c.lastDone = done
			if done < len(c.fq.sizes) && c.fq.drained() {
				// Every byte was leased but the server still misses
				// some (lost in dead stripes' socket buffers): requeue
				// the deficits from receiver truth next epoch.
				c.needResync = true
			}
		}
	} else {
		total, d, ok := c.reconcile()
		dials += d
		if ok {
			c.mu.Lock()
			prev := c.acked
			c.acked = total
			c.mu.Unlock()
			if delta := total - prev; delta >= 0 {
				c.remaining.Add(local - delta)
				bytes = float64(delta)
			}
			// delta < 0 means the server's counter restarted (idle-token
			// expiry); keep local accounting for this epoch and resync.
		}
	}

	endWall := c.cfg.ClockOffset + time.Since(c.start).Seconds()
	elapsed := endWall - startWall
	r := xfer.Report{
		Params:          p,
		Start:           startWall,
		End:             endWall,
		Bytes:           bytes,
		DeadTime:        dead,
		DegradedStreams: degraded,
		Retries:         retries,
		Dials:           dials,
		ReusedStreams:   reused,
		Run:             run,
		Files:           filesDone,
		Kernel:          kernel,
		Done:            c.remaining.Load() <= 0,
	}
	if fb := firstByte.Load(); fb > 0 {
		r.FirstByteLag = time.Duration(fb).Seconds()
	}
	if n := sysCalls.Load(); n > 0 {
		r.Syscalls = n
	}
	if elapsed > 0 {
		r.Throughput = r.Bytes / elapsed
	}
	if live := elapsed - dead; live > 0 {
		r.BestCase = r.Bytes / live
	}
	if err := ctx.Err(); err != nil {
		return r, err
	}
	return r, nil
}

// sampleKernel reads TCP_INFO off every surviving data connection and
// aggregates the per-stripe samples, feeding the session's
// observability instruments along the way. The retransmit delta is
// epoch-over-epoch growth of the summed counters, clamped at zero
// (stripe eviction or redial resets a counter). Returns nil when no
// connection yields a sample (non-Linux builds, wrapped connections),
// so reports stay byte-identical where the sampler cannot run.
func (c *Client) sampleKernel(conns []net.Conn, deadIdx map[int]bool) *xfer.KernelStats {
	var ks xfer.KernelStats
	var total int64
	now := c.Now()
	for i, conn := range conns {
		if deadIdx[i] {
			continue
		}
		info, ok := tcpinfo.Sample(conn)
		if !ok {
			continue
		}
		sk := xfer.StripeKernel{
			RTT:          info.RTT.Seconds(),
			RTTVar:       info.RTTVar.Seconds(),
			Cwnd:         int(info.SndCwnd),
			DeliveryRate: float64(info.DeliveryRate),
			Retrans:      int64(info.TotalRetrans),
		}
		c.cfg.Obs.StripeKernel(now, len(ks.Stripes), sk.Cwnd, sk.RTT, sk.RTTVar, sk.DeliveryRate, sk.Retrans)
		total += sk.Retrans
		ks.Stripes = append(ks.Stripes, sk)
	}
	if len(ks.Stripes) == 0 {
		c.lastRetrans = 0
		return nil
	}
	if delta := total - c.lastRetrans; delta > 0 {
		ks.RetransDelta = delta
		c.cfg.Obs.KernelRetrans(delta)
	}
	c.lastRetrans = total
	return &ks
}

// Interface conformance check.
var _ xfer.Transferer = (*Client)(nil)
