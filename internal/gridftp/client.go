package gridftp

import (
	"bufio"
	"fmt"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"dstune/internal/xfer"
)

// ClientConfig configures a transfer client.
type ClientConfig struct {
	// Addr is the server's address.
	Addr string
	// Bytes is the total volume to transfer; use xfer.Unbounded for
	// open-ended runs.
	Bytes float64
	// Shaper optionally imposes per-connection rate limits; nil
	// pumps at full speed.
	Shaper *Shaper
	// Token identifies the transfer on the server; empty generates
	// one.
	Token string
	// DialTimeout bounds each connection setup; zero selects 5 s.
	DialTimeout time.Duration
}

// clientSeq disambiguates generated tokens within a process.
var clientSeq atomic.Int64

// Client is a striped memory-to-memory sender. It implements
// xfer.Transferer against wall-clock time: each Run opens nc*np data
// connections, pumps zeros for the epoch, and closes them.
type Client struct {
	cfg   ClientConfig
	token string

	mu        sync.Mutex
	remaining atomic.Int64
	start     time.Time
	started   bool
	stopped   bool
	runs      int
}

// NewClient returns a client for cfg. It does not touch the network
// until the first Run.
func NewClient(cfg ClientConfig) (*Client, error) {
	if cfg.Addr == "" {
		return nil, fmt.Errorf("gridftp: address required")
	}
	if cfg.Bytes <= 0 {
		return nil, fmt.Errorf("gridftp: transfer size must be positive, got %v", cfg.Bytes)
	}
	if cfg.DialTimeout == 0 {
		cfg.DialTimeout = 5 * time.Second
	}
	if cfg.Token == "" {
		cfg.Token = fmt.Sprintf("xfer-%d-%d", time.Now().UnixNano(), clientSeq.Add(1))
	}
	c := &Client{cfg: cfg, token: cfg.Token}
	if cfg.Bytes >= float64(int64(1)<<62) {
		c.remaining.Store(int64(1) << 62)
	} else {
		c.remaining.Store(int64(cfg.Bytes))
	}
	return c, nil
}

// Token returns the transfer's identifying token on the server.
func (c *Client) Token() string { return c.token }

// Remaining implements xfer.Transferer.
func (c *Client) Remaining() float64 {
	r := c.remaining.Load()
	if r < 0 {
		return 0
	}
	return float64(r)
}

// Now implements xfer.Transferer: wall-clock seconds since the first
// Run.
func (c *Client) Now() float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.started {
		return 0
	}
	return time.Since(c.start).Seconds()
}

// Stop implements xfer.Transferer.
func (c *Client) Stop() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.stopped = true
}

// control dials the server's control port and performs one
// command/response exchange.
func (c *Client) control(cmd, wantPrefix string) (string, error) {
	conn, err := net.DialTimeout("tcp", c.cfg.Addr, c.cfg.DialTimeout)
	if err != nil {
		return "", err
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(c.cfg.DialTimeout))
	if _, err := fmt.Fprintf(conn, "%s\n", cmd); err != nil {
		return "", err
	}
	resp, err := readLine(bufio.NewReader(conn))
	if err != nil {
		return "", err
	}
	if !strings.HasPrefix(resp, wantPrefix) {
		return "", fmt.Errorf("%w: %q to %q got %q", ErrProtocol, cmd, wantPrefix, resp)
	}
	return resp, nil
}

// ServerReceived asks the server how many bytes it has received for
// this transfer's token.
func (c *Client) ServerReceived() (int64, error) {
	resp, err := c.control("STAT "+c.token, "BYTES ")
	if err != nil {
		return 0, err
	}
	var n int64
	if _, err := fmt.Sscanf(resp, "BYTES %d", &n); err != nil {
		return 0, fmt.Errorf("%w: bad STAT response %q", ErrProtocol, resp)
	}
	return n, nil
}

// Run implements xfer.Transferer. The epoch is wall-clock seconds.
func (c *Client) Run(p xfer.Params, epoch float64) (xfer.Report, error) {
	c.mu.Lock()
	if c.stopped {
		c.mu.Unlock()
		return xfer.Report{}, xfer.ErrStopped
	}
	if epoch <= 0 {
		c.mu.Unlock()
		return xfer.Report{}, xfer.ErrBadEpoch
	}
	if !p.Valid() {
		c.mu.Unlock()
		return xfer.Report{}, xfer.ErrBadParams
	}
	if !c.started {
		c.started = true
		c.start = time.Now()
	}
	c.runs++
	run := c.runs
	startWall := time.Since(c.start).Seconds()
	c.mu.Unlock()

	if c.remaining.Load() <= 0 {
		return xfer.Report{Params: p, Start: startWall, End: startWall, Done: true}, nil
	}

	// Setup phase — the restart analog: a control handshake plus one
	// dial per data connection. Its duration is the epoch's DeadTime.
	setupStart := time.Now()
	n := p.Streams()
	_ = run // runs are counted for diagnostics; the token is stable
	if _, err := c.control(fmt.Sprintf("START %s %d", c.token, n), "OK"); err != nil {
		return xfer.Report{}, fmt.Errorf("gridftp: start: %w", err)
	}
	conns := make([]net.Conn, 0, n)
	closeAll := func() {
		for _, conn := range conns {
			conn.Close()
		}
	}
	for i := 0; i < n; i++ {
		conn, err := net.DialTimeout("tcp", c.cfg.Addr, c.cfg.DialTimeout)
		if err != nil {
			closeAll()
			return xfer.Report{}, fmt.Errorf("gridftp: data dial %d/%d: %w", i+1, n, err)
		}
		if _, err := fmt.Fprintf(conn, "DATA %s\n", c.token); err != nil {
			conn.Close()
			closeAll()
			return xfer.Report{}, fmt.Errorf("gridftp: data header: %w", err)
		}
		conns = append(conns, conn)
	}
	dead := time.Since(setupStart).Seconds()

	// Pump phase.
	deadline := time.Now().Add(time.Duration(epoch * float64(time.Second)))
	rate := c.cfg.Shaper.perConnRate(n)
	var wg sync.WaitGroup
	sent := make([]int64, n)
	for i, conn := range conns {
		wg.Add(1)
		go func(i int, conn net.Conn) {
			defer wg.Done()
			conn.SetWriteDeadline(deadline.Add(time.Second))
			sent[i] = pump(conn, rate, deadline, &c.remaining)
		}(i, conn)
	}
	wg.Wait()
	closeAll()

	var bytes int64
	for _, s := range sent {
		bytes += s
	}
	endWall := time.Since(c.start).Seconds()
	elapsed := endWall - startWall
	r := xfer.Report{
		Params:   p,
		Start:    startWall,
		End:      endWall,
		Bytes:    float64(bytes),
		DeadTime: dead,
		Done:     c.remaining.Load() <= 0,
	}
	if elapsed > 0 {
		r.Throughput = r.Bytes / elapsed
	}
	if live := elapsed - dead; live > 0 {
		r.BestCase = r.Bytes / live
	}
	return r, nil
}

// Interface conformance check.
var _ xfer.Transferer = (*Client)(nil)
