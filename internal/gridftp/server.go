package gridftp

import (
	"bufio"
	"fmt"
	"net"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// maxLineLen bounds protocol header lines.
const maxLineLen = 256

// Server is the receiving end: it accepts control and data
// connections, discards transferred bytes, and counts them per token.
type Server struct {
	ln     net.Listener
	logf   func(format string, args ...any)
	closed atomic.Bool

	mu       sync.Mutex
	received map[string]*atomic.Int64
	conns    map[net.Conn]struct{}
	wg       sync.WaitGroup
}

// Serve starts a server listening on addr (e.g. "127.0.0.1:0") and
// begins accepting connections. Close shuts it down.
func Serve(addr string) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &Server{
		ln:       ln,
		logf:     func(string, ...any) {},
		received: make(map[string]*atomic.Int64),
		conns:    make(map[net.Conn]struct{}),
	}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// SetLogger installs a diagnostic logger (e.g. log.Printf). The
// default discards.
func (s *Server) SetLogger(logf func(format string, args ...any)) {
	if logf == nil {
		logf = func(string, ...any) {}
	}
	s.logf = logf
}

// Addr returns the server's listen address, for clients to dial.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops accepting, closes all live connections, and waits for
// the handlers to drain.
func (s *Server) Close() error {
	if s.closed.Swap(true) {
		return nil
	}
	err := s.ln.Close()
	s.mu.Lock()
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
	return err
}

// Received returns the bytes received so far for token.
func (s *Server) Received(token string) int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	if c, ok := s.received[token]; ok {
		return c.Load()
	}
	return 0
}

// counter returns (creating if needed) the byte counter for token.
func (s *Server) counter(token string) *atomic.Int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	c, ok := s.received[token]
	if !ok {
		c = new(atomic.Int64)
		s.received[token] = c
	}
	return c
}

// track registers a live connection for shutdown; the returned func
// unregisters it.
func (s *Server) track(c net.Conn) func() {
	s.mu.Lock()
	s.conns[c] = struct{}{}
	s.mu.Unlock()
	return func() {
		s.mu.Lock()
		delete(s.conns, c)
		s.mu.Unlock()
	}
}

// acceptLoop accepts connections until the listener closes.
func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			if !s.closed.Load() {
				s.logf("gridftp: accept: %v", err)
			}
			return
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.handle(conn)
		}()
	}
}

// handle serves one connection: the first line selects control (START
// or STAT) or data (DATA) mode.
func (s *Server) handle(conn net.Conn) {
	defer conn.Close()
	defer s.track(conn)()
	br := bufio.NewReaderSize(conn, 32<<10)

	conn.SetReadDeadline(time.Now().Add(30 * time.Second))
	line, err := readLine(br)
	if err != nil {
		s.logf("gridftp: header: %v", err)
		return
	}
	conn.SetReadDeadline(time.Time{})

	fields := strings.Fields(line)
	if len(fields) == 0 {
		return
	}
	switch fields[0] {
	case "DATA":
		if len(fields) != 2 {
			fmt.Fprintf(conn, "ERR bad DATA header\n")
			return
		}
		s.serveData(br, fields[1])
	case "START", "STAT":
		s.serveControl(conn, br, fields)
	default:
		fmt.Fprintf(conn, "ERR unknown command %q\n", fields[0])
	}
}

// serveData discards the connection's byte stream into the token's
// counter. The buffered reader may already hold payload bytes.
func (s *Server) serveData(br *bufio.Reader, token string) {
	c := s.counter(token)
	buf := make([]byte, chunkSize)
	for {
		n, err := br.Read(buf)
		c.Add(int64(n))
		if err != nil {
			return
		}
	}
}

// serveControl answers control commands; the first is already parsed,
// further commands may follow on the same connection.
func (s *Server) serveControl(conn net.Conn, br *bufio.Reader, first []string) {
	fields := first
	for {
		switch fields[0] {
		case "START":
			// START <token> <channels>: acknowledge. The server is
			// stateless about channel counts; the argument is
			// validated for protocol hygiene.
			if len(fields) != 3 {
				fmt.Fprintf(conn, "ERR bad START\n")
				return
			}
			if _, err := strconv.Atoi(fields[2]); err != nil {
				fmt.Fprintf(conn, "ERR bad channel count\n")
				return
			}
			s.counter(fields[1]) // pre-create
			fmt.Fprintf(conn, "OK\n")
		case "STAT":
			if len(fields) != 2 {
				fmt.Fprintf(conn, "ERR bad STAT\n")
				return
			}
			fmt.Fprintf(conn, "BYTES %d\n", s.Received(fields[1]))
		default:
			fmt.Fprintf(conn, "ERR unknown command %q\n", fields[0])
			return
		}
		line, err := readLine(br)
		if err != nil {
			return
		}
		fields = strings.Fields(line)
		if len(fields) == 0 {
			return
		}
	}
}

// readLine reads one \n-terminated line, enforcing the length bound.
func readLine(br *bufio.Reader) (string, error) {
	line, err := br.ReadString('\n')
	if err != nil {
		return "", err
	}
	if len(line) > maxLineLen {
		return "", fmt.Errorf("%w: line too long (%d bytes)", ErrProtocol, len(line))
	}
	return strings.TrimRight(line, "\r\n"), nil
}
