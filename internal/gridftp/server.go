package gridftp

import (
	"bufio"
	"fmt"
	"net"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"dstune/internal/obs"
)

// maxLineLen bounds protocol header lines.
const maxLineLen = 256

// defaultTokenTTL is the idle expiry for token counters: a token that
// sees no data and no STAT for this long is released, so long-lived
// servers don't accumulate counters from clients that never sent
// CLOSE.
const defaultTokenTTL = 5 * time.Minute

// tokenCounter tracks one transfer token's received bytes and its
// last activity, for idle expiry. Dataset transfers additionally hang
// their per-file table here, so the TTL janitor frees both together.
type tokenCounter struct {
	n          atomic.Int64
	lastActive atomic.Int64 // unix nanos
	files      atomic.Pointer[fileTable]
}

// touch records activity on the token at wall-clock accuracy (the
// control path; per-read data paths use touchAt with the server's
// coarse clock instead).
func (tc *tokenCounter) touch() { tc.lastActive.Store(time.Now().UnixNano()) }

// touchAt records activity at a caller-supplied coarse timestamp. The
// data planes call this once per socket read, so activity tracking
// costs an atomic load+store instead of a time.Now per read; the TTL
// cutoff carries one janitor tick of grace for the coarseness.
func (tc *tokenCounter) touchAt(now int64) { tc.lastActive.Store(now) }

// releaseSink closes any persistence handles hung off the token's
// file table — the token is going away (CLOSE, TTL expiry, shutdown).
func (tc *tokenCounter) releaseSink() {
	if ft := tc.files.Load(); ft != nil {
		ft.setSink(nil)
	}
}

// Server is the receiving end: it accepts control and data
// connections, discards transferred bytes, and counts them per token.
type Server struct {
	ln     net.Listener
	logf   func(format string, args ...any)
	closed atomic.Bool
	done   chan struct{}

	tokenTTL atomic.Int64 // nanoseconds; <= 0 disables expiry
	sockBuf  atomic.Int64 // kernel socket buffer bytes; <= 0 keeps OS default

	// fileLatency delays each OPEN's ACK (see SetFileLatency); the
	// fault-injection hook for per-file handshake latency.
	fileLatency atomic.Int64

	// coarseNow is a coarse wall clock (unix nanos, one janitor tick
	// of resolution) the data paths read instead of calling time.Now
	// per socket read; the janitor keeps it current.
	coarseNow atomic.Int64

	// wallTouch forces the data paths back to per-read time.Now
	// stamping; only benchmarks set it, to measure what the coarse
	// clock saves.
	wallTouch atomic.Bool

	// sinkRoot, when set, is the directory under which framed file
	// payloads are persisted for tokens that request it with SINK
	// (per-token subdirectories, index-named files); nil discards
	// payloads (the default).
	sinkRoot atomic.Pointer[string]

	// metrics holds the observation instruments; nil disables them.
	// Atomic so SetObserver is safe while traffic is flowing.
	metrics atomic.Pointer[obs.ServerMetrics]

	mu       sync.Mutex
	received map[string]*tokenCounter
	conns    map[net.Conn]struct{}
	wg       sync.WaitGroup
}

// Serve starts a server listening on addr (e.g. "127.0.0.1:0") and
// begins accepting connections. Close shuts it down.
func Serve(addr string) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	return ServeListener(ln), nil
}

// ServeListener starts a server accepting on a caller-supplied
// listener — the hook for wrapped listeners such as
// faultnet.Injector.Listen. Close closes ln.
func ServeListener(ln net.Listener) *Server {
	s := &Server{
		ln:       ln,
		logf:     func(string, ...any) {},
		done:     make(chan struct{}),
		received: make(map[string]*tokenCounter),
		conns:    make(map[net.Conn]struct{}),
	}
	s.tokenTTL.Store(int64(defaultTokenTTL))
	s.coarseNow.Store(time.Now().UnixNano())
	s.wg.Add(2)
	go s.acceptLoop()
	go s.janitor()
	return s
}

// SetLogger installs a diagnostic logger (e.g. log.Printf). The
// default discards.
func (s *Server) SetLogger(logf func(format string, args ...any)) {
	if logf == nil {
		logf = func(string, ...any) {}
	}
	s.logf = logf
}

// SetTokenTTL sets the idle expiry for token counters; non-positive
// disables expiry. The default is 5 minutes.
func (s *Server) SetTokenTTL(d time.Duration) { s.tokenTTL.Store(int64(d)) }

// SetSink enables payload persistence: framed file payloads of tokens
// that request it (the client's SINK exchange,
// ClientConfig.RequestSink) are written under dir — one subdirectory
// per token, one index-named file per manifest entry — instead of
// being discarded. Empty disables (the default). Safe to call while
// serving; tokens that already negotiated a sink keep it.
func (s *Server) SetSink(dir string) {
	if dir == "" {
		s.sinkRoot.Store(nil)
		return
	}
	s.sinkRoot.Store(&dir)
}

// sinkDir returns the configured sink root, or "".
func (s *Server) sinkDir() string {
	if p := s.sinkRoot.Load(); p != nil {
		return *p
	}
	return ""
}

// SetObserver registers the server's metrics (connections, received
// bytes, live and expired tokens) with o; see OBSERVABILITY.md. A nil
// o detaches them. Safe to call while the server is live.
func (s *Server) SetObserver(o *obs.Observer) {
	s.metrics.Store(o.ServerMetrics())
}

// SetSockBuf sizes the kernel socket buffers
// (SetReadBuffer/SetWriteBuffer) of subsequently accepted
// connections, in bytes; non-positive keeps the OS default. Wrapped
// listeners whose connections do not expose the setters are left
// alone.
func (s *Server) SetSockBuf(bytes int) { s.sockBuf.Store(int64(bytes)) }

// applySockBuf applies the configured socket buffer size to conn.
func (s *Server) applySockBuf(conn net.Conn) {
	n := int(s.sockBuf.Load())
	if n <= 0 {
		return
	}
	if rb, ok := conn.(interface{ SetReadBuffer(int) error }); ok {
		rb.SetReadBuffer(n)
	}
	if wb, ok := conn.(interface{ SetWriteBuffer(int) error }); ok {
		wb.SetWriteBuffer(n)
	}
}

// Addr returns the server's listen address, for clients to dial.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops accepting, closes all live connections, and waits for
// the handlers to drain.
func (s *Server) Close() error {
	if s.closed.Swap(true) {
		return nil
	}
	close(s.done)
	err := s.ln.Close()
	s.mu.Lock()
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
	// Handlers have drained: release every token's sink handles. The
	// counters themselves stay queryable after Close.
	s.mu.Lock()
	for _, tc := range s.received {
		tc.releaseSink()
	}
	s.mu.Unlock()
	return err
}

// Received returns the bytes received so far for token.
func (s *Server) Received(token string) int64 {
	s.mu.Lock()
	tc, ok := s.received[token]
	s.mu.Unlock()
	if !ok {
		return 0
	}
	tc.touch()
	return tc.n.Load()
}

// Tokens returns the number of live token counters.
func (s *Server) Tokens() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.received)
}

// counter returns (creating if needed) the byte counter for token.
func (s *Server) counter(token string) *tokenCounter {
	s.mu.Lock()
	tc, ok := s.received[token]
	if !ok {
		tc = new(tokenCounter)
		s.received[token] = tc
	}
	live := len(s.received)
	s.mu.Unlock()
	s.metrics.Load().SetTokens(live)
	tc.touch()
	return tc
}

// dropToken releases token's counter (the CLOSE command) and any sink
// handles hung off it.
func (s *Server) dropToken(token string) {
	s.mu.Lock()
	tc := s.received[token]
	delete(s.received, token)
	live := len(s.received)
	s.mu.Unlock()
	if tc != nil {
		tc.releaseSink()
	}
	s.metrics.Load().SetTokens(live)
}

// coarseTick is the janitor's period and therefore the resolution of
// the coarse activity clock.
const coarseTick = 100 * time.Millisecond

// expireTokens drops counters idle for longer than the TTL. The
// cutoff concedes one janitor tick of grace: data-path activity is
// stamped with the coarse clock, which lags real time by up to a
// tick, and an actively receiving token must never expire.
func (s *Server) expireTokens(now time.Time) {
	ttl := time.Duration(s.tokenTTL.Load())
	if ttl <= 0 {
		return
	}
	cutoff := now.Add(-ttl - coarseTick).UnixNano()
	expired := 0
	var dropped []*tokenCounter
	s.mu.Lock()
	for tok, tc := range s.received {
		if tc.lastActive.Load() < cutoff {
			delete(s.received, tok)
			dropped = append(dropped, tc)
			expired++
		}
	}
	live := len(s.received)
	s.mu.Unlock()
	for _, tc := range dropped {
		tc.releaseSink()
	}
	if expired > 0 {
		m := s.metrics.Load()
		m.Expired(expired)
		m.SetTokens(live)
	}
}

// janitor keeps the coarse clock current and expires idle token
// counters until Close.
func (s *Server) janitor() {
	defer s.wg.Done()
	tick := time.NewTicker(coarseTick)
	defer tick.Stop()
	for {
		select {
		case <-s.done:
			return
		case <-tick.C:
			now := time.Now()
			s.coarseNow.Store(now.UnixNano())
			s.expireTokens(now)
		}
	}
}

// track registers a live connection for shutdown; the returned func
// unregisters it. Registration must happen before the connection's
// handler starts: if it raced with Close, the connection is closed
// here so the handler cannot block a Close that already swept conns.
func (s *Server) track(c net.Conn) func() {
	s.mu.Lock()
	s.conns[c] = struct{}{}
	s.mu.Unlock()
	if s.closed.Load() {
		c.Close()
	}
	return func() {
		s.mu.Lock()
		delete(s.conns, c)
		s.mu.Unlock()
	}
}

// acceptLoop accepts connections until the listener closes. Each
// connection is tracked before its handler is spawned (see track).
func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			if !s.closed.Load() {
				s.logf("gridftp: accept: %v", err)
			}
			return
		}
		s.metrics.Load().Conn()
		s.applySockBuf(conn)
		untrack := s.track(conn)
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			defer untrack()
			s.handle(conn)
		}()
	}
}

// handle serves one connection: the first line selects control (START,
// STAT, or CLOSE) or data (DATA) mode.
func (s *Server) handle(conn net.Conn) {
	defer conn.Close()
	br := bufio.NewReaderSize(conn, 32<<10)

	conn.SetReadDeadline(time.Now().Add(30 * time.Second))
	line, err := readLine(br)
	if err != nil {
		s.logf("gridftp: header: %v", err)
		return
	}
	conn.SetReadDeadline(time.Time{})

	fields := strings.Fields(line)
	if len(fields) == 0 {
		return
	}
	switch fields[0] {
	case "DATA":
		if len(fields) != 2 {
			fmt.Fprintf(conn, "ERR bad DATA header\n")
			return
		}
		s.serveData(br, fields[1])
	case "DATAF":
		if len(fields) != 2 {
			fmt.Fprintf(conn, "ERR bad DATAF header\n")
			return
		}
		s.serveDataFramed(conn, br, fields[1])
	case "START", "ADJ", "STAT", "CLOSE", "MANIFEST", "OPEN", "FSTAT", "RESYNC", "SINK":
		s.serveControl(conn, br, fields)
	default:
		fmt.Fprintf(conn, "ERR unknown command %q\n", fields[0])
	}
}

// dataBufPool recycles the receive buffers of data connections, so a
// server churning through striped epochs does not allocate chunkSize
// per accepted stream.
var dataBufPool = sync.Pool{
	New: func() any {
		buf := make([]byte, chunkSize)
		return &buf
	},
}

// touchToken stamps tc's activity clock from the data path: the
// coarse clock normally, wall time under the wallTouch benchmark
// toggle.
func (s *Server) touchToken(tc *tokenCounter) {
	if s.wallTouch.Load() {
		tc.touch()
		return
	}
	tc.touchAt(s.coarseNow.Load())
}

// serveData discards the connection's byte stream into the token's
// counter. The buffered reader may already hold payload bytes.
func (s *Server) serveData(br *bufio.Reader, token string) {
	tc := s.counter(token)
	m := s.metrics.Load()
	bufp := dataBufPool.Get().(*[]byte)
	defer dataBufPool.Put(bufp)
	buf := *bufp
	for {
		n, err := br.Read(buf)
		tc.n.Add(int64(n))
		m.AddBytes(int64(n))
		s.touchToken(tc)
		if err != nil {
			return
		}
	}
}

// serveControl answers control commands; the first is already parsed,
// further commands may follow on the same connection. Responses go
// through a locked writer because the ACKs of pipelined OPENs are
// written asynchronously after the injected file latency.
func (s *Server) serveControl(conn net.Conn, br *bufio.Reader, first []string) {
	w := &connWriter{c: conn}
	fields := first
	for {
		switch fields[0] {
		case "START", "ADJ":
			// START <token> <channels> opens a session; ADJ re-arms a
			// warm epoch (possibly with a new channel count) without a
			// fresh handshake. The server is stateless about channel
			// counts; the argument is validated for protocol hygiene.
			if len(fields) != 3 {
				fmt.Fprintf(w, "ERR bad %s\n", fields[0])
				return
			}
			if _, err := strconv.Atoi(fields[2]); err != nil {
				fmt.Fprintf(w, "ERR bad channel count\n")
				return
			}
			s.counter(fields[1]) // pre-create (START) or touch (ADJ)
			fmt.Fprintf(w, "OK\n")
		case "STAT":
			if len(fields) != 2 {
				fmt.Fprintf(w, "ERR bad STAT\n")
				return
			}
			fmt.Fprintf(w, "BYTES %d\n", s.Received(fields[1]))
		case "CLOSE":
			if len(fields) != 2 {
				fmt.Fprintf(w, "ERR bad CLOSE\n")
				return
			}
			s.dropToken(fields[1])
			fmt.Fprintf(w, "OK\n")
		case "MANIFEST":
			if !s.serveManifest(w, br, fields) {
				return
			}
		case "OPEN":
			if !s.serveOpen(w, fields) {
				return
			}
		case "FSTAT":
			if len(fields) < 2 {
				fmt.Fprintf(w, "ERR bad FSTAT\n")
				return
			}
			if !s.serveFstat(w, fields) {
				return
			}
		case "RESYNC":
			if !s.serveResync(w, fields) {
				return
			}
		case "SINK":
			if !s.serveSink(w, fields) {
				return
			}
		default:
			fmt.Fprintf(w, "ERR unknown command %q\n", fields[0])
			return
		}
		line, err := readLine(br)
		if err != nil {
			return
		}
		fields = strings.Fields(line)
		if len(fields) == 0 {
			return
		}
	}
}

// readLine reads one \n-terminated line, enforcing the length bound.
func readLine(br *bufio.Reader) (string, error) {
	line, err := br.ReadString('\n')
	if err != nil {
		return "", err
	}
	if len(line) > maxLineLen {
		return "", fmt.Errorf("%w: line too long (%d bytes)", ErrProtocol, len(line))
	}
	return strings.TrimRight(line, "\r\n"), nil
}
