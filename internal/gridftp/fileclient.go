package gridftp

import (
	"bufio"
	"context"
	"fmt"
	"math"
	"net"
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"dstune/internal/dataset"
)

// errProtocolf wraps ErrProtocol with a formatted detail message.
func errProtocolf(format string, args ...any) error {
	return fmt.Errorf("%w: "+format, append([]any{ErrProtocol}, args...)...)
}

// fileChunk is the payload write size of the file pump. It is larger
// than the bulk pump's chunkSize so a typical small file moves in two
// syscalls — one frame header, one payload write — keeping the
// per-file syscall count flat (BenchmarkManyFilesEpoch pins it).
const fileChunk = 1 << 20

// fileZeros is the shared payload buffer of the file pump.
var fileZeros = make([]byte, fileChunk)

// ackSlack bounds how long the opener waits for the ACKs of OPENs
// still outstanding when the epoch deadline passes, so the control
// connection is drained (and reusable for FSTAT) shortly after the
// epoch ends.
const ackSlack = 2 * time.Second

// fileQueue is the client-side file-segment work queue that replaces
// the anonymous byte budget in dataset mode. Files become leasable
// only after admission (the OPEN/ACK handshake the opener performs up
// to pp deep); stripes then pull (file, offset, length) leases of at
// most leaseQuantum bytes. The unsent remainder of a failed lease is
// requeued immediately; bytes lost in a dead stripe's socket buffer
// are recovered by resyncing against the server's per-file counters.
type fileQueue struct {
	mu       sync.Mutex
	sizes    []int64
	rem      []int64 // bytes not yet leased, per file
	started  []bool  // admitted (or known to the server from a resume)
	inReady  []bool  // membership in ready
	ready    []int32 // admitted files with rem > 0, leased LIFO
	nextOpen int     // admission cursor
	unleased int64   // sum of rem across all files
}

// newFileQueue builds the queue for d. Zero-length files need no
// bytes and are never admitted.
func newFileQueue(d dataset.Dataset) *fileQueue {
	n := d.Count()
	q := &fileQueue{
		sizes:   make([]int64, n),
		rem:     make([]int64, n),
		started: make([]bool, n),
		inReady: make([]bool, n),
		ready:   make([]int32, 0, n),
	}
	for i, f := range d.Files {
		if f.Size > 0 {
			q.sizes[i] = f.Size
			q.rem[i] = f.Size
			q.unleased += f.Size
		}
	}
	return q
}

// next leases up to quantum bytes of the next admitted file. n == 0
// with wait true means nothing is admitted right now but more bytes
// remain (the pump should idle briefly); wait false means every byte
// has been leased and the pump is done for this epoch.
func (q *fileQueue) next(quantum int64) (idx int, off, n int64, wait bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for len(q.ready) > 0 {
		i := q.ready[len(q.ready)-1]
		if q.rem[i] <= 0 {
			q.ready = q.ready[:len(q.ready)-1]
			q.inReady[i] = false
			continue
		}
		take := q.rem[i]
		if take > quantum {
			take = quantum
		}
		off = q.sizes[i] - q.rem[i]
		q.rem[i] -= take
		q.unleased -= take
		if q.rem[i] <= 0 {
			q.ready = q.ready[:len(q.ready)-1]
			q.inReady[i] = false
		}
		return int(i), off, take, false
	}
	return 0, 0, 0, q.unleased > 0
}

// requeue returns n unsent bytes of file idx to the queue (a lease
// cut short by a dead stripe).
func (q *fileQueue) requeue(idx int, n int64) {
	if n <= 0 {
		return
	}
	q.mu.Lock()
	q.rem[idx] += n
	q.unleased += n
	if q.started[idx] && !q.inReady[idx] {
		q.ready = append(q.ready, int32(idx))
		q.inReady[idx] = true
	}
	q.mu.Unlock()
}

// admit marks file idx admitted (its OPEN was ACKed) and leasable.
func (q *fileQueue) admit(idx int) {
	if idx < 0 {
		return
	}
	q.mu.Lock()
	if idx < len(q.sizes) && !q.started[idx] {
		q.started[idx] = true
		if q.rem[idx] > 0 && !q.inReady[idx] {
			q.ready = append(q.ready, int32(idx))
			q.inReady[idx] = true
		}
	}
	q.mu.Unlock()
}

// nextToOpen returns the next file index the opener should admit, or
// ok false when every file has been opened. Zero-length and
// already-started files are skipped.
func (q *fileQueue) nextToOpen() (idx int, ok bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for q.nextOpen < len(q.sizes) {
		i := q.nextOpen
		q.nextOpen++
		if q.sizes[i] > 0 && !q.started[i] {
			return i, true
		}
	}
	return 0, false
}

// drained reports whether every byte has been leased.
func (q *fileQueue) drained() bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.unleased == 0
}

// applyServer resynchronizes the queue against the server's per-file
// received counts (got, full-length): each file's unleased remainder
// becomes exactly the bytes the server still misses, so deficits from
// bytes lost in dead stripes' socket buffers are requeued and
// duplicate work is dropped. Files the server has bytes for are
// marked started — a resumed session needs no fresh OPEN for them.
// Callers must be quiesced: no leases in flight.
func (q *fileQueue) applyServer(got []int64) {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.ready = q.ready[:0]
	q.unleased = 0
	for i := range q.sizes {
		g := got[i]
		if g > q.sizes[i] {
			g = q.sizes[i]
		}
		if got[i] > 0 {
			q.started[i] = true
		}
		q.rem[i] = q.sizes[i] - g
		q.unleased += q.rem[i]
		q.inReady[i] = q.started[i] && q.rem[i] > 0
		if q.inReady[i] {
			q.ready = append(q.ready, int32(i))
		}
	}
}

// appendFrameHeader appends "FILE <idx> <off> <len>\n" to b without
// allocating.
func appendFrameHeader(b []byte, idx int, off, n int64) []byte {
	b = append(b, "FILE "...)
	b = strconv.AppendInt(b, int64(idx), 10)
	b = append(b, ' ')
	b = strconv.AppendInt(b, off, 10)
	b = append(b, ' ')
	b = strconv.AppendInt(b, n, 10)
	b = append(b, '\n')
	return b
}

// zcLeaseQuantum is the lease size of the zero-copy source pump. A
// zero-copy lease costs a constant ~6 syscalls (fadvise, cork, header
// write, seek, sendfile, uncork) regardless of size, so leases an
// order of magnitude past
// the userspace quantum push the syscalls/GiB floor down for free;
// requeue granularity is unaffected because a dead stripe's
// kernel-buffered remainder is recovered through RESYNC either way.
const zcLeaseQuantum = 32 << 20

// zcMinSegment is the smallest lease routed through sendfile(2); below
// it the userspace writev of header plus payload wins (one syscall
// against the kernel path's three).
const zcMinSegment = 256 << 10

// pumpIO is one stripe's I/O context for filePump: the payload source
// (nil synthesizes zeros), the zero-copy routing decision, and the
// write-side syscall tally the epoch report surfaces (source-side
// reads tally in src). Owned by a single pump goroutine.
type pumpIO struct {
	src    *stripeSource
	tcp    *net.TCPConn // non-nil when conn is an unwrapped TCP connection
	zc     bool         // route big leases through sendfile(2)
	calls  int64        // write/writev syscalls issued
	vec    net.Buffers
	vecbuf [2][]byte // backing array for vec, so writev costs no allocation
}

// newPumpIO builds conn's pump context: zero-copy engages only when
// the build supports it, the config allows it, a file source exists,
// and the connection is an unwrapped *net.TCPConn (fault-injecting
// wrappers fall back to the userspace path automatically).
func (c *Client) newPumpIO(conn net.Conn) *pumpIO {
	pio := &pumpIO{src: newStripeSource(c.src)}
	pio.tcp, _ = conn.(*net.TCPConn)
	pio.zc = zeroCopyAvailable && !c.cfg.NoZeroCopy && pio.src != nil && pio.tcp != nil
	return pio
}

// syscalls returns the context's total I/O call tally.
func (pio *pumpIO) syscalls() int64 {
	n := pio.calls
	if pio.src != nil {
		n += pio.src.calls
	}
	return n
}

// markFirstByte records the epoch's first payload byte instant, once.
func markFirstByte(firstByte *atomic.Int64, sent int64, start time.Time) {
	if sent > 0 && firstByte.Load() == 0 {
		d := time.Since(start).Nanoseconds()
		if d < 1 {
			d = 1
		}
		firstByte.CompareAndSwap(0, d)
	}
}

// pace enforces token-bucket pacing on a stripe's cumulative volume —
// across frames, so single-chunk small files are paced too. The sleep
// is clamped to the epoch's remainder (a frame still open at the
// deadline finishes unpaced) and watches for an abort so a cancelled
// epoch is not held up: the watchdog has expired the write deadline,
// so the next write fails fast if truly aborted.
func pace(rate float64, sent int64, pumpStart, deadline time.Time, abort <-chan struct{}) {
	due := time.Duration(float64(sent) / rate * float64(time.Second))
	elapsed := time.Since(pumpStart)
	if due <= elapsed {
		return
	}
	sleep := due - elapsed
	if remain := time.Until(deadline); sleep > remain {
		sleep = remain
	}
	if sleep <= 0 {
		return
	}
	t := time.NewTimer(sleep)
	select {
	case <-abort:
		t.Stop()
	case <-t.C:
	}
}

// filePump drains the file queue into one data stripe. A lease, once
// its frame header is committed, is always pushed to completion (the
// server expects exactly the framed length) — the epoch deadline is
// enforced between frames. Any write or source-read error marks the
// stripe dead (a half-written frame makes the connection unusable for
// the next epoch) and requeues the unsent remainder.
//
// Payload routing per lease:
//   - zero-copy (pio.zc, lease >= zcMinSegment): one header write,
//     then the whole lease through sendfile(2) — payload bytes never
//     cross userspace;
//   - file-backed userspace: pread into a pooled buffer, fileChunk at
//     a time;
//   - no source: synthesized zeros.
//
// On the userspace paths the header rides the first payload chunk in
// a single writev, so a small file still moves in one syscall.
func filePump(conn net.Conn, q *fileQueue, pio *pumpIO, rate float64, deadline time.Time, abort <-chan struct{}, firstByte *atomic.Int64, start time.Time) (sent int64, alive bool) {
	hdr := make([]byte, 0, 48)
	shaped := !math.IsInf(rate, 1)
	pumpStart := time.Now()
	defer pio.src.release()
	for {
		select {
		case <-abort:
			return sent, true
		default:
		}
		if time.Now().After(deadline) {
			return sent, true
		}
		quantum := int64(leaseQuantum)
		if pio.zc {
			quantum = zcLeaseQuantum
		}
		if shaped {
			// Bound the lease to what the rate can move before the
			// deadline, so finishing the frame overshoots the epoch by
			// at most about one chunk.
			if b := int64(rate * time.Until(deadline).Seconds()); b < quantum {
				quantum = b
			}
			if quantum < fileChunk {
				quantum = fileChunk
			}
		}
		idx, off, n, wait := q.next(quantum)
		if n == 0 {
			if !wait {
				return sent, true
			}
			// Nothing admitted yet; admissions arrive at the opener's
			// pp/latency pace.
			t := time.NewTimer(time.Millisecond)
			select {
			case <-abort:
				t.Stop()
				return sent, true
			case <-t.C:
			}
			continue
		}
		var f *os.File
		if pio.src != nil {
			var err error
			if f, err = pio.src.file(idx); err != nil {
				// The validated source file vanished mid-transfer. The
				// lease cannot be produced, so give the stripe up; the
				// queue keeps the bytes for a later epoch.
				q.requeue(idx, n)
				return sent, false
			}
		}
		hdr = appendFrameHeader(hdr[:0], idx, off, n)

		if pio.zc && n >= zcMinSegment {
			// Warm the lease's pages before sendfile: cold pages fault
			// into the splice path one at a time, stalling the send
			// syscall per page, where a WILLNEED hint populates the
			// whole range up front.
			pio.src.calls += fadviseWillNeed(f, off, n)
			// Cork the stream across header+payload so the small
			// frame header coalesces with the first payload pages
			// rather than leaving as its own tiny segment before each
			// sendfile.
			pio.calls += setCork(pio.tcp, 1)
			if _, err := pio.tcp.Write(hdr); err != nil {
				q.requeue(idx, n)
				return sent, false
			}
			pio.calls++
			m, err := sendFileSegment(pio.tcp, f, off, n)
			pio.calls += setCork(pio.tcp, 0)
			pio.src.calls += 2 // the seek and the sendfile
			sent += m
			markFirstByte(firstByte, m, start)
			if err != nil {
				q.requeue(idx, n-m)
				return sent, false
			}
			if shaped {
				pace(rate, sent, pumpStart, deadline, abort)
			}
			continue
		}

		first := true
		for rem, pos := n, off; rem > 0; {
			want := rem
			if want > fileChunk {
				want = fileChunk
			}
			payload := fileZeros[:want]
			if f != nil {
				buf := pio.src.buf()
				m, _ := f.ReadAt(buf[:want], pos)
				pio.src.calls++
				if int64(m) < want {
					q.requeue(idx, rem)
					return sent, false
				}
				payload = buf[:want]
			}
			var nw int64
			var err error
			if first {
				// Header and first chunk in one writev.
				pio.vec = append(pio.vecbuf[:0], hdr, payload)
				nw, err = pio.vec.WriteTo(conn)
				if nw -= int64(len(hdr)); nw < 0 {
					nw = 0
				}
				first = false
			} else {
				var m int
				m, err = conn.Write(payload)
				nw = int64(m)
			}
			pio.calls++
			sent += nw
			rem -= nw
			pos += nw
			markFirstByte(firstByte, nw, start)
			if err != nil {
				q.requeue(idx, rem)
				return sent, false
			}
			if shaped {
				pace(rate, sent, pumpStart, deadline, abort)
			}
		}
	}
}

// opener owns the control connection for the pump phase of a dataset
// epoch: it keeps up to pp OPEN requests in flight, admits each file
// to the work queue as its ACK returns, and drains every outstanding
// ACK before returning so the connection is clean for the FSTAT
// reconciliation that follows. A read or write failure poisons the
// control connection (the next exchange re-dials); un-ACKed files
// simply stay unadmitted for a later epoch. Each refill round batches
// its OPEN lines into a single write — pp-deep pipelining costs one
// syscall per ACK round trip, not pp — tallied into calls.
func (c *Client) opener(conn net.Conn, br *bufio.Reader, q *fileQueue, pp int, deadline time.Time, abort <-chan struct{}, calls *atomic.Int64) {
	if pp < 1 {
		pp = 1
	}
	conn.SetReadDeadline(deadline.Add(ackSlack))
	defer conn.SetReadDeadline(time.Time{})
	batch := make([]byte, 0, 512)
	inflight := 0
	for {
		select {
		case <-abort:
			return
		default:
		}
		stopping := time.Now().After(deadline)
		if !stopping {
			batch = batch[:0]
			for inflight < pp {
				idx, ok := q.nextToOpen()
				if !ok {
					break
				}
				batch = append(batch, "OPEN "...)
				batch = append(batch, c.token...)
				batch = append(batch, ' ')
				batch = strconv.AppendInt(batch, int64(idx), 10)
				batch = append(batch, '\n')
				inflight++
			}
			if len(batch) > 0 {
				if _, err := conn.Write(batch); err != nil {
					c.dropCtrl(conn)
					return
				}
				calls.Add(1)
			}
		}
		if inflight == 0 {
			return
		}
		resp, err := readLine(br)
		if err != nil {
			c.dropCtrl(conn)
			return
		}
		rest, ok := strings.CutPrefix(resp, "ACK ")
		if !ok {
			c.dropCtrl(conn)
			return
		}
		idx, err := strconv.Atoi(rest)
		if err != nil {
			c.dropCtrl(conn)
			return
		}
		q.admit(idx)
		inflight--
	}
}

// sendManifest registers the dataset under the client's token: the
// MANIFEST header and one size line per file, sent as a single
// exchange on the persistent control connection (the server answers
// OK after the last line). Idempotent — a re-sent manifest of the
// same shape keeps the server's progress.
func (c *Client) sendManifest(ctx context.Context) (dials, retries int, err error) {
	var sb strings.Builder
	sb.Grow(len(c.fq.sizes)*8 + 64)
	sb.WriteString("MANIFEST ")
	sb.WriteString(c.token)
	sb.WriteByte(' ')
	sb.WriteString(strconv.Itoa(len(c.fq.sizes)))
	for _, sz := range c.fq.sizes {
		sb.WriteByte('\n')
		sb.WriteString(strconv.FormatInt(sz, 10))
	}
	_, dials, retries, err = c.exchange(ctx, sb.String(), "OK")
	return dials, retries, err
}

// fstatFiles asks the server for the token's per-file aggregate: the
// completed-file count and the duplicate-free received bytes.
func (c *Client) fstatFiles(ctx context.Context) (done int, useful int64, dials int, err error) {
	resp, dials, _, err := c.exchange(ctx, "FSTAT "+c.token, "FILES ")
	if err != nil {
		return 0, 0, dials, err
	}
	fields := strings.Fields(resp)
	if len(fields) != 3 {
		return 0, 0, dials, errProtocolf("bad FSTAT response %q", resp)
	}
	done, err1 := strconv.Atoi(fields[1])
	useful, err2 := strconv.ParseInt(fields[2], 10, 64)
	if err1 != nil || err2 != nil {
		return 0, 0, dials, errProtocolf("bad FSTAT response %q", resp)
	}
	return done, useful, dials, nil
}

// reconcileFiles polls the server's per-file aggregate until two
// consecutive reads agree (the kernel buffers have drained) or a
// short deadline passes. Mirrors reconcile for the framed data plane.
func (c *Client) reconcileFiles() (done int, useful int64, dials int, ok bool) {
	deadline := time.Now().Add(500 * time.Millisecond)
	prevDone, prevUseful := -1, int64(-1)
	seen := false
	for {
		d, u, dl, err := c.fstatFiles(context.Background())
		dials += dl
		if err == nil {
			if seen && d == prevDone && u == prevUseful {
				return d, u, dials, true
			}
			prevDone, prevUseful, seen = d, u, true
		}
		if time.Now().After(deadline) {
			return prevDone, prevUseful, dials, seen
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// resyncQueue rebuilds the work queue from the server's per-file
// received counts (the RESYNC exchange): lost bytes are requeued,
// already-received bytes are dropped, and resume restarts at
// file/offset granularity. Must only run quiesced (no leases in
// flight). Failure is not fatal — the queue keeps its local view and
// a later epoch retries.
func (c *Client) resyncQueue(ctx context.Context) (dials int, err error) {
	for k := 0; k < c.cfg.Retry.Attempts; k++ {
		if k > 0 {
			if !c.sleep(ctx, c.backoff(k)) {
				return dials, err
			}
		}
		if ierr := c.interrupted(ctx); ierr != nil {
			return dials, ierr
		}
		var conn net.Conn
		var br *bufio.Reader
		var dialed bool
		conn, br, dialed, err = c.ctrlConn()
		if dialed {
			dials++
		}
		if err != nil {
			if transientNetErr(err) {
				continue
			}
			return dials, err
		}
		conn.SetDeadline(time.Now().Add(c.cfg.DialTimeout))
		if _, err = conn.Write(append([]byte("RESYNC "+c.token), '\n')); err != nil {
			c.dropCtrl(conn)
			if transientNetErr(err) {
				continue
			}
			return dials, err
		}
		if c.gotScratch == nil {
			c.gotScratch = make([]int64, len(c.fq.sizes))
		}
		got := c.gotScratch
		for i := range got {
			got[i] = 0
		}
		bad := false
		for {
			var line string
			line, err = readLine(br)
			if err != nil {
				break
			}
			if line == "END" {
				break
			}
			fields := strings.Fields(line)
			if len(fields) != 3 || fields[0] != "F" {
				bad = true
				break
			}
			idx, err1 := strconv.Atoi(fields[1])
			g, err2 := strconv.ParseInt(fields[2], 10, 64)
			if err1 != nil || err2 != nil || idx < 0 || idx >= len(got) || g < 0 {
				bad = true
				break
			}
			got[idx] = g
		}
		if err != nil || bad {
			c.dropCtrl(conn)
			if bad {
				return dials, errProtocolf("bad RESYNC response")
			}
			if transientNetErr(err) {
				continue
			}
			return dials, err
		}
		conn.SetDeadline(time.Time{})
		c.fq.applyServer(got)
		// Re-baseline the completed-file delta at the server's current
		// count, so files finished before this session (or already
		// reconciled) are not reported again as this epoch's progress.
		done := 0
		for i, g := range got {
			if g >= c.fq.sizes[i] {
				done++
			}
		}
		c.lastDone = done
		return dials, nil
	}
	return dials, err
}
